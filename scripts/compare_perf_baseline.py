#!/usr/bin/env python3
"""Gating perf-baseline comparison for CI.

Usage: compare_perf_baseline.py BASELINE.json CURRENT.json

Counters are deterministic — DESIGN.md guarantees bit-identical values at
any --jobs — so ANY drift against test/perf-baseline.json is a real
algorithmic change, never noise. The comparison therefore FAILS (exit 1)
on the slightest counter mismatch, including counters that appear or
disappear. When an intentional algorithm change lands, refresh the
baseline in the same PR:

    dune exec bench/main.exe -- --quick --metrics --perf-summary --out ci-results
    cp ci-results/perf-summary.json test/perf-baseline.json

and record the why in DESIGN.md / EXPERIMENTS.md.

Wall-clocks vary by machine and never gate: the whole-run wall-clock is
reported, and flagged with a non-blocking ::warning:: only when it
exceeds the tolerance band of +/-50% vs the baseline (generous on
purpose: shared CI runners jitter, and the counters already catch every
real complexity regression exactly).

The "cache" block of perf-summary.json is ignored by design: cache
traffic depends on how --jobs slices work across domains, so those
values are jobs-variant diagnostics, not gate material.

The "exact_jobs" block (wall-clocks of the exact-solver stack at 1/4/8
domains, same bit-identical work per width) gates the task-tree speedup:
when the CURRENT machine reports >= 8 cores, every ladder entry must
reach MIN_EXACT_SPEEDUP at jobs 8 vs jobs 1 (DESIGN.md §14). On smaller
machines the speedup is physically unreachable, so the check degrades to
a non-blocking report. Baseline exact_jobs values are never compared —
they are machine wall-clocks, not determinism material.
"""

import json
import sys

WALL_TOLERANCE = 0.50  # fraction of baseline wall-clock; warn-only
MIN_EXACT_SPEEDUP = 3.0  # jobs-8 vs jobs-1, gating only with >= 8 cores


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BASELINE.json CURRENT.json", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)

    # Wall-clock: report always, warn outside the band, never fail.
    bw, cw = base.get("wall_clock_s"), cur.get("wall_clock_s")
    if bw and cw:
        rel = (cw - bw) / bw
        print(f"wall-clock: baseline {bw:.1f}s -> current {cw:.1f}s ({rel:+.0%})")
        if abs(rel) > WALL_TOLERANCE:
            print(
                f"::warning::wall-clock {rel:+.0%} vs baseline, outside the "
                f"+/-{WALL_TOLERANCE:.0%} band (non-blocking; counters gate)"
            )

    bc = base.get("counters", {})
    cc = cur.get("counters", {})
    failures = []
    for name in sorted(set(bc) | set(cc)):
        b, c = bc.get(name), cc.get(name)
        if b == c:
            print(f"{name:44s} {b:>12d}  ok")
        elif b is None:
            failures.append(f"{name}: new counter (current {c}), not in baseline")
        elif c is None:
            failures.append(f"{name}: in baseline ({b}) but missing from current run")
        else:
            failures.append(f"{name}: baseline {b} -> current {c} ({c - b:+d})")

    # Task-tree speedup gate: jobs-8 vs jobs-1 on the exact-solver
    # ladder, enforced only where the hardware can express it.
    speedup_failures = []
    ej = cur.get("exact_jobs", {})
    cores = cur.get("cores", 0)
    gate = cores >= 8
    for name in sorted(ej):
        t1 = ej[name].get("jobs_1_s")
        t8 = ej[name].get("jobs_8_s")
        if not t1 or not t8 or t8 <= 0:
            continue
        speedup = t1 / t8
        status = "ok" if speedup >= MIN_EXACT_SPEEDUP else (
            "FAIL" if gate else "below target (not gated: <8 cores)"
        )
        print(
            f"exact_jobs {name:30s} j1 {t1:.3f}s  j8 {t8:.3f}s  "
            f"speedup {speedup:.2f}x  {status}"
        )
        if gate and speedup < MIN_EXACT_SPEEDUP:
            speedup_failures.append(
                f"{name}: jobs-8 speedup {speedup:.2f}x < {MIN_EXACT_SPEEDUP:.1f}x"
            )

    if failures or speedup_failures:
        print()
        for f in failures:
            print(f"FAIL  {f}")
        for f in speedup_failures:
            print(f"FAIL  {f}")
        if failures:
            print(
                "::error::deterministic counter drift vs test/perf-baseline.json — "
                "a real algorithmic change; refresh the baseline deliberately if "
                "it is intended (see scripts/compare_perf_baseline.py)"
            )
        if speedup_failures:
            print(
                "::error::exact-solver task-tree speedup below the "
                f"{MIN_EXACT_SPEEDUP:.1f}x jobs-8 target (DESIGN.md §14)"
            )
        return 1
    print("perf baseline gate passed: all counters exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Gating perf-baseline comparison for CI.

Usage: compare_perf_baseline.py BASELINE.json CURRENT.json

Counters are deterministic — DESIGN.md guarantees bit-identical values at
any --jobs — so ANY drift against test/perf-baseline.json is a real
algorithmic change, never noise. The comparison therefore FAILS (exit 1)
on the slightest counter mismatch, including counters that appear or
disappear. When an intentional algorithm change lands, refresh the
baseline in the same PR:

    dune exec bench/main.exe -- --quick --metrics --perf-summary --out ci-results
    cp ci-results/perf-summary.json test/perf-baseline.json

and record the why in DESIGN.md / EXPERIMENTS.md.

Wall-clocks vary by machine and never gate: the whole-run wall-clock is
reported, and flagged with a non-blocking ::warning:: only when it
exceeds the tolerance band of +/-50% vs the baseline (generous on
purpose: shared CI runners jitter, and the counters already catch every
real complexity regression exactly).

The "cache" block of perf-summary.json is ignored by design: cache
traffic depends on how --jobs slices work across domains, so those
values are jobs-variant diagnostics, not gate material.
"""

import json
import sys

WALL_TOLERANCE = 0.50  # fraction of baseline wall-clock; warn-only


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} BASELINE.json CURRENT.json", file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        base = json.load(f)
    with open(sys.argv[2]) as f:
        cur = json.load(f)

    # Wall-clock: report always, warn outside the band, never fail.
    bw, cw = base.get("wall_clock_s"), cur.get("wall_clock_s")
    if bw and cw:
        rel = (cw - bw) / bw
        print(f"wall-clock: baseline {bw:.1f}s -> current {cw:.1f}s ({rel:+.0%})")
        if abs(rel) > WALL_TOLERANCE:
            print(
                f"::warning::wall-clock {rel:+.0%} vs baseline, outside the "
                f"+/-{WALL_TOLERANCE:.0%} band (non-blocking; counters gate)"
            )

    bc = base.get("counters", {})
    cc = cur.get("counters", {})
    failures = []
    for name in sorted(set(bc) | set(cc)):
        b, c = bc.get(name), cc.get(name)
        if b == c:
            print(f"{name:44s} {b:>12d}  ok")
        elif b is None:
            failures.append(f"{name}: new counter (current {c}), not in baseline")
        elif c is None:
            failures.append(f"{name}: in baseline ({b}) but missing from current run")
        else:
            failures.append(f"{name}: baseline {b} -> current {c} ({c - b:+d})")

    if failures:
        print()
        for f in failures:
            print(f"FAIL  {f}")
        print(
            "::error::deterministic counter drift vs test/perf-baseline.json — "
            "a real algorithmic change; refresh the baseline deliberately if "
            "it is intended (see scripts/compare_perf_baseline.py)"
        )
        return 1
    print("perf baseline gate passed: all counters exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())

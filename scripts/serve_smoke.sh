#!/usr/bin/env bash
# Serve-daemon lifecycle smoke: start `pipeline_sched serve` on an
# ephemeral port, drive every endpoint through curl, check the warm
# cache answers byte-identically, then SIGTERM and require the clean
# shutdown line. Run by CI's serve job (and by hand:
# `bash scripts/serve_smoke.sh _build/default/bin/pipeline_sched.exe`).
set -euo pipefail

BIN="${1:?usage: serve_smoke.sh path/to/pipeline_sched.exe}"

workdir=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

"$BIN" serve --port 0 >"$workdir/daemon.log" 2>&1 &
pid=$!

# The daemon prints "pipeline-sched: serving on 127.0.0.1:PORT (jobs N)"
# once the socket is bound (the line format is load-bearing: this script
# parses it).
port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*serving on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$workdir/daemon.log")
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "daemon died at startup:"; cat "$workdir/daemon.log"; exit 1; }
  sleep 0.1
done
[ -n "$port" ] || { echo "daemon never reported its port"; cat "$workdir/daemon.log"; exit 1; }
base="http://127.0.0.1:$port"
echo "daemon up on port $port"

fail() { echo "FAIL: $*"; exit 1; }

# /health
health=$(curl -sf "$base/health")
echo "$health" | grep -q '"status":"ok"' || fail "/health: $health"

# /solve — cold, then warm: byte-identical responses.
body='{"instance":{"works":[4,8,2,6],"deltas":[10,20,30,20,10],
       "platform":{"speeds":[2,4,1],"bandwidth":10}},"period":9}'
curl -sf -o "$workdir/solve1.json" -d "$body" "$base/solve" || fail "/solve rejected a valid request"
grep -q '"feasible":true' "$workdir/solve1.json" || fail "/solve: $(cat "$workdir/solve1.json")"
curl -sf -o "$workdir/solve2.json" -d "$body" "$base/solve"
cmp "$workdir/solve1.json" "$workdir/solve2.json" || fail "warm response differs from cold"

# /pareto and /simulate answer on the same instance.
curl -sf -d "$body" "$base/pareto" | grep -q '"points"' || fail "/pareto has no points"
curl -sf -d "$body" "$base/simulate" | grep -q '"stats"' || fail "/simulate has no stats"

# Error model: unknown heuristic is HTTP 400 with the registry's wording.
status=$(curl -s -o "$workdir/err.json" -w '%{http_code}' \
  -d "${body%\}},\"heuristic\":\"nope\"}" "$base/solve")
[ "$status" = 400 ] || fail "unknown heuristic gave $status, want 400"
grep -q "unknown heuristic nope" "$workdir/err.json" || fail "wrong 400 wording: $(cat "$workdir/err.json")"

# /metrics exposes the serve counters in Prometheus text format.
curl -sf "$base/metrics" | grep -q '^serve_requests ' || fail "/metrics lacks serve_requests"

# Graceful shutdown on SIGTERM.
kill -TERM "$pid"
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$pid" 2>/dev/null && fail "daemon survived SIGTERM"
wait "$pid" 2>/dev/null || true
pid=""
grep -q "server stopped" "$workdir/daemon.log" || fail "no clean shutdown line: $(cat "$workdir/daemon.log")"

echo "serve smoke passed"

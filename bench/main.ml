(* Benchmark and reproduction harness.

     dune exec bench/main.exe                 # everything (figures, Table 1,
                                              # timings, ablations)
     dune exec bench/main.exe -- --quick      # reduced campaign (CI-sized)
     dune exec bench/main.exe -- --figures    # only the 12 paper figures
     dune exec bench/main.exe -- --table1     # only Table 1
     dune exec bench/main.exe -- --timings    # only the Bechamel timings
     dune exec bench/main.exe -- --ablation   # only the ablation studies
     dune exec bench/main.exe -- --faults     # only the fault campaign
     dune exec bench/main.exe -- --streaming  # only the streaming churn campaign
     dune exec bench/main.exe -- --scaling    # only the E6 web-scale ladder
     dune exec bench/main.exe -- --smoke      # tiny end-to-end wiring check

   For every figure and table of the paper's evaluation (§5) this
   harness regenerates the corresponding data series and prints them,
   writing gnuplot/.csv artefacts under results/. Absolute values depend
   on the random draws; the reproduced object is the shape: which
   heuristic wins where, and by roughly which factor. *)

open Pipeline_model
open Pipeline_core
module E = Pipeline_experiments
module Ureg = Pipeline_registry

(* ------------------------------------------------------------------ *)
(* Options                                                             *)
(* ------------------------------------------------------------------ *)

type options = {
  mutable figures : bool;
  mutable table1 : bool;
  mutable timings : bool;
  mutable ablation : bool;
  mutable faults : bool;
  mutable streaming : bool;
  mutable scaling : bool;
  mutable serve_load : bool;
  mutable smoke : bool;
  mutable quick : bool;
  mutable pairs : int;
  mutable points : int;
  mutable seed : int;
  mutable out : string;
  mutable jobs : int;
  mutable metrics : bool;
  mutable trace : string option;
  mutable perf_summary : bool;
}

let options =
  {
    figures = true;
    table1 = true;
    timings = true;
    ablation = true;
    faults = true;
    streaming = true;
    scaling = true;
    (* Opt-in only (wall-clock measurements): never part of the default
       or smoke runs, so the deterministic artefact set is untouched. *)
    serve_load = false;
    smoke = false;
    quick = false;
    pairs = 50;
    points = 15;
    seed = 2007;
    out = "results";
    jobs = Pipeline_util.Pool.recommended_jobs ();
    metrics = false;
    trace = None;
    perf_summary = false;
  }

let select which =
  (* The first explicit section flag turns the others off. *)
  if
    options.figures && options.table1 && options.timings && options.ablation
    && options.faults && options.streaming && options.scaling
  then begin
    options.figures <- false;
    options.table1 <- false;
    options.timings <- false;
    options.ablation <- false;
    options.faults <- false;
    options.streaming <- false;
    options.scaling <- false
  end;
  which ()

(* Smoke mode shrinks every hardcoded batch so the whole harness stays
   runtest-sized. *)
let scale pairs = if options.smoke then min pairs 3 else pairs
let sim_datasets datasets = if options.smoke then 40 else datasets

let parse_args () =
  let spec =
    [
      ("--figures", Arg.Unit (fun () -> select (fun () -> options.figures <- true)),
       " only regenerate the paper figures");
      ("--table1", Arg.Unit (fun () -> select (fun () -> options.table1 <- true)),
       " only regenerate Table 1");
      ("--timings", Arg.Unit (fun () -> select (fun () -> options.timings <- true)),
       " only run the Bechamel timings");
      ("--ablation", Arg.Unit (fun () -> select (fun () -> options.ablation <- true)),
       " only run the ablation studies");
      ("--streaming",
       Arg.Unit (fun () -> select (fun () -> options.streaming <- true)),
       " only run the streaming churn campaign");
      ("--faults", Arg.Unit (fun () -> select (fun () -> options.faults <- true)),
       " only run the fault-injection campaign");
      ("--scaling",
       Arg.Unit (fun () -> select (fun () -> options.scaling <- true)),
       " only run the E6 web-scale scaling ladder");
      ("--serve-load",
       Arg.Unit (fun () -> select (fun () -> options.serve_load <- true)),
       " only run the serve daemon load generator (requests/s and latency \
        percentiles per phase; writes <out>/serve-load.csv — wall-clock, \
        not a determinism artefact)");
      ("--smoke",
       Arg.Unit
         (fun () ->
           options.smoke <- true;
           options.timings <- false;
           options.pairs <- 2;
           options.points <- 3),
       " end-to-end wiring check (tiny batches, no timings)");
      ("--quick",
       Arg.Unit
         (fun () ->
           options.quick <- true;
           options.pairs <- 10;
           options.points <- 8),
       " reduced campaign (10 pairs, 8 sweep points, mid-sized scaling \
        ladder)");
      ("--pairs", Arg.Int (fun v -> options.pairs <- v), "N app/platform pairs per point");
      ("--points", Arg.Int (fun v -> options.points <- v), "N sweep points");
      ("--seed", Arg.Int (fun v -> options.seed <- v), "N campaign seed");
      ("--out", Arg.String (fun v -> options.out <- v), "DIR output directory");
      ("--jobs",
       (* Same validation, cap and help text as the CLI: both flags are
          built on [Pool.parse_jobs]. *)
       Arg.String
         (fun s ->
           match Pipeline_util.Pool.parse_jobs s with
           | Ok n -> options.jobs <- n
           | Error msg -> raise (Arg.Bad msg)),
       "N " ^ Pipeline_util.Pool.jobs_doc ~default:options.jobs);
      ("--metrics", Arg.Unit (fun () -> options.metrics <- true),
       " collect deterministic counters (branches, DES events, ...) and \
        print a summary table; also writes <out>/metrics.csv. Counter \
        values are bit-identical at any --jobs");
      ("--trace", Arg.String (fun v -> options.trace <- Some v),
       "FILE record timed spans and write them to FILE as Chrome \
        trace_event JSON (open in chrome://tracing or Perfetto)");
      ("--perf-summary", Arg.Unit (fun () -> options.perf_summary <- true),
       " write <out>/perf-summary.json (per-section wall-clock plus the \
        Obs counters; combine with --metrics for non-zero counters). Not \
        part of the deterministic artefact set: wall-clocks vary by \
        machine");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %s" a)))
    "dune exec bench/main.exe -- [options]\n\n\
     Exit status: 0 on success; 1 when the --table1 reproduction gate \
     finds a cell\noutside the documented tolerance (seed 2007, non-smoke \
     runs only); 2 on\nmalformed command-line input.\n\n\
     Options:";
  Pipeline_util.Pool.set_jobs options.jobs;
  Obs.set_metrics options.metrics;
  if options.trace <> None then Obs.set_tracing true

let section title =
  Printf.printf "\n%s\n%s\n%s\n\n" (String.make 74 '=') title (String.make 74 '=')

(* Per-section wall-clocks for --perf-summary, in run order. *)
let section_times : (string * float) list ref = ref []

let timed name f () =
  let t0 = Unix.gettimeofday () in
  f ();
  section_times := (name, Unix.gettimeofday () -. t0) :: !section_times

(* Counters snapshot for --perf-summary, taken before the Bechamel
   timings section runs: Bechamel's adaptive sampling re-runs solvers a
   load-dependent number of times, so counters accumulated after this
   point are not deterministic and must not enter the CI baseline. *)
let perf_counters : (string * int) list ref = ref []

(* Wall-clocks of the exact-solver stack at 1/4/8 domains, for the
   --perf-summary "exact_jobs" block: the same bit-identical work timed
   at three pool widths. Runs after the counters snapshot AND after
   metrics.csv is written — the re-solves triple the solver counters,
   which must never leak into the gated deterministic sets. The compare
   script gates the j8/j1 speedup only when the machine reports >= 8
   cores (scripts/compare_perf_baseline.py). *)
let exact_jobs_widths = [ 1; 4; 8 ]

let exact_jobs_results : (string * (int * float) list) list ref = ref []

let run_exact_jobs () =
  let prev = Pipeline_util.Pool.jobs () in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let ladder name f =
    let rows =
      List.map
        (fun jobs ->
          Pipeline_util.Pool.set_jobs jobs;
          (jobs, time f))
        exact_jobs_widths
    in
    exact_jobs_results := (name, rows) :: !exact_jobs_results
  in
  Fun.protect
    ~finally:(fun () -> Pipeline_util.Pool.set_jobs prev)
    (fun () ->
      (* One E6-era exact rung (the quick scaling-bnb size)... *)
      ladder "bnb-12x100" (fun () ->
          ignore
            (E.Scaling.bnb_run ~budget:500_000 ~seed:options.seed [ (12, 100) ]));
      (* ...and the ablation-5 het validation (exhaustive oracle inside). *)
      ladder "het-validate" (fun () ->
          ignore
            (E.Het_campaign.validate ~runs:20 ~seed:options.seed
               ~family:(List.hd E.Het_campaign.families) ())));
  exact_jobs_results := List.rev !exact_jobs_results

(* Machine-readable perf snapshot for CI: per-section wall-clock plus
   every Obs counter (probe counts included) from the seeded sections
   only. Deliberately separate from the deterministic artefact set —
   timings vary run to run (the counter values do not). *)
let write_perf_summary ~wall path =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"pairs\": %d,\n\
    \  \"wall_clock_s\": %.3f,\n"
    options.seed
    (Pipeline_util.Pool.jobs ())
    (Domain.recommended_domain_count ())
    options.pairs wall;
  Buffer.add_string b "  \"sections\": {";
  List.iteri
    (fun i (name, seconds) ->
      Printf.bprintf b "%s\n    \"%s\": %.3f" (if i = 0 then "" else ",") name
        seconds)
    (List.rev !section_times);
  Buffer.add_string b "\n  },\n  \"counters\": {";
  List.iteri
    (fun i (name, value) ->
      Printf.bprintf b "%s\n    \"%s\": %d" (if i = 0 then "" else ",") name value)
    !perf_counters;
  (* The exact-solver jobs ladder: wall-clock only, never gated exactly
     (machines differ) — the compare script checks the j8/j1 speedup
     against the task-tree target when the machine has the cores for
     it. *)
  if !exact_jobs_results <> [] then begin
    Buffer.add_string b "\n  },\n  \"exact_jobs\": {";
    List.iteri
      (fun i (name, rows) ->
        Printf.bprintf b "%s\n    \"%s\": {" (if i = 0 then "" else ",") name;
        List.iteri
          (fun k (jobs, seconds) ->
            Printf.bprintf b "%s\n      \"jobs_%d_s\": %.4f"
              (if k = 0 then "" else ",")
              jobs seconds)
          rows;
        Buffer.add_string b "\n    }")
      !exact_jobs_results
  end;
  (* Cache-visibility stats live in their own block, NOT under
     "counters": cache traffic depends on how --jobs slices work across
     domains, so these values are jobs-variant and the gating CI compare
     must ignore them (scripts/compare-perf-baseline only reads
     "counters"). *)
  let cs = Cost.cache_stats () in
  Printf.bprintf b
    "\n\
    \  },\n\
    \  \"cache\": {\n\
    \    \"engine_builds\": %d,\n\
    \    \"lru_hits\": %d,\n\
    \    \"lru_misses\": %d,\n\
    \    \"candidate_builds\": %d,\n\
    \    \"deal_candidate_builds\": %d\n\
    \  }\n\
     }\n"
    cs.Cost.engine_builds cs.Cost.lru_hits cs.Cost.lru_misses
    cs.Cost.candidate_builds cs.Cost.deal_candidate_builds;
  Pipeline_util.Csv.to_file path (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Figures 2-7                                                         *)
(* ------------------------------------------------------------------ *)

let run_figures () =
  section
    (Printf.sprintf
       "PAPER FIGURES 2-7 (latency vs period; %d pairs, %d sweep points, seed %d)"
       options.pairs options.points options.seed);
  List.iter
    (fun (label, _) ->
      match
        E.Campaign.run_paper_figure ~pairs:options.pairs
          ~sweep_points:options.points ~seed:options.seed label
      with
      | None -> ()
      | Some fig ->
        print_endline (E.Report.figure_to_ascii fig);
        print_newline ();
        let paths = E.Report.write_figure ~dir:options.out fig in
        List.iter (Printf.printf "  wrote %s\n") paths;
        print_newline ())
    (E.Campaign.paper_figures ());
  (* Extension figure E5: the same campaign on fully heterogeneous
     platforms (paper future work). *)
  let e5 =
    E.Het_campaign.figure ~pairs:(min options.pairs 20)
      ~sweep_points:options.points ~seed:options.seed ~n:20 10
  in
  print_endline (E.Report.figure_to_ascii e5);
  let paths = E.Report.write_figure ~dir:options.out e5 in
  List.iter (Printf.printf "  wrote %s\n") paths;
  print_newline ();
  (* Exact het thresholds per bandwidth-matrix family (DESIGN.md §13).
     Every probe lands on the experiments.het.* counters, so the
     historical counter rows in metrics.csv are untouched. *)
  let tt =
    E.Het_campaign.threshold_table
      ~pairs:(scale (min options.pairs 10))
      ~seed:options.seed ~n:12 ~p:6 ()
  in
  print_endline (E.Het_campaign.render_threshold_table tt);
  let csv_rows =
    List.map
      (fun (name, means) -> name :: List.map (Printf.sprintf "%.17g") means)
      tt.E.Het_campaign.rows
  in
  let het_csv = Filename.concat options.out "het-thresholds.csv" in
  Pipeline_util.Csv.to_file het_csv
    (Pipeline_util.Csv.csv_of_rows
       ~header:(E.Het_campaign.threshold_table_header tt)
       csv_rows);
  Printf.printf "  wrote %s\n" het_csv;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

(* The paper's Table 1 (failure thresholds, p = 10), for side-by-side
   comparison with the reproduced values. *)
let paper_table1 = function
  | E.Config.E1 ->
    [ ("H1", [ 3.0; 3.3; 5.0; 5.0 ]);
      ("H2", [ 3.0; 4.7; 9.0; 18.0 ]);
      ("H3", [ 3.0; 4.0; 5.0; 5.0 ]);
      ("H4", [ 3.3; 3.3; 6.0; 10.0 ]);
      ("H5", [ 4.5; 6.0; 13.0; 25.0 ]);
      ("H6", [ 4.5; 6.0; 13.0; 25.0 ]) ]
  | E.Config.E2 ->
    [ ("H1", [ 9.7; 10.0; 11.0; 11.0 ]);
      ("H2", [ 10.3; 10.0; 12.0; 19.0 ]);
      ("H3", [ 10.0; 10.0; 11.0; 11.0 ]);
      ("H4", [ 11.3; 11.0; 13.0; 15.0 ]);
      ("H5", [ 11.7; 15.0; 22.0; 32.0 ]);
      ("H6", [ 11.7; 15.0; 22.0; 32.0 ]) ]
  | E.Config.E3 ->
    [ ("H1", [ 50.0; 70.0; 100.0; 250.0 ]);
      ("H2", [ 50.0; 140.0; 450.0; 950.0 ]);
      ("H3", [ 50.0; 90.0; 250.0; 400.0 ]);
      ("H4", [ 100.0; 140.0; 300.0; 650.0 ]);
      ("H5", [ 140.0; 270.0; 500.0; 1000.0 ]);
      ("H6", [ 140.0; 270.0; 500.0; 1000.0 ]) ]
  | E.Config.E4 ->
    [ ("H1", [ 2.2; 2.3; 2.3; 2.3 ]);
      ("H2", [ 2.4; 2.7; 3.7; 7.0 ]);
      ("H3", [ 2.4; 2.7; 3.0; 4.0 ]);
      ("H4", [ 2.8; 2.7; 3.0; 4.0 ]);
      ("H5", [ 3.0; 4.0; 7.0; 11.0 ]);
      ("H6", [ 3.0; 4.0; 7.0; 11.0 ]) ]

(* Reproduction gate (see EXPERIMENTS.md "Table 1"): every measured
   threshold must lie within a factor 4 of the paper's value, loosened
   to a factor 8 for the H2/H3 cells at n >= 20 — the documented "known
   deviation" of the 3-exploration heuristics. The gate turns --table1
   into a CI check: out-of-tolerance cells make the bench exit
   non-zero. Skipped off the documented campaign (non-default seed) and
   in smoke mode, where 2-pair batches are pure noise. *)
let table1_failures = ref []

let table1_tolerance ~heuristic ~n =
  if (heuristic = "H2" || heuristic = "H3") && n >= 20 then 8. else 4.

let check_table1 experiment (table : E.Failure.table) reference =
  if (not options.smoke) && options.seed = 2007 then
    List.iter
      (fun (name, measured) ->
        let paper = List.assoc name reference in
        List.iter2
          (fun n (m, p) ->
            let tol = table1_tolerance ~heuristic:name ~n in
            if m > p *. tol || m < p /. tol then
              table1_failures :=
                Printf.sprintf
                  "%s %s n=%d: measured %.1f vs paper %.1f (tolerance x%g)"
                  (E.Config.experiment_name experiment)
                  name n m p tol
                :: !table1_failures)
          table.E.Failure.ns
          (List.combine measured paper))
      table.E.Failure.rows

let run_table1 () =
  section
    (Printf.sprintf
       "TABLE 1: failure thresholds, p = 10 (measured vs paper; %d pairs)"
       options.pairs);
  let ns = [ 5; 10; 20; 40 ] in
  List.iter
    (fun experiment ->
      let table =
        E.Failure.table ~pairs:options.pairs ~seed:options.seed experiment ~p:10
          ~ns
      in
      let reference = paper_table1 experiment in
      check_table1 experiment table reference;
      Printf.printf "%s (%s)\n"
        (E.Config.experiment_name experiment)
        (E.Config.experiment_title experiment);
      let header =
        "Heur." :: List.map (fun n -> Printf.sprintf "n=%d" n) ns
      in
      let rows =
        List.map
          (fun (name, measured) ->
            let paper = List.assoc name reference in
            name
            :: List.map2
                 (fun m p -> Printf.sprintf "%.1f (%.1f)" m p)
                 measured paper)
          table.E.Failure.rows
      in
      print_endline (Pipeline_util.Table.render (header :: rows));
      ignore (E.Report.write_table ~dir:options.out table);
      print_newline ())
    E.Config.all_experiments;
  print_endline "  cell format: measured (paper)";
  match !table1_failures with
  | [] ->
    if (not options.smoke) && options.seed = 2007 then
      print_endline "  reproduction gate: all cells within tolerance"
  | failures ->
    print_endline "  REPRODUCTION GATE FAILED:";
    List.iter (Printf.printf "    %s\n") (List.rev failures)

(* ------------------------------------------------------------------ *)
(* Bechamel timings                                                    *)
(* ------------------------------------------------------------------ *)

let representative_instance experiment =
  let n = match experiment with E.Config.E1 | E.Config.E2 -> 40 | _ -> 20 in
  let setup =
    E.Config.default_setup ~pairs:1 ~seed:options.seed experiment ~n ~p:10
  in
  E.Workload.instance setup 0

let timing_tests () =
  let open Bechamel in
  List.map
    (fun experiment ->
      let inst = representative_instance experiment in
      let single = Pipeline_model.Instance.single_proc_period inst in
      let lopt = Pipeline_model.Instance.optimal_latency inst in
      let tests =
        List.map
          (fun (info : Ureg.info) ->
            let threshold =
              match info.Ureg.kind with
              | Ureg.Period_fixed -> single *. 0.6
              | Ureg.Latency_fixed -> lopt *. 1.5
            in
            Test.make ~name:info.Ureg.id
              (Staged.stage (fun () -> ignore (info.Ureg.solve inst ~threshold))))
          Ureg.paper
      in
      Test.make_grouped ~name:(E.Config.experiment_name experiment) tests)
    E.Config.all_experiments

(* Small instances the exhaustive solvers can enumerate in microseconds:
   the group exists to expose any overhead the (disabled) observability
   hooks add to the hottest enumeration loops. *)
let exhaustive_timing_tests () =
  let open Bechamel in
  let rng = Pipeline_util.Rng.create options.seed in
  let app = App_generator.generate rng (E.Config.app_spec E.Config.E2 ~n:6) in
  let platform = Platform_generator.comm_homogeneous rng ~p:4 in
  let inst = Instance.make ~id:1 app platform in
  let small_app = App_generator.generate rng (E.Config.app_spec E.Config.E2 ~n:4) in
  let small_platform = Platform_generator.comm_homogeneous rng ~p:3 in
  let small = Instance.make ~id:2 small_app small_platform in
  Test.make_grouped ~name:"exhaustive"
    [
      Test.make ~name:"optimal-min-period"
        (Staged.stage (fun () ->
             ignore (Pipeline_optimal.Exhaustive.min_period inst)));
      Test.make ~name:"optimal-pareto"
        (Staged.stage (fun () -> ignore (Pipeline_optimal.Exhaustive.pareto inst)));
      Test.make ~name:"deal-min-period"
        (Staged.stage (fun () ->
             ignore (Pipeline_deal.Deal_exhaustive.min_period small)));
    ]

(* The branch-and-bound task machine at 1/4/8 domains on one mid-size
   instance: the Bechamel view of the task-tree speedup (the gating
   wall-clock view lives in the --perf-summary exact_jobs block). The
   solve is --jobs-independent bit-for-bit, so the three rows time the
   same search. *)
let bnb_timing_tests () =
  let open Bechamel in
  let inst = E.Scaling.bnb_instance ~seed:options.seed ~n:10 ~p:50 in
  let at jobs =
    Test.make ~name:(Printf.sprintf "min-period-10x50-j%d" jobs)
      (Staged.stage (fun () ->
           let prev = Pipeline_util.Pool.jobs () in
           Pipeline_util.Pool.set_jobs jobs;
           Fun.protect
             ~finally:(fun () -> Pipeline_util.Pool.set_jobs prev)
             (fun () ->
               ignore
                 (Pipeline_optimal.Branch_bound.min_period ~node_budget:50_000
                    inst))))
  in
  Test.make_grouped ~name:"bnb" [ at 1; at 4; at 8 ]

(* The cost engine itself: a full mapping evaluation with the memo
   tables warm, cold, and disabled, plus one heuristic end-to-end (the
   engine's dominant consumer). The memo-off row is the price the
   refactor would have without the tables; see EXPERIMENTS.md. *)
let cost_timing_tests () =
  let open Bechamel in
  let inst = representative_instance E.Config.E2 in
  let app = inst.Instance.app and platform = inst.Instance.platform in
  let threshold = Instance.single_proc_period inst *. 0.6 in
  let mapping =
    match Sp_mono_p.solve inst ~period:threshold with
    | Some sol -> sol.Solution.mapping
    | None -> Mapping.single ~n:(Application.n app) ~proc:0
  in
  Test.make_grouped ~name:"cost"
    [
      Test.make ~name:"summary-engine-warm"
        (Staged.stage (fun () ->
             ignore (Cost.summary (Cost.get app platform) mapping)));
      Test.make ~name:"summary-engine-cold"
        (Staged.stage (fun () ->
             ignore (Cost.summary (Cost.make app platform) mapping)));
      Test.make ~name:"summary-memo-off"
        (Staged.stage (fun () ->
             ignore (Cost.summary (Cost.make ~memo:false app platform) mapping)));
      Test.make ~name:"h1-end-to-end"
        (Staged.stage (fun () -> ignore (Sp_mono_p.solve inst ~period:threshold)));
    ]

(* The threshold engines (DESIGN.md §9): the exact candidate search
   against the ε-bisection it replaced — same probe, same instance —
   plus the candidate enumeration itself, cold and from the engine
   cache. *)
let threshold_timing_tests () =
  let open Bechamel in
  let inst = representative_instance E.Config.E2 in
  let app = inst.Instance.app and platform = inst.Instance.platform in
  let info =
    List.find (fun (i : Ureg.info) -> i.Ureg.kind = Ureg.Period_fixed) Ureg.paper
  in
  let succeeds t = info.Ureg.solve inst ~threshold:t <> None in
  let legacy_bisection () =
    (* The pre-candidate-search boundary location: 40 blind halvings of
       [0, single-processor period]. *)
    let lo = ref 0. and hi = ref (Instance.single_proc_period inst) in
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2. in
      if succeeds mid then hi := mid else lo := mid
    done;
    !lo
  in
  ignore (Candidates.periods (Cost.get app platform));
  Test.make_grouped ~name:"threshold"
    [
      Test.make ~name:"candidates-enumerate-cold"
        (Staged.stage (fun () ->
             ignore (Candidates.periods (Cost.make app platform))));
      Test.make ~name:"candidates-cache-warm"
        (Staged.stage (fun () ->
             ignore (Candidates.periods (Cost.get app platform))));
      Test.make ~name:"boundary-candidate-search"
        (Staged.stage (fun () ->
             ignore
               (Threshold.boundary
                  ~candidates:(Candidates.periods (Cost.get app platform))
                  ~succeeds ())));
      Test.make ~name:"boundary-legacy-bisection"
        (Staged.stage (fun () -> ignore (legacy_bisection ())));
    ]

(* Warm incremental re-solve vs the cold oracle, on a representative
   mapped instance with one enrolled processor down — the streaming
   controller's hot path. The warm cache is primed once so the group
   measures the steady state the controller actually lives in. *)
let stream_timing_tests () =
  let open Bechamel in
  let module S = Pipeline_stream in
  let inst = representative_instance E.Config.E2 in
  let threshold = Pipeline_model.Instance.single_proc_period inst *. 0.6 in
  let h1 =
    match Ureg.find "h1-sp-mono-p" with Some h -> h | None -> assert false
  in
  let mapping =
    match h1.Ureg.solve inst ~threshold with
    | Some o -> Option.get (Deal_mapping.to_mapping o.Ureg.mapping)
    | None -> assert false
  in
  let victim = (Mapping.procs mapping).(0) in
  let state =
    S.Churn.apply
      (S.Churn.initial ~p:(Platform.p inst.Instance.platform) [])
      { S.Churn.at = 1.; proc = victim; kind = S.Churn.Crash }
  in
  let cache = S.Resolver.cache inst in
  ignore
    (S.Resolver.resolve ~strategy:`Warm cache state ~before:mapping ~threshold);
  Test.make_grouped ~name:"stream"
    [
      Test.make ~name:"resolve-warm"
        (Staged.stage (fun () ->
             ignore
               (S.Resolver.resolve ~strategy:`Warm cache state ~before:mapping
                  ~threshold)));
      Test.make ~name:"resolve-cold"
        (Staged.stage (fun () ->
             ignore
               (S.Resolver.resolve ~strategy:`Cold cache state ~before:mapping
                  ~threshold)));
    ]

(* Web-scale building blocks at a fixed mid-rung size (n = 2000,
   p = 64): cost-engine construction, Nicol's chains solver, and the
   exact lazy-lattice period search — the three asymptotic rewrites the
   scaling ladder exercises end to end. Runs after the counters
   snapshot like every other Bechamel group. *)
let scaling_timing_tests () =
  let open Bechamel in
  let inst = E.Scaling.instance ~seed:options.seed ~n:2_000 ~p:64 in
  let cost = Cost.get inst.Instance.app inst.Instance.platform in
  Test.make_grouped ~name:"scaling"
    [
      Test.make ~name:"engine-build-2000x64"
        (Staged.stage (fun () ->
             ignore (Cost.make inst.Instance.app inst.Instance.platform)));
      Test.make ~name:"nicol-2000x64"
        (Staged.stage (fun () ->
             ignore (Chains.Nicol.solve (Application.works inst.Instance.app) ~p:64)));
      Test.make ~name:"exact-lazy-period-2000x64"
        (Staged.stage (fun () ->
             ignore (E.Scaling.exact_relaxed_min_period cost ~p:64)));
    ]

let run_timings () =
  section "BECHAMEL TIMINGS: one group per experiment family (n=40/20, p=10)";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let test =
    Test.make_grouped ~name:"heuristics"
      (timing_tests ()
      @ [
          exhaustive_timing_tests (); bnb_timing_tests (); cost_timing_tests ();
          threshold_timing_tests (); stream_timing_tests ();
          scaling_timing_tests ();
        ])
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> e
        | _ -> nan
      in
      rows := (name, estimate) :: !rows)
    results;
  let sorted = List.sort compare !rows in
  Printf.printf "%-44s %16s\n" "benchmark" "time per solve";
  Printf.printf "%s\n" (String.make 62 '-');
  List.iter
    (fun (name, ns) ->
      let pretty =
        if Float.is_nan ns then "-"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else Printf.sprintf "%.1f us" (ns /. 1e3)
      in
      Printf.printf "%-44s %16s\n" name pretty)
    sorted

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation_fallback () =
  Printf.printf
    "Ablation 1: pure 3-exploration (paper) vs 2-way-split fallback extension\n";
  Printf.printf
    "(failure thresholds on E1, p = 10: lower = more robust; %d pairs)\n\n"
    (scale (min options.pairs 20));
  let pairs = scale (min options.pairs 20) in
  let ns = [ 10; 20; 40 ] in
  Printf.printf "%-22s" "heuristic";
  List.iter (fun n -> Printf.printf "%10s" (Printf.sprintf "n=%d" n)) ns;
  print_newline ();
  List.iter
    (fun id ->
      match Ureg.find id with
      | None -> ()
      | Some info ->
        Printf.printf "%-22s" info.Ureg.paper_name;
        List.iter
          (fun n ->
            let setup =
              E.Config.default_setup ~pairs ~seed:options.seed E.Config.E1 ~n
                ~p:10
            in
            let batch = E.Workload.instances setup in
            Printf.printf "%10.1f" (E.Failure.average_threshold info batch))
          ns;
        print_newline ())
    [ "h2-3explo-mono"; "h2x-3explo-mono-fb"; "h3-3explo-bi"; "h3x-3explo-bi-fb" ]

let ablation_overlap () =
  Printf.printf
    "\nAblation 2: one-port/no-overlap (paper model) vs multi-port overlap\n";
  Printf.printf "(simulated steady-state period on mapped E2 instances)\n\n";
  (* Instance generation consumes the shared RNG stream and stays
     sequential; the simulations are pure per-instance work and fan out
     across the pool, reassembled in draw order. *)
  let rng = Pipeline_util.Rng.create options.seed in
  let insts =
    Array.init (scale 30) (fun i ->
        let n = 5 + Pipeline_util.Rng.int rng 30 in
        let app = App_generator.generate rng (App_generator.e2 ~n) in
        let platform = Platform_generator.comm_homogeneous rng ~p:10 in
        Instance.make ~id:(i + 1) app platform)
  in
  let evaluate inst =
    let threshold = Instance.single_proc_period inst *. 0.6 in
    match Sp_mono_p.solve inst ~period:threshold with
    | None -> None
    | Some sol ->
      let run mode =
        Pipeline_sim.Trace.steady_period
          (Pipeline_sim.Runner.run ~mode inst sol.Solution.mapping ~datasets:(sim_datasets 150))
      in
      let no = run Pipeline_sim.Runner.One_port_no_overlap in
      let ov = run Pipeline_sim.Runner.Multi_port_overlap in
      if no > 0. then Some (ov /. no) else None
  in
  let ratios =
    ref
      (Array.fold_left
         (fun acc r -> match r with None -> acc | Some v -> v :: acc)
         []
         (Pipeline_util.Pool.map evaluate insts))
  in
  match !ratios with
  | [] -> Printf.printf "  (no mapped instance)\n"
  | rs ->
    Printf.printf
      "  overlap period / one-port period: mean %.3f, min %.3f, max %.3f (%d runs)\n"
      (Pipeline_util.Stats.mean rs)
      (fst (Pipeline_util.Stats.min_max rs))
      (snd (Pipeline_util.Stats.min_max rs))
      (List.length rs);
    Printf.printf
      "  (< 1 everywhere: the paper's one-port/no-overlap cost model is\n\
      \   conservative; equation (1) upper-bounds an overlapped execution.)\n"

let ablation_baselines () =
  Printf.printf
    "\nAblation 3: heuristics vs baselines (E2, n = 40, p = 10, 20 instances)\n";
  Printf.printf
    "(average period after unconstrained splitting vs comm-oblivious and random)\n\n";
  let setup =
    E.Config.default_setup ~pairs:(scale 20) ~seed:options.seed E.Config.E2 ~n:40 ~p:10
  in
  let batch = E.Workload.instances setup in
  let avg f =
    (* Per-pair fan-out; the filter keeps batch order for the mean. *)
    let values =
      List.filter_map Fun.id
        (Pipeline_util.Pool.map_list f batch)
    in
    Pipeline_util.Stats.mean values
  in
  let h5 =
    avg (fun inst ->
        Option.map
          (fun (s : Solution.t) -> s.Solution.period)
          (Sp_mono_l.solve inst ~latency:infinity))
  in
  let balanced =
    avg (fun inst -> Some (Baseline.balanced_chains inst).Solution.period)
  in
  let random =
    avg (fun inst ->
        let rng = Pipeline_util.Rng.create (inst.Instance.seed + 1) in
        Some (Baseline.random rng inst).Solution.period)
  in
  let single = avg (fun inst -> Some (Instance.single_proc_period inst)) in
  Printf.printf "  %-34s %10.2f\n" "Sp mono L (unbounded budget)" h5;
  Printf.printf "  %-34s %10.2f\n" "balanced chains (comm-oblivious)" balanced;
  Printf.printf "  %-34s %10.2f\n" "random mapping" random;
  Printf.printf "  %-34s %10.2f\n" "single fastest processor" single

let ablation_deal () =
  Printf.printf
    "\nAblation 4: splitting vs deal (one dominant stage; E3-flavoured, p = 8)\n";
  Printf.printf
    "(min period with unbounded latency budget; the deal replicates the hot stage)\n\n";
  let rng = Pipeline_util.Rng.create (options.seed + 13) in
  (* Shared-stream draws first, pooled evaluation second (see ablation 2). *)
  let insts =
    Array.init (scale 20) (fun i ->
        let n = 5 + Pipeline_util.Rng.int rng 10 in
        let works =
          Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 5 20))
        in
        (* One hot stage dominating the rest. *)
        works.(Pipeline_util.Rng.int rng n) <-
          float_of_int (Pipeline_util.Rng.int_in rng 300 600);
        let deltas =
          Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
        in
        let app = Application.make ~deltas works in
        let platform = Platform_generator.comm_homogeneous rng ~p:8 in
        Instance.make ~id:(i + 1) app platform)
  in
  let outcomes =
    Pipeline_util.Pool.map
      (fun inst ->
        ( Option.map
            (fun (s : Solution.t) -> s.Solution.period)
            (Sp_mono_l.solve inst ~latency:infinity),
          Option.map
            (fun s -> s.Pipeline_deal.Deal_heuristic.period)
            (Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst
               ~latency:infinity) ))
      insts
  in
  let split_periods = ref [] and deal_periods = ref [] in
  Array.iter
    (fun (split, deal) ->
      Option.iter (fun v -> split_periods := v :: !split_periods) split;
      Option.iter (fun v -> deal_periods := v :: !deal_periods) deal)
    outcomes;
  Printf.printf "  %-34s %10.2f\n" "splitting only (Sp mono L)"
    (Pipeline_util.Stats.mean !split_periods);
  Printf.printf "  %-34s %10.2f\n" "splitting + round-robin deal"
    (Pipeline_util.Stats.mean !deal_periods);
  Printf.printf
    "  (the deal escapes the single-stage bottleneck the paper's heuristics\n\
    \   are stuck on; see lib/deal and DESIGN.md.)\n"

let ablation_het () =
  Printf.printf
    "\nAblation 5: fully heterogeneous extension (future work of the paper)\n";
  Printf.printf
    "(min period, unbounded budget: het-aware splitting vs exhaustive optimum,\n\
    \ 20 random fully-het instances, n <= 8, p <= 4)\n\n";
  let rng = Pipeline_util.Rng.create (options.seed + 17) in
  (* Shared-stream draws first, pooled evaluation second (see ablation 2). *)
  let insts =
    Array.init (scale 20) (fun i ->
        let n = 2 + Pipeline_util.Rng.int rng 7 in
        let p = 2 + Pipeline_util.Rng.int rng 3 in
        let works =
          Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
        in
        let deltas =
          Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 30))
        in
        let app = Application.make ~deltas works in
        let platform = Platform_generator.fully_heterogeneous rng ~p in
        Instance.make ~id:(i + 1) app platform)
  in
  let evaluate inst =
    let opt = (Pipeline_optimal.Exhaustive.min_period inst).Solution.period in
    Option.map
      (fun (sol : Solution.t) -> sol.Solution.period /. opt)
      (Pipeline_het.Het_heuristics.minimise_period_under_latency inst
         ~latency:infinity)
  in
  (* Sequential over instances: the exhaustive solve inside [evaluate]
     fans its enumeration tree out over the domain pool, so the
     parallelism now lives per-solve (an outer Pool.map would demote it
     to sequential via the nested-call guard). *)
  let ratios =
    ref
      (Array.fold_left
         (fun acc r -> match r with None -> acc | Some v -> v :: acc)
         []
         (Array.map evaluate insts))
  in
  Printf.printf
    "  het heuristic period / optimal period: mean %.3f, max %.3f (%d runs)\n"
    (Pipeline_util.Stats.mean !ratios)
    (snd (Pipeline_util.Stats.min_max !ratios))
    (List.length !ratios);
  (* Per bandwidth-matrix family, against the same exhaustive oracle
     (n <= 8, p <= 6; Het_campaign.validate). *)
  Printf.printf "  per family (Het_campaign.validate, n <= 8, p <= 6):\n";
  List.iter
    (fun family ->
      let v =
        E.Het_campaign.validate ~runs:(scale 20) ~seed:options.seed ~family ()
      in
      Printf.printf "    %-12s mean %.3f, max %.3f (%d runs)\n"
        (E.Het_campaign.family_name family)
        v.E.Het_campaign.mean_ratio v.E.Het_campaign.max_ratio
        v.E.Het_campaign.runs)
    E.Het_campaign.families

let ablation_robustness () =
  Printf.printf
    "\nAblation 6: robustness to computation-time jitter (E2, n = 20, p = 10)\n";
  Printf.printf
    "(simulated period / analytic period under multiplicative noise;\n\
    \ mappings produced by each heuristic at 0.6 x single-machine period)\n\n";
  let setup =
    E.Config.default_setup ~pairs:(scale 10) ~seed:options.seed E.Config.E2 ~n:20 ~p:10
  in
  let batch = E.Workload.instances setup in
  let levels = [ 0.; 0.1; 0.3; 0.5 ] in
  Printf.printf "%-20s" "heuristic";
  List.iter (fun l -> Printf.printf "%10s" (Printf.sprintf "eps=%.1f" l)) levels;
  print_newline ();
  List.iter
    (fun (info : Ureg.info) ->
      if info.Ureg.kind = Ureg.Period_fixed then begin
        let series =
          E.Robustness.series ~datasets:(sim_datasets 200) ~noise_levels:levels info batch
        in
        Printf.printf "%-20s" info.Ureg.paper_name;
        List.iter
          (fun (_, y) -> Printf.printf "%10.3f" y)
          (Pipeline_util.Series.points series);
        print_newline ()
      end)
    Ureg.paper

let ablation_polish () =
  Printf.printf
    "\nAblation 7: local-search polish of the heuristics (E2, n = 12, p = 8)\n";
  Printf.printf
    "(average latency at a 0.5 x single-machine period threshold;\n\
    \ polished = heuristic + steepest descent under the period constraint)\n\n";
  let setup =
    E.Config.default_setup ~pairs:(scale 15) ~seed:options.seed E.Config.E2 ~n:12 ~p:8
  in
  let batch = E.Workload.instances setup in
  Printf.printf "%-20s %12s %12s %12s\n" "heuristic" "raw" "polished" "exact";
  List.iter
    (fun (info : Ureg.info) ->
      if info.Ureg.kind = Ureg.Period_fixed then begin
        let outcomes =
          Pipeline_util.Pool.map
            (fun inst ->
              let threshold = Instance.single_proc_period inst *. 0.5 in
              match
                Option.bind (info.Ureg.solve inst ~threshold)
                  Ureg.solution_of_outcome
              with
              | None -> None
              | Some sol ->
                let better =
                  Pipeline_optimal.Local_search.improve
                    ~objective:Pipeline_optimal.Local_search.Latency_then_period
                    ~feasible:(fun s -> Solution.respects_period s threshold)
                    inst sol
                in
                let exact =
                  Pipeline_optimal.Bicriteria.min_latency_under_period inst
                    ~period:threshold
                in
                Some
                  ( sol.Solution.latency,
                    better.Solution.latency,
                    Option.map (fun (e : Solution.t) -> e.Solution.latency) exact
                  ))
            (Array.of_list batch)
        in
        let raws = ref [] and polished = ref [] and exacts = ref [] in
        Array.iter
          (function
            | None -> ()
            | Some (raw, p, exact) ->
              raws := raw :: !raws;
              polished := p :: !polished;
              Option.iter (fun e -> exacts := e :: !exacts) exact)
          outcomes;
        match !raws with
        | [] -> ()
        | _ ->
          Printf.printf "%-20s %12.2f %12.2f %12.2f\n" info.Ureg.paper_name
            (Pipeline_util.Stats.mean !raws)
            (Pipeline_util.Stats.mean !polished)
            (Pipeline_util.Stats.mean !exacts)
      end)
    Ureg.paper

let ablation_branch_bound () =
  Printf.printf
    "\nAblation 8: how suboptimal are the heuristics on large platforms?\n";
  Printf.printf
    "(E2, n = 12, p = 100: branch-and-bound with speed-symmetry pruning vs\n\
    \ unconstrained splitting; 10 instances)\n\n";
  let setup =
    E.Config.default_setup ~pairs:(scale 10) ~seed:options.seed E.Config.E2 ~n:12 ~p:100
  in
  let batch = E.Workload.instances setup in
  let outcomes =
    Pipeline_util.Pool.map
      (fun inst ->
        match Sp_mono_l.solve inst ~latency:infinity with
        | None -> None
        | Some h ->
          let result =
            Pipeline_optimal.Branch_bound.min_period
              ~node_budget:(if options.smoke then 20_000 else 500_000)
              ~initial:h inst
          in
          Some
            ( h.Solution.period
              /. result.Pipeline_optimal.Branch_bound.solution.Solution.period,
              result.Pipeline_optimal.Branch_bound.proven_optimal ))
      (Array.of_list batch)
  in
  let gaps = ref [] and proven = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (gap, optimal) ->
        if optimal then incr proven;
        gaps := gap :: !gaps)
    outcomes;
  Printf.printf
    "  heuristic period / B&B period: mean %.3f, max %.3f (%d/%d proven optimal)\n"
    (Pipeline_util.Stats.mean !gaps)
    (snd (Pipeline_util.Stats.min_max !gaps))
    !proven (List.length !gaps)

let run_ablation () =
  section "ABLATIONS AND EXTENSIONS (design choices quantified)";
  ablation_fallback ();
  ablation_overlap ();
  ablation_baselines ();
  ablation_deal ();
  ablation_het ();
  ablation_robustness ();
  ablation_polish ();
  ablation_branch_bound ()

(* ------------------------------------------------------------------ *)
(* Fault-injection campaign                                            *)
(* ------------------------------------------------------------------ *)

let run_faults () =
  section
    (Printf.sprintf
       "FAULT CAMPAIGN: crash injection, recovery, online remapping (seed %d)"
       options.seed);
  Printf.printf
    "(H1 mappings at 0.6 x single-processor period; permanent crashes vs\n\
    \ 10-period outages with 3 retries; remap asked to meet 1.2 x the\n\
    \ original threshold on the survivors)\n\n";
  let datasets = sim_datasets 150 in
  List.iter
    (fun (experiment, n, p) ->
      let setup =
        E.Config.default_setup
          ~pairs:(scale (min options.pairs 15))
          ~seed:options.seed experiment ~n ~p
      in
      let campaign = E.Fault_campaign.run ~datasets setup in
      print_endline (E.Fault_campaign.render campaign);
      let paths = E.Fault_campaign.write ~dir:options.out campaign in
      List.iter (Printf.printf "  wrote %s\n") paths;
      print_newline ())
    [ (E.Config.E1, 10, 10); (E.Config.E2, 10, 10); (E.Config.E2, 20, 10) ]

(* ------------------------------------------------------------------ *)
(* Streaming churn campaign                                            *)
(* ------------------------------------------------------------------ *)

let run_streaming () =
  section
    (Printf.sprintf
       "STREAMING CAMPAIGN: trace-driven churn, warm vs cold re-solving (seed %d)"
       options.seed);
  Printf.printf
    "(H1 mappings at 0.6 x single-processor period; bursty / diurnal /\n\
    \ heavy-tailed arrivals at the threshold rate; two crash/recover\n\
    \ cycles plus one slowdown per run; warm = incremental resolver,\n\
    \ cold = full re-solve oracle)\n\n";
  let datasets = sim_datasets 120 in
  List.iter
    (fun (experiment, n, p) ->
      let setup =
        E.Config.default_setup
          ~pairs:(scale (min options.pairs 12))
          ~seed:options.seed experiment ~n ~p
      in
      let campaign = E.Streaming.run ~datasets setup in
      print_endline (E.Streaming.render campaign);
      let paths = E.Streaming.write ~dir:options.out campaign in
      List.iter (Printf.printf "  wrote %s\n") paths;
      print_newline ())
    [ (E.Config.E1, 10, 10); (E.Config.E2, 20, 10) ]

(* ------------------------------------------------------------------ *)
(* E6 web-scale scaling ladder                                         *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  section
    (Printf.sprintf
       "SCALING: E6 web-scale ladder — Nicol / exact lazy search / H1 (seed %d)"
       options.seed);
  Printf.printf
    "(one deterministic instance per size; exact = min period of the\n\
    \ all-fastest relaxation via the lazy candidate lattice; columns with\n\
    \ wall-clocks are machine-dependent, the CSV keeps only the\n\
    \ deterministic ones)\n\n";
  let mode =
    if options.smoke then `Smoke else if options.quick then `Quick else `Full
  in
  let measurements =
    E.Scaling.run ~clock:Unix.gettimeofday ~seed:options.seed
      (E.Scaling.ladder mode)
  in
  print_endline (E.Scaling.render measurements);
  let paths = E.Scaling.write ~dir:options.out measurements in
  List.iter (Printf.printf "  wrote %s\n") paths;
  print_newline ();
  Printf.printf
    "Exact rung: Branch_bound (task-tree + shared incumbent, DESIGN.md §14)\n";
  Printf.printf
    "(E2 application, comm-homogeneous platform, node budget %d;\n\
    \ period/nodes/proven are --jobs-independent, only `bnb s` is wall-clock)\n\n"
    (E.Scaling.bnb_budget mode);
  let bnb =
    E.Scaling.bnb_run ~clock:Unix.gettimeofday
      ~budget:(E.Scaling.bnb_budget mode) ~seed:options.seed
      (E.Scaling.bnb_ladder mode)
  in
  print_endline (E.Scaling.bnb_render bnb);
  let paths = E.Scaling.bnb_write ~dir:options.out bnb in
  List.iter (Printf.printf "  wrote %s\n") paths;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Serve load generator                                                *)
(* ------------------------------------------------------------------ *)

(* Wall-clock measurements of the daemon (doc/serving.mld): an
   in-process server on an ephemeral loopback port, driven by the
   closed-loop client of Pipeline_serve.Load. The cold/warm phase pair
   measures the warm-engine cache; EXPERIMENTS.md quotes a run. *)
let run_serve_load () =
  section
    (Printf.sprintf
       "SERVE LOAD: daemon throughput and latency, warm vs cold cache (jobs %d)"
       (Pipeline_util.Pool.jobs ()));
  Printf.printf
    "(in-process daemon, ephemeral loopback port, one connection per\n\
    \ request; solve-cold = fresh platform fingerprint per request,\n\
    \ solve-warm = 4 cycling fingerprints; wall-clock, machine-dependent)\n\n";
  let requests_per_phase =
    if options.smoke then 10 else if options.quick then 60 else 200
  in
  let protocol = Pipeline_serve.Protocol.create () in
  let server = Pipeline_serve.Server.start ~port:0 protocol in
  let phases =
    Fun.protect
      ~finally:(fun () -> Pipeline_serve.Server.stop server)
      (fun () ->
        Pipeline_serve.Load.run ~requests_per_phase
          ~port:(Pipeline_serve.Server.port server) ())
  in
  print_string (Pipeline_serve.Load.render phases);
  let cs = Pipeline_serve.Protocol.cache_stats protocol in
  Printf.printf
    "\n\
    \  warm-engine cache: %d platform hits, %d misses, %d app hits, %d app \
     misses, %d evictions\n"
    cs.Pipeline_serve.Cache.platform_hits cs.Pipeline_serve.Cache.platform_misses
    cs.Pipeline_serve.Cache.app_hits cs.Pipeline_serve.Cache.app_misses
    cs.Pipeline_serve.Cache.evictions;
  (match
     ( List.find_opt (fun p -> p.Pipeline_serve.Load.label = "solve-cold") phases,
       List.find_opt (fun p -> p.Pipeline_serve.Load.label = "solve-warm") phases
     )
   with
  | Some cold, Some warm when warm.Pipeline_serve.Load.mean_us > 0. ->
    Printf.printf "  cold/warm mean latency ratio: %.2fx\n"
      (cold.Pipeline_serve.Load.mean_us /. warm.Pipeline_serve.Load.mean_us)
  | _ -> ());
  let path = Filename.concat options.out "serve-load.csv" in
  Pipeline_util.Csv.to_file path
    (String.concat "\n" (Pipeline_serve.Load.to_csv phases) ^ "\n");
  Printf.printf "  wrote %s\n" path;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  parse_args ();
  let started = Unix.gettimeofday () in
  Printf.printf
    "Multi-criteria scheduling of pipeline workflows (Benoit et al., 2007)\n";
  Printf.printf "Reproduction harness. Output directory: %s (jobs: %d)\n"
    options.out
    (Pipeline_util.Pool.jobs ());
  if options.figures then timed "figures" run_figures ();
  if options.table1 then timed "table1" run_table1 ();
  if options.ablation then timed "ablation" run_ablation ();
  if options.faults then timed "faults" run_faults ();
  if options.streaming then timed "streaming" run_streaming ();
  if options.scaling then timed "scaling" run_scaling ();
  if options.serve_load then timed "serve-load" run_serve_load ();
  perf_counters := Obs.metrics ();
  if options.timings then timed "timings" run_timings ();
  if options.metrics then begin
    section "OBSERVABILITY COUNTERS (deterministic: identical at any --jobs)";
    print_string (Obs.summary_table ());
    let path = Filename.concat options.out "metrics.csv" in
    Pipeline_util.Csv.to_file path (Obs.metrics_csv ());
    Printf.printf "\n  wrote %s\n" path
  end;
  Option.iter
    (fun path ->
      Obs.write_trace path;
      Printf.printf "\nwrote Chrome trace: %s\n" path)
    options.trace;
  print_newline ();
  let wall = Unix.gettimeofday () -. started in
  if options.perf_summary then begin
    (* After the counters snapshot and metrics.csv: the ladder re-solves
       the exact stack at three pool widths, which would otherwise
       inflate the gated deterministic counters. *)
    run_exact_jobs ();
    Printf.printf "exact-solver jobs ladder (same bit-identical work per width):\n";
    List.iter
      (fun (name, rows) ->
        Printf.printf "  %-14s" name;
        List.iter
          (fun (jobs, seconds) -> Printf.printf "  j%d %.3fs" jobs seconds)
          rows;
        (match (List.assoc_opt 1 rows, List.assoc_opt 8 rows) with
        | Some t1, Some t8 when t8 > 0. ->
          Printf.printf "  (j8 speedup %.2fx)" (t1 /. t8)
        | _ -> ());
        print_newline ())
      !exact_jobs_results;
    let path = Filename.concat options.out "perf-summary.json" in
    write_perf_summary ~wall path;
    Printf.printf "wrote %s\n" path
  end;
  Printf.printf "wall-clock: %.2f s (jobs %d)\n" wall
    (Pipeline_util.Pool.jobs ());
  if !table1_failures <> [] then begin
    print_endline "FAILED: Table 1 outside the documented tolerance (see above).";
    exit 1
  end;
  print_endline "done."

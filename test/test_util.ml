open Pipeline_util

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let va = Rng.int64 a in
  let vb = Rng.int64 b in
  Alcotest.(check int64) "copy continues from the same state" va vb;
  (* advancing a does not advance b *)
  let _ = Rng.int64 a in
  let va2 = Rng.int64 a and vb2 = Rng.int64 b in
  Alcotest.(check bool) "diverged consumption" true (va2 <> vb2)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng 5 9 in
    Alcotest.(check bool) "5 <= v <= 9" true (v >= 5 && v <= 9)
  done

let test_rng_int_in_hits_extremes () =
  let rng = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 2000 do
    seen.(Rng.int_in rng 0 4) <- true
  done;
  Alcotest.(check bool) "all values reached" true (Array.for_all Fun.id seen)

let test_rng_int_rejects_bad_bound () =
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int (Rng.create 1) 0))

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_rng_float_in_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float_in rng (-1.) 1. in
    Alcotest.(check bool) "-1 <= v < 1" true (v >= -1. && v < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.create 13 in
  let total = ref 0. in
  let k = 20_000 in
  for _ = 1 to k do
    total := !total +. Rng.float rng 1.
  done;
  let mean = !total /. float_of_int k in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_rng_bool_balanced () =
  let rng = Rng.create 17 in
  let trues = ref 0 in
  let k = 10_000 in
  for _ = 1 to k do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int k in
  Alcotest.(check bool) "roughly fair" true (ratio > 0.45 && ratio < 0.55)

let test_rng_permutation () =
  let rng = Rng.create 23 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_shuffle_preserves_elements () =
  let rng = Rng.create 29 in
  let a = Array.init 30 (fun i -> i * i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort compare sa;
  Array.sort compare sb;
  Alcotest.(check (array int)) "same multiset" sa sb

let test_rng_pick_member () =
  let rng = Rng.create 31 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    Alcotest.(check bool) "member" true (Array.mem v a)
  done

let test_rng_pick_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick (Rng.create 1) [||]))

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_mean () = Helpers.check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_mean_opt () =
  Alcotest.(check (option (float 1e-9))) "none" None (Stats.mean_opt []);
  Alcotest.(check (option (float 1e-9))) "some" (Some 1.5) (Stats.mean_opt [ 1.; 2. ])

let test_geometric_mean () =
  Helpers.check_float "gmean" 2. (Stats.geometric_mean [ 1.; 2.; 4. ])

let test_geometric_mean_rejects_nonpositive () =
  Alcotest.check_raises "nonpositive"
    (Invalid_argument "Stats.geometric_mean: non-positive value") (fun () ->
      ignore (Stats.geometric_mean [ 1.; 0. ]))

let test_variance () =
  Helpers.check_float "variance" 2.5 (Stats.variance [ 1.; 2.; 3.; 4.; 5. ]);
  Helpers.check_float "single sample" 0. (Stats.variance [ 42. ])

let test_stddev () =
  Helpers.check_float "stddev" (sqrt 2.5) (Stats.stddev [ 1.; 2.; 3.; 4.; 5. ])

let test_median_odd () = Helpers.check_float "odd" 3. (Stats.median [ 5.; 3.; 1. ])

let test_median_even () =
  Helpers.check_float "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ])

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  Helpers.check_float "p0" 1. (Stats.percentile 0. xs);
  Helpers.check_float "p50" 3. (Stats.percentile 0.5 xs);
  Helpers.check_float "p100" 5. (Stats.percentile 1. xs);
  Helpers.check_float "p25" 2. (Stats.percentile 0.25 xs)

let test_percentile_bad_q () =
  Alcotest.check_raises "q>1" (Invalid_argument "Stats.percentile: q not in [0,1]")
    (fun () -> ignore (Stats.percentile 1.5 [ 1. ]))

let test_min_max () =
  let mn, mx = Stats.min_max [ 3.; -1.; 7.; 0. ] in
  Helpers.check_float "min" (-1.) mn;
  Helpers.check_float "max" 7. mx

let test_acc_matches_batch () =
  let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  let acc = Stats.Acc.add_list Stats.Acc.empty xs in
  Alcotest.(check int) "count" (List.length xs) (Stats.Acc.count acc);
  Helpers.check_float "mean" (Stats.mean xs) (Stats.Acc.mean acc);
  Helpers.check_float "stddev" (Stats.stddev xs) (Stats.Acc.stddev acc);
  Helpers.check_float "min" 2. (Stats.Acc.min acc);
  Helpers.check_float "max" 9. (Stats.Acc.max acc)

let test_acc_empty () =
  Alcotest.(check int) "count" 0 (Stats.Acc.count Stats.Acc.empty);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Acc.mean Stats.Acc.empty))

let prop_acc_mean =
  Helpers.qtest "Acc.mean = Stats.mean"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let acc = Stats.Acc.add_list Stats.Acc.empty xs in
      Helpers.feq ~eps:1e-6 (Stats.Acc.mean acc) (Stats.mean xs))

let prop_percentile_monotone =
  Helpers.qtest "percentile monotone in q"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_range 0. 100.))
        (pair (float_range 0. 1.) (float_range 0. 1.)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_sorted () =
  let s = Series.make ~label:"s" [ (3., 1.); (1., 2.); (2., 0.) ] in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "sorted by x"
    [ (1., 2.); (2., 0.); (3., 1.) ]
    (Series.points s)

let test_series_interpolate_inside () =
  let s = Series.make ~label:"s" [ (0., 0.); (10., 20.) ] in
  Alcotest.(check (option (float 1e-9))) "midpoint" (Some 10.)
    (Series.interpolate s 5.)

let test_series_interpolate_at_knot () =
  let s = Series.make ~label:"s" [ (0., 3.); (1., 7.); (2., 5.) ] in
  Alcotest.(check (option (float 1e-9))) "knot" (Some 7.) (Series.interpolate s 1.)

let test_series_interpolate_outside () =
  let s = Series.make ~label:"s" [ (0., 0.); (10., 20.) ] in
  Alcotest.(check (option (float 1e-9))) "left" None (Series.interpolate s (-1.));
  Alcotest.(check (option (float 1e-9))) "right" None (Series.interpolate s 11.)

let test_series_resample () =
  let s = Series.make ~label:"s" [ (0., 0.); (4., 8.) ] in
  let r = Series.resample ~xs:[ -1.; 0.; 2.; 4.; 5. ] s in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "clipped and interpolated"
    [ (0., 0.); (2., 4.); (4., 8.) ]
    (Series.points r)

let test_series_ranges () =
  let s1 = Series.make ~label:"a" [ (0., 5.); (2., 1.) ] in
  let s2 = Series.make ~label:"b" [ (1., 9.) ] in
  match Series.ranges [ s1; s2 ] with
  | None -> Alcotest.fail "expected ranges"
  | Some ((xmin, xmax), (ymin, ymax)) ->
    Helpers.check_float "xmin" 0. xmin;
    Helpers.check_float "xmax" 2. xmax;
    Helpers.check_float "ymin" 1. ymin;
    Helpers.check_float "ymax" 9. ymax

let test_series_average_of_identical () =
  let mk () = Series.make ~label:"x" [ (0., 2.); (1., 4.) ] in
  let avg = Series.average ~label:"avg" [ mk (); mk (); mk () ] in
  List.iter
    (fun (x, y) -> Helpers.check_float "avg y = 2x+2" ((2. *. x) +. 2.) y)
    (Series.points avg)

let test_series_average_empty () =
  let avg = Series.average ~label:"avg" [] in
  Alcotest.(check bool) "empty" true (Series.is_empty avg)

let test_series_map_filter () =
  let s = Series.make ~label:"s" [ (0., 1.); (1., 2.) ] in
  let doubled = Series.map_y (fun y -> 2. *. y) s in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "map_y" [ (0., 2.); (1., 4.) ] (Series.points doubled);
  let only_large = Series.filter (fun (_, y) -> y > 1.5) s in
  Alcotest.(check int) "filter" 1 (Series.length only_large)

let test_uniform_grid () =
  let g = Series.uniform_grid ~points:5 0. 1. in
  Alcotest.(check int) "5 points" 5 (List.length g);
  Helpers.check_float "first" 0. (List.hd g);
  Helpers.check_float "last" 1. (List.nth g 4)

let prop_interpolate_within_bounds =
  Helpers.qtest "interpolation stays within y-range"
    QCheck2.Gen.(
      pair
        (list_size (int_range 2 20)
           (pair (float_range 0. 100.) (float_range 0. 100.)))
        (float_range 0. 100.))
    (fun (pts, x) ->
      let s = Series.make ~label:"q" pts in
      match (Series.interpolate s x, Series.y_range s) with
      | None, _ | _, None -> true
      | Some y, Some (lo, hi) -> y >= lo -. 1e-6 && y <= hi +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Table / Csv / Ascii_plot                                           *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out = Table.render [ [ "h1"; "h2" ]; [ "a"; "1" ]; [ "bbb"; "22" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "5 split segments (header, rule, 2 rows, trailing)" 5
    (List.length lines);
  Alcotest.(check bool) "has rule" true
    (String.length (List.nth lines 1) > 0 && (List.nth lines 1).[0] = '-')

let test_table_ragged_rows () =
  let out = Table.render [ [ "a"; "b"; "c" ]; [ "x" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_empty () = Alcotest.(check string) "empty" "" (Table.render [])

let test_table_markdown () =
  let out = Table.render_markdown [ [ "h" ]; [ "v" ] ] in
  Alcotest.(check bool) "separator line" true
    (String.split_on_char '\n' out |> fun l -> List.nth l 1 = "|---|")

let test_float_cell () =
  Alcotest.(check string) "regular" "3.14" (Table.float_cell ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.float_cell Float.nan);
  Alcotest.(check string) "inf" "inf" (Table.float_cell Float.infinity)

let test_csv_dat () =
  let s = Series.make ~label:"curve" [ (1., 2.); (3., 4.) ] in
  let out = Csv.dat_of_series [ s ] in
  Alcotest.(check string) "gnuplot block" "# curve\n1 2\n3 4\n" out

let test_csv_quoting () =
  let out = Csv.csv_of_rows ~header:[ "a,b"; "c\"d" ] [ [ "x"; "y" ] ] in
  Alcotest.(check bool) "quoted comma" true
    (String.length out > 0 && String.sub out 0 5 = "\"a,b\"")

let test_csv_of_series () =
  let s = Series.make ~label:"l" [ (1., 2.) ] in
  Alcotest.(check string) "csv" "series,x,y\nl,1,2\n" (Csv.csv_of_series [ s ])

let test_csv_to_file () =
  let dir = Filename.temp_file "pw" "" in
  Sys.remove dir;
  let path = Filename.concat (Filename.concat dir "sub") "f.txt" in
  Csv.to_file path "hello";
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "roundtrip" "hello" line

let test_ascii_plot_renders () =
  let s1 = Series.make ~label:"a" [ (0., 0.); (1., 1.) ] in
  let s2 = Series.make ~label:"b" [ (0., 1.); (1., 0.) ] in
  let out = Ascii_plot.render [ s1; s2 ] in
  Alcotest.(check bool) "has legend" true
    (String.length out > 0
    && String.length out > String.length "legend"
    &&
    let re = Str_find.contains out "legend:" in
    re)

let test_ascii_plot_empty () =
  Alcotest.(check string) "placeholder" "(no data to plot)" (Ascii_plot.render [])

let test_ascii_plot_flat_series () =
  let s = Series.make ~label:"flat" [ (0., 5.); (1., 5.) ] in
  let out = Ascii_plot.render [ s ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_render_table () =
  let s = Series.make ~label:"x" [ (1., 2.) ] in
  let out = Ascii_plot.render_table [ s ] in
  Alcotest.(check bool) "has label" true (Str_find.contains out "# x")


(* ------------------------------------------------------------------ *)
(* Bipartite / Hungarian                                               *)
(* ------------------------------------------------------------------ *)

let test_bipartite_perfect () =
  let adjacency = [| [ 0; 1 ]; [ 0 ]; [ 2 ] |] in
  let r = Bipartite.max_matching ~left:3 ~right:3 ~adjacency in
  Alcotest.(check int) "size" 3 r.Bipartite.size;
  Alcotest.(check bool) "perfect" true (Bipartite.is_perfect_on_left r);
  (* vertex 1 can only take 0, forcing vertex 0 onto 1. *)
  Alcotest.(check int) "forced" 0 r.Bipartite.left_match.(1);
  Alcotest.(check int) "displaced" 1 r.Bipartite.left_match.(0)

let test_bipartite_imperfect () =
  let adjacency = [| [ 0 ]; [ 0 ] |] in
  let r = Bipartite.max_matching ~left:2 ~right:1 ~adjacency in
  Alcotest.(check int) "size" 1 r.Bipartite.size;
  Alcotest.(check bool) "not perfect" false (Bipartite.is_perfect_on_left r)

let test_bipartite_empty_adjacency () =
  let r = Bipartite.max_matching ~left:2 ~right:3 ~adjacency:[| []; [ 1 ] |] in
  Alcotest.(check int) "size" 1 r.Bipartite.size

let test_bipartite_rejects_bad_input () =
  Alcotest.(check bool) "neighbour out of range" true
    (try
       ignore (Bipartite.max_matching ~left:1 ~right:1 ~adjacency:[| [ 5 ] |]);
       false
     with Invalid_argument _ -> true)

let test_bipartite_matching_consistency () =
  let adjacency = [| [ 0; 1; 2 ]; [ 1 ]; [ 1; 2 ] |] in
  let r = Bipartite.max_matching ~left:3 ~right:3 ~adjacency in
  Array.iteri
    (fun i j ->
      if j >= 0 then begin
        Alcotest.(check bool) "edge exists" true (List.mem j adjacency.(i));
        Alcotest.(check int) "inverse" i r.Bipartite.right_match.(j)
      end)
    r.Bipartite.left_match

let prop_bipartite_size_bounds =
  Helpers.qtest "matching size <= min(left, right)"
    QCheck2.Gen.(
      pair (int_range 1 8)
        (pair (int_range 1 8) (int_range 0 100_000)))
    (fun (left, (right, seed)) ->
      let rng = Rng.create seed in
      let adjacency =
        Array.init left (fun _ ->
            List.filter (fun _ -> Rng.bool rng) (List.init right Fun.id))
      in
      let r = Bipartite.max_matching ~left ~right ~adjacency in
      r.Bipartite.size <= min left right
      && Array.for_all (fun j -> j >= -1 && j < right) r.Bipartite.left_match)

let test_hungarian_known () =
  (* Classic 3x3: optimal value 5 via (0,1) (1,0) (2,2). *)
  let m = [| [| 4.; 1.; 3. |]; [| 2.; 0.; 5. |]; [| 3.; 2.; 2. |] |] in
  match Hungarian.solve ~rows:3 ~cols:3 ~cost:(fun i j -> m.(i).(j)) with
  | None -> Alcotest.fail "expected a solution"
  | Some (value, assignment) ->
    Helpers.check_float "value" 5. value;
    let seen = Array.make 3 false in
    Array.iter (fun j -> seen.(j) <- true) assignment;
    Alcotest.(check bool) "injective" true (Array.for_all Fun.id seen)

let test_hungarian_rectangular () =
  (* 2 rows, 3 columns: skip the expensive middle column. *)
  let m = [| [| 10.; 100.; 1. |]; [| 1.; 100.; 10. |] |] in
  match Hungarian.solve ~rows:2 ~cols:3 ~cost:(fun i j -> m.(i).(j)) with
  | None -> Alcotest.fail "expected a solution"
  | Some (value, assignment) ->
    Helpers.check_float "value" 2. value;
    Alcotest.(check (array int)) "assignment" [| 2; 0 |] assignment

let test_hungarian_infeasible () =
  Alcotest.(check bool) "all forbidden" true
    (Hungarian.solve ~rows:1 ~cols:1 ~cost:(fun _ _ -> infinity) = None)

let test_hungarian_partial_forbidden () =
  (* Row 0 can only take column 0; row 1 must then pay for column 1. *)
  let m = [| [| 1.; infinity |]; [| 0.; 7. |] |] in
  match Hungarian.solve ~rows:2 ~cols:2 ~cost:(fun i j -> m.(i).(j)) with
  | None -> Alcotest.fail "expected a solution"
  | Some (value, assignment) ->
    Helpers.check_float "value" 8. value;
    Alcotest.(check (array int)) "assignment" [| 0; 1 |] assignment

let test_hungarian_rows_exceed_cols () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Hungarian.solve ~rows:2 ~cols:1 ~cost:(fun _ _ -> 1.));
       false
     with Invalid_argument _ -> true)

let brute_assignment rows cols cost =
  (* Exhaustive minimum over injections, for cross-checking. *)
  let best = ref infinity in
  let used = Array.make cols false in
  let rec go i acc =
    if i = rows then best := Float.min !best acc
    else
      for j = 0 to cols - 1 do
        if not used.(j) then begin
          used.(j) <- true;
          go (i + 1) (acc +. cost i j);
          used.(j) <- false
        end
      done
  in
  go 0 0.;
  !best

let prop_hungarian_matches_brute =
  Helpers.qtest ~count:60 "Hungarian = brute force on random matrices"
    QCheck2.Gen.(
      pair (int_range 1 5) (pair (int_range 0 3) (int_range 0 100_000)))
    (fun (rows, (extra, seed)) ->
      let cols = rows + extra in
      let rng = Rng.create seed in
      let m =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> float_of_int (Rng.int_in rng 0 50)))
      in
      match Hungarian.solve ~rows ~cols ~cost:(fun i j -> m.(i).(j)) with
      | None -> false
      | Some (value, _) ->
        Helpers.feq ~eps:1e-9 value (brute_assignment rows cols (fun i j -> m.(i).(j))))


(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_counts () =
  let h = Histogram.build ~bins:2 [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "total" 4 (Histogram.total h);
  match Histogram.counts h with
  | [ (lo1, hi1, c1); (lo2, hi2, c2) ] ->
    Helpers.check_float "lo1" 0. lo1;
    Helpers.check_float "hi1" 1.5 hi1;
    Helpers.check_float "lo2" 1.5 lo2;
    Helpers.check_float "hi2" 3. hi2;
    Alcotest.(check int) "c1" 2 c1;
    Alcotest.(check int) "c2 (upper edge included)" 2 c2
  | _ -> Alcotest.fail "expected two bins"

let test_histogram_degenerate () =
  let h = Histogram.build ~bins:5 [ 7.; 7.; 7. ] in
  Alcotest.(check int) "all in one bin" 3
    (List.fold_left (fun acc (_, _, c) -> max acc c) 0 (Histogram.counts h))

let test_histogram_render () =
  let out = Histogram.render ~width:20 (Histogram.build ~bins:3 [ 1.; 2.; 2.; 3. ]) in
  Alcotest.(check bool) "has bars" true (Str_find.contains out "#");
  Alcotest.(check int) "three lines" 3
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' out)))

let test_histogram_rejects () =
  Alcotest.(check bool) "empty" true
    (try ignore (Histogram.build []); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "nan" true
    (try ignore (Histogram.build [ Float.nan ]); false with Invalid_argument _ -> true)

let prop_histogram_conserves_samples =
  Helpers.qtest "bin counts sum to the sample count"
    QCheck2.Gen.(
      pair (int_range 1 12) (list_size (int_range 1 60) (float_range (-50.) 50.)))
    (fun (bins, samples) ->
      Histogram.total (Histogram.build ~bins samples) = List.length samples)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_defaults () =
  Alcotest.(check bool) "recommended >= 1" true (Pool.recommended_jobs () >= 1);
  Alcotest.(check bool) "recommended <= cap" true
    (Pool.recommended_jobs () <= Pool.hard_cap);
  Alcotest.(check int) "library default is sequential" 1 (Pool.jobs ());
  Pool.set_jobs 3;
  Alcotest.(check int) "set_jobs" 3 (Pool.jobs ());
  Pool.set_jobs 0;
  Alcotest.(check int) "clamped below" 1 (Pool.jobs ());
  Pool.set_jobs 10_000;
  Alcotest.(check int) "clamped above" Pool.hard_cap (Pool.jobs ());
  Pool.set_jobs 1

let prop_pool_map_is_array_map =
  Helpers.qtest ~count:80 "map ~jobs:n f = Array.map f (bit-for-bit)"
    QCheck2.Gen.(
      pair (int_range 1 12) (array_size (int_range 0 60) (int_range (-1000) 1000)))
    (fun (jobs, xs) ->
      (* A float-valued f whose result depends on index-neighbourhood
         arithmetic: any chunking or reassembly mistake shows up. *)
      let f x = (float_of_int x *. 1.7) +. sqrt (float_of_int (abs x)) in
      Pool.map ~jobs f xs = Array.map f xs)

let prop_pool_map_list_is_list_map =
  Helpers.qtest ~count:40 "map_list ~jobs:n f = List.map f"
    QCheck2.Gen.(
      pair (int_range 1 8) (list_size (int_range 0 40) (int_range 0 500)))
    (fun (jobs, xs) ->
      let f x = Printf.sprintf "<%d>" (x * 3) in
      Pool.map_list ~jobs f xs = List.map f xs)

let test_pool_nested_map () =
  (* A task that itself calls Pool.map must take the sequential path and
     still produce the right answer. *)
  let outer = Array.init 10 (fun i -> i) in
  let f i =
    Array.fold_left ( + ) 0 (Pool.map ~jobs:4 (fun j -> (i * 100) + j) (Array.init 5 Fun.id))
  in
  Alcotest.(check bool) "nested = sequential" true
    (Pool.map ~jobs:4 f outer = Array.map f outer)

let test_pool_exception_propagates () =
  let boom i = if i = 17 then invalid_arg "boom-17" else i in
  Alcotest.(check bool) "raises the task's exception" true
    (try
       ignore (Pool.map ~jobs:4 boom (Array.init 40 Fun.id));
       false
     with Invalid_argument m -> m = "boom-17")

let test_pool_first_failing_chunk_wins () =
  (* Two failing tasks: the exception of the lowest-indexed chunk must
     be reported whatever the scheduling. *)
  let boom i =
    if i = 5 then failwith "early" else if i = 35 then failwith "late" else i
  in
  Alcotest.(check bool) "lowest chunk's exception" true
    (try
       ignore (Pool.map ~jobs:4 boom (Array.init 40 Fun.id));
       false
     with Failure m -> m = "early")

let test_pool_empty_and_single () =
  Alcotest.(check bool) "empty" true (Pool.map ~jobs:4 succ [||] = [||]);
  Alcotest.(check bool) "singleton" true (Pool.map ~jobs:4 succ [| 7 |] = [| 8 |])

(* Task-tree layer: the synthetic tree splits an integer range into 2–4
   parts until singletons. Each task covers a contiguous range, so
   concatenating the per-task ranges in frontier order must reproduce
   the root range exactly — any reordering, loss or duplication in
   fan_out shows up immediately. *)
let range_children (lo, hi) =
  if lo >= hi then [||]
  else begin
    let size = hi - lo + 1 in
    let parts = min size (2 + (size mod 3)) in
    let step = size / parts in
    Array.init parts (fun k ->
        let a = lo + (k * step) in
        let b = if k = parts - 1 then hi else a + step - 1 in
        (a, b))
  end

let range_concat tasks =
  List.concat_map
    (fun (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i))
    (Array.to_list tasks)

let prop_fan_out_preserves_order =
  Helpers.qtest ~count:100 "fan_out frontier concatenates to the root range"
    QCheck2.Gen.(
      triple (int_range 0 200) (int_range 1 64) (int_range 0 8))
    (fun (n, cap, depth) ->
      let frontier = Pool.fan_out ~cap ~depth ~children:range_children [| (0, n) |] in
      range_concat frontier = List.init (n + 1) Fun.id)

let prop_fan_out_deterministic_and_bounded =
  Helpers.qtest ~count:60 "fan_out is a pure function of (roots, cap, depth)"
    QCheck2.Gen.(pair (int_range 0 300) (int_range 1 64))
    (fun (n, cap) ->
      let run () = Pool.fan_out ~cap ~children:range_children [| (0, n) |] in
      let a = run () in
      (* Reproducible, and never overshoots cap by more than one task's
         branching factor (4 here). *)
      a = run () && Array.length a <= cap + 4)

let test_fan_out_leaves_and_depth () =
  (* Leaf roots pass through untouched. *)
  let leaves = [| (3, 3); (7, 7) |] in
  Alcotest.(check bool) "leaf roots unchanged" true
    (Pool.fan_out ~children:range_children leaves = leaves);
  (* depth:0 never expands; depth:1 expands exactly one level. *)
  Alcotest.(check bool) "depth 0" true
    (Pool.fan_out ~depth:0 ~children:range_children [| (0, 9) |] = [| (0, 9) |]);
  Alcotest.(check bool) "depth 1" true
    (Pool.fan_out ~depth:1 ~cap:1000 ~children:range_children [| (0, 9) |]
    = range_children (0, 9))

let prop_tree_map_equals_sequential =
  Helpers.qtest ~count:60 "tree_map fold = sequential DFS fold at any width"
    QCheck2.Gen.(
      triple (int_range 0 150) (int_range 1 32) (oneofl [ 1; 4; 8 ]))
    (fun (n, cap, jobs) ->
      (* Per-task fold in subtree order, merged in index order: must be
         bit-identical to the one-pass sequential fold. *)
      let run (lo, hi) =
        List.fold_left
          (fun acc v -> (acc *. 1.003) +. (float_of_int v *. 0.37))
          0.
          (List.init (hi - lo + 1) (fun i -> lo + i))
      in
      let parts = Pool.tree_map ~jobs ~cap ~children:range_children ~run [| (0, n) |] in
      let seq = run (0, n) in
      (* The fold is not associative, so compare through the same merge
         on the jobs:1 frontier instead of against [seq] directly — and
         check the frontier itself ignores the width. *)
      let parts1 =
        Pool.tree_map ~jobs:1 ~cap ~children:range_children ~run [| (0, n) |]
      in
      parts = parts1 && (Array.length parts <> 1 || parts.(0) = seq))

let test_tree_cap_knob () =
  let prev = Pool.tree_cap () in
  Fun.protect
    ~finally:(fun () -> Pool.set_tree_cap prev)
    (fun () ->
      Alcotest.(check int) "default" Pool.default_tree_cap prev;
      Pool.set_tree_cap 7;
      Alcotest.(check int) "set" 7 (Pool.tree_cap ());
      Pool.set_tree_cap 0;
      Alcotest.(check int) "clamped" 1 (Pool.tree_cap ()))

let test_pool_nested_tree_map () =
  (* Satellite regression: a pool worker that itself fans out a task
     tree must fall back to the sequential path and still be exact. *)
  let inner i =
    let run (lo, hi) = (hi - lo + 1) * (i + 1) in
    Array.fold_left ( + ) 0
      (Pool.tree_map ~jobs:4 ~cap:16 ~children:range_children ~run [| (0, 20) |])
  in
  Alcotest.(check bool) "nested tree_map = sequential" true
    (Pool.map ~jobs:4 inner (Array.init 8 Fun.id)
    = Array.map inner (Array.init 8 Fun.id))

let test_incumbent_monotone () =
  let inc = Pool.Incumbent.make 10. in
  Pool.Incumbent.lower_to inc 5.;
  Alcotest.(check (float 0.)) "lowered" 5. (Pool.Incumbent.get inc);
  Pool.Incumbent.lower_to inc 7.;
  Alcotest.(check (float 0.)) "never raised" 5. (Pool.Incumbent.get inc);
  (* Concurrent lowers from pool workers: the minimum wins. *)
  ignore
    (Pool.map ~jobs:4
       (fun v -> Pool.Incumbent.lower_to inc v)
       (Array.init 64 (fun i -> 4. -. (float_of_int i /. 32.))));
  Alcotest.(check (float 1e-12)) "min of all lowers" (4. -. (63. /. 32.))
    (Pool.Incumbent.get inc)

let prop_pool_rng_per_task =
  Helpers.qtest ~count:30 "per-task derived Rng streams are schedule-independent"
    QCheck2.Gen.(pair (int_range 2 8) (int_range 0 1000))
    (fun (jobs, seed) ->
      (* The campaign pattern: every task derives its own stream from
         (campaign seed, task index); results must not depend on jobs. *)
      let task i =
        let rng = Rng.create (Hashtbl.hash (seed, i)) in
        Rng.float rng 1.0 +. float_of_int (Rng.int rng 100)
      in
      let tasks = Array.init 20 Fun.id in
      Pool.map ~jobs task tasks = Pool.map ~jobs:1 task tasks)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int_in extremes" `Quick test_rng_int_in_hits_extremes;
          Alcotest.test_case "int bad bound" `Quick test_rng_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float_in bounds" `Quick test_rng_float_in_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bool balanced" `Quick test_rng_bool_balanced;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_preserves_elements;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "mean empty" `Quick test_mean_empty;
          Alcotest.test_case "mean_opt" `Quick test_mean_opt;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "gmean nonpositive" `Quick
            test_geometric_mean_rejects_nonpositive;
          Alcotest.test_case "variance" `Quick test_variance;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile bad q" `Quick test_percentile_bad_q;
          Alcotest.test_case "min_max" `Quick test_min_max;
          Alcotest.test_case "acc matches batch" `Quick test_acc_matches_batch;
          Alcotest.test_case "acc empty" `Quick test_acc_empty;
          prop_acc_mean;
          prop_percentile_monotone;
        ] );
      ( "series",
        [
          Alcotest.test_case "sorted" `Quick test_series_sorted;
          Alcotest.test_case "interpolate inside" `Quick test_series_interpolate_inside;
          Alcotest.test_case "interpolate at knot" `Quick test_series_interpolate_at_knot;
          Alcotest.test_case "interpolate outside" `Quick
            test_series_interpolate_outside;
          Alcotest.test_case "resample" `Quick test_series_resample;
          Alcotest.test_case "ranges" `Quick test_series_ranges;
          Alcotest.test_case "average identical" `Quick test_series_average_of_identical;
          Alcotest.test_case "average empty" `Quick test_series_average_empty;
          Alcotest.test_case "map/filter" `Quick test_series_map_filter;
          Alcotest.test_case "uniform grid" `Quick test_uniform_grid;
          prop_interpolate_within_bounds;
        ] );
      ( "pool",
        [
          Alcotest.test_case "defaults and clamping" `Quick test_pool_defaults;
          prop_pool_map_is_array_map;
          prop_pool_map_list_is_list_map;
          Alcotest.test_case "nested map" `Quick test_pool_nested_map;
          Alcotest.test_case "exception propagates" `Quick
            test_pool_exception_propagates;
          Alcotest.test_case "first failing chunk wins" `Quick
            test_pool_first_failing_chunk_wins;
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_single;
          prop_pool_rng_per_task;
          prop_fan_out_preserves_order;
          prop_fan_out_deterministic_and_bounded;
          Alcotest.test_case "fan_out leaves and depth" `Quick
            test_fan_out_leaves_and_depth;
          prop_tree_map_equals_sequential;
          Alcotest.test_case "tree cap knob" `Quick test_tree_cap_knob;
          Alcotest.test_case "nested tree_map" `Quick test_pool_nested_tree_map;
          Alcotest.test_case "incumbent monotone" `Quick test_incumbent_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "degenerate" `Quick test_histogram_degenerate;
          Alcotest.test_case "render" `Quick test_histogram_render;
          Alcotest.test_case "rejects" `Quick test_histogram_rejects;
          prop_histogram_conserves_samples;
        ] );
      ( "matching",
        [
          Alcotest.test_case "bipartite perfect" `Quick test_bipartite_perfect;
          Alcotest.test_case "bipartite imperfect" `Quick test_bipartite_imperfect;
          Alcotest.test_case "bipartite empty adj" `Quick test_bipartite_empty_adjacency;
          Alcotest.test_case "bipartite bad input" `Quick
            test_bipartite_rejects_bad_input;
          Alcotest.test_case "bipartite consistency" `Quick
            test_bipartite_matching_consistency;
          prop_bipartite_size_bounds;
          Alcotest.test_case "hungarian known" `Quick test_hungarian_known;
          Alcotest.test_case "hungarian rectangular" `Quick test_hungarian_rectangular;
          Alcotest.test_case "hungarian infeasible" `Quick test_hungarian_infeasible;
          Alcotest.test_case "hungarian forbidden" `Quick
            test_hungarian_partial_forbidden;
          Alcotest.test_case "hungarian rows > cols" `Quick
            test_hungarian_rows_exceed_cols;
          prop_hungarian_matches_brute;
        ] );
      ( "table-csv-plot",
        [
          Alcotest.test_case "table render" `Quick test_table_render;
          Alcotest.test_case "table ragged" `Quick test_table_ragged_rows;
          Alcotest.test_case "table empty" `Quick test_table_empty;
          Alcotest.test_case "table markdown" `Quick test_table_markdown;
          Alcotest.test_case "float cell" `Quick test_float_cell;
          Alcotest.test_case "dat format" `Quick test_csv_dat;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "csv of series" `Quick test_csv_of_series;
          Alcotest.test_case "to_file mkdir" `Quick test_csv_to_file;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot_renders;
          Alcotest.test_case "ascii plot empty" `Quick test_ascii_plot_empty;
          Alcotest.test_case "ascii plot flat" `Quick test_ascii_plot_flat_series;
          Alcotest.test_case "render table" `Quick test_render_table;
        ] );
    ]

(* Shared test utilities. *)

open Pipeline_model

let feq ?(eps = 1e-9) a b =
  a = b
  || Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let float_eps = Alcotest.testable Fmt.float (fun a b -> feq a b)

let check_float msg expected actual = Alcotest.check float_eps msg expected actual

(* A fixed hand-checkable instance: 4 stages, 3 processors, b = 10. *)
let small_app () =
  Application.make
    ~deltas:[| 10.; 20.; 30.; 20.; 10. |]
    [| 4.; 8.; 2.; 6. |]

let small_platform () = Platform.comm_homogeneous ~bandwidth:10. [| 2.; 4.; 1. |]

let small_instance () = Instance.make (small_app ()) (small_platform ())

(* Random instance generators for property tests. *)
let random_instance ?(n_max = 12) ?(p_max = 6) seed =
  let rng = Pipeline_util.Rng.create seed in
  let n = 1 + Pipeline_util.Rng.int rng n_max in
  let p = 1 + Pipeline_util.Rng.int rng p_max in
  let works =
    Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let deltas =
    Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
  in
  let speeds =
    Array.init p (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let app = Application.make ~deltas works in
  let platform = Platform.comm_homogeneous ~bandwidth:10. speeds in
  Instance.make ~seed app platform

(* Uniform message sizes — the precondition of the lazy candidate
   lattice (Candidates.Set), so the lattice props can force the lazy
   representation on every draw. *)
let random_uniform_delta_instance ?(n_max = 12) ?(p_max = 6) seed =
  let rng = Pipeline_util.Rng.create seed in
  let n = 1 + Pipeline_util.Rng.int rng n_max in
  let p = 1 + Pipeline_util.Rng.int rng p_max in
  let delta = float_of_int (Pipeline_util.Rng.int_in rng 0 30) in
  let works =
    Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let speeds =
    Array.init p (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let app = Application.make ~deltas:(Array.make (n + 1) delta) works in
  let platform = Platform.comm_homogeneous ~bandwidth:10. speeds in
  Instance.make ~seed app platform

(* Fully heterogeneous draws: symmetric per-link bandwidth matrix and
   per-processor I/O bandwidths, so the het candidate-family props and
   the transform collapse laws exercise every platform shape. *)
let random_het_instance ?(n_max = 12) ?(p_max = 6) seed =
  let rng = Pipeline_util.Rng.create seed in
  let n = 1 + Pipeline_util.Rng.int rng n_max in
  let p = 1 + Pipeline_util.Rng.int rng p_max in
  let works =
    Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let deltas =
    Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
  in
  let speeds =
    Array.init p (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let bandwidths = Array.make_matrix p p 0. in
  for u = 0 to p - 1 do
    for v = u + 1 to p - 1 do
      let b = float_of_int (Pipeline_util.Rng.int_in rng 1 30) in
      bandwidths.(u).(v) <- b;
      bandwidths.(v).(u) <- b
    done
  done;
  let io_bandwidths =
    Array.init p (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 30))
  in
  let app = Application.make ~deltas works in
  let platform =
    Platform.fully_heterogeneous ~io_bandwidths ~bandwidths speeds
  in
  Instance.make ~seed app platform

(* Het platform, uniform message sizes: forces the lazy lattice arm of
   Candidates.Set on fully-het candidate families. *)
let random_uniform_delta_het_instance ?(n_max = 12) ?(p_max = 6) seed =
  let inst = random_het_instance ~n_max ~p_max seed in
  let app = inst.Instance.app in
  let n = Application.n app in
  let delta = Application.delta app 0 in
  let uniform =
    Application.make ~deltas:(Array.make (n + 1) delta) (Application.works app)
  in
  Instance.make ~seed uniform inst.Instance.platform

(* A deterministic list of seeds for "for all seeds" loops. *)
let seeds count = List.init count (fun i -> 1000 + (7919 * i))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

open Pipeline_model
open Pipeline_experiments
module Series = Pipeline_util.Series

let small_setup ?(experiment = Config.E1) ?(n = 6) ?(p = 4) () =
  Config.default_setup ~pairs:4 ~sweep_points:5 ~seed:99 experiment ~n ~p

(* ------------------------------------------------------------------ *)
(* Config                                                              *)
(* ------------------------------------------------------------------ *)

let test_config_names () =
  Alcotest.(check (list string)) "names"
    [ "E1"; "E2"; "E3"; "E4" ]
    (List.map Config.experiment_name Config.all_experiments);
  Alcotest.(check bool) "of_string roundtrip" true
    (List.for_all
       (fun e ->
         Config.experiment_of_string (Config.experiment_name e) = Some e)
       Config.all_experiments);
  Alcotest.(check bool) "unknown" true (Config.experiment_of_string "E9" = None)

let test_config_specs () =
  let spec = Config.app_spec Config.E1 ~n:7 in
  Alcotest.(check int) "n" 7 spec.App_generator.n;
  (match spec.App_generator.delta with
  | App_generator.Fixed v -> Helpers.check_float "E1 delta fixed" 10. v
  | _ -> Alcotest.fail "E1 deltas should be fixed");
  match (Config.app_spec Config.E4 ~n:3).App_generator.work with
  | App_generator.Float_uniform (lo, hi) ->
    Helpers.check_float "E4 lo" 0.01 lo;
    Helpers.check_float "E4 hi" 10. hi
  | _ -> Alcotest.fail "E4 works should be float-uniform"

let test_config_paper_stage_counts () =
  Alcotest.(check (pair int int)) "E1" (10, 40) (Config.paper_stage_counts Config.E1);
  Alcotest.(check (pair int int)) "E3" (5, 20) (Config.paper_stage_counts Config.E3)

let test_config_setup () =
  let s = Config.default_setup Config.E2 ~n:10 ~p:10 in
  Alcotest.(check int) "pairs default" 50 s.Config.pairs;
  Helpers.check_float "bandwidth" 10. s.Config.bandwidth;
  Alcotest.(check string) "label" "E2 n=10 p=10" (Config.setup_label s);
  Alcotest.(check bool) "invalid rejected" true
    (try
       ignore (Config.default_setup Config.E1 ~n:0 ~p:1);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_deterministic () =
  let setup = small_setup () in
  let a = Workload.instances setup and b = Workload.instances setup in
  List.iter2
    (fun (x : Instance.t) (y : Instance.t) ->
      Alcotest.(check bool) "same app" true (Application.equal x.app y.app);
      Alcotest.(check bool) "same platform" true (Platform.equal x.platform y.platform))
    a b

let test_workload_batch_shape () =
  let setup = small_setup () in
  let batch = Workload.instances setup in
  Alcotest.(check int) "pairs" 4 (List.length batch);
  List.iteri
    (fun i (inst : Instance.t) ->
      Alcotest.(check int) "id" i inst.id;
      Alcotest.(check int) "n" 6 (Application.n inst.app);
      Alcotest.(check int) "p" 4 (Platform.p inst.platform))
    batch

let test_workload_instances_differ () =
  let setup = small_setup () in
  let batch = Workload.instances setup in
  let first = List.hd batch and second = List.nth batch 1 in
  Alcotest.(check bool) "different draws" true
    (not
       (Application.equal first.Instance.app second.Instance.app
       && Platform.equal first.Instance.platform second.Instance.platform))

let test_workload_out_of_range () =
  Alcotest.check_raises "bad index" (Invalid_argument "Workload.instance: out of range")
    (fun () -> ignore (Workload.instance (small_setup ()) 99))

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

let test_period_lower_bound_valid () =
  (* The bound must not exceed the true optimal period. *)
  List.iter
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:7 ~p_max:4 seed in
      let lb = Sweep.period_lower_bound inst in
      let opt = (Pipeline_optimal.Bicriteria.min_period inst).Pipeline_core.Solution.period in
      Alcotest.(check bool) "lb <= optimal period" true (lb <= opt +. 1e-9))
    (Helpers.seeds 25)

let test_sweep_bounds_ordered () =
  let batch = Workload.instances (small_setup ()) in
  let plo, phi = Sweep.period_bounds batch in
  let llo, lhi = Sweep.latency_bounds batch in
  Alcotest.(check bool) "period lo <= hi" true (plo <= phi);
  Alcotest.(check bool) "latency lo <= hi" true (llo <= lhi)

let test_sweep_grid () =
  let g = Sweep.grid ~lo:0. ~hi:10. ~points:5 in
  Alcotest.(check int) "points" 5 (List.length g);
  Helpers.check_float "first" 0. (List.hd g);
  Helpers.check_float "last" 10. (List.nth g 4);
  Alcotest.(check (list (float 1e-9))) "degenerate" [ 5. ]
    (Sweep.grid ~lo:5. ~hi:5. ~points:4)

let test_sweep_run_period_fixed () =
  let batch = Workload.instances (small_setup ()) in
  let info = List.hd Pipeline_registry.paper in
  let lo, hi = Sweep.period_bounds batch in
  let thresholds = Sweep.grid ~lo ~hi ~points:6 in
  let series = Sweep.run info batch ~thresholds in
  Alcotest.(check string) "label" info.Pipeline_registry.paper_name
    (Series.label series);
  Alcotest.(check bool) "at most one point per threshold" true
    (Series.length series <= 6);
  (* The highest threshold (single-proc period) always succeeds. *)
  Alcotest.(check bool) "has points" true (Series.length series >= 1);
  (* For a period-fixed heuristic the x of each point is the threshold. *)
  List.iter
    (fun (x, _) ->
      Alcotest.(check bool) "x is one of the thresholds" true
        (List.exists (fun t -> Helpers.feq t x) thresholds))
    (Series.points series)

let test_sweep_run_latency_fixed () =
  let batch = Workload.instances (small_setup ()) in
  let info =
    List.find
      (fun (i : Pipeline_registry.info) ->
        i.Pipeline_registry.kind = Pipeline_registry.Latency_fixed)
      Pipeline_registry.paper
  in
  let lo, hi = Sweep.latency_bounds batch in
  let thresholds = Sweep.grid ~lo ~hi ~points:6 in
  let series = Sweep.run info batch ~thresholds in
  (* For latency-fixed heuristics the y of each point is the threshold. *)
  List.iter
    (fun (_, y) ->
      Alcotest.(check bool) "y is one of the thresholds" true
        (List.exists (fun t -> Helpers.feq t y) thresholds))
    (Series.points series)

let test_success_rate_extremes () =
  let batch = Workload.instances (small_setup ()) in
  let info = List.hd Pipeline_registry.paper in
  let _, hi = Sweep.period_bounds batch in
  Helpers.check_float "everyone succeeds at single-proc period" 1.
    (Sweep.success_rate info batch ~threshold:hi);
  Helpers.check_float "nobody succeeds at 0" 0.
    (Sweep.success_rate info batch ~threshold:0.)

(* ------------------------------------------------------------------ *)
(* Failure thresholds (Table 1)                                        *)
(* ------------------------------------------------------------------ *)

let test_latency_fixed_threshold_is_optimal_latency () =
  let inst = Helpers.random_instance 31337 in
  let lopt = Instance.optimal_latency inst in
  List.iter
    (fun (info : Pipeline_registry.info) ->
      let t = Failure.instance_threshold info inst in
      Alcotest.(check bool) "converges to L_opt" true
        (Float.abs (t -. lopt) <= 1e-6 *. Float.max 1. lopt))
    (List.filter
       (fun (i : Pipeline_registry.info) ->
         i.Pipeline_registry.kind = Pipeline_registry.Latency_fixed)
       Pipeline_registry.paper)

let test_failure_threshold_brackets_behaviour () =
  let inst = Helpers.random_instance 777 in
  let info = List.hd Pipeline_registry.paper in
  let t = Failure.instance_threshold info inst in
  Alcotest.(check bool) "fails just below" true
    (info.Pipeline_registry.solve inst ~threshold:(t *. 0.999) = None);
  Alcotest.(check bool) "succeeds just above" true
    (info.Pipeline_registry.solve inst ~threshold:(t *. 1.001 +. 1e-6) <> None)

let test_failure_table_shape () =
  let table = Failure.table ~pairs:3 ~seed:5 Config.E1 ~p:4 ~ns:[ 4; 6 ] in
  Alcotest.(check int) "six rows" 6 (List.length table.Failure.rows);
  List.iter
    (fun (_, values) -> Alcotest.(check int) "two columns" 2 (List.length values))
    table.Failure.rows;
  (* H5 and H6 rows coincide: both boundaries are the optimal latency. *)
  let row name = List.assoc name table.Failure.rows in
  List.iter2
    (fun a b -> Alcotest.(check bool) "H5 = H6" true (Helpers.feq ~eps:1e-6 a b))
    (row "H5") (row "H6");
  let rendered = Failure.render table in
  Alcotest.(check bool) "mentions H1" true (Str_find.contains rendered "H1");
  Alcotest.(check bool) "markdown has separator" true
    (Str_find.contains (Failure.render_markdown table) "|---|")

let test_failure_thresholds_grow_with_n () =
  (* More stages -> larger minimal achievable period (same platform
     size), so the H1 failure threshold must grow on average. *)
  let t_small = Failure.table ~pairs:5 ~seed:7 Config.E1 ~p:4 ~ns:[ 3; 12 ] in
  match List.assoc "H1" t_small.Failure.rows with
  | [ small; large ] -> Alcotest.(check bool) "monotone-ish" true (small <= large +. 1e-9)
  | _ -> Alcotest.fail "unexpected row shape"

(* ------------------------------------------------------------------ *)
(* Campaign / Report                                                   *)
(* ------------------------------------------------------------------ *)

let test_paper_figures_catalogue () =
  let figures = Campaign.paper_figures () in
  Alcotest.(check int) "twelve plots" 12 (List.length figures);
  let labels = List.map fst figures in
  Alcotest.(check bool) "has 2(a)" true (List.mem "Figure 2(a)" labels);
  Alcotest.(check bool) "has 7(b)" true (List.mem "Figure 7(b)" labels);
  (* p = 100 for figures 6 and 7 *)
  let setup7b = List.assoc "Figure 7(b)" figures in
  Alcotest.(check int) "7(b) p" 100 setup7b.Config.p;
  Alcotest.(check int) "7(b) n" 40 setup7b.Config.n

let test_campaign_figure () =
  let fig = Campaign.figure (small_setup ~experiment:Config.E2 ()) in
  Alcotest.(check int) "six curves" 6 (List.length fig.Campaign.series);
  let labels = List.map Series.label fig.Campaign.series in
  Alcotest.(check bool) "legend has Sp mono, P fix" true
    (List.mem "Sp mono, P fix" labels);
  (* At least the splitting heuristics must produce points. *)
  Alcotest.(check bool) "some data" true
    (List.exists (fun s -> Series.length s > 0) fig.Campaign.series)

let test_run_paper_figure_unknown () =
  Alcotest.(check bool) "unknown label" true
    (Campaign.run_paper_figure "Figure 99" = None)

let test_report_slug () =
  Alcotest.(check string) "figure label" "figure-2-a" (Report.slug "Figure 2(a)");
  Alcotest.(check string) "collapses" "e1-n-40" (Report.slug "E1  n=40")

let test_report_renders_and_writes () =
  let fig = Campaign.figure ~label:"Test fig" (small_setup ()) in
  Alcotest.(check bool) "ascii plot non-empty" true
    (String.length (Report.figure_to_ascii fig) > 100);
  Alcotest.(check bool) "dat non-empty" true
    (String.length (Report.figure_to_dat fig) > 10);
  let dir = Filename.temp_file "pwrep" "" in
  Sys.remove dir;
  let paths = Report.write_figure ~dir fig in
  Alcotest.(check int) "two files" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check bool) "exists" true (Sys.file_exists p))
    paths;
  let table = Failure.table ~pairs:2 ~seed:5 Config.E1 ~p:4 ~ns:[ 4 ] in
  let tpaths = Report.write_table ~dir table in
  List.iter
    (fun p -> Alcotest.(check bool) "table file exists" true (Sys.file_exists p))
    tpaths


(* ------------------------------------------------------------------ *)
(* Robustness                                                          *)
(* ------------------------------------------------------------------ *)

let test_robustness_zero_noise_is_one () =
  let inst = Helpers.random_instance 2024 in
  let mapping = Instance.single_proc_mapping inst in
  Helpers.check_float "no noise: inflation 1" 1.
    (Robustness.inflation ~datasets:100 inst mapping ~noise:0.)

let test_robustness_noise_inflates () =
  let inst = Helpers.random_instance 2025 in
  let mapping = Instance.single_proc_mapping inst in
  let inflated = Robustness.inflation ~datasets:400 inst mapping ~noise:0.4 in
  Alcotest.(check bool) "inflation >= ~1" true (inflated >= 0.97)

let test_robustness_series_shape () =
  let setup = small_setup () in
  let batch = Workload.instances setup in
  let info = List.hd Pipeline_registry.paper in
  let series =
    Robustness.series ~datasets:60 ~noise_levels:[ 0.; 0.2 ] info batch
  in
  Alcotest.(check int) "two points" 2 (Series.length series);
  match Series.points series with
  | [ (x0, y0); (x1, y1) ] ->
    Helpers.check_float "first level" 0. x0;
    Helpers.check_float "second level" 0.2 x1;
    Alcotest.(check bool) "zero-noise inflation ~1" true
      (Float.abs (y0 -. 1.) < 0.05);
    Alcotest.(check bool) "noisy >= clean" true (y1 >= y0 -. 0.05)
  | _ -> Alcotest.fail "unexpected points"

let test_failure_table_max_aggregate () =
  let mean = Failure.table ~pairs:5 ~seed:11 Config.E1 ~p:4 ~ns:[ 6 ] in
  let maxed =
    Failure.table ~aggregate:Failure.Max ~pairs:5 ~seed:11 Config.E1 ~p:4
      ~ns:[ 6 ]
  in
  List.iter2
    (fun (h1, m) (h2, x) ->
      Alcotest.(check string) "same row order" h1 h2;
      List.iter2
        (fun m x -> Alcotest.(check bool) "max >= mean" true (x >= m -. 1e-9))
        m x)
    mean.Failure.rows maxed.Failure.rows


let test_het_campaign_figure () =
  let fig = Het_campaign.figure ~pairs:3 ~sweep_points:4 ~seed:42 ~n:5 3 in
  (* four heuristic curves + the baseline point *)
  Alcotest.(check int) "five series" 5 (List.length fig.Campaign.series);
  let labels = List.map Series.label fig.Campaign.series in
  Alcotest.(check bool) "has het mono" true
    (List.mem "Het split mono, P fix" labels);
  Alcotest.(check bool) "has baseline" true
    (List.mem "balanced chains (baseline)" labels);
  (* instances really are fully heterogeneous *)
  List.iter
    (fun (inst : Instance.t) ->
      Alcotest.(check bool) "fully het" false
        (Platform.is_comm_homogeneous inst.Instance.platform))
    (Het_campaign.instances ~pairs:3 ~seed:42 ~n:5 3)

(* ------------------------------------------------------------------ *)
(* Fault campaign                                                      *)
(* ------------------------------------------------------------------ *)

let test_fault_campaign_shape () =
  let campaign =
    Fault_campaign.run ~crash_counts:[ 2; 0; 1 ] ~datasets:30 (small_setup ())
  in
  Alcotest.(check bool) "some mapped instances" true (campaign.Fault_campaign.instances > 0);
  Alcotest.(check (list int)) "points sorted and unique" [ 0; 1; 2 ]
    (List.map (fun pt -> pt.Fault_campaign.crashes) campaign.Fault_campaign.points);
  let baseline = List.hd campaign.Fault_campaign.points in
  Helpers.check_float "no crashes: full survival" 1. baseline.Fault_campaign.survival;
  Helpers.check_float "no crashes: remap keeps the mapping" 1.
    baseline.Fault_campaign.remap_success;
  Helpers.check_float "no crashes: nothing migrates" 0.
    baseline.Fault_campaign.migrated_fraction;
  Helpers.check_float "no crashes: nominal period" 1.
    baseline.Fault_campaign.degraded_period;
  List.iter
    (fun pt ->
      Alcotest.(check bool) "survival in [0,1]" true
        (pt.Fault_campaign.survival >= 0. && pt.Fault_campaign.survival <= 1.);
      Alcotest.(check bool) "recovery never hurts survival" true
        (pt.Fault_campaign.survival_recovery
        >= pt.Fault_campaign.survival -. 1e-9))
    campaign.Fault_campaign.points

let test_fault_campaign_deterministic () =
  let run () =
    Fault_campaign.run ~crash_counts:[ 0; 2 ] ~datasets:25 (small_setup ())
  in
  Alcotest.(check bool) "same seed, same campaign" true
    (Stdlib.compare (run ()) (run ()) = 0)

let test_fault_campaign_render_and_write () =
  let campaign =
    Fault_campaign.run ~crash_counts:[ 0; 1 ] ~datasets:25 (small_setup ())
  in
  Alcotest.(check bool) "render mentions the header" true
    (Str_find.contains (Fault_campaign.render campaign) "surv+recov");
  let dir = Filename.temp_file "pwfault" "" in
  Sys.remove dir;
  List.iter
    (fun p -> Alcotest.(check bool) "csv written" true (Sys.file_exists p))
    (Fault_campaign.write ~dir campaign)

let test_streaming_campaign_shape () =
  let campaign = Streaming.run ~datasets:25 (small_setup ()) in
  Alcotest.(check bool) "some mapped instances" true
    (campaign.Streaming.instances > 0);
  Alcotest.(check int) "3 shapes x {warm, cold}" 6
    (List.length campaign.Streaming.rows);
  List.iter
    (fun (r : Streaming.row) ->
      Alcotest.(check bool) "completion in [0,1]" true
        (r.Streaming.completion >= 0. && r.Streaming.completion <= 1.);
      Alcotest.(check bool) "volume and reactions non-negative" true
        (r.Streaming.migration_volume >= 0.
        && r.Streaming.reaction_mean >= 0.
        && r.Streaming.reaction_mean <= r.Streaming.reaction_max +. 1e-9);
      Alcotest.(check bool) "at least one mapping epoch" true
        (r.Streaming.segments >= 1.);
      (* Every scenario crashes an enrolled processor, so the cold
         oracle re-solves at least once per run. *)
      if r.Streaming.strategy = "cold" then begin
        Alcotest.(check bool) "cold never repairs" true
          (r.Streaming.repairs = 0.);
        Alcotest.(check bool) "cold solves every migration" true
          (r.Streaming.full_solves > 0.)
      end)
    campaign.Streaming.rows

let test_streaming_campaign_deterministic () =
  let run () = Streaming.run ~datasets:25 (small_setup ()) in
  Alcotest.(check bool) "same seed, same campaign" true
    (Stdlib.compare (run ()) (run ()) = 0)

let test_streaming_campaign_render_and_write () =
  let campaign = Streaming.run ~datasets:20 (small_setup ()) in
  Alcotest.(check bool) "render mentions the header" true
    (Str_find.contains (Streaming.render campaign) "degradation");
  let dir = Filename.temp_file "pwstream" "" in
  Sys.remove dir;
  List.iter
    (fun p -> Alcotest.(check bool) "csv written" true (Sys.file_exists p))
    (Streaming.write ~dir campaign)

let test_het_campaign_deterministic () =
  let a = Het_campaign.instances ~pairs:2 ~seed:1 ~n:4 3 in
  let b = Het_campaign.instances ~pairs:2 ~seed:1 ~n:4 3 in
  List.iter2
    (fun (x : Instance.t) (y : Instance.t) ->
      Alcotest.(check bool) "same" true
        (Application.equal x.Instance.app y.Instance.app
        && Platform.equal x.Instance.platform y.Instance.platform))
    a b

let instances_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Instance.t) (y : Instance.t) ->
         Application.equal x.Instance.app y.Instance.app
         && Platform.equal x.Instance.platform y.Instance.platform)
       a b

let test_family_names () =
  Alcotest.(check (list string)) "names"
    [ "uniform"; "clustered"; "bottleneck"; "jpeg2000" ]
    (List.map Het_campaign.family_name Het_campaign.families)

let test_family_instances_deterministic () =
  List.iter
    (fun family ->
      let run () =
        Het_campaign.family_instances ~pairs:3 ~seed:7 ~family ~n:5 4
      in
      Alcotest.(check bool)
        (Het_campaign.family_name family ^ " deterministic")
        true
        (instances_equal (run ()) (run ())))
    Het_campaign.families;
  (* distinct families draw from distinct tag streams *)
  let batch family =
    Het_campaign.family_instances ~pairs:3 ~seed:7 ~family ~n:5 4
  in
  Alcotest.(check bool) "families differ" false
    (instances_equal
       (batch Het_campaign.Uniform_links)
       (batch Het_campaign.Clustered))

let test_family_instances_fully_het () =
  List.iter
    (fun family ->
      List.iter
        (fun (inst : Instance.t) ->
          Alcotest.(check bool)
            (Het_campaign.family_name family ^ " fully het")
            false
            (Platform.is_comm_homogeneous inst.Instance.platform))
        (Het_campaign.family_instances ~pairs:3 ~seed:7 ~family ~n:5 4))
    Het_campaign.families

let test_jpeg2000_family_shape () =
  (* the encoder app is fixed — [n] is ignored, the five stages and
     their weights are the same in every batch element *)
  let reference = App_generator.jpeg2000 () in
  Alcotest.(check int) "five stages" 5 (Application.n reference);
  List.iter
    (fun (inst : Instance.t) ->
      Alcotest.(check bool) "same app" true
        (Application.equal inst.Instance.app reference))
    (Het_campaign.family_instances ~pairs:3 ~seed:7
       ~family:Het_campaign.Jpeg2000 ~n:12 4)

let test_threshold_table_shape () =
  let tt = Het_campaign.threshold_table ~pairs:2 ~seed:7 ~n:6 ~p:4 () in
  Alcotest.(check int) "four rows" 4 (List.length tt.Het_campaign.rows);
  Alcotest.(check (list string)) "header"
    ("heuristic" :: List.map Het_campaign.family_name Het_campaign.families)
    (Het_campaign.threshold_table_header tt);
  List.iter
    (fun (name, means) ->
      Alcotest.(check int) (name ^ " four columns") 4 (List.length means);
      List.iter
        (fun m ->
          Alcotest.(check bool) (name ^ " finite positive") true
            (Float.is_finite m && m > 0.))
        means)
    tt.Het_campaign.rows;
  let again = Het_campaign.threshold_table ~pairs:2 ~seed:7 ~n:6 ~p:4 () in
  Alcotest.(check bool) "deterministic" true (Stdlib.compare tt again = 0)

let test_validate_ratios () =
  let v =
    Het_campaign.validate ~runs:4 ~seed:7 ~family:Het_campaign.Clustered ()
  in
  Alcotest.(check int) "runs" 4 v.Het_campaign.runs;
  Alcotest.(check bool) "mean >= 1" true (v.Het_campaign.mean_ratio >= 1.);
  Alcotest.(check bool) "max >= mean" true
    (v.Het_campaign.max_ratio >= v.Het_campaign.mean_ratio)

(* ------------------------------------------------------------------ *)
(* Het platform generators and the JPEG2000 app                        *)
(* ------------------------------------------------------------------ *)

let test_clustered_generator_shape () =
  let rng = Pipeline_util.Rng.create 5 in
  let pf = Platform_generator.clustered rng ~p:6 in
  Alcotest.(check bool) "fully het" false (Platform.is_comm_homogeneous pf);
  Alcotest.(check int) "p" 6 (Platform.p pf);
  for u = 0 to 5 do
    for v = 0 to 5 do
      if u <> v then begin
        let b = Platform.bandwidth pf u v in
        Alcotest.(check bool) "symmetric" true
          (b = Platform.bandwidth pf v u);
        if u mod 2 = v mod 2 then
          Alcotest.(check bool) "intra fat" true (b >= 20. && b <= 30.)
        else Alcotest.(check bool) "inter thin" true (b >= 2. && b <= 5.)
      end
    done
  done

let test_bottleneck_generator_shape () =
  let rng = Pipeline_util.Rng.create 5 in
  let pf = Platform_generator.bottleneck_link rng ~p:6 in
  Alcotest.(check bool) "fully het" false (Platform.is_comm_homogeneous pf);
  (* exactly one victim: all of its links and its I/O run at 1 *)
  let victims =
    List.filter
      (fun u ->
        List.for_all
          (fun v ->
            v = u || Platform.bandwidth pf u v = 1.)
          [ 0; 1; 2; 3; 4; 5 ]
        && Platform.io_bandwidth pf u = 1.)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "one victim" 1 (List.length victims);
  let victim = List.hd victims in
  List.iter
    (fun u ->
      if u <> victim then begin
        Alcotest.(check bool) "other io fast" true
          (Platform.io_bandwidth pf u = 15.);
        List.iter
          (fun v ->
            if v <> u && v <> victim then
              let b = Platform.bandwidth pf u v in
              Alcotest.(check bool) "other links in range" true
                (b >= 5. && b <= 15.))
          [ 0; 1; 2; 3; 4; 5 ]
      end)
    [ 0; 1; 2; 3; 4; 5 ]

let test_jpeg2000_app_shape () =
  let app = App_generator.jpeg2000 () in
  Alcotest.(check int) "five stages" 5 (Application.n app);
  (* Tier-1 coding dominates the compute *)
  let works = Application.works app in
  Array.iteri
    (fun i w -> if i <> 3 then
        Alcotest.(check bool) "tier-1 dominates" true (works.(3) > w))
    works;
  (* data volume shrinks monotonically after quantisation (delta_2) *)
  for u = 2 to 4 do
    Alcotest.(check bool) "shrinking stream" true
      (Application.delta app (u + 1) <= Application.delta app u)
  done;
  (* deterministic: two calls agree *)
  Alcotest.(check bool) "fixed" true
    (Application.equal app (App_generator.jpeg2000 ()))

(* ------------------------------------------------------------------ *)
(* Multicore determinism: parallel == sequential, bit-for-bit          *)
(* ------------------------------------------------------------------ *)

let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

(* The whole-campaign contract behind `bench --jobs N`: every experiment
   driver must produce bit-identical results at any parallelism degree
   (same pattern as test_sim.ml's fault-free bit-equality harness). *)
let test_campaign_figure_jobs_bit_identical () =
  let run jobs = with_jobs jobs (fun () -> Campaign.figure (small_setup ())) in
  Alcotest.(check bool) "figure jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_failure_table_jobs_bit_identical () =
  let run jobs =
    with_jobs jobs (fun () ->
        Failure.table ~pairs:3 ~seed:99 Config.E1 ~p:4 ~ns:[ 3; 5 ])
  in
  Alcotest.(check bool) "table jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_fault_campaign_jobs_bit_identical () =
  let setup = Config.default_setup ~pairs:3 ~seed:5 Config.E2 ~n:5 ~p:4 in
  let run jobs =
    with_jobs jobs (fun () -> Fault_campaign.run ~datasets:30 setup)
  in
  Alcotest.(check bool) "fault campaign jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_streaming_campaign_jobs_bit_identical () =
  let setup = Config.default_setup ~pairs:3 ~seed:5 Config.E2 ~n:5 ~p:4 in
  let run jobs = with_jobs jobs (fun () -> Streaming.run ~datasets:25 setup) in
  Alcotest.(check bool) "streaming campaign jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_het_campaign_jobs_bit_identical () =
  let run jobs =
    with_jobs jobs (fun () ->
        Het_campaign.figure ~pairs:3 ~sweep_points:4 ~seed:11 ~n:5 4)
  in
  Alcotest.(check bool) "het figure jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_het_threshold_table_jobs_bit_identical () =
  let run jobs =
    with_jobs jobs (fun () ->
        Het_campaign.threshold_table ~pairs:2 ~seed:7 ~n:6 ~p:4 ())
  in
  Alcotest.(check bool) "het thresholds jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

let test_robustness_jobs_bit_identical () =
  let setup = small_setup ~experiment:Config.E2 () in
  let batch = Workload.instances setup in
  let info =
    match Pipeline_registry.find "h1-sp-mono-p" with
    | Some i -> i
    | None -> Alcotest.fail "H1 not registered"
  in
  let run jobs =
    with_jobs jobs (fun () ->
        Robustness.series ~datasets:40 ~noise_levels:[ 0.; 0.2 ] info batch)
  in
  Alcotest.(check bool) "robustness jobs=4 = jobs=1" true
    (Stdlib.compare (run 1) (run 4) = 0)

(* ------------------------------------------------------------------ *)
(* Scaling (E6 web-scale ladder)                                       *)
(* ------------------------------------------------------------------ *)

let test_scaling_ladder_sizes () =
  let top l = List.nth l (List.length l - 1) in
  Alcotest.(check (pair int int)) "full tops at web scale" (50_000, 1_000)
    (top (Scaling.ladder `Full));
  Alcotest.(check bool) "smoke stays tiny" true
    (List.for_all (fun (n, p) -> n <= 200 && p <= 16) (Scaling.ladder `Smoke))

let test_scaling_instance_shape () =
  let inst = Scaling.instance ~seed:2007 ~n:50 ~p:4 in
  let app = inst.Instance.app in
  Alcotest.(check int) "n" 50 (Application.n app);
  Alcotest.(check int) "p" 4 (Platform.p inst.Instance.platform);
  (* E6's uniform deltas are the precondition of the lazy lattice. *)
  Alcotest.(check bool) "uniform deltas" true
    (let d0 = Application.delta app 0 in
     Array.for_all (( = ) d0) (Application.deltas app))

let test_scaling_run_deterministic () =
  let run () = Scaling.run ~seed:2007 (Scaling.ladder `Smoke) in
  Alcotest.(check bool) "same seed, same measurements" true
    (Stdlib.compare (run ()) (run ()) = 0);
  let csv = Scaling.to_csv (run ()) in
  Alcotest.(check bool) "csv header" true
    (Str_find.contains csv "nicol bottleneck")

(* Oracle: when every processor runs at the same speed, the all-fastest
   relaxation IS the homogeneous problem, so the lazy-lattice search
   must land exactly on Pipeline_optimal.Homogeneous's optimum. *)
let prop_exact_relaxed_matches_homogeneous_oracle =
  Helpers.qtest ~count:80 "exact_relaxed_min_period = Homogeneous oracle"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Pipeline_util.Rng.create seed in
      let n = 1 + Pipeline_util.Rng.int rng 10 in
      let p = 1 + Pipeline_util.Rng.int rng 4 in
      let delta = float_of_int (Pipeline_util.Rng.int_in rng 0 30) in
      let speed = float_of_int (Pipeline_util.Rng.int_in rng 1 10) in
      let works =
        Array.init n (fun _ ->
            float_of_int (Pipeline_util.Rng.int_in rng 1 20))
      in
      let app = Application.make ~deltas:(Array.make (n + 1) delta) works in
      let platform =
        Platform.comm_homogeneous ~bandwidth:10. (Array.make p speed)
      in
      let inst = Instance.make app platform in
      let period, intervals, _probes =
        Scaling.exact_relaxed_min_period (Cost.make app platform) ~p
      in
      period
      = (Pipeline_optimal.Homogeneous.min_period inst)
          .Pipeline_core.Solution.period
      && intervals >= 1
      && intervals <= p)

let () =
  Alcotest.run "experiments"
    [
      ( "config",
        [
          Alcotest.test_case "names" `Quick test_config_names;
          Alcotest.test_case "specs" `Quick test_config_specs;
          Alcotest.test_case "paper stage counts" `Quick test_config_paper_stage_counts;
          Alcotest.test_case "setup" `Quick test_config_setup;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
          Alcotest.test_case "batch shape" `Quick test_workload_batch_shape;
          Alcotest.test_case "instances differ" `Quick test_workload_instances_differ;
          Alcotest.test_case "out of range" `Quick test_workload_out_of_range;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "lower bound valid" `Quick test_period_lower_bound_valid;
          Alcotest.test_case "bounds ordered" `Quick test_sweep_bounds_ordered;
          Alcotest.test_case "grid" `Quick test_sweep_grid;
          Alcotest.test_case "period-fixed series" `Quick test_sweep_run_period_fixed;
          Alcotest.test_case "latency-fixed series" `Quick test_sweep_run_latency_fixed;
          Alcotest.test_case "success rate extremes" `Quick test_success_rate_extremes;
        ] );
      ( "failure",
        [
          Alcotest.test_case "latency boundary = L_opt" `Quick
            test_latency_fixed_threshold_is_optimal_latency;
          Alcotest.test_case "brackets behaviour" `Quick
            test_failure_threshold_brackets_behaviour;
          Alcotest.test_case "table shape" `Quick test_failure_table_shape;
          Alcotest.test_case "grows with n" `Quick test_failure_thresholds_grow_with_n;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "zero noise" `Quick test_robustness_zero_noise_is_one;
          Alcotest.test_case "noise inflates" `Quick test_robustness_noise_inflates;
          Alcotest.test_case "series shape" `Quick test_robustness_series_shape;
          Alcotest.test_case "max aggregate" `Quick test_failure_table_max_aggregate;
        ] );
      ( "fault-campaign",
        [
          Alcotest.test_case "shape" `Quick test_fault_campaign_shape;
          Alcotest.test_case "deterministic" `Quick
            test_fault_campaign_deterministic;
          Alcotest.test_case "render and write" `Quick
            test_fault_campaign_render_and_write;
        ] );
      ( "streaming-campaign",
        [
          Alcotest.test_case "shape" `Quick test_streaming_campaign_shape;
          Alcotest.test_case "deterministic" `Quick
            test_streaming_campaign_deterministic;
          Alcotest.test_case "render and write" `Quick
            test_streaming_campaign_render_and_write;
        ] );
      ( "het-campaign",
        [
          Alcotest.test_case "figure" `Quick test_het_campaign_figure;
          Alcotest.test_case "deterministic" `Quick test_het_campaign_deterministic;
          Alcotest.test_case "family names" `Quick test_family_names;
          Alcotest.test_case "family instances deterministic" `Quick
            test_family_instances_deterministic;
          Alcotest.test_case "family instances fully het" `Quick
            test_family_instances_fully_het;
          Alcotest.test_case "jpeg2000 family shape" `Quick
            test_jpeg2000_family_shape;
          Alcotest.test_case "threshold table shape" `Quick
            test_threshold_table_shape;
          Alcotest.test_case "validate ratios" `Quick test_validate_ratios;
        ] );
      ( "het-generators",
        [
          Alcotest.test_case "clustered shape" `Quick
            test_clustered_generator_shape;
          Alcotest.test_case "bottleneck shape" `Quick
            test_bottleneck_generator_shape;
          Alcotest.test_case "jpeg2000 app shape" `Quick
            test_jpeg2000_app_shape;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "ladder sizes" `Quick test_scaling_ladder_sizes;
          Alcotest.test_case "instance shape" `Quick test_scaling_instance_shape;
          Alcotest.test_case "deterministic" `Quick test_scaling_run_deterministic;
          prop_exact_relaxed_matches_homogeneous_oracle;
        ] );
      ( "multicore-determinism",
        [
          Alcotest.test_case "figure bit-identical" `Quick
            test_campaign_figure_jobs_bit_identical;
          Alcotest.test_case "table1 bit-identical" `Quick
            test_failure_table_jobs_bit_identical;
          Alcotest.test_case "fault campaign bit-identical" `Quick
            test_fault_campaign_jobs_bit_identical;
          Alcotest.test_case "streaming campaign bit-identical" `Quick
            test_streaming_campaign_jobs_bit_identical;
          Alcotest.test_case "het campaign bit-identical" `Quick
            test_het_campaign_jobs_bit_identical;
          Alcotest.test_case "het threshold table bit-identical" `Quick
            test_het_threshold_table_jobs_bit_identical;
          Alcotest.test_case "robustness bit-identical" `Quick
            test_robustness_jobs_bit_identical;
        ] );
      ( "campaign-report",
        [
          Alcotest.test_case "paper figures" `Quick test_paper_figures_catalogue;
          Alcotest.test_case "figure" `Quick test_campaign_figure;
          Alcotest.test_case "unknown figure" `Quick test_run_paper_figure_unknown;
          Alcotest.test_case "slug" `Quick test_report_slug;
          Alcotest.test_case "render and write" `Quick test_report_renders_and_writes;
        ] );
    ]

(* The serving layer: JSON round-trips, HTTP framing, the warm-engine
   cache, protocol semantics (CLI-diagnostic parity, byte-identical
   responses at any --jobs), and the server lifecycle — start, route,
   respond, reject malformed input, survive concurrent clients,
   stop/restart. See doc/serving.mld for the contract under test. *)

open Pipeline_model
module Json = Pipeline_serve.Json
module Http = Pipeline_serve.Http
module Cache = Pipeline_serve.Cache
module Protocol = Pipeline_serve.Protocol
module Server = Pipeline_serve.Server
module Ureg = Pipeline_registry

let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let parse_ok text =
  match Json.of_string text with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%S should parse, got: %s" text msg

let parse_err text =
  match Json.of_string text with
  | Ok _ -> Alcotest.failf "%S should be rejected" text
  | Error msg -> msg

let test_json_values () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Number 42.);
  Alcotest.(check bool) "negative exponent" true
    (parse_ok "-1.5e-3" = Json.Number (-0.0015));
  Alcotest.(check bool) "string escapes" true
    (parse_ok {|"a\"b\\c\nd"|} = Json.String "a\"b\\c\nd");
  Alcotest.(check bool) "raw UTF-8 passes through" true
    (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "escaped surrogate pair" true
    (parse_ok {|"😀"|} = Json.String "\xf0\x9f\x98\x80");
  Alcotest.(check bool) "nested" true
    (parse_ok {| {"a":[1,2],"b":{"c":null}} |}
    = Json.Obj
        [
          ("a", Json.List [ Json.Number 1.; Json.Number 2. ]);
          ("b", Json.Obj [ ("c", Json.Null) ]);
        ])

let test_json_rejects () =
  List.iter
    (fun text -> ignore (parse_err text))
    [
      "";
      "garbage";
      "{";
      "[1,]";
      "{\"a\":}";
      "{\"a\" 1}";
      "+1";
      "1.";
      ".5";
      "nul";
      "\"unterminated";
      "\"\x01\"" (* raw control byte *);
      {|"\ud800"|} (* unpaired high surrogate *);
      {|"\udc00"|} (* unpaired low surrogate *);
      {|"\ux111"|};
      "1e999" (* overflows to infinity: not a finite JSON number *);
      "nan";
      "[1] []" (* trailing bytes *);
      "{\"a\":1}x";
    ]

let test_json_print_deterministic () =
  let v =
    Json.Obj
      [
        ("b", Json.Number 1.5);
        ("a", Json.List [ Json.Null; Json.Bool false; Json.String "x\ny" ]);
      ]
  in
  let printed = Json.to_string v in
  Alcotest.(check string)
    "insertion order, compact" {|{"b":1.5,"a":[null,false,"x\ny"]}|} printed;
  Alcotest.(check string) "print is stable" printed (Json.to_string v)

let tricky_floats =
  [
    0.; -0.; 1.; -1.; 0.1; 1. /. 3.; 1e-308; 4e-324; max_float; 1e15 -. 1.;
    1e15; 12345678901234567.; 6.5; 0.30000000000000004; Float.pi;
  ]

let test_number_round_trip () =
  List.iter
    (fun f ->
      let s = Json.number_to_string f in
      match float_of_string_opt s with
      | None -> Alcotest.failf "%h printed as unparseable %S" f s
      | Some g ->
        if not (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g))
        then Alcotest.failf "%h -> %S -> %h: not bit-identical" f s g)
    tricky_floats

let prop_number_round_trip =
  Helpers.qtest ~count:500 "random floats round-trip bit-identically"
    QCheck2.Gen.float (fun f ->
      QCheck2.assume (Float.is_finite f);
      let s = Json.number_to_string f in
      match Json.of_string s with
      | Ok (Json.Number g) ->
        Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float g)
      | _ -> false)

(* A small sized generator of JSON values (atoms at the leaves). *)
let json_gen =
  let open QCheck2.Gen in
  let atom =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map
          (fun f -> Json.Number (if Float.is_finite f then f else 0.))
          float;
        map (fun s -> Json.String s) string_printable;
      ]
  in
  sized @@ fix (fun self n ->
      if n <= 0 then atom
      else
        oneof
          [
            atom;
            map (fun l -> Json.List l) (list_size (0 -- 3) (self (n / 2)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (0 -- 3)
                 (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 5))
                    (self (n / 2))));
          ])

let prop_json_round_trip =
  Helpers.qtest ~count:300 "print/parse round-trips values" json_gen (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> Json.to_string v = Json.to_string v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* HTTP framing                                                        *)
(* ------------------------------------------------------------------ *)

(* Feed a raw byte string to [read_request] through a socketpair. *)
let read_raw ?max_body text =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length text in
      let written = Unix.write_substring a text 0 len in
      Alcotest.(check int) "request fits the socket buffer" len written;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      Http.read_request ?max_body b)

let test_http_parses_request () =
  match
    read_raw
      "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
       Content-Length: 4\r\n\r\n{\"a\"extra"
  with
  | Ok req ->
    Alcotest.(check string) "meth" "POST" req.Http.meth;
    Alcotest.(check string) "path" "/solve" req.Http.path;
    Alcotest.(check string) "body honours Content-Length" "{\"a\"" req.Http.body;
    Alcotest.(check (option string))
      "header lookup is case-insensitive" (Some "application/json")
      (Http.header req "CONTENT-TYPE")
  | Error _ -> Alcotest.fail "well-formed request rejected"

let test_http_no_body () =
  match read_raw "GET /health HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok req ->
    Alcotest.(check string) "meth" "GET" req.Http.meth;
    Alcotest.(check string) "empty body" "" req.Http.body
  | Error _ -> Alcotest.fail "GET without body rejected"

let test_http_malformed () =
  let expect_malformed text =
    match read_raw text with
    | Error (Http.Malformed _) -> ()
    | Error (Http.Too_large _) -> Alcotest.failf "%S: Too_large, expected Malformed" text
    | Error Http.Closed -> Alcotest.failf "%S: Closed, expected Malformed" text
    | Ok _ -> Alcotest.failf "%S accepted" text
  in
  expect_malformed "BLAH\r\n\r\n";
  expect_malformed "GET /x SMTP/1.0\r\n\r\n";
  expect_malformed "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n";
  expect_malformed "GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n";
  expect_malformed "GET /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n"

let test_http_limits () =
  (match read_raw ("GET /" ^ String.make 20_000 'a' ^ " HTTP/1.1\r\n\r\n") with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "20 KB header block accepted");
  (match
     read_raw ~max_body:100 "POST /x HTTP/1.1\r\nContent-Length: 101\r\n\r\n"
   with
  | Error (Http.Too_large _) -> ()
  | _ -> Alcotest.fail "over-cap body accepted");
  match read_raw "GET /x HTTP/1.1\r\nHost" (* peer gone mid-header *) with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "truncated request should be Closed"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_injective () =
  let distinct =
    [
      Platform.comm_homogeneous ~bandwidth:10. [| 2.; 4.; 1. |];
      Platform.comm_homogeneous ~bandwidth:10.5 [| 2.; 4.; 1. |];
      Platform.comm_homogeneous ~bandwidth:10. [| 2.; 4. |];
      Platform.comm_homogeneous ~bandwidth:10. [| 4.; 2.; 1. |];
      Platform.comm_homogeneous ~io_bandwidth:5. ~bandwidth:10. [| 2.; 4.; 1. |];
      Platform.fully_heterogeneous
        ~bandwidths:[| [| 0.; 5. |]; [| 5.; 0. |] |]
        [| 2.; 4. |];
      Platform.fully_heterogeneous
        ~bandwidths:[| [| 0.; 7. |]; [| 7.; 0. |] |]
        [| 2.; 4. |];
    ]
  in
  let fps = List.map Cache.platform_fingerprint distinct in
  let sorted = List.sort_uniq compare fps in
  Alcotest.(check int)
    "distinct platforms give distinct fingerprints" (List.length fps)
    (List.length sorted);
  let p = Platform.comm_homogeneous ~bandwidth:10. [| 2.; 4.; 1. |] in
  Alcotest.(check string)
    "equal platforms give equal fingerprints"
    (Cache.platform_fingerprint p)
    (Cache.platform_fingerprint
       (Platform.comm_homogeneous ~bandwidth:10. [| 2.; 4.; 1. |]))

let prop_fingerprint_separates =
  Helpers.qtest ~count:200 "random instance pairs: fingerprint = equality"
    QCheck2.Gen.(pair (0 -- 1_000_000) (0 -- 1_000_000))
    (fun (s1, s2) ->
      let i1 = Helpers.random_instance s1 and i2 = Helpers.random_instance s2 in
      let same_fp =
        Cache.platform_fingerprint i1.Instance.platform
        = Cache.platform_fingerprint i2.Instance.platform
        && Cache.app_fingerprint i1.Instance.app
           = Cache.app_fingerprint i2.Instance.app
      in
      let same_value =
        Platform.equal i1.Instance.platform i2.Instance.platform
        && Application.equal i1.Instance.app i2.Instance.app
      in
      same_fp = same_value)

let test_cache_hits_and_canonicalisation () =
  let cache = Cache.create () in
  let fresh () = Helpers.small_instance () in
  let l1 = Cache.canonical cache (fresh ()) in
  Alcotest.(check bool) "first lookup misses" false l1.Cache.platform_hit;
  let l2 = Cache.canonical cache (fresh ()) in
  Alcotest.(check bool) "second lookup hits platform" true l2.Cache.platform_hit;
  Alcotest.(check bool) "second lookup hits app" true l2.Cache.app_hit;
  Alcotest.(check bool) "platform canonicalised to the representative" true
    (l2.Cache.instance.Instance.platform == l1.Cache.instance.Instance.platform);
  Alcotest.(check bool) "engine shared" true (l2.Cache.engine == l1.Cache.engine);
  (* Same platform, different application: platform hit, app miss. *)
  let other_app =
    Instance.make
      (Application.make ~deltas:[| 1.; 1. |] [| 3. |])
      (Helpers.small_platform ())
  in
  let l3 = Cache.canonical cache other_app in
  Alcotest.(check bool) "platform hit" true l3.Cache.platform_hit;
  Alcotest.(check bool) "app miss" false l3.Cache.app_hit;
  let s = Cache.stats cache in
  Alcotest.(check int) "platform hits" 2 s.Cache.platform_hits;
  Alcotest.(check int) "platform misses" 1 s.Cache.platform_misses;
  Alcotest.(check int) "app hits" 1 s.Cache.app_hits;
  Alcotest.(check int) "app misses" 2 s.Cache.app_misses

let test_cache_eviction () =
  let cache = Cache.create ~platforms:2 ~apps_per_platform:1 () in
  let inst b =
    Instance.make (Helpers.small_app ())
      (Platform.comm_homogeneous ~bandwidth:b [| 2.; 4.; 1. |])
  in
  ignore (Cache.canonical cache (inst 1.));
  ignore (Cache.canonical cache (inst 2.));
  ignore (Cache.canonical cache (inst 3.)); (* evicts bandwidth 1 (LRU) *)
  let l = Cache.canonical cache (inst 1.) in
  Alcotest.(check bool) "evicted entry misses again" false l.Cache.platform_hit;
  let s = Cache.stats cache in
  Alcotest.(check int) "two evictions" 2 s.Cache.evictions;
  (* The bandwidth-1 re-insert evicted bandwidth 2 (then-LRU), so
     bandwidth 3 is still resident. *)
  let l3 = Cache.canonical cache (inst 3.) in
  Alcotest.(check bool) "MRU survivor still hits" true l3.Cache.platform_hit;
  let l2 = Cache.canonical cache (inst 2.) in
  Alcotest.(check bool) "LRU tail went first" false l2.Cache.platform_hit

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let request ?(meth = "POST") ?(path = "/solve") body =
  { Http.meth; path; headers = [ ("content-type", "application/json") ]; body }

let get path = request ~meth:"GET" ~path ""

let small_solve_body ?heuristic ?(threshold = ("period", 9.)) () =
  let name, value = threshold in
  Json.to_string
    (Json.Obj
       ([
          ( "instance",
            Json.Obj
              [
                ( "works",
                  Json.List [ Json.Number 4.; Json.Number 8.; Json.Number 2.; Json.Number 6. ] );
                ( "deltas",
                  Json.List
                    [
                      Json.Number 10.; Json.Number 20.; Json.Number 30.;
                      Json.Number 20.; Json.Number 10.;
                    ] );
                ( "platform",
                  Json.Obj
                    [
                      ( "speeds",
                        Json.List [ Json.Number 2.; Json.Number 4.; Json.Number 1. ] );
                      ("bandwidth", Json.Number 10.);
                    ] );
              ] );
          (name, Json.Number value);
        ]
       @ match heuristic with None -> [] | Some h -> [ ("heuristic", Json.String h) ]))

let error_of body =
  match Json.of_string body with
  | Ok (Json.Obj [ ("error", Json.String msg) ]) -> msg
  | _ -> Alcotest.failf "not a one-line error body: %s" body

let test_protocol_health_and_metrics () =
  let p = Protocol.create () in
  let status, ctype, body = Protocol.handle p (get "/health") in
  Alcotest.(check int) "health 200" 200 status;
  Alcotest.(check string) "health is json" "application/json" ctype;
  Alcotest.(check string)
    "health body" {|{"status":"ok","service":"pipeline-sched","version":"1.0.0"}|}
    body;
  let status, ctype, body = Protocol.handle p (get "/metrics") in
  Alcotest.(check int) "metrics 200" 200 status;
  Alcotest.(check string) "metrics exposition type" "text/plain; version=0.0.4" ctype;
  let has_line l = List.mem l (String.split_on_char '\n' body) in
  Alcotest.(check bool) "serve counter registered" true
    (has_line "# TYPE serve_requests counter")

let test_protocol_solve () =
  let p = Protocol.create () in
  let status, _, body =
    Protocol.handle p (request (small_solve_body ~heuristic:"h1-sp-mono-p" ()))
  in
  Alcotest.(check int) "solve 200" 200 status;
  let v = parse_ok body in
  (match Json.member "results" v with
  | Some (Json.List [ row ]) ->
    Alcotest.(check (option string))
      "row id" (Some "h1-sp-mono-p")
      (Option.bind (Json.member "id" row) Json.to_string_opt);
    Alcotest.(check (option bool))
      "feasible" (Some true)
      (Option.bind (Json.member "feasible" row) Json.to_bool)
  | _ -> Alcotest.failf "unexpected results shape: %s" body)

let test_protocol_solve_all_rows () =
  let p = Protocol.create () in
  let status, _, body = Protocol.handle p (request (small_solve_body ())) in
  Alcotest.(check int) "solve 200" 200 status;
  match Json.member "results" (parse_ok body) with
  | Some (Json.List rows) ->
    let expected =
      List.filter (fun (i : Ureg.info) -> i.Ureg.kind = Ureg.Period_fixed) Ureg.paper
    in
    Alcotest.(check int)
      "one row per period-fixed paper heuristic" (List.length expected)
      (List.length rows)
  | _ -> Alcotest.failf "unexpected results shape: %s" body

(* The two surfaces share their diagnostics: the serve 400 body is
   exactly the registry's resolve error (which the CLI prints verbatim
   before exit 2). *)
let test_protocol_diagnostic_parity () =
  let p = Protocol.create () in
  let expect_echo ~heuristic ~kind =
    let status, _, body =
      Protocol.handle p (request (small_solve_body ~heuristic ()))
    in
    Alcotest.(check int) (heuristic ^ " is 400") 400 status;
    match Ureg.resolve ?kind heuristic with
    | Error expected -> Alcotest.(check string) "wording" expected (error_of body)
    | Ok _ -> Alcotest.fail "registry accepted what serve rejected"
  in
  expect_echo ~heuristic:"nope" ~kind:None;
  (* h5 is latency-fixed; the request fixes the period. *)
  expect_echo ~heuristic:"h5-sp-mono-l" ~kind:(Some Ureg.Period_fixed)

let test_protocol_rejects () =
  let p = Protocol.create () in
  let expect_status ?(meth = "POST") ?(path = "/solve") status body =
    let got, _, reply = Protocol.handle p (request ~meth ~path body) in
    Alcotest.(check int) (Printf.sprintf "%s %s -> %d" meth path status) status got;
    ignore (error_of reply)
  in
  expect_status 400 "";
  expect_status 400 "garbage";
  expect_status 400 "[1,2,3]" (* instance missing *);
  expect_status 400 {|{"instance":{"works":[1],"deltas":[1,1]}}|} (* no platform *);
  expect_status 400
    {|{"instance":{"works":[1],"deltas":[1,1],"platform":{"speeds":[1],"bandwidth":10}}}|}
    (* neither period nor latency *);
  expect_status 400
    {|{"instance":{"works":[1],"deltas":[1,1],"platform":{"speeds":[1],"bandwidth":10}},"period":1,"latency":1}|};
  expect_status 400
    {|{"instance":{"works":[-1],"deltas":[1,1],"platform":{"speeds":[1],"bandwidth":10}},"period":1}|}
    (* negative work: the model's own validation *);
  expect_status 400
    {|{"instance":{"works":[1],"deltas":[1,1],"platform":{"speeds":[1],"bandwidth":0}},"period":1}|}
    (* zero bandwidth *);
  expect_status 400
    {|{"instance":{"works":[1],"deltas":[1,1,1],"platform":{"speeds":[1],"bandwidth":10}},"period":1}|}
    (* deltas length mismatch *);
  expect_status ~path:"/nope" 404 "";
  expect_status ~meth:"PUT" 405 (small_solve_body ());
  expect_status ~meth:"POST" ~path:"/health" 405 ""

let test_protocol_simulate_and_pareto () =
  let p = Protocol.create () in
  let base = parse_ok (small_solve_body ()) in
  let with_fields fields =
    match base with
    | Json.Obj members -> Json.to_string (Json.Obj (members @ fields))
    | _ -> assert false
  in
  let status, _, body =
    Protocol.handle p
      (request ~path:"/simulate" (with_fields [ ("datasets", Json.Number 20.) ]))
  in
  Alcotest.(check int) "simulate 200" 200 status;
  (match Json.member "stats" (parse_ok body) with
  | Some stats ->
    Alcotest.(check (option int))
      "all datasets complete" (Some 20)
      (Option.bind (Json.member "completed" stats) Json.to_int)
  | None -> Alcotest.failf "no stats in %s" body);
  let status, _, body =
    Protocol.handle p
      (request ~path:"/simulate" (with_fields [ ("datasets", Json.Number 0.) ]))
  in
  Alcotest.(check int) "datasets < 1 is 400" 400 status;
  ignore (error_of body);
  let status, _, body = Protocol.handle p (request ~path:"/pareto" (small_solve_body ())) in
  Alcotest.(check int) "pareto 200" 200 status;
  match Json.member "points" (parse_ok body) with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.failf "empty pareto front: %s" body

(* Fully heterogeneous bodies on every POST endpoint (DESIGN.md §13):
   /solve with the exact exhaustive row, /pareto via the exhaustive
   oracle, /simulate both with an explicit mapping and through the het
   splitting default. *)
let het_instance_json =
  let nums l = Json.List (List.map (fun v -> Json.Number v) l) in
  Json.Obj
    [
      ("works", nums [ 4.; 8.; 2.; 6. ]);
      ("deltas", nums [ 10.; 20.; 30.; 20.; 10. ]);
      ( "platform",
        Json.Obj
          [
            ("speeds", nums [ 1.; 2.; 3. ]);
            ( "bandwidths",
              Json.List
                [ nums [ 0.; 2.; 5. ]; nums [ 2.; 0.; 3. ]; nums [ 5.; 3.; 0. ] ]
            );
            ("io_bandwidths", nums [ 10.; 10.; 10. ]);
          ] );
    ]

let het_body fields =
  Json.to_string (Json.Obj (("instance", het_instance_json) :: fields))

let het_library_instance () =
  let app =
    Application.make ~deltas:[| 10.; 20.; 30.; 20.; 10. |] [| 4.; 8.; 2.; 6. |]
  in
  let platform =
    Platform.fully_heterogeneous ~io_bandwidths:[| 10.; 10.; 10. |]
      ~bandwidths:[| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |]
      [| 1.; 2.; 3. |]
  in
  Instance.make app platform

let test_protocol_het_solve_exact () =
  let p = Protocol.create () in
  let status, _, body =
    Protocol.handle p
      (request (het_body [ ("period", Json.Number 9.); ("exact", Json.Bool true) ]))
  in
  Alcotest.(check int) "het solve 200" 200 status;
  match Json.member "results" (parse_ok body) with
  | Some (Json.List rows) ->
    let ids =
      List.filter_map (fun r -> Option.bind (Json.member "id" r) Json.to_string_opt) rows
    in
    Alcotest.(check (list string))
      "het splitting then the exact oracle" [ "het-splitting"; "exact" ] ids;
    let exact = List.nth rows 1 in
    (match
       Pipeline_optimal.Exhaustive.min_latency_under_period
         (het_library_instance ()) ~period:9.
     with
    | None -> Alcotest.fail "oracle infeasible where serve answered"
    | Some sol ->
      Alcotest.(check (option (float 0.)))
        "exact period bitwise"
        (Some sol.Pipeline_core.Solution.period)
        (Option.bind (Json.member "period" exact) Json.to_float);
      Alcotest.(check (option (float 0.)))
        "exact latency bitwise"
        (Some sol.Pipeline_core.Solution.latency)
        (Option.bind (Json.member "latency" exact) Json.to_float))
  | _ -> Alcotest.failf "unexpected results shape: %s" body

let test_protocol_het_pareto () =
  let p = Protocol.create () in
  let status, _, body = Protocol.handle p (request ~path:"/pareto" (het_body [])) in
  Alcotest.(check int) "het pareto 200" 200 status;
  let front = Pipeline_optimal.Exhaustive.pareto (het_library_instance ()) in
  match Json.member "points" (parse_ok body) with
  | Some (Json.List points) ->
    Alcotest.(check int) "front size" (List.length front) (List.length points);
    List.iteri
      (fun i point ->
        let sol = List.nth front i in
        Alcotest.(check (option (float 0.)))
          (Printf.sprintf "point %d period bitwise" i)
          (Some sol.Pipeline_core.Solution.period)
          (Option.bind (Json.member "period" point) Json.to_float))
      points
  | _ -> Alcotest.failf "unexpected points shape: %s" body

let test_protocol_het_simulate () =
  let p = Protocol.create () in
  let status, _, body =
    Protocol.handle p
      (request ~path:"/simulate"
         (het_body
            [ ("mapping", Json.String "1-4:2"); ("datasets", Json.Number 10.) ]))
  in
  Alcotest.(check int) "het simulate (explicit mapping) 200" 200 status;
  (match Json.member "stats" (parse_ok body) with
  | Some stats ->
    Alcotest.(check (option int))
      "all datasets complete" (Some 10)
      (Option.bind (Json.member "completed" stats) Json.to_int)
  | None -> Alcotest.failf "no stats in %s" body);
  (* No explicit mapping: the het splitting extension picks one, as on
     /solve. *)
  let status, _, body =
    Protocol.handle p
      (request ~path:"/simulate"
         (het_body [ ("period", Json.Number 9.); ("datasets", Json.Number 5.) ]))
  in
  Alcotest.(check int) "het simulate (default mapping) 200" 200 status;
  match Json.member "mapping" (parse_ok body) with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.failf "no mapping in %s" body

let test_protocol_het_exact_guard () =
  (* Above the exhaustive oracle's enumeration guard, exact requests on
     fully-het platforms are a deliberate 400. *)
  let p = Protocol.create () in
  let n = 24 and procs = 12 in
  let nums l = Json.List (List.map (fun v -> Json.Number v) l) in
  let ones k = List.init k (fun _ -> 1.) in
  (* One fat link keeps the matrix genuinely heterogeneous. *)
  let bandwidths =
    Json.List
      (List.init procs (fun u ->
           nums
             (List.init procs (fun v ->
                  if u = v then 0. else if u + v = 1 then 3. else 2.))))
  in
  let instance =
    Json.Obj
      [
        ("works", nums (ones n));
        ("deltas", nums (ones (n + 1)));
        ( "platform",
          Json.Obj [ ("speeds", nums (ones procs)); ("bandwidths", bandwidths) ]
        );
      ]
  in
  let body fields = Json.to_string (Json.Obj (("instance", instance) :: fields)) in
  let status, _, reply =
    Protocol.handle p
      (request (body [ ("period", Json.Number 9.); ("exact", Json.Bool true) ]))
  in
  Alcotest.(check int) "oversized exact is 400" 400 status;
  Alcotest.(check bool) "names the guard" true
    (Str_find.contains (error_of reply) "too large for the exact solver");
  let status, _, reply = Protocol.handle p (request ~path:"/pareto" (body [])) in
  Alcotest.(check int) "oversized pareto is 400" 400 status;
  ignore (error_of reply)

let test_protocol_byte_identity () =
  let p = Protocol.create () in
  let solve () =
    let _, _, body = Protocol.handle p (request (small_solve_body ())) in
    body
  in
  let first = solve () in
  Alcotest.(check string) "cold vs warm cache" first (solve ());
  let jobs1 = with_jobs 1 solve in
  let jobs4 = with_jobs 4 solve in
  Alcotest.(check string) "jobs 1 vs jobs 4" jobs1 jobs4

(* The serve path against the library: same instance, same threshold,
   same heuristic => the response carries the same mapping and
   bit-identical objective values (rendered by the same float printer). *)
let prop_serve_matches_library =
  Helpers.qtest ~count:60 "serve solve == direct registry solve"
    QCheck2.Gen.(0 -- 1_000_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. 0.7 in
      let p = Protocol.create () in
      let body =
        Json.to_string
          (Json.Obj
             [
               ( "instance",
                 Json.Obj
                   [
                     ( "works",
                       Json.List
                         (Array.to_list
                            (Array.map (fun f -> Json.Number f)
                               (Application.works inst.Instance.app))) );
                     ( "deltas",
                       Json.List
                         (Array.to_list
                            (Array.map (fun f -> Json.Number f)
                               (Application.deltas inst.Instance.app))) );
                     ( "platform",
                       Json.Obj
                         [
                           ( "speeds",
                             Json.List
                               (Array.to_list
                                  (Array.map (fun f -> Json.Number f)
                                     (Platform.speeds inst.Instance.platform))) );
                           ("bandwidth", Json.Number 10.);
                         ] );
                   ] );
               ("period", Json.Number threshold);
             ])
      in
      let status, _, reply = Protocol.handle p (request body) in
      if status <> 200 then false
      else
        match Json.member "results" (parse_ok reply) with
        | Some (Json.List rows) ->
          let reference =
            List.filter
              (fun (i : Ureg.info) -> i.Ureg.kind = Ureg.Period_fixed)
              Ureg.paper
          in
          List.length rows = List.length reference
          && List.for_all2
               (fun row (info : Ureg.info) ->
                 match info.Ureg.solve inst ~threshold with
                 | None ->
                   Option.bind (Json.member "feasible" row) Json.to_bool
                   = Some false
                 | Some o ->
                   Option.bind (Json.member "mapping" row) Json.to_string_opt
                   = Some (Deal_mapping.to_string o.Ureg.mapping)
                   && (match Json.member "period" row with
                      | Some (Json.Number f) ->
                        Json.number_to_string f
                        = Json.number_to_string o.Ureg.period
                      | _ -> false)
                   && match Json.member "latency" row with
                      | Some (Json.Number f) ->
                        Json.number_to_string f
                        = Json.number_to_string o.Ureg.latency
                      | _ -> false)
               rows reference
        | _ -> false)

(* ------------------------------------------------------------------ *)
(* Server lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let with_server ?max_body f =
  let protocol = Protocol.create () in
  let server = Server.start ?max_body ~port:0 protocol in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f (Server.port server))

let expect_ok label = function
  | Ok (status, body) -> (status, body)
  | Error msg -> Alcotest.failf "%s: transport error %s" label msg

let test_server_routes () =
  with_server (fun port ->
      let status, body = expect_ok "health" (Http.get ~port "/health") in
      Alcotest.(check int) "health 200" 200 status;
      Alcotest.(check bool) "health body" true
        (body = {|{"status":"ok","service":"pipeline-sched","version":"1.0.0"}|});
      let status, _ = expect_ok "solve" (Http.post ~port "/solve" ~body:(small_solve_body ())) in
      Alcotest.(check int) "solve 200" 200 status;
      let status, _ = expect_ok "404" (Http.get ~port "/nope") in
      Alcotest.(check int) "404" 404 status;
      let status, _ = expect_ok "400" (Http.post ~port "/solve" ~body:"garbage") in
      Alcotest.(check int) "garbage 400" 400 status)

(* Raw socket: a malformed request line still gets an HTTP response. *)
let test_server_malformed_request () =
  with_server (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let text = "BLAH\r\n\r\n" in
          ignore (Unix.write_substring fd text 0 (String.length text));
          let buf = Bytes.create 1024 in
          let got = Unix.read fd buf 0 1024 in
          let reply = Bytes.sub_string buf 0 got in
          Alcotest.(check bool) "400 on malformed request line" true
            (String.length reply >= 12 && String.sub reply 0 12 = "HTTP/1.1 400")))

let test_server_oversized_body () =
  with_server ~max_body:100 (fun port ->
      let status, _ =
        expect_ok "413" (Http.post ~port "/solve" ~body:(String.make 200 'x'))
      in
      Alcotest.(check int) "oversized body is 413" 413 status)

let test_server_concurrent_clients () =
  with_server (fun port ->
      let results = Array.make 8 (-1) in
      let threads =
        List.init 8 (fun i ->
            Thread.create
              (fun () ->
                let r =
                  if i mod 2 = 0 then Http.get ~port "/health"
                  else Http.post ~port "/solve" ~body:(small_solve_body ())
                in
                match r with Ok (status, _) -> results.(i) <- status | Error _ -> ())
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i status ->
          Alcotest.(check int) (Printf.sprintf "client %d got 200" i) 200 status)
        results)

let test_server_stop_restart () =
  let protocol = Protocol.create () in
  let server = Server.start ~port:0 protocol in
  let port = Server.port server in
  let status, _ = expect_ok "first run" (Http.get ~port "/health") in
  Alcotest.(check int) "first server responds" 200 status;
  Server.stop server;
  Server.stop server (* idempotent *);
  (match Http.get ~port "/health" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stopped server still answering");
  (* Same protocol state (the warm cache survives), fresh listener. *)
  let server = Server.start ~port:0 protocol in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let status, _ =
        expect_ok "restart" (Http.get ~port:(Server.port server) "/health")
      in
      Alcotest.(check int) "restarted server responds" 200 status)

(* Identical requests through the real socket path are byte-identical
   too (cold, then cache-warm). *)
let test_server_byte_identity () =
  with_server (fun port ->
      let body = small_solve_body () in
      let _, first = expect_ok "cold" (Http.post ~port "/solve" ~body) in
      let _, second = expect_ok "warm" (Http.post ~port "/solve" ~body) in
      Alcotest.(check string) "cold vs warm over HTTP" first second)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "values parse" `Quick test_json_values;
          Alcotest.test_case "malformed rejected" `Quick test_json_rejects;
          Alcotest.test_case "printer deterministic" `Quick
            test_json_print_deterministic;
          Alcotest.test_case "tricky floats round-trip" `Quick
            test_number_round_trip;
          prop_number_round_trip;
          prop_json_round_trip;
        ] );
      ( "http",
        [
          Alcotest.test_case "parses request" `Quick test_http_parses_request;
          Alcotest.test_case "GET without body" `Quick test_http_no_body;
          Alcotest.test_case "malformed framing" `Quick test_http_malformed;
          Alcotest.test_case "size limits" `Quick test_http_limits;
        ] );
      ( "cache",
        [
          Alcotest.test_case "fingerprints injective" `Quick
            test_fingerprint_injective;
          prop_fingerprint_separates;
          Alcotest.test_case "hit/miss and canonicalisation" `Quick
            test_cache_hits_and_canonicalisation;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "health and metrics" `Quick
            test_protocol_health_and_metrics;
          Alcotest.test_case "solve one heuristic" `Quick test_protocol_solve;
          Alcotest.test_case "solve all paper rows" `Quick
            test_protocol_solve_all_rows;
          Alcotest.test_case "CLI diagnostic parity" `Quick
            test_protocol_diagnostic_parity;
          Alcotest.test_case "rejections" `Quick test_protocol_rejects;
          Alcotest.test_case "simulate and pareto" `Quick
            test_protocol_simulate_and_pareto;
          Alcotest.test_case "het solve with exact row" `Quick
            test_protocol_het_solve_exact;
          Alcotest.test_case "het pareto via the oracle" `Quick
            test_protocol_het_pareto;
          Alcotest.test_case "het simulate" `Quick test_protocol_het_simulate;
          Alcotest.test_case "het exact guard" `Quick
            test_protocol_het_exact_guard;
          Alcotest.test_case "byte-identical responses" `Quick
            test_protocol_byte_identity;
          prop_serve_matches_library;
        ] );
      ( "server",
        [
          Alcotest.test_case "routes" `Quick test_server_routes;
          Alcotest.test_case "malformed request line" `Quick
            test_server_malformed_request;
          Alcotest.test_case "oversized body" `Quick test_server_oversized_body;
          Alcotest.test_case "concurrent clients" `Quick
            test_server_concurrent_clients;
          Alcotest.test_case "stop and restart" `Quick test_server_stop_restart;
          Alcotest.test_case "byte-identical over HTTP" `Quick
            test_server_byte_identity;
        ] );
    ]

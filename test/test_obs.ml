(* Observability: counter semantics, the jobs-independence (bit-identity)
   contract, and well-formedness of the Chrome trace export. *)

open Pipeline_model
module E = Pipeline_experiments

let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

(* Each test drives the process-wide switches, so every test restores
   the default (off, zeroed) state on exit. *)
let with_metrics f =
  Obs.reset ();
  Obs.set_metrics true;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_metrics false;
      Obs.reset ())
    f

(* The full name-sorted dump after running [f] under [jobs] domains:
   the object the determinism contract gates. *)
let snapshot ~jobs f =
  with_metrics (fun () ->
      with_jobs jobs (fun () -> ignore (f ()));
      Obs.metrics ())

let metrics_t = Alcotest.(list (pair string int))

let check_bit_identical name f =
  Alcotest.check metrics_t name (snapshot ~jobs:1 f) (snapshot ~jobs:4 f)

(* ------------------------------------------------------------------ *)
(* Counter semantics                                                   *)
(* ------------------------------------------------------------------ *)

let test_off_by_default () =
  let c = Obs.Counter.make "test.off" in
  Obs.reset ();
  Alcotest.(check bool) "metrics start disabled" false (Obs.metrics_enabled ());
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Alcotest.(check int) "disabled counter stays 0" 0 (Obs.Counter.value c)

let test_counter_accumulates () =
  with_metrics (fun () ->
      let c = Obs.Counter.make "test.acc" in
      Obs.Counter.incr c;
      Obs.Counter.add c 41;
      Alcotest.(check int) "incr + add" 42 (Obs.Counter.value c);
      Obs.reset ();
      Alcotest.(check int) "reset zeroes" 0 (Obs.Counter.value c))

let test_gauge_max () =
  with_metrics (fun () ->
      let g = Obs.Gauge.make "test.gauge" in
      Obs.Gauge.observe g 3;
      Obs.Gauge.observe g 7;
      Obs.Gauge.observe g 5;
      Alcotest.(check int) "keeps the maximum" 7 (Obs.Gauge.value g))

let test_make_idempotent () =
  with_metrics (fun () ->
      let a = Obs.Counter.make "test.same" in
      let b = Obs.Counter.make "test.same" in
      Obs.Counter.incr a;
      Obs.Counter.incr b;
      Alcotest.(check int) "one cell behind the name" 2 (Obs.Counter.value a))

let test_metrics_sorted () =
  let names = List.map fst (Obs.metrics ()) in
  Alcotest.(check (list string))
    "name-sorted dump" (List.sort compare names) names

let test_concurrent_increments () =
  (* Sums from racing domains must add up exactly. *)
  with_metrics (fun () ->
      let c = Obs.Counter.make "test.race" in
      with_jobs 4 (fun () ->
          ignore
            (Pipeline_util.Pool.map
               (fun _ ->
                 for _ = 1 to 1000 do
                   Obs.Counter.incr c
                 done)
               (Array.make 8 ())));
      Alcotest.(check int) "8 x 1000 increments" 8000 (Obs.Counter.value c))

let test_csv_shape () =
  with_metrics (fun () ->
      let c = Obs.Counter.make "test.csv" in
      Obs.Counter.add c 5;
      let csv = Obs.metrics_csv () in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check string) "header" "metric,value" (List.hd lines);
      Alcotest.(check bool) "row present" true
        (List.mem "test.csv,5" lines))

(* ------------------------------------------------------------------ *)
(* Bit-identity at --jobs 1 vs --jobs 4                                *)
(* ------------------------------------------------------------------ *)

let gen_seed = QCheck2.Gen.int_range 0 100_000

let prop_exhaustive_counters =
  Helpers.qtest ~count:25 "obs: Exhaustive counters jobs=4 = jobs=1" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:6 ~p_max:4 seed in
      snapshot ~jobs:1 (fun () -> Pipeline_optimal.Exhaustive.min_period inst)
      = snapshot ~jobs:4 (fun () ->
            Pipeline_optimal.Exhaustive.min_period inst))

let prop_pareto_counters =
  Helpers.qtest ~count:15 "obs: pareto counters jobs=4 = jobs=1" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:5 ~p_max:4 seed in
      snapshot ~jobs:1 (fun () -> Pipeline_optimal.Exhaustive.pareto inst)
      = snapshot ~jobs:4 (fun () -> Pipeline_optimal.Exhaustive.pareto inst))

let prop_deal_counters =
  Helpers.qtest ~count:15 "obs: Deal_exhaustive counters jobs=4 = jobs=1"
    gen_seed (fun seed ->
      let inst = Helpers.random_instance ~n_max:4 ~p_max:3 seed in
      snapshot ~jobs:1 (fun () -> Pipeline_deal.Deal_exhaustive.min_period inst)
      = snapshot ~jobs:4 (fun () ->
            Pipeline_deal.Deal_exhaustive.min_period inst))

let smoke_setup () =
  E.Config.default_setup ~pairs:2 ~sweep_points:3 ~seed:2007 E.Config.E1 ~n:5
    ~p:4

let test_campaign_counters () =
  check_bit_identical "figure counters identical" (fun () ->
      E.Campaign.figure (smoke_setup ()))

let test_fault_campaign_counters () =
  check_bit_identical "fault campaign counters identical" (fun () ->
      E.Fault_campaign.run ~crash_counts:[ 0; 2 ] ~datasets:30 (smoke_setup ()))

let test_table1_counters () =
  check_bit_identical "table1 counters identical" (fun () ->
      E.Failure.table ~pairs:2 ~seed:2007 E.Config.E1 ~p:4 ~ns:[ 3; 5 ])

let test_counters_nonzero () =
  (* The instrumented hot paths actually count: a smoke figure moves the
     sweep/bisection counters, a simulated crash moves the DES and fault
     ones, a remap moves lib/ft's. *)
  let metrics =
    snapshot ~jobs:4 (fun () ->
        ignore (E.Campaign.figure (smoke_setup ()));
        let inst = Helpers.small_instance () in
        let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
        ignore (Pipeline_sim.Workload_sim.run inst mapping);
        let module F = Pipeline_sim.Fault_sim in
        ignore
          (F.run
             ~config:
               {
                 F.default_config with
                 F.crashes = [ { F.at = 1.; proc = 1; recover_at = None } ];
               }
             inst mapping);
        ignore
          (Pipeline_ft.Ft_remap.remap inst ~before:mapping ~failed:[ 1 ]
             ~threshold:(Instance.single_proc_period inst)))
  in
  let value name = List.assoc name metrics in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " counted something")
        true
        (value name > 0))
    [
      "experiments.solves";
      "core.sp_bi_p.bisect_iters";
      "pool.maps";
      "pool.items";
      "sim.des.fired";
      "sim.des.max_queue";
      "sim.fault.runs";
      "ft.remap.calls";
    ]

(* ------------------------------------------------------------------ *)
(* Chrome trace well-formedness                                        *)
(* ------------------------------------------------------------------ *)

(* A minimal JSON reader (no external dependency is available): enough
   of RFC 8259 to fully parse the trace_event exports. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json text =
  let pos = ref 0 in
  let len = String.length text in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do advance () done;
          Buffer.add_char buf '?';
          loop ()
        | Some c -> advance (); Buffer.add_char buf c; loop ()
        | None -> fail "unterminated escape")
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((key, value) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((key, value) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements (value :: acc)
          | Some ']' -> advance (); Arr (List.rev (value :: acc))
          | _ -> fail "expected , or ]"
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  value

let field name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

(* Every trace_event object must carry ph/pid/tid; complete events also
   carry name, ts and dur. *)
let check_trace_events json =
  match json with
  | Arr events ->
    Alcotest.(check bool) "non-empty trace" true (events <> []);
    List.iter
      (fun event ->
        match field "ph" event with
        | Some (Str "X") ->
          List.iter
            (fun key ->
              Alcotest.(check bool) ("X event has " ^ key) true
                (field key event <> None))
            [ "name"; "ts"; "dur"; "pid"; "tid" ]
        | Some (Str "M") ->
          Alcotest.(check bool) "M event has args" true
            (field "args" event <> None)
        | _ -> Alcotest.fail "event with unexpected ph")
      events
  | _ -> Alcotest.fail "trace is not a JSON array"

let test_trace_valid_json () =
  Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> Obs.set_tracing false)
    (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> ignore (Sys.opaque_identity 42)));
      (* Spans recorded from pool workers land on per-worker tracks. *)
      with_jobs 4 (fun () ->
          ignore
            (Pipeline_util.Pool.map
               (fun i -> Obs.span "work" (fun () -> i * 2))
               (Array.init 8 Fun.id)));
      let path = Filename.temp_file "obs-trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_trace path;
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          check_trace_events (parse_json text)))

let test_span_records_on_exception () =
  Obs.set_tracing true;
  Fun.protect
    ~finally:(fun () -> Obs.set_tracing false)
    (fun () ->
      (try Obs.span "raising" (fun () -> failwith "boom")
       with Failure _ -> ());
      let path = Filename.temp_file "obs-trace" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Obs.write_trace path;
          let ic = open_in_bin path in
          let text =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match parse_json text with
          | Arr events ->
            Alcotest.(check bool) "raising span recorded" true
              (List.exists
                 (fun e -> field "name" e = Some (Str "raising"))
                 events)
          | _ -> Alcotest.fail "trace is not a JSON array"))

let test_sim_trace_valid_json () =
  (* The DES op-trace exporter predates lib/obs; hold it to the same
     well-formedness bar. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let trace = Pipeline_sim.Runner.run inst mapping ~datasets:5 in
  check_trace_events (parse_json (Pipeline_sim.Trace.to_chrome_json trace))

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "off by default" `Quick test_off_by_default;
          Alcotest.test_case "accumulate and reset" `Quick
            test_counter_accumulates;
          Alcotest.test_case "gauge keeps max" `Quick test_gauge_max;
          Alcotest.test_case "make is idempotent" `Quick test_make_idempotent;
          Alcotest.test_case "dump is name-sorted" `Quick test_metrics_sorted;
          Alcotest.test_case "concurrent increments sum exactly" `Quick
            test_concurrent_increments;
          Alcotest.test_case "csv shape" `Quick test_csv_shape;
        ] );
      ( "bit-identity",
        [
          prop_exhaustive_counters;
          prop_pareto_counters;
          prop_deal_counters;
          Alcotest.test_case "campaign figure" `Slow test_campaign_counters;
          Alcotest.test_case "fault campaign" `Slow
            test_fault_campaign_counters;
          Alcotest.test_case "table1" `Slow test_table1_counters;
          Alcotest.test_case "hot paths actually count" `Slow
            test_counters_nonzero;
        ] );
      ( "traces",
        [
          Alcotest.test_case "chrome trace parses" `Quick
            test_trace_valid_json;
          Alcotest.test_case "span survives exceptions" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "sim trace parses" `Quick
            test_sim_trace_valid_json;
        ] );
    ]

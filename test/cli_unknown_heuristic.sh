#!/usr/bin/env bash
# Exit-code contract of `pipeline-sched solve --heuristic <id>`:
#   - unknown id: exit 2, one diagnostic line on stderr, empty stdout
#     (the instance must NOT be printed before the rejection);
#   - known ids from every stack resolve and exit 0.
set -u
bin="$1"
fail() { echo "cli_unknown_heuristic: $1" >&2; exit 1; }

args=(solve --works 1,2,3 --deltas 1,1,1,1 --speeds 1,2 --period 100)

out=$("$bin" "${args[@]}" --heuristic no-such-id 2>/tmp/cli-err.$$)
code=$?
err=$(cat /tmp/cli-err.$$); rm -f /tmp/cli-err.$$

[ "$code" -eq 2 ] || fail "expected exit 2 on unknown id, got $code"
[ -z "$out" ] || fail "expected empty stdout on unknown id, got: $out"
[ "$(printf '%s' "$err" | wc -l)" -eq 0 ] || fail "expected one-line stderr, got: $err"
case "$err" in
  "unknown heuristic no-such-id"*) ;;
  *) fail "unexpected diagnostic: $err" ;;
esac

# Every stack's rows resolve through the same flag.
for id in h1-sp-mono-p H4 deal-split-rep-p het-sp-mono-p; do
  "$bin" "${args[@]}" --heuristic "$id" >/dev/null 2>&1 \
    || fail "known id $id should solve (exit 0)"
done

# ft-rep-tri is period-fixed too, but tri-criteria: accepted with
# --reliability, rejected without a matching kind is not an issue here.
"$bin" "${args[@]}" --heuristic ft-rep-tri >/dev/null 2>&1 \
  || fail "ft-rep-tri should run under a period threshold"

# A latency-fixed id under --period is a kind mismatch: exit 2.
"$bin" "${args[@]}" --heuristic h5-sp-mono-l >/dev/null 2>&1
[ $? -eq 2 ] || fail "kind mismatch should exit 2"

echo "cli unknown-heuristic contract: ok"

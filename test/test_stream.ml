open Pipeline_model
open Pipeline_stream
module Rng = Pipeline_util.Rng
module W = Pipeline_sim.Workload_sim
module F = Pipeline_sim.Fault_sim

let gen_seed = QCheck2.Gen.int_range 0 100_000

let rejects name f =
  Alcotest.(check bool) name true
    (try
       ignore (f ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Arrival traces                                                      *)
(* ------------------------------------------------------------------ *)

let shapes =
  [
    ("bursty", Arrival_trace.Bursty { rate = 0.2; burst = 5; spread = 0.3 });
    ("diurnal", Arrival_trace.Diurnal { period = 40.; peak = 1.; trough = 0.2 });
    ("heavy-tailed", Arrival_trace.Heavy_tailed { rate = 0.5; alpha = 1.7 });
  ]

let valid_trace a =
  Array.length a > 0
  && Array.for_all (fun t -> Float.is_finite t && t >= 0.) a
  && fst
       (Array.fold_left
          (fun (ok, prev) t -> (ok && t >= prev, t))
          (true, neg_infinity) a)

let prop_generators_valid =
  Helpers.qtest ~count:60 "generated traces are sorted, finite, >= 0"
    QCheck2.Gen.(pair gen_seed (int_range 1 80))
    (fun (seed, count) ->
      List.for_all
        (fun (_, spec) ->
          let a = Arrival_trace.generate (Rng.create seed) spec ~count in
          Array.length a = count && valid_trace a)
        shapes)

let test_generators_deterministic () =
  List.iter
    (fun (name, spec) ->
      let a = Arrival_trace.generate (Rng.create 11) spec ~count:50 in
      let b = Arrival_trace.generate (Rng.create 11) spec ~count:50 in
      Alcotest.(check bool) (name ^ " reproducible") true (a = b))
    shapes

let test_generators_reject_bad_spec () =
  let gen spec = Arrival_trace.generate (Rng.create 0) spec ~count:10 in
  rejects "count < 1" (fun () ->
      Arrival_trace.generate (Rng.create 0)
        (Bursty { rate = 1.; burst = 1; spread = 0. })
        ~count:0);
  rejects "bursty rate" (fun () ->
      gen (Bursty { rate = 0.; burst = 1; spread = 0. }));
  rejects "bursty burst" (fun () ->
      gen (Bursty { rate = 1.; burst = 0; spread = 0. }));
  rejects "bursty spread" (fun () ->
      gen (Bursty { rate = 1.; burst = 1; spread = -1. }));
  rejects "diurnal period" (fun () ->
      gen (Diurnal { period = 0.; peak = 1.; trough = 0.5 }));
  rejects "diurnal trough" (fun () ->
      gen (Diurnal { period = 1.; peak = 1.; trough = 0. }));
  rejects "diurnal peak < trough" (fun () ->
      gen (Diurnal { period = 1.; peak = 0.2; trough = 0.5 }));
  rejects "pareto alpha" (fun () -> gen (Heavy_tailed { rate = 1.; alpha = 1. }))

let prop_trace_csv_round_trip =
  Helpers.qtest ~count:40 "arrival CSV round-trips exactly" gen_seed
    (fun seed ->
      let a =
        Arrival_trace.generate (Rng.create seed)
          (Heavy_tailed { rate = 0.5; alpha = 2.5 })
          ~count:30
      in
      match Arrival_trace.of_csv_string (Arrival_trace.to_csv a) with
      | Ok b -> a = b
      | Error _ -> false)

let test_trace_csv_garbage () =
  let err s =
    match Arrival_trace.of_csv_string s with
    | Error msg -> msg
    | Ok _ -> Alcotest.fail ("accepted: " ^ String.escaped s)
  in
  let check_prefix name s prefix =
    let msg = err s in
    Alcotest.(check bool)
      (name ^ ": " ^ msg)
      true
      (String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix)
  in
  check_prefix "not a number" "arrival\n1.0\nx\n" "line 3";
  check_prefix "negative" "-1.0\n" "line 1";
  check_prefix "nan" "nan\n" "line 1";
  check_prefix "decreasing" "2.0\n1.0\n" "line 2";
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Arrival_trace.of_csv_string "arrival\n"))

(* ------------------------------------------------------------------ *)
(* Churn traces                                                        *)
(* ------------------------------------------------------------------ *)

let ev at proc kind = { Churn.at; proc; kind }

let test_churn_validate_rejects () =
  let v events = Churn.validate ~p:3 events in
  rejects "proc out of range" (fun () -> v [ ev 1. 3 Churn.Crash ]);
  rejects "negative time" (fun () -> v [ ev (-1.) 0 Churn.Crash ]);
  rejects "nan time" (fun () -> v [ ev nan 0 Churn.Crash ]);
  rejects "bad factor" (fun () -> v [ ev 1. 0 (Churn.Speed 0.) ]);
  rejects "crash while down" (fun () ->
      v [ ev 1. 0 Churn.Crash; ev 2. 0 Churn.Crash ]);
  rejects "recover while up" (fun () -> v [ ev 1. 0 Churn.Recover ]);
  rejects "join not first" (fun () ->
      v [ ev 1. 0 Churn.Crash; ev 2. 0 Churn.Join ]);
  rejects "join at zero" (fun () -> v [ ev 0. 0 Churn.Join ]);
  rejects "simultaneous events" (fun () ->
      v [ ev 1. 0 Churn.Crash; ev 1. 0 Churn.Recover ]);
  (* The well-formed counterparts pass. *)
  v [ ev 1. 0 Churn.Crash; ev 2. 0 Churn.Recover; ev 2. 1 (Churn.Speed 0.5) ];
  v [ ev 1. 2 Churn.Join; ev 3. 2 Churn.Crash ];
  v []

let test_churn_csv_round_trip () =
  let events =
    [
      ev 1. 0 Churn.Crash;
      ev 2.5 1 (Churn.Speed 0.75);
      ev 3. 0 Churn.Recover;
      ev 4. 2 Churn.Join;
    ]
  in
  match Churn.of_csv_string (Churn.to_csv events) with
  | Ok back -> Alcotest.(check bool) "round-trip" true (back = events)
  | Error msg -> Alcotest.fail msg

let test_churn_csv_garbage () =
  let line s =
    match Churn.of_csv_string s with
    | Error msg -> msg
    | Ok _ -> Alcotest.fail ("accepted: " ^ String.escaped s)
  in
  let has_line n s =
    let msg = line s in
    let prefix = Printf.sprintf "line %d" n in
    Alcotest.(check bool)
      (s ^ " -> " ^ msg)
      true
      (String.sub msg 0 (String.length prefix) = prefix)
  in
  has_line 1 "1.0,0\n";
  has_line 2 "at,proc,event\n1.0,0,explode\n";
  has_line 1 "x,0,crash\n";
  has_line 1 "1.0,x,crash\n";
  has_line 1 "1.0,0,speed\n";
  has_line 1 "1.0,0,speed,x\n";
  has_line 1 "1.0,0,crash,0.5\n";
  match Churn.of_csv_string "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty file produced events"
  | Error msg -> Alcotest.fail ("empty file rejected: " ^ msg)

let test_churn_crash_compilation () =
  let windows =
    Churn.crashes ~p:3
      [
        ev 5. 0 Churn.Crash;
        ev 9. 0 Churn.Recover;
        ev 2. 1 Churn.Join;
        ev 4. 2 Churn.Crash;
      ]
  in
  let sorted =
    List.sort (fun (a : F.crash) b -> compare (a.proc, a.at) (b.proc, b.at)) windows
  in
  Alcotest.(check int) "three windows" 3 (List.length sorted);
  (match sorted with
  | [ w0; w1; w2 ] ->
    Helpers.check_float "crash at" 5. w0.F.at;
    Alcotest.(check (option (float 1e-9))) "recover" (Some 9.) w0.F.recover_at;
    (* Join at 2 = down from the start until 2. *)
    Helpers.check_float "join from zero" 0. w1.F.at;
    Alcotest.(check (option (float 1e-9))) "join recover" (Some 2.) w1.F.recover_at;
    (* Unrecovered crash is permanent. *)
    Helpers.check_float "permanent at" 4. w2.F.at;
    Alcotest.(check (option (float 1e-9))) "permanent" None w2.F.recover_at
  | _ -> Alcotest.fail "wrong shape");
  Alcotest.(check int) "empty trace, no windows" 0
    (List.length (Churn.crashes ~p:3 []))

let test_churn_state_fold () =
  let events =
    [
      ev 1. 0 Churn.Crash;
      ev 2. 1 (Churn.Speed 0.5);
      ev 3. 1 (Churn.Speed 0.5);
      ev 4. 2 Churn.Join;
    ]
  in
  Churn.validate ~p:3 events;
  let final =
    List.fold_left Churn.apply (Churn.initial ~p:3 events) (Churn.sorted events)
  in
  Alcotest.(check bool) "proc 0 dead" false (Churn.alive final 0);
  Alcotest.(check bool) "proc 1 alive" true (Churn.alive final 1);
  Alcotest.(check bool) "proc 2 joined" true (Churn.alive final 2);
  Helpers.check_float "factors compose" 0.25 (Churn.factor final 1);
  Alcotest.(check (array int)) "survivors" [| 1; 2 |] (Churn.survivors final);
  (* Join processors start absent. *)
  let st0 = Churn.initial ~p:3 events in
  Alcotest.(check bool) "joiner absent at 0" false (Churn.alive st0 2);
  Alcotest.(check bool) "fingerprints differ" true
    (Churn.fingerprint st0 <> Churn.fingerprint final)

(* ------------------------------------------------------------------ *)
(* Resolver                                                            *)
(* ------------------------------------------------------------------ *)

let h1 () =
  match Pipeline_registry.find "h1-sp-mono-p" with
  | Some h -> h
  | None -> Alcotest.fail "H1 missing"

let small_mapped () =
  let inst = Helpers.small_instance () in
  let threshold = Instance.single_proc_period inst in
  match (h1 ()).Pipeline_registry.solve inst ~threshold with
  | Some o -> (
    match Pipeline_deal.Deal_mapping.to_mapping o.Pipeline_registry.mapping with
    | Some mapping -> (inst, mapping, threshold)
    | None -> Alcotest.fail "H1 returned a replicated mapping")
  | None -> Alcotest.fail "H1 infeasible"

let test_resolver_keeps_healthy () =
  let inst, mapping, threshold = small_mapped () in
  let cache = Resolver.cache inst in
  let state = Churn.initial ~p:3 [] in
  match Resolver.resolve ~strategy:`Warm cache state ~before:mapping ~threshold with
  | None -> Alcotest.fail "survivors exist"
  | Some plan ->
    Alcotest.(check bool) "kept" true (plan.Resolver.mode = Resolver.Kept);
    Alcotest.(check bool) "same mapping" true
      (Mapping.equal plan.Resolver.mapping mapping);
    Alcotest.(check int) "no stages moved" 0 plan.Resolver.migrated_stages;
    Helpers.check_float "no volume" 0. plan.Resolver.migration_volume;
    Alcotest.(check bool) "met" true plan.Resolver.met_threshold

let test_resolver_none_when_dark () =
  let inst, mapping, threshold = small_mapped () in
  let cache = Resolver.cache inst in
  let dark =
    List.fold_left Churn.apply
      (Churn.initial ~p:3 [])
      [ ev 1. 0 Churn.Crash; ev 1. 1 Churn.Crash; ev 1. 2 Churn.Crash ]
  in
  Alcotest.(check bool) "no plan" true
    (Resolver.resolve ~strategy:`Warm cache dark ~before:mapping ~threshold = None);
  Alcotest.(check bool) "evaluate none" true
    (Resolver.evaluate cache dark mapping = None)

let test_resolver_avoids_dead () =
  let inst, mapping, threshold = small_mapped () in
  let cache = Resolver.cache inst in
  let victim = (Mapping.procs mapping).(0) in
  let state = Churn.apply (Churn.initial ~p:3 []) (ev 1. victim Churn.Crash) in
  match Resolver.resolve ~strategy:`Warm cache state ~before:mapping ~threshold with
  | None -> Alcotest.fail "survivors exist"
  | Some plan ->
    Alcotest.(check bool) "dead processor shunned" false
      (Mapping.uses plan.Resolver.mapping victim);
    Alcotest.(check bool) "some migration" true (plan.Resolver.migrated_stages > 0);
    Alcotest.(check bool) "not kept" true (plan.Resolver.mode <> Resolver.Kept)

let test_resolver_fallback_on_tight_threshold () =
  let inst, mapping, _ = small_mapped () in
  let cache = Resolver.cache inst in
  let state = Churn.initial ~p:3 [] in
  (* No mapping reaches a period of 1e-6: candidate pruning or the
     heuristic itself must degrade to the fastest survivor. *)
  match
    Resolver.resolve ~strategy:`Warm cache state ~before:mapping ~threshold:1e-6
  with
  | None -> Alcotest.fail "survivors exist"
  | Some plan ->
    Alcotest.(check bool) "fallback" true (plan.Resolver.mode = Resolver.Fallback);
    Alcotest.(check bool) "honest" false plan.Resolver.met_threshold;
    Alcotest.(check int) "one interval" 1 (Mapping.m plan.Resolver.mapping);
    (* Fastest processor is 1 (speed 4). *)
    Alcotest.(check int) "fastest survivor" 1 (Mapping.proc plan.Resolver.mapping 0)

let test_resolver_rejects_bad_input () =
  let inst, mapping, _ = small_mapped () in
  let cache = Resolver.cache inst in
  let state = Churn.initial ~p:3 [] in
  rejects "bad threshold" (fun () ->
      Resolver.resolve ~strategy:`Warm cache state ~before:mapping ~threshold:0.);
  rejects "foreign mapping" (fun () ->
      Resolver.resolve ~strategy:`Warm cache state
        ~before:(Mapping.single ~n:7 ~proc:0) ~threshold:10.);
  rejects "latency-family heuristic" (fun () ->
      match Pipeline_registry.find "h5-sp-mono-l" with
      | None -> invalid_arg "registry row moved: update this test"
      | Some h ->
        Resolver.resolve ~heuristic:h ~strategy:`Warm cache state ~before:mapping
          ~threshold:10.)

let gen_churned_case =
  QCheck2.Gen.map
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:6 ~p_max:4 seed in
      let rng = Rng.create (seed + 57) in
      let p = Platform.p inst.Instance.platform in
      (* Kill a strict subset, slow another processor. *)
      let order = Rng.permutation rng p in
      let kills = Rng.int rng p in
      let events =
        List.concat
          (List.init p (fun i ->
               if i < kills then [ ev 1. order.(i) Churn.Crash ]
               else if i = kills && kills < p then
                 [ ev 1. order.(i) (Churn.Speed (0.25 +. (0.5 *. Rng.float rng 1.))) ]
               else []))
      in
      let state =
        List.fold_left Churn.apply (Churn.initial ~p []) (Churn.sorted events)
      in
      let threshold =
        Instance.single_proc_period inst
        *. (0.4 +. (float_of_int (Rng.int_in rng 0 14) /. 10.))
      in
      (inst, state, threshold))
    gen_seed

let prop_warm_cold_agree =
  Helpers.qtest ~count:120 "warm and cold agree on feasibility and honesty"
    gen_churned_case (fun (inst, state, threshold) ->
      let cache = Resolver.cache inst in
      let before = Instance.single_proc_mapping inst in
      let warm = Resolver.resolve ~strategy:`Warm cache state ~before ~threshold in
      let cold = Resolver.resolve ~strategy:`Cold cache state ~before ~threshold in
      match (warm, cold) with
      | None, None -> Array.length (Churn.survivors state) = 0
      | Some w, Some c ->
        (* Same feasibility verdict; both plans live on survivors only;
           both are honest about their claimed period. *)
        w.Resolver.met_threshold = c.Resolver.met_threshold
        && List.for_all
             (fun (plan : Resolver.plan) ->
               Array.for_all (fun u -> Churn.alive state u)
                 (Mapping.procs plan.Resolver.mapping)
               && (match Resolver.evaluate cache state plan.Resolver.mapping with
                  | Some s ->
                    Helpers.feq s.Cost.period plan.Resolver.period
                    && Helpers.feq s.Cost.latency plan.Resolver.latency
                  | None -> false)
               && plan.Resolver.met_threshold
                  = Pipeline_util.Tol.meets plan.Resolver.period threshold)
             [ w; c ]
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Controller                                                          *)
(* ------------------------------------------------------------------ *)

let prop_hysteresis_soundness =
  Helpers.qtest ~count:120
    "never migrate while the incumbent meets the hysteresis band"
    gen_churned_case (fun (inst, state, threshold) ->
      let initial = Instance.single_proc_mapping inst in
      let ctl = Controller.create inst ~initial ~threshold in
      let cfg = Controller.config ctl in
      let live = Controller.period ctl state in
      let in_band =
        Pipeline_util.Tol.meets live (cfg.Controller.hysteresis *. threshold)
      in
      let r = Controller.on_event ctl state ~at:1. in
      if in_band then
        (* Hysteresis soundness: a tolerable incumbent is left alone. *)
        r.Controller.action = Controller.Kept
        && Mapping.equal r.Controller.mapping initial
        && r.Controller.migrated_stages = 0
        && r.Controller.migration_volume = 0.
      else
        (* Out of band the controller must do *something* — and never
           return a mapping enrolling a dead processor while survivors
           exist. *)
        r.Controller.action <> Controller.Kept
        && (r.Controller.action = Controller.Stalled
            || Array.for_all (fun u -> Churn.alive state u)
                 (Mapping.procs r.Controller.mapping)))

let test_controller_budget_defers () =
  let inst, mapping, threshold = small_mapped () in
  let config =
    {
      (Controller.default ~threshold) with
      Controller.migration_budget = 0.;
      hysteresis = 1.;
    }
  in
  let ctl = Controller.create ~config inst ~initial:mapping ~threshold in
  (* Slow the bottleneck so the incumbent leaves the band: a voluntary
     migration, which the zero budget must block. *)
  let victim = (Mapping.procs mapping).(0) in
  let state =
    Churn.apply (Churn.initial ~p:3 []) (ev 1. victim (Churn.Speed 0.05))
  in
  let r = Controller.on_event ctl state ~at:1. in
  Alcotest.(check bool) "deferred" true (r.Controller.action = Controller.Deferred);
  Alcotest.(check bool) "mapping untouched" true
    (Mapping.equal (Controller.mapping ctl) mapping);
  (* A forced migration (the processor dies outright) goes through even
     with an empty budget. *)
  let state = Churn.apply state (ev 2. victim Churn.Crash) in
  let r = Controller.on_event ctl state ~at:2. in
  Alcotest.(check bool) "forced through" true
    (r.Controller.action <> Controller.Deferred
    && not (Mapping.uses r.Controller.mapping victim))

let test_controller_retry_backoff () =
  let inst, mapping, threshold = small_mapped () in
  let config =
    {
      (Controller.default ~threshold) with
      Controller.max_retries = 2;
      backoff = 5.;
    }
  in
  let ctl = Controller.create ~config inst ~initial:mapping ~threshold in
  (* Kill everything but the slowest processor: only a fallback exists,
     so every reaction is degraded and schedules a retry until the
     budget runs out. *)
  let state =
    List.fold_left Churn.apply
      (Churn.initial ~p:3 [])
      [ ev 1. 0 Churn.Crash; ev 1. 1 Churn.Crash ]
  in
  let r1 = Controller.on_event ctl state ~at:1. in
  Alcotest.(check bool) "degraded" true (r1.Controller.action = Controller.Degraded);
  Alcotest.(check (option (float 1e-9))) "first retry" (Some 6.) r1.Controller.retry_at;
  let r2 = Controller.on_event ctl state ~at:6. in
  Alcotest.(check (option (float 1e-9))) "second retry" (Some 11.) r2.Controller.retry_at;
  let r3 = Controller.on_event ctl state ~at:11. in
  Alcotest.(check (option (float 1e-9))) "budget exhausted" None r3.Controller.retry_at;
  (* Recovery re-arms: a threshold-meeting resolve resets the budget. *)
  let healed =
    List.fold_left Churn.apply state [ ev 20. 0 Churn.Recover; ev 20. 1 Churn.Recover ]
  in
  let r4 = Controller.on_event ctl healed ~at:20. in
  Alcotest.(check bool) "healed meets threshold" true r4.Controller.met_threshold;
  let dark =
    List.fold_left Churn.apply healed
      [ ev 30. 0 Churn.Crash; ev 30. 1 Churn.Crash; ev 30. 2 Churn.Crash ]
  in
  let r5 = Controller.on_event ctl dark ~at:30. in
  Alcotest.(check bool) "stalled" true (r5.Controller.action = Controller.Stalled);
  Alcotest.(check bool) "stall retries rearmed" true (r5.Controller.retry_at <> None);
  Alcotest.(check bool) "stalled period" true (r5.Controller.period = infinity)

let test_controller_rejects_bad_config () =
  let inst, mapping, threshold = small_mapped () in
  let base = Controller.default ~threshold in
  let mk config = Controller.create ~config inst ~initial:mapping ~threshold in
  rejects "hysteresis < 1" (fun () ->
      mk { base with Controller.hysteresis = 0.9 });
  rejects "negative budget" (fun () ->
      mk { base with Controller.migration_budget = -1. });
  rejects "negative retries" (fun () ->
      mk { base with Controller.max_retries = -1 });
  rejects "zero backoff" (fun () -> mk { base with Controller.backoff = 0. });
  rejects "foreign initial" (fun () ->
      Controller.create inst ~initial:(Mapping.single ~n:9 ~proc:0) ~threshold)

(* ------------------------------------------------------------------ *)
(* Stream_sim                                                          *)
(* ------------------------------------------------------------------ *)

let gen_stream_case =
  QCheck2.Gen.map
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:6 ~p_max:4 seed in
      let rng = Rng.create (seed + 41) in
      let threshold =
        Instance.single_proc_period inst
        *. (0.8 +. (float_of_int (Rng.int_in rng 0 8) /. 10.))
      in
      let arrivals =
        Arrival_trace.generate rng
          (Heavy_tailed { rate = 1. /. threshold; alpha = 2. })
          ~count:(10 + Rng.int rng 40)
      in
      (inst, threshold, arrivals, Rng.int rng 1000))
    gen_seed

let prop_empty_churn_is_static =
  Helpers.qtest ~count:60 "empty churn = static workload sim (bit-for-bit)"
    gen_stream_case (fun (inst, threshold, arrivals, seed) ->
      let initial = Instance.single_proc_mapping inst in
      let config =
        {
          (Stream_sim.default_config ~threshold) with
          Stream_sim.arrivals;
          noise = W.Uniform_factor 0.2;
          seed;
        }
      in
      let streaming = Stream_sim.run ~config inst ~initial in
      let static =
        W.run
          ~config:
            {
              W.arrival = W.Trace arrivals;
              noise = W.Uniform_factor 0.2;
              slowdowns = [];
              datasets = Array.length arrivals;
              seed;
            }
          inst initial
      in
      Stdlib.compare streaming.Stream_sim.workload static = 0
      && streaming.Stream_sim.segments = 1
      && streaming.Stream_sim.reactions = []
      && streaming.Stream_sim.migrations = 0
      && streaming.Stream_sim.lost = 0)

let test_stream_sim_deterministic () =
  let inst, mapping, threshold = small_mapped () in
  let rng = Rng.create 3 in
  let arrivals =
    Arrival_trace.generate rng
      (Bursty { rate = 0.3 /. threshold; burst = 4; spread = 0.2 *. threshold })
      ~count:60
  in
  let victim = (Mapping.procs mapping).(0) in
  let horizon = arrivals.(Array.length arrivals - 1) in
  let churn =
    [
      ev (0.2 *. horizon) victim Churn.Crash;
      ev (0.5 *. horizon) victim Churn.Recover;
    ]
  in
  let config =
    {
      (Stream_sim.default_config ~threshold) with
      Stream_sim.arrivals;
      churn;
      retry = { F.max_retries = 2; backoff = threshold };
      seed = 7;
    }
  in
  let a = Stream_sim.run ~config inst ~initial:mapping in
  let b = Stream_sim.run ~config inst ~initial:mapping in
  Alcotest.(check bool) "bit-identical stats" true (Stdlib.compare a b = 0);
  Alcotest.(check bool) "crash produced segments" true (a.Stream_sim.segments >= 2);
  Alcotest.(check bool) "reactions recorded" true (a.Stream_sim.reactions <> []);
  Alcotest.(check bool) "degradation sane" true
    (Float.is_finite a.Stream_sim.degradation && a.Stream_sim.degradation > 0.)

let test_stream_sim_accounting () =
  let inst, mapping, threshold = small_mapped () in
  let arrivals = Array.init 40 (fun i -> float_of_int i *. threshold) in
  let victim = (Mapping.procs mapping).(0) in
  let churn =
    [ ev (5. *. threshold) victim Churn.Crash;
      ev (15. *. threshold) victim Churn.Recover ]
  in
  let config =
    {
      (Stream_sim.default_config ~threshold) with
      Stream_sim.arrivals;
      churn;
      retry = { F.max_retries = 3; backoff = threshold };
      seed = 1;
    }
  in
  let stats = Stream_sim.run ~config inst ~initial:mapping in
  Alcotest.(check int) "offered" 40 stats.Stream_sim.offered;
  Alcotest.(check int) "lost = offered - completed"
    (40 - stats.Stream_sim.workload.W.completed)
    stats.Stream_sim.lost;
  Alcotest.(check bool) "volume only when stages moved" true
    (stats.Stream_sim.migrations > 0 || stats.Stream_sim.migration_volume = 0.);
  Alcotest.(check bool) "reaction mean <= max" true
    (stats.Stream_sim.reaction_mean <= stats.Stream_sim.reaction_max +. 1e-9);
  Alcotest.(check bool) "final mapping valid" true
    (Mapping.valid_on stats.Stream_sim.final_mapping inst.Instance.platform)

let test_stream_sim_rejects_bad_config () =
  let inst, mapping, threshold = small_mapped () in
  let base = Stream_sim.default_config ~threshold in
  rejects "empty arrivals" (fun () ->
      Stream_sim.run ~config:{ base with Stream_sim.arrivals = [||] } inst
        ~initial:mapping);
  rejects "unsorted arrivals" (fun () ->
      Stream_sim.run
        ~config:{ base with Stream_sim.arrivals = [| 2.; 1. |] }
        inst ~initial:mapping);
  rejects "negative arrival" (fun () ->
      Stream_sim.run
        ~config:{ base with Stream_sim.arrivals = [| -1.; 1. |] }
        inst ~initial:mapping);
  rejects "bad churn" (fun () ->
      Stream_sim.run
        ~config:{ base with Stream_sim.churn = [ ev 1. 9 Churn.Crash ] }
        inst ~initial:mapping);
  rejects "bad retry" (fun () ->
      Stream_sim.run
        ~config:{ base with Stream_sim.retry = { F.max_retries = -1; backoff = 0. } }
        inst ~initial:mapping)

let () =
  Alcotest.run "stream"
    [
      ( "arrival-trace",
        [
          prop_generators_valid;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "bad spec" `Quick test_generators_reject_bad_spec;
          prop_trace_csv_round_trip;
          Alcotest.test_case "csv garbage" `Quick test_trace_csv_garbage;
        ] );
      ( "churn",
        [
          Alcotest.test_case "validate" `Quick test_churn_validate_rejects;
          Alcotest.test_case "csv round-trip" `Quick test_churn_csv_round_trip;
          Alcotest.test_case "csv garbage" `Quick test_churn_csv_garbage;
          Alcotest.test_case "crash compilation" `Quick test_churn_crash_compilation;
          Alcotest.test_case "state fold" `Quick test_churn_state_fold;
        ] );
      ( "resolver",
        [
          Alcotest.test_case "keeps healthy" `Quick test_resolver_keeps_healthy;
          Alcotest.test_case "dark platform" `Quick test_resolver_none_when_dark;
          Alcotest.test_case "avoids dead" `Quick test_resolver_avoids_dead;
          Alcotest.test_case "fallback" `Quick test_resolver_fallback_on_tight_threshold;
          Alcotest.test_case "rejects bad input" `Quick test_resolver_rejects_bad_input;
          prop_warm_cold_agree;
        ] );
      ( "controller",
        [
          prop_hysteresis_soundness;
          Alcotest.test_case "budget defers" `Quick test_controller_budget_defers;
          Alcotest.test_case "retry backoff" `Quick test_controller_retry_backoff;
          Alcotest.test_case "bad config" `Quick test_controller_rejects_bad_config;
        ] );
      ( "stream-sim",
        [
          prop_empty_churn_is_static;
          Alcotest.test_case "deterministic" `Quick test_stream_sim_deterministic;
          Alcotest.test_case "accounting" `Quick test_stream_sim_accounting;
          Alcotest.test_case "bad config" `Quick test_stream_sim_rejects_bad_config;
        ] );
    ]

(* The unified registry (Pipeline_registry): shape, lookup, and — the
   refactor's contract — bit-identical agreement between every unified
   row and the direct per-stack call it wraps. *)

open Pipeline_model
module U = Pipeline_registry
module Core_registry = Pipeline_core.Registry

let het_instance seed =
  let rng = Pipeline_util.Rng.create seed in
  let n = 1 + Pipeline_util.Rng.int rng 8 in
  let p = 1 + Pipeline_util.Rng.int rng 4 in
  let works =
    Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
  in
  let deltas =
    Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
  in
  let app = Application.make ~deltas works in
  let platform = Platform_generator.fully_heterogeneous rng ~p in
  Instance.make ~seed app platform

(* ------------------------------------------------------------------ *)
(* Shape and lookup                                                    *)
(* ------------------------------------------------------------------ *)

let test_shape () =
  Alcotest.(check int) "six paper rows" 6 (List.length U.paper);
  Alcotest.(check int) "two extensions" 2 (List.length U.extended);
  Alcotest.(check int) "four het rows" 4 (List.length U.het);
  Alcotest.(check int) "two deal rows" 2 (List.length U.deal);
  Alcotest.(check int) "one ft row" 1 (List.length U.ft);
  Alcotest.(check int) "all = every stack" 15 (List.length U.all);
  (* ids are unique across the whole surface. *)
  let ids = List.map (fun (i : U.info) -> i.U.id) U.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* Core ids survived the unification unchanged, in Table 1 order. *)
  Alcotest.(check (list string)) "core ids preserved"
    (List.map (fun (i : Core_registry.info) -> i.Core_registry.id) Core_registry.all)
    (List.map (fun (i : U.info) -> i.U.id) U.paper)

let test_find () =
  (match U.find "H1" with
  | Some i -> Alcotest.(check string) "by table name" "h1-sp-mono-p" i.U.id
  | None -> Alcotest.fail "H1 not found");
  (match U.find "DEAL-SPLIT-REP-P" with
  | Some i -> Alcotest.(check bool) "deal stack" true (i.U.stack = U.Deal)
  | None -> Alcotest.fail "deal row not found");
  (match U.find "FtTri" with
  | Some i -> Alcotest.(check bool) "ft stack" true (i.U.stack = U.Ft)
  | None -> Alcotest.fail "ft row not found");
  (match U.find "het split mono, p fix" with
  | Some i -> Alcotest.(check string) "het by paper name" "het-sp-mono-p" i.U.id
  | None -> Alcotest.fail "het row not found");
  Alcotest.(check bool) "unknown" true (U.find "no-such-id" = None)

let test_outcome_roundtrip () =
  let inst = Helpers.small_instance () in
  let threshold = Instance.single_proc_period inst in
  match U.find "h1-sp-mono-p" with
  | None -> Alcotest.fail "H1 missing"
  | Some info -> (
    match info.U.solve inst ~threshold with
    | None -> Alcotest.fail "H1 should solve at the single-proc period"
    | Some o -> (
      match U.solution_of_outcome o with
      | None -> Alcotest.fail "core outcome should be a plain mapping"
      | Some sol ->
        Helpers.check_float "period copied" o.U.period sol.Pipeline_core.Solution.period;
        Helpers.check_float "latency copied" o.U.latency
          sol.Pipeline_core.Solution.latency))

(* ------------------------------------------------------------------ *)
(* Unified rows == direct per-stack calls, bit for bit                 *)
(* ------------------------------------------------------------------ *)

(* Outcomes compare with (=) — any diverging bit fails. Deal mappings
   compare by their (interval, replicas) assignment. *)
let dm_repr t =
  List.init (Deal_mapping.m t) (fun j ->
      (Deal_mapping.interval t j, Deal_mapping.replicas t j))

let same_as_direct (o : U.outcome option) direct of_direct =
  match (o, direct) with
  | None, None -> true
  | Some o, Some d ->
    let (m, p, l, f) : Deal_mapping.t * float * float * float option =
      of_direct d
    in
    dm_repr o.U.mapping = dm_repr m
    && o.U.period = p && o.U.latency = l && o.U.failure = f
  | _ -> false

let prop_core_rows_match =
  Helpers.qtest ~count:60 "core rows == Pipeline_core.Registry, bitwise"
    QCheck2.Gen.(pair (int_range 0 100_000) (float_range 0.4 1.6))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      List.for_all2
        (fun (u : U.info) (c : Core_registry.info) ->
          let threshold =
            match u.U.kind with
            | U.Period_fixed -> Instance.single_proc_period inst *. scale
            | U.Latency_fixed ->
              Instance.optimal_latency inst *. Float.max 1. scale
          in
          same_as_direct
            (u.U.solve inst ~threshold)
            (c.Core_registry.solve inst ~threshold)
            (fun (s : Pipeline_core.Solution.t) ->
              (Deal_mapping.of_mapping s.mapping, s.period, s.latency, None)))
        U.paper Core_registry.all)

let prop_het_rows_match =
  Helpers.qtest ~count:60 "het rows == Het_heuristics, bitwise"
    QCheck2.Gen.(pair (int_range 0 100_000) (float_range 0.4 1.6))
    (fun (seed, scale) ->
      let inst = het_instance seed in
      let single = Instance.single_proc_period inst in
      let selects =
        [
          ("het-sp-mono-p", Pipeline_het.Het_heuristics.Min_period);
          ("het-sp-bi-p", Pipeline_het.Het_heuristics.Min_ratio);
          ("het-sp-mono-l", Pipeline_het.Het_heuristics.Min_period);
          ("het-sp-bi-l", Pipeline_het.Het_heuristics.Min_ratio);
        ]
      in
      List.for_all
        (fun (id, select) ->
          let info = Option.get (U.find id) in
          let threshold, direct =
            match info.U.kind with
            | U.Period_fixed ->
              let t = single *. scale in
              ( t,
                Pipeline_het.Het_heuristics.minimise_latency_under_period
                  ~select inst ~period:t )
            | U.Latency_fixed ->
              (* Any single-processor latency upper-bounds the optimum. *)
              let t = single *. Float.max 1. scale in
              ( t,
                Pipeline_het.Het_heuristics.minimise_period_under_latency
                  ~select inst ~latency:t )
          in
          same_as_direct
            (info.U.solve inst ~threshold)
            direct
            (fun (s : Pipeline_core.Solution.t) ->
              (Deal_mapping.of_mapping s.mapping, s.period, s.latency, None)))
        selects)

let prop_deal_rows_match =
  Helpers.qtest ~count:60 "deal rows == Deal_heuristic, bitwise"
    QCheck2.Gen.(pair (int_range 0 100_000) (float_range 0.4 1.6))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let p_threshold = Instance.single_proc_period inst *. scale in
      let l_threshold = Instance.optimal_latency inst *. Float.max 1. scale in
      let of_deal (s : Pipeline_deal.Deal_heuristic.solution) =
        (s.Pipeline_deal.Deal_heuristic.mapping,
         s.Pipeline_deal.Deal_heuristic.period,
         s.Pipeline_deal.Deal_heuristic.latency,
         None)
      in
      same_as_direct
        ((Option.get (U.find "deal-split-rep-p")).U.solve inst
           ~threshold:p_threshold)
        (Pipeline_deal.Deal_heuristic.minimise_latency_under_period inst
           ~period:p_threshold)
        of_deal
      && same_as_direct
           ((Option.get (U.find "deal-split-rep-l")).U.solve inst
              ~threshold:l_threshold)
           (Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst
              ~latency:l_threshold)
           of_deal)

let prop_ft_row_matches =
  Helpers.qtest ~count:60 "ft row == Ft_heuristic, bitwise (default + ctx)"
    QCheck2.Gen.(triple (int_range 0 100_000) (float_range 0.4 1.6)
                   (float_range 0.01 0.3))
    (fun (seed, scale, bound) ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. scale in
      let info = Option.get (U.find "ft-rep-tri") in
      let of_ft (s : Pipeline_ft.Ft_heuristic.solution) =
        (s.Pipeline_ft.Ft_heuristic.mapping,
         s.Pipeline_ft.Ft_heuristic.period,
         s.Pipeline_ft.Ft_heuristic.latency,
         Some s.Pipeline_ft.Ft_heuristic.failure)
      in
      let p = Platform.p inst.Instance.platform in
      (* Default context: uniform default_fail_prob, default bound. *)
      same_as_direct
        (info.U.solve inst ~threshold)
        (Pipeline_ft.Ft_heuristic.minimise_latency inst
           (Reliability.uniform ~p U.default_fail_prob)
           ~period:threshold ~failure:U.default_failure_bound)
        of_ft
      &&
      (* Explicit context threads through unchanged. *)
      let rel = Reliability.uniform ~p (bound /. 2.) in
      same_as_direct
        (info.U.solve
           ~ctx:{ U.rel = Some rel; failure_bound = Some bound }
           inst ~threshold)
        (Pipeline_ft.Ft_heuristic.minimise_latency inst rel ~period:threshold
           ~failure:bound)
        of_ft)

let () =
  Alcotest.run "registry"
    [
      ( "shape",
        [
          Alcotest.test_case "stacks and ids" `Quick test_shape;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "outcome roundtrip" `Quick test_outcome_roundtrip;
        ] );
      ( "equivalence",
        [
          prop_core_rows_match;
          prop_het_rows_match;
          prop_deal_rows_match;
          prop_ft_row_matches;
        ] );
    ]

open Pipeline_model
open Pipeline_deal
module Rng = Pipeline_util.Rng

let gen_seed = QCheck2.Gen.int_range 0 100_000

(* ------------------------------------------------------------------ *)
(* Deal_mapping                                                        *)
(* ------------------------------------------------------------------ *)

let mk_deal () =
  Deal_mapping.make ~n:4
    [ (Interval.make ~first:1 ~last:2, [ 0 ]); (Interval.make ~first:3 ~last:4, [ 1; 2 ]) ]

let test_deal_mapping_basics () =
  let d = mk_deal () in
  Alcotest.(check int) "m" 2 (Deal_mapping.m d);
  Alcotest.(check int) "replication" 2 (Deal_mapping.replication d 1);
  Alcotest.(check (list int)) "replicas" [ 1; 2 ] (Deal_mapping.replicas d 1);
  Alcotest.(check bool) "uses 2" true (Deal_mapping.uses d 2);
  Alcotest.(check bool) "not uses 3" false (Deal_mapping.uses d 3);
  Alcotest.(check string) "to_string" "{[1..2]->{P0}, [3..4]->{P1,P2}}"
    (Deal_mapping.to_string d)

let test_deal_mapping_rejects () =
  Alcotest.check_raises "duplicate proc"
    (Invalid_argument "Deal_mapping: processor enrolled twice") (fun () ->
      ignore
        (Deal_mapping.make ~n:2
           [ (Interval.singleton 1, [ 0 ]); (Interval.singleton 2, [ 0 ]) ]));
  Alcotest.check_raises "empty replicas"
    (Invalid_argument "Deal_mapping: empty replica set") (fun () ->
      ignore (Deal_mapping.make ~n:1 [ (Interval.singleton 1, []) ]))

let test_deal_mapping_embedding () =
  let plain = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let deal = Deal_mapping.of_mapping plain in
  (match Deal_mapping.to_mapping deal with
  | Some back -> Alcotest.(check bool) "roundtrip" true (Mapping.equal plain back)
  | None -> Alcotest.fail "embedding lost");
  let replicated = Deal_mapping.replicate deal ~j:0 ~proc:2 in
  Alcotest.(check bool) "replicated is not plain" true
    (Deal_mapping.to_mapping replicated = None)

let test_deal_replicate_rejects_used () =
  let d = mk_deal () in
  Alcotest.check_raises "enrolled twice"
    (Invalid_argument "Deal_mapping.replicate: processor enrolled twice")
    (fun () -> ignore (Deal_mapping.replicate d ~j:0 ~proc:1))

(* ------------------------------------------------------------------ *)
(* Deal_metrics                                                        *)
(* ------------------------------------------------------------------ *)

let test_metrics_consistent_with_plain () =
  List.iter
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.Instance.app in
      let p = Platform.p inst.Instance.platform in
      let mapping =
        if n >= 2 && p >= 2 then Mapping.of_cuts ~n ~cuts:[ n / 2 ] ~procs:[ 0; 1 ]
        else Mapping.single ~n ~proc:0
      in
      Alcotest.(check bool) "consistent" true
        (Deal_metrics.consistent_with_plain inst mapping))
    (Helpers.seeds 20)

let test_metrics_replication_divides_period () =
  (* One heavy stage on speed-2 and speed-2 replicas: dealing halves the
     period; latency keeps the worst replica. *)
  let app = Application.make ~deltas:[| 0.; 0. |] [| 12. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:1. [| 2.; 2. |] in
  let inst = Instance.make app platform in
  let solo = Deal_mapping.make ~n:1 [ (Interval.singleton 1, [ 0 ]) ] in
  let dealt = Deal_mapping.make ~n:1 [ (Interval.singleton 1, [ 0; 1 ]) ] in
  Helpers.check_float "solo period" 6. (Deal_metrics.period inst solo);
  Helpers.check_float "dealt period" 3. (Deal_metrics.period inst dealt);
  Helpers.check_float "latency unchanged" 6. (Deal_metrics.latency inst dealt)

let test_metrics_round_robin_vs_weighted () =
  (* Heterogeneous replicas: round-robin is paced by the slow one, the
     weighted deal adds the rates. *)
  let app = Application.make ~deltas:[| 0.; 0. |] [| 12. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:1. [| 6.; 2. |] in
  let inst = Instance.make app platform in
  let dealt = Deal_mapping.make ~n:1 [ (Interval.singleton 1, [ 0; 1 ]) ] in
  (* cycles: 2 and 6; round robin: 6/2 = 3; weighted: 1/(1/2 + 1/6) = 1.5 *)
  Helpers.check_float "round robin" 3. (Deal_metrics.period inst dealt);
  Helpers.check_float "weighted" 1.5 (Deal_metrics.period_weighted inst dealt)

let prop_weighted_never_slower =
  Helpers.qtest "weighted deal period <= round-robin period" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.Instance.app in
      let p = Platform.p inst.Instance.platform in
      let mapping =
        if p >= 2 then
          Deal_mapping.make ~n [ (Interval.make ~first:1 ~last:n, [ 0; 1 ]) ]
        else Deal_mapping.make ~n [ (Interval.make ~first:1 ~last:n, [ 0 ]) ]
      in
      Deal_metrics.period_weighted inst mapping
      <= Deal_metrics.period inst mapping +. 1e-9)

let prop_weighted_replication_never_hurts =
  (* Round-robin CAN get slower when the extra replica is much slower
     (the slow replica paces its whole round); the weighted deal never
     does — its rate is the sum of the replicas' rates. *)
  Helpers.qtest "adding a replica never increases the weighted period" gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let p = Platform.p inst.Instance.platform in
      let n = Application.n inst.Instance.app in
      p < 2
      ||
      let solo = Deal_mapping.make ~n [ (Interval.make ~first:1 ~last:n, [ 0 ]) ] in
      let dealt = Deal_mapping.replicate solo ~j:0 ~proc:1 in
      Deal_metrics.period_weighted inst dealt
      <= Deal_metrics.period_weighted inst solo +. 1e-9)

let test_round_robin_slower_replica_can_hurt () =
  (* cycles 2 and 20: solo period 2, dealt round-robin period 10. *)
  let app = Application.make ~deltas:[| 0.; 0. |] [| 20. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:1. [| 10.; 1. |] in
  let inst = Instance.make app platform in
  let solo = Deal_mapping.make ~n:1 [ (Interval.singleton 1, [ 0 ]) ] in
  let dealt = Deal_mapping.replicate solo ~j:0 ~proc:1 in
  Helpers.check_float "solo" 2. (Deal_metrics.period inst solo);
  Helpers.check_float "dealt is worse" 10. (Deal_metrics.period inst dealt)

(* ------------------------------------------------------------------ *)
(* Deal_heuristic                                                      *)
(* ------------------------------------------------------------------ *)

let heavy_stage_instance () =
  (* Stage 2 dominates: interval splitting cannot push the period below
     its cycle-time, but dealing can. *)
  let app = Application.make ~deltas:[| 1.; 1.; 1.; 1. |] [| 2.; 100.; 2. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:10. [| 5.; 5.; 5.; 5. |] in
  Instance.make app platform

let test_deal_beats_pure_splitting () =
  let inst = heavy_stage_instance () in
  (* Pure splitting floor: the heavy stage alone costs 0.1 + 20 + 0.1. *)
  let splitting_floor = 20.2 in
  let target = 11. in
  Alcotest.(check bool) "H1 cannot reach below the heavy stage" true
    (Pipeline_core.Sp_mono_p.solve inst ~period:target = None);
  match Deal_heuristic.minimise_latency_under_period inst ~period:target with
  | None -> Alcotest.fail "deal heuristic should succeed"
  | Some sol ->
    Alcotest.(check bool) "period below the splitting floor" true
      (sol.Deal_heuristic.period < splitting_floor);
    Alcotest.(check bool) "meets the target" true
      (sol.Deal_heuristic.period <= target +. 1e-9)

let prop_deal_heuristic_sound =
  Helpers.qtest ~count:60 "deal solutions respect the period threshold"
    QCheck2.Gen.(pair gen_seed (float_range 0.3 1.2))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. scale in
      match Deal_heuristic.minimise_latency_under_period inst ~period:threshold with
      | None -> true
      | Some sol ->
        Deal_mapping.valid_on sol.Deal_heuristic.mapping inst.Instance.platform
        && sol.Deal_heuristic.period
           <= threshold +. (1e-9 *. Float.max 1. threshold))

let prop_deal_no_worse_than_h1 =
  Helpers.qtest ~count:60 "deal succeeds whenever H1 does"
    QCheck2.Gen.(pair gen_seed (float_range 0.3 1.2))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let threshold = Instance.single_proc_period inst *. scale in
      match Pipeline_core.Sp_mono_p.solve inst ~period:threshold with
      | None -> true
      | Some _ ->
        Deal_heuristic.minimise_latency_under_period inst ~period:threshold <> None)

let prop_deal_latency_fixed_sound =
  Helpers.qtest ~count:40 "deal latency-fixed respects the budget"
    QCheck2.Gen.(pair gen_seed (float_range 1.0 2.0))
    (fun (seed, scale) ->
      let inst = Helpers.random_instance seed in
      let budget = Instance.optimal_latency inst *. scale in
      match Deal_heuristic.minimise_period_under_latency inst ~latency:budget with
      | None -> false
      | Some sol -> sol.Deal_heuristic.latency <= budget +. (1e-9 *. budget))

(* ------------------------------------------------------------------ *)
(* Deal_sim                                                            *)
(* ------------------------------------------------------------------ *)

let test_sim_matches_analytic_plain () =
  let inst = Helpers.small_instance () in
  let plain = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let deal = Deal_mapping.of_mapping plain in
  let result = Deal_sim.run inst deal ~datasets:200 in
  Helpers.check_float "plain deal sim = metrics period"
    (Metrics.period inst.Instance.app inst.Instance.platform plain)
    result.Deal_sim.steady_period;
  Helpers.check_float "first latency = metrics latency"
    (Metrics.latency inst.Instance.app inst.Instance.platform plain)
    result.Deal_sim.first_latency

let prop_sim_matches_analytic_deal =
  Helpers.qtest ~count:40 "deal sim steady period = analytic round-robin"
    gen_seed
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.Instance.app in
      let p = Platform.p inst.Instance.platform in
      let rng = Rng.create (seed + 31) in
      (* Random deal mapping: random plain mapping, then replicate random
         intervals with leftover processors. *)
      let m = 1 + Rng.int rng (min n p) in
      let cuts =
        if m = 1 then []
        else begin
          let positions = Array.init (n - 1) (fun i -> i + 1) in
          Rng.shuffle rng positions;
          List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
        end
      in
      let perm = Rng.permutation rng p in
      let procs = Array.to_list (Array.sub perm 0 m) in
      let deal =
        ref (Deal_mapping.of_mapping (Mapping.of_cuts ~n ~cuts ~procs))
      in
      for extra = m to p - 1 do
        if Rng.bool rng then
          deal := Deal_mapping.replicate !deal ~j:(Rng.int rng m) ~proc:perm.(extra)
      done;
      let result = Deal_sim.run inst !deal ~datasets:800 in
      let analytic = Deal_metrics.period inst !deal in
      (* The slope estimator reads the running-max completion over the
         second half; its granularity is one full deal round, so allow an
         O(r/K) sampling error. *)
      Helpers.feq ~eps:0.02 result.Deal_sim.steady_period analytic)


(* ------------------------------------------------------------------ *)
(* Deal_exhaustive                                                     *)
(* ------------------------------------------------------------------ *)

let gen_tiny =
  QCheck2.Gen.map
    (fun seed -> Helpers.random_instance ~n_max:3 ~p_max:3 seed)
    gen_seed

let prop_heuristic_dominated_by_exhaustive =
  Helpers.qtest ~count:25 "deal heuristic >= exhaustive deal optimum" gen_tiny
    (fun inst ->
      let opt = Deal_exhaustive.min_period inst in
      match
        Deal_heuristic.minimise_period_under_latency inst ~latency:infinity
      with
      | None -> false
      | Some h -> h.Deal_heuristic.period >= opt.Deal_heuristic.period -. 1e-9)

let prop_exhaustive_no_worse_than_plain =
  Helpers.qtest ~count:25 "deal optimum <= plain interval optimum" gen_tiny
    (fun inst ->
      let deal_opt = Deal_exhaustive.min_period inst in
      let plain = Pipeline_optimal.Exhaustive.min_period inst in
      deal_opt.Deal_heuristic.period
      <= plain.Pipeline_core.Solution.period +. 1e-9)

let test_exhaustive_replicates_hot_stage () =
  (* Single heavy stage, two equal machines: replication is optimal. *)
  let app = Application.make ~deltas:[| 0.; 0. |] [| 12. |] in
  let platform = Platform.comm_homogeneous ~bandwidth:1. [| 2.; 2. |] in
  let inst = Instance.make app platform in
  let opt = Deal_exhaustive.min_period inst in
  Helpers.check_float "halved" 3. opt.Deal_heuristic.period;
  Alcotest.(check int) "two replicas" 2
    (Deal_mapping.replication opt.Deal_heuristic.mapping 0)

let test_exhaustive_guard () =
  let app = Application.uniform ~n:12 ~work:1. ~delta:1. in
  let platform = Platform.comm_homogeneous ~bandwidth:1. (Array.make 12 1.) in
  Alcotest.(check bool) "guarded" true
    (try
       ignore (Deal_exhaustive.min_period (Instance.make app platform));
       false
     with Invalid_argument _ -> true)

(* The task-tree fan-out must return the very same solution (mapping
   included, ties and all) as the sequential scan — at every pool width
   and every frontier size (DESIGN.md §14). *)
let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

let with_tree_cap cap f =
  let saved = Pipeline_util.Pool.tree_cap () in
  Pipeline_util.Pool.set_tree_cap cap;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_tree_cap saved) f

let prop_exhaustive_parallel_bit_identical =
  Helpers.qtest ~count:25
    "deal exhaustive: any (tree cap, jobs) = sequential (bit-for-bit)"
    QCheck2.Gen.(
      triple gen_tiny (oneofl [ 1; 2; 9; 512 ]) (oneofl [ 1; 4; 8 ]))
    (fun (inst, cap, jobs) ->
      Stdlib.compare
        (with_tree_cap 1 (fun () ->
             with_jobs 1 (fun () -> Deal_exhaustive.min_period inst)))
        (with_tree_cap cap (fun () ->
             with_jobs jobs (fun () -> Deal_exhaustive.min_period inst)))
      = 0)

let () =
  Alcotest.run "deal"
    [
      ( "mapping",
        [
          Alcotest.test_case "basics" `Quick test_deal_mapping_basics;
          Alcotest.test_case "rejects" `Quick test_deal_mapping_rejects;
          Alcotest.test_case "embedding" `Quick test_deal_mapping_embedding;
          Alcotest.test_case "replicate rejects used" `Quick
            test_deal_replicate_rejects_used;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "consistent with plain" `Quick
            test_metrics_consistent_with_plain;
          Alcotest.test_case "replication divides period" `Quick
            test_metrics_replication_divides_period;
          Alcotest.test_case "round-robin vs weighted" `Quick
            test_metrics_round_robin_vs_weighted;
          prop_weighted_never_slower;
          prop_weighted_replication_never_hurts;
          Alcotest.test_case "slower replica can hurt round-robin" `Quick
            test_round_robin_slower_replica_can_hurt;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "beats pure splitting" `Quick test_deal_beats_pure_splitting;
          prop_deal_heuristic_sound;
          prop_deal_no_worse_than_h1;
          prop_deal_latency_fixed_sound;
        ] );
      ( "exhaustive",
        [
          prop_heuristic_dominated_by_exhaustive;
          prop_exhaustive_no_worse_than_plain;
          Alcotest.test_case "replicates hot stage" `Quick
            test_exhaustive_replicates_hot_stage;
          Alcotest.test_case "guard" `Quick test_exhaustive_guard;
          prop_exhaustive_parallel_bit_identical;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "plain agreement" `Quick test_sim_matches_analytic_plain;
          prop_sim_matches_analytic_deal;
        ] );
    ]

open Pipeline_model
open Pipeline_core
open Pipeline_optimal

let gen_seed = QCheck2.Gen.int_range 0 100_000
let gen_small = QCheck2.Gen.map (Helpers.random_instance ~n_max:7 ~p_max:4) gen_seed

(* ------------------------------------------------------------------ *)
(* Subset_dp                                                           *)
(* ------------------------------------------------------------------ *)

let test_subset_dp_guard () =
  Alcotest.(check bool) "p too large" true
    (try
       ignore
         (Subset_dp.minimise_bottleneck ~n:2 ~p:17 ~cost:(fun ~d:_ ~e:_ ~u:_ -> 1.));
       false
     with Invalid_argument _ -> true)

let test_subset_dp_trivial () =
  (* One element, one processor. *)
  let value, assignment =
    Subset_dp.minimise_bottleneck ~n:1 ~p:1 ~cost:(fun ~d ~e ~u ->
        float_of_int (d + e + u))
  in
  Helpers.check_float "cost(1,1,0)" 2. value;
  Alcotest.(check int) "one interval" 1 (List.length assignment)

let test_subset_dp_prefers_cheap_processor () =
  (* Two stages; processor 1 is free, processor 0 is expensive: the
     optimum puts everything on processor 1. *)
  let cost ~d:_ ~e:_ ~u = if u = 1 then 1. else 100. in
  let value, assignment = Subset_dp.minimise_bottleneck ~n:2 ~p:2 ~cost in
  Helpers.check_float "uses the cheap one" 1. value;
  Alcotest.(check (list int)) "assignment" [ 1 ] (List.map snd assignment)

let test_subset_dp_cap_infeasible () =
  Alcotest.(check bool) "no assignment fits" true
    (Subset_dp.minimise_sum_under_cap ~n:2 ~p:2
       ~cap_cost:(fun ~d:_ ~e:_ ~u:_ -> 10.)
       ~sum_cost:(fun ~d:_ ~e:_ ~u:_ -> 1.)
       ~cap:5.
    = None)

let test_subset_dp_cap_feasible_sum () =
  (* Splitting in two halves costs 2 x 1; the single interval is banned
     by the cap. *)
  let cap_cost ~d ~e ~u:_ = if d = 1 && e = 2 then 10. else 1. in
  let sum_cost ~d:_ ~e:_ ~u:_ = 1. in
  match Subset_dp.minimise_sum_under_cap ~n:2 ~p:2 ~cap_cost ~sum_cost ~cap:5. with
  | None -> Alcotest.fail "expected a solution"
  | Some (value, assignment) ->
    Helpers.check_float "sum of two" 2. value;
    Alcotest.(check int) "two intervals" 2 (List.length assignment)

(* ------------------------------------------------------------------ *)
(* Latency (Lemma 1)                                                   *)
(* ------------------------------------------------------------------ *)

let test_latency_fastest_proc () =
  let inst = Helpers.small_instance () in
  let sol = Latency.solve inst in
  Alcotest.(check int) "fastest" 1 (Mapping.proc sol.Solution.mapping 0);
  Helpers.check_float "value" 7. sol.Solution.latency

let prop_latency_no_mapping_beats_it =
  Helpers.qtest ~count:40 "Lemma 1: single fastest processor is latency-optimal"
    gen_small
    (fun inst ->
      let opt = (Latency.solve inst).Solution.latency in
      let best = Exhaustive.min_latency inst in
      Helpers.feq ~eps:1e-9 opt best.Solution.latency)

(* ------------------------------------------------------------------ *)
(* Bicriteria vs Exhaustive                                            *)
(* ------------------------------------------------------------------ *)

let prop_min_period_matches_exhaustive =
  Helpers.qtest ~count:40 "DP min period = exhaustive" gen_small (fun inst ->
      let dp = Bicriteria.min_period inst in
      let ex = Exhaustive.min_period inst in
      Helpers.feq ~eps:1e-9 dp.Solution.period ex.Solution.period)

let prop_min_latency_under_period_matches_exhaustive =
  Helpers.qtest ~count:40 "DP latency|period = exhaustive"
    QCheck2.Gen.(pair gen_small (float_range 1.0 2.5))
    (fun (inst, scale) ->
      let opt = (Bicriteria.min_period inst).Solution.period in
      let period = opt *. scale in
      match
        ( Bicriteria.min_latency_under_period inst ~period,
          Exhaustive.min_latency_under_period inst ~period )
      with
      | Some dp, Some ex -> Helpers.feq ~eps:1e-9 dp.Solution.latency ex.Solution.latency
      | None, None -> true
      | _ -> false)

let prop_min_period_under_latency_matches_exhaustive =
  Helpers.qtest ~count:40 "DP period|latency = exhaustive"
    QCheck2.Gen.(pair gen_small (float_range 1.0 2.5))
    (fun (inst, scale) ->
      let latency = Instance.optimal_latency inst *. scale in
      match
        ( Bicriteria.min_period_under_latency inst ~latency,
          Exhaustive.min_period_under_latency inst ~latency )
      with
      | Some dp, Some ex -> Helpers.feq ~eps:1e-9 dp.Solution.period ex.Solution.period
      | None, None -> true
      | _ -> false)

let prop_min_latency_under_period_infeasible_below_optimum =
  Helpers.qtest ~count:40 "below the optimal period: infeasible" gen_small
    (fun inst ->
      let opt = (Bicriteria.min_period inst).Solution.period in
      Bicriteria.min_latency_under_period inst ~period:(opt *. 0.99 -. 1e-6) = None
      || opt <= 0.)

let test_bicriteria_rejects_het () =
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  let inst = Instance.make (Application.uniform ~n:3 ~work:1. ~delta:1.) pl in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Bicriteria: requires a comm-homogeneous platform") (fun () ->
      ignore (Bicriteria.min_period inst))

(* ------------------------------------------------------------------ *)
(* Pareto fronts                                                       *)
(* ------------------------------------------------------------------ *)

let is_sorted_non_dominated solutions =
  let rec walk = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Solution.period < b.Solution.period
      && a.Solution.latency > b.Solution.latency
      && walk rest
  in
  walk solutions

let prop_pareto_sorted_non_dominated =
  Helpers.qtest ~count:30 "pareto front is sorted and non-dominated" gen_small
    (fun inst -> is_sorted_non_dominated (Bicriteria.pareto inst))

let prop_pareto_matches_exhaustive =
  Helpers.qtest ~count:25 "DP pareto = exhaustive pareto" gen_small (fun inst ->
      let dp = Bicriteria.pareto inst in
      let ex = Exhaustive.pareto inst in
      List.length dp = List.length ex
      && List.for_all2
           (fun (a : Solution.t) (b : Solution.t) ->
             Helpers.feq ~eps:1e-9 a.Solution.period b.Solution.period
             && Helpers.feq ~eps:1e-9 a.Solution.latency b.Solution.latency)
           dp ex)

let prop_pareto_endpoints =
  Helpers.qtest ~count:30 "front spans min period .. optimal latency" gen_small
    (fun inst ->
      match Bicriteria.pareto inst with
      | [] -> false
      | front ->
        let first = List.hd front and last = List.nth front (List.length front - 1) in
        Helpers.feq ~eps:1e-9 first.Solution.period
          (Bicriteria.min_period inst).Solution.period
        && Helpers.feq ~eps:1e-9 last.Solution.latency
             (Latency.solve inst).Solution.latency)

(* ------------------------------------------------------------------ *)
(* Exhaustive enumeration                                              *)
(* ------------------------------------------------------------------ *)

let test_count_mappings_known () =
  (* n=2, p=2: m=1 -> 2 mappings; m=2 -> 1 partition x 2 arrangements. *)
  Helpers.check_float "n2 p2" 4. (Exhaustive.count_mappings ~n:2 ~p:2);
  (* n=3, p=1: single mapping. *)
  Helpers.check_float "n3 p1" 1. (Exhaustive.count_mappings ~n:3 ~p:1)

let test_iter_matches_count () =
  List.iter
    (fun (n, p) ->
      let app = Application.uniform ~n ~work:1. ~delta:1. in
      let pl = Platform.comm_homogeneous ~bandwidth:1. (Array.make p 1.) in
      let inst = Instance.make app pl in
      let count = ref 0 in
      Exhaustive.iter_mappings inst (fun _ -> incr count);
      Helpers.check_float
        (Printf.sprintf "n=%d p=%d" n p)
        (Exhaustive.count_mappings ~n ~p)
        (float_of_int !count))
    [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3) ]

let test_iter_mappings_all_valid () =
  let inst = Helpers.small_instance () in
  Exhaustive.iter_mappings inst (fun mapping ->
      Alcotest.(check bool) "valid" true
        (Mapping.valid_on mapping inst.Instance.platform);
      Alcotest.(check int) "covers all stages" 4 (Mapping.n mapping))

let test_exhaustive_guard () =
  let app = Application.uniform ~n:30 ~work:1. ~delta:1. in
  let pl = Platform.comm_homogeneous ~bandwidth:1. (Array.make 30 1.) in
  let inst = Instance.make app pl in
  Alcotest.(check bool) "guarded" true
    (try
       Exhaustive.iter_mappings inst (fun _ -> ());
       false
     with Invalid_argument _ -> true)

let test_exhaustive_works_on_het () =
  (* The enumerator scores with the het-aware Metrics. *)
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  let inst = Instance.make (Application.uniform ~n:3 ~work:6. ~delta:2.) pl in
  let sol = Exhaustive.min_period inst in
  Alcotest.(check bool) "positive period" true (sol.Solution.period > 0.);
  Alcotest.(check bool) "valid mapping" true
    (Mapping.valid_on sol.Solution.mapping pl)

(* The task-tree fan-out must return the very same solution objects
   (mapping included, ties and all) as the sequential scan — at every
   pool width AND every frontier size: the frontier preserves the
   enumeration order and merges are first-seen-wins, so not even a
   tie witness may move (DESIGN.md §14). *)
let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

let with_tree_cap cap f =
  let saved = Pipeline_util.Pool.tree_cap () in
  Pipeline_util.Pool.set_tree_cap cap;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_tree_cap saved) f

let gen_cap_jobs =
  (* Frontier sizes from "no expansion" through mid to the default, at
     the widths CI exercises. *)
  QCheck2.Gen.(pair (oneofl [ 1; 2; 9; 512 ]) (oneofl [ 1; 4; 8 ]))

let prop_exhaustive_parallel_bit_identical =
  Helpers.qtest ~count:60
    "exhaustive solvers: any (tree cap, jobs) = sequential (bit-for-bit)"
    QCheck2.Gen.(pair (int_range 0 10_000) gen_cap_jobs)
    (fun (seed, (cap, jobs)) ->
      let inst = Helpers.random_instance ~n_max:6 ~p_max:4 seed in
      let period =
        Instance.single_proc_period inst *. 0.7
      and latency = Instance.optimal_latency inst *. 1.5 in
      let all () =
        ( Exhaustive.min_period inst,
          Exhaustive.min_latency inst,
          Exhaustive.min_latency_under_period inst ~period,
          Exhaustive.min_period_under_latency inst ~latency,
          Exhaustive.pareto inst )
      in
      Stdlib.compare
        (with_tree_cap 1 (fun () -> with_jobs 1 all))
        (with_tree_cap cap (fun () -> with_jobs jobs all))
      = 0)

let prop_exhaustive_het_parallel_bit_identical =
  Helpers.qtest ~count:40
    "exhaustive on fully-het platforms: any (tree cap, jobs) = sequential"
    QCheck2.Gen.(pair (int_range 0 10_000) gen_cap_jobs)
    (fun (seed, (cap, jobs)) ->
      let inst = Helpers.random_het_instance ~n_max:6 ~p_max:4 seed in
      let period = Instance.single_proc_period inst *. 0.7 in
      let all () =
        ( Exhaustive.min_period inst,
          Exhaustive.min_latency_under_period inst ~period )
      in
      Stdlib.compare
        (with_tree_cap 1 (fun () -> with_jobs 1 all))
        (with_tree_cap cap (fun () -> with_jobs jobs all))
      = 0)

let prop_branch_bound_parallel_bit_identical =
  Helpers.qtest ~count:40
    "branch-bound: solution, nodes and proven flag ignore the pool width"
    QCheck2.Gen.(pair (int_range 0 10_000) (oneofl [ 1; 2; 9; 512 ]))
    (fun (seed, cap) ->
      (* At a FIXED frontier cap the whole result record — witness
         mapping, node count, prune-budget outcome — must be a pure
         function of the wave schedule, never of domain timing. The
         tiny budget exercises the budget-exhausted path, the default
         one the proven path; both run multiple waves, so the shared
         incumbent is live in each. *)
      let inst = Helpers.random_instance ~n_max:7 ~p_max:6 seed in
      let solve budget () = Branch_bound.min_period ~node_budget:budget inst in
      with_tree_cap cap (fun () ->
          List.for_all
            (fun budget ->
              let r1 = with_jobs 1 (solve budget) in
              let r4 = with_jobs 4 (solve budget) in
              let r8 = with_jobs 8 (solve budget) in
              Stdlib.compare r1 r4 = 0 && Stdlib.compare r1 r8 = 0)
            [ 400; 1_000_000 ]))

let prop_branch_bound_optimum_ignores_frontier =
  Helpers.qtest ~count:40
    "branch-bound: the optimum period is frontier-cap-invariant"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      (* Node counts legitimately differ between caps (different prune
         schedules); the proven optimum may not. *)
      let inst = Helpers.random_instance ~n_max:7 ~p_max:5 seed in
      let at cap =
        with_tree_cap cap (fun () -> (Branch_bound.min_period inst).solution)
      in
      let r1 = at 1 and r512 = at 512 in
      r1.Solution.period = r512.Solution.period)


(* ------------------------------------------------------------------ *)
(* Homogeneous (Subhlok-Vondran polynomial solvers)                    *)
(* ------------------------------------------------------------------ *)

let gen_hom_instance =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Pipeline_util.Rng.create seed in
      let n = 1 + Pipeline_util.Rng.int rng 7 in
      let p = 1 + Pipeline_util.Rng.int rng 4 in
      let works =
        Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
      in
      let deltas =
        Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
      in
      let speed = float_of_int (Pipeline_util.Rng.int_in rng 1 20) in
      let app = Application.make ~deltas works in
      let platform = Platform.fully_homogeneous ~speed ~bandwidth:10. p in
      Instance.make ~seed app platform)
    gen_seed

let test_homogeneous_rejects_different_speeds () =
  let inst = Helpers.small_instance () in
  Alcotest.check_raises "different speeds"
    (Invalid_argument "Homogeneous: requires identical processor speeds")
    (fun () -> ignore (Homogeneous.min_period inst))

let prop_homogeneous_period_matches_subset_dp =
  Helpers.qtest ~count:40 "poly DP = subset DP on equal speeds" gen_hom_instance
    (fun inst ->
      let poly = Homogeneous.min_period inst in
      let subset = Bicriteria.min_period inst in
      Helpers.feq ~eps:1e-9 poly.Solution.period subset.Solution.period)

let prop_homogeneous_latency_under_period_matches =
  Helpers.qtest ~count:40 "poly latency|period = subset DP"
    QCheck2.Gen.(pair gen_hom_instance (float_range 1.0 2.5))
    (fun (inst, scale) ->
      let period = (Homogeneous.min_period inst).Solution.period *. scale in
      match
        ( Homogeneous.min_latency_under_period inst ~period,
          Bicriteria.min_latency_under_period inst ~period )
      with
      | Some a, Some b -> Helpers.feq ~eps:1e-9 a.Solution.latency b.Solution.latency
      | None, None -> true
      | _ -> false)

let prop_homogeneous_period_under_latency_matches =
  Helpers.qtest ~count:30 "poly period|latency = subset DP"
    QCheck2.Gen.(pair gen_hom_instance (float_range 1.0 2.5))
    (fun (inst, scale) ->
      let latency = Instance.optimal_latency inst *. scale in
      match
        ( Homogeneous.min_period_under_latency inst ~latency,
          Bicriteria.min_period_under_latency inst ~latency )
      with
      | Some a, Some b -> Helpers.feq ~eps:1e-9 a.Solution.period b.Solution.period
      | None, None -> true
      | _ -> false)

let prop_homogeneous_pareto_matches =
  Helpers.qtest ~count:20 "poly pareto = subset DP pareto" gen_hom_instance
    (fun inst ->
      let a = Homogeneous.pareto inst and b = Bicriteria.pareto inst in
      List.length a = List.length b
      && List.for_all2
           (fun (x : Solution.t) (y : Solution.t) ->
             Helpers.feq ~eps:1e-9 x.Solution.period y.Solution.period
             && Helpers.feq ~eps:1e-9 x.Solution.latency y.Solution.latency)
           a b)

(* ------------------------------------------------------------------ *)
(* One_to_one                                                          *)
(* ------------------------------------------------------------------ *)

(* Instances with n <= p so one-to-one mappings exist. *)
let gen_one_to_one =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Pipeline_util.Rng.create seed in
      let n = 1 + Pipeline_util.Rng.int rng 5 in
      let p = n + Pipeline_util.Rng.int rng 3 in
      let works =
        Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
      in
      let deltas =
        Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
      in
      let speeds =
        Array.init p (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
      in
      let app = Application.make ~deltas works in
      let platform = Platform.comm_homogeneous ~bandwidth:10. speeds in
      Instance.make ~seed app platform)
    gen_seed

(* Exhaustive over one-to-one mappings only. *)
let brute_one_to_one inst measure =
  let n = Application.n inst.Instance.app in
  let p = Platform.p inst.Instance.platform in
  let used = Array.make p false in
  let procs = Array.make n 0 in
  let best = ref infinity in
  let rec go k =
    if k = n then begin
      let sol =
        Solution.of_mapping inst (Mapping.one_to_one ~procs)
      in
      best := Float.min !best (measure sol)
    end
    else
      for u = 0 to p - 1 do
        if not used.(u) then begin
          used.(u) <- true;
          procs.(k) <- u;
          go (k + 1);
          used.(u) <- false
        end
      done
  in
  go 0;
  !best

let test_one_to_one_requires_enough_procs () =
  let app = Application.uniform ~n:5 ~work:1. ~delta:1. in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 1.; 1. |] in
  let inst = Instance.make app pl in
  Alcotest.check_raises "n > p" (Invalid_argument "One_to_one: requires n <= p")
    (fun () -> ignore (One_to_one.min_period inst))

let prop_one_to_one_period_matches_brute =
  Helpers.qtest ~count:40 "bottleneck assignment = brute force" gen_one_to_one
    (fun inst ->
      let sol = One_to_one.min_period inst in
      let brute = brute_one_to_one inst (fun s -> s.Solution.period) in
      Helpers.feq ~eps:1e-9 sol.Solution.period brute)

let prop_one_to_one_latency_matches_brute =
  Helpers.qtest ~count:40 "Hungarian latency = brute force" gen_one_to_one
    (fun inst ->
      let sol = One_to_one.min_latency inst in
      let brute = brute_one_to_one inst (fun s -> s.Solution.latency) in
      Helpers.feq ~eps:1e-9 sol.Solution.latency brute)

let prop_one_to_one_never_beats_interval =
  Helpers.qtest ~count:30 "interval mappings dominate one-to-one" gen_one_to_one
    (fun inst ->
      (* One-to-one mappings are a subset of interval mappings. *)
      let o = One_to_one.min_period inst in
      let i = Bicriteria.min_period inst in
      o.Solution.period >= i.Solution.period -. 1e-9)

let prop_one_to_one_constrained_consistent =
  Helpers.qtest ~count:30 "latency|period: feasibility and optimality"
    QCheck2.Gen.(pair gen_one_to_one (float_range 1.0 2.))
    (fun (inst, scale) ->
      let period = (One_to_one.min_period inst).Solution.period *. scale in
      match One_to_one.min_latency_under_period inst ~period with
      | None -> false (* threshold >= the optimum: must be feasible *)
      | Some sol ->
        Solution.respects_period sol period
        && sol.Solution.latency
           >= (One_to_one.min_latency inst).Solution.latency -. 1e-9)

let prop_one_to_one_pareto_sorted =
  Helpers.qtest ~count:30 "one-to-one pareto is sorted and non-dominated"
    gen_one_to_one
    (fun inst -> is_sorted_non_dominated (One_to_one.pareto inst))


(* ------------------------------------------------------------------ *)
(* Scalarised objective                                                *)
(* ------------------------------------------------------------------ *)

let prop_scalarised_extremes =
  Helpers.qtest ~count:30 "alpha=1 -> min period; alpha=0 -> min latency"
    gen_small
    (fun inst ->
      let by_period = Scalarised.optimal inst ~alpha:1. in
      let by_latency = Scalarised.optimal inst ~alpha:0. in
      Helpers.feq ~eps:1e-9 by_period.Solution.period
        (Bicriteria.min_period inst).Solution.period
      && Helpers.feq ~eps:1e-9 by_latency.Solution.latency
           (Latency.solve inst).Solution.latency)

let prop_scalarised_on_front =
  Helpers.qtest ~count:30 "the scalarised optimum sits on the Pareto front"
    QCheck2.Gen.(pair gen_small (float_range 0. 1.))
    (fun (inst, alpha) ->
      let sol = Scalarised.optimal inst ~alpha in
      List.exists
        (fun (f : Solution.t) ->
          Helpers.feq f.Solution.period sol.Solution.period
          && Helpers.feq f.Solution.latency sol.Solution.latency)
        (Bicriteria.pareto inst))

let prop_scalarised_heuristic_dominated =
  Helpers.qtest ~count:30 "heuristic scalarised value >= exact"
    QCheck2.Gen.(pair gen_small (float_range 0. 1.))
    (fun (inst, alpha) ->
      let exact = Scalarised.value ~alpha (Scalarised.optimal inst ~alpha) in
      let heur = Scalarised.value ~alpha (Scalarised.heuristic inst ~alpha) in
      heur >= exact -. 1e-9)

let test_scalarised_rejects_bad_alpha () =
  let inst = Helpers.small_instance () in
  Alcotest.check_raises "alpha > 1"
    (Invalid_argument "Scalarised: alpha must be in [0,1]") (fun () ->
      ignore (Scalarised.optimal inst ~alpha:1.5))

let test_scalarised_heuristic_requires_period_kind () =
  let inst = Helpers.small_instance () in
  let latency_info = List.nth Pipeline_core.Registry.all 4 in
  Alcotest.check_raises "latency-fixed rejected"
    (Invalid_argument "Scalarised.heuristic: requires a period-fixed heuristic")
    (fun () ->
      ignore (Scalarised.heuristic ~heuristic:latency_info inst ~alpha:0.5))


(* ------------------------------------------------------------------ *)
(* Local_search                                                        *)
(* ------------------------------------------------------------------ *)

let prop_neighbours_valid =
  Helpers.qtest ~count:40 "every neighbour is a valid mapping" gen_small
    (fun inst ->
      let start = Bicriteria.min_period inst in
      List.for_all
        (fun mapping ->
          Mapping.valid_on mapping inst.Instance.platform
          && Mapping.n mapping = Application.n inst.Instance.app)
        (Local_search.neighbours inst start.Solution.mapping))

let prop_local_search_never_worse =
  Helpers.qtest ~count:40 "descent never worsens the objective" gen_small
    (fun inst ->
      let rng = Pipeline_util.Rng.create (Hashtbl.hash inst) in
      let start = Pipeline_core.Baseline.random rng inst in
      let polished = Local_search.improve inst start in
      polished.Solution.period <= start.Solution.period +. 1e-9
      || (polished.Solution.period = start.Solution.period
         && polished.Solution.latency <= start.Solution.latency +. 1e-9))

let prop_local_search_respects_feasibility =
  Helpers.qtest ~count:30 "feasibility filter is honoured"
    QCheck2.Gen.(pair gen_small (float_range 1.1 2.))
    (fun (inst, scale) ->
      let opt = (Bicriteria.min_period inst).Solution.period in
      let threshold = opt *. scale in
      match Bicriteria.min_latency_under_period inst ~period:threshold with
      | None -> true
      | Some start ->
        let polished =
          Local_search.improve ~objective:Local_search.Latency_then_period
            ~feasible:(fun s -> Solution.respects_period s threshold)
            inst start
        in
        Solution.respects_period polished threshold
        && polished.Solution.latency <= start.Solution.latency +. 1e-9)

let prop_local_search_from_optimal_stays =
  Helpers.qtest ~count:30 "the exact optimum is a local optimum" gen_small
    (fun inst ->
      let opt = Bicriteria.min_period inst in
      let polished = Local_search.improve inst opt in
      Helpers.feq ~eps:1e-9 polished.Solution.period opt.Solution.period)

let test_local_search_recovers_processor_swap () =
  (* A deliberately inverted assignment: fast stage work on the slow
     machine. One swap move fixes it. *)
  let app = Application.make ~deltas:[| 0.; 0.; 0. |] [| 10.; 1. |] in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 1.; 10. |] in
  let inst = Instance.make app pl in
  let bad = Solution.of_mapping inst (Mapping.one_to_one ~procs:[| 0; 1 |]) in
  Helpers.check_float "bad period" 10. bad.Solution.period;
  let polished = Local_search.improve inst bad in
  Helpers.check_float "swapped" 1. polished.Solution.period

(* ------------------------------------------------------------------ *)
(* Branch_bound                                                        *)
(* ------------------------------------------------------------------ *)

let prop_branch_bound_matches_subset_dp =
  Helpers.qtest ~count:40 "B&B (proven) = subset DP" gen_small (fun inst ->
      let result = Branch_bound.min_period inst in
      let dp = Bicriteria.min_period inst in
      result.Branch_bound.proven_optimal
      && Helpers.feq ~eps:1e-9 result.Branch_bound.solution.Solution.period
           dp.Solution.period)

let prop_branch_bound_anytime_sound =
  Helpers.qtest ~count:20 "tiny budget: still a valid, no-worse-than-seed result"
    gen_small
    (fun inst ->
      let seed = Solution.of_mapping inst (Instance.single_proc_mapping inst) in
      let result = Branch_bound.min_period ~node_budget:10 ~initial:seed inst in
      Mapping.valid_on result.Branch_bound.solution.Solution.mapping
        inst.Instance.platform
      && result.Branch_bound.solution.Solution.period
         <= seed.Solution.period +. 1e-9)

let test_branch_bound_scales_to_p100 () =
  (* p = 100 with integer speeds: symmetry pruning keeps this tractable. *)
  let rng = Pipeline_util.Rng.create 7 in
  let app = App_generator.generate rng (App_generator.e1 ~n:12) in
  let platform = Platform_generator.comm_homogeneous rng ~p:100 in
  let inst = Instance.make app platform in
  let result = Branch_bound.min_period ~node_budget:200_000 inst in
  (* The heuristic seed must not be better than the B&B result. *)
  (match Pipeline_core.Sp_mono_l.solve inst ~latency:infinity with
  | Some h ->
    Alcotest.(check bool) "B&B <= heuristic" true
      (result.Branch_bound.solution.Solution.period
      <= h.Solution.period +. 1e-9)
  | None -> ());
  Alcotest.(check bool) "valid" true
    (Mapping.valid_on result.Branch_bound.solution.Solution.mapping platform)

let test_branch_bound_rejects_het () =
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  let inst = Instance.make (Application.uniform ~n:3 ~work:1. ~delta:1.) pl in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Branch_bound: requires a comm-homogeneous platform")
    (fun () -> ignore (Branch_bound.min_period inst))

let () =
  Alcotest.run "optimal"
    [
      ( "subset_dp",
        [
          Alcotest.test_case "guard" `Quick test_subset_dp_guard;
          Alcotest.test_case "trivial" `Quick test_subset_dp_trivial;
          Alcotest.test_case "cheap processor" `Quick
            test_subset_dp_prefers_cheap_processor;
          Alcotest.test_case "cap infeasible" `Quick test_subset_dp_cap_infeasible;
          Alcotest.test_case "cap feasible" `Quick test_subset_dp_cap_feasible_sum;
        ] );
      ( "latency",
        [
          Alcotest.test_case "fastest proc" `Quick test_latency_fastest_proc;
          prop_latency_no_mapping_beats_it;
        ] );
      ( "bicriteria",
        [
          prop_min_period_matches_exhaustive;
          prop_min_latency_under_period_matches_exhaustive;
          prop_min_period_under_latency_matches_exhaustive;
          prop_min_latency_under_period_infeasible_below_optimum;
          Alcotest.test_case "rejects het" `Quick test_bicriteria_rejects_het;
        ] );
      ( "pareto",
        [
          prop_pareto_sorted_non_dominated;
          prop_pareto_matches_exhaustive;
          prop_pareto_endpoints;
        ] );
      ( "homogeneous",
        [
          Alcotest.test_case "rejects het speeds" `Quick
            test_homogeneous_rejects_different_speeds;
          prop_homogeneous_period_matches_subset_dp;
          prop_homogeneous_latency_under_period_matches;
          prop_homogeneous_period_under_latency_matches;
          prop_homogeneous_pareto_matches;
        ] );
      ( "one-to-one",
        [
          Alcotest.test_case "requires n <= p" `Quick
            test_one_to_one_requires_enough_procs;
          prop_one_to_one_period_matches_brute;
          prop_one_to_one_latency_matches_brute;
          prop_one_to_one_never_beats_interval;
          prop_one_to_one_constrained_consistent;
          prop_one_to_one_pareto_sorted;
        ] );
      ( "scalarised",
        [
          prop_scalarised_extremes;
          prop_scalarised_on_front;
          prop_scalarised_heuristic_dominated;
          Alcotest.test_case "bad alpha" `Quick test_scalarised_rejects_bad_alpha;
          Alcotest.test_case "kind check" `Quick
            test_scalarised_heuristic_requires_period_kind;
        ] );
      ( "local-search",
        [
          prop_neighbours_valid;
          prop_local_search_never_worse;
          prop_local_search_respects_feasibility;
          prop_local_search_from_optimal_stays;
          Alcotest.test_case "recovers a swap" `Quick
            test_local_search_recovers_processor_swap;
        ] );
      ( "branch-bound",
        [
          prop_branch_bound_matches_subset_dp;
          prop_branch_bound_anytime_sound;
          Alcotest.test_case "p = 100" `Slow test_branch_bound_scales_to_p100;
          Alcotest.test_case "rejects het" `Quick test_branch_bound_rejects_het;
          prop_branch_bound_parallel_bit_identical;
          prop_branch_bound_optimum_ignores_frontier;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "count known" `Quick test_count_mappings_known;
          Alcotest.test_case "iter matches count" `Quick test_iter_matches_count;
          Alcotest.test_case "all valid" `Quick test_iter_mappings_all_valid;
          Alcotest.test_case "guard" `Quick test_exhaustive_guard;
          Alcotest.test_case "het platform" `Quick test_exhaustive_works_on_het;
          prop_exhaustive_parallel_bit_identical;
          prop_exhaustive_het_parallel_bit_identical;
        ] );
    ]

open Pipeline_model
open Pipeline_ft
module Rng = Pipeline_util.Rng
module DM = Pipeline_deal.Deal_mapping
module DR = Pipeline_deal.Deal_reliability
module Registry = Pipeline_core.Registry

let gen_seed = QCheck2.Gen.int_range 0 100_000

(* Tiny instances so the exhaustive tri-criteria oracle stays cheap. *)
let tiny_instance seed = Helpers.random_instance ~n_max:4 ~p_max:3 seed

let random_reliability rng p =
  Reliability.make
    (Array.init p (fun _ -> float_of_int (Rng.int_in rng 0 40) /. 100.))

(* ------------------------------------------------------------------ *)
(* Reliability model                                                   *)
(* ------------------------------------------------------------------ *)

let test_reliability_basics () =
  let rel = Reliability.make [| 0.1; 0.5; 0. |] in
  Alcotest.(check int) "p" 3 (Reliability.p rel);
  Helpers.check_float "failure" 0.5 (Reliability.failure rel 1);
  Helpers.check_float "success" 0.9 (Reliability.success rel 0);
  Helpers.check_float "group failure" 0.05 (Reliability.group_failure rel [ 0; 1 ]);
  Helpers.check_float "group success" 0.45 (Reliability.group_success rel [ 0; 1 ]);
  Helpers.check_float "empty group" 1. (Reliability.group_failure rel []);
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 0; 1 ] in
  (* 1 - 0.9 * 0.5 = 0.55 *)
  Helpers.check_float "mapping failure" 0.55 (Reliability.mapping_failure rel mapping);
  Helpers.check_float "mapping success" 0.45 (Reliability.mapping_success rel mapping)

let test_reliability_rejects () =
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "negative prob" (fun () -> Reliability.make [| -0.1 |]);
  rejects "prob above one" (fun () -> Reliability.make [| 1.1 |]);
  rejects "nan prob" (fun () -> Reliability.make [| nan |]);
  rejects "empty uniform" (fun () -> Reliability.uniform ~p:0 0.1);
  rejects "proc out of range" (fun () ->
      Reliability.failure (Reliability.make [| 0.1 |]) 1);
  rejects "mapping out of range" (fun () ->
      Reliability.mapping_failure
        (Reliability.make [| 0.1 |])
        (Mapping.single ~n:2 ~proc:3))

let prop_deal_agrees_with_plain =
  Helpers.qtest ~count:100 "deal reliability of a plain mapping = model"
    gen_seed (fun seed ->
      let inst = Helpers.random_instance ~n_max:6 ~p_max:5 seed in
      let rng = Rng.create (seed + 13) in
      let rel = random_reliability rng (Platform.p inst.platform) in
      let mapping = Instance.single_proc_mapping inst in
      DR.agrees_with_plain rel mapping)

let test_deal_replication_reduces_failure () =
  let rel = Reliability.make [| 0.2; 0.3; 0.4 |] in
  let plain = DM.of_mapping (Mapping.single ~n:3 ~proc:0) in
  let replicated = DM.replicate plain ~j:0 ~proc:2 in
  let f_plain = DR.failure rel plain in
  let f_repl = DR.failure rel replicated in
  Helpers.check_float "plain" 0.2 f_plain;
  (* interval fails only if both replicas fail: 0.2 * 0.4 *)
  Helpers.check_float "replicated" 0.08 f_repl;
  Alcotest.(check bool) "replication helps" true (f_repl < f_plain)

(* ------------------------------------------------------------------ *)
(* Tri-criteria heuristic vs the exhaustive oracle                     *)
(* ------------------------------------------------------------------ *)

let gen_tri_case =
  QCheck2.Gen.map
    (fun seed ->
      let inst = tiny_instance seed in
      let rng = Rng.create (seed + 31) in
      let rel = random_reliability rng (Platform.p inst.platform) in
      (* Bounds spanning tight to loose around the single-processor
         anchor points. *)
      let period =
        Instance.single_proc_period inst
        *. (0.3 +. (float_of_int (Rng.int_in rng 0 15) /. 10.))
      in
      let failure = float_of_int (Rng.int_in rng 0 60) /. 100. in
      (inst, rel, period, failure))
    gen_seed

let prop_heuristic_sound_vs_oracle =
  Helpers.qtest ~count:150 "tri-criteria heuristic sound vs oracle"
    gen_tri_case (fun (inst, rel, period, failure) ->
      match Ft_heuristic.minimise_latency inst rel ~period ~failure with
      | None -> true (* conservatism is allowed; false claims are not *)
      | Some sol ->
        (* The claimed solution respects both bounds... *)
        Ft_heuristic.feasible sol ~period ~failure
        (* ...its scores are honest... *)
        && Stdlib.compare sol (Ft_heuristic.evaluate inst rel sol.mapping) = 0
        &&
        (* ...and the oracle agrees the instance is feasible, with a
           latency no worse than the heuristic's. *)
        (match Ft_exhaustive.min_latency inst rel ~period ~failure with
        | None -> false
        | Some oracle ->
          oracle.Ft_heuristic.latency <= sol.latency *. (1. +. 1e-9)))

let prop_oracle_solution_feasible =
  Helpers.qtest ~count:100 "oracle output respects both bounds"
    gen_tri_case (fun (inst, rel, period, failure) ->
      match Ft_exhaustive.min_latency inst rel ~period ~failure with
      | None -> true
      | Some sol -> Ft_heuristic.feasible sol ~period ~failure)

(* The tri-criteria oracle rides Deal_exhaustive's task-tree frontier:
   its answer (tie witness included) may not depend on the pool width or
   the frontier size (DESIGN.md §14). *)
let with_jobs jobs f =
  let saved = Pipeline_util.Pool.jobs () in
  Pipeline_util.Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_jobs saved) f

let with_tree_cap cap f =
  let saved = Pipeline_util.Pool.tree_cap () in
  Pipeline_util.Pool.set_tree_cap cap;
  Fun.protect ~finally:(fun () -> Pipeline_util.Pool.set_tree_cap saved) f

let prop_oracle_parallel_bit_identical =
  Helpers.qtest ~count:40
    "oracle: any (tree cap, jobs) = sequential (bit-for-bit)"
    QCheck2.Gen.(
      triple gen_tri_case (oneofl [ 1; 2; 9; 512 ]) (oneofl [ 1; 4; 8 ]))
    (fun ((inst, rel, period, failure), cap, jobs) ->
      let solve () = Ft_exhaustive.min_latency inst rel ~period ~failure in
      Stdlib.compare
        (with_tree_cap 1 (fun () -> with_jobs 1 solve))
        (with_tree_cap cap (fun () -> with_jobs jobs solve))
      = 0)

let test_ft_replicates_to_meet_bound () =
  (* small_instance with unreliable processors: the period bound is
     loose, so H1's single-processor shape would do — but its failure
     probability (0.3) exceeds the bound, forcing replication. *)
  let inst = Helpers.small_instance () in
  let rel = Reliability.uniform ~p:3 0.3 in
  let period = Instance.single_proc_period inst in
  let sol =
    match Ft_heuristic.minimise_latency inst rel ~period ~failure:0.2 with
    | Some sol -> sol
    | None -> Alcotest.fail "expected a feasible solution"
  in
  Alcotest.(check bool) "failure within bound" true (sol.failure <= 0.2);
  Alcotest.(check bool) "period within bound" true
    (sol.period <= period *. (1. +. 1e-9));
  Alcotest.(check bool) "some interval replicated" true
    (List.exists
       (fun j -> DM.replication sol.mapping j > 1)
       (List.init (DM.m sol.mapping) Fun.id))

let test_ft_infeasible_bound () =
  (* Every processor can fail, so a zero failure bound is unreachable. *)
  let inst = Helpers.small_instance () in
  let rel = Reliability.uniform ~p:3 0.3 in
  let period = Instance.single_proc_period inst in
  Alcotest.(check bool) "infeasible" true
    (Ft_heuristic.minimise_latency inst rel ~period ~failure:0. = None);
  Alcotest.(check bool) "oracle agrees" true
    (Ft_exhaustive.min_latency inst rel ~period ~failure:0. = None)

let test_ft_rejects_bad_bounds () =
  let inst = Helpers.small_instance () in
  let rel = Reliability.uniform ~p:3 0.1 in
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "wrong vector size" (fun () ->
      Ft_heuristic.minimise_latency inst
        (Reliability.uniform ~p:2 0.1)
        ~period:10. ~failure:0.5);
  rejects "bad period" (fun () ->
      Ft_heuristic.minimise_latency inst rel ~period:0. ~failure:0.5);
  rejects "bad failure bound" (fun () ->
      Ft_heuristic.minimise_latency inst rel ~period:10. ~failure:1.5)

(* ------------------------------------------------------------------ *)
(* Online remapping                                                    *)
(* ------------------------------------------------------------------ *)

let h1 () =
  match Registry.find "h1-sp-mono-p" with
  | Some h -> h
  | None -> Alcotest.fail "H1 missing from the registry"

let test_remap_no_failure_is_stable () =
  (* With no failures and the same heuristic/threshold the controller
     re-derives the same mapping: zero migration. *)
  let inst = Helpers.small_instance () in
  let threshold = Instance.single_proc_period inst in
  let before =
    match (h1 ()).Registry.solve inst ~threshold with
    | Some sol -> sol.Pipeline_core.Solution.mapping
    | None -> Alcotest.fail "H1 infeasible at the single-processor period"
  in
  match Ft_remap.remap inst ~before ~failed:[] ~threshold with
  | None -> Alcotest.fail "survivors exist"
  | Some outcome ->
    Alcotest.(check bool) "same mapping" true
      (Mapping.equal outcome.Ft_remap.mapping before);
    Alcotest.(check int) "no migration" 0 outcome.Ft_remap.migrated_stages;
    Helpers.check_float "no volume" 0. outcome.Ft_remap.migration_volume;
    Alcotest.(check bool) "met" true outcome.Ft_remap.met_threshold;
    Alcotest.(check bool) "not a fallback" false outcome.Ft_remap.fallback

let test_remap_avoids_failed_processor () =
  let inst = Helpers.small_instance () in
  let threshold = Instance.single_proc_period inst in
  (* Everything on the fastest processor (1), which then fails. *)
  let before = Mapping.single ~n:4 ~proc:1 in
  match Ft_remap.remap inst ~before ~failed:[ 1 ] ~threshold with
  | None -> Alcotest.fail "survivors exist"
  | Some outcome ->
    Alcotest.(check bool) "failed proc not enrolled" false
      (Mapping.uses outcome.Ft_remap.mapping 1);
    Alcotest.(check bool) "valid on the platform" true
      (Mapping.valid_on outcome.Ft_remap.mapping inst.platform);
    (* All four stages lived on the dead processor, so all migrate;
       the volume charges each stage's input payload. *)
    Alcotest.(check int) "all stages migrate" 4 outcome.Ft_remap.migrated_stages;
    Helpers.check_float "volume" (10. +. 20. +. 30. +. 20.)
      outcome.Ft_remap.migration_volume

let test_remap_fallback_under_tight_threshold () =
  let inst = Helpers.small_instance () in
  let before = Mapping.single ~n:4 ~proc:1 in
  (* No mapping on the survivors can reach a near-zero period. *)
  match Ft_remap.remap inst ~before ~failed:[ 1 ] ~threshold:1e-6 with
  | None -> Alcotest.fail "survivors exist"
  | Some outcome ->
    Alcotest.(check bool) "fallback" true outcome.Ft_remap.fallback;
    Alcotest.(check bool) "threshold missed" false outcome.Ft_remap.met_threshold;
    (* Fastest survivor is processor 0 (speed 2 vs 1). *)
    Alcotest.(check int) "single interval" 1 (Mapping.m outcome.Ft_remap.mapping);
    Alcotest.(check int) "fastest survivor" 0 (Mapping.proc outcome.Ft_remap.mapping 0)

let test_remap_no_survivor () =
  let inst = Helpers.small_instance () in
  let before = Mapping.single ~n:4 ~proc:1 in
  Alcotest.(check bool) "none" true
    (Ft_remap.remap inst ~before ~failed:[ 0; 1; 2 ] ~threshold:10. = None);
  (* The same verdict when the failed list carries duplicates. *)
  Alcotest.(check bool) "none with duplicates" true
    (Ft_remap.remap inst ~before ~failed:[ 0; 0; 1; 2; 2; 1 ] ~threshold:10. = None)

let test_remap_duplicate_failed_indices () =
  (* [failed] is a set in disguise: listing a processor twice must give
     exactly the outcome of listing it once. *)
  let inst = Helpers.small_instance () in
  let threshold = Instance.single_proc_period inst in
  let before = Mapping.single ~n:4 ~proc:1 in
  let once = Ft_remap.remap inst ~before ~failed:[ 1 ] ~threshold in
  let twice = Ft_remap.remap inst ~before ~failed:[ 1; 1; 1 ] ~threshold in
  Alcotest.(check bool) "identical outcome" true (Stdlib.compare once twice = 0);
  match once with
  | None -> Alcotest.fail "survivors exist"
  | Some o ->
    Alcotest.(check bool) "dead proc shunned" false (Mapping.uses o.Ft_remap.mapping 1)

let test_remap_threshold_on_candidate_boundary () =
  (* The PR-5 threshold search probes the finite candidate set of
     achievable periods. A threshold sitting *exactly* on the candidate
     the remapped solution achieves must be met — no strict-inequality
     off-by-one at the boundary. *)
  let inst = Helpers.small_instance () in
  let before = Mapping.single ~n:4 ~proc:1 in
  let loose =
    match
      Ft_remap.remap inst ~before ~failed:[ 1 ]
        ~threshold:(10. *. Instance.single_proc_period inst)
    with
    | Some o -> o
    | None -> Alcotest.fail "survivors exist"
  in
  (* The achieved period is itself a candidate cycle-time. *)
  let engine = Cost.make inst.Instance.app inst.Instance.platform in
  Alcotest.(check bool) "achieved period is a candidate" true
    (Candidates.mem (Candidates.periods engine) loose.Ft_remap.period);
  match
    Ft_remap.remap inst ~before ~failed:[ 1 ] ~threshold:loose.Ft_remap.period
  with
  | None -> Alcotest.fail "survivors exist"
  | Some exact ->
    Alcotest.(check bool) "boundary threshold met" true exact.Ft_remap.met_threshold;
    Alcotest.(check bool) "no fallback at the boundary" false exact.Ft_remap.fallback;
    Alcotest.(check bool) "period within tolerance" true
      (Pipeline_util.Tol.meets exact.Ft_remap.period loose.Ft_remap.period)

let test_remap_rejects_bad_input () =
  let inst = Helpers.small_instance () in
  let before = Mapping.single ~n:4 ~proc:1 in
  let rejects name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  rejects "failed out of range" (fun () ->
      Ft_remap.remap inst ~before ~failed:[ 5 ] ~threshold:10.);
  rejects "negative failed" (fun () ->
      Ft_remap.remap inst ~before ~failed:[ -1 ] ~threshold:10.);
  rejects "bad threshold" (fun () ->
      Ft_remap.remap inst ~before ~failed:[] ~threshold:0.);
  rejects "foreign mapping" (fun () ->
      Ft_remap.remap inst ~before:(Mapping.single ~n:3 ~proc:0) ~failed:[]
        ~threshold:10.)

let gen_remap_case =
  QCheck2.Gen.map
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let rng = Rng.create (seed + 91) in
      let p = Platform.p inst.platform in
      (* Fail a strict subset of the processors. *)
      let failed =
        List.filter (fun _ -> Rng.int rng 3 = 0) (List.init p Fun.id)
      in
      let failed = if List.length failed = p then List.tl failed else failed in
      (inst, failed))
    gen_seed

let prop_remap_uses_only_survivors =
  Helpers.qtest ~count:150 "remap enrols survivors only" gen_remap_case
    (fun (inst, failed) ->
      let before = Instance.single_proc_mapping inst in
      let threshold = Instance.single_proc_period inst in
      match Ft_remap.remap inst ~before ~failed ~threshold with
      | None -> false (* a strict subset failed: survivors exist *)
      | Some outcome ->
        Mapping.valid_on outcome.Ft_remap.mapping inst.platform
        && List.for_all
             (fun u -> not (Mapping.uses outcome.Ft_remap.mapping u))
             failed
        && outcome.Ft_remap.migration_volume >= 0.
        && outcome.Ft_remap.period > 0.
        && outcome.Ft_remap.latency > 0.)

let () =
  Alcotest.run "ft"
    [
      ( "reliability",
        [
          Alcotest.test_case "basics" `Quick test_reliability_basics;
          Alcotest.test_case "rejects" `Quick test_reliability_rejects;
          prop_deal_agrees_with_plain;
          Alcotest.test_case "replication reduces failure" `Quick
            test_deal_replication_reduces_failure;
        ] );
      ( "tri-criteria",
        [
          prop_heuristic_sound_vs_oracle;
          prop_oracle_solution_feasible;
          prop_oracle_parallel_bit_identical;
          Alcotest.test_case "replicates to meet bound" `Quick
            test_ft_replicates_to_meet_bound;
          Alcotest.test_case "infeasible bound" `Quick test_ft_infeasible_bound;
          Alcotest.test_case "bad bounds" `Quick test_ft_rejects_bad_bounds;
        ] );
      ( "remap",
        [
          Alcotest.test_case "stable without failures" `Quick
            test_remap_no_failure_is_stable;
          Alcotest.test_case "avoids failed" `Quick test_remap_avoids_failed_processor;
          Alcotest.test_case "fallback" `Quick test_remap_fallback_under_tight_threshold;
          Alcotest.test_case "no survivor" `Quick test_remap_no_survivor;
          Alcotest.test_case "duplicate failed indices" `Quick
            test_remap_duplicate_failed_indices;
          Alcotest.test_case "threshold on candidate boundary" `Quick
            test_remap_threshold_on_candidate_boundary;
          Alcotest.test_case "rejects bad input" `Quick test_remap_rejects_bad_input;
          prop_remap_uses_only_survivors;
        ] );
    ]

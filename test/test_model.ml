open Pipeline_model

(* ------------------------------------------------------------------ *)
(* Application                                                        *)
(* ------------------------------------------------------------------ *)

let test_app_basic () =
  let app = Helpers.small_app () in
  Alcotest.(check int) "n" 4 (Application.n app);
  Helpers.check_float "w2" 8. (Application.work app 2);
  Helpers.check_float "d0" 10. (Application.delta app 0);
  Helpers.check_float "d4" 10. (Application.delta app 4)

let test_app_work_sum () =
  let app = Helpers.small_app () in
  Helpers.check_float "whole" 20. (Application.work_sum app 1 4);
  Helpers.check_float "middle" 10. (Application.work_sum app 2 3);
  Helpers.check_float "single" 4. (Application.work_sum app 1 1);
  Helpers.check_float "total" 20. (Application.total_work app)

let test_app_bad_shapes () =
  Alcotest.check_raises "deltas length"
    (Invalid_argument "Application.make: deltas must have length n+1") (fun () ->
      ignore (Application.make ~deltas:[| 1.; 2. |] [| 1.; 2. |]));
  Alcotest.check_raises "empty" (Invalid_argument "Application.make: empty pipeline")
    (fun () -> ignore (Application.make ~deltas:[| 1. |] [||]))

let test_app_rejects_negative () =
  Alcotest.check_raises "negative work"
    (Invalid_argument "Application.make: works must be finite and >= 0") (fun () ->
      ignore (Application.make ~deltas:[| 0.; 0. |] [| -1. |]))

let test_app_rejects_nan () =
  Alcotest.check_raises "nan delta"
    (Invalid_argument "Application.make: deltas must be finite and >= 0") (fun () ->
      ignore (Application.make ~deltas:[| 0.; Float.nan |] [| 1. |]))

let test_app_uniform () =
  let app = Application.uniform ~n:5 ~work:3. ~delta:2. in
  Alcotest.(check int) "n" 5 (Application.n app);
  Helpers.check_float "total" 15. (Application.total_work app);
  Helpers.check_float "delta" 2. (Application.delta app 3)

let test_app_of_stages () =
  let app = Application.of_stages [ (1., 10.); (2., 20.) ] ~delta0:5. in
  Helpers.check_float "d0" 5. (Application.delta app 0);
  Helpers.check_float "d1" 10. (Application.delta app 1);
  Helpers.check_float "d2" 20. (Application.delta app 2);
  Helpers.check_float "w2" 2. (Application.work app 2)

let test_app_labels () =
  let app =
    Application.make ~labels:[| "load"; "fft" |] ~deltas:[| 1.; 1.; 1. |] [| 1.; 1. |]
  in
  Alcotest.(check string) "named" "fft" (Application.label app 2);
  let anon = Application.uniform ~n:2 ~work:1. ~delta:1. in
  Alcotest.(check string) "default" "S2" (Application.label anon 2)

let test_app_out_of_range () =
  let app = Helpers.small_app () in
  Alcotest.check_raises "work 0" (Invalid_argument "Application.work: stage out of range")
    (fun () -> ignore (Application.work app 0));
  Alcotest.check_raises "delta 5"
    (Invalid_argument "Application.delta: index out of range") (fun () ->
      ignore (Application.delta app 5));
  Alcotest.check_raises "work_sum inverted"
    (Invalid_argument "Application.work_sum: invalid interval") (fun () ->
      ignore (Application.work_sum app 3 2))

let test_app_copies_arrays () =
  let works = [| 1.; 2. |] and deltas = [| 0.; 0.; 0. |] in
  let app = Application.make ~deltas works in
  works.(0) <- 99.;
  Helpers.check_float "input mutation isolated" 1. (Application.work app 1);
  let w = Application.works app in
  w.(0) <- 42.;
  Helpers.check_float "output mutation isolated" 1. (Application.work app 1)

let test_app_equal () =
  let a = Application.uniform ~n:3 ~work:1. ~delta:2. in
  let b = Application.uniform ~n:3 ~work:1. ~delta:2. in
  let c = Application.uniform ~n:3 ~work:1. ~delta:3. in
  Alcotest.(check bool) "equal" true (Application.equal a b);
  Alcotest.(check bool) "not equal" false (Application.equal a c)

let prop_work_sum_matches_naive =
  Helpers.qtest "work_sum = naive sum"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 30) (float_range 0. 50.))
        (pair small_nat small_nat))
    (fun (ws, (i, j)) ->
      let n = List.length ws in
      let works = Array.of_list ws in
      let app = Application.make ~deltas:(Array.make (n + 1) 0.) works in
      let d = 1 + (i mod n) in
      let e = d + (j mod (n - d + 1)) in
      let naive = ref 0. in
      for k = d to e do
        naive := !naive +. works.(k - 1)
      done;
      Helpers.feq ~eps:1e-6 !naive (Application.work_sum app d e))

(* ------------------------------------------------------------------ *)
(* Platform                                                           *)
(* ------------------------------------------------------------------ *)

let test_platform_comm_hom () =
  let pl = Helpers.small_platform () in
  Alcotest.(check int) "p" 3 (Platform.p pl);
  Helpers.check_float "speed" 4. (Platform.speed pl 1);
  Helpers.check_float "bandwidth" 10. (Platform.bandwidth pl 0 2);
  Helpers.check_float "io" 10. (Platform.io_bandwidth pl 1);
  Alcotest.(check bool) "comm hom" true (Platform.is_comm_homogeneous pl)

let test_platform_self_bandwidth_infinite () =
  let pl = Helpers.small_platform () in
  Helpers.check_float "self link free" infinity (Platform.bandwidth pl 1 1)

let test_platform_fully_homogeneous () =
  let pl = Platform.fully_homogeneous ~speed:2. ~bandwidth:5. 4 in
  Alcotest.(check int) "p" 4 (Platform.p pl);
  Helpers.check_float "speed" 2. (Platform.speed pl 3);
  Alcotest.(check bool) "comm hom" true (Platform.is_comm_homogeneous pl)

let test_platform_fastest_and_order () =
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 3.; 9.; 9.; 1. |] in
  Alcotest.(check int) "fastest (tie -> smallest index)" 1 (Platform.fastest pl);
  Alcotest.(check (array int)) "order" [| 1; 2; 0; 3 |] (Platform.by_decreasing_speed pl)

let test_platform_het () =
  let bandwidths = [| [| 0.; 2.; 3. |]; [| 2.; 0.; 4. |]; [| 3.; 4.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  Helpers.check_float "link" 4. (Platform.bandwidth pl 1 2);
  Helpers.check_float "default io = row max" 3. (Platform.io_bandwidth pl 0);
  Alcotest.(check bool) "not comm hom" false (Platform.is_comm_homogeneous pl)

let test_platform_het_asymmetric_rejected () =
  let bandwidths = [| [| 0.; 2. |]; [| 3.; 0. |] |] in
  Alcotest.check_raises "asymmetric"
    (Invalid_argument "Platform.fully_heterogeneous: matrix must be symmetric")
    (fun () -> ignore (Platform.fully_heterogeneous ~bandwidths [| 1.; 1. |]))

let test_platform_rejects_bad_speed () =
  Alcotest.check_raises "zero speed"
    (Invalid_argument "Platform: speed must be finite and > 0") (fun () ->
      ignore (Platform.comm_homogeneous ~bandwidth:1. [| 0. |]));
  Alcotest.check_raises "no procs" (Invalid_argument "Platform: no processors")
    (fun () -> ignore (Platform.comm_homogeneous ~bandwidth:1. [||]))

let test_platform_custom_io () =
  let pl = Platform.comm_homogeneous ~io_bandwidth:5. ~bandwidth:10. [| 1.; 2. |] in
  Helpers.check_float "io" 5. (Platform.io_bandwidth pl 0);
  Alcotest.(check bool) "not comm hom (io differs)" false
    (Platform.is_comm_homogeneous pl)

(* ------------------------------------------------------------------ *)
(* Interval                                                           *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let iv = Interval.make ~first:2 ~last:5 in
  Alcotest.(check int) "length" 4 (Interval.length iv);
  Alcotest.(check bool) "mem" true (Interval.mem iv 3);
  Alcotest.(check bool) "not mem" false (Interval.mem iv 6);
  Alcotest.(check string) "to_string" "[2..5]" (Interval.to_string iv);
  Alcotest.(check string) "singleton string" "[7]"
    (Interval.to_string (Interval.singleton 7))

let test_interval_bad () =
  Alcotest.check_raises "inverted"
    (Invalid_argument "Interval.make: need 1 <= first <= last") (fun () ->
      ignore (Interval.make ~first:3 ~last:2))

let test_interval_split () =
  let iv = Interval.make ~first:1 ~last:4 in
  Alcotest.(check (list int)) "split points" [ 1; 2; 3 ] (Interval.split_points iv);
  let l, r = Interval.split_at iv 2 in
  Alcotest.(check string) "left" "[1..2]" (Interval.to_string l);
  Alcotest.(check string) "right" "[3..4]" (Interval.to_string r);
  let a, b, c = Interval.split3_at iv 1 3 in
  Alcotest.(check string) "a" "[1]" (Interval.to_string a);
  Alcotest.(check string) "b" "[2..3]" (Interval.to_string b);
  Alcotest.(check string) "c" "[4]" (Interval.to_string c)

let test_interval_split_bad () =
  let iv = Interval.make ~first:1 ~last:3 in
  Alcotest.check_raises "cut at end" (Invalid_argument "Interval.split_at: bad cut")
    (fun () -> ignore (Interval.split_at iv 3));
  Alcotest.check_raises "bad 3-cut" (Invalid_argument "Interval.split3_at: bad cuts")
    (fun () -> ignore (Interval.split3_at iv 2 2))

let test_interval_partition_of () =
  let mk f l = Interval.make ~first:f ~last:l in
  Alcotest.(check bool) "valid" true (Interval.partition_of 5 [ mk 1 2; mk 3 5 ]);
  Alcotest.(check bool) "gap" false (Interval.partition_of 5 [ mk 1 2; mk 4 5 ]);
  Alcotest.(check bool) "short" false (Interval.partition_of 5 [ mk 1 4 ]);
  Alcotest.(check bool) "empty" false (Interval.partition_of 5 []);
  Alcotest.(check bool) "wrong start" false (Interval.partition_of 5 [ mk 2 5 ])

(* ------------------------------------------------------------------ *)
(* Mapping                                                            *)
(* ------------------------------------------------------------------ *)

let test_mapping_make () =
  let m =
    Mapping.make ~n:4
      [ (Interval.make ~first:1 ~last:2, 1); (Interval.make ~first:3 ~last:4, 0) ]
  in
  Alcotest.(check int) "m" 2 (Mapping.m m);
  Alcotest.(check int) "proc of stage 3" 0 (Mapping.proc_of_stage m 3);
  Alcotest.(check bool) "uses 1" true (Mapping.uses m 1);
  Alcotest.(check bool) "uses 2" false (Mapping.uses m 2);
  Alcotest.(check string) "to_string" "{[1..2]->P1, [3..4]->P0}" (Mapping.to_string m)

let test_mapping_rejects_bad_partition () =
  Alcotest.check_raises "not a partition"
    (Invalid_argument "Mapping.make: intervals must partition [1..n] in order")
    (fun () -> ignore (Mapping.make ~n:4 [ (Interval.make ~first:1 ~last:2, 0) ]))

let test_mapping_rejects_duplicate_proc () =
  Alcotest.check_raises "duplicate processor"
    (Invalid_argument "Mapping: processor assigned to several intervals") (fun () ->
      ignore
        (Mapping.make ~n:4
           [
             (Interval.make ~first:1 ~last:2, 0);
             (Interval.make ~first:3 ~last:4, 0);
           ]))

let test_mapping_single_and_one_to_one () =
  let s = Mapping.single ~n:5 ~proc:2 in
  Alcotest.(check int) "single m" 1 (Mapping.m s);
  Alcotest.(check int) "single proc" 2 (Mapping.proc s 0);
  let o = Mapping.one_to_one ~procs:[| 2; 0; 1 |] in
  Alcotest.(check int) "1-1 m" 3 (Mapping.m o);
  Alcotest.(check int) "stage 2 on 0" 0 (Mapping.proc_of_stage o 2)

let test_mapping_of_cuts () =
  let m = Mapping.of_cuts ~n:5 ~cuts:[ 2; 3 ] ~procs:[ 0; 1; 2 ] in
  Alcotest.(check string) "layout" "{[1..2]->P0, [3]->P1, [4..5]->P2}"
    (Mapping.to_string m)

let test_mapping_replace () =
  let m = Mapping.single ~n:4 ~proc:0 in
  let m' =
    Mapping.replace m ~j:0
      [ (Interval.make ~first:1 ~last:2, 0); (Interval.make ~first:3 ~last:4, 1) ]
  in
  Alcotest.(check string) "replaced" "{[1..2]->P0, [3..4]->P1}" (Mapping.to_string m')

let test_mapping_replace_bad_tiling () =
  let m = Mapping.single ~n:4 ~proc:0 in
  Alcotest.check_raises "bad tiling"
    (Invalid_argument "Mapping.replace: parts must tile the replaced interval")
    (fun () ->
      ignore (Mapping.replace m ~j:0 [ (Interval.make ~first:1 ~last:3, 0) ]))

let test_mapping_interval_of_proc () =
  let m = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 3; 1 ] in
  (match Mapping.interval_of_proc m 1 with
  | Some iv -> Alcotest.(check string) "found" "[3..4]" (Interval.to_string iv)
  | None -> Alcotest.fail "expected interval");
  Alcotest.(check bool) "absent" true (Mapping.interval_of_proc m 0 = None)

let test_mapping_valid_on () =
  let m = Mapping.single ~n:3 ~proc:5 in
  Alcotest.(check bool) "too few procs" false
    (Mapping.valid_on m (Helpers.small_platform ()))

(* ------------------------------------------------------------------ *)
(* Metrics (hand-computed examples)                                   *)
(* ------------------------------------------------------------------ *)

(* Instance: works [4;8;2;6], deltas [10;20;30;20;10], speeds [2;4;1], b=10. *)

let test_metrics_single_proc () =
  let inst = Helpers.small_instance () in
  let m = Mapping.single ~n:4 ~proc:1 in
  (* cycle = 10/10 + 20/4 + 10/10 = 7; latency identical. *)
  Helpers.check_float "period" 7. (Metrics.period inst.app inst.platform m);
  Helpers.check_float "latency" 7. (Metrics.latency inst.app inst.platform m)

let test_metrics_two_intervals () =
  let inst = Helpers.small_instance () in
  let m = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  (* I1=[1,2] on P1 (s=4): 10/10 + 12/4 + 30/10 = 7
     I2=[3,4] on P0 (s=2): 30/10 + 8/2 + 10/10 = 8 *)
  Helpers.check_float "cycle 0" 7. (Metrics.cycle_time inst.app inst.platform m 0);
  Helpers.check_float "cycle 1" 8. (Metrics.cycle_time inst.app inst.platform m 1);
  Helpers.check_float "period" 8. (Metrics.period inst.app inst.platform m);
  Alcotest.(check int) "bottleneck" 1 (Metrics.bottleneck inst.app inst.platform m);
  (* latency = (1+3) + (3+4) + 10/10 = 12 *)
  Helpers.check_float "latency" 12. (Metrics.latency inst.app inst.platform m)

let test_metrics_summary_consistent () =
  let inst = Helpers.small_instance () in
  let m = Mapping.of_cuts ~n:4 ~cuts:[ 1; 2 ] ~procs:[ 2; 1; 0 ] in
  let s = Metrics.summary inst.app inst.platform m in
  Helpers.check_float "period" (Metrics.period inst.app inst.platform m)
    s.Metrics.period;
  Helpers.check_float "latency" (Metrics.latency inst.app inst.platform m)
    s.Metrics.latency;
  Alcotest.(check int) "intervals" 3 s.Metrics.intervals

let test_metrics_het_uses_links () =
  let bandwidths = [| [| 0.; 2. |]; [| 2.; 0. |] |] in
  let pl =
    Platform.fully_heterogeneous ~io_bandwidths:[| 10.; 10. |] ~bandwidths
      [| 1.; 1. |]
  in
  let app = Application.make ~deltas:[| 10.; 4.; 10. |] [| 2.; 2. |] in
  let inst = Instance.make app pl in
  let m = Mapping.one_to_one ~procs:[| 0; 1 |] in
  (* I1: 10/10 + 2/1 + 4/2 = 5; I2: 4/2 + 2/1 + 10/10 = 5 *)
  Helpers.check_float "period" 5. (Metrics.period inst.app inst.platform m);
  (* latency = (1+2) + (2+2) + 1 = 8 *)
  Helpers.check_float "latency" 8. (Metrics.latency inst.app inst.platform m)

let test_metrics_rejects_mismatch () =
  let inst = Helpers.small_instance () in
  let m = Mapping.single ~n:3 ~proc:0 in
  Alcotest.check_raises "wrong n"
    (Invalid_argument "Metrics: mapping and application disagree on n") (fun () ->
      ignore (Metrics.period inst.app inst.platform m))

let test_metrics_zero_deltas () =
  (* With δ = 0 and b = 1 the period reduces to the weighted bottleneck. *)
  let app = Application.make ~deltas:[| 0.; 0.; 0. |] [| 6.; 3. |] in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 2.; 3. |] in
  let m = Mapping.one_to_one ~procs:[| 1; 0 |] in
  Helpers.check_float "period" 2. (Metrics.period app pl m);
  Helpers.check_float "latency" 3.5 (Metrics.latency app pl m)

let prop_one_interval_period_equals_latency =
  Helpers.qtest "single-interval mapping: period = latency"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.app in
      let mapping = Mapping.single ~n ~proc:0 in
      let s = Metrics.summary inst.app inst.platform mapping in
      Helpers.feq s.Metrics.period s.Metrics.latency)

let prop_period_at_most_latency_for_two_intervals =
  (* With identical in/out bandwidths, each cycle-time is a subset of the
     terms summed by the latency, so period <= latency always holds on
     comm-homogeneous platforms. *)
  Helpers.qtest "period <= latency (comm-hom)"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.app in
      let p = Platform.p inst.platform in
      let mapping =
        if n >= 2 && p >= 2 then Mapping.of_cuts ~n ~cuts:[ n / 2 ] ~procs:[ 0; 1 ]
        else Mapping.single ~n ~proc:0
      in
      let s = Metrics.summary inst.app inst.platform mapping in
      s.Metrics.period <= s.Metrics.latency +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Generators and Instance                                            *)
(* ------------------------------------------------------------------ *)

let test_app_generator_e1 () =
  let rng = Pipeline_util.Rng.create 1 in
  let app = App_generator.generate rng (App_generator.e1 ~n:20) in
  Alcotest.(check int) "n" 20 (Application.n app);
  for k = 0 to 20 do
    Helpers.check_float "homogeneous deltas" 10. (Application.delta app k)
  done;
  for k = 1 to 20 do
    let w = Application.work app k in
    Alcotest.(check bool) "w in [1,20]" true (w >= 1. && w <= 20.);
    Helpers.check_float "integer" (Float.round w) w
  done

let test_app_generator_e2_ranges () =
  let rng = Pipeline_util.Rng.create 2 in
  let app = App_generator.generate rng (App_generator.e2 ~n:50) in
  for k = 0 to 50 do
    let d = Application.delta app k in
    Alcotest.(check bool) "delta in [1,100]" true (d >= 1. && d <= 100.)
  done

let test_app_generator_e3_ranges () =
  let rng = Pipeline_util.Rng.create 3 in
  let app = App_generator.generate rng (App_generator.e3 ~n:50) in
  for k = 1 to 50 do
    let w = Application.work app k in
    Alcotest.(check bool) "w in [10,1000]" true (w >= 10. && w <= 1000.)
  done

let test_app_generator_e4_fractional () =
  let rng = Pipeline_util.Rng.create 4 in
  let app = App_generator.generate rng (App_generator.e4 ~n:100) in
  let fractional = ref false in
  for k = 1 to 100 do
    let w = Application.work app k in
    Alcotest.(check bool) "w in [0.01,10]" true (w >= 0.01 && w <= 10.);
    if Float.round w <> w then fractional := true
  done;
  Alcotest.(check bool) "not all integers" true !fractional

let test_app_generator_e6 () =
  let rng = Pipeline_util.Rng.create 7 in
  let app = App_generator.generate rng (App_generator.e6 ~n:100) in
  (* Uniform deltas are load-bearing: the lazy candidate lattice
     (Candidates.Set) requires them. *)
  for k = 0 to 100 do
    Helpers.check_float "fixed deltas" 25. (Application.delta app k)
  done;
  for k = 1 to 100 do
    let w = Application.work app k in
    Alcotest.(check bool) "w in [1,100]" true (w >= 1. && w <= 100.);
    Helpers.check_float "integer" (Float.round w) w
  done

let test_platform_generator_web_scale () =
  let rng = Pipeline_util.Rng.create 8 in
  let pl = Platform_generator.web_scale rng ~p:100 in
  Alcotest.(check bool) "comm hom" true (Platform.is_comm_homogeneous pl);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "speed is a tier multiple" true
        (List.mem s [ 5.; 10.; 15.; 20. ]))
    (Platform.speeds pl);
  Helpers.check_float "b" 10. (Platform.io_bandwidth pl 0)

let test_platform_generator_ranges () =
  let rng = Pipeline_util.Rng.create 5 in
  let pl = Platform_generator.comm_homogeneous rng ~p:50 in
  Alcotest.(check bool) "comm hom" true (Platform.is_comm_homogeneous pl);
  Array.iter
    (fun s -> Alcotest.(check bool) "speed in [1,20]" true (s >= 1. && s <= 20.))
    (Platform.speeds pl);
  Helpers.check_float "b" 10. (Platform.io_bandwidth pl 0)

let test_platform_generator_het () =
  let rng = Pipeline_util.Rng.create 6 in
  let pl = Platform_generator.fully_heterogeneous rng ~p:8 in
  Alcotest.(check bool) "not comm hom (almost surely)" true
    (not (Platform.is_comm_homogeneous pl));
  for u = 0 to 7 do
    for v = 0 to 7 do
      if u <> v then begin
        let b = Platform.bandwidth pl u v in
        Alcotest.(check bool) "b in [5,15]" true (b >= 5. && b <= 15.);
        Helpers.check_float "symmetric" b (Platform.bandwidth pl v u)
      end
    done
  done

let test_instance_helpers () =
  let inst = Helpers.small_instance () in
  let single = Instance.single_proc_mapping inst in
  Alcotest.(check int) "fastest proc" 1 (Mapping.proc single 0);
  Helpers.check_float "optimal latency" 7. (Instance.optimal_latency inst);
  Helpers.check_float "single period" 7. (Instance.single_proc_period inst)


(* ------------------------------------------------------------------ *)
(* Instance_io                                                         *)
(* ------------------------------------------------------------------ *)

let sample_text =
  "# demo\n\
   pipeline 3\n\
   labels load fft store\n\
   works 4 8 2\t# trailing comment\n\
   deltas 10 20 30 20\n\
   platform comm-hom\n\
   bandwidth 10\n\
   speeds 2 4 1\n"

let test_io_parse () =
  match Instance_io.of_string sample_text with
  | Error e -> Alcotest.failf "parse error: %a" Instance_io.pp_error e
  | Ok inst ->
    Alcotest.(check int) "n" 3 (Application.n inst.Instance.app);
    Alcotest.(check string) "label" "fft" (Application.label inst.Instance.app 2);
    Helpers.check_float "w2" 8. (Application.work inst.Instance.app 2);
    Helpers.check_float "speed" 4. (Platform.speed inst.Instance.platform 1);
    Alcotest.(check bool) "comm hom" true
      (Platform.is_comm_homogeneous inst.Instance.platform)

let test_io_roundtrip_comm_hom () =
  let inst = Helpers.small_instance () in
  match Instance_io.of_string (Instance_io.to_string inst) with
  | Error e -> Alcotest.failf "roundtrip error: %a" Instance_io.pp_error e
  | Ok back ->
    Alcotest.(check bool) "app equal" true
      (Application.equal inst.Instance.app back.Instance.app);
    Alcotest.(check bool) "platform equal" true
      (Platform.equal inst.Instance.platform back.Instance.platform)

let test_io_roundtrip_het () =
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl =
    Platform.fully_heterogeneous ~io_bandwidths:[| 7.; 8.; 9. |] ~bandwidths
      [| 1.; 2.; 3. |]
  in
  let inst = Instance.make (Application.uniform ~n:2 ~work:1. ~delta:1.) pl in
  match Instance_io.of_string (Instance_io.to_string inst) with
  | Error e -> Alcotest.failf "roundtrip error: %a" Instance_io.pp_error e
  | Ok back ->
    Alcotest.(check bool) "platform equal" true
      (Platform.equal inst.Instance.platform back.Instance.platform)

let test_io_reports_line () =
  match Instance_io.of_string "pipeline 2\nworks 1 x\n" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> Alcotest.(check int) "line" 2 e.Instance_io.line

let test_io_unknown_key () =
  match Instance_io.of_string "pipeline 1\nbogus 1\n" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
    Alcotest.(check bool) "mentions key" true
      (Str_find.contains e.Instance_io.message "bogus")

let test_io_missing_sections () =
  (match Instance_io.of_string "works 1\ndeltas 0 0\n" with
  | Error e ->
    Alcotest.(check bool) "missing pipeline" true
      (Str_find.contains e.Instance_io.message "pipeline")
  | Ok _ -> Alcotest.fail "expected error");
  match
    Instance_io.of_string "pipeline 1\nworks 1\ndeltas 0 0\nplatform comm-hom\nspeeds 1\n"
  with
  | Error e ->
    Alcotest.(check bool) "missing bandwidth" true
      (Str_find.contains e.Instance_io.message "bandwidth")
  | Ok _ -> Alcotest.fail "expected error"

let test_io_het_missing_link () =
  let text =
    "pipeline 1\nworks 1\ndeltas 0 0\nplatform fully-het\nspeeds 1 1 1\nlink 0 1 5\n"
  in
  match Instance_io.of_string text with
  | Error e ->
    Alcotest.(check bool) "names the missing link" true
      (Str_find.contains e.Instance_io.message "link 0 2")
  | Ok _ -> Alcotest.fail "expected error"

let test_io_shape_mismatch () =
  match Instance_io.of_string "pipeline 2\nworks 1\ndeltas 0 0 0\nplatform comm-hom\nbandwidth 1\nspeeds 1\n" with
  | Error e ->
    Alcotest.(check bool) "works shape" true
      (Str_find.contains e.Instance_io.message "works")
  | Ok _ -> Alcotest.fail "expected error"

let test_io_file_roundtrip () =
  let dir = Filename.temp_file "pwio" "" in
  Sys.remove dir;
  let path = Filename.concat dir "instance.pw" in
  let inst = Helpers.small_instance () in
  Instance_io.save path inst;
  match Instance_io.load path with
  | Error e -> Alcotest.failf "load error: %a" Instance_io.pp_error e
  | Ok back ->
    Alcotest.(check bool) "equal" true
      (Application.equal inst.Instance.app back.Instance.app)

let test_io_load_missing_file () =
  match Instance_io.load "/nonexistent/nope.pw" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check int) "line 0" 0 e.Instance_io.line

(* CLI hardening: truncated and garbage files must come back as [Error],
   never as an exception — the CLI turns the error into a one-line
   diagnostic. *)
let test_io_garbage_and_truncated_files () =
  let dir = Filename.temp_file "pwio-garbage" "" in
  Sys.remove dir;
  let write name content =
    let path = Filename.concat dir name in
    (match Sys.is_directory dir with
    | true -> ()
    | false | (exception Sys_error _) -> Sys.mkdir dir 0o755);
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc;
    path
  in
  let errors name content =
    match Instance_io.load (write name content) with
    | Error _ -> true
    | Ok _ -> false
    | exception _ -> Alcotest.failf "%s: raised instead of Error" name
  in
  Alcotest.(check bool) "empty file" true (errors "empty.pw" "");
  Alcotest.(check bool) "binary garbage" true
    (errors "binary.pw" "\x00\xffgarbage\x01\x7f\n\xfe");
  let valid = Instance_io.to_string (Helpers.small_instance ()) in
  let half = String.sub valid 0 (String.length valid / 2) in
  Alcotest.(check bool) "truncated instance" true (errors "half.pw" half);
  Alcotest.(check bool) "first line only" true
    (errors "first.pw" (List.hd (String.split_on_char '\n' valid)))

let test_mapping_io_garbage () =
  let is_error s =
    match Mapping_io.of_string s with
    | Error _ -> true
    | Ok _ -> false
    | exception _ -> Alcotest.failf "%S: raised instead of Error" s
  in
  Alcotest.(check bool) "binary" true (is_error "\x00\xff\x01:\x02");
  Alcotest.(check bool) "truncated range" true (is_error "1-");
  Alcotest.(check bool) "truncated proc" true (is_error "1-3:");
  Alcotest.(check bool) "trailing junk" true (is_error "1-3:0 ###");
  Alcotest.(check bool) "reversed range" true (is_error "3-1:0");
  Alcotest.(check bool) "negative proc" true (is_error "1-3:-2")

let prop_io_roundtrip_random =
  Helpers.qtest ~count:60 "of_string (to_string inst) preserves the instance"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      match Instance_io.of_string (Instance_io.to_string inst) with
      | Error _ -> false
      | Ok back ->
        Application.equal inst.Instance.app back.Instance.app
        && Platform.equal inst.Instance.platform back.Instance.platform)


(* ------------------------------------------------------------------ *)
(* Skeleton                                                            *)
(* ------------------------------------------------------------------ *)

let demo_skeleton () =
  Skeleton.(
    pipeline
      [
        stage "decode" ~work:55. ~out:6.2;
        stage "scale" ~work:30. ~out:3.1;
        deal (stage "encode" ~work:140. ~out:0.5);
        stage "mux" ~work:6. ~out:0.4;
      ])

let test_skeleton_compiles () =
  let app = Skeleton.to_application ~input:0.8 (demo_skeleton ()) in
  Alcotest.(check int) "n" 4 (Application.n app);
  Helpers.check_float "input" 0.8 (Application.delta app 0);
  Helpers.check_float "encode work" 140. (Application.work app 3);
  Helpers.check_float "encode out" 0.5 (Application.delta app 3);
  Alcotest.(check string) "label" "encode" (Application.label app 3)

let test_skeleton_deal_stages () =
  Alcotest.(check (list int)) "replicable" [ 3 ] (Skeleton.deal_stages (demo_skeleton ()));
  Alcotest.(check (list int)) "deal over a pipeline marks all" [ 1; 2 ]
    Skeleton.(
      deal_stages
        (deal (pipeline [ stage "a" ~work:1. ~out:1.; stage "b" ~work:1. ~out:1. ])))

let test_skeleton_flattens () =
  let nested =
    Skeleton.(
      pipeline
        [
          pipeline [ stage "a" ~work:1. ~out:1.; stage "b" ~work:2. ~out:2. ];
          stage "c" ~work:3. ~out:3.;
        ])
  in
  Alcotest.(check int) "length" 3 (Skeleton.length nested);
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ]
    (List.map (fun (l, _, _) -> l) (Skeleton.stages nested))

let test_skeleton_pp_and_roundtrip () =
  let s = demo_skeleton () in
  Alcotest.(check string) "pp" "decode >> scale >> deal(encode) >> mux"
    (Format.asprintf "%a" Skeleton.pp s);
  let app = Skeleton.to_application ~input:0.8 s in
  let lifted = Skeleton.of_application app in
  let app' = Skeleton.to_application ~input:0.8 lifted in
  Alcotest.(check bool) "roundtrip" true (Application.equal app app')

let test_skeleton_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Skeleton.pipeline: empty pipeline")
    (fun () -> ignore (Skeleton.pipeline []))

(* ------------------------------------------------------------------ *)
(* Mapping_io                                                          *)
(* ------------------------------------------------------------------ *)

let test_mapping_io_to_string () =
  let m = Mapping.of_cuts ~n:6 ~cuts:[ 3; 4 ] ~procs:[ 2; 0; 1 ] in
  Alcotest.(check string) "compact" "1-3:2 4:0 5-6:1" (Mapping_io.to_string m)

let test_mapping_io_parse () =
  match Mapping_io.of_string "1-3:2 4:0 5-6:1" with
  | Error e -> Alcotest.fail e
  | Ok m ->
    Alcotest.(check int) "n" 6 (Mapping.n m);
    Alcotest.(check int) "m" 3 (Mapping.m m);
    Alcotest.(check int) "proc of 4" 0 (Mapping.proc_of_stage m 4)

let test_mapping_io_errors () =
  let is_error s = match Mapping_io.of_string s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "empty" true (is_error "");
  Alcotest.(check bool) "gap" true (is_error "1-2:0 4-5:1");
  Alcotest.(check bool) "dup proc" true (is_error "1-2:0 3-4:0");
  Alcotest.(check bool) "garbage" true (is_error "1..2:0");
  Alcotest.(check bool) "bad proc" true (is_error "1-2:x")

let prop_mapping_io_roundtrip =
  Helpers.qtest "mapping text roundtrip"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let rng = Pipeline_util.Rng.create (seed + 3) in
      let n = Application.n inst.Instance.app in
      let p = Platform.p inst.Instance.platform in
      let m = 1 + Pipeline_util.Rng.int rng (min n p) in
      let cuts =
        if m = 1 then []
        else begin
          let positions = Array.init (n - 1) (fun i -> i + 1) in
          Pipeline_util.Rng.shuffle rng positions;
          List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
        end
      in
      let procs =
        Array.to_list (Array.sub (Pipeline_util.Rng.permutation rng p) 0 m)
      in
      let mapping = Mapping.of_cuts ~n ~cuts ~procs in
      match Mapping_io.of_string (Mapping_io.to_string mapping) with
      | Ok back -> Mapping.equal mapping back
      | Error _ -> false)


(* ------------------------------------------------------------------ *)
(* Transform                                                           *)
(* ------------------------------------------------------------------ *)

let test_coarsen_shapes () =
  let app = Application.make ~deltas:[| 1.; 2.; 3.; 4.; 5.; 6. |] [| 10.; 20.; 30.; 40.; 50. |] in
  let coarse = Transform.coarsen ~factor:2 app in
  Alcotest.(check int) "groups" 3 (Application.n coarse);
  Helpers.check_float "g1 work" 30. (Application.work coarse 1);
  Helpers.check_float "g3 work (short tail)" 50. (Application.work coarse 3);
  Helpers.check_float "d0 kept" 1. (Application.delta coarse 0);
  Helpers.check_float "boundary delta" 3. (Application.delta coarse 1);
  Helpers.check_float "final delta" 6. (Application.delta coarse 3);
  Alcotest.(check string) "joined labels" "S1+S2" (Application.label coarse 1)

let prop_coarsen_preserves_metrics =
  (* Any mapping of the coarse app, lifted back, has identical period and
     latency on the original instance. *)
  Helpers.qtest ~count:60 "coarse mapping metrics = refined mapping metrics"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 1 4))
    (fun (seed, factor) ->
      let inst = Helpers.random_instance seed in
      let n = Application.n inst.Instance.app in
      let coarse_app = Transform.coarsen ~factor inst.Instance.app in
      let coarse_inst = Instance.make coarse_app inst.Instance.platform in
      let groups = Application.n coarse_app in
      let p = Platform.p inst.Instance.platform in
      let rng = Pipeline_util.Rng.create (seed + 11) in
      let m = 1 + Pipeline_util.Rng.int rng (min groups p) in
      let cuts =
        if m = 1 then []
        else begin
          let positions = Array.init (groups - 1) (fun i -> i + 1) in
          Pipeline_util.Rng.shuffle rng positions;
          List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
        end
      in
      let procs =
        Array.to_list (Array.sub (Pipeline_util.Rng.permutation rng p) 0 m)
      in
      let coarse_mapping = Mapping.of_cuts ~n:groups ~cuts ~procs in
      let refined = Transform.refine_mapping ~factor ~n coarse_mapping in
      let a = Metrics.summary coarse_app coarse_inst.Instance.platform coarse_mapping in
      let b = Metrics.summary inst.Instance.app inst.Instance.platform refined in
      Helpers.feq a.Metrics.period b.Metrics.period
      && Helpers.feq a.Metrics.latency b.Metrics.latency)

let test_coarse_solve_lifts () =
  let inst = Helpers.random_instance 909 in
  let solve (coarse : Instance.t) =
    Option.map
      (fun (s : Pipeline_core.Solution.t) -> s.Pipeline_core.Solution.mapping)
      (Pipeline_core.Sp_mono_p.solve coarse
         ~period:(Instance.single_proc_period coarse))
  in
  match Transform.coarse_solve ~factor:2 ~solve inst with
  | None -> Alcotest.fail "expected a lifted mapping"
  | Some mapping ->
    Alcotest.(check int) "covers all original stages"
      (Application.n inst.Instance.app)
      (Mapping.n mapping)

let test_refine_rejects_mismatch () =
  let mapping = Mapping.single ~n:2 ~proc:0 in
  Alcotest.(check bool) "wrong size" true
    (try
       ignore (Transform.refine_mapping ~factor:2 ~n:10 mapping);
       false
     with Invalid_argument _ -> true)

let test_scale () =
  let app = Helpers.small_app () in
  let scaled = Transform.scale ~work:2. ~data:0.5 app in
  Helpers.check_float "work doubled" 8. (Application.work scaled 1);
  Helpers.check_float "delta halved" 5. (Application.delta scaled 0);
  Alcotest.(check bool) "bad factor" true
    (try ignore (Transform.scale ~work:0. app); false
     with Invalid_argument _ -> true)

(* --- The metamorphic laws of Transform (DESIGN.md §13) --- *)

module Ureg = Pipeline_registry

let test_scale_rates_shapes () =
  let pl =
    Platform.fully_heterogeneous ~io_bandwidths:[| 4.; 6. |]
      ~bandwidths:[| [| 0.; 8. |]; [| 8.; 0. |] |]
      [| 2.; 3. |]
  in
  let scaled = Transform.scale_rates ~factor:2. pl in
  Helpers.check_float "speed" 4. (Platform.speed scaled 0);
  Helpers.check_float "link" 16. (Platform.bandwidth scaled 0 1);
  Helpers.check_float "io" 12. (Platform.io_bandwidth scaled 1);
  Alcotest.(check bool) "kind preserved" false
    (Platform.is_comm_homogeneous scaled);
  Alcotest.(check bool) "bad factor" true
    (try ignore (Transform.scale_rates ~factor:0. pl); false
     with Invalid_argument _ -> true)

let test_drop_comm_and_homogenise () =
  let app = Transform.drop_comm (Helpers.small_app ()) in
  Alcotest.(check int) "n kept" 4 (Application.n app);
  for k = 0 to 4 do
    Helpers.check_float "delta zero" 0. (Application.delta app k)
  done;
  Helpers.check_float "work kept" 8. (Application.work app 2);
  let pl =
    Transform.comm_homogenise ~bandwidth:10.
      (Platform.fully_heterogeneous
         ~bandwidths:[| [| 0.; 3. |]; [| 3.; 0. |] |]
         [| 2.; 5. |])
  in
  Alcotest.(check bool) "now comm-hom" true (Platform.is_comm_homogeneous pl);
  Helpers.check_float "speeds kept" 5. (Platform.speed pl 1)

(* Per registry row, a deterministic threshold of the row's kind. *)
let row_threshold (info : Ureg.info) (inst : Instance.t) =
  match info.Ureg.kind with
  | Pipeline_core.Registry.Period_fixed ->
    0.8 *. Instance.single_proc_period inst
  | Pipeline_core.Registry.Latency_fixed ->
    1.5 *. Instance.optimal_latency inst

let outcomes_equal ~factor (a : Ureg.outcome option) (b : Ureg.outcome option)
    =
  match (a, b) with
  | None, None -> true
  | Some a, Some b ->
    b.Ureg.period = a.Ureg.period /. factor
    && b.Ureg.latency = a.Ureg.latency /. factor
    && Deal_mapping.to_string b.Ureg.mapping
       = Deal_mapping.to_string a.Ureg.mapping
    && b.Ureg.failure = a.Ureg.failure
  | _ -> false

let prop_scale_rates_scales_every_row =
  (* Scaling every rate by 2^k scales every cost expression bit-exactly
     by 2^-k, so every registry row — all stacks — returns the same
     mapping with period and latency scaled exactly, at the scaled
     threshold. *)
  Helpers.qtest ~count:25 "rate scaling: every registry row scales exactly"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range (-3) 3))
    (fun (seed, k) ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:4 seed in
      let factor = 2. ** Float.of_int k in
      let scaled =
        Instance.make inst.Instance.app
          (Transform.scale_rates ~factor inst.Instance.platform)
      in
      List.for_all
        (fun (info : Ureg.info) ->
          let threshold = row_threshold info inst in
          outcomes_equal ~factor
            (info.Ureg.solve inst ~threshold)
            (info.Ureg.solve scaled ~threshold:(threshold /. factor)))
        Ureg.all)

let prop_scale_rates_scales_het_rows =
  (* The same law on fully heterogeneous platforms (the Het rows are
     the ones that accept them). *)
  Helpers.qtest ~count:25 "rate scaling: het rows scale exactly on het"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range (-3) 3))
    (fun (seed, k) ->
      let inst = Helpers.random_het_instance ~n_max:8 ~p_max:4 seed in
      let factor = 2. ** Float.of_int k in
      let scaled =
        Instance.make inst.Instance.app
          (Transform.scale_rates ~factor inst.Instance.platform)
      in
      List.for_all
        (fun (info : Ureg.info) ->
          let threshold = row_threshold info inst in
          outcomes_equal ~factor
            (info.Ureg.solve inst ~threshold)
            (info.Ureg.solve scaled ~threshold:(threshold /. factor)))
        Ureg.het)

let prop_drop_comm_collapses_to_comm_hom =
  (* With zero-size messages every comm term is exactly 0/b = 0, so the
     fully-het platform and any comm-homogenisation of it are the same
     cost model bit-for-bit. Checked three ways: (a) Metrics of a random
     mapping agree on the het twin and the hom twin; (b) the candidate
     sets coincide; (c) end-to-end, the het-capable registry rows return
     identical outcomes on both twins, and every registry row — all
     stacks — is bandwidth-independent on the hom twin (two different
     homogenisation bandwidths, bit-identical outcomes). *)
  Helpers.qtest ~count:20 "drop_comm: fully-het collapses to comm-hom"
    (QCheck2.Gen.int_range 0 100_000)
    (fun seed ->
      let inst0 = Helpers.random_het_instance ~n_max:7 ~p_max:4 seed in
      let app = Transform.drop_comm inst0.Instance.app in
      let het = Instance.make app inst0.Instance.platform in
      let hom b =
        Instance.make app
          (Transform.comm_homogenise ~bandwidth:b inst0.Instance.platform)
      in
      let hom10 = hom 10. and hom3 = hom 3. in
      let rng = Pipeline_util.Rng.create (seed + 23) in
      let n = Application.n app and p = Platform.p inst0.Instance.platform in
      let m = 1 + Pipeline_util.Rng.int rng (min n p) in
      let cuts =
        if m = 1 then []
        else begin
          let positions = Array.init (n - 1) (fun i -> i + 1) in
          Pipeline_util.Rng.shuffle rng positions;
          List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
        end
      in
      let procs =
        Array.to_list (Array.sub (Pipeline_util.Rng.permutation rng p) 0 m)
      in
      let mapping = Mapping.of_cuts ~n ~cuts ~procs in
      let summary (i : Instance.t) =
        Metrics.summary i.Instance.app i.Instance.platform mapping
      in
      let a = summary het and b = summary hom10 in
      let same_outcome (x : Ureg.outcome option) (y : Ureg.outcome option) =
        match (x, y) with
        | None, None -> true
        | Some x, Some y ->
          x.Ureg.period = y.Ureg.period
          && x.Ureg.latency = y.Ureg.latency
          && Deal_mapping.to_string x.Ureg.mapping
             = Deal_mapping.to_string y.Ureg.mapping
        | _ -> false
      in
      a.Metrics.period = b.Metrics.period
      && a.Metrics.latency = b.Metrics.latency
      && Candidates.periods (Cost.get het.Instance.app het.Instance.platform)
         = Candidates.periods
             (Cost.get hom10.Instance.app hom10.Instance.platform)
      && List.for_all
           (fun (info : Ureg.info) ->
             let threshold = row_threshold info het in
             same_outcome
               (info.Ureg.solve het ~threshold)
               (info.Ureg.solve hom10 ~threshold))
           Ureg.het
      && List.for_all
           (fun (info : Ureg.info) ->
             let threshold = row_threshold info hom10 in
             same_outcome
               (info.Ureg.solve hom10 ~threshold)
               (info.Ureg.solve hom3 ~threshold))
           Ureg.all)

(* ------------------------------------------------------------------ *)
(* Cost engine vs the pre-engine arithmetic                            *)
(* ------------------------------------------------------------------ *)

(* Reference implementations: verbatim copies of the metric code as it
   stood before the Cost engine (Metrics / Deal_metrics /
   Deal_reliability each computing equations (1)-(2) inline). The
   engine's contract is bit-identity, so every comparison below uses
   (=), never a tolerance. *)
module Ref = struct
  let in_bandwidth platform mapping j =
    if j = 0 then Platform.io_bandwidth platform (Mapping.proc mapping 0)
    else
      Platform.bandwidth platform
        (Mapping.proc mapping (j - 1))
        (Mapping.proc mapping j)

  let out_bandwidth platform mapping j =
    let m = Mapping.m mapping in
    if j = m - 1 then Platform.io_bandwidth platform (Mapping.proc mapping j)
    else
      Platform.bandwidth platform (Mapping.proc mapping j)
        (Mapping.proc mapping (j + 1))

  let cycle_time app platform mapping j =
    let iv = Mapping.interval mapping j in
    let u = Mapping.proc mapping j in
    let d = Interval.first iv and e = Interval.last iv in
    Application.delta app (d - 1) /. in_bandwidth platform mapping j
    +. (Application.work_sum app d e /. Platform.speed platform u)
    +. (Application.delta app e /. out_bandwidth platform mapping j)

  let period app platform mapping =
    let worst = ref neg_infinity in
    for j = 0 to Mapping.m mapping - 1 do
      worst := Float.max !worst (cycle_time app platform mapping j)
    done;
    !worst

  let latency app platform mapping =
    let m = Mapping.m mapping in
    let total = ref 0. in
    for j = 0 to m - 1 do
      let iv = Mapping.interval mapping j in
      let u = Mapping.proc mapping j in
      let d = Interval.first iv and e = Interval.last iv in
      total :=
        !total
        +. (Application.delta app (d - 1) /. in_bandwidth platform mapping j)
        +. (Application.work_sum app d e /. Platform.speed platform u)
    done;
    let n = Application.n app in
    !total +. (Application.delta app n /. out_bandwidth platform mapping (m - 1))

  let deal_cycle (inst : Instance.t) b mapping ~j ~u =
    let iv = Deal_mapping.interval mapping j in
    let d = Interval.first iv and e = Interval.last iv in
    (Application.delta inst.app (d - 1) /. b)
    +. (Application.work_sum inst.app d e /. Platform.speed inst.platform u)
    +. (Application.delta inst.app e /. b)

  let fold_intervals (inst : Instance.t) mapping f init =
    let b = Platform.io_bandwidth inst.platform 0 in
    let acc = ref init in
    for j = 0 to Deal_mapping.m mapping - 1 do
      let cycles =
        List.map
          (fun u -> deal_cycle inst b mapping ~j ~u)
          (Deal_mapping.replicas mapping j)
      in
      acc := f !acc j cycles
    done;
    !acc

  let deal_period inst mapping =
    fold_intervals inst mapping
      (fun acc j cycles ->
        let r = float_of_int (Deal_mapping.replication mapping j) in
        let worst = List.fold_left Float.max neg_infinity cycles in
        Float.max acc (worst /. r))
      neg_infinity

  let deal_period_weighted inst mapping =
    fold_intervals inst mapping
      (fun acc _j cycles ->
        let rate = List.fold_left (fun s c -> s +. (1. /. c)) 0. cycles in
        Float.max acc (1. /. rate))
      neg_infinity

  let deal_latency (inst : Instance.t) mapping =
    let b = Platform.io_bandwidth inst.platform 0 in
    let app = inst.app in
    let total =
      fold_intervals inst mapping
        (fun acc j cycles ->
          let iv = Deal_mapping.interval mapping j in
          let out = Application.delta app (Interval.last iv) /. b in
          let worst = List.fold_left Float.max neg_infinity cycles in
          acc +. (worst -. out))
        0.
    in
    total +. (Application.delta app (Application.n app) /. b)

  let failure rel deal =
    let survive_all = ref 1. in
    for j = 0 to Deal_mapping.m deal - 1 do
      survive_all :=
        !survive_all
        *. (1. -. Reliability.group_failure rel (Deal_mapping.replicas deal j))
    done;
    1. -. !survive_all
end

(* A random mapping of [inst] (1 to min(n,p) intervals). *)
let random_mapping rng (inst : Instance.t) =
  let n = Application.n inst.Instance.app in
  let p = Platform.p inst.Instance.platform in
  let m = 1 + Pipeline_util.Rng.int rng (min n p) in
  let cuts =
    if m = 1 then []
    else begin
      let positions = Array.init (n - 1) (fun i -> i + 1) in
      Pipeline_util.Rng.shuffle rng positions;
      List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
    end
  in
  let procs = Array.to_list (Array.sub (Pipeline_util.Rng.permutation rng p) 0 m) in
  Mapping.of_cuts ~n ~cuts ~procs

(* A random deal mapping: a random plain mapping with the spare
   processors dealt to random intervals as extra replicas. *)
let random_deal_mapping rng (inst : Instance.t) =
  let plain = random_mapping rng inst in
  let p = Platform.p inst.Instance.platform in
  let deal = ref (Deal_mapping.of_mapping plain) in
  for u = 0 to p - 1 do
    if (not (Mapping.uses plain u)) && Pipeline_util.Rng.int rng 2 = 0 then
      deal :=
        Deal_mapping.replicate !deal
          ~j:(Pipeline_util.Rng.int rng (Mapping.m plain))
          ~proc:u
  done;
  !deal

(* One random instance per platform kind: comm-homogeneous, fully
   homogeneous, fully heterogeneous. *)
let cost_instance kind_choice seed =
  let rng = Pipeline_util.Rng.create seed in
  match kind_choice mod 3 with
  | 0 -> Helpers.random_instance seed
  | 1 ->
    let n = 1 + Pipeline_util.Rng.int rng 10 in
    let p = 1 + Pipeline_util.Rng.int rng 6 in
    let works =
      Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
    in
    let deltas =
      Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
    in
    let app = Application.make ~deltas works in
    let platform = Platform.fully_homogeneous ~speed:3. ~bandwidth:7. p in
    Instance.make ~seed app platform
  | _ ->
    let n = 1 + Pipeline_util.Rng.int rng 10 in
    let p = 1 + Pipeline_util.Rng.int rng 6 in
    let works =
      Array.init n (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 1 20))
    in
    let deltas =
      Array.init (n + 1) (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 30))
    in
    let app = Application.make ~deltas works in
    let platform = Platform_generator.fully_heterogeneous rng ~p in
    Instance.make ~seed app platform

let prop_cost_plain_matches_reference =
  Helpers.qtest ~count:200 "Cost == pre-engine Metrics, bitwise, all platform kinds"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, kind_choice) ->
      let inst = cost_instance kind_choice seed in
      let app = inst.Instance.app and platform = inst.Instance.platform in
      let rng = Pipeline_util.Rng.create (seed + 23) in
      let mapping = random_mapping rng inst in
      let check (cost : Cost.t) =
        Cost.period cost mapping = Ref.period app platform mapping
        && Cost.latency cost mapping = Ref.latency app platform mapping
        && (let s = Cost.summary cost mapping in
            s.Cost.period = Ref.period app platform mapping
            && s.Cost.latency = Ref.latency app platform mapping
            && s.Cost.intervals = Mapping.m mapping)
        && List.for_all
             (fun j ->
               Cost.cycle_time cost mapping j
               = Ref.cycle_time app platform mapping j)
             (List.init (Mapping.m mapping) Fun.id)
      in
      (* Memoised, shared, and memo-free engines must all reproduce the
         reference bits. *)
      check (Cost.make app platform)
      && check (Cost.get app platform)
      && check (Cost.make ~memo:false app platform))

let prop_cost_tables_bit_identical =
  (* The O(n + p) flat layout (work-sum prefix differences, din/dout
     tables, lazy cycle memo) vs a memo-free engine, on every (d, e, u)
     triple and every platform kind. Each cycle is read twice so both
     the miss and the hit path are compared. *)
  Helpers.qtest ~count:100 "flat tables = direct evaluation on every (d,e,u)"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 2))
    (fun (seed, kind_choice) ->
      let inst = cost_instance kind_choice seed in
      let app = inst.Instance.app and platform = inst.Instance.platform in
      let cost = Cost.make app platform in
      let direct = Cost.make ~memo:false app platform in
      let n = Application.n app and p = Platform.p platform in
      let comm_hom = Platform.is_comm_homogeneous platform in
      let ok = ref true in
      for d = 1 to n do
        if comm_hom then begin
          ok := !ok && Cost.din cost ~d = Cost.din direct ~d;
          ok := !ok && Cost.dout cost ~e:d = Cost.dout direct ~e:d
        end;
        for e = d to n do
          ok := !ok && Cost.work_sum cost ~d ~e = Application.work_sum app d e;
          if comm_hom then
            for u = 0 to p - 1 do
              ok :=
                !ok
                && Cost.cycle cost ~d ~e ~u = Cost.cycle direct ~d ~e ~u
                && Cost.cycle cost ~d ~e ~u = Cost.cycle direct ~d ~e ~u
                && Cost.compute cost ~d ~e ~u = Cost.compute direct ~d ~e ~u
                && Cost.contrib cost ~d ~e ~u = Cost.contrib direct ~d ~e ~u
            done
        done
      done;
      !ok)

let prop_cost_deal_matches_reference =
  Helpers.qtest ~count:200 "Cost deal layer == pre-engine Deal_metrics, bitwise"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let inst = Helpers.random_instance seed in
      let rng = Pipeline_util.Rng.create (seed + 29) in
      let deal = random_deal_mapping rng inst in
      let check (cost : Cost.t) =
        Cost.deal_period cost deal = Ref.deal_period inst deal
        && Cost.deal_period_weighted cost deal
           = Ref.deal_period_weighted inst deal
        && Cost.deal_latency cost deal = Ref.deal_latency inst deal
        &&
        let s = Cost.deal_summary cost deal in
        s.Cost.period = Ref.deal_period inst deal
        && s.Cost.latency = Ref.deal_latency inst deal
      in
      check (Cost.get inst.Instance.app inst.Instance.platform)
      && check (Cost.make ~memo:false inst.Instance.app inst.Instance.platform))

let prop_cost_failure_matches_reference =
  Helpers.qtest ~count:200 "Cost reliability layer == pre-engine Deal_reliability"
    QCheck2.Gen.(pair (int_range 0 100_000) (float_range 0.01 0.5))
    (fun (seed, prob) ->
      let inst = Helpers.random_instance seed in
      let rng = Pipeline_util.Rng.create (seed + 31) in
      let deal = random_deal_mapping rng inst in
      let rel = Reliability.uniform ~p:(Platform.p inst.Instance.platform) prob in
      Cost.failure rel deal = Ref.failure rel deal
      && List.for_all
           (fun j ->
             Cost.interval_failure rel deal ~j
             = Reliability.group_failure rel (Deal_mapping.replicas deal j))
           (List.init (Deal_mapping.m deal) Fun.id))

let () =
  Alcotest.run "model"
    [
      ( "application",
        [
          Alcotest.test_case "basics" `Quick test_app_basic;
          Alcotest.test_case "work_sum" `Quick test_app_work_sum;
          Alcotest.test_case "bad shapes" `Quick test_app_bad_shapes;
          Alcotest.test_case "rejects negative" `Quick test_app_rejects_negative;
          Alcotest.test_case "rejects nan" `Quick test_app_rejects_nan;
          Alcotest.test_case "uniform" `Quick test_app_uniform;
          Alcotest.test_case "of_stages" `Quick test_app_of_stages;
          Alcotest.test_case "labels" `Quick test_app_labels;
          Alcotest.test_case "out of range" `Quick test_app_out_of_range;
          Alcotest.test_case "defensive copies" `Quick test_app_copies_arrays;
          Alcotest.test_case "equal" `Quick test_app_equal;
          prop_work_sum_matches_naive;
        ] );
      ( "platform",
        [
          Alcotest.test_case "comm hom" `Quick test_platform_comm_hom;
          Alcotest.test_case "self bandwidth" `Quick
            test_platform_self_bandwidth_infinite;
          Alcotest.test_case "fully hom" `Quick test_platform_fully_homogeneous;
          Alcotest.test_case "fastest/order" `Quick test_platform_fastest_and_order;
          Alcotest.test_case "fully het" `Quick test_platform_het;
          Alcotest.test_case "asymmetric rejected" `Quick
            test_platform_het_asymmetric_rejected;
          Alcotest.test_case "bad speed" `Quick test_platform_rejects_bad_speed;
          Alcotest.test_case "custom io" `Quick test_platform_custom_io;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "bad" `Quick test_interval_bad;
          Alcotest.test_case "split" `Quick test_interval_split;
          Alcotest.test_case "split bad" `Quick test_interval_split_bad;
          Alcotest.test_case "partition_of" `Quick test_interval_partition_of;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "make" `Quick test_mapping_make;
          Alcotest.test_case "bad partition" `Quick test_mapping_rejects_bad_partition;
          Alcotest.test_case "duplicate proc" `Quick test_mapping_rejects_duplicate_proc;
          Alcotest.test_case "single / one-to-one" `Quick
            test_mapping_single_and_one_to_one;
          Alcotest.test_case "of_cuts" `Quick test_mapping_of_cuts;
          Alcotest.test_case "replace" `Quick test_mapping_replace;
          Alcotest.test_case "replace bad tiling" `Quick test_mapping_replace_bad_tiling;
          Alcotest.test_case "interval_of_proc" `Quick test_mapping_interval_of_proc;
          Alcotest.test_case "valid_on" `Quick test_mapping_valid_on;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "single proc" `Quick test_metrics_single_proc;
          Alcotest.test_case "two intervals" `Quick test_metrics_two_intervals;
          Alcotest.test_case "summary" `Quick test_metrics_summary_consistent;
          Alcotest.test_case "heterogeneous links" `Quick test_metrics_het_uses_links;
          Alcotest.test_case "mismatch rejected" `Quick test_metrics_rejects_mismatch;
          Alcotest.test_case "zero deltas" `Quick test_metrics_zero_deltas;
          prop_one_interval_period_equals_latency;
          prop_period_at_most_latency_for_two_intervals;
        ] );
      ( "instance-io",
        [
          Alcotest.test_case "parse" `Quick test_io_parse;
          Alcotest.test_case "roundtrip comm-hom" `Quick test_io_roundtrip_comm_hom;
          Alcotest.test_case "roundtrip het" `Quick test_io_roundtrip_het;
          Alcotest.test_case "reports line" `Quick test_io_reports_line;
          Alcotest.test_case "unknown key" `Quick test_io_unknown_key;
          Alcotest.test_case "missing sections" `Quick test_io_missing_sections;
          Alcotest.test_case "het missing link" `Quick test_io_het_missing_link;
          Alcotest.test_case "shape mismatch" `Quick test_io_shape_mismatch;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "missing file" `Quick test_io_load_missing_file;
          Alcotest.test_case "garbage and truncated files" `Quick
            test_io_garbage_and_truncated_files;
          prop_io_roundtrip_random;
        ] );
      ( "transform",
        [
          Alcotest.test_case "coarsen shapes" `Quick test_coarsen_shapes;
          prop_coarsen_preserves_metrics;
          Alcotest.test_case "coarse_solve lifts" `Quick test_coarse_solve_lifts;
          Alcotest.test_case "refine mismatch" `Quick test_refine_rejects_mismatch;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "scale_rates shapes" `Quick test_scale_rates_shapes;
          Alcotest.test_case "drop_comm / comm_homogenise" `Quick
            test_drop_comm_and_homogenise;
          prop_scale_rates_scales_every_row;
          prop_scale_rates_scales_het_rows;
          prop_drop_comm_collapses_to_comm_hom;
        ] );
      ( "skeleton",
        [
          Alcotest.test_case "compiles" `Quick test_skeleton_compiles;
          Alcotest.test_case "deal stages" `Quick test_skeleton_deal_stages;
          Alcotest.test_case "flattens" `Quick test_skeleton_flattens;
          Alcotest.test_case "pp/roundtrip" `Quick test_skeleton_pp_and_roundtrip;
          Alcotest.test_case "empty rejected" `Quick test_skeleton_empty_rejected;
        ] );
      ( "mapping-io",
        [
          Alcotest.test_case "to_string" `Quick test_mapping_io_to_string;
          Alcotest.test_case "parse" `Quick test_mapping_io_parse;
          Alcotest.test_case "errors" `Quick test_mapping_io_errors;
          Alcotest.test_case "garbage tokens" `Quick test_mapping_io_garbage;
          prop_mapping_io_roundtrip;
        ] );
      ( "generators",
        [
          Alcotest.test_case "E1" `Quick test_app_generator_e1;
          Alcotest.test_case "E2 ranges" `Quick test_app_generator_e2_ranges;
          Alcotest.test_case "E3 ranges" `Quick test_app_generator_e3_ranges;
          Alcotest.test_case "E4 fractional" `Quick test_app_generator_e4_fractional;
          Alcotest.test_case "E6 web scale" `Quick test_app_generator_e6;
          Alcotest.test_case "platform web scale" `Quick
            test_platform_generator_web_scale;
          Alcotest.test_case "platform ranges" `Quick test_platform_generator_ranges;
          Alcotest.test_case "platform het" `Quick test_platform_generator_het;
          Alcotest.test_case "instance helpers" `Quick test_instance_helpers;
        ] );
      ( "cost-engine",
        [
          prop_cost_plain_matches_reference;
          prop_cost_tables_bit_identical;
          prop_cost_deal_matches_reference;
          prop_cost_failure_matches_reference;
        ] );
    ]

open Chains

let gen_chain = QCheck2.Gen.(list_size (int_range 1 25) (float_range 0. 20.))

(* ------------------------------------------------------------------ *)
(* Prefix                                                              *)
(* ------------------------------------------------------------------ *)

let test_prefix_sums () =
  let p = Prefix.make [| 1.; 2.; 3.; 4. |] in
  Alcotest.(check int) "n" 4 (Prefix.n p);
  Helpers.check_float "element" 3. (Prefix.element p 3);
  Helpers.check_float "sum all" 10. (Prefix.sum p 1 4);
  Helpers.check_float "sum mid" 5. (Prefix.sum p 2 3);
  Helpers.check_float "empty" 0. (Prefix.sum p 3 2);
  Helpers.check_float "total" 10. (Prefix.total p);
  Helpers.check_float "max element" 4. (Prefix.max_element p)

let test_prefix_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Prefix.make: empty chain")
    (fun () -> ignore (Prefix.make [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Prefix.make: elements must be finite and >= 0") (fun () ->
      ignore (Prefix.make [| 1.; -2. |]))

let test_longest_fitting () =
  let p = Prefix.make [| 3.; 1.; 4.; 1.; 5. |] in
  Alcotest.(check int) "budget 4 from 1: [3,1]" 2
    (Prefix.longest_fitting p ~from:1 ~budget:4.);
  Alcotest.(check int) "budget 2 from 1: nothing" 0
    (Prefix.longest_fitting p ~from:1 ~budget:2.);
  Alcotest.(check int) "budget 100 from 2: rest" 5
    (Prefix.longest_fitting p ~from:2 ~budget:100.);
  Alcotest.(check int) "exact fit" 3 (Prefix.longest_fitting p ~from:1 ~budget:8.)

let test_longest_fitting_zeros () =
  let p = Prefix.make [| 0.; 0.; 5. |] in
  Alcotest.(check int) "zeros fit in zero budget" 2
    (Prefix.longest_fitting p ~from:1 ~budget:0.)

let prop_longest_fitting_correct =
  Helpers.qtest "longest_fitting is maximal and fits"
    QCheck2.Gen.(pair gen_chain (float_range 0. 50.))
    (fun (xs, budget) ->
      let a = Array.of_list xs in
      let p = Prefix.make a in
      let e = Prefix.longest_fitting p ~from:1 ~budget in
      let fits = e = 0 || Prefix.sum p 1 e <= budget +. 1e-9 in
      let maximal = e = Prefix.n p || Prefix.sum p 1 (e + 1) > budget -. 1e-9 in
      fits && maximal)

(* ------------------------------------------------------------------ *)
(* Partition                                                           *)
(* ------------------------------------------------------------------ *)

let test_partition_of_cuts () =
  let part = Partition.of_cuts ~n:5 [ 2; 3 ] in
  Alcotest.(check int) "size" 3 (Partition.size part);
  Alcotest.(check bool) "valid" true (Partition.is_valid ~n:5 part);
  Alcotest.(check (list int)) "cuts roundtrip" [ 2; 3 ] (Partition.cuts part)

let test_partition_loads () =
  let p = Prefix.make [| 1.; 2.; 3.; 4. |] in
  let part = Partition.of_cuts ~n:4 [ 2 ] in
  Alcotest.(check (array (float 1e-9))) "loads" [| 3.; 7. |] (Partition.loads p part);
  Helpers.check_float "bottleneck" 7. (Partition.bottleneck p part);
  Helpers.check_float "weighted" 3.5
    (Partition.weighted_bottleneck p ~speeds:[| 1.; 2. |] part)

let test_partition_bad_cut () =
  Alcotest.check_raises "cut = n" (Invalid_argument "Partition.of_cuts: bad cut")
    (fun () -> ignore (Partition.of_cuts ~n:3 [ 3 ]))

(* ------------------------------------------------------------------ *)
(* Probe                                                               *)
(* ------------------------------------------------------------------ *)

let test_probe_feasible () =
  let p = Prefix.make [| 2.; 2.; 2.; 2. |] in
  Alcotest.(check bool) "4 in 2 parts of 4" true (Probe.feasible p ~p:2 ~bound:4.);
  Alcotest.(check bool) "4 in 2 parts of 3" false (Probe.feasible p ~p:2 ~bound:3.);
  Alcotest.(check bool) "single big element" false (Probe.feasible p ~p:4 ~bound:1.)

let test_probe_partition_witness () =
  let p = Prefix.make [| 2.; 2.; 2.; 2. |] in
  match Probe.partition p ~p:2 ~bound:4. with
  | None -> Alcotest.fail "expected partition"
  | Some part ->
    Alcotest.(check bool) "valid" true (Partition.is_valid ~n:4 part);
    Alcotest.(check bool) "meets bound" true (Partition.bottleneck p part <= 4.)

let test_probe_min_intervals () =
  let p = Prefix.make [| 2.; 2.; 2.; 2. |] in
  Alcotest.(check (option int)) "needs 2" (Some 2) (Probe.min_intervals p ~bound:4.);
  Alcotest.(check (option int)) "needs 4" (Some 4) (Probe.min_intervals p ~bound:2.);
  Alcotest.(check (option int)) "impossible" None (Probe.min_intervals p ~bound:1.)

let prop_max_from_equals_linear_scan =
  (* The O(1) suffix-max table vs rescanning the tail: Float.max over
     finite non-negative elements selects the same value whatever the
     fold order, so equality is exact. *)
  Helpers.qtest "max_from = linear tail scan, bitwise" gen_chain (fun xs ->
      let a = Array.of_list xs in
      let p = Prefix.make a in
      let n = Prefix.n p in
      let ok = ref true in
      for k = 1 to n do
        let m = ref 0. in
        for i = k to n do
          m := Float.max !m (Prefix.element p i)
        done;
        ok := !ok && Prefix.max_from p k = !m
      done;
      !ok)

let prop_capped_probe_equals_uncapped =
  (* The O(cap log n) early-abort walk is observably identical to the
     pre-rewrite probe, which counted all intervals and compared after
     the fact. *)
  Helpers.qtest "capped min_intervals = uncapped, then compared"
    QCheck2.Gen.(triple gen_chain (int_range 1 8) (float_range 0. 60.))
    (fun (xs, cap, bound) ->
      let prefix = Prefix.make (Array.of_list xs) in
      let capped = Probe.min_intervals ~cap prefix ~bound in
      match Probe.min_intervals prefix ~bound with
      | None -> capped = None
      | Some k -> capped = if k <= cap then Some k else None)

let prop_feasible_agrees_with_min_intervals =
  Helpers.qtest "feasible p <=> min_intervals <= p"
    QCheck2.Gen.(triple gen_chain (int_range 1 8) (float_range 0. 60.))
    (fun (xs, p, bound) ->
      let prefix = Prefix.make (Array.of_list xs) in
      Probe.feasible prefix ~p ~bound
      = (match Probe.min_intervals prefix ~bound with
        | Some k -> k <= p
        | None -> false))

let prop_probe_consistent_with_dp =
  Helpers.qtest "probe feasibility agrees with DP optimum"
    QCheck2.Gen.(pair gen_chain (int_range 1 6))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let opt, _ = Dp.solve a ~p in
      let prefix = Prefix.make a in
      Probe.feasible prefix ~p ~bound:opt
      && ((not (Probe.feasible prefix ~p ~bound:(opt *. 0.99 -. 1e-6)))
         || opt = 0.))

(* ------------------------------------------------------------------ *)
(* Dp / Exact equivalence and optimality                                *)
(* ------------------------------------------------------------------ *)

let test_dp_known_instance () =
  (* [1,2,3,4,5] in 3 parts: optimal bottleneck 6 = [1,2,3][4][5] or
     [1,2,3][4,5]... loads: 6,4,5 -> 6. *)
  let opt, part = Dp.solve [| 1.; 2.; 3.; 4.; 5. |] ~p:3 in
  Helpers.check_float "optimum" 6. opt;
  Alcotest.(check bool) "valid" true (Partition.is_valid ~n:5 part);
  let prefix = Prefix.make [| 1.; 2.; 3.; 4.; 5. |] in
  Helpers.check_float "achieved" 6. (Partition.bottleneck prefix part)

let test_dp_single_interval () =
  let opt, part = Dp.solve [| 5.; 5. |] ~p:1 in
  Helpers.check_float "total" 10. opt;
  Alcotest.(check int) "one interval" 1 (Partition.size part)

let test_dp_more_procs_than_elements () =
  let opt, part = Dp.solve [| 4.; 7.; 2. |] ~p:10 in
  Helpers.check_float "max element" 7. opt;
  Alcotest.(check int) "three intervals" 3 (Partition.size part)

let test_exact_known_instance () =
  let opt, _ = Exact.solve [| 1.; 2.; 3.; 4.; 5. |] ~p:3 in
  Helpers.check_float "optimum" 6. opt

let prop_dp_equals_exact =
  Helpers.qtest "DP and parametric search agree"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let dp_opt, dp_part = Dp.solve a ~p in
      let ex_opt, ex_part = Exact.solve a ~p in
      let prefix = Prefix.make a in
      Helpers.feq ~eps:1e-9 dp_opt ex_opt
      && Partition.is_valid ~n:(Array.length a) dp_part
      && Partition.is_valid ~n:(Array.length a) ex_part
      && Helpers.feq (Partition.bottleneck prefix dp_part) dp_opt
      && Partition.bottleneck prefix ex_part <= ex_opt +. 1e-9)

let prop_nicol_equals_dp =
  Helpers.qtest "Nicol's algorithm agrees with the DP"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let dp_opt, _ = Dp.solve a ~p in
      let ni_opt, ni_part = Nicol.solve a ~p in
      let prefix = Prefix.make a in
      Helpers.feq ~eps:1e-9 dp_opt ni_opt
      && Partition.is_valid ~n ni_part
      && Partition.size ni_part <= p
      && Partition.bottleneck prefix ni_part <= ni_opt +. 1e-9)

let test_nicol_known () =
  let opt, _ = Nicol.solve [| 1.; 2.; 3.; 4.; 5. |] ~p:3 in
  Helpers.check_float "optimum" 6. opt

let prop_dp_respects_interval_budget =
  Helpers.qtest "DP uses at most p intervals"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let _, part = Dp.solve a ~p in
      Partition.size part <= p)

let prop_heuristics_dominated_by_optimal =
  Helpers.qtest "greedy/bisection >= optimal bottleneck"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let prefix = Prefix.make a in
      let opt, _ = Dp.solve a ~p in
      let greedy = Heuristic.greedy_target a ~p in
      let bisect = Heuristic.recursive_bisection a ~p in
      Partition.is_valid ~n greedy
      && Partition.is_valid ~n bisect
      && Partition.size greedy <= p
      && Partition.size bisect <= p
      && Partition.bottleneck prefix greedy >= opt -. 1e-9
      && Partition.bottleneck prefix bisect >= opt -. 1e-9)

let test_candidates_sorted_unique () =
  let prefix = Prefix.make [| 2.; 2.; 3. |] in
  let c = Exact.candidates prefix in
  (* interval sums: 2,2,3,4,5,7 -> dedup {2,3,4,5,7} *)
  Alcotest.(check (array (float 1e-9))) "candidates" [| 2.; 3.; 4.; 5.; 7. |] c

(* ------------------------------------------------------------------ *)
(* Hetero                                                              *)
(* ------------------------------------------------------------------ *)

let gen_hetero =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 10) (float_range 0.5 20.))
      (list_size (int_range 1 5) (float_range 1. 10.)))

let test_hetero_exact_known () =
  (* tasks [6,6], speeds [2,1]: best = [6][6] with speeds (2,1)? loads
     3 and 6 -> 6; speeds (1,2): 6 and 3 -> 6; single interval on 2: 6.
     optimum 6. *)
  let sol = Hetero.exact_dp [| 6.; 6. |] ~speeds:[| 2.; 1. |] in
  Helpers.check_float "optimum" 6. sol.Hetero.bottleneck

let test_hetero_exact_prefers_matching_speeds () =
  (* tasks [8,1,1], speeds [8,2]: [8] on 8 (load 1), [1,1] on 2 (load 1)
     -> optimum 1. *)
  let sol = Hetero.exact_dp [| 8.; 1.; 1. |] ~speeds:[| 8.; 2. |] in
  Helpers.check_float "perfect balance" 1. sol.Hetero.bottleneck;
  Alcotest.(check bool) "valid" true
    (Hetero.is_valid ~n:3 ~speeds:[| 8.; 2. |] sol)

let prop_hetero_exact_matches_exhaustive =
  Helpers.qtest ~count:40 "subset DP = exhaustive (via Theorem-2 bridge)"
    gen_hetero
    (fun (tasks, speeds) ->
      let a = Array.of_list tasks and s = Array.of_list speeds in
      let sol = Hetero.exact_dp a ~speeds:s in
      let inst = To_mapping.instance_of_hetero a ~speeds:s in
      let best = Pipeline_optimal.Exhaustive.min_period inst in
      Helpers.feq ~eps:1e-9 sol.Hetero.bottleneck
        best.Pipeline_core.Solution.period
      && Hetero.is_valid ~n:(Array.length a) ~speeds:s sol
      && Helpers.feq (Hetero.objective a ~speeds:s sol) sol.Hetero.bottleneck)

let prop_hetero_decision_consistent =
  Helpers.qtest ~count:40 "decision agrees with the optimum" gen_hetero
    (fun (tasks, speeds) ->
      let a = Array.of_list tasks and s = Array.of_list speeds in
      let opt = (Hetero.exact_dp a ~speeds:s).Hetero.bottleneck in
      let yes = Hetero.decision a ~speeds:s ~bound:opt in
      let no = Hetero.decision a ~speeds:s ~bound:(opt /. 2. -. 1e-6) in
      (match yes with
      | Some sol -> sol.Hetero.bottleneck <= opt +. 1e-9
      | None -> false)
      && (no = None || opt <= 0.))

let prop_hetero_greedy_sound =
  Helpers.qtest "greedy solutions are valid and meet their bound"
    QCheck2.Gen.(pair gen_hetero (float_range 0.1 50.))
    (fun ((tasks, speeds), bound) ->
      let a = Array.of_list tasks and s = Array.of_list speeds in
      match Hetero.greedy a ~speeds:s ~bound with
      | None -> true
      | Some sol ->
        Hetero.is_valid ~n:(Array.length a) ~speeds:s sol
        && sol.Hetero.bottleneck <= bound +. 1e-9)

let prop_hetero_binary_search_sound =
  Helpers.qtest "binary-search greedy is valid and >= optimum" gen_hetero
    (fun (tasks, speeds) ->
      let a = Array.of_list tasks and s = Array.of_list speeds in
      let sol = Hetero.binary_search_greedy a ~speeds:s in
      let opt = (Hetero.exact_dp a ~speeds:s).Hetero.bottleneck in
      Hetero.is_valid ~n:(Array.length a) ~speeds:s sol
      && sol.Hetero.bottleneck >= opt -. 1e-9
      && Helpers.feq (Hetero.objective a ~speeds:s sol) sol.Hetero.bottleneck)

let test_hetero_rejects_large_p () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Hetero.exact_dp [| 1. |] ~speeds:(Array.make 17 1.));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Reduction (Theorem 1 gadget)                                        *)
(* ------------------------------------------------------------------ *)

let sat_instance () =
  Reduction.make_nmwts ~xs:[| 1; 2 |] ~ys:[| 3; 4 |] ~zs:[| 5; 5 |]

let unsat_instance () =
  (* Balanced sums but no matching: 0 + {1,3} can never give {2,2}. *)
  Reduction.make_nmwts ~xs:[| 0; 0 |] ~ys:[| 1; 3 |] ~zs:[| 2; 2 |]

let test_nmwts_verify () =
  let t = sat_instance () in
  Alcotest.(check bool) "valid matching" true
    (Reduction.verify_matching t ~sigma1:[| 1; 0 |] ~sigma2:[| 0; 1 |]);
  Alcotest.(check bool) "invalid matching" false
    (Reduction.verify_matching t ~sigma1:[| 0; 1 |] ~sigma2:[| 0; 1 |]);
  Alcotest.(check bool) "not a permutation" false
    (Reduction.verify_matching t ~sigma1:[| 0; 0 |] ~sigma2:[| 0; 1 |])

let test_nmwts_brute () =
  (match Reduction.solve_nmwts_brute (sat_instance ()) with
  | Some (s1, s2) ->
    Alcotest.(check bool) "verified" true
      (Reduction.verify_matching (sat_instance ()) ~sigma1:s1 ~sigma2:s2)
  | None -> Alcotest.fail "satisfiable instance not solved");
  Alcotest.(check bool) "unsat" true
    (Reduction.solve_nmwts_brute (unsat_instance ()) = None)

let test_gadget_shape () =
  let t = sat_instance () in
  let tasks, speeds = Reduction.instance t in
  let m = Reduction.m_of t and bigm = Reduction.big_m t in
  Alcotest.(check int) "m" 2 m;
  Alcotest.(check int) "M" 5 bigm;
  Alcotest.(check int) "n = (M+3)m" ((bigm + 3) * m) (Array.length tasks);
  Alcotest.(check int) "p = 3m" (3 * m) (Array.length speeds);
  (* Spot checks from the proof: A_1 = B + x_1 = 11, C = 25, D = 35. *)
  Helpers.check_float "A1" 11. tasks.(0);
  Helpers.check_float "C" 25. tasks.(bigm + 1);
  Helpers.check_float "D" 35. tasks.(bigm + 2);
  Helpers.check_float "s1 = B + z1" 15. speeds.(0);
  Helpers.check_float "s_{m+1} = C + M - y1" 27. speeds.(m);
  Helpers.check_float "s_{2m+1} = D" 35. speeds.(2 * m)

let test_reduction_forward () =
  (* A matching gives a bottleneck-1 solution (proof, forward direction). *)
  let t = sat_instance () in
  let sol = Reduction.solution_of_matching t ~sigma1:[| 1; 0 |] ~sigma2:[| 0; 1 |] in
  let tasks, speeds = Reduction.instance t in
  Alcotest.(check bool) "valid" true
    (Hetero.is_valid ~n:(Array.length tasks) ~speeds sol);
  Helpers.check_float "bottleneck exactly 1" 1. sol.Hetero.bottleneck

let test_reduction_backward () =
  (* The optimal solution of the gadget has bottleneck 1 and a matching
     can be extracted from it (proof, converse direction). *)
  let t = sat_instance () in
  let tasks, speeds = Reduction.instance t in
  let sol = Hetero.exact_dp tasks ~speeds in
  Helpers.check_float "optimum is 1" 1. sol.Hetero.bottleneck;
  match Reduction.extract_matching t sol with
  | None -> Alcotest.fail "no matching extracted from a bottleneck-1 solution"
  | Some (s1, s2) ->
    Alcotest.(check bool) "verified" true
      (Reduction.verify_matching t ~sigma1:s1 ~sigma2:s2)

let test_reduction_unsat_gadget () =
  (* Unsatisfiable NMWTS -> the gadget optimum exceeds K = 1. *)
  let t = unsat_instance () in
  let tasks, speeds = Reduction.instance t in
  let sol = Hetero.exact_dp tasks ~speeds in
  Alcotest.(check bool) "bottleneck > 1" true (sol.Hetero.bottleneck > 1. +. 1e-9);
  Alcotest.(check bool) "no matching extracted" true
    (Reduction.extract_matching t sol = None)

let test_reduction_rejects_bad_shapes () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Reduction.make_nmwts: xs, ys, zs must share their length")
    (fun () -> ignore (Reduction.make_nmwts ~xs:[| 1 |] ~ys:[| 1; 2 |] ~zs:[| 1 |]))

(* ------------------------------------------------------------------ *)
(* To_mapping (Theorem 2 bridge)                                       *)
(* ------------------------------------------------------------------ *)

let test_to_mapping_period_equals_bottleneck () =
  let a = [| 3.; 5.; 2. |] and speeds = [| 2.; 1. |] in
  let inst = To_mapping.instance_of_hetero a ~speeds in
  let sol = Hetero.exact_dp a ~speeds in
  let mapping = To_mapping.mapping_of_solution sol in
  let period =
    Pipeline_model.Metrics.period inst.Pipeline_model.Instance.app
      inst.Pipeline_model.Instance.platform mapping
  in
  Helpers.check_float "period = weighted bottleneck" sol.Hetero.bottleneck period

let prop_to_mapping_roundtrip =
  Helpers.qtest ~count:40 "solution -> mapping -> solution roundtrip" gen_hetero
    (fun (tasks, speeds) ->
      let a = Array.of_list tasks and s = Array.of_list speeds in
      let sol = Hetero.exact_dp a ~speeds:s in
      let mapping = To_mapping.mapping_of_solution sol in
      let prefix = Prefix.make a in
      let back = To_mapping.solution_of_mapping prefix ~speeds:s mapping in
      Helpers.feq back.Hetero.bottleneck sol.Hetero.bottleneck
      && back.Hetero.assignment = sol.Hetero.assignment)


(* ------------------------------------------------------------------ *)
(* Bounds / Approx                                                     *)
(* ------------------------------------------------------------------ *)

let prop_bounds_bracket_optimum =
  Helpers.qtest "lower <= optimum <= upper <= 2 lower"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let prefix = Prefix.make a in
      let lo, hi = Bounds.span prefix ~p in
      let opt, _ = Dp.solve a ~p in
      lo <= opt +. 1e-9 && opt <= hi +. 1e-9 && hi <= (2. *. lo) +. 1e-9)

let prop_approx_within_epsilon =
  Helpers.qtest "bisection is (1+eps)-optimal"
    QCheck2.Gen.(pair gen_chain (int_range 1 8))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let n = Array.length a in
      let epsilon = 1e-6 in
      let approx, partition = Approx.solve ~epsilon a ~p in
      let opt, _ = Dp.solve a ~p in
      Partition.is_valid ~n partition
      && Partition.size partition <= p
      && approx >= opt -. 1e-9
      && approx <= (opt *. (1. +. epsilon)) +. 1e-6)

let test_approx_rejects_bad_epsilon () =
  Alcotest.check_raises "epsilon 0" (Invalid_argument "Approx.solve: epsilon must be > 0")
    (fun () -> ignore (Approx.solve ~epsilon:0. [| 1. |] ~p:1))

let test_bounds_known () =
  let prefix = Prefix.make [| 4.; 4.; 4.; 4. |] in
  Helpers.check_float "lower = total/p" 8. (Bounds.lower prefix ~p:2);
  let _, hi = Bounds.span prefix ~p:2 in
  Alcotest.(check bool) "upper feasible bound" true (hi >= 8. && hi <= 16.)


let test_approx_huge_epsilon_still_valid () =
  let _, part = Approx.solve ~epsilon:10. [| 5.; 1.; 4.; 2. |] ~p:2 in
  Alcotest.(check bool) "valid partition" true (Partition.is_valid ~n:4 part);
  Alcotest.(check bool) "within budget" true (Partition.size part <= 2)

let test_bounds_p_exceeds_n () =
  let prefix = Prefix.make [| 3.; 9. |] in
  (* With p >= n the optimum is the max element. *)
  Helpers.check_float "lower = max element" 9. (Bounds.lower prefix ~p:5);
  let lo, hi = Bounds.span prefix ~p:5 in
  (* The greedy witness may keep everything in one interval when the
     probe bound allows it; only the 2x guarantee is promised. *)
  Alcotest.(check bool) "lower <= upper <= 2 lower" true
    (lo <= hi && hi <= 2. *. lo)

let () =
  Alcotest.run "chains"
    [
      ( "prefix",
        [
          Alcotest.test_case "sums" `Quick test_prefix_sums;
          Alcotest.test_case "rejects" `Quick test_prefix_rejects;
          Alcotest.test_case "longest_fitting" `Quick test_longest_fitting;
          Alcotest.test_case "longest_fitting zeros" `Quick test_longest_fitting_zeros;
          prop_longest_fitting_correct;
          prop_max_from_equals_linear_scan;
        ] );
      ( "partition",
        [
          Alcotest.test_case "of_cuts" `Quick test_partition_of_cuts;
          Alcotest.test_case "loads" `Quick test_partition_loads;
          Alcotest.test_case "bad cut" `Quick test_partition_bad_cut;
        ] );
      ( "probe",
        [
          Alcotest.test_case "feasible" `Quick test_probe_feasible;
          Alcotest.test_case "witness" `Quick test_probe_partition_witness;
          Alcotest.test_case "min intervals" `Quick test_probe_min_intervals;
          prop_probe_consistent_with_dp;
          prop_capped_probe_equals_uncapped;
          prop_feasible_agrees_with_min_intervals;
        ] );
      ( "homogeneous",
        [
          Alcotest.test_case "dp known" `Quick test_dp_known_instance;
          Alcotest.test_case "dp single" `Quick test_dp_single_interval;
          Alcotest.test_case "dp p > n" `Quick test_dp_more_procs_than_elements;
          Alcotest.test_case "exact known" `Quick test_exact_known_instance;
          Alcotest.test_case "candidates" `Quick test_candidates_sorted_unique;
          prop_dp_equals_exact;
          prop_nicol_equals_dp;
          Alcotest.test_case "nicol known" `Quick test_nicol_known;
          prop_dp_respects_interval_budget;
          prop_heuristics_dominated_by_optimal;
        ] );
      ( "bounds-approx",
        [
          prop_bounds_bracket_optimum;
          prop_approx_within_epsilon;
          Alcotest.test_case "bad epsilon" `Quick test_approx_rejects_bad_epsilon;
          Alcotest.test_case "bounds known" `Quick test_bounds_known;
          Alcotest.test_case "huge epsilon" `Quick test_approx_huge_epsilon_still_valid;
          Alcotest.test_case "bounds p > n" `Quick test_bounds_p_exceeds_n;
        ] );
      ( "hetero",
        [
          Alcotest.test_case "exact known" `Quick test_hetero_exact_known;
          Alcotest.test_case "exact balance" `Quick
            test_hetero_exact_prefers_matching_speeds;
          Alcotest.test_case "rejects large p" `Quick test_hetero_rejects_large_p;
          prop_hetero_exact_matches_exhaustive;
          prop_hetero_decision_consistent;
          prop_hetero_greedy_sound;
          prop_hetero_binary_search_sound;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "verify matching" `Quick test_nmwts_verify;
          Alcotest.test_case "brute force" `Quick test_nmwts_brute;
          Alcotest.test_case "gadget shape" `Quick test_gadget_shape;
          Alcotest.test_case "forward direction" `Quick test_reduction_forward;
          Alcotest.test_case "backward direction" `Quick test_reduction_backward;
          Alcotest.test_case "unsat gadget" `Quick test_reduction_unsat_gadget;
          Alcotest.test_case "bad shapes" `Quick test_reduction_rejects_bad_shapes;
        ] );
      ( "to_mapping",
        [
          Alcotest.test_case "period = bottleneck" `Quick
            test_to_mapping_period_equals_bottleneck;
          prop_to_mapping_roundtrip;
        ] );
    ]

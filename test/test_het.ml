open Pipeline_model
open Pipeline_core
open Pipeline_het
module Rng = Pipeline_util.Rng

let gen_seed = QCheck2.Gen.int_range 0 100_000

(* Small random fully heterogeneous instances. *)
let random_het_instance ?(n_max = 7) ?(p_max = 4) seed =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng n_max in
  let p = 1 + Rng.int rng p_max in
  let works = Array.init n (fun _ -> float_of_int (Rng.int_in rng 1 20)) in
  let deltas = Array.init (n + 1) (fun _ -> float_of_int (Rng.int_in rng 0 30)) in
  let app = Application.make ~deltas works in
  let platform = Platform_generator.fully_heterogeneous rng ~p in
  Instance.make ~seed app platform

let gen_het = QCheck2.Gen.map random_het_instance gen_seed

let single_proc_period (inst : Instance.t) =
  let n = Application.n inst.app in
  let best = ref infinity in
  for u = 0 to Platform.p inst.platform - 1 do
    best :=
      Float.min !best
        (Metrics.period inst.app inst.platform (Mapping.single ~n ~proc:u))
  done;
  !best

let optimal_latency_het (inst : Instance.t) =
  (Pipeline_optimal.Latency.solve inst).Solution.latency

(* ------------------------------------------------------------------ *)
(* Soundness                                                           *)
(* ------------------------------------------------------------------ *)

let prop_period_fixed_sound =
  Helpers.qtest ~count:60 "het period-fixed solutions respect their threshold"
    QCheck2.Gen.(pair gen_het (float_range 0.4 1.5))
    (fun (inst, scale) ->
      let threshold = single_proc_period inst *. scale in
      match Het_heuristics.minimise_latency_under_period inst ~period:threshold with
      | None -> true
      | Some sol ->
        Mapping.valid_on sol.Solution.mapping inst.Instance.platform
        && Solution.respects_period sol threshold)

let prop_latency_fixed_sound =
  Helpers.qtest ~count:60 "het latency-fixed solutions respect their threshold"
    QCheck2.Gen.(pair gen_het (float_range 1.0 2.5))
    (fun (inst, scale) ->
      let threshold = optimal_latency_het inst *. scale in
      match Het_heuristics.minimise_period_under_latency inst ~latency:threshold with
      | None -> false (* threshold >= optimal latency: must succeed *)
      | Some sol -> Solution.respects_latency sol threshold)

let prop_never_beats_exhaustive =
  Helpers.qtest ~count:30 "het heuristic period >= exhaustive optimum" gen_het
    (fun inst ->
      let opt = (Pipeline_optimal.Exhaustive.min_period inst).Solution.period in
      match
        Het_heuristics.minimise_period_under_latency inst ~latency:infinity
      with
      | None -> false
      | Some sol -> sol.Solution.period >= opt -. 1e-9)

let prop_below_optimum_fails =
  Helpers.qtest ~count:30 "het heuristic cannot beat the exhaustive optimum"
    gen_het
    (fun inst ->
      let opt = (Pipeline_optimal.Exhaustive.min_period inst).Solution.period in
      Het_heuristics.minimise_latency_under_period inst
        ~period:(opt *. 0.99 -. 1e-6)
      = None
      || opt <= 0.)

(* ------------------------------------------------------------------ *)
(* Behaviour on specific platforms                                     *)
(* ------------------------------------------------------------------ *)

let test_works_on_comm_hom_too () =
  let inst = Helpers.small_instance () in
  match Het_heuristics.minimise_latency_under_period inst ~period:8. with
  | None -> Alcotest.fail "expected a solution"
  | Some sol ->
    Alcotest.(check bool) "meets threshold" true (Solution.respects_period sol 8.)

let test_exploits_fat_links () =
  (* Three equal-speed processors; P0-P1 share a fat link, P2 hangs off a
     thin one. Large inter-stage messages make the thin link hopeless:
     splitting must choose P1 (fat link), not P2, even though the paper's
     order-by-speed rule cannot tell them apart. *)
  let app = Application.make ~deltas:[| 1.; 100.; 1. |] [| 50.; 50. |] in
  let bandwidths =
    [| [| 0.; 50.; 1. |]; [| 50.; 0.; 1. |]; [| 1.; 1.; 0. |] |]
  in
  let platform =
    Platform.fully_heterogeneous ~io_bandwidths:[| 10.; 10.; 10. |] ~bandwidths
      [| 5.; 5.; 5. |]
  in
  let inst = Instance.make app platform in
  (* One processor: period = 0.1 + 100/5 + 0.1 = 20.2. A split over the
     fat link: max cycle = 0.1 + 10 + 2 = 12.1. Over the thin link the
     transfer alone is 100. *)
  match Het_heuristics.minimise_latency_under_period inst ~period:13. with
  | None -> Alcotest.fail "expected a solution over the fat link"
  | Some sol ->
    Alcotest.(check bool) "uses P0 and P1" true
      (Mapping.uses sol.Solution.mapping 0 && Mapping.uses sol.Solution.mapping 1);
    Alcotest.(check bool) "avoids thin-linked P2" false
      (Mapping.uses sol.Solution.mapping 2)

let test_initial_mapping_considers_io () =
  (* The fastest processor has terrible I/O; the latency optimum sits on
     the slower machine with good I/O, and the het heuristic must find
     it. *)
  let app = Application.make ~deltas:[| 100.; 100. |] [| 10. |] in
  let bandwidths = [| [| 0.; 10. |]; [| 10.; 0. |] |] in
  let platform =
    Platform.fully_heterogeneous ~io_bandwidths:[| 1.; 100. |] ~bandwidths
      [| 20.; 10. |]
  in
  let inst = Instance.make app platform in
  (* P0 (fast, io 1): 100 + 0.5 + 100 = 200.5; P1 (slower, io 100):
     1 + 1 + 1 = 3. *)
  match Het_heuristics.minimise_period_under_latency inst ~latency:10. with
  | None -> Alcotest.fail "expected the good-I/O machine"
  | Some sol -> Alcotest.(check int) "P1 chosen" 1 (Mapping.proc sol.Solution.mapping 0)

let prop_more_budget_no_worse =
  Helpers.qtest ~count:30 "more latency budget never hurts the period" gen_het
    (fun inst ->
      let lopt = optimal_latency_het inst in
      let period_at factor =
        match
          Het_heuristics.minimise_period_under_latency inst ~latency:(lopt *. factor)
        with
        | Some sol -> sol.Solution.period
        | None -> infinity
      in
      period_at 2.0 <= period_at 1.2 +. 1e-9)


let prop_bi_variant_sound =
  Helpers.qtest ~count:40 "ratio-selection het variants respect thresholds"
    QCheck2.Gen.(pair gen_het (float_range 0.5 1.5))
    (fun (inst, scale) ->
      let p_threshold = single_proc_period inst *. scale in
      let l_threshold = optimal_latency_het inst *. Float.max 1. scale in
      (match
         Het_heuristics.minimise_latency_under_period
           ~select:Het_heuristics.Min_ratio inst ~period:p_threshold
       with
      | None -> true
      | Some sol -> Solution.respects_period sol p_threshold)
      &&
      match
        Het_heuristics.minimise_period_under_latency
          ~select:Het_heuristics.Min_ratio inst ~latency:l_threshold
      with
      | None -> false
      | Some sol -> Solution.respects_latency sol l_threshold)

(* The four packaged het rows now live in the unified registry. *)
let test_het_registry_shape () =
  let module U = Pipeline_registry in
  Alcotest.(check int) "four entries" 4 (List.length U.het);
  let kinds = List.map (fun (i : U.info) -> i.U.kind) U.het in
  Alcotest.(check int) "two period-fixed" 2
    (List.length (List.filter (fun k -> k = U.Period_fixed) kinds));
  Alcotest.(check bool) "all het stack" true
    (List.for_all (fun (i : U.info) -> i.U.stack = U.Het) U.het);
  (* The registry entries actually solve. *)
  let inst = Helpers.small_instance () in
  List.iter
    (fun (info : U.info) ->
      let threshold =
        match info.U.kind with
        | U.Period_fixed -> Pipeline_model.Instance.single_proc_period inst
        | U.Latency_fixed -> Pipeline_model.Instance.optimal_latency inst
      in
      Alcotest.(check bool)
        (info.U.id ^ " solves at the trivial threshold")
        true
        (info.U.solve inst ~threshold <> None))
    U.het

let () =
  Alcotest.run "het"
    [
      ( "soundness",
        [
          prop_period_fixed_sound;
          prop_latency_fixed_sound;
          prop_never_beats_exhaustive;
          prop_below_optimum_fails;
        ] );
      ( "variants",
        [
          prop_bi_variant_sound;
          Alcotest.test_case "registry" `Quick test_het_registry_shape;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "comm-hom accepted" `Quick test_works_on_comm_hom_too;
          Alcotest.test_case "exploits fat links" `Quick test_exploits_fat_links;
          Alcotest.test_case "initial considers io" `Quick
            test_initial_mapping_considers_io;
          prop_more_budget_no_worse;
        ] );
    ]

#!/usr/bin/env bash
# Exit-code contract of the fully-het exact path (`solve --exact` on a
# het platform): an instance past the exhaustive enumeration guard is
#   - exit 2, one diagnostic line on stderr, empty stdout tail — and the
#     diagnostic reports the ACTUAL mapping count next to the bound and
#     says the bound is --jobs-independent (Exhaustive.oversized, the
#     same wording the serve daemon returns as its HTTP 400 body);
#   - an admissible size on the same path still exits 0.
set -u
bin="$1"
fail() { echo "cli_het_exact_guard: $1" >&2; exit 1; }

# n=30, p=8 on the fully-het e5 family: ~1e10 interval mappings, far
# past the 1e7 guard; deterministic instance, no files needed.
"$bin" solve --family e5 --stages 30 --procs 8 --period 100 --exact \
  >/dev/null 2>/tmp/cli-het-err.$$
code=$?
err=$(cat /tmp/cli-het-err.$$); rm -f /tmp/cli-het-err.$$

[ "$code" -eq 2 ] || fail "expected exit 2 past the enumeration guard, got $code"
[ "$(printf '%s' "$err" | wc -l)" -eq 0 ] || fail "expected one-line stderr, got: $err"
case "$err" in
  *"too large for the exact solver"*) ;;
  *) fail "diagnostic lost the guard wording: $err" ;;
esac
case "$err" in
  *"interval mappings exceed the"*) ;;
  *) fail "diagnostic must report the actual mapping count: $err" ;;
esac
case "$err" in
  *"--jobs-independent"*) ;;
  *) fail "diagnostic must state the bound is --jobs-independent: $err" ;;
esac

# Same path, admissible size: the oracle runs and the CLI exits 0.
"$bin" solve --family e5 --stages 5 --procs 3 --period 100 --exact \
  >/dev/null 2>&1 || fail "admissible het --exact solve should exit 0"

echo "cli het-exact-guard contract: ok"

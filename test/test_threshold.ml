(* Threshold-soundness: the exact candidate search (DESIGN.md §9).

   Three layers: the candidate sets contain every achievable period
   (membership properties against random mappings and the exact
   oracles), Threshold.search returns the smallest feasible candidate
   (checked against brute-force scans of the same probe), and the
   adaptive bisection reproduces the legacy fixed-count loops
   bit-for-bit (Sp_bi_p old vs new). *)

open Pipeline_model
open Pipeline_core
module Registry = Pipeline_registry
module Failure = Pipeline_experiments.Failure

let gen_seed = QCheck2.Gen.int_range 0 100_000
let gen_small = QCheck2.Gen.map (Helpers.random_instance ~n_max:7 ~p_max:4) gen_seed
let gen_tiny = QCheck2.Gen.map (Helpers.random_instance ~n_max:5 ~p_max:4) gen_seed

let candidates_of inst =
  Candidates.periods (Cost.get inst.Instance.app inst.Instance.platform)

(* ------------------------------------------------------------------ *)
(* Candidates                                                          *)
(* ------------------------------------------------------------------ *)

let test_of_values () =
  let a = Candidates.of_values [ 3.; 1.; 2.; 1.; 3. ] in
  Alcotest.(check (array (float 0.))) "sorted, deduped" [| 1.; 2.; 3. |] a;
  Alcotest.check_raises "nan" (Invalid_argument "Candidates.of_values: NaN candidate")
    (fun () -> ignore (Candidates.of_values [ 1.; Float.nan ]))

let test_mem_ceiling () =
  let a = [| 1.; 3.; 5. |] in
  Alcotest.(check bool) "mem hit" true (Candidates.mem a 3.);
  Alcotest.(check bool) "mem miss" false (Candidates.mem a 2.);
  Alcotest.(check bool) "mem empty" false (Candidates.mem [||] 2.);
  Alcotest.(check (option (float 0.))) "ceiling between" (Some 3.)
    (Candidates.ceiling a 2.);
  Alcotest.(check (option (float 0.))) "ceiling exact" (Some 5.)
    (Candidates.ceiling a 5.);
  Alcotest.(check (option (float 0.))) "ceiling above" None (Candidates.ceiling a 6.);
  Alcotest.(check (option (float 0.))) "ceiling empty" None (Candidates.ceiling [||] 0.)

let test_cached_on_engine () =
  let inst = Helpers.small_instance () in
  let cost = Cost.get inst.Instance.app inst.Instance.platform in
  Alcotest.(check bool) "periods cached" true
    (Candidates.periods cost == Candidates.periods cost);
  Alcotest.(check bool) "deal cached" true
    (Candidates.deal_periods cost == Candidates.deal_periods cost)

let test_het_candidates () =
  (* Fully heterogeneous platforms build candidate sets too (DESIGN.md
     §13): sorted, deduplicated, and containing every mapping period. *)
  let bandwidths = [| [| 0.; 2.; 5. |]; [| 2.; 0.; 3. |]; [| 5.; 3.; 0. |] |] in
  let pl = Platform.fully_heterogeneous ~bandwidths [| 1.; 2.; 3. |] in
  let app = Application.uniform ~n:3 ~work:1. ~delta:1. in
  let cost = Cost.make app pl in
  let cands = Candidates.periods cost in
  Alcotest.(check bool) "non-empty" true (Array.length cands > 0);
  Alcotest.(check bool) "sorted strictly" true
    (Array.for_all Fun.id
       (Array.init
          (max 0 (Array.length cands - 1))
          (fun i -> cands.(i) < cands.(i + 1))));
  let mapping =
    Mapping.make ~n:3
      [ (Interval.make ~first:1 ~last:2, 0); (Interval.make ~first:3 ~last:3, 2) ]
  in
  Alcotest.(check bool) "mapping period is a member" true
    (Candidates.mem cands (Cost.period cost mapping))

(* A uniformly random interval mapping: its period must be a member of
   the candidate set, bit-for-bit. *)
let random_mapping rng (inst : Instance.t) =
  let n = Application.n inst.Instance.app in
  let p = Platform.p inst.Instance.platform in
  let k = 1 + Pipeline_util.Rng.int rng (min n p) in
  let procs = Array.init p Fun.id in
  for i = p - 1 downto 1 do
    let j = Pipeline_util.Rng.int rng (i + 1) in
    let t = procs.(i) in
    procs.(i) <- procs.(j);
    procs.(j) <- t
  done;
  let assignment = ref [] in
  let d = ref 1 in
  for j = 1 to k do
    let slack = n - !d - (k - j) in
    let last = if j = k then n else !d + Pipeline_util.Rng.int rng (slack + 1) in
    assignment := (Interval.make ~first:!d ~last, procs.(j - 1)) :: !assignment;
    d := last + 1
  done;
  Mapping.make ~n (List.rev !assignment)

let prop_period_is_candidate =
  Helpers.qtest ~count:200 "any mapping's period is a candidate" gen_small
    (fun inst ->
      let rng = Pipeline_util.Rng.create inst.Instance.seed in
      let sol = Solution.of_mapping inst (random_mapping rng inst) in
      Candidates.mem (candidates_of inst) sol.Solution.period)

let prop_optimal_period_is_candidate =
  Helpers.qtest ~count:60 "exact min period is a candidate" gen_small (fun inst ->
      Candidates.mem (candidates_of inst)
        (Pipeline_optimal.Bicriteria.min_period inst).Solution.period)

let prop_deal_optimum_is_candidate =
  Helpers.qtest ~count:25 "deal exhaustive optimum is a deal candidate" gen_tiny
    (fun inst ->
      let cands =
        Candidates.deal_periods (Cost.get inst.Instance.app inst.Instance.platform)
      in
      let sol = Pipeline_deal.Deal_exhaustive.min_period inst in
      Candidates.mem cands sol.Pipeline_deal.Deal_heuristic.period)

(* ------------------------------------------------------------------ *)
(* Threshold.search                                                    *)
(* ------------------------------------------------------------------ *)

let test_search_exact () =
  let candidates = Array.init 10 (fun i -> float_of_int (i + 1)) in
  let probes = ref 0 in
  let probe t =
    incr probes;
    if t >= 6.5 then Some t else None
  in
  match Threshold.search ~candidates ~probe () with
  | None -> Alcotest.fail "expected a threshold"
  | Some found ->
    Helpers.check_float "smallest feasible" 7. found.Threshold.threshold;
    Helpers.check_float "payload from the memo" 7. found.Threshold.payload;
    Alcotest.(check bool) "log-many probes" true (found.Threshold.probes <= 5);
    Alcotest.(check int) "probe count reported" !probes found.Threshold.probes

let test_search_infeasible () =
  Alcotest.(check bool) "top candidate fails -> None" true
    (Threshold.search ~candidates:[| 1.; 2. |] ~probe:(fun _ -> None) () = None);
  Alcotest.(check bool) "no candidates -> None" true
    (Threshold.search ~candidates:[||] ~probe:(fun _ -> Some ()) () = None)

let prop_search_matches_scan =
  (* Against a brute-force scan of the same monotone probe. *)
  Helpers.qtest ~count:100 "search = linear scan" gen_seed (fun seed ->
      let rng = Pipeline_util.Rng.create seed in
      let count = 1 + Pipeline_util.Rng.int rng 40 in
      let candidates =
        Candidates.of_values
          (List.init count (fun _ -> float_of_int (Pipeline_util.Rng.int_in rng 0 100)))
      in
      let cutoff = float_of_int (Pipeline_util.Rng.int_in rng 0 110) in
      let probe t = if t >= cutoff then Some t else None in
      let scan = Array.to_seq candidates |> Seq.filter (fun c -> c >= cutoff) in
      match (Threshold.search ~candidates ~probe (), scan ()) with
      | None, Seq.Nil -> true
      | Some found, Seq.Cons (smallest, _) ->
        found.Threshold.threshold = smallest && found.Threshold.payload = smallest
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Lazy candidate sets: the (d, e, u) lattice vs the materialised array *)
(* ------------------------------------------------------------------ *)

(* Uniform deltas force the lazy representation; [~max_materialised:0]
   makes even these tiny instances take the lattice path, so every prop
   compares the lattice sweeps against the full sorted array. *)
let gen_uniform =
  QCheck2.Gen.map
    (Helpers.random_uniform_delta_instance ~n_max:8 ~p_max:4)
    gen_seed

let lazy_and_materialised inst =
  let cost = Cost.get inst.Instance.app inst.Instance.platform in
  (Candidates.Set.of_engine ~max_materialised:0 cost, Candidates.periods cost)

let prop_lazy_set_extrema =
  Helpers.qtest ~count:200 "lazy min/max = array endpoints, bitwise" gen_uniform
    (fun inst ->
      let set, cands = lazy_and_materialised inst in
      let last = Array.length cands - 1 in
      Candidates.Set.is_lazy set
      && Candidates.Set.min_elt set = Some cands.(0)
      && Candidates.Set.max_elt set = Some cands.(last)
      && Candidates.Set.force set == cands)

let prop_lazy_floor_ceiling_mem =
  (* Queried at a random off-grid value plus every candidate itself, the
     lattice sweeps must return the very floats the array searches
     return (same membership, same sort order). *)
  Helpers.qtest ~count:200 "lazy floor/ceiling/mem = array searches"
    QCheck2.Gen.(pair gen_uniform (float_range 0. 400.))
    (fun (inst, v) ->
      let set, cands = lazy_and_materialised inst in
      List.for_all
        (fun q ->
          Candidates.Set.floor set q = Candidates.floor cands q
          && Candidates.Set.ceiling set q = Candidates.ceiling cands q
          && Candidates.Set.mem set q = Candidates.mem cands q)
        (v :: Array.to_list cands))

let prop_search_set_matches_search =
  Helpers.qtest ~count:200 "search_set on the lattice = search on the array"
    QCheck2.Gen.(pair gen_uniform (float_range 0. 300.))
    (fun (inst, cutoff) ->
      let set, cands = lazy_and_materialised inst in
      let probe t = if t >= cutoff then Some t else None in
      match
        (Threshold.search_set ~set ~probe (), Threshold.search ~candidates:cands ~probe ())
      with
      | None, None -> true
      | Some a, Some b ->
        a.Threshold.threshold = b.Threshold.threshold
        && a.Threshold.payload = b.Threshold.payload
      | _ -> false)

let prop_boundary_set_matches_boundary =
  Helpers.qtest ~count:200 "boundary_set on the lattice = scan for the boundary"
    QCheck2.Gen.(pair gen_uniform (float_range 0. 300.))
    (fun (inst, cutoff) ->
      let set, cands = lazy_and_materialised inst in
      let succeeds c = c >= cutoff in
      let scan = Array.to_seq cands |> Seq.filter succeeds in
      match (Threshold.boundary_set ~set ~succeeds (), scan ()) with
      | None, Seq.Nil -> true
      | Some t, Seq.Cons (smallest, _) -> t = smallest
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fully-het candidate sets: soundness of the config family            *)
(* ------------------------------------------------------------------ *)

let gen_het =
  QCheck2.Gen.map (Helpers.random_het_instance ~n_max:6 ~p_max:4) gen_seed

let gen_het_uniform =
  QCheck2.Gen.map
    (Helpers.random_uniform_delta_het_instance ~n_max:8 ~p_max:4)
    gen_seed

let prop_het_period_is_candidate =
  Helpers.qtest ~count:200 "het: any mapping's period is a candidate" gen_het
    (fun inst ->
      let rng = Pipeline_util.Rng.create inst.Instance.seed in
      let sol = Solution.of_mapping inst (random_mapping rng inst) in
      Candidates.mem (candidates_of inst) sol.Solution.period)

let prop_het_optimal_period_is_candidate =
  Helpers.qtest ~count:40 "het: exhaustive min period is a candidate" gen_het
    (fun inst ->
      Candidates.mem (candidates_of inst)
        (Pipeline_optimal.Exhaustive.min_period inst).Solution.period)

let prop_het_boundary_set_matches_scan =
  Helpers.qtest ~count:200 "het: boundary_set = linear scan"
    QCheck2.Gen.(pair gen_het (float_range 0. 300.))
    (fun (inst, cutoff) ->
      let cost = Cost.get inst.Instance.app inst.Instance.platform in
      let set = Candidates.Set.of_engine cost in
      let cands = candidates_of inst in
      let succeeds c = c >= cutoff in
      let scan = Array.to_seq cands |> Seq.filter succeeds in
      match (Threshold.boundary_set ~set ~succeeds (), scan ()) with
      | None, Seq.Nil -> true
      | Some t, Seq.Cons (smallest, _) -> t = smallest
      | _ -> false)

let prop_het_warm_equals_cold =
  (* The warm set (engine-cached array) and a cold rebuild on a fresh
     engine agree bit-for-bit, and re-asking the same engine returns the
     very same array (the Cost cache, not a re-enumeration). *)
  Helpers.qtest ~count:60 "het: warm set == cold set, bitwise" gen_het
    (fun inst ->
      let cost = Cost.get inst.Instance.app inst.Instance.platform in
      let warm = Candidates.Set.force (Candidates.Set.of_engine cost) in
      let again = Candidates.Set.force (Candidates.Set.of_engine cost) in
      let cold =
        Candidates.Set.force
          (Candidates.Set.of_engine
             (Cost.make inst.Instance.app inst.Instance.platform))
      in
      warm == again && warm = cold)

let prop_het_lazy_set_matches_array =
  (* Uniform deltas + [~max_materialised:0] force the lattice arm on the
     fully-het config family; its sweeps must agree with the array. *)
  Helpers.qtest ~count:200 "het lattice: floor/ceiling/mem = array"
    QCheck2.Gen.(pair gen_het_uniform (float_range 0. 400.))
    (fun (inst, v) ->
      let cost = Cost.get inst.Instance.app inst.Instance.platform in
      let set = Candidates.Set.of_engine ~max_materialised:0 cost in
      let cands = candidates_of inst in
      let last = Array.length cands - 1 in
      Candidates.Set.is_lazy set
      && Candidates.Set.min_elt set = Some cands.(0)
      && Candidates.Set.max_elt set = Some cands.(last)
      && List.for_all
           (fun q ->
             Candidates.Set.floor set q = Candidates.floor cands q
             && Candidates.Set.ceiling set q = Candidates.ceiling cands q
             && Candidates.Set.mem set q = Candidates.mem cands q)
           (v :: Array.to_list cands))

let prop_het_row_threshold_sound =
  (* End-to-end: the het registry rows' exact thresholds (as the fault
     campaign and Het_campaign compute them) are attained candidates,
     and no smaller candidate succeeds. *)
  Helpers.qtest ~count:6 "het rows: boundary attained, minimal"
    (QCheck2.Gen.map (Helpers.random_het_instance ~n_max:5 ~p_max:3) gen_seed)
    (fun inst ->
      let cands = candidates_of inst in
      List.for_all
        (fun (info : Registry.info) ->
          let t = Failure.instance_threshold info inst in
          let succeeds c = info.Registry.solve inst ~threshold:c <> None in
          Candidates.mem cands t && succeeds t
          && Array.for_all (fun c -> c >= t || not (succeeds c)) cands)
        (List.filter
           (fun (i : Registry.info) -> i.Registry.kind = Registry.Period_fixed)
           Registry.het))

(* ------------------------------------------------------------------ *)
(* Failure thresholds: exact boundary on the candidate grid            *)
(* ------------------------------------------------------------------ *)

let period_rows =
  List.filter
    (fun (i : Registry.info) -> i.Registry.kind = Registry.Period_fixed)
    Registry.paper

let prop_failure_threshold_sound =
  Helpers.qtest ~count:10 "boundary succeeds; no smaller candidate does"
    (QCheck2.Gen.map (Helpers.random_instance ~n_max:6 ~p_max:4) gen_seed)
    (fun inst ->
      let cands = candidates_of inst in
      List.for_all
        (fun (info : Registry.info) ->
          let t = Failure.instance_threshold info inst in
          let succeeds c = info.Registry.solve inst ~threshold:c <> None in
          Candidates.mem cands t && succeeds t
          && Array.for_all
               (fun c -> c >= t || not (succeeds c))
               cands)
        period_rows)

(* ------------------------------------------------------------------ *)
(* Sp_bi_p: adaptive bisection vs the legacy fixed-count loop          *)
(* ------------------------------------------------------------------ *)

(* The pre-rewrite Sp_bi_p.solve, verbatim (modulo the probe counter):
   25 iterations, each skipped once the bracket converged at 1e-12. *)
let legacy_sp_bi_p inst ~period =
  let attempt cap =
    Pipeline_core.Loop.minimise_latency_under_period ~latency_cap:cap
      ~gen:Pipeline_core.Loop.gen_two ~select:Pipeline_core.Loop.select_bi inst
      ~period
  in
  match attempt infinity with
  | None -> None
  | Some unconstrained ->
    let best = ref unconstrained in
    let lo = ref (Instance.optimal_latency inst)
    and hi = ref unconstrained.Solution.latency in
    for _ = 1 to 25 do
      if !hi -. !lo > 1e-12 *. Float.max 1. !hi then begin
        let cap = (!lo +. !hi) /. 2. in
        match attempt cap with
        | Some sol ->
          if sol.Solution.latency < !best.Solution.latency then best := sol;
          hi := cap
        | None -> lo := cap
      end
    done;
    Some !best

let prop_sp_bi_p_unchanged =
  Helpers.qtest ~count:60 "new Sp_bi_p = legacy 25-step bisection"
    QCheck2.Gen.(pair gen_small (float_range 1.0 3.0))
    (fun (inst, factor) ->
      let period =
        factor *. (Pipeline_optimal.Bicriteria.min_period inst).Solution.period
      in
      match (Pipeline_core.Sp_bi_p.solve inst ~period, legacy_sp_bi_p inst ~period) with
      | None, None -> true
      | Some a, Some b ->
        a.Solution.period = b.Solution.period
        && a.Solution.latency = b.Solution.latency
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Threshold.bisect                                                    *)
(* ------------------------------------------------------------------ *)

let test_bisect_brackets () =
  let b =
    Threshold.bisect ~lo:0. ~hi:10. ~feasible:(fun x -> x >= Float.pi) ()
  in
  Alcotest.(check bool) "lo below boundary" true (b.Threshold.lo < Float.pi);
  Alcotest.(check bool) "hi at or above boundary" true (b.Threshold.hi >= Float.pi);
  Alcotest.(check bool) "converged early" true (b.Threshold.probes < 64);
  Alcotest.(check bool) "tight bracket" true
    (Pipeline_util.Tol.converged ~lo:b.Threshold.lo ~hi:b.Threshold.hi ())

let test_bisect_probe_cap () =
  let probes = ref 0 in
  let b =
    Threshold.bisect ~max_probes:7 ~lo:0. ~hi:1e9
      ~feasible:(fun x ->
        incr probes;
        x >= 123.456)
      ()
  in
  Alcotest.(check int) "capped" 7 b.Threshold.probes;
  Alcotest.(check int) "probe called once per step" 7 !probes

let () =
  Alcotest.run "threshold"
    [
      ( "candidates",
        [
          Alcotest.test_case "of_values" `Quick test_of_values;
          Alcotest.test_case "mem and ceiling" `Quick test_mem_ceiling;
          Alcotest.test_case "cached on the engine" `Quick test_cached_on_engine;
          Alcotest.test_case "het candidate sets" `Quick test_het_candidates;
          prop_period_is_candidate;
          prop_optimal_period_is_candidate;
          prop_deal_optimum_is_candidate;
        ] );
      ( "search",
        [
          Alcotest.test_case "exact smallest feasible" `Quick test_search_exact;
          Alcotest.test_case "infeasible and empty" `Quick test_search_infeasible;
          prop_search_matches_scan;
        ] );
      ( "lazy-set",
        [
          prop_lazy_set_extrema;
          prop_lazy_floor_ceiling_mem;
          prop_search_set_matches_search;
          prop_boundary_set_matches_boundary;
        ] );
      ( "het-candidates",
        [
          prop_het_period_is_candidate;
          prop_het_optimal_period_is_candidate;
          prop_het_boundary_set_matches_scan;
          prop_het_warm_equals_cold;
          prop_het_lazy_set_matches_array;
          prop_het_row_threshold_sound;
        ] );
      ("failure-boundary", [ prop_failure_threshold_sound ]);
      ("sp-bi-p", [ prop_sp_bi_p_unchanged ]);
      ( "bisect",
        [
          Alcotest.test_case "brackets the boundary" `Quick test_bisect_brackets;
          Alcotest.test_case "probe cap" `Quick test_bisect_probe_cap;
        ] );
    ]

open Pipeline_model
open Pipeline_sim
module Rng = Pipeline_util.Rng

let gen_seed = QCheck2.Gen.int_range 0 100_000

(* A random interval mapping of an instance. *)
let random_mapping rng (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  let m = 1 + Rng.int rng (min n p) in
  let cuts =
    if m = 1 then []
    else begin
      (* choose m-1 distinct cut positions in [1, n-1] *)
      let positions = Array.init (n - 1) (fun i -> i + 1) in
      Rng.shuffle rng positions;
      List.sort compare (Array.to_list (Array.sub positions 0 (m - 1)))
    end
  in
  let procs = Array.to_list (Array.sub (Rng.permutation rng p) 0 m) in
  Mapping.of_cuts ~n ~cuts ~procs

let gen_instance_mapping =
  QCheck2.Gen.map
    (fun seed ->
      let inst = Helpers.random_instance ~n_max:8 ~p_max:5 seed in
      let rng = Rng.create (seed + 77) in
      (inst, random_mapping rng inst))
    gen_seed

(* ------------------------------------------------------------------ *)
(* Trace basics                                                        *)
(* ------------------------------------------------------------------ *)

let run_small ?mode ?(datasets = 20) () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  (inst, mapping, Runner.run ?mode inst mapping ~datasets)

let test_trace_shape () =
  let _, _, trace = run_small () in
  Alcotest.(check int) "datasets" 20 (Trace.datasets trace);
  Alcotest.(check int) "intervals" 2 (Trace.intervals trace);
  (* per dataset: recv+comp per interval, plus the inner transfer's send
     mirror, plus the final send: 2*(recv+comp) + send(j=0 mirror) + send(out) *)
  Alcotest.(check int) "op count" (20 * 6) (List.length (Trace.ops trace))

let test_trace_ops_sorted () =
  let _, _, trace = run_small () in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a.Op.start <= b.Op.start && sorted rest
  in
  Alcotest.(check bool) "sorted by start" true (sorted (Trace.ops trace))

let test_trace_first_dataset_latency () =
  let inst, mapping, trace = run_small () in
  Helpers.check_float "dataset 0 = analytic latency"
    (Metrics.latency inst.Instance.app inst.Instance.platform mapping)
    (Trace.latency trace 0)

let test_trace_steady_period () =
  let inst, mapping, trace = run_small () in
  Helpers.check_float "steady period = analytic"
    (Metrics.period inst.Instance.app inst.Instance.platform mapping)
    (Trace.steady_period trace)

let test_trace_monotone_completions () =
  let _, _, trace = run_small () in
  for d = 1 to Trace.datasets trace - 1 do
    Alcotest.(check bool) "in order" true
      (Trace.output_completion trace d >= Trace.output_completion trace (d - 1))
  done

let test_trace_utilisation_bounds () =
  let inst, _, trace = run_small () in
  for u = 0 to Platform.p inst.Instance.platform - 1 do
    let util = Trace.utilisation trace ~proc:u in
    Alcotest.(check bool) "in [0,1]" true (util >= 0. && util <= 1. +. 1e-9)
  done;
  Helpers.check_float "unenrolled processor idle" 0. (Trace.utilisation trace ~proc:2)

let test_trace_gantt () =
  let _, _, trace = run_small ~datasets:3 () in
  let g = Trace.gantt ~width:60 trace in
  Alcotest.(check bool) "has rows" true (Str_find.contains g "P1");
  Alcotest.(check bool) "has compute marks" true (Str_find.contains g "c")

let test_trace_rejects_bad_ops () =
  let bad =
    [ Op.{ kind = Compute; interval = 5; proc = 0; dataset = 0; start = 0.; finish = 1. } ]
  in
  Alcotest.check_raises "unknown interval"
    (Invalid_argument "Trace.make: op with unknown interval") (fun () ->
      ignore (Trace.make ~datasets:1 ~intervals:1 ~procs:[| 0 |] bad))

let test_op_pp_duration () =
  let op =
    Op.{ kind = Send; interval = 1; proc = 3; dataset = 2; start = 1.5; finish = 4. }
  in
  Helpers.check_float "duration" 2.5 (Op.duration op);
  Alcotest.(check string) "kind" "send" (Op.kind_to_string op.Op.kind)


let test_trace_to_csv () =
  let _, _, trace = run_small ~datasets:2 () in
  let csv = Trace.to_csv trace in
  Alcotest.(check bool) "header" true
    (Str_find.contains csv "kind,interval,proc,dataset,start,finish");
  Alcotest.(check int) "one line per op + header"
    (List.length (Trace.ops trace) + 2(* header + trailing newline *))
    (List.length (String.split_on_char '\n' csv))

let test_trace_to_chrome_json () =
  let _, _, trace = run_small ~datasets:2 () in
  let json = Trace.to_chrome_json trace in
  Alcotest.(check bool) "array" true
    (json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check bool) "has complete events" true
    (Str_find.contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "has compute spans" true (Str_find.contains json "comp")

(* ------------------------------------------------------------------ *)
(* One-port/no-overlap semantics                                       *)
(* ------------------------------------------------------------------ *)

let test_no_overlap_serialises_processor () =
  let _, _, trace = run_small () in
  (* Within a processor, operations must not overlap in time. *)
  let by_proc = Hashtbl.create 4 in
  List.iter
    (fun (op : Op.t) ->
      let l = try Hashtbl.find by_proc op.Op.proc with Not_found -> [] in
      Hashtbl.replace by_proc op.Op.proc (op :: l))
    (Trace.ops trace);
  Hashtbl.iter
    (fun _proc ops ->
      let sorted = List.sort (fun (a : Op.t) b -> compare a.Op.start b.Op.start) ops in
      let rec walk = function
        | [] | [ _ ] -> ()
        | a :: (b :: _ as rest) ->
          (* rendezvous mirrors share the window; treat the pair (send of
             j, recv of j+1) as one op on each side, so strict check is:
             next op starts no earlier than previous finishes. *)
          Alcotest.(check bool) "no overlap" true (b.Op.start >= a.Op.finish -. 1e-9);
          walk rest
      in
      walk sorted)
    by_proc

let test_transfer_is_rendezvous () =
  let _, _, trace = run_small ~datasets:5 () in
  (* For each inner boundary and dataset, the Send on interval j and the
     Receive on interval j+1 must occupy the same window. *)
  let ops = Trace.ops trace in
  List.iter
    (fun (s : Op.t) ->
      if s.Op.kind = Op.Send && s.Op.interval = 0 then begin
        match
          List.find_opt
            (fun (r : Op.t) ->
              r.Op.kind = Op.Receive && r.Op.interval = 1
              && r.Op.dataset = s.Op.dataset)
            ops
        with
        | None -> Alcotest.fail "missing matching receive"
        | Some r ->
          Helpers.check_float "same start" s.Op.start r.Op.start;
          Helpers.check_float "same finish" s.Op.finish r.Op.finish
      end)
    ops

let prop_validate_agrees =
  Helpers.qtest ~count:60 "simulator reproduces equations (1) and (2)"
    gen_instance_mapping
    (fun (inst, mapping) ->
      let report = Validate.check ~datasets:150 inst mapping in
      Validate.agrees ~tolerance:1e-6 report)

let prop_max_latency_at_least_analytic =
  Helpers.qtest ~count:40 "contention can only increase response times"
    gen_instance_mapping
    (fun (inst, mapping) ->
      let report = Validate.check ~datasets:60 inst mapping in
      report.Validate.max_dataset_latency
      >= report.Validate.analytic_latency -. 1e-9)



let prop_validate_agrees_het =
  (* The simulator and the cost model also agree on fully heterogeneous
     platforms (per-link boundary transfers). *)
  Helpers.qtest ~count:40 "equations hold operationally on het platforms too"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 8 in
      let p = 1 + Rng.int rng 5 in
      let works = Array.init n (fun _ -> float_of_int (Rng.int_in rng 1 20)) in
      let deltas =
        Array.init (n + 1) (fun _ -> float_of_int (Rng.int_in rng 0 30))
      in
      let app = Application.make ~deltas works in
      let platform = Platform_generator.fully_heterogeneous rng ~p in
      let inst = Instance.make app platform in
      let mapping = random_mapping rng inst in
      Validate.agrees ~tolerance:1e-6 (Validate.check ~datasets:150 inst mapping))

(* ------------------------------------------------------------------ *)
(* Overlap ablation                                                    *)
(* ------------------------------------------------------------------ *)

let prop_overlap_not_slower =
  Helpers.qtest ~count:40 "multi-port overlap never increases the period"
    gen_instance_mapping
    (fun (inst, mapping) ->
      let no = Runner.run ~mode:Runner.One_port_no_overlap inst mapping ~datasets:120 in
      let ov = Runner.run ~mode:Runner.Multi_port_overlap inst mapping ~datasets:120 in
      Trace.steady_period ov <= Trace.steady_period no +. 1e-6)

let test_overlap_reaches_max_component () =
  (* Balanced case where overlap helps: one interval, comm = comp. With
     no overlap the cycle is in+comp+out; with overlap it approaches
     max(in, comp, out). *)
  let app = Application.make ~deltas:[| 10.; 10. |] [| 10. |] in
  let pl = Platform.comm_homogeneous ~bandwidth:1. [| 1. |] in
  let inst = Instance.make app pl in
  let mapping = Mapping.single ~n:1 ~proc:0 in
  let no = Runner.run ~mode:Runner.One_port_no_overlap inst mapping ~datasets:200 in
  let ov = Runner.run ~mode:Runner.Multi_port_overlap inst mapping ~datasets:200 in
  Helpers.check_float "no overlap: 30" 30. (Trace.steady_period no);
  Helpers.check_float "overlap: 10" 10. (Trace.steady_period ov)

let test_runner_rejects_bad_input () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:0 in
  Alcotest.check_raises "datasets < 1"
    (Invalid_argument "Runner.run: datasets must be >= 1") (fun () ->
      ignore (Runner.run inst mapping ~datasets:0));
  let bad = Mapping.single ~n:3 ~proc:0 in
  Alcotest.check_raises "wrong n"
    (Invalid_argument "Runner.run: mapping does not match the application")
    (fun () -> ignore (Runner.run inst bad ~datasets:1))

let test_validate_report_fields () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let r = Validate.check ~datasets:100 inst mapping in
  Helpers.check_float "analytic period" 8. r.Validate.analytic_period;
  Helpers.check_float "analytic latency" 12. r.Validate.analytic_latency;
  Alcotest.(check bool) "agrees" true (Validate.agrees r);
  let s = Format.asprintf "%a" Validate.pp r in
  Alcotest.(check bool) "pp mentions period" true (Str_find.contains s "period")


(* ------------------------------------------------------------------ *)
(* Heap / Des kernel                                                   *)
(* ------------------------------------------------------------------ *)

let test_heap_orders () =
  let h = Pipeline_sim.Heap.create () in
  List.iter (fun (p, v) -> Pipeline_sim.Heap.push h ~priority:p v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  let popped = List.init 3 (fun _ -> Pipeline_sim.Heap.pop h) in
  Alcotest.(check (list (option (pair (float 0.) string))))
    "sorted"
    [ Some (1., "a"); Some (2., "b"); Some (3., "c") ]
    popped;
  Alcotest.(check bool) "empty" true (Pipeline_sim.Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Pipeline_sim.Heap.create () in
  List.iter (fun v -> Pipeline_sim.Heap.push h ~priority:1. v) [ 1; 2; 3 ];
  let order = List.init 3 (fun _ -> snd (Option.get (Pipeline_sim.Heap.pop h))) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3 ] order

let test_heap_random_sorted () =
  let rng = Rng.create 99 in
  let h = Pipeline_sim.Heap.create () in
  let values = List.init 500 (fun _ -> Rng.float rng 100.) in
  List.iter (fun v -> Pipeline_sim.Heap.push h ~priority:v v) values;
  let rec drain last acc =
    match Pipeline_sim.Heap.pop h with
    | None -> acc
    | Some (p, _) ->
      Alcotest.(check bool) "non-decreasing" true (p >= last);
      drain p (acc + 1)
  in
  Alcotest.(check int) "all popped" 500 (drain neg_infinity 0)

let test_heap_rejects_nan () =
  Alcotest.check_raises "nan" (Invalid_argument "Heap.push: nan priority")
    (fun () -> Pipeline_sim.Heap.push (Pipeline_sim.Heap.create ()) ~priority:Float.nan ())

let test_des_ordering () =
  let des = Pipeline_sim.Des.create () in
  let log = ref [] in
  Pipeline_sim.Des.schedule des ~delay:2. (fun d ->
      log := ("b", Pipeline_sim.Des.now d) :: !log);
  Pipeline_sim.Des.schedule des ~delay:1. (fun d ->
      log := ("a", Pipeline_sim.Des.now d) :: !log;
      (* handlers can schedule more events *)
      Pipeline_sim.Des.schedule d ~delay:5. (fun d ->
          log := ("c", Pipeline_sim.Des.now d) :: !log));
  Pipeline_sim.Des.run des;
  Alcotest.(check (list (pair string (float 1e-9))))
    "timeline" [ ("a", 1.); ("b", 2.); ("c", 6.) ] (List.rev !log)

let test_des_until () =
  let des = Pipeline_sim.Des.create () in
  let fired = ref 0 in
  Pipeline_sim.Des.schedule des ~delay:1. (fun _ -> incr fired);
  Pipeline_sim.Des.schedule des ~delay:10. (fun _ -> incr fired);
  Pipeline_sim.Des.run ~until:5. des;
  Alcotest.(check int) "only the early event" 1 !fired;
  Alcotest.(check int) "one pending" 1 (Pipeline_sim.Des.pending des)

let test_des_rejects_negative_delay () =
  let des = Pipeline_sim.Des.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Des.schedule: delay must be finite and >= 0") (fun () ->
      Pipeline_sim.Des.schedule des ~delay:(-1.) (fun _ -> ()))

let test_des_resource_fifo () =
  let des = Pipeline_sim.Des.create () in
  let r = Pipeline_sim.Des.Resource.create des in
  let log = ref [] in
  let job name hold =
    Pipeline_sim.Des.Resource.acquire r (fun d ->
        log := (name, Pipeline_sim.Des.now d) :: !log;
        Pipeline_sim.Des.schedule d ~delay:hold (fun _ ->
            Pipeline_sim.Des.Resource.release r))
  in
  job "first" 3.;
  job "second" 2.;
  job "third" 1.;
  Pipeline_sim.Des.run des;
  Alcotest.(check (list (pair string (float 1e-9))))
    "served in order with exclusive holds"
    [ ("first", 0.); ("second", 3.); ("third", 5.) ]
    (List.rev !log);
  Alcotest.(check bool) "released" false (Pipeline_sim.Des.Resource.held r)

let test_des_release_unheld () =
  let des = Pipeline_sim.Des.create () in
  let r = Pipeline_sim.Des.Resource.create des in
  Alcotest.check_raises "not held"
    (Invalid_argument "Des.Resource.release: not held") (fun () ->
      Pipeline_sim.Des.Resource.release r)

(* ------------------------------------------------------------------ *)
(* Workload_sim                                                        *)
(* ------------------------------------------------------------------ *)

module W = Pipeline_sim.Workload_sim

let prop_workload_sim_matches_runner =
  Helpers.qtest ~count:40 "deterministic saturated run = Runner = equations"
    gen_instance_mapping
    (fun (inst, mapping) ->
      let stats =
        W.run ~config:{ W.default_config with W.datasets = 150 } inst mapping
      in
      let analytic = Metrics.period inst.Instance.app inst.Instance.platform mapping in
      let analytic_latency =
        Metrics.latency inst.Instance.app inst.Instance.platform mapping
      in
      Helpers.feq ~eps:1e-6 stats.W.steady_period analytic
      && (* dataset 0 never waits: its latency is the analytic one, and it
            is the minimum over all data sets *)
      stats.W.latency_mean >= analytic_latency -. 1e-9)

let prop_noise_inflates_period =
  Helpers.qtest ~count:30 "noise never beats the analytic period (on average)"
    gen_instance_mapping
    (fun (inst, mapping) ->
      let config =
        { W.default_config with W.noise = W.Uniform_factor 0.3; datasets = 300 }
      in
      let stats = W.run ~config inst mapping in
      let analytic = Metrics.period inst.Instance.app inst.Instance.platform mapping in
      (* Mean-1 multiplicative noise + rendezvous coupling: the achieved
         period can only sit above the analytic one, minus sampling
         slack. *)
      stats.W.steady_period >= analytic *. 0.97)

let test_workload_sim_deterministic () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let config =
    { W.default_config with W.noise = W.Uniform_factor 0.2; datasets = 100; seed = 5 }
  in
  let a = W.run ~config inst mapping and b = W.run ~config inst mapping in
  Helpers.check_float "same period" a.W.steady_period b.W.steady_period;
  Helpers.check_float "same latency" a.W.latency_mean b.W.latency_mean

let test_workload_sim_slow_arrivals () =
  (* Arrivals slower than the service rate: the pipeline is input-bound
     and the output rate matches the arrival period. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:1 in
  (* service period 7; feed one data set every 20 time units *)
  let config =
    { W.default_config with W.arrival = W.Periodic 20.; datasets = 50 }
  in
  let stats = W.run ~config inst mapping in
  Alcotest.(check bool) "output paced by input" true
    (Float.abs (stats.W.steady_period -. 20.) < 0.5);
  (* No queueing: every data set sees the uncontended latency. *)
  Helpers.check_float "latency = analytic" 7. stats.W.latency_max

let test_workload_sim_poisson_reasonable () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  (* Service bottleneck 8; offered load rate 0.05 => period 20. *)
  let config =
    { W.default_config with W.arrival = W.Poisson 0.05; datasets = 200; seed = 9 }
  in
  let stats = W.run ~config inst mapping in
  Alcotest.(check bool) "period near 1/rate" true
    (stats.W.steady_period > 15. && stats.W.steady_period < 25.);
  Alcotest.(check bool) "sojourn bounded" true
    (Float.is_finite stats.W.sojourn_max)

let test_workload_sim_rejects_bad_config () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:0 in
  Alcotest.(check bool) "bad noise" true
    (try
       ignore
         (W.run
            ~config:{ W.default_config with W.noise = W.Uniform_factor 1.5 }
            inst mapping);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad rate" true
    (try
       ignore
         (W.run ~config:{ W.default_config with W.arrival = W.Periodic 0. } inst mapping);
       false
     with Invalid_argument _ -> true)


let prop_trace_zeros_is_saturated =
  Helpers.qtest ~count:40 "Trace of zeros = Saturated (bit-for-bit)"
    gen_instance_mapping (fun (inst, mapping) ->
      let datasets = 40 in
      let config arrival =
        {
          W.default_config with
          W.arrival;
          noise = W.Uniform_factor 0.25;
          datasets;
          seed = 11;
        }
      in
      let saturated = W.run ~config:(config W.Saturated) inst mapping in
      let traced =
        W.run ~config:(config (W.Trace (Array.make datasets 0.))) inst mapping
      in
      Stdlib.compare saturated traced = 0)

let test_workload_sim_trace_paces_input () =
  (* An explicit trace at one data set per 20 time units behaves as the
     periodic process: input-bound output, uncontended latency. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:1 in
  let datasets = 50 in
  let trace = Array.init datasets (fun i -> 20. *. float_of_int i) in
  let config arrival = { W.default_config with W.arrival; datasets } in
  let traced = W.run ~config:(config (W.Trace trace)) inst mapping in
  let periodic = W.run ~config:(config (W.Periodic 20.)) inst mapping in
  Alcotest.(check bool) "same stats as Periodic" true
    (Stdlib.compare traced periodic = 0);
  Helpers.check_float "paced" 20. traced.W.steady_period

let test_workload_sim_trace_rejected () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:0 in
  let rejects name arrival datasets =
    Alcotest.(check bool) name true
      (try
         ignore
           (W.run ~config:{ W.default_config with W.arrival; datasets } inst mapping);
         false
       with Invalid_argument _ -> true)
  in
  rejects "length mismatch" (W.Trace [| 0.; 1. |]) 3;
  rejects "negative instant" (W.Trace [| -1.; 1. |]) 2;
  rejects "nan instant" (W.Trace [| 0.; nan |]) 2;
  rejects "infinite instant" (W.Trace [| 0.; infinity |]) 2;
  rejects "decreasing" (W.Trace [| 2.; 1. |]) 2;
  rejects "empty" (W.Trace [||]) 0

let test_workload_sim_slowdown () =
  (* Halving the only processor's speed from t=0 doubles the steady
     period; an event after the makespan changes nothing. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:1 in
  let base = W.run ~config:{ W.default_config with W.datasets = 60 } inst mapping in
  let slowed =
    W.run
      ~config:
        {
          W.default_config with
          W.datasets = 60;
          slowdowns = [ { W.at = 0.; proc = 1; factor = 0.5 } ];
        }
      inst mapping
  in
  (* cycle = 1 + 20/s + 1: at s=4 -> 7; at s=2 -> 12. *)
  Helpers.check_float "baseline" 7. base.W.steady_period;
  Helpers.check_float "halved speed" 12. slowed.W.steady_period;
  let late =
    W.run
      ~config:
        {
          W.default_config with
          W.datasets = 60;
          slowdowns = [ { W.at = 1e9; proc = 1; factor = 0.5 } ];
        }
      inst mapping
  in
  Helpers.check_float "event after the run" 7. late.W.steady_period

let test_workload_sim_slowdown_composes () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:1 in
  let stats =
    W.run
      ~config:
        {
          W.default_config with
          W.datasets = 40;
          slowdowns =
            [
              { W.at = 0.; proc = 1; factor = 0.5 };
              { W.at = 0.; proc = 1; factor = 0.5 };
            ];
        }
      inst mapping
  in
  (* speed 4 -> 1: cycle = 1 + 20 + 1. *)
  Helpers.check_float "composed" 22. stats.W.steady_period

let test_workload_sim_slowdown_rejected () =
  let inst = Helpers.small_instance () in
  let mapping = Mapping.single ~n:4 ~proc:0 in
  Alcotest.(check bool) "bad factor" true
    (try
       ignore
         (W.run
            ~config:
              {
                W.default_config with
                W.slowdowns = [ { W.at = 0.; proc = 0; factor = 0. } ];
              }
            inst mapping);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Des cancellable events                                              *)
(* ------------------------------------------------------------------ *)

let test_des_cancel () =
  let des = Des.create () in
  let fired = ref [] in
  let h1 = Des.schedule_cancellable des ~delay:1. (fun _ -> fired := 1 :: !fired) in
  let h2 = Des.schedule_cancellable des ~delay:2. (fun _ -> fired := 2 :: !fired) in
  Alcotest.(check bool) "live before run" false (Des.cancelled h1);
  Des.cancel des h1;
  Alcotest.(check bool) "cancelled" true (Des.cancelled h1);
  Des.run des;
  Alcotest.(check (list int)) "only live event fired" [ 2 ] !fired;
  Alcotest.(check bool) "h2 still live" false (Des.cancelled h2);
  (* Cancelling after the event fired is a harmless no-op. *)
  Des.cancel des h2;
  Alcotest.(check bool) "h2 cancelled late" true (Des.cancelled h2)

let test_des_cancel_keeps_clock () =
  (* A cancelled event still occupies its slot: the clock advances
     through its time, but nothing runs. *)
  let des = Des.create () in
  let h = Des.schedule_cancellable des ~delay:5. (fun _ -> Alcotest.fail "fired") in
  Des.cancel des h;
  Des.run des;
  Helpers.check_float "clock advanced" 5. (Des.now des)

(* ------------------------------------------------------------------ *)
(* Fault simulator                                                     *)
(* ------------------------------------------------------------------ *)

module F = Pipeline_sim.Fault_sim

(* small_instance + single mapping on proc 1 (speed 4):
   in 1 + compute 5 + out 1, so data set t computes over [7t+1, 7t+6]
   under saturated arrivals. *)
let single_on_p1 () =
  (Helpers.small_instance (), Mapping.single ~n:4 ~proc:1)

let fault_config ?(datasets = 5) ?(crashes = []) ?(retry = F.no_retry) () =
  { F.base = { W.default_config with W.datasets = datasets }; crashes; retry }

let prop_fault_sim_no_crash_identical =
  Helpers.qtest ~count:60 "no crashes = workload sim (bit-for-bit)"
    gen_instance_mapping (fun (inst, mapping) ->
      let base =
        {
          W.default_config with
          W.datasets = 30;
          noise = W.Uniform_factor 0.3;
          arrival = W.Poisson 0.05;
          seed = 42;
        }
      in
      let plain = W.run ~config:base inst mapping in
      let faulty =
        F.run ~config:{ F.base; crashes = []; retry = F.no_retry } inst mapping
      in
      Stdlib.compare plain faulty.F.workload = 0
      && faulty.F.killed = 0 && faulty.F.dropped = 0 && faulty.F.retries = 0)

let test_fault_sim_deterministic () =
  let inst, mapping = single_on_p1 () in
  let config =
    {
      (fault_config ~datasets:40
         ~crashes:[ { F.at = 10.; proc = 1; recover_at = Some 20. } ]
         ~retry:{ F.max_retries = 2; backoff = 1. } ())
      with
      F.base =
        {
          W.default_config with
          W.datasets = 40;
          noise = W.Uniform_factor 0.2;
          seed = 7;
        };
    }
  in
  let a = F.run ~config inst mapping in
  let b = F.run ~config inst mapping in
  Alcotest.(check bool) "same seed, same stats" true (Stdlib.compare a b = 0)

let test_fault_sim_permanent_crash () =
  (* Crash at t=10 kills data set 1 (computing over [8,13]); with no
     recovery the retry never happens, the data set is dropped, and data
     set 2 parks forever on the dead processor. *)
  let inst, mapping = single_on_p1 () in
  let config =
    fault_config ~crashes:[ { F.at = 10.; proc = 1; recover_at = None } ]
      ~retry:{ F.max_retries = 3; backoff = 1. } ()
  in
  let stats = F.run ~config inst mapping in
  Alcotest.(check int) "completed" 1 stats.F.workload.W.completed;
  Alcotest.(check int) "killed" 1 stats.F.killed;
  Alcotest.(check int) "dropped" 1 stats.F.dropped;
  Alcotest.(check int) "retries" 0 stats.F.retries;
  Helpers.check_float "survival" 0.2 (F.survival stats);
  Helpers.check_float "makespan is ds0's completion" 7. stats.F.workload.W.makespan

let test_fault_sim_retry_after_recovery () =
  (* Crash at 10 kills data set 1; recovery at 20 + backoff 2 replays it
     over [22,27], completion at 28; the pipeline then drains normally:
     completions 7, 28, 35, 42, 49. *)
  let inst, mapping = single_on_p1 () in
  let config =
    fault_config ~crashes:[ { F.at = 10.; proc = 1; recover_at = Some 20. } ]
      ~retry:{ F.max_retries = 1; backoff = 2. } ()
  in
  let stats = F.run ~config inst mapping in
  Alcotest.(check int) "completed" 5 stats.F.workload.W.completed;
  Alcotest.(check int) "killed" 1 stats.F.killed;
  Alcotest.(check int) "dropped" 0 stats.F.dropped;
  Alcotest.(check int) "retries" 1 stats.F.retries;
  Helpers.check_float "survival" 1. (F.survival stats);
  Helpers.check_float "makespan" 49. stats.F.workload.W.makespan

let test_fault_sim_recovery_without_retry () =
  (* Same crash window but no retry budget: data set 1 is dropped at the
     crash; data set 2's compute parks until the recovery at 20, then
     runs over [20,25]: completions 7, 26, 33, 40. *)
  let inst, mapping = single_on_p1 () in
  let config =
    fault_config ~crashes:[ { F.at = 10.; proc = 1; recover_at = Some 20. } ] ()
  in
  let stats = F.run ~config inst mapping in
  Alcotest.(check int) "completed" 4 stats.F.workload.W.completed;
  Alcotest.(check int) "killed" 1 stats.F.killed;
  Alcotest.(check int) "dropped" 1 stats.F.dropped;
  Helpers.check_float "makespan" 40. stats.F.workload.W.makespan

let test_fault_sim_drop_propagates () =
  (* Two intervals: stages 1-2 on proc 1, stages 3-4 on proc 0. A
     permanent crash on proc 1 at t=9 kills data set 1's first-interval
     compute ([8,11]); the drop propagates so the downstream interval
     skips data set 1 instead of waiting forever for it. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let config =
    fault_config ~crashes:[ { F.at = 9.; proc = 1; recover_at = None } ] ()
  in
  let stats = F.run ~config inst mapping in
  Alcotest.(check int) "completed" 1 stats.F.workload.W.completed;
  Alcotest.(check int) "killed" 1 stats.F.killed;
  Alcotest.(check int) "dropped" 1 stats.F.dropped;
  Helpers.check_float "ds0 completion" 12. stats.F.workload.W.makespan

let test_fault_sim_unused_proc_crash_harmless () =
  (* Crashing a processor the mapping does not use changes nothing. *)
  let inst = Helpers.small_instance () in
  let mapping = Mapping.of_cuts ~n:4 ~cuts:[ 2 ] ~procs:[ 1; 0 ] in
  let base = { W.default_config with W.datasets = 25 } in
  let plain = W.run ~config:base inst mapping in
  let stats =
    F.run
      ~config:
        {
          F.base;
          crashes = [ { F.at = 3.; proc = 2; recover_at = Some 8. } ];
          retry = F.no_retry;
        }
      inst mapping
  in
  Alcotest.(check bool) "identical stats" true
    (Stdlib.compare plain stats.F.workload = 0);
  Alcotest.(check int) "nothing killed" 0 stats.F.killed

let test_fault_sim_rejects_bad_config () =
  let inst, mapping = single_on_p1 () in
  let rejects name config =
    Alcotest.(check bool) name true
      (try
         ignore (F.run ~config inst mapping);
         false
       with Invalid_argument _ -> true)
  in
  rejects "negative crash time"
    (fault_config ~crashes:[ { F.at = -1.; proc = 1; recover_at = None } ] ());
  rejects "nan crash time"
    (fault_config ~crashes:[ { F.at = nan; proc = 1; recover_at = None } ] ());
  rejects "proc out of range"
    (fault_config ~crashes:[ { F.at = 1.; proc = 3; recover_at = None } ] ());
  rejects "negative proc"
    (fault_config ~crashes:[ { F.at = 1.; proc = -1; recover_at = None } ] ());
  rejects "recovery before crash"
    (fault_config ~crashes:[ { F.at = 5.; proc = 1; recover_at = Some 5. } ] ());
  rejects "infinite recovery"
    (fault_config
       ~crashes:[ { F.at = 5.; proc = 1; recover_at = Some infinity } ]
       ());
  rejects "overlapping windows"
    (fault_config
       ~crashes:
         [
           { F.at = 5.; proc = 1; recover_at = Some 15. };
           { F.at = 10.; proc = 1; recover_at = Some 20. };
         ]
       ());
  rejects "permanent then crash again"
    (fault_config
       ~crashes:
         [
           { F.at = 5.; proc = 1; recover_at = None };
           { F.at = 10.; proc = 1; recover_at = None };
         ]
       ());
  rejects "negative retries"
    (fault_config ~retry:{ F.max_retries = -1; backoff = 0. } ());
  rejects "negative backoff"
    (fault_config ~retry:{ F.max_retries = 1; backoff = -1. } ());
  rejects "nan backoff"
    (fault_config ~retry:{ F.max_retries = 1; backoff = nan } ());
  (* Base-layer validation still applies through the fault layer. *)
  rejects "bad base noise"
    {
      F.base = { W.default_config with W.noise = W.Uniform_factor 2. };
      crashes = [];
      retry = F.no_retry;
    }


let () =
  Alcotest.run "sim"
    [
      ( "trace",
        [
          Alcotest.test_case "shape" `Quick test_trace_shape;
          Alcotest.test_case "sorted" `Quick test_trace_ops_sorted;
          Alcotest.test_case "first latency" `Quick test_trace_first_dataset_latency;
          Alcotest.test_case "steady period" `Quick test_trace_steady_period;
          Alcotest.test_case "monotone completions" `Quick
            test_trace_monotone_completions;
          Alcotest.test_case "utilisation" `Quick test_trace_utilisation_bounds;
          Alcotest.test_case "gantt" `Quick test_trace_gantt;
          Alcotest.test_case "bad ops" `Quick test_trace_rejects_bad_ops;
          Alcotest.test_case "op pp/duration" `Quick test_op_pp_duration;
          Alcotest.test_case "csv export" `Quick test_trace_to_csv;
          Alcotest.test_case "chrome json export" `Quick test_trace_to_chrome_json;
        ] );
      ( "one-port",
        [
          Alcotest.test_case "processor serialised" `Quick
            test_no_overlap_serialises_processor;
          Alcotest.test_case "rendezvous transfers" `Quick test_transfer_is_rendezvous;
          prop_validate_agrees;
          prop_validate_agrees_het;
          prop_max_latency_at_least_analytic;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "heap orders" `Quick test_heap_orders;
          Alcotest.test_case "heap fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "heap random" `Quick test_heap_random_sorted;
          Alcotest.test_case "heap nan" `Quick test_heap_rejects_nan;
          Alcotest.test_case "des ordering" `Quick test_des_ordering;
          Alcotest.test_case "des until" `Quick test_des_until;
          Alcotest.test_case "des bad delay" `Quick test_des_rejects_negative_delay;
          Alcotest.test_case "resource fifo" `Quick test_des_resource_fifo;
          Alcotest.test_case "release unheld" `Quick test_des_release_unheld;
          Alcotest.test_case "cancel" `Quick test_des_cancel;
          Alcotest.test_case "cancel keeps clock" `Quick test_des_cancel_keeps_clock;
        ] );
      ( "workload-sim",
        [
          prop_workload_sim_matches_runner;
          prop_noise_inflates_period;
          Alcotest.test_case "deterministic" `Quick test_workload_sim_deterministic;
          Alcotest.test_case "slow arrivals" `Quick test_workload_sim_slow_arrivals;
          Alcotest.test_case "poisson" `Quick test_workload_sim_poisson_reasonable;
          Alcotest.test_case "bad config" `Quick test_workload_sim_rejects_bad_config;
          prop_trace_zeros_is_saturated;
          Alcotest.test_case "trace paces input" `Quick
            test_workload_sim_trace_paces_input;
          Alcotest.test_case "trace rejected" `Quick test_workload_sim_trace_rejected;
          Alcotest.test_case "slowdown" `Quick test_workload_sim_slowdown;
          Alcotest.test_case "slowdown composes" `Quick
            test_workload_sim_slowdown_composes;
          Alcotest.test_case "slowdown rejected" `Quick
            test_workload_sim_slowdown_rejected;
        ] );
      ( "fault-sim",
        [
          prop_fault_sim_no_crash_identical;
          Alcotest.test_case "deterministic" `Quick test_fault_sim_deterministic;
          Alcotest.test_case "permanent crash" `Quick test_fault_sim_permanent_crash;
          Alcotest.test_case "retry after recovery" `Quick
            test_fault_sim_retry_after_recovery;
          Alcotest.test_case "recovery without retry" `Quick
            test_fault_sim_recovery_without_retry;
          Alcotest.test_case "drop propagates" `Quick test_fault_sim_drop_propagates;
          Alcotest.test_case "unused proc crash" `Quick
            test_fault_sim_unused_proc_crash_harmless;
          Alcotest.test_case "bad fault config" `Quick
            test_fault_sim_rejects_bad_config;
        ] );
      ( "overlap",
        [
          prop_overlap_not_slower;
          Alcotest.test_case "max component" `Quick test_overlap_reaches_max_component;
          Alcotest.test_case "bad input" `Quick test_runner_rejects_bad_input;
          Alcotest.test_case "validate report" `Quick test_validate_report_fields;
        ] );
    ]

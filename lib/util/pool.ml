let hard_cap = 32

let recommended_jobs () =
  max 1 (min hard_cap (Domain.recommended_domain_count ()))

let default_jobs = Atomic.make 1
let set_jobs n = Atomic.set default_jobs (max 1 (min hard_cap n))
let jobs () = Atomic.get default_jobs

(* The one definition of the --jobs flag shared by every executable: one
   validation rule (a positive integer), one error message, one cap. *)
let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok (min n hard_cap)
  | Some _ | None ->
    Error
      (Printf.sprintf "invalid --jobs value %S: expected an integer >= 1" s)

let jobs_doc ~default =
  Printf.sprintf
    "Worker domains for the parallel loops (default %d = recommended for \
     this machine; capped at %d; 1 = sequential; results are bit-identical \
     for every value)"
    default hard_cap

(* Nested [map] calls must not spawn domains of their own: the flag is
   set inside every worker (including the calling domain while it works
   its own chunk), and [map] falls back to [Array.map] when it is up. *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let sequential_map f xs = Array.map f xs

(* Jobs-independent by construction: every [map] call counts, whichever
   execution path it takes, so the totals are identical at any jobs
   setting. *)
let c_maps = Obs.Counter.make ~doc:"Pool.map calls (any path)" "pool.maps"
let c_items = Obs.Counter.make ~doc:"items passed through Pool.map" "pool.items"

let map ?jobs:requested f xs =
  let requested = Option.value requested ~default:(jobs ()) in
  let n = Array.length xs in
  Obs.Counter.incr c_maps;
  Obs.Counter.add c_items n;
  let workers = max 1 (min hard_cap (min requested n)) in
  if workers <= 1 || n <= 1 || Domain.DLS.get inside_worker then
    sequential_map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make workers None in
    (* Index-ordered chunks: worker [w] owns [lo(w), lo(w+1)); the first
       [n mod workers] chunks are one element longer. *)
    let base = n / workers and rem = n mod workers in
    let lo w = (w * base) + min w rem in
    let run w =
      Domain.DLS.set inside_worker true;
      (try
         Obs.with_track w (fun () ->
             Obs.span "pool.chunk" (fun () ->
                 for i = lo w to lo (w + 1) - 1 do
                   results.(i) <- Some (f xs.(i))
                 done))
       with e -> errors.(w) <- Some (e, Printexc.get_raw_backtrace ()));
      Domain.DLS.set inside_worker false
    in
    let spawned =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> run (k + 1)))
    in
    run 0;
    Array.iter Domain.join spawned;
    (* Deterministic error propagation: the lowest-indexed failing chunk
       wins, whatever the domains' real interleaving was. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs f xs = Array.to_list (map ?jobs f (Array.of_list xs))

(* ------------------------------------------------------------------ *)
(* Deterministic task trees                                            *)
(* ------------------------------------------------------------------ *)

let default_tree_cap = 512
let tree_cap_ref = Atomic.make default_tree_cap
let set_tree_cap n = Atomic.set tree_cap_ref (max 1 n)
let tree_cap () = Atomic.get tree_cap_ref

(* Frontier sizes are a pure function of (roots, cap, depth), so the
   totals are identical at any jobs setting — gate material. *)
let c_tree_tasks =
  Obs.Counter.make ~doc:"frontier tasks produced by Pool.fan_out"
    "pool.tree.tasks"

let c_tree_levels =
  Obs.Counter.make ~doc:"breadth-first levels expanded by Pool.fan_out"
    "pool.tree.levels"

(* A cell remembers whether [children] already returned [||] for its
   task, so leaves are classified exactly once. *)
type 'a cell = Open of 'a | Leaf of 'a

let fan_out ?cap ?(depth = max_int) ~children roots =
  let cap = max 1 (Option.value cap ~default:(tree_cap ())) in
  let cells = ref (List.map (fun t -> Open t) (Array.to_list roots)) in
  let count = ref (Array.length roots) in
  let any_open = ref (!count > 0) in
  let level = ref 0 in
  while !any_open && !level < depth && !count < cap do
    incr level;
    any_open := false;
    let arr = Array.of_list !cells in
    let len = Array.length arr in
    let produced = ref 0 in
    let out = ref [] in
    Array.iteri
      (fun i cell ->
        (* Every unprocessed cell will emit at least one task, so stop
           expanding as soon as the guaranteed level total reaches the
           cap (left-to-right rule, deterministic): the frontier never
           overshoots cap by more than one branching factor. *)
        let remaining = len - i - 1 in
        match cell with
        | Leaf t ->
          incr produced;
          out := Leaf t :: !out
        | Open t when !produced + remaining + 1 >= cap ->
          any_open := true;
          incr produced;
          out := Open t :: !out
        | Open t -> (
          match children t with
          | [||] ->
            incr produced;
            out := Leaf t :: !out
          | kids ->
            any_open := true;
            produced := !produced + Array.length kids;
            Array.iter (fun k -> out := Open k :: !out) kids))
      arr;
    cells := List.rev !out;
    count := !produced
  done;
  Obs.Counter.add c_tree_tasks !count;
  Obs.Counter.add c_tree_levels !level;
  Array.of_list (List.map (function Open t | Leaf t -> t) !cells)

let tree_map ?jobs ?cap ?depth ~children ~run roots =
  map ?jobs run (fan_out ?cap ?depth ~children roots)

(* ------------------------------------------------------------------ *)
(* Shared monotone incumbent                                           *)
(* ------------------------------------------------------------------ *)

module Incumbent = struct
  type t = float Atomic.t

  let make v = Atomic.make v
  let get = Atomic.get

  let rec lower_to t v =
    let cur = Atomic.get t in
    if v < cur && not (Atomic.compare_and_set t cur v) then lower_to t v
end

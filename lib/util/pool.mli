(** Deterministic fixed-size domain pool.

    The campaign parallelises over *independent* tasks — one per
    (application, platform) pair, per sweep threshold, or per root branch
    of an exhaustive enumeration. Each task is a pure function of its
    input (any randomness flows through a task-private
    {!Pipeline_util.Rng} stream derived from the campaign seed), so the
    only thing scheduling could perturb is the order in which results are
    combined. [Pool.map] removes that freedom: work is partitioned into
    index-ordered chunks, every result is written back into its input
    slot, and the caller folds the result array in index order — the
    output is therefore independent of how the domains interleave, and
    [map ~jobs:n f xs] equals [Array.map f xs] bit-for-bit for every [n]
    (a property test in [test_util.ml] holds this contract).

    Nested calls run sequentially: a task executing inside a pool worker
    that itself calls [map] gets the plain [Array.map] path, so the
    outermost parallel loop wins and domains are never oversubscribed
    recursively. *)

val hard_cap : int
(** Upper bound on worker domains per [map] call (guards
    [Domain.spawn] against absurd [--jobs] values and the runtime's
    domain limit). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to {!hard_cap}; the
    default for the executables' [--jobs]. Always at least 1. *)

val set_jobs : int -> unit
(** Set the process-wide default parallelism used by {!map} when [?jobs]
    is omitted. Clamped to [\[1, hard_cap\]]. The library initialises it
    to [1] (fully sequential), so only the executables' [--jobs] flag
    ever turns parallelism on. *)

val jobs : unit -> int
(** Current process-wide default parallelism. *)

val parse_jobs : string -> (int, string) result
(** The one validation rule for the executables' [--jobs] flag: an
    integer [>= 1], silently capped to {!hard_cap}. [Error] carries the
    one shared diagnostic. Both the CLI and the bench build their flag on
    this, so the accepted syntax, the cap and the error message cannot
    drift apart. *)

val jobs_doc : default:int -> string
(** The shared help text for the [--jobs] flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs], computed by up to [jobs]
    domains over index-ordered chunks (the calling domain works too, as
    worker 0). [?jobs] defaults to {!jobs}[ ()]; [jobs <= 1], tiny
    inputs and nested calls fall back to the sequential path. If one or
    more tasks raise, the exception of the lowest-indexed failing chunk
    is re-raised after every domain has been joined. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order ([List.map f xs] bit-for-bit). *)

(** Deterministic fixed-size domain pool.

    The campaign parallelises over *independent* tasks — one per
    (application, platform) pair, per sweep threshold, or per root branch
    of an exhaustive enumeration. Each task is a pure function of its
    input (any randomness flows through a task-private
    {!Pipeline_util.Rng} stream derived from the campaign seed), so the
    only thing scheduling could perturb is the order in which results are
    combined. [Pool.map] removes that freedom: work is partitioned into
    index-ordered chunks, every result is written back into its input
    slot, and the caller folds the result array in index order — the
    output is therefore independent of how the domains interleave, and
    [map ~jobs:n f xs] equals [Array.map f xs] bit-for-bit for every [n]
    (a property test in [test_util.ml] holds this contract).

    Nested calls run sequentially: a task executing inside a pool worker
    that itself calls [map] gets the plain [Array.map] path, so the
    outermost parallel loop wins and domains are never oversubscribed
    recursively. *)

val hard_cap : int
(** Upper bound on worker domains per [map] call (guards
    [Domain.spawn] against absurd [--jobs] values and the runtime's
    domain limit). *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped to {!hard_cap}; the
    default for the executables' [--jobs]. Always at least 1. *)

val set_jobs : int -> unit
(** Set the process-wide default parallelism used by {!map} when [?jobs]
    is omitted. Clamped to [\[1, hard_cap\]]. The library initialises it
    to [1] (fully sequential), so only the executables' [--jobs] flag
    ever turns parallelism on. *)

val jobs : unit -> int
(** Current process-wide default parallelism. *)

val parse_jobs : string -> (int, string) result
(** The one validation rule for the executables' [--jobs] flag: an
    integer [>= 1], silently capped to {!hard_cap}. [Error] carries the
    one shared diagnostic. Both the CLI and the bench build their flag on
    this, so the accepted syntax, the cap and the error message cannot
    drift apart. *)

val jobs_doc : default:int -> string
(** The shared help text for the [--jobs] flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs], computed by up to [jobs]
    domains over index-ordered chunks (the calling domain works too, as
    worker 0). [?jobs] defaults to {!jobs}[ ()]; [jobs <= 1], tiny
    inputs and nested calls fall back to the sequential path. If one or
    more tasks raise, the exception of the lowest-indexed failing chunk
    is re-raised after every domain has been joined. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order ([List.map f xs] bit-for-bit). *)

(** {1 Deterministic task trees}

    Root-splitting an exhaustive search gives at most a handful of
    wildly skewed chunks, so [--jobs 8] buys little exactly where the
    exact solvers spend their time. The task-tree layer fixes the
    granularity instead of the fan-out: {!fan_out} expands a search tree
    breadth-first to a {e deterministic} frontier of hundreds–thousands
    of independent subtree tasks, and {!tree_map} runs that frontier on
    {!map}. The frontier depends only on the tree, [?cap] and [?depth] —
    never on the jobs width — and preserves the tree's left-to-right
    order, so folding the per-task results in index order reproduces the
    sequential depth-first result bit-for-bit at any [--jobs N]
    (DESIGN.md §14). *)

val default_tree_cap : int
(** Initial value of {!tree_cap} (512): enough tasks to keep
    {!hard_cap} domains busy through heavy skew, few enough that
    per-task overhead stays negligible. *)

val set_tree_cap : int -> unit
(** Set the process-wide default frontier size target used by
    {!fan_out} when [?cap] is omitted. Clamped to [>= 1]. Frontier
    shape is part of the deterministic-counter contract, so executables
    leave this alone; tests lower it to probe tiny frontiers. *)

val tree_cap : unit -> int
(** Current process-wide default frontier size target. *)

val fan_out :
  ?cap:int -> ?depth:int -> children:('t -> 't array) -> 't array -> 't array
(** [fan_out ~children roots] expands the task tree breadth-first:
    level by level, every expandable task is replaced {e in place} by
    its ordered children ([children t = [||]] marks [t] a leaf, kept
    as-is), until the frontier reaches [cap] tasks (default
    {!tree_cap}[ ()]), [depth] levels have been expanded (default:
    unbounded), or only leaves remain. Within the level that crosses
    [cap], tasks are expanded left-to-right and the remainder pass
    through unexpanded, so the frontier never overshoots [cap] by more
    than one task's branching factor. The result is a pure function of
    [(roots, cap, depth)] — the jobs width never enters — and
    concatenating the subtrees of the returned tasks in index order
    yields exactly the depth-first traversal of the roots. *)

val tree_map :
  ?jobs:int ->
  ?cap:int ->
  ?depth:int ->
  children:('t -> 't array) ->
  run:('t -> 'r) ->
  't array ->
  'r array
(** [tree_map ~children ~run roots] is
    [map run (fan_out ~children roots)]: the work-stealing entry point
    for the exact solvers. Runs sequentially (same results) when nested
    inside a {!map} or [tree_map] worker — a task that itself fans out
    falls back to the sequential path instead of raising or
    oversubscribing domains. *)

(** Shared monotone incumbent for branch-and-bound pruning: a
    process-shared float that only ever decreases, safe to read from
    every pool worker. Determinism protocol (DESIGN.md §14): workers
    {e read} a frozen snapshot at deterministic synchronisation points
    (wave boundaries) and the coordinator alone {!Incumbent.lower_to}s
    it from the index-ordered merge of the per-task bests, so the value
    observed by any task is a pure function of the wave schedule, never
    of domain timing. *)
module Incumbent : sig
  type t

  val make : float -> t
  (** A fresh incumbent at the given initial bound. *)

  val get : t -> float
  (** Current bound (any domain). *)

  val lower_to : t -> float -> unit
  (** Lower the bound to [v] if [v] is smaller; never raises it
      (monotone, lock-free). *)
end

(** The two float tolerances every threshold comparison in the code base
    uses, hoisted so no solver carries a private copy of the formula.

    Both are {e relative to the threshold} with an absolute floor of 1:
    thresholds in this code base are periods and latencies of order
    0.1–1000, so [rel *. Float.max 1. x] behaves like a relative
    tolerance on realistic magnitudes yet stays meaningful when a
    threshold approaches zero. Call sites must use these helpers verbatim
    — the exact float expression is part of the determinism contract
    (bit-identical results at any [--jobs N] require every comparison to
    evaluate the same bits). *)

val accept_rel : float
(** [1e-9] — the acceptance slack for "value meets threshold" tests.
    Separates genuine constraint violations from float noise accumulated
    by the cost evaluations on either side of the comparison. *)

val meets : float -> float -> bool
(** [meets value threshold] — true when [value] is below [threshold] up
    to [accept_rel] relative slack. The single acceptance test used by
    every heuristic's threshold check (periods and latencies alike). *)

val bisect_rel : float
(** [1e-12] — the convergence width for bisections, three orders of
    magnitude below {!accept_rel} so a converged bracket cannot straddle
    an acceptance decision. *)

val converged : ?rel:float -> lo:float -> hi:float -> unit -> bool
(** [converged ~lo ~hi ()] — the bracket [\[lo, hi\]] is narrower than
    [rel *. Float.max 1. hi] (default [bisect_rel]): further probes
    cannot move the answer by more than float noise. *)

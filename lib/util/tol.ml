let accept_rel = 1e-9
let bisect_rel = 1e-12

let meets value threshold =
  value <= threshold +. (accept_rel *. Float.max 1. (Float.abs threshold))

let converged ?(rel = bisect_rel) ~lo ~hi () =
  hi -. lo <= rel *. Float.max 1. hi

(* Ambient, domain-safe observability handle. Two independent switches:
   metrics (deterministic counters/gauges) and tracing (wall-clock
   spans). Both default to off, and every instrumented call site pays
   exactly one atomic flag read in that state. *)

let metrics_on = Atomic.make false
let tracing_on = Atomic.make false

let metrics_enabled () = Atomic.get metrics_on
let tracing_enabled () = Atomic.get tracing_on

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

type kind = Sum | Max

type entry = { name : string; doc : string; kind : kind; cell : int Atomic.t }

(* Registration happens at module-initialisation time (possibly from
   several libraries racing during startup, or from tests), so the
   registry is mutex-protected; hot-path increments only touch the
   entry's atomic cell. *)
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register ?(doc = "") name kind =
  Mutex.lock registry_lock;
  let entry =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
      let e = { name; doc; kind; cell = Atomic.make 0 } in
      Hashtbl.add registry name e;
      e
  in
  Mutex.unlock registry_lock;
  entry

let rec atomic_max cell v =
  let current = Atomic.get cell in
  if v > current && not (Atomic.compare_and_set cell current v) then
    atomic_max cell v

module Counter = struct
  type t = entry

  let make ?doc name = register ?doc name Sum
  let incr t = if Atomic.get metrics_on then ignore (Atomic.fetch_and_add t.cell 1)

  let add t n =
    if Atomic.get metrics_on && n > 0 then ignore (Atomic.fetch_and_add t.cell n)

  let value t = Atomic.get t.cell
end

module Gauge = struct
  type t = entry

  let make ?doc name = register ?doc name Max
  let observe t v = if Atomic.get metrics_on then atomic_max t.cell v
  let value t = Atomic.get t.cell
end

let entries () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> compare a.name b.name) all

let metrics () = List.map (fun e -> (e.name, Atomic.get e.cell)) (entries ())

let summary_table () =
  let all = entries () in
  let name_w =
    List.fold_left (fun w e -> max w (String.length e.name)) 6 all
  in
  let value_w =
    List.fold_left
      (fun w e -> max w (String.length (string_of_int (Atomic.get e.cell))))
      5 all
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-*s %*s  %s\n" name_w "metric" value_w "value" "description");
  Buffer.add_string buf (String.make (name_w + value_w + 14) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-*s %*d  %s\n" name_w e.name value_w
           (Atomic.get e.cell) e.doc))
    all;
  Buffer.contents buf

let metrics_csv () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "metric,value\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" name v))
    (metrics ());
  Buffer.contents buf

(* Prometheus text exposition ("metrics 0.0.4"): one `# HELP` / `# TYPE`
   preamble per metric, names mangled onto the [a-zA-Z0-9_] alphabet
   the format allows. Sum entries are counters, Max entries gauges. *)
let exposition () =
  let mangle name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      let name = mangle e.name in
      if e.doc <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name e.doc);
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" name
           (match e.kind with Sum -> "counter" | Max -> "gauge"));
      Buffer.add_string buf (Printf.sprintf "%s %d\n" name (Atomic.get e.cell)))
    (entries ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          Printf.fprintf oc "{\"metric\":\"%s\",\"value\":%d,\"doc\":\"%s\"}\n"
            (json_escape e.name) (Atomic.get e.cell) (json_escape e.doc))
        (entries ()))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

type span_ev = { sname : string; track : int; ts : float; dur : float }

(* Each domain records into its own buffer (no synchronisation on the
   hot path beyond the registration of a fresh buffer); buffers outlive
   their domain and are merged, sorted by start time, at export. *)
let buffers : span_ev list ref list ref = ref []
let buffers_lock = Mutex.create ()

let buffer_key : span_ev list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b = ref [] in
      Mutex.lock buffers_lock;
      buffers := b :: !buffers;
      Mutex.unlock buffers_lock;
      b)

let track_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

(* Span timestamps are µs since the trace epoch (the last
   [set_tracing true]), keeping the exported numbers small. *)
let epoch = Atomic.make 0.

let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

let set_metrics on = Atomic.set metrics_on on

let set_tracing on =
  if on then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set tracing_on on

let reset () =
  List.iter (fun e -> Atomic.set e.cell 0) (entries ());
  Mutex.lock buffers_lock;
  List.iter (fun b -> b := []) !buffers;
  Mutex.unlock buffers_lock

let with_track track f =
  let saved = Domain.DLS.get track_key in
  Domain.DLS.set track_key track;
  Fun.protect ~finally:(fun () -> Domain.DLS.set track_key saved) f

let span name f =
  if not (Atomic.get tracing_on) then f ()
  else begin
    let start = now_us () in
    let record () =
      let b = Domain.DLS.get buffer_key in
      b :=
        {
          sname = name;
          track = Domain.DLS.get track_key;
          ts = start;
          dur = now_us () -. start;
        }
        :: !b
    in
    Fun.protect ~finally:record f
  end

let write_trace path =
  let events =
    Mutex.lock buffers_lock;
    let all = List.concat_map (fun b -> !b) !buffers in
    Mutex.unlock buffers_lock;
    List.sort
      (fun a b ->
        match compare a.ts b.ts with
        | 0 -> ( match compare a.track b.track with 0 -> compare a.sname b.sname | c -> c)
        | c -> c)
      all
  in
  let tracks =
    List.sort_uniq compare (List.map (fun e -> e.track) events)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[";
      let first = ref true in
      let emit s =
        if !first then first := false else output_string oc ",\n";
        output_string oc s
      in
      List.iter
        (fun track ->
          emit
            (Printf.sprintf
               "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\
                \"args\":{\"name\":\"pool worker %d\"}}"
               track track))
        tracks;
      List.iter
        (fun e ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":%.3f,\
                \"dur\":%.3f,\"pid\":0,\"tid\":%d}"
               (json_escape e.sname) e.ts e.dur e.track))
        events;
      output_string oc "]\n")

(** Deterministic observability: counters, gauges and spans.

    The library sits below every other [pipeline_workflows] library and
    provides two independent facilities, both off by default and both
    near-free when off (one atomic flag read per call site):

    - {e metrics} — named monotone counters and maximum gauges whose
      {e values} are part of the repository's determinism contract:
      instrumented code only ever merges them with commutative,
      associative operations (integer sums and maxima), so a metrics
      dump is bit-identical at any [--jobs N]. Wall-clock never enters a
      metric.
    - {e tracing} — nestable timed spans collected per domain and
      exported as Chrome [trace_event] JSON (load the file in
      [chrome://tracing] or Perfetto). Spans measure wall-clock and are
      therefore {e exempt} from the determinism contract; they share
      nothing with the metrics side.

    There is no context to thread: the handle is ambient and
    domain-safe. Counters live in a process-wide registry (create them
    once, at module initialisation); span buffers are domain-local and
    merged at export time. The null sink is the default: with both
    facilities disabled every instrumented call collapses to a flag
    check, which the bench's timings section verifies keeps the
    exhaustive solvers within noise of the uninstrumented baseline. *)

(** {1 Switches} *)

val set_metrics : bool -> unit
(** Turn the metrics side on or off (off initially; only executables and
    tests ever enable it). Counters stop accumulating the instant the
    flag drops. *)

val metrics_enabled : unit -> bool
(** Current state of the metrics switch. *)

val set_tracing : bool -> unit
(** Turn span collection on or off (off initially). Enabling (re)stamps
    the trace epoch: span timestamps are microseconds since the last
    [set_tracing true]. *)

val tracing_enabled : unit -> bool
(** Current state of the tracing switch. *)

val reset : unit -> unit
(** Zero every registered counter and gauge and drop every recorded
    span. Registrations survive (a {!Counter.t} stays valid). *)

(** {1 Counters and gauges}

    Values are plain [int]s. Increments may come from any domain
    concurrently; sums and maxima are order-independent, which is
    exactly why these are the only merge operations offered. *)

module Counter : sig
  type t

  val make : ?doc:string -> string -> t
  (** [make name] registers (or retrieves) the monotone counter [name].
      Call it at module-initialisation time, not on a hot path; names
      are process-global, and re-registering an existing name returns
      the same counter ([doc] of the first registration wins). *)

  val incr : t -> unit
  (** Add 1. A no-op (one flag read) while metrics are off. *)

  val add : t -> int -> unit
  (** Add [n >= 0]. A no-op (one flag read) while metrics are off.
      Instrumented hot loops count locally and [add] once per batch, so
      the enabled cost is one atomic per batch, not per event. *)

  val value : t -> int
  (** Current value. *)
end

module Gauge : sig
  type t

  val make : ?doc:string -> string -> t
  (** [make name] registers (or retrieves) the maximum gauge [name] —
      same registry and rules as {!Counter.make}. *)

  val observe : t -> int -> unit
  (** Raise the gauge to [v] if [v] exceeds the current maximum. A
      no-op (one flag read) while metrics are off. *)

  val value : t -> int
  (** Largest value observed since the last {!reset} (0 if none). *)
end

(** {1 Reading the metrics} *)

val metrics : unit -> (string * int) list
(** Every registered counter and gauge, sorted by name — the canonical
    deterministic dump the bit-identity tests compare. *)

val summary_table : unit -> string
(** Human sink: the metrics rendered as an aligned
    [name value description] table (printed by [bench --metrics]). *)

val metrics_csv : unit -> string
(** CSV sink ([metric,value] rows, name-sorted) — written into the
    bench's artefact directory so the CI determinism gate diffs counter
    values along with every other artefact. *)

val write_jsonl : string -> unit
(** JSONL sink: one [{"metric":...,"value":...,"doc":...}] object per
    line, name-sorted, written to the given file. *)

val exposition : unit -> string
(** Prometheus text-format sink (exposition format 0.0.4), served by the
    daemon's [/metrics] endpoint: per metric a [# HELP] line (when the
    registration carried a doc), a [# TYPE] line (counters are
    [counter], maximum gauges are [gauge]) and a [name value] sample,
    name-sorted. Names are mangled onto the format's
    [\[a-zA-Z0-9_\]] alphabet (every other byte becomes ['_']). *)

(** {1 Spans}

    A span is a named, timed region of code. Spans nest (the innermost
    ends first) and are recorded on the calling domain's buffer under
    the ambient {e track} — worker [w] of {!Pipeline_util.Pool.map}
    runs its chunk under track [w], so the exported trace shows one
    timeline row per pool worker. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; while tracing is on, the call is
    recorded as a complete event from entry to return (exceptions
    still record the span before propagating). While tracing is off
    this is [f ()] after one flag read. *)

val with_track : int -> (unit -> 'a) -> 'a
(** [with_track w f] runs [f ()] with spans attributed to track [w]
    (default track: 0). {!Pipeline_util.Pool} wraps each worker chunk
    in this; other callers rarely need it. *)

val write_trace : string -> unit
(** Export every span recorded since tracing was last enabled as a
    Chrome [trace_event] JSON array (complete ["ph":"X"] events plus
    one ["thread_name"] metadata record per track), sorted by start
    time. The file loads directly in [chrome://tracing] / Perfetto. *)

(** Tri-criteria mapping: latency under a period bound {e and} a
    failure-probability bound.

    The paper optimises (period, latency); the fault-tolerance extension
    adds the mapping's failure probability
    ({!Pipeline_model.Reliability}, [Deal_reliability]) as a third
    criterion. Following the paper's methodology of fixing all but one
    criterion, the heuristic {e minimises latency} subject to

    {ul
    {- [period ≤ period] bound (round-robin deal period), and}
    {- [failure ≤ failure] bound.}}

    Strategy: start from the splitting-and-dealing solution of
    {!Pipeline_deal.Deal_heuristic.minimise_latency_under_period} — the
    best known latency under the period bound alone — then, while the
    failure bound is violated, greedily {e replicate}: among all
    (interval, unused processor) pairs whose added replica keeps the
    period within bound, enrol the one yielding the lowest resulting
    failure probability (ties: lowest latency, then first in
    (interval, processor) order — deterministic). Replication is the
    only reliability-improving move available to an interval mapping
    (an interval survives while any replica survives), and each step
    enrols one new processor, so the loop ends after at most [p] steps.
    If the bound is still violated when no step strictly decreases the
    failure probability, the instance is declared infeasible ([None]) —
    the heuristic never returns a solution violating either bound, a
    property the test suite checks against the exhaustive oracle
    ([Ft_exhaustive]). *)

open Pipeline_model

type solution = {
  mapping : Pipeline_deal.Deal_mapping.t;
  period : float;   (** round-robin deal period *)
  latency : float;  (** worst-replica deal latency *)
  failure : float;  (** [Deal_reliability.failure] *)
}

val evaluate :
  Instance.t -> Reliability.t -> Pipeline_deal.Deal_mapping.t -> solution
(** Score a deal mapping on all three criteria. *)

val feasible : solution -> period:float -> failure:float -> bool
(** Both bounds hold, each with the usual 1e-9 relative tolerance (the
    failure bound additionally absorbs 1e-12 absolute, so a bound of 0
    accepts an exactly-zero failure probability). *)

val minimise_latency :
  Instance.t -> Reliability.t -> period:float -> failure:float ->
  solution option
(** Raises [Invalid_argument] when the reliability vector does not cover
    the platform, the period bound is not finite and positive, or the
    failure bound is outside [\[0,1\]]. *)

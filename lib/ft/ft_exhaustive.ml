open Pipeline_model
open Pipeline_deal

(* First-seen-wins on the (latency, period, failure) lexicographic
   order: the sequential scan kept the earlier feasible candidate on
   ties, and merging task-local bests in enumeration order with the same
   rule reproduces it — so the oracle is bit-identical at any pool
   width (DESIGN.md §14). *)
let keep (b : Ft_heuristic.solution option) (c : Ft_heuristic.solution option) =
  match (b, c) with
  | Some b', Some c'
    when (b'.Ft_heuristic.latency, b'.Ft_heuristic.period, b'.Ft_heuristic.failure)
         <= (c'.Ft_heuristic.latency, c'.Ft_heuristic.period, c'.Ft_heuristic.failure)
    -> b
  | _, None -> b
  | _ -> c

let min_latency (inst : Instance.t) rel ~period ~failure =
  if Reliability.p rel <> Platform.p inst.platform then
    invalid_arg "Ft_exhaustive: reliability vector does not match the platform";
  if not (Float.is_finite period && period > 0.) then
    invalid_arg "Ft_exhaustive: period bound must be finite and > 0";
  if not (failure >= 0. && failure <= 1.) then
    invalid_arg "Ft_exhaustive: failure bound must be in [0,1]";
  Deal_exhaustive.parallel_fold inst ~init:None ~merge:keep ~step:(fun acc deal ->
      let cand = Ft_heuristic.evaluate inst rel deal in
      if Ft_heuristic.feasible cand ~period ~failure then keep acc (Some cand)
      else acc)

(** Exhaustive tri-criteria oracle (validation only).

    Enumerates every deal mapping via
    {!Pipeline_deal.Deal_exhaustive.iter} and keeps the minimum-latency
    one among those meeting both the period bound and the failure bound
    (ties: lower period, then lower failure probability). The ground
    truth for [Ft_heuristic] on tiny instances; inherits the enumeration
    size guard. *)

open Pipeline_model

val min_latency :
  Instance.t -> Reliability.t -> period:float -> failure:float ->
  Ft_heuristic.solution option
(** [None] when no deal mapping satisfies both bounds. Raises
    [Invalid_argument] on oversized instances (the enumeration guard)
    and on the same bad inputs as {!Ft_heuristic.minimise_latency}. *)

open Pipeline_model
module Registry = Pipeline_core.Registry
module Solution = Pipeline_core.Solution

type outcome = {
  mapping : Mapping.t;
  period : float;
  latency : float;
  met_threshold : bool;
  fallback : bool;
  migrated_stages : int;
  migration_volume : float;
}

let default_heuristic () =
  match Registry.find "h1-sp-mono-p" with
  | Some h -> h
  | None -> assert false

let validate (inst : Instance.t) before failed ~threshold =
  let p = Platform.p inst.platform in
  if Mapping.n before <> Application.n inst.app then
    invalid_arg "Ft_remap.remap: mapping does not match the application";
  if not (Mapping.valid_on before inst.platform) then
    invalid_arg "Ft_remap.remap: mapping does not fit the platform";
  if not (Float.is_finite threshold && threshold > 0.) then
    invalid_arg "Ft_remap.remap: threshold must be finite and > 0";
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Ft_remap.remap: platform must be communication-homogeneous";
  List.iter
    (fun u ->
      if u < 0 || u >= p then
        invalid_arg "Ft_remap.remap: failed processor out of range")
    failed

(* Renumber a mapping solved on the survivor sub-platform back to the
   original processor indices. *)
let translate ~n ~survivors mapping =
  let cuts =
    List.init (Mapping.m mapping - 1) (fun j ->
        Interval.last (Mapping.interval mapping j))
  in
  let procs =
    Array.to_list (Array.map (fun u -> survivors.(u)) (Mapping.procs mapping))
  in
  Mapping.of_cuts ~n ~cuts ~procs

let c_calls = Obs.Counter.make ~doc:"Ft_remap.remap invocations" "ft.remap.calls"

let c_kept =
  Obs.Counter.make ~doc:"remaps where the incumbent mapping survived"
    "ft.remap.kept"

let c_fallbacks =
  Obs.Counter.make ~doc:"remaps that fell back to the fastest survivor"
    "ft.remap.fallbacks"

let c_migrated =
  Obs.Counter.make ~doc:"stages migrated across all remaps"
    "ft.remap.migrated_stages"

let remap ?heuristic (inst : Instance.t) ~before ~failed ~threshold =
  validate inst before failed ~threshold;
  Obs.Counter.incr c_calls;
  let heuristic =
    match heuristic with Some h -> h | None -> default_heuristic ()
  in
  let platform = inst.platform and app = inst.app in
  let p = Platform.p platform and n = Application.n app in
  let is_failed = Array.make p false in
  List.iter (fun u -> is_failed.(u) <- true) failed;
  let survivors =
    Array.of_list
      (List.filter (fun u -> not is_failed.(u)) (List.init p Fun.id))
  in
  if Array.length survivors = 0 then None
  else begin
    let met (sol : Solution.t) =
      match heuristic.Registry.kind with
      | Registry.Period_fixed -> Solution.respects_period sol threshold
      | Registry.Latency_fixed -> Solution.respects_latency sol threshold
    in
    let incumbent_ok =
      Array.for_all (fun u -> not is_failed.(u)) (Mapping.procs before)
      && met (Solution.of_mapping inst before)
    in
    if incumbent_ok then begin
      (* Nothing forces a migration: keep the running mapping. *)
      Obs.Counter.incr c_kept;
      let sol = Solution.of_mapping inst before in
      Some
        {
          mapping = before;
          period = sol.Solution.period;
          latency = sol.Solution.latency;
          met_threshold = true;
          fallback = false;
          migrated_stages = 0;
          migration_volume = 0.;
        }
    end
    else begin
    let sub_platform =
      let speeds = Array.map (Platform.speed platform) survivors in
      let bandwidth =
        if p > 1 then Platform.bandwidth platform 0 1
        else Platform.io_bandwidth platform 0
      in
      Platform.comm_homogeneous
        ~io_bandwidth:(Platform.io_bandwidth platform 0)
        ~bandwidth speeds
    in
    let sub_inst =
      Instance.make ~id:inst.id ~seed:inst.seed app sub_platform
    in
    let solved, fallback =
      match heuristic.Registry.solve sub_inst ~threshold with
      | Some sol -> (translate ~n ~survivors sol.Solution.mapping, false)
      | None ->
        (* Online systems need some mapping: fastest survivor. *)
        let u = survivors.(Platform.fastest sub_platform) in
        (Mapping.single ~n ~proc:u, true)
    in
    let sol = Solution.of_mapping inst solved in
    let met_threshold = met sol in
    let migrated_stages = ref 0 and migration_volume = ref 0. in
    for k = 1 to n do
      if Mapping.proc_of_stage before k <> Mapping.proc_of_stage solved k
      then begin
        incr migrated_stages;
        migration_volume := !migration_volume +. Application.delta app (k - 1)
      end
    done;
    if fallback then Obs.Counter.incr c_fallbacks;
    Obs.Counter.add c_migrated !migrated_stages;
    Some
      {
        mapping = solved;
        period = sol.Solution.period;
        latency = sol.Solution.latency;
        met_threshold;
        fallback;
        migrated_stages = !migrated_stages;
        migration_volume = !migration_volume;
      }
    end
  end

open Pipeline_model
open Pipeline_deal

type solution = {
  mapping : Deal_mapping.t;
  period : float;
  latency : float;
  failure : float;
}

let threshold_met value threshold = value <= threshold *. (1. +. 1e-9)
let failure_met value threshold = value <= (threshold *. (1. +. 1e-9)) +. 1e-12

let evaluate (inst : Instance.t) rel deal =
  let s = Cost.ft_summary (Cost.get inst.app inst.platform) rel deal in
  {
    mapping = deal;
    period = s.Cost.period;
    latency = s.Cost.latency;
    failure = s.Cost.failure;
  }

let feasible sol ~period ~failure =
  threshold_met sol.period period && failure_met sol.failure failure

let validate (inst : Instance.t) rel ~period ~failure =
  if Reliability.p rel <> Platform.p inst.platform then
    invalid_arg "Ft_heuristic: reliability vector does not match the platform";
  if not (Float.is_finite period && period > 0.) then
    invalid_arg "Ft_heuristic: period bound must be finite and > 0";
  if not (failure >= 0. && failure <= 1.) then
    invalid_arg "Ft_heuristic: failure bound must be in [0,1]"

let minimise_latency (inst : Instance.t) rel ~period ~failure =
  validate inst rel ~period ~failure;
  match Deal_heuristic.minimise_latency_under_period inst ~period with
  | None -> None
  | Some base ->
    let p = Platform.p inst.platform in
    let rec improve current =
      if failure_met current.failure failure then Some current
      else begin
        let enrolled = Deal_mapping.processors current.mapping in
        let best = ref None in
        for j = 0 to Deal_mapping.m current.mapping - 1 do
          for u = 0 to p - 1 do
            if not (List.mem u enrolled) then begin
              let cand =
                evaluate inst rel (Deal_mapping.replicate current.mapping ~j ~proc:u)
              in
              if threshold_met cand.period period && cand.failure < current.failure
              then
                match !best with
                | Some b
                  when (b.failure, b.latency) <= (cand.failure, cand.latency) ->
                  ()
                | _ -> best := Some cand
            end
          done
        done;
        match !best with
        | Some cand -> improve cand
        | None -> None (* no replication step helps: infeasible *)
      end
    in
    improve (evaluate inst rel base.Deal_heuristic.mapping)

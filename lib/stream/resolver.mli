(** Incremental re-solving against a live (churned) platform.

    Every churn event leaves the platform in a new state: some
    processors down, some at composed speed factors. The resolver turns
    a state plus the running mapping into a new plan, either {e warm} —
    reusing everything the previous solves paid for — or {e cold}, the
    oracle the streaming campaign measures the warm path against.

    The warm path, in escalation order:

    {ol
    {- {e keep} — the incumbent enrols only live processors and meets
       the threshold on the live platform: zero migration;}
    {- {e repair} — only the intervals sitting on dead processors move,
       each to the fastest free survivor (largest work sum first); one
       summary evaluation on the cached live engine decides whether the
       patch meets the threshold;}
    {- {e solve} — the registry heuristic on the cached survivor
       sub-instance. The engine-cached candidate set
       ({!Pipeline_model.Candidates.periods}) prunes first: a threshold
       below the smallest achievable cycle-time cannot be met by any
       mapping, so the heuristic is skipped outright;}
    {- {e fallback} — the whole pipeline on the fastest live survivor
       (Lemma 1's shape), reported with [met_threshold = false]: an
       online system needs {e some} mapping.}}

    All per-state artefacts — survivor table, live-platform cost engine,
    survivor sub-instance (and therefore the engine caches and candidate
    arrays hanging off it) — are memoised in a {!cache} keyed by
    {!Churn.fingerprint}, so revisiting a platform state (crash …
    recover cycles) costs a hash lookup. The cold strategy rebuilds the
    sub-instance from scratch on every call and never keeps, repairs or
    prunes. Warm and cold always agree on [met_threshold] (the warm
    path only short-circuits with threshold-meeting plans).

    Restricted to communication-homogeneous platforms and plain-mapping
    [Period_fixed] heuristics, like {!Ft_remap}. *)

open Pipeline_model

type cache
(** Per-run memo of live-platform artefacts for one instance. *)

val cache : Instance.t -> cache
(** Raises [Invalid_argument] when the platform is not
    communication-homogeneous. *)

val instance : cache -> Instance.t

type mode =
  | Kept      (** incumbent untouched *)
  | Repaired  (** only dead processors' intervals moved *)
  | Solved    (** full heuristic solve on the survivor sub-instance *)
  | Fallback  (** fastest-survivor single-processor mapping *)

type plan = {
  mapping : Mapping.t;       (** original processor indices, live only *)
  period : float;            (** equation (1) on the live platform *)
  latency : float;           (** equation (2) on the live platform *)
  met_threshold : bool;
  mode : mode;
  migrated_stages : int;     (** vs [before] *)
  migration_volume : float;  (** [Σ δ_{k-1}] over migrated stages *)
}

val evaluate : cache -> Churn.state -> Mapping.t -> Cost.summary option
(** Period/latency of a mapping on the live platform (degraded speeds),
    or [None] when it enrols a dead processor. Raises
    [Invalid_argument] when the mapping does not fit the instance. *)

val resolve :
  ?heuristic:Pipeline_registry.info ->
  strategy:[ `Warm | `Cold ] ->
  cache ->
  Churn.state ->
  before:Mapping.t ->
  threshold:float ->
  plan option
(** [None] exactly when no processor is alive. Raises
    [Invalid_argument] when [before] does not fit the instance, the
    threshold is not finite and positive, or the heuristic is not a
    plain-mapping [Period_fixed] row (default: H1,
    ["h1-sp-mono-p"]). *)

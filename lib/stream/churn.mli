(** Platform churn: timed crash / recover / join / speed-change events.

    A churn trace is the platform-side counterpart of an arrival trace:
    the sequence of events a living cluster throws at a running mapping.
    The module provides

    {ul
    {- the event algebra and its per-processor sequencing rules
       ({!validate});}
    {- a CSV round-trip matching the arrival-trace conventions;}
    {- the {e live-platform state} — which processors are up and at what
       composed speed factor — folded over events ({!initial},
       {!apply});}
    {- compilers into the fault-simulation vocabulary ({!crashes},
       {!slowdowns}) so an {e uncontrolled} run of a churn trace is one
       {!Pipeline_sim.Fault_sim.run} — the degenerate case the
       bit-identity tests pin: an empty trace compiles to no crashes and
       no slowdowns, i.e. the static simulator.}}

    Sequencing rules (checked by {!validate}, per processor, in time
    order): a processor with a [Join] event is absent until then and the
    [Join] must be its first event; [Crash] requires the processor up,
    [Recover] requires it down from a crash; [Speed] composes at any
    time (a factor set while down applies on return); two events on one
    processor at the same instant are rejected. *)

type kind =
  | Crash            (** the processor goes down, losing in-flight work *)
  | Recover          (** it comes back, at its pre-crash speed factor *)
  | Join             (** first appearance: absent from time 0 until now *)
  | Speed of float   (** speed multiplier from now on; composes *)

type event = { at : float; proc : int; kind : kind }

val validate : p:int -> event list -> unit
(** Raises [Invalid_argument] on: a non-finite or negative time (a
    [Join] additionally requires [at > 0]); a processor outside
    [\[0, p)]; a [Speed] factor that is not finite and [> 0]; or a
    sequencing violation as documented above. *)

val sorted : event list -> event list
(** Stable sort by [(at, proc)] — the order {!validate} and the
    streaming driver process events in. *)

(** {2 CSV round-trip}

    Format: [at,proc,event\[,factor\]] with [event] one of [crash],
    [recover], [join], [speed] (case-insensitive); only [speed] rows
    carry the fourth column. Optional header, blank lines ignored.
    Parse errors carry the 1-based line number. An empty file is a
    valid empty trace (no churn). *)

val of_csv_string : string -> (event list, string) result
val load : string -> (event list, string) result
val to_csv : event list -> string

(** {2 Live-platform state} *)

type state
(** Immutable snapshot: per-processor liveness and composed speed
    factor. *)

val initial : p:int -> event list -> state
(** Everyone up at factor 1, except processors with a [Join] event in
    the trace, which start absent. *)

val apply : state -> event -> state
(** Fold one event (no sequencing re-check: {!validate} first). *)

val alive : state -> int -> bool
val factor : state -> int -> float
val survivors : state -> int array
(** Indices of live processors, ascending. *)

val fingerprint : state -> string
(** Injective encoding of (liveness, factor) per processor — the
    resolver's cache key. *)

(** {2 Compilation to the fault-simulation vocabulary} *)

val crashes : p:int -> event list -> Pipeline_sim.Fault_sim.crash list
(** Each [Crash] paired with its next [Recover] (or permanent); each
    [Join] at [t] becomes a crash window [\[0, t)]. Validates first. *)

val slowdowns : event list -> Pipeline_sim.Workload_sim.slowdown list
(** The [Speed] events, verbatim. *)

module Rng = Pipeline_util.Rng

type spec =
  | Bursty of { rate : float; burst : int; spread : float }
  | Diurnal of { period : float; peak : float; trough : float }
  | Heavy_tailed of { rate : float; alpha : float }

let pos name v =
  if not (Float.is_finite v && v > 0.) then
    invalid_arg (Printf.sprintf "Arrival_trace.generate: %s must be finite and > 0" name)

let validate = function
  | Bursty { rate; burst; spread } ->
    pos "rate" rate;
    if burst < 1 then invalid_arg "Arrival_trace.generate: burst must be >= 1";
    if not (Float.is_finite spread && spread >= 0.) then
      invalid_arg "Arrival_trace.generate: spread must be finite and >= 0"
  | Diurnal { period; peak; trough } ->
    pos "period" period;
    pos "trough" trough;
    pos "peak" peak;
    if trough > peak then
      invalid_arg "Arrival_trace.generate: trough must not exceed peak"
  | Heavy_tailed { rate; alpha } ->
    pos "rate" rate;
    if not (Float.is_finite alpha && alpha > 1.) then
      invalid_arg "Arrival_trace.generate: alpha must be finite and > 1"

(* Exponential inter-arrival via inverse transform; [1 - u] keeps the
   argument of [log] in (0, 1]. *)
let exponential rng rate = -.log (1. -. Rng.float rng 1.) /. rate

let c_generated =
  Obs.Counter.make ~doc:"arrival instants drawn by Arrival_trace.generate"
    "stream.trace.generated"

let generate rng spec ~count =
  if count < 1 then invalid_arg "Arrival_trace.generate: count must be >= 1";
  validate spec;
  Obs.Counter.add c_generated count;
  let out =
    match spec with
    | Bursty { rate; burst; spread } ->
      let acc = ref [] and seen = ref 0 and t = ref 0. in
      while !seen < count do
        t := !t +. exponential rng rate;
        let size = 1 + Rng.int rng burst in
        for i = 0 to size - 1 do
          if !seen < count then begin
            acc := (!t +. (float_of_int i *. spread)) :: !acc;
            incr seen
          end
        done
      done;
      let a = Array.of_list (List.rev !acc) in
      (* Bursts may overlap when the gap between two bursts is shorter
         than a burst's spread-out tail; the trace is the sorted merge. *)
      Array.sort Float.compare a;
      a
    | Diurnal { period; peak; trough } ->
      let two_pi = 8. *. atan 1. in
      let rate_at t =
        trough +. ((peak -. trough) *. 0.5 *. (1. +. sin (two_pi *. t /. period)))
      in
      let t = ref 0. in
      Array.init count (fun _ ->
          let accepted = ref false in
          while not !accepted do
            t := !t +. exponential rng peak;
            if Rng.float rng 1. *. peak <= rate_at !t then accepted := true
          done;
          !t)
    | Heavy_tailed { rate; alpha } ->
      (* Pareto(alpha, xm) has mean alpha·xm/(alpha-1); pick xm so the
         mean inter-arrival is 1/rate. *)
      let xm = (alpha -. 1.) /. (alpha *. rate) in
      let t = ref 0. in
      Array.init count (fun _ ->
          let u = Rng.float rng 1. in
          t := !t +. (xm /. ((1. -. u) ** (1. /. alpha)));
          !t)
  in
  out

let parse_lines s =
  let lines = String.split_on_char '\n' s in
  let rev = ref [] and line_no = ref 0 and error = ref None in
  List.iter
    (fun raw ->
      incr line_no;
      if !error = None then begin
        let cell = String.trim raw in
        if cell = "" then ()
        else if !rev = [] && String.lowercase_ascii cell = "arrival" then ()
        else
          match float_of_string_opt cell with
          | None ->
            error := Some (Printf.sprintf "line %d: not a number: %S" !line_no cell)
          | Some v ->
            if not (Float.is_finite v && v >= 0.) then
              error :=
                Some
                  (Printf.sprintf "line %d: arrival must be finite and >= 0" !line_no)
            else begin
              (match !rev with
              | prev :: _ when v < prev ->
                error :=
                  Some
                    (Printf.sprintf "line %d: arrivals must be non-decreasing"
                       !line_no)
              | _ -> ());
              if !error = None then rev := v :: !rev
            end
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
    if !rev = [] then Error "empty trace: no arrival rows"
    else Ok (Array.of_list (List.rev !rev))

let of_csv_string = parse_lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_csv_string contents
  | exception Sys_error msg -> Error msg

let to_csv trace =
  let buf = Buffer.create (16 * (Array.length trace + 1)) in
  Buffer.add_string buf "arrival\n";
  Array.iter (fun at -> Buffer.add_string buf (Printf.sprintf "%.17g\n" at)) trace;
  Buffer.contents buf

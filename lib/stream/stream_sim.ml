open Pipeline_model
module Stats_u = Pipeline_util.Stats
module W = Pipeline_sim.Workload_sim
module F = Pipeline_sim.Fault_sim

type config = {
  controller : Controller.config;
  arrivals : float array;
  churn : Churn.event list;
  noise : W.noise;
  retry : F.retry;
  seed : int;
}

let default_config ~threshold =
  {
    controller = Controller.default ~threshold;
    arrivals = Array.make 200 0.;
    churn = [];
    noise = W.No_noise;
    retry = F.no_retry;
    seed = 0;
  }

type stats = {
  workload : W.stats;
  offered : int;
  lost : int;
  dropped : int;
  killed : int;
  sim_retries : int;
  segments : int;
  reactions : Controller.reaction list;
  migrations : int;
  migrated_stages : int;
  migration_volume : float;
  reaction_mean : float;
  reaction_max : float;
  degradation : float;
  final_mapping : Mapping.t;
}

(* A mapping epoch: [start <= t < stop] on [mapping], with data sets
   admitted from [effective_start] (migration drain). *)
type segment = {
  start : float;
  effective_start : float;
  stop : float;  (* infinity for the last epoch *)
  mapping : Mapping.t;
}

let c_runs = Obs.Counter.make ~doc:"Stream_sim.run invocations" "stream.sim.runs"

let c_segments =
  Obs.Counter.make ~doc:"mapping epochs simulated" "stream.sim.segments"

let c_events =
  Obs.Counter.make ~doc:"timeline events processed (churn + retries)"
    "stream.sim.events"

let c_lost =
  Obs.Counter.make ~doc:"data sets lost to churn across streaming runs"
    "stream.sim.lost"

let validate config (inst : Instance.t) initial =
  let k = Array.length config.arrivals in
  if k < 1 then invalid_arg "Stream_sim.run: arrival trace must be non-empty";
  (* Full workload-layer validation (trace shape, noise, mapping fit). *)
  W.validate
    {
      W.arrival = W.Trace config.arrivals;
      noise = config.noise;
      slowdowns = [];
      datasets = k;
      seed = config.seed;
    }
    inst initial;
  if config.retry.F.max_retries < 0 then
    invalid_arg "Stream_sim.run: max_retries must be >= 0";
  if not (Float.is_finite config.retry.F.backoff && config.retry.F.backoff >= 0.)
  then invalid_arg "Stream_sim.run: backoff must be finite and >= 0";
  Churn.validate ~p:(Platform.p inst.platform) config.churn

(* Crash/recover windows of the full churn trace, intersected with a
   segment and rebased to its origin. *)
let segment_crashes windows seg =
  List.filter_map
    (fun (w : F.crash) ->
      let recover = match w.recover_at with Some r -> r | None -> infinity in
      let from = Float.max w.at seg.start and till = Float.min recover seg.stop in
      if from < till then
        Some
          {
            F.at = from -. seg.start;
            proc = w.proc;
            recover_at = (if recover < seg.stop then Some (recover -. seg.start) else None);
          }
      else None)
    windows

(* Speed events compiled per segment: the factors composed up to the
   segment's origin fire at relative time 0, later events fire at their
   offset. Independent of controller processing order by construction. *)
let segment_slowdowns churn seg =
  let open_factor = Hashtbl.create 8 in
  let later = ref [] in
  List.iter
    (fun (e : Churn.event) ->
      match e.kind with
      | Churn.Speed f ->
        if e.at <= seg.start then begin
          let prev =
            match Hashtbl.find_opt open_factor e.proc with Some x -> x | None -> 1.
          in
          Hashtbl.replace open_factor e.proc (prev *. f)
        end
        else if e.at <= seg.stop then
          later := { W.at = e.at -. seg.start; proc = e.proc; factor = f } :: !later
      | _ -> ())
    (Churn.sorted churn);
  let opening =
    Hashtbl.fold
      (fun proc factor acc ->
        if factor = 1. then acc else { W.at = 0.; proc; factor } :: acc)
      open_factor []
  in
  List.sort
    (fun (a : W.slowdown) b ->
      match Float.compare a.at b.at with 0 -> compare a.proc b.proc | c -> c)
    (opening @ List.rev !later)

let run ?config (inst : Instance.t) ~initial =
  let cfg =
    match config with
    | Some c -> c
    | None -> default_config ~threshold:(Instance.single_proc_period inst)
  in
  validate cfg inst initial;
  Obs.Counter.incr c_runs;
  Obs.span "stream:run" @@ fun () ->
  let p = Platform.p inst.platform in
  let threshold = cfg.controller.Controller.threshold in
  let ctl =
    Controller.create ~config:cfg.controller inst ~initial ~threshold
  in
  let windows = Churn.crashes ~p cfg.churn in
  let state0 = Churn.initial ~p cfg.churn in
  (* Fold the merged timeline: churn events in (at, proc) order, retry
     wake-ups interleaved; churn first on ties so a wake-up sees the
     state it was scheduled against. *)
  let reactions_rev = ref [] in
  let segments_rev = ref [] in
  let seg = ref { start = 0.; effective_start = 0.; stop = infinity; mapping = initial } in
  let state = ref state0 in
  let retries = ref [] in
  let push_retry = function
    | None -> ()
    | Some at -> retries := List.sort Float.compare (at :: !retries)
  in
  let initial_period = Controller.period ctl state0 in
  let react at =
    Obs.Counter.incr c_events;
    let r = Controller.on_event ctl !state ~at in
    reactions_rev := r :: !reactions_rev;
    push_retry r.Controller.retry_at;
    if not (Mapping.equal r.Controller.mapping (!seg).mapping) then begin
      segments_rev := { !seg with stop = at } :: !segments_rev;
      seg :=
        {
          start = at;
          effective_start = at +. r.Controller.reaction_latency;
          stop = infinity;
          mapping = r.Controller.mapping;
        }
    end
  in
  let rec loop churn =
    let next_retry = match !retries with [] -> None | at :: _ -> Some at in
    match (churn, next_retry) with
    | [], None -> ()
    | (e : Churn.event) :: rest, None ->
      state := Churn.apply !state e;
      react e.at;
      loop rest
    | [], Some at ->
      retries := List.tl !retries;
      react at;
      loop []
    | e :: rest, Some at when e.at <= at ->
      state := Churn.apply !state e;
      react e.at;
      loop rest
    | churn, Some at ->
      retries := List.tl !retries;
      react at;
      loop churn
  in
  loop (Churn.sorted cfg.churn);
  let segments = List.rev (!seg :: !segments_rev) in
  Obs.Counter.add c_segments (List.length segments);
  (* Execute each epoch under the fault simulator (drain-and-switch:
     a data set runs entirely in the epoch it arrived in). *)
  let offered = Array.length cfg.arrivals in
  let executed =
    let _, _, rev =
      List.fold_left
        (fun (cursor, idx, acc) s ->
          let from = ref cursor in
          let cursor = ref cursor in
          while !cursor < offered && cfg.arrivals.(!cursor) < s.stop do
            incr cursor
          done;
          let count = !cursor - !from in
          let outcome =
            if count = 0 then (s, None)
            else begin
              let from = !from in
              let rel =
                Array.init count (fun i ->
                    Float.max cfg.arrivals.(from + i) s.effective_start -. s.start)
              in
              let base =
                {
                  W.arrival = W.Trace rel;
                  noise = cfg.noise;
                  slowdowns = segment_slowdowns cfg.churn s;
                  datasets = count;
                  seed = cfg.seed + (97 * idx);
                }
              in
              let fconfig =
                { F.base; crashes = segment_crashes windows s; retry = cfg.retry }
              in
              let stats =
                Obs.span "stream:segment" @@ fun () ->
                F.run ~config:fconfig inst s.mapping
              in
              (s, Some stats)
            end
          in
          (!cursor, idx + 1, outcome :: acc))
        (0, 0, []) segments
    in
    List.rev rev
  in
  let simulated = List.filter_map (fun (s, st) -> Option.map (fun x -> (s, x)) st) executed in
  let sum f = List.fold_left (fun acc (_, st) -> acc + f st) 0 simulated in
  let completed = sum (fun (st : F.stats) -> st.workload.W.completed) in
  let dropped = sum (fun st -> st.F.dropped) in
  let killed = sum (fun st -> st.F.killed) in
  let sim_retries = sum (fun st -> st.F.retries) in
  let workload =
    match simulated with
    | [ (_, only) ] ->
      (* Single epoch: the fault-simulator statistics, verbatim — the
         empty-churn bit-identity hinges on this arm. *)
      only.F.workload
    | _ ->
      let finished =
        List.filter (fun (_, (st : F.stats)) -> st.workload.W.completed > 0) simulated
      in
      if finished = [] then
        {
          W.completed = 0;
          makespan = 0.;
          steady_period = 0.;
          throughput = 0.;
          latency_mean = nan;
          latency_p95 = nan;
          latency_max = nan;
          sojourn_max = nan;
          latencies = [];
        }
      else begin
        let makespan =
          List.fold_left
            (fun acc (s, (st : F.stats)) -> Float.max acc (s.start +. st.workload.W.makespan))
            0. finished
        in
        let latencies =
          List.concat_map (fun (_, (st : F.stats)) -> st.workload.W.latencies) finished
        in
        let weighted_period =
          let num, den =
            List.fold_left
              (fun (num, den) (_, (st : F.stats)) ->
                let w = st.workload.W.completed in
                if w >= 2 then (num +. (float_of_int w *. st.workload.W.steady_period), den + w)
                else (num, den))
              (0., 0) finished
          in
          if den = 0 then 0. else num /. float_of_int den
        in
        {
          W.completed = completed;
          makespan;
          steady_period = weighted_period;
          throughput = (if makespan > 0. then float_of_int completed /. makespan else 0.);
          latency_mean = Stats_u.mean latencies;
          latency_p95 = Stats_u.percentile 0.95 latencies;
          latency_max = snd (Stats_u.min_max latencies);
          sojourn_max =
            List.fold_left
              (fun acc (_, (st : F.stats)) -> Float.max acc st.workload.W.sojourn_max)
              neg_infinity finished;
          latencies;
        }
      end
  in
  let reactions = List.rev !reactions_rev in
  let moved = List.filter (fun (r : Controller.reaction) -> r.migrated_stages > 0) reactions in
  let reaction_latencies = List.map (fun (r : Controller.reaction) -> r.reaction_latency) moved in
  let lost = offered - completed in
  Obs.Counter.add c_lost lost;
  (* Degradation: the live period of whatever mapping is in place,
     integrated over the run and normalised by the threshold. *)
  let horizon =
    List.fold_left
      (fun acc (r : Controller.reaction) -> Float.max acc r.at)
      workload.W.makespan reactions
  in
  let degradation =
    let steps =
      (0., initial_period)
      :: List.map (fun (r : Controller.reaction) -> (r.at, r.period)) reactions
    in
    let rec integrate acc = function
      | [] -> acc
      | [ (t, v) ] -> acc +. (v *. (horizon -. t))
      | (t, v) :: ((t', _) :: _ as rest) -> integrate (acc +. (v *. (t' -. t))) rest
    in
    if horizon > 0. then integrate 0. steps /. (horizon *. threshold)
    else initial_period /. threshold
  in
  {
    workload;
    offered;
    lost;
    dropped;
    killed;
    sim_retries;
    segments = List.length segments;
    reactions;
    migrations = List.length moved;
    migrated_stages =
      List.fold_left (fun acc (r : Controller.reaction) -> acc + r.migrated_stages) 0 moved;
    migration_volume =
      List.fold_left (fun acc (r : Controller.reaction) -> acc +. r.migration_volume) 0. moved;
    reaction_mean =
      (match Stats_u.mean_opt reaction_latencies with Some m -> m | None -> 0.);
    reaction_max =
      (if reaction_latencies = [] then 0.
       else List.fold_left Float.max neg_infinity reaction_latencies);
    degradation;
    final_mapping = Controller.mapping ctl;
  }

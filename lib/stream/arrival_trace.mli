(** Arrival traces for the streaming scenario.

    A trace is a sorted array of absolute arrival instants, one per data
    set — exactly what {!Pipeline_sim.Workload_sim}'s [Trace] arrival
    consumes. This module generates the three workload shapes of the
    streaming campaign from seeded {!Pipeline_util.Rng} streams and
    round-trips traces through a one-column CSV format, so measured and
    synthetic workloads flow through the same pipe.

    All generators are deterministic functions of the supplied generator
    state: same seed, same trace, at any [--jobs]. *)

type spec =
  | Bursty of { rate : float; burst : int; spread : float }
      (** bursts arrive as a Poisson process with [rate] bursts per time
          unit; each burst carries [1 + Rng.int burst] data sets spaced
          [spread] apart. [rate] finite and [> 0], [burst >= 1],
          [spread] finite and [>= 0]. *)
  | Diurnal of { period : float; peak : float; trough : float }
      (** a non-homogeneous Poisson process whose rate oscillates
          sinusoidally between [trough] and [peak] with the given
          [period] (thinning against the [peak] majorant). [period]
          finite and [> 0], [0 < trough <= peak], both finite. *)
  | Heavy_tailed of { rate : float; alpha : float }
      (** Pareto inter-arrivals with tail index [alpha] and mean
          [1/rate] — long quiet stretches punctuated by clumps. [rate]
          finite and [> 0], [alpha] finite and [> 1] (the mean must
          exist). *)

val generate : Pipeline_util.Rng.t -> spec -> count:int -> float array
(** [generate rng spec ~count] draws [count] arrival instants from the
    process described by [spec]. The result is sorted (non-decreasing),
    finite and non-negative — valid as a [Workload_sim.Trace]. Raises
    [Invalid_argument] when [count < 1] or a [spec] field is out of
    range (as documented on each constructor). *)

val of_csv_string : string -> (float array, string) result
(** Parse a one-column CSV: one arrival instant per line, an optional
    [arrival] header, blank lines ignored. Errors carry the 1-based
    line number, e.g. ["line 3: not a number: \"x\""]. Rejected:
    non-numeric cells, negative / non-finite instants, decreasing
    instants, and traces with no data rows. *)

val load : string -> (float array, string) result
(** [of_csv_string] over the contents of a file; IO failures are
    reported as [Error] with the system message. *)

val to_csv : float array -> string
(** The inverse of {!of_csv_string}: an [arrival] header followed by
    one ["%.17g"] instant per line (round-trips exactly). *)

open Pipeline_model
module Tol = Pipeline_util.Tol

type config = {
  heuristic : Pipeline_registry.info option;
  threshold : float;
  hysteresis : float;
  migration_budget : float;
  max_retries : int;
  backoff : float;
  strategy : [ `Warm | `Cold ];
}

let default ~threshold =
  {
    heuristic = None;
    threshold;
    hysteresis = 1.1;
    migration_budget = infinity;
    max_retries = 3;
    backoff = threshold *. 10.;
    strategy = `Warm;
  }

type action = Kept | Migrated | Degraded | Deferred | Stalled

type reaction = {
  at : float;
  action : action;
  mode : Resolver.mode option;
  mapping : Mapping.t;
  period : float;
  latency : float;
  met_threshold : bool;
  migrated_stages : int;
  migration_volume : float;
  reaction_latency : float;
  retry_at : float option;
}

type t = {
  cache : Resolver.cache;
  cfg : config;
  io_bandwidth : float;
  mutable current : Mapping.t;
  mutable budget : float;
  mutable retries_left : int;
}

let validate_config cfg =
  if not (Float.is_finite cfg.threshold && cfg.threshold > 0.) then
    invalid_arg "Controller.create: threshold must be finite and > 0";
  if Float.is_nan cfg.hysteresis || cfg.hysteresis < 1. then
    invalid_arg "Controller.create: hysteresis must be >= 1";
  if Float.is_nan cfg.migration_budget || cfg.migration_budget < 0. then
    invalid_arg "Controller.create: migration budget must be >= 0";
  if cfg.max_retries < 0 then
    invalid_arg "Controller.create: max_retries must be >= 0";
  if not (Float.is_finite cfg.backoff && cfg.backoff > 0.) then
    invalid_arg "Controller.create: backoff must be finite and > 0"

let create ?config (inst : Instance.t) ~initial ~threshold =
  let cfg =
    match config with Some c -> { c with threshold } | None -> default ~threshold
  in
  validate_config cfg;
  if Mapping.n initial <> Application.n inst.app then
    invalid_arg "Controller.create: mapping does not match the application";
  if not (Mapping.valid_on initial inst.platform) then
    invalid_arg "Controller.create: mapping does not fit the platform";
  {
    cache = Resolver.cache inst;
    cfg;
    io_bandwidth = Platform.io_bandwidth inst.platform 0;
    current = initial;
    budget = cfg.migration_budget;
    retries_left = cfg.max_retries;
  }

let mapping t = t.current
let budget_left t = t.budget
let config t = t.cfg

let period t state =
  match Resolver.evaluate t.cache state t.current with
  | Some s -> s.Cost.period
  | None -> infinity

let c_events = Obs.Counter.make ~doc:"controller events processed" "stream.ctl.events"
let c_kept = Obs.Counter.make ~doc:"events kept without migration" "stream.ctl.kept"
let c_migrations = Obs.Counter.make ~doc:"migrations applied" "stream.ctl.migrations"

let c_degraded =
  Obs.Counter.make ~doc:"events left in a degraded mapping" "stream.ctl.degraded"

let c_deferred =
  Obs.Counter.make ~doc:"voluntary migrations blocked by the budget"
    "stream.ctl.deferred"

let c_stalled =
  Obs.Counter.make ~doc:"events with no live processor" "stream.ctl.stalled"

let c_retries = Obs.Counter.make ~doc:"retry wake-ups scheduled" "stream.ctl.retries"

(* One retry ticket from the current degradation episode, if any is
   left; a threshold-meeting resolve re-arms the budget via [rearm]. *)
let take_retry t ~at =
  if t.retries_left > 0 then begin
    t.retries_left <- t.retries_left - 1;
    Obs.Counter.incr c_retries;
    Some (at +. t.cfg.backoff)
  end
  else None

let rearm t = t.retries_left <- t.cfg.max_retries

let on_event t state ~at =
  Obs.Counter.incr c_events;
  let cfg = t.cfg in
  let incumbent = Resolver.evaluate t.cache state t.current in
  let in_band =
    match incumbent with
    | Some s -> Tol.meets s.Cost.period (cfg.hysteresis *. cfg.threshold)
    | None -> false
  in
  if in_band then begin
    (* Hysteresis: degraded-but-tolerable mappings are left alone. *)
    Obs.Counter.incr c_kept;
    let s = Option.get incumbent in
    let met = Tol.meets s.Cost.period cfg.threshold in
    if met then rearm t;
    {
      at;
      action = Kept;
      mode = None;
      mapping = t.current;
      period = s.Cost.period;
      latency = s.Cost.latency;
      met_threshold = met;
      migrated_stages = 0;
      migration_volume = 0.;
      reaction_latency = 0.;
      retry_at = None;
    }
  end
  else begin
    let forced = incumbent = None in
    match
      Resolver.resolve ?heuristic:cfg.heuristic ~strategy:cfg.strategy t.cache state
        ~before:t.current ~threshold:cfg.threshold
    with
    | None ->
      (* Nothing is alive: park and wait for the platform to return. *)
      Obs.Counter.incr c_stalled;
      {
        at;
        action = Stalled;
        mode = None;
        mapping = t.current;
        period = infinity;
        latency = infinity;
        met_threshold = false;
        migrated_stages = 0;
        migration_volume = 0.;
        reaction_latency = 0.;
        retry_at = take_retry t ~at;
      }
    | Some plan ->
      if
        (not forced)
        && plan.Resolver.migration_volume > t.budget
      then begin
        (* Budget exhausted: a voluntary migration is deferred; the
           incumbent stays, degraded but running. *)
        Obs.Counter.incr c_deferred;
        let s = Option.get incumbent in
        {
          at;
          action = Deferred;
          mode = None;
          mapping = t.current;
          period = s.Cost.period;
          latency = s.Cost.latency;
          met_threshold = Tol.meets s.Cost.period cfg.threshold;
          migrated_stages = 0;
          migration_volume = 0.;
          reaction_latency = 0.;
          retry_at = None;
        }
      end
      else begin
        t.current <- plan.Resolver.mapping;
        t.budget <- Float.max 0. (t.budget -. plan.Resolver.migration_volume);
        let action = if plan.Resolver.met_threshold then Migrated else Degraded in
        (match action with
        | Migrated -> Obs.Counter.incr c_migrations
        | _ -> Obs.Counter.incr c_degraded);
        let retry_at =
          if plan.Resolver.met_threshold then begin
            rearm t;
            None
          end
          else take_retry t ~at
        in
        {
          at;
          action;
          mode = Some plan.Resolver.mode;
          mapping = plan.Resolver.mapping;
          period = plan.Resolver.period;
          latency = plan.Resolver.latency;
          met_threshold = plan.Resolver.met_threshold;
          migrated_stages = plan.Resolver.migrated_stages;
          migration_volume = plan.Resolver.migration_volume;
          reaction_latency = plan.Resolver.migration_volume /. t.io_bandwidth;
          retry_at;
        }
      end
  end

type kind = Crash | Recover | Join | Speed of float

type event = { at : float; proc : int; kind : kind }

let sorted events =
  List.stable_sort
    (fun a b ->
      match Float.compare a.at b.at with 0 -> compare a.proc b.proc | c -> c)
    events

let validate ~p events =
  List.iter
    (fun e ->
      if Float.is_nan e.at || (not (Float.is_finite e.at)) || e.at < 0. then
        invalid_arg "Churn.validate: event time must be finite and >= 0";
      if e.proc < 0 || e.proc >= p then
        invalid_arg "Churn.validate: processor out of range";
      match e.kind with
      | Speed f when not (Float.is_finite f && f > 0.) ->
        invalid_arg "Churn.validate: speed factor must be finite and > 0"
      | Join when not (e.at > 0.) ->
        invalid_arg "Churn.validate: a join must happen at a time > 0"
      | _ -> ())
    events;
  (* Per-processor sequencing over the time-sorted trace. *)
  let joins = Array.make p false in
  List.iter
    (fun e -> if e.kind = Join then joins.(e.proc) <- true)
    events;
  let up = Array.init p (fun u -> not joins.(u)) in
  let seen = Array.make p false in
  let last_at = Array.make p neg_infinity in
  List.iter
    (fun e ->
      let u = e.proc in
      if e.at = last_at.(u) then
        invalid_arg "Churn.validate: simultaneous events on one processor";
      last_at.(u) <- e.at;
      (match e.kind with
      | Join ->
        if seen.(u) then
          invalid_arg "Churn.validate: a join must be the processor's first event";
        up.(u) <- true
      | Crash ->
        if not up.(u) then
          invalid_arg "Churn.validate: crash of a processor that is already down";
        up.(u) <- false
      | Recover ->
        if up.(u) then
          invalid_arg "Churn.validate: recovery of a processor that is up";
        if (not seen.(u)) && joins.(u) then
          invalid_arg "Churn.validate: a join must be the processor's first event";
        up.(u) <- true
      | Speed _ ->
        if (not seen.(u)) && joins.(u) then
          invalid_arg "Churn.validate: a join must be the processor's first event");
      seen.(u) <- true)
    (sorted events)

(* CSV round-trip: at,proc,event[,factor]. *)

let kind_name = function
  | Crash -> "crash"
  | Recover -> "recover"
  | Join -> "join"
  | Speed _ -> "speed"

let of_csv_string s =
  let lines = String.split_on_char '\n' s in
  let rev = ref [] and line_no = ref 0 and error = ref None in
  let fail fmt = Printf.ksprintf (fun m -> error := Some m) fmt in
  List.iter
    (fun raw ->
      incr line_no;
      if !error = None then begin
        let line = String.trim raw in
        if line = "" then ()
        else begin
          let cells = List.map String.trim (String.split_on_char ',' line) in
          match cells with
          | [ a; b; c ] | [ a; b; c; _ ]
            when !rev = []
                 && String.lowercase_ascii a = "at"
                 && String.lowercase_ascii b = "proc"
                 && String.lowercase_ascii c = "event" ->
            ()
          | at :: proc :: kind :: rest -> (
            match (float_of_string_opt at, int_of_string_opt proc) with
            | None, _ -> fail "line %d: not a number: %S" !line_no at
            | _, None -> fail "line %d: not a processor index: %S" !line_no proc
            | Some at, Some proc -> (
              let kind_cell = String.lowercase_ascii kind in
              match (kind_cell, rest) with
              | "crash", [] -> rev := { at; proc; kind = Crash } :: !rev
              | "recover", [] -> rev := { at; proc; kind = Recover } :: !rev
              | "join", [] -> rev := { at; proc; kind = Join } :: !rev
              | "speed", [ f ] -> (
                match float_of_string_opt f with
                | Some f -> rev := { at; proc; kind = Speed f } :: !rev
                | None -> fail "line %d: not a speed factor: %S" !line_no f)
              | "speed", [] -> fail "line %d: speed row needs a factor column" !line_no
              | ("crash" | "recover" | "join"), _ :: _ ->
                fail "line %d: unexpected fourth column" !line_no
              | _ -> fail "line %d: unknown event: %S" !line_no kind))
          | _ -> fail "line %d: expected at,proc,event[,factor]" !line_no
        end
      end)
    lines;
  match !error with Some e -> Error e | None -> Ok (List.rev !rev)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> of_csv_string contents
  | exception Sys_error msg -> Error msg

let to_csv events =
  let buf = Buffer.create (32 * (List.length events + 1)) in
  Buffer.add_string buf "at,proc,event\n";
  List.iter
    (fun e ->
      match e.kind with
      | Speed f ->
        Buffer.add_string buf
          (Printf.sprintf "%.17g,%d,speed,%.17g\n" e.at e.proc f)
      | k -> Buffer.add_string buf (Printf.sprintf "%.17g,%d,%s\n" e.at e.proc (kind_name k)))
    events;
  Buffer.contents buf

(* Live-platform state. *)

type state = { up : bool array; factors : float array }

let initial ~p events =
  let up = Array.make p true in
  List.iter (fun e -> if e.kind = Join then up.(e.proc) <- false) events;
  { up; factors = Array.make p 1. }

let apply state e =
  let up = Array.copy state.up and factors = Array.copy state.factors in
  (match e.kind with
  | Crash -> up.(e.proc) <- false
  | Recover | Join -> up.(e.proc) <- true
  | Speed f -> factors.(e.proc) <- factors.(e.proc) *. f);
  { up; factors }

let alive state u = state.up.(u)
let factor state u = state.factors.(u)

let survivors state =
  let p = Array.length state.up in
  Array.of_list (List.filter (fun u -> state.up.(u)) (List.init p Fun.id))

let fingerprint state =
  let buf = Buffer.create (20 * Array.length state.up) in
  Array.iteri
    (fun u up ->
      Buffer.add_char buf (if up then '1' else '0');
      Buffer.add_string buf (Printf.sprintf "%Lx;" (Int64.bits_of_float state.factors.(u))))
    state.up;
  Buffer.contents buf

(* Compilation to Fault_sim / Workload_sim vocabulary. *)

let crashes ~p events =
  validate ~p events;
  let events = sorted events in
  let down_since = Array.make p None in
  let rev = ref [] in
  List.iter
    (fun e ->
      match e.kind with
      | Join ->
        rev :=
          { Pipeline_sim.Fault_sim.at = 0.; proc = e.proc; recover_at = Some e.at }
          :: !rev
      | Crash -> down_since.(e.proc) <- Some e.at
      | Recover -> (
        match down_since.(e.proc) with
        | Some at ->
          down_since.(e.proc) <- None;
          rev :=
            { Pipeline_sim.Fault_sim.at; proc = e.proc; recover_at = Some e.at }
            :: !rev
        | None -> ())
      | Speed _ -> ())
    events;
  Array.iteri
    (fun u since ->
      match since with
      | Some at -> rev := { Pipeline_sim.Fault_sim.at; proc = u; recover_at = None } :: !rev
      | None -> ())
    down_since;
  List.rev !rev

let slowdowns events =
  List.filter_map
    (fun e ->
      match e.kind with
      | Speed factor ->
        Some { Pipeline_sim.Workload_sim.at = e.at; proc = e.proc; factor }
      | _ -> None)
    (sorted events)

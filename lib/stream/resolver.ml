open Pipeline_model
module Tol = Pipeline_util.Tol

type entry = {
  survivors : int array;
  live_engine : Cost.t;  (* all processors, effective (degraded) speeds *)
  sub_inst : Instance.t option;  (* survivors only; None when all dead *)
  sub_engine : Cost.t option;
}

type cache = { inst : Instance.t; table : (string, entry) Hashtbl.t }

let cache (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Resolver.cache: platform must be communication-homogeneous";
  { inst; table = Hashtbl.create 16 }

let instance cache = cache.inst

type mode = Kept | Repaired | Solved | Fallback

type plan = {
  mapping : Mapping.t;
  period : float;
  latency : float;
  met_threshold : bool;
  mode : mode;
  migrated_stages : int;
  migration_volume : float;
}

let c_cache_hits =
  Obs.Counter.make ~doc:"resolver live-platform cache hits" "stream.resolve.cache_hits"

let c_cache_misses =
  Obs.Counter.make ~doc:"resolver live-platform cache misses"
    "stream.resolve.cache_misses"

let c_warm = Obs.Counter.make ~doc:"warm resolves" "stream.resolve.warm_calls"
let c_cold = Obs.Counter.make ~doc:"cold (oracle) resolves" "stream.resolve.cold_calls"
let c_kept = Obs.Counter.make ~doc:"resolves that kept the incumbent" "stream.resolve.kept"

let c_repaired =
  Obs.Counter.make ~doc:"resolves settled by the dead-interval repair"
    "stream.resolve.repaired"

let c_solved =
  Obs.Counter.make ~doc:"resolves that ran the full heuristic" "stream.resolve.solved"

let c_fallbacks =
  Obs.Counter.make ~doc:"resolves degraded to the fastest survivor"
    "stream.resolve.fallbacks"

let c_pruned =
  Obs.Counter.make ~doc:"heuristic solves skipped by the candidate-set prune"
    "stream.resolve.pruned"

let c_migrated =
  Obs.Counter.make ~doc:"stages migrated across all resolves"
    "stream.resolve.migrated_stages"

(* Effective speed of a processor under the composed churn factors. *)
let effective_speed (inst : Instance.t) state u =
  Platform.speed inst.platform u *. Churn.factor state u

let build_entry (inst : Instance.t) state =
  let platform = inst.platform and app = inst.app in
  let p = Platform.p platform in
  let survivors = Churn.survivors state in
  let live_speeds = Array.init p (fun u -> effective_speed inst state u) in
  let bandwidth =
    if p > 1 then Platform.bandwidth platform 0 1 else Platform.io_bandwidth platform 0
  in
  let io_bandwidth = Platform.io_bandwidth platform 0 in
  let live_platform = Platform.comm_homogeneous ~io_bandwidth ~bandwidth live_speeds in
  let live_engine = Cost.make app live_platform in
  let sub_inst, sub_engine =
    if Array.length survivors = 0 then (None, None)
    else begin
      let speeds = Array.map (fun u -> live_speeds.(u)) survivors in
      let sub_platform = Platform.comm_homogeneous ~io_bandwidth ~bandwidth speeds in
      let sub = Instance.make ~id:inst.id ~seed:inst.seed app sub_platform in
      (Some sub, Some (Cost.make app sub_platform))
    end
  in
  { survivors; live_engine; sub_inst; sub_engine }

let entry cache state =
  let key = Churn.fingerprint state in
  match Hashtbl.find_opt cache.table key with
  | Some e ->
    Obs.Counter.incr c_cache_hits;
    e
  | None ->
    Obs.Counter.incr c_cache_misses;
    let e = build_entry cache.inst state in
    Hashtbl.add cache.table key e;
    e

let check_mapping (inst : Instance.t) mapping who =
  if Mapping.n mapping <> Application.n inst.app then
    invalid_arg (who ^ ": mapping does not match the application");
  if not (Mapping.valid_on mapping inst.platform) then
    invalid_arg (who ^ ": mapping does not fit the platform")

let evaluate_on engine state mapping =
  if Array.exists (fun u -> not (Churn.alive state u)) (Mapping.procs mapping) then
    None
  else Some (Cost.summary engine mapping)

let evaluate cache state mapping =
  check_mapping cache.inst mapping "Resolver.evaluate";
  evaluate_on (entry cache state).live_engine state mapping

let default_heuristic () =
  match Pipeline_registry.find "h1-sp-mono-p" with
  | Some h -> h
  | None -> assert false

let check_heuristic (h : Pipeline_registry.info) =
  (match h.kind with
  | Pipeline_registry.Period_fixed -> ()
  | Pipeline_registry.Latency_fixed ->
    invalid_arg "Resolver.resolve: heuristic must take a period threshold");
  match h.stack with
  | Pipeline_registry.Core | Pipeline_registry.Extension -> ()
  | _ ->
    invalid_arg
      "Resolver.resolve: heuristic must be a plain-mapping (core or extension) row"

(* Renumber a mapping solved on the survivor sub-platform back to the
   original processor indices (same shape as [Ft_remap.translate]). *)
let translate ~n ~survivors mapping =
  let cuts =
    List.init (Mapping.m mapping - 1) (fun j -> Interval.last (Mapping.interval mapping j))
  in
  let procs =
    Array.to_list (Array.map (fun u -> survivors.(u)) (Mapping.procs mapping))
  in
  Mapping.of_cuts ~n ~cuts ~procs

let migration (app : Application.t) ~before ~after =
  let n = Application.n app in
  let stages = ref 0 and volume = ref 0. in
  for k = 1 to n do
    if Mapping.proc_of_stage before k <> Mapping.proc_of_stage after k then begin
      incr stages;
      volume := !volume +. Application.delta app (k - 1)
    end
  done;
  (!stages, !volume)

let plan_of (inst : Instance.t) engine state ~before ~threshold ~mode mapping =
  match evaluate_on engine state mapping with
  | None -> assert false (* resolver plans only enrol live processors *)
  | Some s ->
    let migrated_stages, migration_volume = migration inst.app ~before ~after:mapping in
    Obs.Counter.add c_migrated migrated_stages;
    {
      mapping;
      period = s.Cost.period;
      latency = s.Cost.latency;
      met_threshold = Tol.meets s.Cost.period threshold;
      mode;
      migrated_stages;
      migration_volume;
    }

(* The dead-interval repair: move only the intervals sitting on dead
   processors, heaviest interval to the fastest free survivor. *)
let repair (inst : Instance.t) e state before =
  let dead =
    List.filter
      (fun j -> not (Churn.alive state (Mapping.proc before j)))
      (List.init (Mapping.m before) Fun.id)
  in
  if dead = [] then None
  else begin
    let used = Array.make (Platform.p inst.platform) false in
    Array.iter
      (fun u -> if Churn.alive state u then used.(u) <- true)
      (Mapping.procs before);
    let free =
      Array.of_list (List.filter (fun u -> not used.(u)) (Array.to_list e.survivors))
    in
    if Array.length free < List.length dead then None
    else begin
      (* Fastest free survivors first; heaviest dead intervals first. *)
      Array.sort
        (fun u v ->
          match Float.compare (effective_speed inst state v) (effective_speed inst state u) with
          | 0 -> compare u v
          | c -> c)
        free;
      let weight j =
        let iv = Mapping.interval before j in
        Cost.work_sum e.live_engine ~d:(Interval.first iv) ~e:(Interval.last iv)
      in
      let dead_by_weight =
        List.sort
          (fun a b ->
            match Float.compare (weight b) (weight a) with 0 -> compare a b | c -> c)
          dead
      in
      let target = Hashtbl.create 8 in
      List.iteri (fun i j -> Hashtbl.add target j free.(i)) dead_by_weight;
      let assignment =
        List.mapi
          (fun j (iv, u) ->
            match Hashtbl.find_opt target j with
            | Some u' -> (iv, u')
            | None -> (iv, u))
          (Mapping.intervals before)
      in
      Some (Mapping.make ~n:(Mapping.n before) assignment)
    end
  end

let fastest_survivor inst state survivors =
  let best = ref survivors.(0) in
  Array.iter
    (fun u -> if effective_speed inst state u > effective_speed inst state !best then best := u)
    survivors;
  !best

let resolve ?heuristic ~strategy cache state ~before ~threshold =
  let inst = cache.inst in
  check_mapping inst before "Resolver.resolve";
  if not (Float.is_finite threshold && threshold > 0.) then
    invalid_arg "Resolver.resolve: threshold must be finite and > 0";
  let heuristic = match heuristic with Some h -> h | None -> default_heuristic () in
  check_heuristic heuristic;
  let n = Application.n inst.app in
  Obs.span "stream:resolve" @@ fun () ->
  match strategy with
  | `Warm -> begin
    Obs.Counter.incr c_warm;
    let e = entry cache state in
    if Array.length e.survivors = 0 then None
    else begin
      let finish = plan_of inst e.live_engine state ~before ~threshold in
      let keep =
        match evaluate_on e.live_engine state before with
        | Some s when Tol.meets s.Cost.period threshold ->
          Obs.Counter.incr c_kept;
          Some (finish ~mode:Kept before)
        | _ -> None
      in
      match keep with
      | Some plan -> Some plan
      | None -> begin
        let repaired =
          match repair inst e state before with
          | Some mapping ->
            let plan = finish ~mode:Repaired mapping in
            if plan.met_threshold then begin
              Obs.Counter.incr c_repaired;
              Some plan
            end
            else None
          | None -> None
        in
        match repaired with
        | Some plan -> Some plan
        | None -> begin
          let sub_inst = Option.get e.sub_inst and sub_engine = Option.get e.sub_engine in
          let feasible =
            (* The engine-cached candidate set bounds every achievable
               period from below: a threshold under the smallest
               candidate needs no heuristic run to be refuted. The lazy
               set answers the minimum in O(n·|speeds|) even when the
               array form would be too large to build. *)
            match Candidates.Set.min_elt (Candidates.Set.of_engine sub_engine) with
            | Some c -> Tol.meets c threshold
            | None -> false
          in
          if not feasible then Obs.Counter.incr c_pruned;
          let solved =
            if not feasible then None
            else
              match heuristic.Pipeline_registry.solve sub_inst ~threshold with
              | Some outcome -> (
                match Pipeline_registry.solution_of_outcome outcome with
                | Some sol ->
                  Obs.Counter.incr c_solved;
                  Some
                    (finish ~mode:Solved
                       (translate ~n ~survivors:e.survivors
                          sol.Pipeline_core.Solution.mapping))
                | None -> None)
              | None -> None
          in
          match solved with
          | Some plan -> Some plan
          | None ->
            Obs.Counter.incr c_fallbacks;
            let u = fastest_survivor inst state e.survivors in
            Some (finish ~mode:Fallback (Mapping.single ~n ~proc:u))
        end
      end
    end
  end
  | `Cold -> begin
    (* The oracle: rebuild everything from scratch, no keep, no repair,
       no prune — a full heuristic solve at every event. *)
    Obs.Counter.incr c_cold;
    let e = build_entry inst state in
    if Array.length e.survivors = 0 then None
    else begin
      let finish = plan_of inst e.live_engine state ~before ~threshold in
      let sub_inst = Option.get e.sub_inst in
      match heuristic.Pipeline_registry.solve sub_inst ~threshold with
      | Some outcome -> (
        match Pipeline_registry.solution_of_outcome outcome with
        | Some sol ->
          Some
            (finish ~mode:Solved
               (translate ~n ~survivors:e.survivors sol.Pipeline_core.Solution.mapping))
        | None ->
          Obs.Counter.incr c_fallbacks;
          let u = fastest_survivor inst state e.survivors in
          Some (finish ~mode:Fallback (Mapping.single ~n ~proc:u)))
      | None ->
        Obs.Counter.incr c_fallbacks;
        let u = fastest_survivor inst state e.survivors in
        Some (finish ~mode:Fallback (Mapping.single ~n ~proc:u))
    end
  end

(** The streaming driver: a trace of arrivals, a trace of churn, one
    controller — end to end.

    The run is a deterministic fold over the merged timeline of churn
    events and controller retry wake-ups. Each event updates the live
    {!Churn.state} and asks the {!Controller} for a reaction; whenever
    the mapping actually changes, the stream is cut into a new
    {e segment}. Each segment is then executed by
    {!Pipeline_sim.Fault_sim} under drain-and-switch semantics:

    {ul
    {- data sets belong to the segment in which they {e arrive}; sets
       admitted to the old mapping drain through it while the new one
       spins up (no in-flight hand-off between mappings);}
    {- sets arriving during the migration window wait for it: their
       arrival is clamped to the segment's effective start (open time +
       reaction latency);}
    {- within a segment, the churned platform is compiled into the
       fault simulator's own vocabulary — down-windows of enrolled
       processors become crash/recover events, composed speed factors
       become slowdowns — so segment execution inherits the kill /
       back-pressure / retry semantics of {!Pipeline_sim.Fault_sim}
       verbatim;}
    {- with an {e empty churn trace} there is a single segment whose
       fault-simulator run carries no crash and no slowdown, and whose
       statistics are returned {e verbatim}: the streaming run is
       bit-for-bit the static {!Pipeline_sim.Workload_sim} run of the
       same trace — the degenerate case the qcheck suite pins.}}

    Determinism: the controller fold is sequential, segment seeds
    derive from the run seed and the segment index, and every float
    reduction follows segment order — same config, same stats, at any
    [--jobs]. *)

open Pipeline_model

type config = {
  controller : Controller.config;
  arrivals : float array;       (** absolute instants, sorted, >= 0 *)
  churn : Churn.event list;
  noise : Pipeline_sim.Workload_sim.noise;
  retry : Pipeline_sim.Fault_sim.retry;  (** within-segment re-execution *)
  seed : int;
}

val default_config : threshold:float -> config
(** {!Controller.default}, 200 saturated arrivals (all at time 0), no
    churn, no noise, {!Pipeline_sim.Fault_sim.no_retry}, seed 0. *)

type stats = {
  workload : Pipeline_sim.Workload_sim.stats;
      (** merged over segments; [makespan] is absolute (run origin).
          Single-segment runs return the segment's statistics verbatim;
          multi-segment latency statistics are recomputed over the
          concatenated per-set latencies and [steady_period] is the
          completion-weighted mean over segments that completed at
          least two sets. *)
  offered : int;        (** arrivals in the trace *)
  lost : int;           (** offered minus completed (drops + stalls) *)
  dropped : int;        (** fault-layer drops, summed over segments *)
  killed : int;         (** in-flight computations lost to crashes *)
  sim_retries : int;    (** fault-layer re-executions *)
  segments : int;       (** mapping epochs (>= 1) *)
  reactions : Controller.reaction list;  (** chronological *)
  migrations : int;     (** reactions that moved at least one stage *)
  migrated_stages : int;
  migration_volume : float;
  reaction_mean : float;  (** mean reaction latency over migrations *)
  reaction_max : float;
  degradation : float;
      (** time-weighted mean of (live period / threshold) from run
          origin to the later of the absolute makespan and the last
          event — 1.0 is a stream that never left its threshold;
          [infinity] if the platform ever went completely dark. *)
  final_mapping : Mapping.t;
}

val run : ?config:config -> Instance.t -> initial:Mapping.t -> stats
(** Raises [Invalid_argument] on everything {!Pipeline_sim.Fault_sim}
    rejects for the embedded workload configuration, plus: an empty or
    unsorted arrival trace, a churn trace {!Churn.validate} rejects,
    and a controller configuration {!Controller.create} rejects. *)

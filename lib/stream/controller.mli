(** The continuous churn controller.

    {!Ft_remap} answers one crash; this controller runs for the lifetime
    of a stream, reacting to every churn event under an online policy:

    {ul
    {- {e hysteresis} — never migrate without cause. A migration is
       {e forced} when the running mapping enrols a dead processor, and
       {e voluntary} when its live period exceeds
       [hysteresis × threshold]; a degraded-but-tolerable mapping
       (inside the hysteresis band) is left alone to avoid thrashing;}
    {- {e migration budget} — voluntary migrations stop once their
       cumulative volume ([Σ δ_{k-1}] over moved stages) would exceed
       the budget ({!action} [Deferred]); forced migrations always go
       through (and still drain the budget);}
    {- {e bounded retry with backoff} — when a re-solve degrades
       (fallback, or the new mapping misses the threshold), the
       controller asks to be woken [backoff] time units later, at most
       [max_retries] times per degradation episode; a threshold-meeting
       resolve re-arms the retry budget;}
    {- {e graceful degradation} — the resolver's fastest-survivor
       fallback keeps the stream alive when no threshold-meeting mapping
       exists; with no survivor at all the controller reports
       [Stalled] and retries, waiting for the platform to return.}}

    The controller is a pure fold over events: [on_event] consumes the
    live {!Churn.state} after the event and returns the {!reaction}; the
    caller (the streaming simulator, or a test) owns the clock and
    delivers retry wake-ups at [retry_at]. Warm or cold resolving is a
    config switch so campaigns can run the same policy against the cold
    oracle. *)

open Pipeline_model

type config = {
  heuristic : Pipeline_registry.info option;  (** default: H1 *)
  threshold : float;          (** the period bound being maintained *)
  hysteresis : float;         (** voluntary-migration trigger factor, >= 1 *)
  migration_budget : float;   (** cumulative voluntary volume; [infinity] = unbounded *)
  max_retries : int;          (** per degradation episode, >= 0 *)
  backoff : float;            (** retry delay, finite > 0 *)
  strategy : [ `Warm | `Cold ];
}

val default : threshold:float -> config
(** H1, hysteresis 1.1, unbounded budget, 3 retries, backoff
    [threshold × 10], warm. *)

type action =
  | Kept       (** no cause to migrate (within the hysteresis band) *)
  | Migrated   (** re-solved to a threshold-meeting mapping *)
  | Degraded   (** re-solved, but the best available mapping misses the
                   threshold (fallback or degraded solve) *)
  | Deferred   (** voluntary migration blocked by the exhausted budget *)
  | Stalled    (** no live processor; the incumbent is unrunnable *)

type reaction = {
  at : float;
  action : action;
  mode : Resolver.mode option;     (** [None] for [Kept]/[Deferred]/[Stalled] *)
  mapping : Mapping.t;             (** mapping in place after the event *)
  period : float;                  (** live period ([infinity] when stalled) *)
  latency : float;
  met_threshold : bool;
  migrated_stages : int;
  migration_volume : float;
  reaction_latency : float;        (** migration volume / IO bandwidth *)
  retry_at : float option;         (** wake the controller again at this time *)
}

type t
(** Mutable controller state: current mapping, remaining budget,
    remaining retries. *)

val create : ?config:config -> Instance.t -> initial:Mapping.t -> threshold:float -> t
(** [threshold] overrides [config.threshold] (so [default] composes).
    Raises [Invalid_argument] on a config out of range, an [initial]
    mapping that does not fit, or a platform that is not
    communication-homogeneous. *)

val mapping : t -> Mapping.t
val budget_left : t -> float
val config : t -> config

val period : t -> Churn.state -> float
(** Live period of the current mapping on the churned platform —
    [infinity] when it enrols a dead processor. The streaming
    simulator's degradation metric reads this between events. *)

val on_event : t -> Churn.state -> at:float -> reaction
(** React to the platform being in [state] at time [at] (also the entry
    point for retry wake-ups: pass the current state again). *)

open Pipeline_model
module Rng = Pipeline_util.Rng

type arrival =
  | Saturated
  | Periodic of float
  | Poisson of float
  | Trace of float array

type noise = No_noise | Uniform_factor of float

type slowdown = { at : float; proc : int; factor : float }

type config = {
  arrival : arrival;
  noise : noise;
  slowdowns : slowdown list;
  datasets : int;
  seed : int;
}

let default_config =
  { arrival = Saturated; noise = No_noise; slowdowns = []; datasets = 200; seed = 0 }

type stats = {
  completed : int;
  makespan : float;
  steady_period : float;
  throughput : float;
  latency_mean : float;
  latency_p95 : float;
  latency_max : float;
  sojourn_max : float;
  latencies : float list;
}

(* One-slot synchronisation cell for a (boundary, data set) rendezvous:
   whichever side arrives second fires the pending continuation. *)
type cell =
  | Empty
  | Offered          (* sender ready, receiver not yet *)
  | Waiting of (Des.t -> unit)  (* receiver ready, sender not yet *)
  | Fired

let validate config (inst : Instance.t) mapping =
  if config.datasets < 1 then invalid_arg "Workload_sim.run: datasets must be >= 1";
  if Mapping.n mapping <> Application.n inst.app then
    invalid_arg "Workload_sim.run: mapping does not match the application";
  if not (Mapping.valid_on mapping inst.platform) then
    invalid_arg "Workload_sim.run: mapping does not fit the platform";
  (match config.noise with
  | Uniform_factor e when not (e >= 0. && e < 1.) ->
    invalid_arg "Workload_sim.run: noise amplitude must be in [0,1)"
  | _ -> ());
  (match config.arrival with
  | (Periodic r | Poisson r) when not (r > 0. && Float.is_finite r) ->
    invalid_arg "Workload_sim.run: rate must be finite and > 0"
  | Trace a ->
    if Array.length a <> config.datasets then
      invalid_arg "Workload_sim.run: trace length must equal datasets";
    Array.iteri
      (fun t at ->
        if not (Float.is_finite at && at >= 0.) then
          invalid_arg "Workload_sim.run: trace arrival must be finite and >= 0";
        if t > 0 && at < a.(t - 1) then
          invalid_arg "Workload_sim.run: trace arrivals must be non-decreasing")
      a
  | _ -> ());
  List.iter
    (fun s ->
      if not (s.factor > 0. && Float.is_finite s.factor) then
        invalid_arg "Workload_sim.run: slowdown factor must be finite and > 0";
      if Float.is_nan s.at || s.at < 0. then
        invalid_arg "Workload_sim.run: slowdown event at a negative time";
      if s.proc < 0 || s.proc >= Platform.p inst.platform then
        invalid_arg "Workload_sim.run: slowdown on a processor outside the platform")
    config.slowdowns

let c_runs =
  Obs.Counter.make ~doc:"Workload_sim.run invocations" "sim.workload.runs"

let c_datasets =
  Obs.Counter.make ~doc:"data sets pushed through Workload_sim"
    "sim.workload.datasets"

let run ?(config = default_config) (inst : Instance.t) mapping =
  validate config inst mapping;
  Obs.Counter.incr c_runs;
  Obs.Counter.add c_datasets config.datasets;
  let app = inst.app and platform = inst.platform in
  let m = Mapping.m mapping in
  let k = config.datasets in
  let rng = Rng.create config.seed in
  (* Pre-draw arrivals and noise so evaluation order cannot perturb the
     streams. *)
  let arrivals =
    match config.arrival with
    | Saturated -> Array.make k 0.
    | Periodic period -> Array.init k (fun t -> float_of_int t *. period)
    | Poisson rate ->
      let acc = ref 0. in
      Array.init k (fun _ ->
          (* Exponential inter-arrival via inverse transform. *)
          let u = 1. -. Rng.float rng 1. in
          acc := !acc +. (-.log u /. rate);
          !acc)
    | Trace a -> Array.copy a
  in
  let factors =
    Array.init m (fun _ ->
        Array.init k (fun _ ->
            match config.noise with
            | No_noise -> 1.
            | Uniform_factor e -> Rng.float_in rng (1. -. e) (1. +. e)))
  in
  let first j = Interval.first (Mapping.interval mapping j) in
  let last j = Interval.last (Mapping.interval mapping j) in
  let in_bandwidth j =
    if j = 0 then Platform.io_bandwidth platform (Mapping.proc mapping 0)
    else
      Platform.bandwidth platform (Mapping.proc mapping (j - 1)) (Mapping.proc mapping j)
  in
  let out_bandwidth j =
    if j = m - 1 then Platform.io_bandwidth platform (Mapping.proc mapping j)
    else
      Platform.bandwidth platform (Mapping.proc mapping j) (Mapping.proc mapping (j + 1))
  in
  let in_time j = Application.delta app (first j - 1) /. in_bandwidth j in
  let out_time j = Application.delta app (last j) /. out_bandwidth j in
  (* Effective speed multiplier of a processor at a given time. *)
  let speed_factor u at =
    List.fold_left
      (fun acc s -> if s.proc = u && s.at <= at then acc *. s.factor else acc)
      1. config.slowdowns
  in
  let comp_time j t ~at =
    let u = Mapping.proc mapping j in
    Application.work_sum app (first j) (last j)
    /. (Platform.speed platform u *. speed_factor u at)
    *. factors.(j).(t)
  in
  (* Rendezvous cells for the m-1 internal boundaries. *)
  let cells = Array.init (max 0 (m - 1)) (fun _ -> Array.make k Empty) in
  (* Sender-side completion continuations (the send op blocks the
     upstream process until the transfer ends). *)
  let send_done = Array.init (max 0 (m - 1)) (fun _ -> Array.make k None) in
  let first_transfer_start = Array.make k nan in
  let completions = Array.make k nan in
  let des = Des.create () in
  (* The interval processes. Each is a chain of continuations; interval j
     handles data sets in order. *)
  let rec start_dataset j t des =
    if t < k then begin
      if j = 0 then begin
        let at = Float.max (Des.now des) arrivals.(t) in
        Des.schedule_at des ~time:at (fun des ->
            first_transfer_start.(t) <- Des.now des;
            transfer_in j t des)
      end
      else begin
        let boundary = j - 1 in
        match cells.(boundary).(t) with
        | Offered ->
          cells.(boundary).(t) <- Fired;
          transfer_in j t des
        | Empty -> cells.(boundary).(t) <- Waiting (fun des -> transfer_in j t des)
        | Waiting _ | Fired -> assert false
      end
    end
  and transfer_in j t des =
    Des.schedule des ~delay:(in_time j) (fun des ->
        (* The upstream send completes with the transfer. *)
        if j > 0 then begin
          match send_done.(j - 1).(t) with
          | Some continuation ->
            send_done.(j - 1).(t) <- None;
            Des.schedule des ~delay:0. continuation
          | None -> assert false (* the sender blocked before offering *)
        end;
        Des.schedule des ~delay:(comp_time j t ~at:(Des.now des)) (fun des ->
            after_compute j t des))
  and after_compute j t des =
    if j = m - 1 then
      Des.schedule des ~delay:(out_time j) (fun des ->
          completions.(t) <- Des.now des;
          start_dataset j (t + 1) des)
    else begin
      (* Offer the data downstream and block until the transfer ends. *)
      send_done.(j).(t) <- Some (fun des -> start_dataset j (t + 1) des);
      match cells.(j).(t) with
      | Waiting continuation ->
        cells.(j).(t) <- Fired;
        Des.schedule des ~delay:0. continuation
      | Empty -> cells.(j).(t) <- Offered
      | Offered | Fired -> assert false
    end
  in
  for j = 0 to m - 1 do
    start_dataset j 0 des
  done;
  Des.run des;
  (* Measurements. *)
  let running_max = Array.make k 0. in
  let acc = ref neg_infinity in
  Array.iteri
    (fun t c ->
      acc := Float.max !acc c;
      running_max.(t) <- !acc)
    completions;
  let makespan = running_max.(k - 1) in
  let steady_period =
    if k < 2 then 0.
    else if k < 4 then (running_max.(k - 1) -. running_max.(0)) /. float_of_int (k - 1)
    else begin
      let half = k / 2 in
      (running_max.(k - 1) -. running_max.(half)) /. float_of_int (k - 1 - half)
    end
  in
  let latencies =
    Array.to_list (Array.init k (fun t -> completions.(t) -. first_transfer_start.(t)))
  in
  let sojourns = Array.init k (fun t -> completions.(t) -. arrivals.(t)) in
  {
    completed = k;
    makespan;
    steady_period;
    throughput = (if makespan > 0. then float_of_int k /. makespan else infinity);
    latency_mean = Pipeline_util.Stats.mean latencies;
    latency_p95 = Pipeline_util.Stats.percentile 0.95 latencies;
    latency_max = snd (Pipeline_util.Stats.min_max latencies);
    sojourn_max = Array.fold_left Float.max neg_infinity sojourns;
    latencies;
  }

open Pipeline_model
module Rng = Pipeline_util.Rng
module W = Workload_sim

type crash = { at : float; proc : int; recover_at : float option }

type retry = { max_retries : int; backoff : float }

let no_retry = { max_retries = 0; backoff = 0. }

type config = { base : W.config; crashes : crash list; retry : retry }

let default_config = { base = W.default_config; crashes = []; retry = no_retry }

type stats = {
  workload : W.stats;
  offered : int;
  dropped : int;
  killed : int;
  retries : int;
}

let survival stats =
  float_of_int stats.workload.W.completed /. float_of_int stats.offered

let validate_faults config (inst : Instance.t) =
  let p = Platform.p inst.platform in
  if config.retry.max_retries < 0 then
    invalid_arg "Fault_sim.run: max_retries must be >= 0";
  if not (config.retry.backoff >= 0. && Float.is_finite config.retry.backoff) then
    invalid_arg "Fault_sim.run: backoff must be finite and >= 0";
  List.iter
    (fun c ->
      if Float.is_nan c.at || c.at < 0. then
        invalid_arg "Fault_sim.run: crash at a negative time";
      if c.proc < 0 || c.proc >= p then
        invalid_arg "Fault_sim.run: crash on a processor outside the platform";
      match c.recover_at with
      | Some r when not (Float.is_finite r && r > c.at) ->
        invalid_arg "Fault_sim.run: recovery must be finite and after the crash"
      | _ -> ())
    config.crashes;
  let by_proc = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let previous = Option.value (Hashtbl.find_opt by_proc c.proc) ~default:[] in
      Hashtbl.replace by_proc c.proc (c :: previous))
    config.crashes;
  Hashtbl.iter
    (fun _proc crashes ->
      let sorted = List.sort (fun a b -> compare a.at b.at) crashes in
      let rec walk = function
        | a :: (b :: _ as rest) ->
          if Option.value a.recover_at ~default:infinity > b.at then
            invalid_arg
              "Fault_sim.run: overlapping crash windows on one processor";
          walk rest
        | _ -> ()
      in
      walk sorted)
    by_proc

(* Rendezvous cell for a (boundary, data set) pair. Compared with
   Workload_sim's cell, the receiver parks both its data path and its
   skip path, and a boundary can carry a drop instead of a data set. *)
type waiting = { data : Des.t -> unit; skip : Des.t -> unit }
type cell = Empty | Offered | Waiting of waiting | Fired | Dropped

let c_runs = Obs.Counter.make ~doc:"Fault_sim.run invocations" "sim.fault.runs"

let c_killed =
  Obs.Counter.make ~doc:"computations killed mid-flight by crashes"
    "sim.fault.killed"

let c_dropped =
  Obs.Counter.make ~doc:"data sets dropped after crashes" "sim.fault.dropped"

let c_retries =
  Obs.Counter.make ~doc:"retry attempts consumed after crashes"
    "sim.fault.retries"

let run ?(config = default_config) (inst : Instance.t) mapping =
  W.validate config.base inst mapping;
  validate_faults config inst;
  Obs.Counter.incr c_runs;
  let app = inst.app and platform = inst.platform in
  let m = Mapping.m mapping in
  let k = config.base.W.datasets in
  let rng = Rng.create config.base.W.seed in
  (* Pre-draw arrivals and noise exactly as Workload_sim does, so the
     seeded streams coincide and a crash-free run is bit-identical. *)
  let arrivals =
    match config.base.W.arrival with
    | W.Saturated -> Array.make k 0.
    | W.Periodic period -> Array.init k (fun t -> float_of_int t *. period)
    | W.Poisson rate ->
      let acc = ref 0. in
      Array.init k (fun _ ->
          let u = 1. -. Rng.float rng 1. in
          acc := !acc +. (-.log u /. rate);
          !acc)
    | W.Trace a -> Array.copy a
  in
  let factors =
    Array.init m (fun _ ->
        Array.init k (fun _ ->
            match config.base.W.noise with
            | W.No_noise -> 1.
            | W.Uniform_factor e -> Rng.float_in rng (1. -. e) (1. +. e)))
  in
  let first j = Interval.first (Mapping.interval mapping j) in
  let last j = Interval.last (Mapping.interval mapping j) in
  let in_bandwidth j =
    if j = 0 then Platform.io_bandwidth platform (Mapping.proc mapping 0)
    else
      Platform.bandwidth platform (Mapping.proc mapping (j - 1)) (Mapping.proc mapping j)
  in
  let out_bandwidth j =
    if j = m - 1 then Platform.io_bandwidth platform (Mapping.proc mapping j)
    else
      Platform.bandwidth platform (Mapping.proc mapping j) (Mapping.proc mapping (j + 1))
  in
  let in_time j = Application.delta app (first j - 1) /. in_bandwidth j in
  let out_time j = Application.delta app (last j) /. out_bandwidth j in
  let speed_factor u at =
    List.fold_left
      (fun acc (s : W.slowdown) ->
        if s.W.proc = u && s.W.at <= at then acc *. s.W.factor else acc)
      1. config.base.W.slowdowns
  in
  let comp_time j t ~at =
    let u = Mapping.proc mapping j in
    Application.work_sum app (first j) (last j)
    /. (Platform.speed platform u *. speed_factor u at)
    *. factors.(j).(t)
  in
  (* Fault state: each processor hosts one interval which handles its
     data sets sequentially, so there is at most one in-flight
     computation and at most one parked continuation per processor. *)
  let p = Platform.p platform in
  let down = Array.make p false in
  let parked : (Des.t -> unit) option array = Array.make p None in
  let inflight : (Des.handle * int * int) option array = Array.make p None in
  let retries_left = Array.init m (fun _ -> Array.make k config.retry.max_retries) in
  let killed = ref 0 and dropped = ref 0 and retries_used = ref 0 in
  let cells = Array.init (max 0 (m - 1)) (fun _ -> Array.make k Empty) in
  let send_done = Array.init (max 0 (m - 1)) (fun _ -> Array.make k None) in
  let first_transfer_start = Array.make k nan in
  let completions = Array.make k nan in
  let des = Des.create () in
  let rec start_dataset j t des =
    if t < k then begin
      if j = 0 then begin
        let at = Float.max (Des.now des) arrivals.(t) in
        Des.schedule_at des ~time:at (fun des ->
            first_transfer_start.(t) <- Des.now des;
            transfer_in j t des)
      end
      else begin
        let boundary = j - 1 in
        match cells.(boundary).(t) with
        | Offered ->
          cells.(boundary).(t) <- Fired;
          transfer_in j t des
        | Dropped -> skip_dataset j t des
        | Empty ->
          cells.(boundary).(t) <-
            Waiting
              {
                data = (fun des -> transfer_in j t des);
                skip = (fun des -> skip_dataset j t des);
              }
        | Waiting _ | Fired -> assert false
      end
    end
  and skip_dataset j t des =
    (* The data set was dropped upstream: pass the drop on and move on. *)
    propagate_drop j t des;
    start_dataset j (t + 1) des
  and propagate_drop j t des =
    if j < m - 1 then begin
      match cells.(j).(t) with
      | Empty -> cells.(j).(t) <- Dropped
      | Waiting w ->
        cells.(j).(t) <- Dropped;
        Des.schedule des ~delay:0. w.skip
      | Offered | Fired | Dropped -> assert false
    end
  and transfer_in j t des =
    Des.schedule des ~delay:(in_time j) (fun des ->
        (* The upstream send completes with the transfer — even into a
           down processor: the interconnect is not the failed part. *)
        if j > 0 then begin
          match send_done.(j - 1).(t) with
          | Some continuation ->
            send_done.(j - 1).(t) <- None;
            Des.schedule des ~delay:0. continuation
          | None -> assert false
        end;
        begin_compute j t des)
  and begin_compute j t des =
    let u = Mapping.proc mapping j in
    if down.(u) then begin
      assert (parked.(u) = None);
      parked.(u) <- Some (fun des -> begin_compute j t des)
    end
    else begin
      let handle =
        Des.schedule_cancellable des ~delay:(comp_time j t ~at:(Des.now des))
          (fun des ->
            inflight.(u) <- None;
            after_compute j t des)
      in
      inflight.(u) <- Some (handle, j, t)
    end
  and after_compute j t des =
    if j = m - 1 then
      Des.schedule des ~delay:(out_time j) (fun des ->
          completions.(t) <- Des.now des;
          start_dataset j (t + 1) des)
    else begin
      send_done.(j).(t) <- Some (fun des -> start_dataset j (t + 1) des);
      match cells.(j).(t) with
      | Waiting w ->
        cells.(j).(t) <- Fired;
        Des.schedule des ~delay:0. w.data
      | Empty -> cells.(j).(t) <- Offered
      | Offered | Fired | Dropped -> assert false
    end
  and drop_dataset j t des =
    incr dropped;
    propagate_drop j t des;
    start_dataset j (t + 1) des
  in
  let on_crash (c : crash) des =
    down.(c.proc) <- true;
    match inflight.(c.proc) with
    | None -> ()
    | Some (handle, j, t) ->
      Des.cancel des handle;
      inflight.(c.proc) <- None;
      incr killed;
      (* A retry waits for the recovery; a permanent crash drops the
         data set right away (nothing will ever replay it). *)
      if c.recover_at <> None && retries_left.(j).(t) > 0 then begin
        retries_left.(j).(t) <- retries_left.(j).(t) - 1;
        incr retries_used;
        assert (parked.(c.proc) = None);
        parked.(c.proc) <-
          Some
            (fun des ->
              Des.schedule des ~delay:config.retry.backoff (fun des ->
                  begin_compute j t des))
      end
      else drop_dataset j t des
  in
  let on_recover proc des =
    down.(proc) <- false;
    match parked.(proc) with
    | None -> ()
    | Some resume ->
      parked.(proc) <- None;
      resume des
  in
  (* Crash/recover events are inserted before any pipeline event, so on
     time ties a crash deterministically beats a completion: a
     computation finishing exactly at the crash instant is killed. *)
  List.iter
    (fun (c : crash) ->
      Des.schedule_at des ~time:c.at (fun des -> on_crash c des);
      Option.iter
        (fun r -> Des.schedule_at des ~time:r (fun des -> on_recover c.proc des))
        c.recover_at)
    (List.sort (fun a b -> compare (a.at, a.proc) (b.at, b.proc)) config.crashes);
  for j = 0 to m - 1 do
    start_dataset j 0 des
  done;
  Des.run des;
  (* Measurements, over the surviving data sets (in arrival order); the
     formulas mirror Workload_sim so a crash-free run is bit-identical. *)
  let survivors =
    List.filter (fun t -> not (Float.is_nan completions.(t))) (List.init k Fun.id)
  in
  let kd = List.length survivors in
  let workload =
    if kd = 0 then
      {
        W.completed = 0;
        makespan = 0.;
        steady_period = 0.;
        throughput = 0.;
        latency_mean = nan;
        latency_p95 = nan;
        latency_max = nan;
        sojourn_max = nan;
        latencies = [];
      }
    else begin
      let comp = Array.of_list (List.map (fun t -> completions.(t)) survivors) in
      let running_max = Array.make kd 0. in
      let acc = ref neg_infinity in
      Array.iteri
        (fun i c ->
          acc := Float.max !acc c;
          running_max.(i) <- !acc)
        comp;
      let makespan = running_max.(kd - 1) in
      let steady_period =
        if kd < 2 then 0.
        else if kd < 4 then
          (running_max.(kd - 1) -. running_max.(0)) /. float_of_int (kd - 1)
        else begin
          let half = kd / 2 in
          (running_max.(kd - 1) -. running_max.(half))
          /. float_of_int (kd - 1 - half)
        end
      in
      let latencies =
        List.map (fun t -> completions.(t) -. first_transfer_start.(t)) survivors
      in
      let sojourns =
        List.map (fun t -> completions.(t) -. arrivals.(t)) survivors
      in
      {
        W.completed = kd;
        makespan;
        steady_period;
        throughput = (if makespan > 0. then float_of_int kd /. makespan else infinity);
        latency_mean = Pipeline_util.Stats.mean latencies;
        latency_p95 = Pipeline_util.Stats.percentile 0.95 latencies;
        latency_max = snd (Pipeline_util.Stats.min_max latencies);
        sojourn_max = List.fold_left Float.max neg_infinity sojourns;
        latencies;
      }
    end
  in
  Obs.Counter.add c_killed !killed;
  Obs.Counter.add c_dropped !dropped;
  Obs.Counter.add c_retries !retries_used;
  {
    workload;
    offered = k;
    dropped = !dropped;
    killed = !killed;
    retries = !retries_used;
  }

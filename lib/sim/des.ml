type t = {
  mutable clock : float;
  events : (t -> unit) Heap.t;
  mutable max_queue : int;
}

let c_fired = Obs.Counter.make ~doc:"DES events fired" "sim.des.fired"

let c_cancelled =
  Obs.Counter.make ~doc:"DES events cancelled before firing" "sim.des.cancelled"

let g_max_queue =
  Obs.Gauge.make ~doc:"largest DES event-queue depth observed"
    "sim.des.max_queue"

let create () = { clock = 0.; events = Heap.create (); max_queue = 0 }
let now t = t.clock

let schedule_at t ~time handler =
  if Float.is_nan time || time < t.clock then
    invalid_arg "Des.schedule_at: time in the past";
  Heap.push t.events ~priority:time handler;
  if Obs.metrics_enabled () then
    t.max_queue <- max t.max_queue (Heap.size t.events)

let schedule t ~delay handler =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Des.schedule: delay must be finite and >= 0";
  schedule_at t ~time:(t.clock +. delay) handler

let run ?(until = infinity) t =
  let fired = ref 0 in
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | None -> continue := false
    | Some (time, _) when time > until -> continue := false
    | Some _ ->
      (match Heap.pop t.events with
      | Some (time, handler) ->
        t.clock <- time;
        incr fired;
        handler t
      | None -> continue := false)
  done;
  (* One flush per run: sums and maxima merge order-independently, so
     the totals match at any [--jobs N]. *)
  Obs.Counter.add c_fired !fired;
  Obs.Gauge.observe g_max_queue t.max_queue

let pending t = Heap.size t.events

type handle = { mutable live : bool }

let schedule_cancellable t ~delay handler =
  let h = { live = true } in
  schedule t ~delay (fun t -> if h.live then handler t);
  h

let cancel _t h =
  if h.live then Obs.Counter.incr c_cancelled;
  h.live <- false
let cancelled h = not h.live

module Resource = struct
  type des = t

  type t = {
    des : des;
    mutable busy : bool;
    waiters : (des -> unit) Queue.t;
  }

  let create des = { des; busy = false; waiters = Queue.create () }

  let grant r continuation =
    (* Deliver through the event queue so continuations never run inside
       the caller's stack frame (keeps ordering deterministic). *)
    schedule r.des ~delay:0. continuation

  let acquire r continuation =
    if r.busy then Queue.add continuation r.waiters
    else begin
      r.busy <- true;
      grant r continuation
    end

  let release r =
    if not r.busy then invalid_arg "Des.Resource.release: not held";
    match Queue.take_opt r.waiters with
    | Some continuation -> grant r continuation
    | None -> r.busy <- false

  let held r = r.busy
  let queue_length r = Queue.length r.waiters
end

(** Pipeline execution under processor failures.

    The paper's model (equations (1)–(2)) assumes processors never fail;
    this simulator executes a mapping in the stochastic regime of
    {!Workload_sim} — same arrival processes, same computation-time
    noise, same seeded streams — while additionally injecting {e crash}
    events with optional {e recovery}:

    {ul
    {- a crashed processor loses its in-flight computation (the data set
       must be re-executed from scratch — there is no checkpointing);}
    {- while a processor is down, data transfers to and from it still
       complete (the interconnect is not the failed component) but no
       computation starts — under the one-port rendezvous discipline the
       stall back-pressures the upstream intervals;}
    {- on recovery, a configurable retry policy re-executes lost data
       sets: each (interval, data set) computation may be retried up to
       [max_retries] times, each retry starting [backoff] simulated time
       units after the recovery;}
    {- a data set whose retries are exhausted (or whose processor never
       recovers) is {e dropped}: the drop propagates downstream so later
       intervals skip the missing data set, and the crashed interval
       moves on to its next data set — which, on a permanent crash,
       parks forever, stalling that interval and (by back-pressure)
       eventually the whole upstream pipeline.}}

    Everything is deterministic: crashes are explicit timed events, the
    stochastic ingredients flow through the seeded streams of
    {!Workload_sim}, and a retried computation reuses the noise factor
    drawn for its (interval, data set) pair. With no crash events the run
    is {e bit-for-bit identical} to {!Workload_sim.run} under the same
    configuration — a property the test suite checks — so any measured
    degradation is attributable to the injected faults alone. *)

open Pipeline_model

type crash = {
  at : float;                 (** crash instant (≥ 0) *)
  proc : int;                 (** the processor that fails *)
  recover_at : float option;  (** [None]: permanent; [Some r] with
                                  [r > at]: the processor comes back *)
}

type retry = {
  max_retries : int;  (** re-execution budget per (interval, data set) *)
  backoff : float;    (** simulated delay between recovery and re-execution *)
}

val no_retry : retry
(** [{ max_retries = 0; backoff = 0. }] — lost work is dropped. *)

type config = {
  base : Workload_sim.config;  (** arrivals, noise, slowdowns, datasets, seed *)
  crashes : crash list;
  retry : retry;
}

val default_config : config
(** {!Workload_sim.default_config}, no crashes, {!no_retry}. *)

type stats = {
  workload : Workload_sim.stats;
      (** measured over the data sets that completed; with no crashes
          this equals the {!Workload_sim.run} output exactly.
          [completed] counts the survivors; [latencies] lists them in
          arrival order. When nothing completes, makespan/period/
          throughput are 0 and the latency statistics are [nan]. *)
  offered : int;   (** the configured number of data sets *)
  dropped : int;   (** data sets abandoned after exhausting retries *)
  killed : int;    (** in-flight computations lost to a crash *)
  retries : int;   (** re-executions scheduled *)
}

val survival : stats -> float
(** [workload.completed / offered] — the fraction of the offered data
    sets that made it through. *)

val run : ?config:config -> Instance.t -> Mapping.t -> stats
(** Raises [Invalid_argument] on everything {!Workload_sim.run} rejects,
    plus, for the fault layer:

    {ul
    {- a crash at a negative (or NaN) time;}
    {- a crash naming a processor outside the platform;}
    {- a recovery not strictly after its crash, or not finite;}
    {- overlapping crash windows on one processor (a processor must
       recover before it can crash again);}
    {- [max_retries < 0], or a [backoff] that is negative or not
       finite.}} *)

(** Stochastic pipeline execution on the event-driven kernel ({!Des}).

    The paper's evaluation is purely analytic and deterministic; a
    deployed schedule faces arrival processes and computation-time
    jitter. This simulator executes a mapping under the one-port,
    no-overlap discipline of {!Runner} but with:

    {ul
    {- an {e arrival process} for the data sets — saturated (all ready at
       time 0, the paper's implicit regime), periodic, or Poisson;}
    {- multiplicative {e computation-time noise}, drawn independently per
       (interval, data set) from a seeded stream, modelling OS jitter and
       data-dependent stage costs.}}

    With no noise and saturated arrivals it reproduces {!Runner} (and
    therefore equations (1)–(2)) exactly — a property the test suite
    checks — so measured degradations are attributable to the stochastic
    ingredients alone. *)

open Pipeline_model

type arrival =
  | Saturated          (** every data set available at time 0 *)
  | Periodic of float  (** one data set every given time units *)
  | Poisson of float   (** exponential inter-arrivals with the given rate *)
  | Trace of float array
      (** explicit arrival instants, one per data set — the trace-driven
          regime of [Pipeline_stream]: entries must be finite,
          non-negative and non-decreasing, and there must be exactly
          [datasets] of them. A trace consumes nothing from the seeded
          streams, so swapping [Saturated] for [Trace (Array.make k 0.)]
          reproduces the saturated run bit-for-bit. *)

type noise =
  | No_noise
  | Uniform_factor of float
      (** computation times scaled by a uniform factor in
          [\[1-ε, 1+ε\]]; [ε] must be in [\[0, 1)] *)

type slowdown = {
  at : float;      (** simulated time the event takes effect *)
  proc : int;      (** affected processor *)
  factor : float;  (** speed multiplier from then on (0 < factor);
                       0.5 halves the speed, 2.0 is an upgrade *)
}
(** A permanent speed change — a thermal throttle, a co-scheduled job, a
    frequency boost. Computations {e starting} after [at] run at the new
    speed; multiple events on one processor compose. *)

type config = {
  arrival : arrival;
  noise : noise;
  slowdowns : slowdown list;
  datasets : int;
  seed : int;  (** drives arrivals and noise; same seed, same run *)
}

val default_config : config
(** Saturated, no noise, no slowdowns, 200 data sets, seed 0. *)

val validate : config -> Instance.t -> Mapping.t -> unit
(** The validation {!run} performs before simulating, exposed so layered
    simulators ({!Fault_sim}) reject exactly the same configurations.
    Raises [Invalid_argument] as documented on {!run}. *)

type stats = {
  completed : int;
  makespan : float;          (** completion of the last data set *)
  steady_period : float;     (** running-max completion slope, 2nd half *)
  throughput : float;        (** completed / makespan *)
  latency_mean : float;      (** service latency: completion - first transfer *)
  latency_p95 : float;
  latency_max : float;
  sojourn_max : float;       (** completion - arrival (includes source wait) *)
  latencies : float list;    (** per data set, in arrival order *)
}

val run : ?config:config -> Instance.t -> Mapping.t -> stats
(** Raises [Invalid_argument] when the configuration or the mapping is
    invalid. The rejected configurations are, exhaustively:

    {ul
    {- [datasets < 1];}
    {- a mapping whose stage count differs from the application's, or
       that references processors outside the platform;}
    {- a [Uniform_factor ε] noise with [ε] outside [\[0, 1)] (or NaN);}
    {- a [Periodic]/[Poisson] rate that is not finite and [> 0];}
    {- a [Trace] whose length differs from [datasets], or with an entry
       that is negative, not finite, or smaller than its predecessor;}
    {- a slowdown whose [factor] is not finite and [> 0] (zero and
       negative factors are crashes, not slowdowns — see [Fault_sim]);}
    {- a slowdown scheduled at a negative (or NaN) time;}
    {- a slowdown naming a processor outside the platform.}} *)

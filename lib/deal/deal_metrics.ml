open Pipeline_model

(* Thin wrapper over Pipeline_model.Cost's deal layer: this module keeps
   the historical entry points and diagnostics, the engine owns the
   arithmetic. *)

let engine_of (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Deal_metrics: requires a comm-homogeneous platform";
  Cost.get inst.app inst.platform

let check (inst : Instance.t) mapping =
  if Deal_mapping.n mapping <> Application.n inst.app then
    invalid_arg "Deal_metrics: mapping and application disagree on n";
  if not (Deal_mapping.valid_on mapping inst.platform) then
    invalid_arg "Deal_metrics: mapping references processors outside the platform"

let cycle_time inst mapping ~j ~u =
  check inst mapping;
  let cost = engine_of inst in
  if j < 0 || j >= Deal_mapping.m mapping then
    invalid_arg "Deal_metrics.cycle_time: interval out of range";
  if not (List.mem u (Deal_mapping.replicas mapping j)) then
    invalid_arg "Deal_metrics.cycle_time: processor is not a replica of the interval";
  Cost.deal_cycle cost mapping ~j ~u

let period inst mapping =
  check inst mapping;
  Cost.deal_period (engine_of inst) mapping

let period_weighted inst mapping =
  check inst mapping;
  Cost.deal_period_weighted (engine_of inst) mapping

let latency inst mapping =
  check inst mapping;
  Cost.deal_latency (engine_of inst) mapping

type summary = Cost.deal_summary = {
  period : float;
  latency : float;
  processors : int;
}

let summary inst mapping =
  check inst mapping;
  Cost.deal_summary (engine_of inst) mapping

let consistent_with_plain (inst : Instance.t) plain =
  let deal = Deal_mapping.of_mapping plain in
  let eq a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs a) in
  eq (period inst deal) (Metrics.period inst.app inst.platform plain)
  && eq (period_weighted inst deal) (Metrics.period inst.app inst.platform plain)
  && eq (latency inst deal) (Metrics.latency inst.app inst.platform plain)

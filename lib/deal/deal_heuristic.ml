open Pipeline_model

type solution = {
  mapping : Deal_mapping.t;
  period : float;
  latency : float;
}

let threshold_met = Pipeline_util.Tol.meets

let evaluate inst mapping =
  let s = Deal_metrics.summary inst mapping in
  { mapping; period = s.Deal_metrics.period; latency = s.Deal_metrics.latency }

let initial (inst : Instance.t) =
  let n = Application.n inst.app in
  let mapping =
    Deal_mapping.of_mapping
      (Mapping.single ~n ~proc:(Platform.fastest inst.platform))
  in
  evaluate inst mapping

(* The interval whose contribution equals the period. *)
let bottleneck (inst : Instance.t) (sol : solution) =
  Cost.deal_bottleneck (Cost.get inst.app inst.platform) sol.mapping

let next_unused (inst : Instance.t) mapping =
  let order = Platform.by_decreasing_speed inst.platform in
  Array.to_list order |> List.find_opt (fun u -> not (Deal_mapping.uses mapping u))

let candidates (inst : Instance.t) (sol : solution) ~j =
  match next_unused inst sol.mapping with
  | None -> []
  | Some u ->
    let iv = Deal_mapping.interval sol.mapping j in
    let splits =
      if Deal_mapping.replication sol.mapping j > 1 then []
      else begin
        let kept = List.hd (Deal_mapping.replicas sol.mapping j) in
        List.concat_map
          (fun c ->
            let left, right = Interval.split_at iv c in
            [
              Deal_mapping.replace sol.mapping ~j [ (left, [ kept ]); (right, [ u ]) ];
              Deal_mapping.replace sol.mapping ~j [ (left, [ u ]); (right, [ kept ]) ];
            ])
          (Interval.split_points iv)
      end
    in
    let replications = [ Deal_mapping.replicate sol.mapping ~j ~proc:u ] in
    List.map (evaluate inst) (splits @ replications)

let better (a : solution) (b : solution) =
  match compare a.period b.period with 0 -> a.latency < b.latency | c -> c < 0

let select = function
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> if better c acc then c else acc) first rest)

let improving (sol : solution) = List.filter (fun c -> c.period < sol.period)

let minimise_latency_under_period inst ~period =
  let rec refine sol =
    if threshold_met sol.period period then Some sol
    else
      let j = bottleneck inst sol in
      match select (improving sol (candidates inst sol ~j)) with
      | None -> None
      | Some best -> refine best
  in
  refine (initial inst)

let minimise_period_under_latency inst ~latency =
  let rec refine sol =
    let j = bottleneck inst sol in
    let acceptable =
      List.filter
        (fun c -> threshold_met c.latency latency)
        (improving sol (candidates inst sol ~j))
    in
    match select acceptable with None -> sol | Some best -> refine best
  in
  let sol = initial inst in
  if threshold_met sol.latency latency then Some (refine sol) else None

open Pipeline_model

(* Delegates to Pipeline_model.Cost's reliability layer; re-validates
   eagerly so the error names this entry point. *)

let interval_failure rel deal ~j = Cost.interval_failure rel deal ~j

let failure rel deal =
  List.iter
    (fun u ->
      if u < 0 || u >= Reliability.p rel then
        invalid_arg "Deal_reliability.failure: processor out of range")
    (Deal_mapping.processors deal);
  Cost.failure rel deal

let success rel deal = 1. -. failure rel deal

let agrees_with_plain rel mapping =
  let via_deal = failure rel (Deal_mapping.of_mapping mapping) in
  let direct = Reliability.mapping_failure rel mapping in
  Float.abs (via_deal -. direct) <= 1e-12 *. Float.max 1. (Float.abs direct)

(** Cost model for deal mappings on communication-homogeneous platforms.

    With interval [I_j] dealt round-robin over replicas [R_j]:

    {ul
    {- each replica [u] handles one data set in [r_j = |R_j|]; its
       per-data-set cycle-time is the usual
       [δ_in/b + W_j/s_u + δ_out/b], so the interval sustains one result
       every [max_{u∈R_j} cycle(u) / r_j] — the {e period contribution}
       under strict round-robin (the slowest replica paces its whole
       round);}
    {- a data set flows through exactly one replica per interval, and the
       latency is a worst-case over data sets (§2), so the latency charges
       each interval's worst replica:
       [Σ_j (δ_in/b + W_j/max… )]… precisely
       [Σ_j max_{u∈R_j}(δ_in/b + W_j/s_u) + δ_n/b].}}

    {!period_weighted} additionally reports the period under {e weighted}
    dealing (data sets distributed proportionally to replica speed),
    where the interval's rate is the sum of its replicas' rates:
    [1 / Σ_u 1/cycle(u)] — a lower bound no round-robin deal can beat.

    Restricted to communication-homogeneous platforms (like the paper's
    heuristics); raises [Invalid_argument] otherwise. *)

open Pipeline_model

val cycle_time : Instance.t -> Deal_mapping.t -> j:int -> u:int -> float
(** Per-data-set cycle-time of replica [u] of interval [j]. *)

val period : Instance.t -> Deal_mapping.t -> float
(** Round-robin period: [max_j max_{u∈R_j} cycle(j,u) / r_j]. *)

val period_weighted : Instance.t -> Deal_mapping.t -> float
(** Weighted-deal period: [max_j 1 / Σ_{u∈R_j} 1/cycle(j,u)]. *)

val latency : Instance.t -> Deal_mapping.t -> float
(** Worst-path latency (see above). *)

type summary = Cost.deal_summary = {
  period : float;
  latency : float;
  processors : int;
}

val summary : Instance.t -> Deal_mapping.t -> summary

val consistent_with_plain : Instance.t -> Mapping.t -> bool
(** Sanity bridge: on an unreplicated mapping both cost models agree with
    {!Pipeline_model.Metrics} (used by the tests). *)

(** Brute-force enumeration of deal mappings (validation only).

    Enumerates every partition of the stages into consecutive intervals
    and every assignment of disjoint non-empty processor sets to the
    intervals, scoring with the round-robin cost model — the ground truth
    for {!Deal_heuristic} on tiny instances. The search space is huge
    (partitions × ordered set partitions of the processors), so a guard
    rejects instances beyond [10^6] enumerated mappings.

    {!min_period} and {!parallel_fold} expand the enumeration tree
    breadth-first into a deterministic frontier of subtree tasks
    ({!Pipeline_util.Pool.fan_out}) and evaluate the frontier on the
    domain pool; task results merge in frontier order with
    first-seen-wins ties, so the reported optimum is bit-identical to
    the sequential scan at any pool width and any frontier size
    (DESIGN.md §14). *)

open Pipeline_model

val count_estimate : n:int -> p:int -> float
(** Upper bound on the number of deal mappings enumerated. *)

val parallel_fold :
  Instance.t ->
  init:'a ->
  step:('a -> Deal_mapping.t -> 'a) ->
  merge:('a -> 'a -> 'a) ->
  'a
(** Fold [step] over every deal mapping, task-parallel over the
    enumeration frontier. Contract: merging contiguous segment folds in
    enumeration order with [merge] must equal the one-pass sequential
    fold — true for any first-seen-wins minimisation — and then the
    result is bit-identical at any pool width. The tri-criteria oracle
    ([Ft_exhaustive]) and {!min_period} are both built on this. Raises
    [Invalid_argument] beyond the size guard. *)

val iter : Instance.t -> (Deal_mapping.t -> unit) -> unit
(** Apply a function to every deal mapping of the instance (every
    interval partition × every disjoint non-empty replica assignment),
    in a deterministic order. The ground-truth enumerator behind
    {!min_period} and the fault-tolerance oracle ([Ft_exhaustive]).
    Raises [Invalid_argument] beyond the size guard. *)

val min_period : Instance.t -> Deal_heuristic.solution
(** The deal mapping with the smallest round-robin period (ties broken by
    latency). Raises [Invalid_argument] beyond the size guard or on
    non-communication-homogeneous platforms. *)

open Pipeline_model

(* Mappings where interval j gets a non-empty subset S_j of processors,
   the S_j pairwise disjoint. Bounded by Σ_m C(n-1, m-1) · (p+1)^p as a
   crude over-estimate; we compute a tighter product bound below. *)
let count_estimate ~n ~p =
  (* Each of the ≤ min(n,p) intervals picks a non-empty subset of the
     remaining processors: bound by (2^p)^m summed over partition
     counts. Crude but monotone — good enough for a guard. *)
  let rec binom n k =
    if k < 0 || k > n then 0.
    else if k = 0 || k = n then 1.
    else binom (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let total = ref 0. in
  for m = 1 to min n p do
    total := !total +. (binom (n - 1) (m - 1) *. (2. ** float_of_int (p * m)))
  done;
  !total

let guard = 1e6

let c_mappings =
  Obs.Counter.make ~doc:"deal mappings enumerated by Deal_exhaustive"
    "deal.exhaustive.mappings"

let c_branches =
  Obs.Counter.make ~doc:"frontier tasks fanned out by Deal_exhaustive"
    "deal.exhaustive.branches"

(* Non-empty submasks of [mask], ascending. *)
let subsets_of mask =
  let rec submasks s acc =
    if s = 0 then acc else submasks ((s - 1) land mask) (s :: acc)
  in
  submasks mask []

(* A task is a prefix of the enumeration: the intervals assigned so far
   (reversed), the next stage [d] and the free-processor mask. The
   children of a prefix enumerate the next interval's (end, subset)
   choices in the sequential order — end ascending, subsets ascending —
   so concatenating children subtrees in index order reproduces the
   parent's subtree verbatim, and the frontier's index order equals the
   historical sequential enumeration order. *)
type task = {
  d : int;  (* next stage to map; complete when d > n *)
  free : int;  (* bitmask of unassigned processors *)
  acc_rev : (Interval.t * int list) list;
}

let procs_of_mask ~p mask =
  let rec collect u acc =
    if u >= p then List.rev acc
    else collect (u + 1) (if mask land (1 lsl u) <> 0 then u :: acc else acc)
  in
  collect 0 []

let children ~n ~p task =
  if task.d > n then [||]
  else
    let kids = ref [] in
    for e = n downto task.d do
      List.iter
        (fun subset ->
          kids :=
            {
              d = e + 1;
              free = task.free lxor subset;
              acc_rev =
                (Interval.make ~first:task.d ~last:e, procs_of_mask ~p subset)
                :: task.acc_rev;
            }
            :: !kids)
        (List.rev (subsets_of task.free))
    done;
    Array.of_list !kids

(* Sequential enumeration of one task's subtree, in canonical order. *)
let run_task ~n ~p task consider =
  let rec assign d free acc consider =
    if d > n then consider (Deal_mapping.make ~n (List.rev acc))
    else
      for e = d to n do
        List.iter
          (fun subset ->
            assign (e + 1)
              (free lxor subset)
              ((Interval.make ~first:d ~last:e, procs_of_mask ~p subset) :: acc)
              consider)
          (subsets_of free)
      done
  in
  assign task.d task.free task.acc_rev consider

(* Task-local count, one flush per task: order-independent sums keep
   the totals bit-identical at any [--jobs N]. *)
let counted run consider =
  if not (Obs.metrics_enabled ()) then run consider
  else begin
    let local = ref 0 in
    run (fun mapping ->
        incr local;
        consider mapping);
    Obs.Counter.add c_mappings !local
  end

let tasks (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_estimate ~n ~p > guard then
    invalid_arg "Deal_exhaustive.iter: instance too large to enumerate";
  let root = { d = 1; free = (1 lsl p) - 1; acc_rev = [] } in
  let frontier = Pipeline_util.Pool.fan_out ~children:(children ~n ~p) [| root |] in
  Obs.Counter.add c_branches (Array.length frontier);
  (n, p, frontier)

let iter (inst : Instance.t) consider =
  let n, p, frontier = tasks inst in
  Array.iter (fun task -> counted (run_task ~n ~p task) consider) frontier

let parallel_fold (inst : Instance.t) ~init ~step ~merge =
  let n, p, frontier = tasks inst in
  let locals =
    Pipeline_util.Pool.map
      (fun task ->
        let acc = ref init in
        counted (run_task ~n ~p task) (fun mapping -> acc := step !acc mapping);
        !acc)
      frontier
  in
  Array.fold_left merge init locals

let min_period (inst : Instance.t) =
  (* First-seen-wins on (period, latency) ties, per task; merging the
     task winners in index order applies the same rule, so the result
     matches the sequential scan at any parallelism degree. *)
  let keep_acc (b : Deal_heuristic.solution) (c : Deal_heuristic.solution) =
    b.Deal_heuristic.period < c.Deal_heuristic.period
    || (b.Deal_heuristic.period = c.Deal_heuristic.period
       && b.Deal_heuristic.latency <= c.Deal_heuristic.latency)
  in
  let merge acc candidate =
    match (acc, candidate) with
    | Some b, Some c when keep_acc b c -> acc
    | _, None -> acc
    | _ -> candidate
  in
  let step acc mapping =
    let s = Deal_metrics.summary inst mapping in
    let candidate =
      {
        Deal_heuristic.mapping;
        period = s.Deal_metrics.period;
        latency = s.Deal_metrics.latency;
      }
    in
    merge acc (Some candidate)
  in
  match parallel_fold inst ~init:None ~step ~merge with
  | Some sol -> sol
  | None -> assert false (* the single-interval single-replica mapping exists *)

open Pipeline_model

(* Mappings where interval j gets a non-empty subset S_j of processors,
   the S_j pairwise disjoint. Bounded by Σ_m C(n-1, m-1) · (p+1)^p as a
   crude over-estimate; we compute a tighter product bound below. *)
let count_estimate ~n ~p =
  (* Each of the ≤ min(n,p) intervals picks a non-empty subset of the
     remaining processors: bound by (2^p)^m summed over partition
     counts. Crude but monotone — good enough for a guard. *)
  let rec binom n k =
    if k < 0 || k > n then 0.
    else if k = 0 || k = n then 1.
    else binom (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let total = ref 0. in
  for m = 1 to min n p do
    total := !total +. (binom (n - 1) (m - 1) *. (2. ** float_of_int (p * m)))
  done;
  !total

let guard = 1e6

let c_mappings =
  Obs.Counter.make ~doc:"deal mappings enumerated by Deal_exhaustive"
    "deal.exhaustive.mappings"

let c_branches =
  Obs.Counter.make ~doc:"root branches fanned out by Deal_exhaustive"
    "deal.exhaustive.branches"

(* Branch-local count, one flush per branch: order-independent sums keep
   the totals bit-identical at any [--jobs N]. *)
let counted branch consider =
  if not (Obs.metrics_enabled ()) then branch consider
  else begin
    let local = ref 0 in
    branch (fun mapping ->
        incr local;
        consider mapping);
    Obs.Counter.add c_mappings !local
  end

(* The enumeration tree split at the root: one independent branch per
   end position of the *first* interval. Running the branches in index
   order reproduces the historical sequential enumeration order exactly,
   which is what keeps the parallel minimisation below bit-identical to
   the sequential one (ties break by enumeration order). *)
let root_branches (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_estimate ~n ~p > guard then
    invalid_arg "Deal_exhaustive.iter: instance too large to enumerate";
  (* Non-empty subsets of the free processor bitmask. *)
  let subsets_of mask =
    let rec submasks s acc = if s = 0 then acc else submasks ((s - 1) land mask) (s :: acc) in
    submasks mask []
  in
  let procs_of_mask mask =
    let rec collect u acc =
      if u >= p then List.rev acc
      else collect (u + 1) (if mask land (1 lsl u) <> 0 then u :: acc else acc)
    in
    collect 0 []
  in
  let rec assign d free acc consider =
    if d > n then consider (Deal_mapping.make ~n (List.rev acc))
    else
      for e = d to n do
        List.iter
          (fun subset ->
            assign (e + 1)
              (free lxor subset)
              ((Interval.make ~first:d ~last:e, procs_of_mask subset) :: acc)
              consider)
          (subsets_of free)
      done
  in
  let full = (1 lsl p) - 1 in
  Obs.Counter.add c_branches n;
  Array.init n (fun i ->
      let e = i + 1 in
      counted (fun consider ->
          List.iter
            (fun subset ->
              assign (e + 1)
                (full lxor subset)
                [ (Interval.make ~first:1 ~last:e, procs_of_mask subset) ]
                consider)
            (subsets_of full)))

let iter (inst : Instance.t) consider =
  Array.iter (fun branch -> branch consider) (root_branches inst)

let min_period (inst : Instance.t) =
  (* First-seen-wins on (period, latency) ties, per branch; merging the
     branch winners in index order applies the same rule, so the result
     matches the sequential scan at any parallelism degree. *)
  let keep_acc (b : Deal_heuristic.solution) (c : Deal_heuristic.solution) =
    b.Deal_heuristic.period < c.Deal_heuristic.period
    || (b.Deal_heuristic.period = c.Deal_heuristic.period
       && b.Deal_heuristic.latency <= c.Deal_heuristic.latency)
  in
  let merge acc candidate =
    match (acc, candidate) with
    | Some b, Some c when keep_acc b c -> acc
    | _, None -> acc
    | _ -> candidate
  in
  let branch_best branch =
    let best = ref None in
    branch (fun mapping ->
        let s = Deal_metrics.summary inst mapping in
        let candidate =
          {
            Deal_heuristic.mapping;
            period = s.Deal_metrics.period;
            latency = s.Deal_metrics.latency;
          }
        in
        best := merge !best (Some candidate));
    !best
  in
  let locals = Pipeline_util.Pool.map branch_best (root_branches inst) in
  match Array.fold_left merge None locals with
  | Some sol -> sol
  | None -> assert false (* the single-interval single-replica mapping exists *)

open Pipeline_model

type result = {
  output_completions : float array;
  steady_period : float;
  first_latency : float;
  max_latency : float;
}

let run (inst : Instance.t) mapping ~datasets =
  if datasets < 1 then invalid_arg "Deal_sim.run: datasets must be >= 1";
  if Deal_mapping.n mapping <> Application.n inst.app then
    invalid_arg "Deal_sim.run: mapping does not match the application";
  if not (Deal_mapping.valid_on mapping inst.platform) then
    invalid_arg "Deal_sim.run: mapping does not fit the platform";
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Deal_sim.run: requires a comm-homogeneous platform";
  let cost = Cost.get inst.app inst.platform in
  let m = Deal_mapping.m mapping in
  let replicas = Array.init m (fun j -> Array.of_list (Deal_mapping.replicas mapping j)) in
  (* avail.(j).(i): when replica i of interval j is next free. *)
  let avail = Array.init m (fun j -> Array.make (Array.length replicas.(j)) 0.) in
  let first j = Interval.first (Deal_mapping.interval mapping j) in
  let last j = Interval.last (Deal_mapping.interval mapping j) in
  let in_time j = Cost.din cost ~d:(first j) in
  let out_time j = Cost.dout cost ~e:(last j) in
  let comp_time j i =
    Cost.compute cost ~d:(first j) ~e:(last j) ~u:replicas.(j).(i)
  in
  let output_completions = Array.make datasets 0. in
  let input_starts = Array.make datasets 0. in
  for t = 0 to datasets - 1 do
    for j = 0 to m - 1 do
      let i = t mod Array.length replicas.(j) in
      (* Input transfer: rendezvous with the upstream replica that
         produced data set t (the source is always ready for j = 0). *)
      let sender =
        if j = 0 then None else Some (t mod Array.length replicas.(j - 1))
      in
      let sender_ready =
        match sender with None -> 0. | Some i' -> avail.(j - 1).(i')
      in
      let start = Float.max sender_ready avail.(j).(i) in
      let finish = start +. in_time j in
      if j = 0 then input_starts.(t) <- start;
      (match sender with
      | None -> ()
      | Some i' -> avail.(j - 1).(i') <- finish);
      avail.(j).(i) <- finish +. comp_time j i
    done;
    (* Output transfer of the last interval's handling replica. *)
    let i = t mod Array.length replicas.(m - 1) in
    let finish = avail.(m - 1).(i) +. out_time (m - 1) in
    avail.(m - 1).(i) <- finish;
    output_completions.(t) <- finish
  done;
  (* Completions are not monotone (a fast replica overtakes a slow one),
     so the throughput is read off the running maximum: after t data
     sets, all of the first t results are out by [running_max.(t)]. *)
  let running_max = Array.make datasets 0. in
  let acc = ref neg_infinity in
  Array.iteri
    (fun t c ->
      acc := Float.max !acc c;
      running_max.(t) <- !acc)
    output_completions;
  let steady_period =
    if datasets < 2 then 0.
    else if datasets < 4 then
      (running_max.(datasets - 1) -. running_max.(0)) /. float_of_int (datasets - 1)
    else begin
      let half = datasets / 2 in
      (running_max.(datasets - 1) -. running_max.(half))
      /. float_of_int (datasets - 1 - half)
    end
  in
  let latency t = output_completions.(t) -. input_starts.(t) in
  let max_latency = ref neg_infinity in
  for t = 0 to datasets - 1 do
    max_latency := Float.max !max_latency (latency t)
  done;
  {
    output_completions;
    steady_period;
    first_latency = latency 0;
    max_latency = !max_latency;
  }

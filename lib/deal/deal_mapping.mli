(** Re-export of {!Pipeline_model.Deal_mapping}.

    The deal skeleton's mapping type moved into [lib/model] so the
    {!Pipeline_model.Cost} engine can evaluate replicated mappings; this
    alias keeps the historical [Pipeline_deal.Deal_mapping] path (and its
    type equalities) working. *)

include module type of struct
  include Pipeline_model.Deal_mapping
end

open Pipeline_model
module Core_registry = Pipeline_core.Registry

type kind = Pipeline_core.Registry.kind = Period_fixed | Latency_fixed
type stack = Core | Extension | Het | Deal | Ft

type outcome = {
  mapping : Deal_mapping.t;
  period : float;
  latency : float;
  failure : float option;
}

type context = { rel : Reliability.t option; failure_bound : float option }

let default_context = { rel = None; failure_bound = None }
let default_fail_prob = 0.05
let default_failure_bound = 0.1

type info = {
  id : string;
  paper_name : string;
  table_name : string;
  kind : kind;
  stack : stack;
  solve : ?ctx:context -> Instance.t -> threshold:float -> outcome option;
}

(* Objective values are copied from the stack's own evaluation, never
   recomputed, so a unified row returns bit-identical floats to the
   pre-unification per-stack call. *)

let outcome_of_solution (sol : Pipeline_core.Solution.t) =
  {
    mapping = Deal_mapping.of_mapping sol.mapping;
    period = sol.period;
    latency = sol.latency;
    failure = None;
  }

let solution_of_outcome o =
  Option.map
    (fun mapping ->
      { Pipeline_core.Solution.mapping; period = o.period; latency = o.latency })
    (Deal_mapping.to_mapping o.mapping)

let of_core (info : Core_registry.info) =
  {
    id = info.id;
    paper_name = info.paper_name;
    table_name = info.table_name;
    kind = info.kind;
    stack = Core;
    solve =
      (fun ?ctx:_ inst ~threshold ->
        Option.map outcome_of_solution (info.solve inst ~threshold));
  }

let of_core_extension info = { (of_core info) with stack = Extension }

let paper = List.map of_core Core_registry.all
let extended = List.map of_core_extension Core_registry.extended

let het_row ~id ~paper_name ~table_name ~kind ~select =
  {
    id;
    paper_name;
    table_name;
    kind;
    stack = Het;
    solve =
      (fun ?ctx:_ inst ~threshold ->
        let result =
          match kind with
          | Period_fixed ->
            Pipeline_het.Het_heuristics.minimise_latency_under_period ~select
              inst ~period:threshold
          | Latency_fixed ->
            Pipeline_het.Het_heuristics.minimise_period_under_latency ~select
              inst ~latency:threshold
        in
        Option.map outcome_of_solution result);
  }

let het =
  [
    het_row ~id:"het-sp-mono-p" ~paper_name:"Het split mono, P fix"
      ~table_name:"HetP" ~kind:Period_fixed
      ~select:Pipeline_het.Het_heuristics.Min_period;
    het_row ~id:"het-sp-bi-p" ~paper_name:"Het split bi, P fix"
      ~table_name:"HetPb" ~kind:Period_fixed
      ~select:Pipeline_het.Het_heuristics.Min_ratio;
    het_row ~id:"het-sp-mono-l" ~paper_name:"Het split mono, L fix"
      ~table_name:"HetL" ~kind:Latency_fixed
      ~select:Pipeline_het.Het_heuristics.Min_period;
    het_row ~id:"het-sp-bi-l" ~paper_name:"Het split bi, L fix"
      ~table_name:"HetLb" ~kind:Latency_fixed
      ~select:Pipeline_het.Het_heuristics.Min_ratio;
  ]

let outcome_of_deal (sol : Pipeline_deal.Deal_heuristic.solution) =
  {
    mapping = sol.mapping;
    period = sol.period;
    latency = sol.latency;
    failure = None;
  }

let deal =
  [
    {
      id = "deal-split-rep-p";
      paper_name = "Deal split+rep, P fix";
      table_name = "DealP";
      kind = Period_fixed;
      stack = Deal;
      solve =
        (fun ?ctx:_ inst ~threshold ->
          Option.map outcome_of_deal
            (Pipeline_deal.Deal_heuristic.minimise_latency_under_period inst
               ~period:threshold));
    };
    {
      id = "deal-split-rep-l";
      paper_name = "Deal split+rep, L fix";
      table_name = "DealL";
      kind = Latency_fixed;
      stack = Deal;
      solve =
        (fun ?ctx:_ inst ~threshold ->
          Option.map outcome_of_deal
            (Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst
               ~latency:threshold));
    };
  ]

let ft =
  [
    {
      id = "ft-rep-tri";
      paper_name = "Ft replicate, tri";
      table_name = "FtTri";
      kind = Period_fixed;
      stack = Ft;
      solve =
        (fun ?(ctx = default_context) (inst : Instance.t) ~threshold ->
          let rel =
            match ctx.rel with
            | Some rel -> rel
            | None ->
              Reliability.uniform
                ~p:(Platform.p inst.platform)
                default_fail_prob
          in
          let failure =
            Option.value ctx.failure_bound ~default:default_failure_bound
          in
          Option.map
            (fun (sol : Pipeline_ft.Ft_heuristic.solution) ->
              {
                mapping = sol.mapping;
                period = sol.period;
                latency = sol.latency;
                failure = Some sol.failure;
              })
            (Pipeline_ft.Ft_heuristic.minimise_latency inst rel
               ~period:threshold ~failure));
    };
  ]

let all = paper @ extended @ het @ deal @ ft

let find key =
  let k = String.lowercase_ascii key in
  List.find_opt
    (fun info ->
      String.lowercase_ascii info.id = k
      || String.lowercase_ascii info.table_name = k
      || String.lowercase_ascii info.paper_name = k)
    all

(* The one resolution path shared by the CLI and the serve daemon, so
   the diagnostics (and therefore the CLI's exit-2 messages and the
   server's HTTP 400 bodies) cannot drift apart. *)
let resolve ?kind key =
  match find key with
  | None ->
    Error
      (Printf.sprintf
         "unknown heuristic %s (run 'pipeline-sched list' for the registry)" key)
  | Some info -> (
    match kind with
    | Some k when info.kind <> k ->
      Error (Printf.sprintf "heuristic %s does not match the threshold kind" key)
    | _ -> Ok info)

(** The unified solver registry: every heuristic of every stack — the
    paper's six, the fallback extensions, and the het / deal /
    fault-tolerance extensions — as uniform rows with stable ids.

    This is the single lookup surface for the CLI ([pipeline_sched solve
    --heuristic ID], [list]), the experiment campaign and the bench.
    {!Pipeline_core.Registry} remains the core stack's internal table
    (and keeps its historical ids — they are embedded here unchanged);
    the per-stack registries it used to coexist with are gone.

    Every row answers the same question as the paper's heuristics: given
    a threshold on the fixed criterion, optimise the free one. Rows
    return a replicated {!Pipeline_model.Deal_mapping} so that plain and
    replicated solvers share one outcome type; plain mappings round-trip
    via {!Pipeline_model.Deal_mapping.to_mapping}. *)

open Pipeline_model

type kind = Pipeline_core.Registry.kind =
  | Period_fixed   (** the threshold is a period; the output minimises latency *)
  | Latency_fixed  (** the threshold is a latency; the output minimises period *)

type stack =
  | Core       (** the paper's six splitting heuristics (comm-hom) *)
  | Extension  (** 3-exploration with 2-way fallback (comm-hom) *)
  | Het        (** splitting for fully heterogeneous platforms *)
  | Deal       (** interval replication (deal skeleton, comm-hom) *)
  | Ft         (** tri-criteria replication under a failure bound *)

type outcome = {
  mapping : Deal_mapping.t;
  period : float;
  latency : float;
  failure : float option;
      (** failure probability, for rows run with a reliability context *)
}

type context = {
  rel : Reliability.t option;
      (** per-processor failure probabilities; default: uniform
          {!default_fail_prob} over the platform *)
  failure_bound : float option;
      (** tri-criteria failure bound; default {!default_failure_bound} *)
}

val default_context : context
(** [{ rel = None; failure_bound = None }]. *)

val default_fail_prob : float
(** Uniform per-processor failure probability assumed by [ft-rep-tri]
    when the context supplies no reliability vector (0.05). *)

val default_failure_bound : float
(** Failure bound assumed by [ft-rep-tri] when the context supplies none
    (0.1). *)

type info = {
  id : string;          (** stable machine name, e.g. ["h1-sp-mono-p"] *)
  paper_name : string;  (** legend name used in the plots *)
  table_name : string;  (** row name in Table 1 (H1 … H6) and reports *)
  kind : kind;
  stack : stack;
  solve : ?ctx:context -> Instance.t -> threshold:float -> outcome option;
      (** [None] when the heuristic cannot meet the threshold. The
          context only affects the [Ft] row; every other stack ignores
          it. *)
}

val paper : info list
(** The six heuristics in Table 1 order (H1 … H6), stack [Core]. *)

val extended : info list
(** [h2x-3explo-mono-fb], [h3x-3explo-bi-fb] — stack [Extension]. *)

val het : info list
(** [het-sp-mono-p], [het-sp-bi-p], [het-sp-mono-l], [het-sp-bi-l] —
    stack [Het], in that order (HetP, HetPb, HetL, HetLb). *)

val deal : info list
(** [deal-split-rep-p] (DealP, period fixed), [deal-split-rep-l] (DealL,
    latency fixed) — stack [Deal]. *)

val ft : info list
(** [ft-rep-tri] (FtTri, period fixed): minimise latency under the
    period threshold and the context's failure bound. *)

val all : info list
(** [paper @ extended @ het @ deal @ ft]. *)

val find : string -> info option
(** Look up by [id], [table_name] or [paper_name] (case-insensitive)
    across {!all}. *)

val resolve : ?kind:kind -> string -> (info, string) result
(** {!find} with the canonical diagnostics: [Error] carries the one-line
    message for an unknown id, or — when [kind] is given — for a row
    whose threshold kind does not match. Both the CLI (exit 2) and the
    serve daemon (HTTP 400, see doc/serving.mld) resolve requests
    through this, so the two surfaces reject with identical wording. *)

val of_core : Pipeline_core.Registry.info -> info
(** Embed a core-registry row ([stack = Core]); used by the bench's
    ablations for rows constructed on the fly. *)

val solution_of_outcome : outcome -> Pipeline_core.Solution.t option
(** The outcome as a plain {!Pipeline_core.Solution.t} when no interval
    is replicated ([None] otherwise). Objective values are copied, not
    recomputed. *)

(* Closed-loop load generator. Wall-clock timings — a bench artefact,
   exempt from the determinism contract (see the .mli). *)

open Pipeline_model

type phase = {
  label : string;
  requests : int;
  errors : int;
  reqs_per_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

(* ------------------------------------------------------------------ *)
(* Workload bodies                                                     *)
(* ------------------------------------------------------------------ *)

(* Deterministic instance material: one seeded stream for the stage
   weights, bandwidth varied per request to steer the platform
   fingerprint (distinct => cold, cycling => warm). *)
let instance_material ~stages =
  let rng = Pipeline_util.Rng.create 2007 in
  let works =
    Array.init stages (fun _ -> 1. +. Pipeline_util.Rng.float rng 9.)
  in
  let deltas =
    Array.init (stages + 1) (fun _ -> 1. +. Pipeline_util.Rng.float rng 9.)
  in
  let speeds = Array.init 8 (fun _ -> 1. +. Pipeline_util.Rng.float rng 4.) in
  (works, deltas, speeds)

let floats_json a =
  Json.List (Array.to_list (Array.map (fun f -> Json.Number f) a))

let solve_body ~works ~deltas ~speeds ~bandwidth =
  let app = Application.make ~deltas works in
  let platform = Platform.comm_homogeneous ~bandwidth speeds in
  let inst = Instance.make app platform in
  let period = Instance.single_proc_period inst *. 0.9 in
  Json.to_string
    (Json.Obj
       [
         ( "instance",
           Json.Obj
             [
               ("works", floats_json works);
               ("deltas", floats_json deltas);
               ( "platform",
                 Json.Obj
                   [
                     ("speeds", floats_json speeds);
                     ("bandwidth", Json.Number bandwidth);
                   ] );
             ] );
         ("period", Json.Number period);
         ("heuristic", Json.String "h1-sp-mono-p");
       ])

let simulate_body ~works ~deltas ~speeds ~bandwidth =
  let app = Application.make ~deltas works in
  let platform = Platform.comm_homogeneous ~bandwidth speeds in
  let inst = Instance.make app platform in
  (* The single-processor period is always achievable, so H1 cannot
     reject the threshold and the phase never 400s. *)
  let period = Instance.single_proc_period inst in
  Json.to_string
    (Json.Obj
       [
         ( "instance",
           Json.Obj
             [
               ("works", floats_json works);
               ("deltas", floats_json deltas);
               ( "platform",
                 Json.Obj
                   [
                     ("speeds", floats_json speeds);
                     ("bandwidth", Json.Number bandwidth);
                   ] );
             ] );
         ("period", Json.Number period);
         ("datasets", Json.Number 50.);
       ])

(* ------------------------------------------------------------------ *)
(* Measurement                                                         *)
(* ------------------------------------------------------------------ *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let measure ~label shots =
  let latencies = ref [] in
  let errors = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun shot ->
      let s0 = Unix.gettimeofday () in
      (match shot () with
      | Ok (200, _) -> latencies := (Unix.gettimeofday () -. s0) :: !latencies
      | Ok _ | Error _ -> incr errors))
    shots;
  let elapsed = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list (List.rev_map (fun s -> s *. 1e6) !latencies) in
  Array.sort compare lat;
  let n = Array.length lat in
  let mean =
    if n = 0 then 0. else Array.fold_left ( +. ) 0. lat /. float_of_int n
  in
  {
    label;
    requests = n;
    errors = !errors;
    reqs_per_s =
      (if elapsed > 0. then float_of_int (List.length shots) /. elapsed else 0.);
    mean_us = mean;
    p50_us = percentile lat 0.50;
    p99_us = percentile lat 0.99;
  }

let run ?(requests_per_phase = 200) ?(stages = 24) ~port () =
  let works, deltas, speeds = instance_material ~stages in
  let shots_of f = List.init requests_per_phase f in
  let health =
    measure ~label:"health" (shots_of (fun _ () -> Http.get ~port "/health"))
  in
  (* Cold: every request a fresh bandwidth => a fresh platform
     fingerprint => a full engine build. *)
  let cold =
    measure ~label:"solve-cold"
      (shots_of (fun i () ->
           let body =
             solve_body ~works ~deltas ~speeds
               ~bandwidth:(10. +. (0.125 *. float_of_int i))
           in
           Http.post ~port "/solve" ~body))
  in
  (* Warm: cycle 4 bandwidths — they fit the serve cache and Cost.get's
     8-engine domain LRU, so after the first lap every request hits. *)
  let warm =
    measure ~label:"solve-warm"
      (shots_of (fun i () ->
           let body =
             solve_body ~works ~deltas ~speeds
               ~bandwidth:(10. +. (0.125 *. float_of_int (i mod 4)))
           in
           Http.post ~port "/solve" ~body))
  in
  let simulate =
    measure ~label:"simulate"
      (shots_of (fun _ () ->
           let body = simulate_body ~works ~deltas ~speeds ~bandwidth:10. in
           Http.post ~port "/simulate" ~body))
  in
  [ health; cold; warm; simulate ]

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let to_csv phases =
  "phase,requests,errors,reqs_per_s,mean_us,p50_us,p99_us"
  :: List.map
       (fun ph ->
         Printf.sprintf "%s,%d,%d,%.1f,%.1f,%.1f,%.1f" ph.label ph.requests
           ph.errors ph.reqs_per_s ph.mean_us ph.p50_us ph.p99_us)
       phases

let render phases =
  let b = Buffer.create 256 in
  Printf.bprintf b "%-12s %8s %7s %10s %10s %10s %10s\n" "phase" "requests"
    "errors" "reqs/s" "mean(us)" "p50(us)" "p99(us)";
  List.iter
    (fun ph ->
      Printf.bprintf b "%-12s %8d %7d %10.1f %10.1f %10.1f %10.1f\n" ph.label
        ph.requests ph.errors ph.reqs_per_s ph.mean_us ph.p50_us ph.p99_us)
    phases;
  Buffer.contents b

(** The daemon: a loopback TCP listener driving {!Protocol.handle}.

    One background thread accepts connections and serves them {e
    sequentially} — one request per connection, fully handled before the
    next accept. Serialising requests is a design choice, not a
    limitation: the warm-engine cache and the solver engines are not
    thread-safe, and a serial server makes the response stream a pure
    function of the request stream, which is the determinism contract
    (doc/serving.mld; DESIGN.md §12 discusses the trade-off). Requests
    still {e arrive} concurrently — the listen backlog queues them — so
    concurrent clients are safe, merely unparallelised.

    Parallelism lives below: solvers dispatch across
    {!Pipeline_util.Pool} domains at whatever [--jobs] width the process
    was configured with, and their results are jobs-invariant, so
    responses are byte-identical at any width. *)

type t

val start : ?port:int -> ?max_body:int -> Protocol.t -> t
(** Bind [127.0.0.1:port] (default [port = 0]: an ephemeral port — read
    it back with {!port}), start the accept thread, return immediately.
    [max_body] is passed to {!Http.read_request} (default 1 MiB).
    Raises [Unix.Unix_error] when the bind fails (port taken,
    privileged port). *)

val port : t -> int
(** The bound port (the actual one when started with [port = 0]). *)

val request_stop : t -> unit
(** Ask the accept thread to exit after the in-flight request (observed
    within ~50 ms). Only an atomic store — safe to call from a signal
    handler, which is exactly what [pipeline_sched serve] does on
    SIGINT/SIGTERM. *)

val stop : t -> unit
(** {!request_stop}, then wait for the accept thread to exit and close
    the listening socket. Idempotent; not signal-handler-safe (it
    joins). *)

val wait : t -> unit
(** Block until the accept thread exits (someone calling {!stop} /
    {!request_stop}). The socket is not yet closed — follow with
    {!stop} for that. *)

(* Routing, validation and response construction. doc/serving.mld is
   the protocol reference; DESIGN.md §12 records the interpretation
   choices (status mapping, CLI wording parity, counter mirroring). *)

open Pipeline_model
module Ureg = Pipeline_registry

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

(* Registered on first use, NOT at module initialisation: the counter
   registry is process-global and [Obs.metrics_csv] dumps every
   registered name, so eager registration would grow the bench's
   metrics.csv golden merely by linking this library. *)
type counters = {
  requests : Obs.Counter.t;
  solve : Obs.Counter.t;
  pareto : Obs.Counter.t;
  simulate : Obs.Counter.t;
  ok : Obs.Counter.t;
  client_error : Obs.Counter.t;
  server_error : Obs.Counter.t;
  platform_hits : Obs.Counter.t;
  platform_misses : Obs.Counter.t;
  app_hits : Obs.Counter.t;
  app_misses : Obs.Counter.t;
  evictions : Obs.Counter.t;
}

let counters =
  lazy
    {
      requests = Obs.Counter.make ~doc:"HTTP requests received" "serve.requests";
      solve = Obs.Counter.make ~doc:"POST /solve requests" "serve.requests.solve";
      pareto = Obs.Counter.make ~doc:"POST /pareto requests" "serve.requests.pareto";
      simulate =
        Obs.Counter.make ~doc:"POST /simulate requests" "serve.requests.simulate";
      ok = Obs.Counter.make ~doc:"2xx responses" "serve.responses.ok";
      client_error =
        Obs.Counter.make ~doc:"4xx responses" "serve.responses.client_error";
      server_error =
        Obs.Counter.make ~doc:"5xx responses" "serve.responses.server_error";
      platform_hits =
        Obs.Counter.make ~doc:"warm-cache platform fingerprint hits"
          "serve.cache.platform_hits";
      platform_misses =
        Obs.Counter.make ~doc:"warm-cache platform fingerprint misses"
          "serve.cache.platform_misses";
      app_hits =
        Obs.Counter.make ~doc:"warm-cache application hits under a cached platform"
          "serve.cache.app_hits";
      app_misses =
        Obs.Counter.make ~doc:"warm-cache application misses" "serve.cache.app_misses";
      evictions =
        Obs.Counter.make ~doc:"warm-cache platform entries evicted"
          "serve.cache.evictions";
    }

type t = {
  cache : Cache.t;
  mutable mirrored : Cache.stats; (* last values pushed into the counters *)
}

let zero_stats =
  {
    Cache.platform_hits = 0;
    platform_misses = 0;
    app_hits = 0;
    app_misses = 0;
    evictions = 0;
  }

let create ?(cache = Cache.create ()) () =
  ignore (Lazy.force counters);
  { cache; mirrored = zero_stats }

let cache_stats t = Cache.stats t.cache

(* Counters are monotone, so the mirror pushes deltas. *)
let mirror_cache t =
  let c = Lazy.force counters in
  let now = Cache.stats t.cache in
  let was = t.mirrored in
  Obs.Counter.add c.platform_hits (now.Cache.platform_hits - was.Cache.platform_hits);
  Obs.Counter.add c.platform_misses
    (now.Cache.platform_misses - was.Cache.platform_misses);
  Obs.Counter.add c.app_hits (now.Cache.app_hits - was.Cache.app_hits);
  Obs.Counter.add c.app_misses (now.Cache.app_misses - was.Cache.app_misses);
  Obs.Counter.add c.evictions (now.Cache.evictions - was.Cache.evictions);
  t.mirrored <- now

(* ------------------------------------------------------------------ *)
(* Rejection                                                           *)
(* ------------------------------------------------------------------ *)

exception Reject of int * string

let reject status fmt = Printf.ksprintf (fun m -> raise (Reject (status, m))) fmt

(* ------------------------------------------------------------------ *)
(* Request parsing                                                     *)
(* ------------------------------------------------------------------ *)

let body_json (req : Http.request) =
  if req.Http.body = "" then reject 400 "empty request body (a JSON object is required)";
  match Json.of_string req.Http.body with
  | Ok v -> v
  | Error msg -> reject 400 "body is not valid JSON: %s" msg

let require body key =
  match Json.member key body with
  | Some v -> v
  | None -> reject 400 "missing field %S" key

let number body key =
  match Json.to_float (require body key) with
  | Some f when Float.is_finite f -> f
  | _ -> reject 400 "field %S must be a finite number" key

let opt_number body key =
  match Json.member key body with
  | None -> None
  | Some v -> (
    match Json.to_float v with
    | Some f when Float.is_finite f -> Some f
    | _ -> reject 400 "field %S must be a finite number" key)

let opt_int body key =
  match Json.member key body with
  | None -> None
  | Some v -> (
    match Json.to_int v with
    | Some n -> Some n
    | None -> reject 400 "field %S must be an integer" key)

let opt_string body key =
  match Json.member key body with
  | None -> None
  | Some v -> (
    match Json.to_string_opt v with
    | Some s -> Some s
    | None -> reject 400 "field %S must be a string" key)

let opt_bool body key =
  match Json.member key body with
  | None -> false
  | Some v -> (
    match Json.to_bool v with
    | Some b -> b
    | None -> reject 400 "field %S must be a boolean" key)

let float_array body key =
  match Json.floats (require body key) with
  | Some a -> a
  | None -> reject 400 "field %S must be an array of finite numbers" key

(* Model constructors validate values (positivity, shapes) and raise
   Invalid_argument; [handle] turns those into the 400 body, so the
   wording of e.g. a negative work weight is the library's own. *)
let platform_of_json j =
  let speeds = float_array j "speeds" in
  match Json.member "bandwidths" j with
  | Some m -> (
    (* Fully heterogeneous: a p×p symmetric matrix. *)
    match Json.to_list m with
    | None -> reject 400 "field \"bandwidths\" must be a matrix (array of arrays)"
    | Some rows ->
      let bandwidths =
        Array.of_list
          (List.map
             (fun row ->
               match Json.floats row with
               | Some a -> a
               | None ->
                 reject 400
                   "field \"bandwidths\" must be a matrix of finite numbers")
             rows)
      in
      let io_bandwidths =
        match Json.member "io_bandwidths" j with
        | None -> None
        | Some v -> (
          match Json.floats v with
          | Some a -> Some a
          | None ->
            reject 400 "field \"io_bandwidths\" must be an array of finite numbers")
      in
      Platform.fully_heterogeneous ?io_bandwidths ~bandwidths speeds)
  | None ->
    let bandwidth = number j "bandwidth" in
    let io_bandwidth = opt_number j "io_bandwidth" in
    Platform.comm_homogeneous ?io_bandwidth ~bandwidth speeds

let instance_of_json body =
  let j = require body "instance" in
  let works = float_array j "works" in
  let deltas = float_array j "deltas" in
  let platform_json = require j "platform" in
  let app = Application.make ~deltas works in
  let platform = platform_of_json platform_json in
  Instance.make app platform

(* Exactly one of "period" / "latency" — the CLI's wording. *)
let threshold_of body =
  match (opt_number body "period", opt_number body "latency") with
  | Some p, None -> (Pipeline_core.Registry.Period_fixed, p)
  | None, Some l -> (Pipeline_core.Registry.Latency_fixed, l)
  | _ -> reject 400 "exactly one of \"period\" / \"latency\" is required"

(* ------------------------------------------------------------------ *)
(* Response construction                                               *)
(* ------------------------------------------------------------------ *)

let json_response status v = (status, "application/json", Json.to_string v)

let solution_row ~id ~name = function
  | None ->
    Json.Obj
      [ ("id", Json.String id); ("name", Json.String name); ("feasible", Json.Bool false) ]
  | Some (sol : Pipeline_core.Solution.t) ->
    Json.Obj
      [
        ("id", Json.String id);
        ("name", Json.String name);
        ("feasible", Json.Bool true);
        ("mapping", Json.String (Mapping.to_string sol.Pipeline_core.Solution.mapping));
        ("period", Json.Number sol.Pipeline_core.Solution.period);
        ("latency", Json.Number sol.Pipeline_core.Solution.latency);
      ]

let outcome_row (info : Ureg.info) = function
  | None ->
    Json.Obj
      [
        ("id", Json.String info.Ureg.id);
        ("name", Json.String info.Ureg.paper_name);
        ("feasible", Json.Bool false);
      ]
  | Some (o : Ureg.outcome) ->
    Json.Obj
      ([
         ("id", Json.String info.Ureg.id);
         ("name", Json.String info.Ureg.paper_name);
         ("feasible", Json.Bool true);
         ("mapping", Json.String (Deal_mapping.to_string o.Ureg.mapping));
         ("period", Json.Number o.Ureg.period);
         ("latency", Json.Number o.Ureg.latency);
       ]
      @
      match o.Ureg.failure with
      | None -> []
      | Some f -> [ ("failure", Json.Number f) ])

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)
(* ------------------------------------------------------------------ *)

let handle_health () =
  json_response 200
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("service", Json.String "pipeline-sched");
         ("version", Json.String "1.0.0");
       ])

let handle_metrics () = (200, "text/plain; version=0.0.4", Obs.exposition ())

(* Fully-het exact answers come from the exhaustive oracle; its
   enumeration guard (10^7 mappings) is re-checked here so oversized
   requests get a deliberate 400, not a 500 — with the CLI's exact
   exit-2 wording (Exhaustive.oversized). *)
let check_exhaustive_size (inst : Instance.t) =
  let n = Application.n inst.Instance.app
  and p = Platform.p inst.Instance.platform in
  match Pipeline_optimal.Exhaustive.oversized ~n ~p with
  | Some diagnostic -> reject 400 "%s" diagnostic
  | None -> ()

let handle_solve t body =
  let request = instance_of_json body in
  let kind, threshold = threshold_of body in
  let chosen =
    match opt_string body "heuristic" with
    | None -> None
    | Some name -> (
      match Ureg.resolve ~kind name with
      | Ok info -> Some (name, info)
      | Error msg -> reject 400 "%s" msg)
  in
  let exact = opt_bool body "exact" in
  let lookup = Cache.canonical t.cache request in
  let inst = lookup.Cache.instance in
  let comm_hom = Platform.is_comm_homogeneous inst.Instance.platform in
  (match chosen with
  | Some (name, info) when (not comm_hom) && info.Ureg.stack <> Ureg.Het ->
    reject 400 "heuristic %s requires a comm-homogeneous platform" name
  | _ -> ());
  let registry_rows =
    match chosen with
    | Some (_, info) -> [ info ]
    | None when comm_hom ->
      List.filter (fun (i : Ureg.info) -> i.Ureg.kind = kind) Ureg.paper
    | None -> []
  in
  let results =
    List.map
      (fun (info : Ureg.info) ->
        outcome_row info (info.Ureg.solve inst ~threshold))
      registry_rows
  in
  let results =
    if chosen = None && not comm_hom then begin
      (* Fully heterogeneous platform, no explicit row: the het
         extension, as in the CLI. *)
      let sol =
        match kind with
        | Pipeline_core.Registry.Period_fixed ->
          Pipeline_het.Het_heuristics.minimise_latency_under_period inst
            ~period:threshold
        | Pipeline_core.Registry.Latency_fixed ->
          Pipeline_het.Het_heuristics.minimise_period_under_latency inst
            ~latency:threshold
      in
      results @ [ solution_row ~id:"het-splitting" ~name:"het splitting" sol ]
    end
    else results
  in
  let results =
    if exact then begin
      (* Comm-homogeneous: the O(n³p) dynamic programs. Fully het: the
         exhaustive oracle, behind its enumeration guard (DESIGN.md
         §13). *)
      let sol =
        if comm_hom then
          match kind with
          | Pipeline_core.Registry.Period_fixed ->
            Pipeline_optimal.Bicriteria.min_latency_under_period inst
              ~period:threshold
          | Pipeline_core.Registry.Latency_fixed ->
            Pipeline_optimal.Bicriteria.min_period_under_latency inst
              ~latency:threshold
        else begin
          check_exhaustive_size inst;
          match kind with
          | Pipeline_core.Registry.Period_fixed ->
            Pipeline_optimal.Exhaustive.min_latency_under_period inst
              ~period:threshold
          | Pipeline_core.Registry.Latency_fixed ->
            Pipeline_optimal.Exhaustive.min_period_under_latency inst
              ~latency:threshold
        end
      in
      results @ [ solution_row ~id:"exact" ~name:"exact" sol ]
    end
    else results
  in
  json_response 200
    (Json.Obj
       [
         ("n", Json.Number (float_of_int (Application.n inst.Instance.app)));
         ("p", Json.Number (float_of_int (Platform.p inst.Instance.platform)));
         ( "kind",
           Json.String
             (match kind with
             | Pipeline_core.Registry.Period_fixed -> "period"
             | Pipeline_core.Registry.Latency_fixed -> "latency") );
         ("threshold", Json.Number threshold);
         ("results", Json.List results);
       ])

let handle_pareto t body =
  let request = instance_of_json body in
  let lookup = Cache.canonical t.cache request in
  let inst = lookup.Cache.instance in
  let front =
    if Platform.is_comm_homogeneous inst.Instance.platform then
      Pipeline_optimal.Bicriteria.pareto inst
    else begin
      (* Per-link bandwidths break the DP's locality; the exhaustive
         oracle scores every mapping instead (guarded). *)
      check_exhaustive_size inst;
      Pipeline_optimal.Exhaustive.pareto inst
    end
  in
  json_response 200
    (Json.Obj
       [
         ("n", Json.Number (float_of_int (Application.n inst.Instance.app)));
         ("p", Json.Number (float_of_int (Platform.p inst.Instance.platform)));
         ( "points",
           Json.List
             (List.map
                (fun (sol : Pipeline_core.Solution.t) ->
                  Json.Obj
                    [
                      ( "mapping",
                        Json.String
                          (Mapping.to_string sol.Pipeline_core.Solution.mapping) );
                      ("period", Json.Number sol.Pipeline_core.Solution.period);
                      ("latency", Json.Number sol.Pipeline_core.Solution.latency);
                    ])
                front) );
       ])

let handle_simulate t body =
  let request = instance_of_json body in
  let lookup = Cache.canonical t.cache request in
  let inst = lookup.Cache.instance in
  let sol =
    match opt_string body "mapping" with
    | Some text -> (
      match Mapping_io.of_string text with
      | Ok mapping -> Pipeline_core.Solution.of_mapping inst mapping
      | Error e -> reject 400 "bad mapping: %s" e)
    | None -> (
      let threshold =
        match opt_number body "period" with
        | Some p -> p
        | None -> Instance.single_proc_period inst *. 0.85
      in
      (* H1 on comm-homogeneous platforms, the het splitting extension
         otherwise — the same dispatch as /solve. *)
      let sol =
        if Platform.is_comm_homogeneous inst.Instance.platform then
          Pipeline_core.Sp_mono_p.solve inst ~period:threshold
        else
          Pipeline_het.Het_heuristics.minimise_latency_under_period inst
            ~period:threshold
      in
      match sol with
      | None -> reject 400 "no mapping achieves period %g" threshold
      | Some sol -> sol)
  in
  let datasets = Option.value (opt_int body "datasets") ~default:50 in
  let noise = Option.value (opt_number body "noise") ~default:0. in
  let seed = Option.value (opt_int body "seed") ~default:2007 in
  let stats =
    Pipeline_sim.Workload_sim.run
      ~config:
        {
          Pipeline_sim.Workload_sim.default_config with
          Pipeline_sim.Workload_sim.datasets;
          noise =
            (if noise = 0. then Pipeline_sim.Workload_sim.No_noise
             else Pipeline_sim.Workload_sim.Uniform_factor noise);
          seed;
        }
      inst sol.Pipeline_core.Solution.mapping
  in
  let s = stats in
  json_response 200
    (Json.Obj
       [
         ( "mapping",
           Json.String (Mapping.to_string sol.Pipeline_core.Solution.mapping) );
         ("analytic_period", Json.Number sol.Pipeline_core.Solution.period);
         ("analytic_latency", Json.Number sol.Pipeline_core.Solution.latency);
         ( "stats",
           Json.Obj
             [
               ( "completed",
                 Json.Number (float_of_int s.Pipeline_sim.Workload_sim.completed) );
               ("makespan", Json.Number s.Pipeline_sim.Workload_sim.makespan);
               ( "steady_period",
                 Json.Number s.Pipeline_sim.Workload_sim.steady_period );
               ("throughput", Json.Number s.Pipeline_sim.Workload_sim.throughput);
               ( "latency_mean",
                 Json.Number s.Pipeline_sim.Workload_sim.latency_mean );
               ("latency_p95", Json.Number s.Pipeline_sim.Workload_sim.latency_p95);
               ("latency_max", Json.Number s.Pipeline_sim.Workload_sim.latency_max);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let known_paths = [ "/health"; "/metrics"; "/solve"; "/pareto"; "/simulate" ]

let dispatch t (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/health" -> handle_health ()
  | "GET", "/metrics" -> handle_metrics ()
  | "POST", "/solve" ->
    Obs.Counter.incr (Lazy.force counters).solve;
    handle_solve t (body_json req)
  | "POST", "/pareto" ->
    Obs.Counter.incr (Lazy.force counters).pareto;
    handle_pareto t (body_json req)
  | "POST", "/simulate" ->
    Obs.Counter.incr (Lazy.force counters).simulate;
    handle_simulate t (body_json req)
  | meth, path when List.mem path known_paths ->
    reject 405 "method %s not allowed on %s" meth path
  | _, path -> reject 404 "no such endpoint %s" path

let error_body msg = Json.to_string (Json.Obj [ ("error", Json.String msg) ])

let handle t req =
  let c = Lazy.force counters in
  Obs.Counter.incr c.requests;
  let status, content_type, body =
    try dispatch t req with
    | Reject (status, msg) -> (status, "application/json", error_body msg)
    | Invalid_argument msg | Failure msg ->
      (* The model constructors' own validation — a client error, as on
         the CLI (exit 2). *)
      (400, "application/json", error_body msg)
    | e -> (500, "application/json", error_body (Printexc.to_string e))
  in
  (if status >= 500 then Obs.Counter.incr c.server_error
   else if status >= 400 then Obs.Counter.incr c.client_error
   else Obs.Counter.incr c.ok);
  mirror_cache t;
  (status, content_type, body)

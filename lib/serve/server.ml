(* Accept loop: single thread, sequential handling — the determinism
   contract of doc/serving.mld. Shutdown is a polled atomic: the loop
   selects with a short timeout, so a stop request is observed within
   ~50 ms without needing a self-pipe. *)

type t = {
  sock : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  cleaned : bool Atomic.t;
  thread : Thread.t;
}

let serve_connection protocol ~max_body client =
  Fun.protect
    ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
    (fun () ->
      match Http.read_request ~max_body client with
      | Ok req ->
        let status, content_type, body = Protocol.handle protocol req in
        Http.write_response client ~status ~content_type body
      | Error Http.Closed -> () (* nothing arrived; nothing to answer *)
      | Error (Http.Too_large msg) ->
        Http.write_response client ~status:413
          (Printf.sprintf "{\"error\":%s}" (Json.to_string (Json.String msg)))
      | Error (Http.Malformed msg) ->
        Http.write_response client ~status:400
          (Printf.sprintf "{\"error\":%s}" (Json.to_string (Json.String msg))))

let accept_loop protocol ~max_body sock stop_flag =
  while not (Atomic.get stop_flag) do
    match Unix.select [ sock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept sock with
      | client, _addr -> serve_connection protocol ~max_body client
      | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(port = 0) ?(max_body = 1024 * 1024) protocol =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen sock 64
   with
  | () -> ()
  | exception e ->
    (try Unix.close sock with Unix.Unix_error _ -> ());
    raise e);
  let bound_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  let stop_flag = Atomic.make false in
  let thread =
    Thread.create (fun () -> accept_loop protocol ~max_body sock stop_flag) ()
  in
  { sock; bound_port; stop_flag; cleaned = Atomic.make false; thread }

let port t = t.bound_port

(* Only the atomic store: safe from a signal handler. *)
let request_stop t = Atomic.set t.stop_flag true

let stop t =
  request_stop t;
  if not (Atomic.exchange t.cleaned true) then begin
    Thread.join t.thread;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

let wait t = Thread.join t.thread

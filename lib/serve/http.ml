(* Minimal HTTP/1.1 framing over Unix sockets. One request per
   connection; Content-Length bodies only. See the .mli for scope. *)

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
}

type error = Closed | Too_large of string | Malformed of string

let max_header_bytes = 8192
let default_max_body = 1024 * 1024

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | _ -> "Unknown"

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let rec really_read fd buf off need =
  if need > 0 then begin
    let got = Unix.read fd buf off need in
    if got = 0 then raise End_of_file;
    really_read fd buf (off + got) (need - got)
  end

(* Accumulate until the header terminator; bytes past it are the start
   of the body. *)
let read_head fd =
  let chunk = Bytes.create 1024 in
  let acc = Buffer.create 512 in
  (* Rescanning the whole buffer per chunk is fine: the head is capped
     at 8 KiB and normal requests arrive in one or two reads. *)
  let find_terminator () =
    let s = Buffer.contents acc in
    let limit = Buffer.length acc - 4 in
    let rec scan i =
      if i > limit then None
      else if
        s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
      then Some i
      else scan (i + 1)
    in
    scan 0
  in
  let rec loop () =
    match find_terminator () with
    | Some at ->
      let s = Buffer.contents acc in
      Ok (String.sub s 0 at, String.sub s (at + 4) (String.length s - at - 4))
    | None ->
      if Buffer.length acc > max_header_bytes then
        Error (Too_large "request headers exceed the 8 KiB cap")
      else begin
        let got = Unix.read fd chunk 0 (Bytes.length chunk) in
        if got = 0 then Error Closed
        else begin
          Buffer.add_subbytes acc chunk 0 got;
          loop ()
        end
      end
  in
  match loop () with exception End_of_file -> Error Closed | r -> r

let parse_headers lines =
  List.fold_left
    (fun acc line ->
      match acc with
      | Error _ -> acc
      | Ok headers -> (
        match String.index_opt line ':' with
        | None -> Error (Malformed (Printf.sprintf "malformed header line %S" line))
        | Some i ->
          let name = String.lowercase_ascii (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          Ok ((name, value) :: headers)))
    (Ok []) lines

let read_request ?(max_body = default_max_body) fd =
  match read_head fd with
  | Error e -> Error e
  | Ok (head, early_body) -> (
    match String.split_on_char '\n' head with
    | [] -> Error (Malformed "empty request")
    | request_line :: header_lines -> (
      let strip_cr s =
        if s <> "" && s.[String.length s - 1] = '\r' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      let header_lines = List.map strip_cr header_lines in
      match String.split_on_char ' ' (strip_cr request_line) with
      | [ meth; path; version ]
        when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." -> (
        match parse_headers header_lines with
        | Error e -> Error e
        | Ok headers -> (
          let content_length =
            match List.assoc_opt "content-length" headers with
            | None -> Ok 0
            | Some v -> (
              match int_of_string_opt (String.trim v) with
              | Some n when n >= 0 -> Ok n
              | _ -> Error (Malformed (Printf.sprintf "bad Content-Length %S" v)))
          in
          match content_length with
          | Error e -> Error e
          | Ok n when n > max_body ->
            Error
              (Too_large
                 (Printf.sprintf "declared body of %d bytes exceeds the %d byte cap"
                    n max_body))
          | Ok n -> (
            let have = String.length early_body in
            if have >= n then
              Ok { meth; path; headers; body = String.sub early_body 0 n }
            else begin
              let rest = Bytes.create (n - have) in
              match really_read fd rest 0 (n - have) with
              | () ->
                Ok { meth; path; headers; body = early_body ^ Bytes.to_string rest }
              | exception End_of_file -> Error Closed
            end)))
      | _ -> Error (Malformed "malformed request line")))

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let write_response fd ~status ?(content_type = "application/json") body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status (reason status) content_type (String.length body)
  in
  try write_all fd (head ^ body)
  with Unix.Unix_error _ -> () (* peer went away; connection closes anyway *)

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

let roundtrip ~port text =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      write_all fd text;
      let acc = Buffer.create 512 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let got = Unix.read fd chunk 0 (Bytes.length chunk) in
        if got > 0 then begin
          Buffer.add_subbytes acc chunk 0 got;
          drain ()
        end
      in
      drain ();
      Buffer.contents acc)

let parse_response text =
  match String.index_opt text '\r' with
  | None -> Error "malformed response: no status line"
  | Some eol -> (
    let status_line = String.sub text 0 eol in
    match String.split_on_char ' ' status_line with
    | _http :: code :: _ -> (
      match int_of_string_opt code with
      | None -> Error (Printf.sprintf "malformed status %S" status_line)
      | Some status -> (
        (* Body = everything after the first blank line. *)
        let rec find i =
          if i + 3 >= String.length text then None
          else if
            text.[i] = '\r' && text.[i + 1] = '\n' && text.[i + 2] = '\r'
            && text.[i + 3] = '\n'
          then Some (i + 4)
          else find (i + 1)
        in
        match find 0 with
        | None -> Error "malformed response: no header terminator"
        | Some at ->
          Ok (status, String.sub text at (String.length text - at))))
    | _ -> Error (Printf.sprintf "malformed status %S" status_line))

let request ~port text =
  match roundtrip ~port text with
  | raw -> parse_response raw
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))

let get ~port path =
  request ~port
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\n\r\n" path port)

let post ~port path ~body =
  request ~port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\nHost: 127.0.0.1:%d\r\nContent-Type: \
        application/json\r\nContent-Length: %d\r\n\r\n%s"
       path port (String.length body) body)

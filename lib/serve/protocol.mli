(** The daemon's request surface: routing, validation and response
    construction, independent of any socket.

    [handle] is a pure-ish function from an {!Http.request} to a
    complete (status, content type, body) triple — "pure-ish" because it
    mutates the warm-engine {!Cache} and the [serve.*] observability
    counters, neither of which feeds back into a response body. Identical
    requests therefore produce byte-identical responses, whatever the
    cache state and whatever [--jobs] width the pool runs at (the
    contract doc/serving.mld spells out; the qcheck suite enforces the
    serve-vs-library half of it).

    Endpoints, request/response schemas and the error model are
    documented in doc/serving.mld. Validation failures are one-line
    [{"error": "..."}] bodies with status 400, carrying the {e same
    wording} as the CLI's exit-2 diagnostics: both surfaces resolve
    heuristics through {!Pipeline_registry.resolve} and share their
    option-consistency messages. *)

type t
(** Protocol state: the warm-engine cache plus the counter mirror.
    Not thread-safe — the server drives it from its single request
    thread. *)

val create : ?cache:Cache.t -> unit -> t
(** A fresh protocol state ([cache] defaults to {!Cache.create}'s
    defaults). The [serve.*] observability counters register on the
    first [create] — not at module initialisation — so linking this
    library does not change the metrics dump of programs that never
    serve (the bench's [metrics.csv] golden). *)

val handle : t -> Http.request -> int * string * string
(** [handle t req] is [(status, content_type, body)]. Never raises:
    rejections become 400/404/405 one-liners, unexpected exceptions a
    500 with the exception text. *)

val cache_stats : t -> Cache.stats
(** The warm-engine cache tallies (also mirrored into [serve.cache.*]
    counters after every request). *)

(* Platform-fingerprint-keyed LRU of warm cost engines. See the .mli
   and DESIGN.md §12 for the semantics. *)

open Pipeline_model

(* Above this stage count the eager candidate-set priming is skipped:
   enumeration is O(n² · |speeds|) and web-scale solvers go through the
   lazy lattice (Candidates.Set) anyway (DESIGN.md §11). *)
let candidate_prime_cap = 512

(* Fully-het candidate families are O(n² · |configs|) with |configs| up
   to p³ (DESIGN.md §13), so het priming is bounded by the materialised
   triple count rather than the stage count. *)
let het_prime_triples_cap = 1 lsl 16

type app_slot = { app_fp : string; instance : Instance.t; engine : Cost.t }

type entry = { platform : Platform.t; mutable apps : app_slot list (* MRU first *) }

type stats = {
  platform_hits : int;
  platform_misses : int;
  app_hits : int;
  app_misses : int;
  evictions : int;
}

type t = {
  platform_cap : int;
  app_cap : int;
  mutable entries : (string * entry) list; (* MRU first *)
  mutable platform_hits : int;
  mutable platform_misses : int;
  mutable app_hits : int;
  mutable app_misses : int;
  mutable evictions : int;
}

let create ?(platforms = 64) ?(apps_per_platform = 16) () =
  if platforms < 1 || apps_per_platform < 1 then
    invalid_arg "Cache.create: caps must be >= 1";
  {
    platform_cap = platforms;
    app_cap = apps_per_platform;
    entries = [];
    platform_hits = 0;
    platform_misses = 0;
    app_hits = 0;
    app_misses = 0;
    evictions = 0;
  }

(* ------------------------------------------------------------------ *)
(* Fingerprints                                                        *)
(* ------------------------------------------------------------------ *)

(* Hex-float rendering is injective on floats (same idiom as
   Churn.fingerprint), so distinct platforms cannot share a key. *)
let platform_fingerprint platform =
  let p = Platform.p platform in
  let b = Buffer.create 64 in
  Printf.bprintf b "p%d" p;
  if Platform.is_comm_homogeneous platform then
    (* One common bandwidth everywhere (I/O included). *)
    Printf.bprintf b "|ch%h"
      (if p >= 2 then Platform.bandwidth platform 0 1
       else Platform.io_bandwidth platform 0)
  else begin
    Buffer.add_string b "|fh";
    for u = 0 to p - 1 do
      Printf.bprintf b "|i%h" (Platform.io_bandwidth platform u);
      for v = u + 1 to p - 1 do
        Printf.bprintf b ",%h" (Platform.bandwidth platform u v)
      done
    done
  end;
  for u = 0 to p - 1 do
    Printf.bprintf b "|s%h" (Platform.speed platform u)
  done;
  Buffer.contents b

let app_fingerprint app =
  let b = Buffer.create 64 in
  Printf.bprintf b "n%d" (Application.n app);
  Array.iter (fun w -> Printf.bprintf b "|w%h" w) (Application.works app);
  Array.iter (fun d -> Printf.bprintf b "|d%h" d) (Application.deltas app);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

type lookup = {
  instance : Instance.t;
  engine : Cost.t;
  platform_hit : bool;
  app_hit : bool;
}

(* Move-to-front on an assoc list: entry counts are small (tens), so the
   O(cap) scan is noise next to a single solve. *)
let promote key list =
  match List.assoc_opt key list with
  | None -> None
  | Some v -> Some (v, (key, v) :: List.remove_assoc key list)

let truncate cap list =
  let rec take n = function
    | [] -> ([], 0)
    | _ :: _ as rest when n = 0 -> ([], List.length rest)
    | x :: rest ->
      let kept, dropped = take (n - 1) rest in
      (x :: kept, dropped)
  in
  take cap list

let warm_slot ~app_fp (request : Instance.t) platform =
  (* The representative instance: the entry's physical platform paired
     with this request's application. Cost.get registers the engine in
     the domain LRU under exactly these physical values, so the solvers'
     internal Cost.get calls hit it. *)
  let instance =
    Instance.make ~id:request.Instance.id ~seed:request.Instance.seed
      request.Instance.app platform
  in
  let engine = Cost.get instance.Instance.app instance.Instance.platform in
  let n = Application.n instance.Instance.app in
  let prime =
    if Platform.is_comm_homogeneous platform then n <= candidate_prime_cap
    else
      n * (n + 1) / 2 * Array.length (Cost.candidate_configs engine)
      <= het_prime_triples_cap
  in
  if prime then ignore (Candidates.periods engine);
  { app_fp; instance; engine }

let canonical t (request : Instance.t) =
  let platform_fp = platform_fingerprint request.Instance.platform in
  let app_fp = app_fingerprint request.Instance.app in
  match promote platform_fp t.entries with
  | Some (entry, reordered) ->
    t.entries <- reordered;
    t.platform_hits <- t.platform_hits + 1;
    let slot, app_hit =
      match
        List.find_opt (fun slot -> slot.app_fp = app_fp) entry.apps
      with
      | Some slot ->
        t.app_hits <- t.app_hits + 1;
        (slot, true)
      | None ->
        t.app_misses <- t.app_misses + 1;
        (warm_slot ~app_fp request entry.platform, false)
    in
    let others = List.filter (fun s -> s.app_fp <> app_fp) entry.apps in
    let kept, _ = truncate t.app_cap (slot :: others) in
    entry.apps <- kept;
    { instance = slot.instance; engine = slot.engine; platform_hit = true; app_hit }
  | None ->
    t.platform_misses <- t.platform_misses + 1;
    t.app_misses <- t.app_misses + 1;
    let platform = request.Instance.platform in
    let slot = warm_slot ~app_fp request platform in
    let entry = { platform; apps = [ slot ] } in
    let kept, dropped = truncate t.platform_cap ((platform_fp, entry) :: t.entries) in
    t.entries <- kept;
    t.evictions <- t.evictions + dropped;
    { instance = slot.instance; engine = slot.engine; platform_hit = false; app_hit = false }

let stats t =
  {
    platform_hits = t.platform_hits;
    platform_misses = t.platform_misses;
    app_hits = t.app_hits;
    app_misses = t.app_misses;
    evictions = t.evictions;
  }

(* Hand-rolled JSON: strict parser + deterministic printer. See the
   .mli for the contract; the printer's determinism is load-bearing
   (byte-identical responses, doc/serving.mld). *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Number f ->
      if Float.is_finite f then Buffer.add_string buf (number_to_string f)
      else Buffer.add_string buf "null"
    | String s -> escape_string buf s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit item)
        members;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Bad of int * string (* byte position, message *)

let of_string text =
  let len = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match text.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let code = hex4 () in
            let code =
              (* Surrogate pair: a high surrogate must be followed by an
                 escaped low surrogate; combine them into one scalar. *)
              if code >= 0xD800 && code <= 0xDBFF then begin
                if
                  !pos + 1 < len && text.[!pos] = '\\' && text.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let low = hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    fail "invalid low surrogate"
                  else 0x10000 + ((code - 0xD800) * 0x400) + (low - 0xDC00)
                end
                else fail "unpaired high surrogate"
              end
              else if code >= 0xDC00 && code <= 0xDFFF then
                fail "unpaired low surrogate"
              else code
            in
            Buffer.add_utf_8_uchar buf (Uchar.of_int code)
          | _ -> fail "unknown escape"));
        loop ())
      | Some c when Char.code c < 0x20 -> fail "raw control byte in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let n0 = !pos in
      while !pos < len && match text.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = n0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let slice = String.sub text start (!pos - start) in
    match float_of_string_opt slice with
    | Some f when Float.is_finite f -> f
    | _ -> fail (Printf.sprintf "invalid number %s" slice)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            more ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        more ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let parse_member () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (key, v)
        in
        let members = ref [ parse_member () ] in
        let rec more () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members := parse_member () :: !members;
            more ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        more ();
        Obj (List.rev !members)
      end
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj members -> List.assoc_opt key members
  | _ -> None

let to_float = function Number f -> Some f | _ -> None

let to_int = function
  | Number f when Float.is_integer f && Float.abs f <= 1e9 ->
    Some (int_of_float f)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let floats v =
  match v with
  | List items ->
    let rec collect acc = function
      | [] -> Some (Array.of_list (List.rev acc))
      | Number f :: rest when Float.is_finite f -> collect (f :: acc) rest
      | _ -> None
    in
    collect [] items
  | _ -> None

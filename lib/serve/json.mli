(** Minimal JSON, hand-rolled (the container bakes in no JSON library).

    Exactly what the serving layer needs and nothing more: the JSON
    value algebra, a strict parser with one-line byte-positioned
    diagnostics (they become the daemon's HTTP 400 bodies, like the
    CLI's exit-2 lines), and a {e deterministic} printer — the printer
    is part of the serve determinism contract (doc/serving.mld):
    identical requests must produce byte-identical response bodies, so
    every float is rendered by {!number_to_string}'s shortest
    round-tripping form and object members print in insertion order. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** members in insertion order *)

val of_string : string -> (t, string) result
(** Strict RFC 8259 parsing of one value (surrounding whitespace
    allowed, trailing bytes rejected). [Error] is a single line
    ["byte N: message"]. Numbers must be finite; [\u]-escapes decode to
    UTF-8 (surrogate pairs included). *)

val to_string : t -> string
(** Compact rendering (no whitespace), deterministic: member order is
    preserved, strings escape the quote, the backslash, the named
    control shorthands ([\n \r \t \b \f]) and [\u00XX] for remaining
    control bytes, numbers go through {!number_to_string}. Non-finite
    numbers render as [null] — the protocol layer never emits them. *)

val number_to_string : float -> string
(** The shortest of [%.0f] (integers below 1e15), [%.15g], [%.16g],
    [%.17g] that parses back to the identical bits — so a float
    surviving a serialise/parse round-trip is bit-identical, which the
    serve-equals-CLI property tests rely on. *)

(** {2 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
(** Object member by name ([None] on non-objects too). *)

val to_float : t -> float option

val to_int : t -> int option
(** Integral {!Number}s only. *)

val to_string_opt : t -> string option
val to_list : t -> t list option
val to_bool : t -> bool option

val floats : t -> float array option
(** A {!List} of finite {!Number}s. *)

(** Closed-loop load generator for the daemon (the bench's
    [--serve-load] section and the CI serve smoke job).

    One client thread issues requests back-to-back over loopback — one
    connection per request, like every client of this server — and
    records per-request wall-clock latency. Four phases:

    - [health]: [GET /health] — protocol floor (no solver work);
    - [solve-cold]: [POST /solve], every request a {e distinct} platform
      fingerprint, so each pays the full engine build + candidate
      enumeration;
    - [solve-warm]: [POST /solve] cycling a handful of platforms that
      fit both the serve cache and [Cost.get]'s per-domain LRU — every
      request after the first lap is a warm hit;
    - [simulate]: [POST /simulate] — DES work on a warm instance.

    The cold/warm pair is the cache's measurement: the acceptance
    criterion "warm measurably faster than cold" is the ratio of their
    mean latencies (EXPERIMENTS.md quotes a measured run). Timings are
    wall-clock and therefore {e not} part of the determinism contract —
    the CSV is a bench artefact, excluded from the byte-identity gates,
    exactly like the Bechamel timings. *)

type phase = {
  label : string;
  requests : int;  (** completed (status 200) requests *)
  errors : int;  (** non-200 responses or transport failures *)
  reqs_per_s : float;
  mean_us : float;
  p50_us : float;
  p99_us : float;
}

val run :
  ?requests_per_phase:int -> ?stages:int -> port:int -> unit -> phase list
(** Run the four phases, in the order above, against a server already
    listening on [port]. [requests_per_phase] defaults to 200;
    [stages] (default 24) sizes the solve instances. *)

val to_csv : phase list -> string list
(** [phase,requests,errors,reqs_per_s,mean_us,p50_us,p99_us] rows with a
    header — the bench writes this as [results/serve-load.csv]. *)

val render : phase list -> string
(** Aligned human-readable table for the bench's stdout. *)

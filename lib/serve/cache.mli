(** The daemon's warm-engine cache: a platform-fingerprint-keyed LRU.

    Parsing a request builds fresh [Application.t]/[Platform.t] values,
    and {!Pipeline_model.Cost.get}'s per-domain engine LRU keys on
    {e physical} equality — so without help, two identical requests
    would each pay the cold engine build and the candidate-set
    enumeration. This cache is the canonicalisation step: it maps the
    request's instance onto the {e representative} instance first seen
    with that platform fingerprint (and, nested under it, that
    application fingerprint), so repeated queries against the same
    cluster hand the solvers pointer-equal values and hit every warm
    table — the cost engine, its memoised cycle-time entries, and the
    candidate-period arrays ({!Pipeline_model.Candidates.periods},
    enumerated once per entry).

    Fingerprints are injective textual encodings in the style of
    {!Pipeline_stream.Churn.fingerprint} (hex-float [%h] rendering, so
    no two distinct platforms collide). Eviction is two-level LRU:
    [platforms] platform entries, each holding at most
    [apps_per_platform] applications; the least recently used entry
    drops first. Interpretation choices (entry sizing, the interplay
    with [Cost.get]'s 8-engine domain LRU, what "warm" means for the
    load generator) are DESIGN.md §12.

    Lookups mutate the LRU order: the cache is meant to be used from the
    server's single request thread (requests are serialised — the
    determinism contract of doc/serving.mld) and is {e not}
    thread-safe. *)

open Pipeline_model

type t

val create : ?platforms:int -> ?apps_per_platform:int -> unit -> t
(** Defaults: 64 platform entries, 16 applications each. Raises
    [Invalid_argument] when either cap is < 1. *)

val platform_fingerprint : Platform.t -> string
(** Injective encoding of (processor count, speeds, bandwidths): a
    comm-homogeneous platform encodes its single bandwidth, any other
    platform its full I/O vector and link triangle. *)

val app_fingerprint : Application.t -> string
(** Injective encoding of (works, deltas). *)

type lookup = {
  instance : Instance.t;
      (** the representative instance — solvers should use this, not the
          request's parse *)
  engine : Cost.t;
      (** the warm engine (also resident in [Cost.get]'s domain LRU) *)
  platform_hit : bool;  (** platform fingerprint was cached *)
  app_hit : bool;  (** application fingerprint was cached under it *)
}

val canonical : t -> Instance.t -> lookup
(** Canonicalise one request instance, warming the cache on a miss: a
    fresh entry builds the engine and enumerates the candidate-period
    set eagerly — on comm-homogeneous platforms up to the
    candidate-priming stage cap, on fully heterogeneous ones up to a
    materialised-triple cap (the het family is O(n² · |configs|) with up
    to p³ configurations, DESIGN.md §13) — so the cold cost is paid
    here, once, rather than inside every subsequent solve. *)

type stats = {
  platform_hits : int;
  platform_misses : int;
  app_hits : int;
  app_misses : int;  (** platform hit, application miss *)
  evictions : int;  (** platform entries dropped by LRU pressure *)
}

val stats : t -> stats
(** Tallies since {!create} (plain per-cache ints, independent of the
    [Obs] switch; the server also mirrors them into [serve.cache.*]
    counters for [/metrics]). *)

(** Minimal HTTP/1.1 over [Unix] sockets, hand-rolled (no new deps).

    Exactly the subset the daemon speaks: one request per connection
    (every response carries [Connection: close]), a request line plus
    headers capped at {!max_header_bytes}, and an optional
    [Content-Length]-framed body capped by the server's [max_body].
    Chunked transfer encoding, pipelining and keep-alive are
    deliberately out of scope — the protocol surface is small enough to
    audit, and the load generator shows connection setup is not the
    bottleneck (EXPERIMENTS.md).

    The {!get}/{!post} client helpers exist for the tests, the CI smoke
    script and the bench load generator; they speak the same restricted
    dialect. *)

type request = {
  meth : string;  (** verb, upper-case as received *)
  path : string;  (** request target, undecoded *)
  headers : (string * string) list;  (** names lower-cased, values trimmed *)
  body : string;
}

type error =
  | Closed  (** peer closed before a full request arrived *)
  | Too_large of string  (** header block or declared body over the cap *)
  | Malformed of string  (** anything else; one-line diagnostic *)

val max_header_bytes : int
(** Cap on request line + headers (8 KiB). *)

val read_request :
  ?max_body:int -> Unix.file_descr -> (request, error) result
(** Read one request from the socket. [max_body] (default 1 MiB) bounds
    the declared [Content-Length]; an over-cap body is reported
    {e without} reading it, so oversized instances are rejected in
    O(header) work (the daemon answers 413). *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val write_response :
  Unix.file_descr -> status:int -> ?content_type:string -> string -> unit
(** Write a complete response ([Content-Length] framing,
    [Connection: close]). [content_type] defaults to
    [application/json]. Write errors (peer went away) are swallowed:
    the connection is being closed either way. *)

val reason : int -> string
(** Canonical reason phrase for the status codes the daemon uses. *)

(** {2 Client} *)

val get : port:int -> string -> (int * string, string) result
(** [get ~port path] — status and body, loopback only. *)

val post : port:int -> string -> body:string -> (int * string, string) result
(** [post ~port path ~body] — a JSON POST, loopback only. *)

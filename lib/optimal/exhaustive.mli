(** Brute-force enumeration of every interval mapping.

    Enumerates all partitions of [\[1..n\]] into [m] intervals and all
    injective assignments of [m] processors, scoring each with the full
    {!Pipeline_model.Metrics} cost model — so, unlike {!Bicriteria}, it
    also works on fully heterogeneous platforms. Cost grows as
    [Σ_m C(n-1, m-1) · p!/(p-m)!]; a guard rejects instances whose
    estimated enumeration exceeds [10^7] mappings. Validation only.

    The solvers expand the enumeration tree breadth-first into a
    deterministic frontier of independent subtree tasks
    ({!Pipeline_util.Pool.fan_out}) and run the frontier on the domain
    pool; task-local results merge in frontier order with
    first-seen-wins tie-breaking, and the frontier preserves the
    sequential enumeration order, so every answer — including which of
    several equal-cost optima is returned — is bit-identical to the
    sequential enumeration at any pool width and any frontier size
    (DESIGN.md §14). *)

open Pipeline_model
open Pipeline_core

val count_mappings : n:int -> p:int -> float
(** Estimated number of interval mappings of the instance size. *)

val guard : float
(** Enumeration guard: instances whose {!count_mappings} estimate
    exceeds this are rejected ([10^7]). A property of the instance
    alone — independent of [--jobs]. *)

val oversized : n:int -> p:int -> string option
(** [Some diagnostic] when the instance size breaks {!guard} — the one
    wording shared by the CLI's exit-2 rejection and the serve daemon's
    HTTP 400 body; [None] when the enumeration is admissible. *)

val iter_mappings : Instance.t -> (Mapping.t -> unit) -> unit
(** Enumerate every interval mapping (raises [Invalid_argument] when the
    estimate exceeds the guard). *)

val min_period : Instance.t -> Solution.t
val min_latency : Instance.t -> Solution.t

val min_latency_under_period : Instance.t -> period:float -> Solution.t option
val min_period_under_latency : Instance.t -> latency:float -> Solution.t option

val pareto : Instance.t -> Solution.t list
(** Non-dominated (period, latency) mappings, sorted by increasing
    period. *)

(** Brute-force enumeration of every interval mapping.

    Enumerates all partitions of [\[1..n\]] into [m] intervals and all
    injective assignments of [m] processors, scoring each with the full
    {!Pipeline_model.Metrics} cost model — so, unlike {!Bicriteria}, it
    also works on fully heterogeneous platforms. Cost grows as
    [Σ_m C(n-1, m-1) · p!/(p-m)!]; a guard rejects instances whose
    estimated enumeration exceeds [10^7] mappings. Validation only.

    The solvers split the enumeration at the root (one branch per
    interval count [m] and first cut) and fan the branches out over
    {!Pipeline_util.Pool}; branch-local results merge in branch order
    with first-seen-wins tie-breaking, so every answer — including which
    of several equal-cost optima is returned — is bit-identical to the
    sequential enumeration at any pool width. *)

open Pipeline_model
open Pipeline_core

val count_mappings : n:int -> p:int -> float
(** Estimated number of interval mappings of the instance size. *)

val iter_mappings : Instance.t -> (Mapping.t -> unit) -> unit
(** Enumerate every interval mapping (raises [Invalid_argument] when the
    estimate exceeds the guard). *)

val min_period : Instance.t -> Solution.t
val min_latency : Instance.t -> Solution.t

val min_latency_under_period : Instance.t -> period:float -> Solution.t option
val min_period_under_latency : Instance.t -> latency:float -> Solution.t option

val pareto : Instance.t -> Solution.t list
(** Non-dominated (period, latency) mappings, sorted by increasing
    period. *)

module Interval = Pipeline_model.Interval

type assignment = (Interval.t * int) list

let max_procs = 16

let check n p =
  if n < 1 then invalid_arg "Subset_dp: n must be >= 1";
  if p < 1 then invalid_arg "Subset_dp: p must be >= 1";
  if p > max_procs then
    invalid_arg (Printf.sprintf "Subset_dp: p must be <= %d (got %d)" max_procs p)

let popcount set =
  let rec go set acc = if set = 0 then acc else go (set lsr 1) (acc + (set land 1)) in
  go set 0

(* Shared table-filling routine. [combine prev interval_cost] merges the
   cost of the prefix with the cost of the appended interval; [accept]
   filters interval costs (the cap of the constrained variant). *)
let run ~n ~p ~cost ~combine ~accept =
  let size = 1 lsl p in
  let best = Array.make_matrix size (n + 1) infinity in
  let parent_cut = Array.make_matrix size (n + 1) (-1) in
  let parent_proc = Array.make_matrix size (n + 1) (-1) in
  best.(0).(0) <- 0.;
  for set = 1 to size - 1 do
    let intervals = popcount set in
    if intervals <= n then
      for k = intervals to n do
        for u = 0 to p - 1 do
          if set land (1 lsl u) <> 0 then begin
            let rest = set lxor (1 lsl u) in
            for i = intervals - 1 to k - 1 do
              let prev = best.(rest).(i) in
              if prev < infinity then begin
                let c = cost ~d:(i + 1) ~e:k ~u in
                if accept c then begin
                  let total = combine prev c in
                  if total < best.(set).(k) then begin
                    best.(set).(k) <- total;
                    parent_cut.(set).(k) <- i;
                    parent_proc.(set).(k) <- u
                  end
                end
              end
            done
          end
        done
      done
  done;
  (* Best subset covering all n stages. *)
  let best_set = ref 0 and best_val = ref infinity in
  for set = 1 to size - 1 do
    if best.(set).(n) < !best_val then begin
      best_val := best.(set).(n);
      best_set := set
    end
  done;
  if !best_val = infinity then None
  else begin
    let rec walk set k acc =
      if k = 0 then acc
      else
        let i = parent_cut.(set).(k) and u = parent_proc.(set).(k) in
        let iv = Interval.make ~first:(i + 1) ~last:k in
        walk (set lxor (1 lsl u)) i ((iv, u) :: acc)
    in
    Some (!best_val, walk !best_set n [])
  end

let minimise_bottleneck ~n ~p ~cost =
  check n p;
  match run ~n ~p ~cost ~combine:Float.max ~accept:(fun _ -> true) with
  | Some result -> result
  | None -> assert false (* unconstrained: the one-interval mapping exists *)

let minimise_sum_under_cap ~n ~p ~cap_cost ~sum_cost ~cap =
  check n p;
  (* Cost pairs: accept on the cap, accumulate the sum. Evaluating both
     costs per transition keeps the generic core single-purpose. *)
  let cost ~d ~e ~u =
    if Pipeline_util.Tol.meets (cap_cost ~d ~e ~u) cap then sum_cost ~d ~e ~u
    else infinity
  in
  run ~n ~p ~cost ~combine:( +. ) ~accept:(fun c -> c < infinity)

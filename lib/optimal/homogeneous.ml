open Pipeline_model
open Pipeline_core

let check_fully_homogeneous platform =
  if not (Platform.is_comm_homogeneous platform) then
    invalid_arg "Homogeneous: requires a comm-homogeneous platform";
  let speeds = Platform.speeds platform in
  if not (Array.for_all (fun s -> s = speeds.(0)) speeds) then
    invalid_arg "Homogeneous: requires identical processor speeds"

let costs (inst : Instance.t) =
  check_fully_homogeneous inst.platform;
  let b = Platform.io_bandwidth inst.platform 0 in
  let s = Platform.speed inst.platform 0 in
  let app = inst.app in
  let cycle d e =
    (Application.delta app (d - 1) /. b)
    +. (Application.work_sum app d e /. s)
    +. (Application.delta app e /. b)
  in
  let contrib d e =
    (Application.delta app (d - 1) /. b) +. (Application.work_sum app d e /. s)
  in
  (cycle, contrib)

let solution_of_cuts (inst : Instance.t) cuts =
  (* Processors are interchangeable: enrol them by index. *)
  let n = Application.n inst.app in
  let m = List.length cuts + 1 in
  Mapping.of_cuts ~n ~cuts ~procs:(List.init m Fun.id)
  |> Solution.of_mapping inst

(* Chains-style DP over (prefix, number of intervals); [combine] merges a
   prefix value with the appended interval's cost; the accept predicate
   prunes intervals over the cap. Returns value + cut reconstruction. *)
let prefix_dp ~n ~p ~cost ~combine ~accept =
  let p = min p n in
  let best = Array.make_matrix p (n + 1) infinity in
  let cut = Array.make_matrix p (n + 1) 0 in
  for k = 1 to n do
    let c = cost 1 k in
    if accept c then best.(0).(k) <- c
  done;
  for j = 1 to p - 1 do
    best.(j).(0) <- infinity;
    for k = 1 to n do
      best.(j).(k) <- best.(j - 1).(k);
      cut.(j).(k) <- cut.(j - 1).(k);
      for i = 1 to k - 1 do
        if best.(j - 1).(i) < infinity then begin
          let c = cost (i + 1) k in
          if accept c then begin
            let candidate = combine best.(j - 1).(i) c in
            if candidate < best.(j).(k) then begin
              best.(j).(k) <- candidate;
              cut.(j).(k) <- i
            end
          end
        end
      done
    done
  done;
  if best.(p - 1).(n) = infinity then None
  else begin
    let rec collect j k acc =
      if k = 0 then acc
      else
        let i = cut.(j).(k) in
        if i = 0 then acc else collect (max 0 (j - 1)) i (i :: acc)
    in
    Some (best.(p - 1).(n), collect (p - 1) n [])
  end

let min_period (inst : Instance.t) =
  let cycle, _ = costs inst in
  let n = Application.n inst.app and p = Platform.p inst.platform in
  match
    prefix_dp ~n ~p ~cost:cycle ~combine:Float.max ~accept:(fun _ -> true)
  with
  | Some (_, cuts) -> solution_of_cuts inst cuts
  | None -> assert false (* the single-interval mapping always exists *)

let min_latency_under_period (inst : Instance.t) ~period =
  let cycle, contrib = costs inst in
  let n = Application.n inst.app and p = Platform.p inst.platform in
  let cost d e =
    if Pipeline_util.Tol.meets (cycle d e) period then contrib d e else infinity
  in
  match
    prefix_dp ~n ~p ~cost ~combine:( +. ) ~accept:(fun c -> c < infinity)
  with
  | Some (_, cuts) -> Some (solution_of_cuts inst cuts)
  | None -> None

(* Identical speeds collapse the candidate set to one value per interval;
   the engine's cache serves the same floats as the local [cycle]. *)
let candidate_periods (inst : Instance.t) =
  Candidates.periods (Cost.get inst.app inst.platform)

let candidate_set (inst : Instance.t) =
  Candidates.Set.of_engine (Cost.get inst.app inst.platform)

let min_period_under_latency (inst : Instance.t) ~latency =
  let feasible period =
    match min_latency_under_period inst ~period with
    | Some sol when Solution.respects_latency sol latency -> Some sol
    | _ -> None
  in
  match Threshold.search_set ~set:(candidate_set inst) ~probe:feasible () with
  | None -> None
  | Some found -> Some found.Threshold.payload

let pareto (inst : Instance.t) =
  let points =
    List.filter_map
      (fun period -> min_latency_under_period inst ~period)
      (Array.to_list (candidate_periods inst))
  in
  let sorted =
    List.sort_uniq
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best_latency = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best_latency then
        sol :: prune sol.Solution.latency rest
      else prune best_latency rest
  in
  prune infinity sorted

open Pipeline_model
open Pipeline_core
module Bipartite = Pipeline_util.Bipartite
module Hungarian = Pipeline_util.Hungarian

let costs (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "One_to_one: requires a comm-homogeneous platform";
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if n > p then invalid_arg "One_to_one: requires n <= p";
  let b = Platform.io_bandwidth inst.platform 0 in
  let app = inst.app in
  let cycle k u =
    ((Application.delta app (k - 1) +. Application.delta app k) /. b)
    +. (Application.work app k /. Platform.speed inst.platform u)
  in
  let contrib k u =
    (Application.delta app (k - 1) /. b)
    +. (Application.work app k /. Platform.speed inst.platform u)
  in
  (n, p, b, cycle, contrib)

let solution_of_assignment (inst : Instance.t) assignment =
  Solution.of_mapping inst (Mapping.one_to_one ~procs:assignment)

(* Perfect matching of stages to processors using only pairs with
   cycle-time <= threshold. *)
let feasible_assignment (inst : Instance.t) ~threshold =
  let n, p, _, cycle, _ = costs inst in
  let adjacency =
    Array.init n (fun k0 ->
        List.filter
          (fun u -> Pipeline_util.Tol.meets (cycle (k0 + 1) u) threshold)
          (List.init p Fun.id))
  in
  let result = Bipartite.max_matching ~left:n ~right:p ~adjacency in
  if Bipartite.is_perfect_on_left result then Some result.Bipartite.left_match
  else None

let min_period (inst : Instance.t) =
  let n, p, _, cycle, _ = costs inst in
  let candidates = ref [] in
  for k = 1 to n do
    for u = 0 to p - 1 do
      candidates := cycle k u :: !candidates
    done
  done;
  (* One-to-one candidates pair each stage's input and output transfer
     ((δ_{d-1} + δ_d)/b), so the set differs from Candidates.periods and
     stays local. The largest candidate admits a perfect matching (every
     edge open, and n <= p guarantees one). *)
  match
    Threshold.search
      ~candidates:(Candidates.of_values !candidates)
      ~probe:(fun threshold -> feasible_assignment inst ~threshold)
      ()
  with
  | Some found -> solution_of_assignment inst found.Threshold.payload
  | None -> assert false

let hungarian_under_period (inst : Instance.t) ~period =
  let n, p, _, cycle, contrib = costs inst in
  let cost k0 u =
    if Pipeline_util.Tol.meets (cycle (k0 + 1) u) period then contrib (k0 + 1) u
    else infinity
  in
  match Hungarian.solve ~rows:n ~cols:p ~cost with
  | None -> None
  | Some (_, assignment) -> Some (solution_of_assignment inst assignment)

let min_latency (inst : Instance.t) =
  match hungarian_under_period inst ~period:infinity with
  | Some sol -> sol
  | None -> assert false (* finite costs: an assignment always exists *)

let min_latency_under_period (inst : Instance.t) ~period =
  hungarian_under_period inst ~period

let pareto (inst : Instance.t) =
  let n, p, _, cycle, _ = costs inst in
  let candidates = ref [] in
  for k = 1 to n do
    for u = 0 to p - 1 do
      candidates := cycle k u :: !candidates
    done
  done;
  let points =
    List.filter_map
      (fun period -> min_latency_under_period inst ~period)
      (List.sort_uniq compare !candidates)
  in
  let sorted =
    List.sort_uniq
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best then sol :: prune sol.Solution.latency rest
      else prune best rest
  in
  prune infinity sorted

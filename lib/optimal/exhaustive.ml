open Pipeline_model
open Pipeline_core

let rec binomial n k =
  if k < 0 || k > n then 0.
  else if k = 0 || k = n then 1.
  else binomial (n - 1) (k - 1) *. float_of_int n /. float_of_int k

let count_mappings ~n ~p =
  let total = ref 0. in
  for m = 1 to min n p do
    let partitions = binomial (n - 1) (m - 1) in
    let arrangements = ref 1. in
    for i = 0 to m - 1 do
      arrangements := !arrangements *. float_of_int (p - i)
    done;
    total := !total +. (partitions *. !arrangements)
  done;
  !total

let guard = 1e7

let c_mappings =
  Obs.Counter.make ~doc:"mappings enumerated by Optimal.Exhaustive"
    "optimal.exhaustive.mappings"

let c_branches =
  Obs.Counter.make ~doc:"root branches fanned out by Optimal.Exhaustive"
    "optimal.exhaustive.branches"

(* Count mappings branch-locally and flush one sum per branch: totals
   are order-independent, hence identical at any [--jobs N], and the
   enabled cost is one atomic add per root branch. *)
let counted branch f =
  if not (Obs.metrics_enabled ()) then branch f
  else begin
    let local = ref 0 in
    branch (fun mapping ->
        incr local;
        f mapping);
    Obs.Counter.add c_mappings !local
  end

(* The enumeration tree, split at the root into independent branches:
   one branch per interval count [m = 1] and per (m, first-cut) pair for
   [m >= 2]. Branch [i] enumerates a subtree disjoint from every other
   branch, and running the branches in index order visits exactly the
   mappings of the historical sequential enumeration, in the same order
   — which is what lets the parallel folds below reproduce the
   sequential result bit-for-bit (ties are broken by enumeration
   order). *)
let root_branches (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_mappings ~n ~p > guard then
    invalid_arg "Exhaustive.iter_mappings: instance too large to enumerate";
  let with_cuts cuts f =
    let m = List.length cuts + 1 in
    let used = Array.make p false in
    let rec assign k procs_rev =
      if k = m then
        f (Mapping.of_cuts ~n ~cuts ~procs:(List.rev procs_rev))
      else
        for u = 0 to p - 1 do
          if not used.(u) then begin
            used.(u) <- true;
            assign (k + 1) (u :: procs_rev);
            used.(u) <- false
          end
        done
    in
    assign 0 []
  in
  (* Choose the internal cut positions: every subset of [1..n-1] of size
     m-1 for every m up to min(n, p). *)
  let rec choose_cuts start chosen_rev remaining f =
    if remaining = 0 then with_cuts (List.rev chosen_rev) f
    else
      for c = start to n - 1 - (remaining - 1) do
        choose_cuts (c + 1) (c :: chosen_rev) (remaining - 1) f
      done
  in
  let branches = ref [] in
  for m = min n p downto 1 do
    if m = 1 then branches := (fun f -> with_cuts [] f) :: !branches
    else
      for c1 = n - 1 - (m - 2) downto 1 do
        branches := (fun f -> choose_cuts (c1 + 1) [ c1 ] (m - 2) f) :: !branches
      done
  done;
  Obs.Counter.add c_branches (List.length !branches);
  Array.of_list (List.map (fun b -> counted b) !branches)

let iter_mappings (inst : Instance.t) f =
  Array.iter (fun branch -> branch f) (root_branches inst)

(* Fan the root branches out across the domain pool, folding each branch
   locally; [combine] must merge two branch-local accumulators such that
   index-ordered merging equals the sequential fold (true for the
   first-seen-wins "best" folds below). *)
let parallel_fold inst f init combine =
  let locals =
    Pipeline_util.Pool.map
      (fun branch ->
        let acc = ref init in
        branch (fun mapping -> acc := f !acc (Solution.of_mapping inst mapping));
        !acc)
      (root_branches inst)
  in
  Array.fold_left combine init locals

(* First-seen-wins minimisation: the sequential fold keeps the earlier
   solution on ties, so merging branch bests left-to-right with the same
   rule reproduces it exactly. *)
let keep_better measure acc candidate =
  match (acc, candidate) with
  | Some best, Some sol when measure best <= measure sol -> acc
  | _, None -> acc
  | _ -> candidate

let best_by measure inst =
  let step acc sol = keep_better measure acc (Some sol) in
  match parallel_fold inst step None (keep_better measure) with
  | Some sol -> sol
  | None -> assert false (* at least the single-interval mappings exist *)

let min_period inst = best_by (fun s -> s.Solution.period) inst
let min_latency inst = best_by (fun s -> s.Solution.latency) inst

let constrained_best ~feasible ~measure inst =
  let step acc sol =
    if not (feasible sol) then acc else keep_better measure acc (Some sol)
  in
  parallel_fold inst step None (keep_better measure)

let min_latency_under_period inst ~period =
  constrained_best inst
    ~feasible:(fun sol -> Solution.respects_period sol period)
    ~measure:(fun s -> s.Solution.latency)

let min_period_under_latency inst ~latency =
  constrained_best inst
    ~feasible:(fun sol -> Solution.respects_latency sol latency)
    ~measure:(fun s -> s.Solution.period)

let pareto inst =
  (* Branch-local prepending reverses each branch; prepending whole
     branch lists in index order then yields exactly the sequential
     (reversed-global) list, so the sort sees identical input. *)
  let points =
    Array.fold_left
      (fun acc branch_points -> branch_points @ acc)
      []
      (Pipeline_util.Pool.map
         (fun branch ->
           let acc = ref [] in
           branch (fun mapping -> acc := Solution.of_mapping inst mapping :: !acc);
           !acc)
         (root_branches inst))
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best_latency = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best_latency then
        sol :: prune sol.Solution.latency rest
      else prune best_latency rest
  in
  prune infinity sorted

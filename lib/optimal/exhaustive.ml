open Pipeline_model
open Pipeline_core

let rec binomial n k =
  if k < 0 || k > n then 0.
  else if k = 0 || k = n then 1.
  else binomial (n - 1) (k - 1) *. float_of_int n /. float_of_int k

let count_mappings ~n ~p =
  let total = ref 0. in
  for m = 1 to min n p do
    let partitions = binomial (n - 1) (m - 1) in
    let arrangements = ref 1. in
    for i = 0 to m - 1 do
      arrangements := !arrangements *. float_of_int (p - i)
    done;
    total := !total +. (partitions *. !arrangements)
  done;
  !total

let guard = 1e7

(* One diagnostic for every surface that re-checks the guard (CLI exit-2,
   serve HTTP 400): the actual enumeration size next to the bound, and a
   reminder that the bound is a property of the instance, not of the
   parallelism. *)
let oversized ~n ~p =
  let count = count_mappings ~n ~p in
  if count > guard then
    Some
      (Printf.sprintf
         "instance too large for the exact solver on a fully heterogeneous \
          platform: %.3g interval mappings exceed the %.0e enumeration guard \
          (a --jobs-independent bound)"
         count guard)
  else None

let c_mappings =
  Obs.Counter.make ~doc:"mappings enumerated by Optimal.Exhaustive"
    "optimal.exhaustive.mappings"

let c_branches =
  Obs.Counter.make ~doc:"frontier tasks fanned out by Optimal.Exhaustive"
    "optimal.exhaustive.branches"

(* A task is a prefix of the enumeration tree: the interval count [m],
   the cuts chosen so far (all cuts precede any processor choice, as in
   the sequential enumeration), then the processors assigned to the
   leading intervals. Expanding a task in ascending choice order and
   concatenating the children's subtrees reproduces the parent's subtree
   verbatim, which is what keeps the frontier's index order equal to the
   historical sequential enumeration order — and therefore every
   first-seen-wins fold below bit-identical at any [--jobs N]. *)
type task = {
  m : int;
  cuts_rev : int list;  (* chosen internal cuts, reversed *)
  k : int;  (* number of cuts chosen; complete at m - 1 *)
  next_cut : int;  (* smallest admissible next cut *)
  procs_rev : int list;  (* processors of intervals 1..j, reversed *)
  j : int;  (* number of processors assigned; complete at m *)
}

let children ~n ~p task =
  if task.k < task.m - 1 then begin
    (* Next cut: every admissible position, ascending. *)
    let remaining = task.m - 1 - task.k in
    let last = n - 1 - (remaining - 1) in
    if last < task.next_cut then [||]
    else
      Array.init
        (last - task.next_cut + 1)
        (fun i ->
          let c = task.next_cut + i in
          { task with cuts_rev = c :: task.cuts_rev; k = task.k + 1; next_cut = c + 1 })
  end
  else if task.j < task.m then begin
    (* Next processor: every free index, ascending. *)
    let used = Array.make p false in
    List.iter (fun u -> used.(u) <- true) task.procs_rev;
    let free = ref [] in
    for u = p - 1 downto 0 do
      if not used.(u) then free := u :: !free
    done;
    Array.of_list
      (List.map
         (fun u -> { task with procs_rev = u :: task.procs_rev; j = task.j + 1 })
         !free)
  end
  else [||] (* a single fully-determined mapping *)

(* Sequential enumeration of one task's subtree, in canonical order. *)
let run_task ~n ~p task f =
  let used = Array.make p false in
  List.iter (fun u -> used.(u) <- true) task.procs_rev;
  let rec assign j procs_rev cuts =
    if j = task.m then f (Mapping.of_cuts ~n ~cuts ~procs:(List.rev procs_rev))
    else
      for u = 0 to p - 1 do
        if not used.(u) then begin
          used.(u) <- true;
          assign (j + 1) (u :: procs_rev) cuts;
          used.(u) <- false
        end
      done
  in
  let rec choose_cuts start chosen_rev remaining =
    if remaining = 0 then assign task.j task.procs_rev (List.rev chosen_rev)
    else
      for c = start to n - 1 - (remaining - 1) do
        choose_cuts (c + 1) (c :: chosen_rev) (remaining - 1)
      done
  in
  choose_cuts task.next_cut task.cuts_rev (task.m - 1 - task.k)

(* Count mappings task-locally and flush one sum per task: totals are
   order-independent, hence identical at any [--jobs N], and the enabled
   cost is one atomic add per frontier task. *)
let counted run f =
  if not (Obs.metrics_enabled ()) then run f
  else begin
    let local = ref 0 in
    run (fun mapping ->
        incr local;
        f mapping);
    Obs.Counter.add c_mappings !local
  end

let tasks (inst : Instance.t) =
  let n = Application.n inst.app and p = Platform.p inst.platform in
  if count_mappings ~n ~p > guard then
    invalid_arg "Exhaustive.iter_mappings: instance too large to enumerate";
  let roots =
    Array.init (min n p) (fun i ->
        { m = i + 1; cuts_rev = []; k = 0; next_cut = 1; procs_rev = []; j = 0 })
  in
  let frontier = Pipeline_util.Pool.fan_out ~children:(children ~n ~p) roots in
  Obs.Counter.add c_branches (Array.length frontier);
  (n, p, frontier)

let iter_mappings (inst : Instance.t) f =
  let n, p, frontier = tasks inst in
  Array.iter (fun task -> counted (run_task ~n ~p task) f) frontier

(* Fan the frontier tasks out across the domain pool, folding each
   subtree locally; [combine] must merge two task-local accumulators
   such that index-ordered merging equals the sequential fold (true for
   the first-seen-wins "best" folds below). *)
let parallel_fold inst f init combine =
  let n, p, frontier = tasks inst in
  let locals =
    Pipeline_util.Pool.map
      (fun task ->
        let acc = ref init in
        counted (run_task ~n ~p task) (fun mapping ->
            acc := f !acc (Solution.of_mapping inst mapping));
        !acc)
      frontier
  in
  Array.fold_left combine init locals

(* First-seen-wins minimisation: the sequential fold keeps the earlier
   solution on ties, so merging task bests left-to-right with the same
   rule reproduces it exactly. *)
let keep_better measure acc candidate =
  match (acc, candidate) with
  | Some best, Some sol when measure best <= measure sol -> acc
  | _, None -> acc
  | _ -> candidate

let best_by measure inst =
  let step acc sol = keep_better measure acc (Some sol) in
  match parallel_fold inst step None (keep_better measure) with
  | Some sol -> sol
  | None -> assert false (* at least the single-interval mappings exist *)

let min_period inst = best_by (fun s -> s.Solution.period) inst
let min_latency inst = best_by (fun s -> s.Solution.latency) inst

let constrained_best ~feasible ~measure inst =
  let step acc sol =
    if not (feasible sol) then acc else keep_better measure acc (Some sol)
  in
  parallel_fold inst step None (keep_better measure)

let min_latency_under_period inst ~period =
  constrained_best inst
    ~feasible:(fun sol -> Solution.respects_period sol period)
    ~measure:(fun s -> s.Solution.latency)

let min_period_under_latency inst ~latency =
  constrained_best inst
    ~feasible:(fun sol -> Solution.respects_latency sol latency)
    ~measure:(fun s -> s.Solution.period)

let pareto inst =
  (* Task-local prepending reverses each subtree; prepending whole task
     lists in index order then yields exactly the sequential
     (reversed-global) list, so the sort sees identical input. *)
  let n, p, frontier = tasks inst in
  let points =
    Array.fold_left
      (fun acc task_points -> task_points @ acc)
      []
      (Pipeline_util.Pool.map
         (fun task ->
           let acc = ref [] in
           counted (run_task ~n ~p task) (fun mapping ->
               acc := Solution.of_mapping inst mapping :: !acc);
           !acc)
         frontier)
  in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best_latency = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best_latency then
        sol :: prune sol.Solution.latency rest
      else prune best_latency rest
  in
  prune infinity sorted

open Pipeline_model
open Pipeline_core
module Pool = Pipeline_util.Pool

type result = {
  solution : Solution.t;
  proven_optimal : bool;
  nodes : int;
}

let c_nodes =
  Obs.Counter.make ~doc:"nodes expanded by Branch_bound.min_period"
    "optimal.bb.nodes"

let c_pruned =
  Obs.Counter.make ~doc:"subtrees cut by the Branch_bound lower bounds"
    "optimal.bb.pruned"

let c_tasks =
  Obs.Counter.make ~doc:"frontier tasks fanned out by Branch_bound"
    "optimal.bb.tasks"

let c_waves =
  Obs.Counter.make ~doc:"synchronous incumbent waves run by Branch_bound"
    "optimal.bb.waves"

(* Per wave and per task: enough nodes to amortise the wave barrier,
   few enough that incumbent improvements propagate across tasks
   quickly (DESIGN.md §14 discusses the trade-off). *)
let wave_quota = 4096

(* A search node, path-pure: every field is a function of the choices
   on the path from the root, never of traversal history — which is
   what makes pruning decisions reproducible at any domain count.
   [free] holds, per distinct-speed class, the unused processor
   indices (immutable lists, tails shared with the parent node). *)
type node = {
  d : int;  (* next stage to map; complete when d > n *)
  current : float;  (* max interval cycle-time so far *)
  partial : (Interval.t * int) list;  (* reversed assignment *)
  free : int list array;  (* free members per speed class *)
  counts : int array;  (* free count per speed class *)
  sum_speed : float;  (* Σ speeds of free processors *)
}

(* One frontier task: a depth-first machine over one subtree,
   suspendable at wave boundaries. Mutated only by the worker that owns
   it during a wave; waves are separated by domain joins. *)
type task = {
  mutable stack : node list;
  mutable best : (float * (Interval.t * int) list) option;
  mutable nodes : int;
  mutable pruned : int;
}

let min_period ?(node_budget = 1_000_000) ?initial (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Branch_bound: requires a comm-homogeneous platform";
  let app = inst.app and platform = inst.platform in
  let n = Application.n app in
  let b = Platform.io_bandwidth platform 0 in
  let speeds = Platform.speeds platform in
  (* Speed classes, fastest first; members in enrolment order (the
     by-decreasing-speed representative order of the platform). *)
  let order = Platform.by_decreasing_speed platform in
  let class_speeds =
    Array.of_list (List.sort_uniq (fun a b -> compare b a) (Array.to_list speeds))
  in
  let nclasses = Array.length class_speeds in
  let class_of = Hashtbl.create 16 in
  Array.iteri (fun c s -> Hashtbl.replace class_of s c) class_speeds;
  let members = Array.make nclasses [] in
  Array.iter
    (fun u ->
      let c = Hashtbl.find class_of speeds.(u) in
      members.(c) <- u :: members.(c))
    (Array.of_list (List.rev (Array.to_list order)));
  let root_counts = Array.map List.length members in
  let root_sum = Array.fold_left ( +. ) 0. speeds in
  (* Suffix data. *)
  let suffix_work = Array.make (n + 2) 0. in
  for k = n downto 1 do
    suffix_work.(k) <- suffix_work.(k + 1) +. Application.work app k
  done;
  let suffix_max_work = Array.make (n + 2) 0. in
  for k = n downto 1 do
    suffix_max_work.(k) <- Float.max suffix_max_work.(k + 1) (Application.work app k)
  done;
  let tol = 1e-12 in
  (* Every completion's period is a max of interval cycle-times, i.e. a
     member of the finite candidate set — so any relaxation lower bound
     can be snapped up to the next achievable period (DESIGN.md §9). The
     [tol] backoff covers the bounds' own rounding, mirroring the prune
     test below. *)
  let cands = Candidates.Set.of_engine (Cost.get app platform) in
  let snap lower =
    match Candidates.Set.ceiling cands (lower -. tol) with
    | Some c -> Float.max lower c
    | None -> lower
  in
  let max_free_speed counts =
    let rec first c =
      if c >= nclasses then 0.
      else if counts.(c) > 0 then class_speeds.(c)
      else first (c + 1)
    in
    first 0
  in
  (* Capacity + per-stage lower bounds on the suffix d..n, given the
     node's free-processor pool and the max cycle fixed so far. *)
  let suffix_lower node =
    let s_max = max_free_speed node.counts in
    if s_max = 0. then infinity
    else
      (* Valid bounds on the remaining suffix: total capacity; the
         heaviest remaining stage at the best free speed; the next
         interval's unavoidable input transfer plus its first stage.
         (Adding δ_in to the capacity bound would be wrong: the
         bottleneck interval need not be the one paying δ_in.) *)
      List.fold_left Float.max node.current
        [
          suffix_work.(node.d) /. node.sum_speed;
          suffix_max_work.(node.d) /. s_max;
          (Application.delta app (node.d - 1) /. b)
          +. (Application.work app node.d /. s_max);
        ]
  in
  (* Ordered children of an interior node under pruning bound [bound]:
     speed classes fastest-first, interval ends ascending — the
     canonical branch order. [on_prune] sinks the two prune kinds
     (subtree bound, monotone e-loop cut-off). *)
  let children ~bound ~on_prune node =
    let lower = snap (suffix_lower node) in
    if lower >= bound -. tol then begin
      on_prune ();
      [||]
    end
    else begin
      let kids = ref [] in
      let din = Application.delta app (node.d - 1) /. b in
      for c = 0 to nclasses - 1 do
        if node.counts.(c) > 0 then begin
          let s = class_speeds.(c) in
          let u = List.hd node.free.(c) in
          let e = ref node.d in
          let stop = ref false in
          while (not !stop) && !e <= n do
            let work = Application.work_sum app node.d !e in
            (* Monotone part of the cycle: cut the whole e-loop once
               input + compute alone exceed the bound. *)
            if din +. (work /. s) >= bound -. tol then begin
              on_prune ();
              stop := true
            end
            else begin
              let cycle = din +. (work /. s) +. (Application.delta app !e /. b) in
              let current' = Float.max node.current cycle in
              if current' < bound -. tol then begin
                let free' = Array.copy node.free in
                let counts' = Array.copy node.counts in
                free'.(c) <- List.tl node.free.(c);
                counts'.(c) <- node.counts.(c) - 1;
                kids :=
                  {
                    d = !e + 1;
                    current = current';
                    partial = (Interval.make ~first:node.d ~last:!e, u) :: node.partial;
                    free = free';
                    counts = counts';
                    sum_speed = node.sum_speed -. s;
                  }
                  :: !kids
              end;
              incr e
            end
          done
        end
      done;
      Array.of_list (List.rev !kids)
    end
  in
  (* Incumbent seeding, as before the task-tree rewrite. *)
  let initial_solution =
    match initial with
    | Some sol -> sol
    | None -> (
      match Sp_mono_l.solve inst ~latency:infinity with
      | Some sol -> sol
      | None -> Solution.of_mapping inst (Instance.single_proc_mapping inst))
  in
  let root =
    {
      d = 1;
      current = neg_infinity;
      partial = [];
      free = members;
      counts = root_counts;
      sum_speed = root_sum;
    }
  in
  let root_lb = snap (suffix_lower root) in
  let seed =
    match Sp_mono_p.solve inst ~period:root_lb with
    | Some probe when probe.Solution.period < initial_solution.Solution.period ->
      probe
    | _ -> initial_solution
  in
  (* Deterministic frontier: breadth-first, unpruned (a pure function of
     the instance — the incumbent never shapes the frontier), capped by
     the node budget so tiny budgets stay tiny searches. *)
  let expansion_nodes = ref 0 in
  let frontier_nodes =
    Pool.fan_out
      ~cap:(min (Pool.tree_cap ()) (max 1 (node_budget / 8)))
      ~children:(fun node ->
        if node.d > n then [||]
        else begin
          let kids = children ~bound:infinity ~on_prune:(fun () -> ()) node in
          if Array.length kids > 0 then incr expansion_nodes;
          kids
        end)
      [| root |]
  in
  let tasks =
    Array.map
      (fun node -> { stack = [ node ]; best = None; nodes = 0; pruned = 0 })
      frontier_nodes
  in
  Obs.Counter.add c_tasks (Array.length tasks);
  (* The shared monotone incumbent: lowered by the coordinator alone,
     from the index-ordered merge at each wave boundary, so every task
     of a wave prunes against the same frozen bound — pruning is a pure
     function of the wave schedule, never of domain timing. *)
  let incumbent = Pool.Incumbent.make seed.Solution.period in
  let best_partial : (Interval.t * int) list option ref = ref None in
  let run_wave ~quota task =
    let bound () =
      match task.best with
      | Some (bp, _) -> Float.min bp (Pool.Incumbent.get incumbent)
      | None -> Pool.Incumbent.get incumbent
    in
    let steps = ref 0 in
    while !steps < quota && task.stack <> [] do
      match task.stack with
      | [] -> ()
      | node :: rest ->
        task.stack <- rest;
        incr steps;
        task.nodes <- task.nodes + 1;
        if node.d > n then begin
          if node.current < bound () -. tol then
            task.best <- Some (node.current, node.partial)
        end
        else begin
          let kids =
            children ~bound:(bound ())
              ~on_prune:(fun () -> task.pruned <- task.pruned + 1)
              node
          in
          (* Push in reverse so the canonical first child pops first. *)
          for i = Array.length kids - 1 downto 0 do
            task.stack <- kids.(i) :: task.stack
          done
        end
    done
  in
  let consumed = ref !expansion_nodes in
  let exhausted = ref false in
  let waves = ref 0 in
  let running = ref true in
  while !running do
    let alive =
      Array.of_list
        (List.filter
           (fun t -> t.stack <> [])
           (Array.to_list tasks))
    in
    if Array.length alive = 0 then running := false
    else if !consumed >= node_budget then begin
      exhausted := true;
      running := false
    end
    else begin
      incr waves;
      let remaining = node_budget - !consumed in
      let quota =
        max 1
          (min wave_quota
             ((remaining + Array.length alive - 1) / Array.length alive))
      in
      let before = Array.map (fun t -> t.nodes) alive in
      ignore (Pool.map (fun t -> run_wave ~quota t; ()) alive);
      Array.iteri
        (fun i t -> consumed := !consumed + (t.nodes - before.(i)))
        alive;
      (* Index-ordered merge: first-seen-wins on equal periods, so the
         surviving witness is the canonical-order first among the
         recorded ones — a pure function of the wave schedule. *)
      Array.iter
        (fun t ->
          match t.best with
          | Some (bp, partial) when bp < Pool.Incumbent.get incumbent ->
            Pool.Incumbent.lower_to incumbent bp;
            best_partial := Some partial
          | _ -> ())
        tasks
    end
  done;
  Obs.Counter.add c_waves !waves;
  let total_nodes =
    Array.fold_left (fun acc t -> acc + t.nodes) !expansion_nodes tasks
  in
  let total_pruned = Array.fold_left (fun acc t -> acc + t.pruned) 0 tasks in
  Obs.Counter.add c_nodes total_nodes;
  Obs.Counter.add c_pruned total_pruned;
  let solution =
    match !best_partial with
    | Some partial -> Solution.of_mapping inst (Mapping.make ~n (List.rev partial))
    | None -> seed
  in
  { solution; proven_optimal = not !exhausted; nodes = total_nodes }

open Pipeline_model
open Pipeline_core

type result = {
  solution : Solution.t;
  proven_optimal : bool;
  nodes : int;
}

let c_nodes =
  Obs.Counter.make ~doc:"nodes expanded by Branch_bound.min_period"
    "optimal.bb.nodes"

let c_pruned =
  Obs.Counter.make ~doc:"subtrees cut by the Branch_bound lower bounds"
    "optimal.bb.pruned"

let min_period ?(node_budget = 1_000_000) ?initial (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Branch_bound: requires a comm-homogeneous platform";
  let app = inst.app and platform = inst.platform in
  let n = Application.n app and p = Platform.p platform in
  let b = Platform.io_bandwidth platform 0 in
  let speeds = Platform.speeds platform in
  (* Representatives per distinct speed, fastest first; count per speed. *)
  let order = Platform.by_decreasing_speed platform in
  let free_count = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      let s = speeds.(u) in
      Hashtbl.replace free_count s (1 + Option.value ~default:0 (Hashtbl.find_opt free_count s)))
    order;
  let distinct_speeds =
    List.sort_uniq (fun a b -> compare b a) (Array.to_list speeds)
  in
  (* A representative processor index per speed, consumed fastest-first
     within each class. *)
  let members = Hashtbl.create 16 in
  Array.iter
    (fun u ->
      let s = speeds.(u) in
      Hashtbl.replace members s
        (u :: Option.value ~default:[] (Hashtbl.find_opt members s)))
    (Array.of_list (List.rev (Array.to_list order)));
  let take_member s =
    match Hashtbl.find_opt members s with
    | Some (u :: rest) ->
      Hashtbl.replace members s rest;
      u
    | _ -> assert false
  in
  let put_member s u =
    Hashtbl.replace members s (u :: Option.value ~default:[] (Hashtbl.find_opt members s))
  in
  let free_speed_sum =
    ref (Array.fold_left ( +. ) 0. speeds)
  in
  let max_free_speed () =
    List.fold_left
      (fun acc s ->
        if Option.value ~default:0 (Hashtbl.find_opt free_count s) > 0 then
          Float.max acc s
        else acc)
      0. distinct_speeds
  in
  (* Suffix data. *)
  let suffix_work = Array.make (n + 2) 0. in
  for k = n downto 1 do
    suffix_work.(k) <- suffix_work.(k + 1) +. Application.work app k
  done;
  let suffix_max_work = Array.make (n + 2) 0. in
  for k = n downto 1 do
    suffix_max_work.(k) <- Float.max suffix_max_work.(k + 1) (Application.work app k)
  done;
  let tol = 1e-12 in
  (* Every completion's period is a max of interval cycle-times, i.e. a
     member of the finite candidate set — so any relaxation lower bound
     can be snapped up to the next achievable period (DESIGN.md §9). The
     [tol] backoff covers the bounds' own rounding, mirroring the prune
     test below. *)
  let cands = Candidates.Set.of_engine (Cost.get app platform) in
  let snap lower =
    match Candidates.Set.ceiling cands (lower -. tol) with
    | Some c -> Float.max lower c
    | None -> lower
  in
  (* Capacity + per-stage lower bounds on the suffix d..n, given the
     current free-processor pool and the max cycle fixed so far. *)
  let suffix_lower d current =
    let s_max = max_free_speed () in
    if s_max = 0. then infinity
    else
      (* Valid bounds on the remaining suffix: total capacity; the
         heaviest remaining stage at the best free speed; the next
         interval's unavoidable input transfer plus its first stage.
         (Adding δ_in to the capacity bound would be wrong: the
         bottleneck interval need not be the one paying δ_in.) *)
      List.fold_left Float.max current
        [
          suffix_work.(d) /. !free_speed_sum;
          suffix_max_work.(d) /. s_max;
          (Application.delta app (d - 1) /. b)
          +. (Application.work app d /. s_max);
        ]
  in
  (* Incumbent. *)
  let initial_solution =
    match initial with
    | Some sol -> sol
    | None -> (
      match Sp_mono_l.solve inst ~latency:infinity with
      | Some sol -> sol
      | None -> Solution.of_mapping inst (Instance.single_proc_mapping inst))
  in
  let best = ref initial_solution in
  let best_period = ref initial_solution.Solution.period in
  (* Seed: probe the snapped root bound with the splitting heuristic —
     when it lands a solution at (or under) the root bound the search
     below proves optimality at its first node. *)
  let root_lb = snap (suffix_lower 1 neg_infinity) in
  (match Sp_mono_p.solve inst ~period:root_lb with
  | Some probe when probe.Solution.period < !best_period ->
    best := probe;
    best_period := probe.Solution.period
  | _ -> ());
  let nodes = ref 0 in
  let pruned = ref 0 in
  let exhausted = ref false in
  (* Depth-first search: stages d..n remain, [current] is the max cycle so
     far, [partial] the reversed assignment. *)
  let rec branch d current partial =
    if !nodes >= node_budget then exhausted := true
    else begin
      incr nodes;
      if d > n then begin
        if current < !best_period -. tol then begin
          best_period := current;
          best :=
            Solution.of_mapping inst (Mapping.make ~n (List.rev partial))
        end
      end
      else begin
        let lower = snap (suffix_lower d current) in
        if lower >= !best_period -. tol then incr pruned
        else
          List.iter
            (fun s ->
              if Option.value ~default:0 (Hashtbl.find_opt free_count s) > 0
              then begin
                (* Enrol one representative of this speed class. *)
                Hashtbl.replace free_count s
                  (Option.get (Hashtbl.find_opt free_count s) - 1);
                free_speed_sum := !free_speed_sum -. s;
                let u = take_member s in
                let din = Application.delta app (d - 1) /. b in
                let e = ref d in
                let stop = ref false in
                while not !stop && !e <= n do
                  let work = Application.work_sum app d !e in
                  (* Monotone part of the cycle: prune the whole e-loop
                     once input + compute alone exceed the incumbent. *)
                  if din +. (work /. s) >= !best_period -. tol then begin
                    incr pruned;
                    stop := true
                  end
                  else begin
                    let cycle = din +. (work /. s) +. (Application.delta app !e /. b) in
                    let current' = Float.max current cycle in
                    if current' < !best_period -. tol then
                      branch (!e + 1) current'
                        ((Interval.make ~first:d ~last:!e, u) :: partial);
                    incr e
                  end
                done;
                put_member s u;
                free_speed_sum := !free_speed_sum +. s;
                Hashtbl.replace free_count s
                  (1 + Option.get (Hashtbl.find_opt free_count s))
              end)
            distinct_speeds
      end
    end
  in
  branch 1 neg_infinity [];
  ignore p;
  Obs.Counter.add c_nodes !nodes;
  Obs.Counter.add c_pruned !pruned;
  { solution = !best; proven_optimal = not !exhausted; nodes = !nodes }

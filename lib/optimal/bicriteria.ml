open Pipeline_model
open Pipeline_core

let costs (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Bicriteria: requires a comm-homogeneous platform";
  let b = Platform.io_bandwidth inst.platform 0 in
  let app = inst.app in
  let cycle ~d ~e ~u =
    (Application.delta app (d - 1) /. b)
    +. (Application.work_sum app d e /. Platform.speed inst.platform u)
    +. (Application.delta app e /. b)
  in
  let contrib ~d ~e ~u =
    (Application.delta app (d - 1) /. b)
    +. (Application.work_sum app d e /. Platform.speed inst.platform u)
  in
  (b, cycle, contrib)

let solution_of_assignment (inst : Instance.t) assignment =
  let mapping = Mapping.make ~n:(Application.n inst.app) assignment in
  Solution.of_mapping inst mapping

let min_period (inst : Instance.t) =
  let _, cycle, _ = costs inst in
  let n = Application.n inst.app and p = Platform.p inst.platform in
  let _, assignment = Subset_dp.minimise_bottleneck ~n ~p ~cost:cycle in
  solution_of_assignment inst assignment

let min_latency_under_period (inst : Instance.t) ~period =
  let _, cycle, contrib = costs inst in
  let n = Application.n inst.app and p = Platform.p inst.platform in
  match
    Subset_dp.minimise_sum_under_cap ~n ~p ~cap_cost:cycle ~sum_cost:contrib
      ~cap:period
  with
  | None -> None
  | Some (_, assignment) -> Some (solution_of_assignment inst assignment)

(* All values an interval cycle-time can take: the candidate periods,
   served from the engine's cache (same floats as the local [cycle]
   closure — both run the Cost expressions of DESIGN.md §8). *)
let candidate_periods (inst : Instance.t) =
  Candidates.periods (Cost.get inst.app inst.platform)

let candidate_set (inst : Instance.t) =
  Candidates.Set.of_engine (Cost.get inst.app inst.platform)

let c_bisect =
  Obs.Counter.make
    ~doc:"binary-search probes in Bicriteria.min_period_under_latency"
    "optimal.bicriteria.bisect_iters"

let min_period_under_latency (inst : Instance.t) ~latency =
  let feasible period =
    match min_latency_under_period inst ~period with
    | Some sol when Solution.respects_latency sol latency -> Some sol
    | _ -> None
  in
  (* Smallest candidate period whose latency-optimal mapping fits the
     latency budget (feasibility is monotone in the period threshold). *)
  match Threshold.search_set ~set:(candidate_set inst) ~probe:feasible () with
  | None -> None
  | Some found ->
    Obs.Counter.add c_bisect found.Threshold.probes;
    Some found.Threshold.payload

let pareto (inst : Instance.t) =
  let candidates = Array.to_list (candidate_periods inst) in
  let points =
    List.filter_map
      (fun period -> min_latency_under_period inst ~period)
      candidates
  in
  (* Keep non-dominated points: sweeping by increasing period, retain
     strictly decreasing latencies. *)
  let sorted =
    List.sort_uniq
      (fun a b ->
        match compare a.Solution.period b.Solution.period with
        | 0 -> compare a.Solution.latency b.Solution.latency
        | c -> c)
      points
  in
  let rec prune best_latency = function
    | [] -> []
    | sol :: rest ->
      if sol.Solution.latency < best_latency then
        sol :: prune sol.Solution.latency rest
      else prune best_latency rest
  in
  prune infinity sorted

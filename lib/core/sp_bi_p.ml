open Pipeline_model

let iterations = 25

let c_bisect =
  Obs.Counter.make ~doc:"latency-cap bisection attempts in Sp_bi_p.solve"
    "core.sp_bi_p.bisect_iters"

let attempt inst ~period ~cap =
  Loop.minimise_latency_under_period ~latency_cap:cap ~gen:Loop.gen_two
    ~select:Loop.select_bi inst ~period

let solve inst ~period =
  match attempt inst ~period ~cap:infinity with
  | None -> None
  | Some unconstrained ->
    let optimal_latency = Instance.optimal_latency inst in
    let best = ref unconstrained in
    let lo = ref optimal_latency and hi = ref unconstrained.Solution.latency in
    let attempts = ref 0 in
    for _ = 1 to iterations do
      if !hi -. !lo > 1e-12 *. Float.max 1. !hi then begin
        incr attempts;
        let cap = (!lo +. !hi) /. 2. in
        match attempt inst ~period ~cap with
        | Some sol ->
          if sol.Solution.latency < !best.Solution.latency then best := sol;
          hi := cap
        | None -> lo := cap
      end
    done;
    Obs.Counter.add c_bisect !attempts;
    Some !best

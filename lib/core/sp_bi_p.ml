open Pipeline_model

let max_probes = 25

let c_bisect =
  Obs.Counter.make ~doc:"latency-cap bisection attempts in Sp_bi_p.solve"
    "core.sp_bi_p.bisect_iters"

let attempt inst ~period ~cap =
  Loop.minimise_latency_under_period ~latency_cap:cap ~gen:Loop.gen_two
    ~select:Loop.select_bi inst ~period

let solve inst ~period =
  match attempt inst ~period ~cap:infinity with
  | None -> None
  | Some unconstrained ->
    let optimal_latency = Instance.optimal_latency inst in
    let best = ref unconstrained in
    (* Latency is a sum of interval contributions, so there is no small
       candidate set to search exactly (DESIGN.md §9): bisect the cap
       between the instance's optimal latency and the unconstrained
       solution's, stopping as soon as the bracket converges. Same
       midpoints, convergence test and probe budget as the historical
       25-iteration loop — bit-identical results, fewer probes. *)
    let feasible cap =
      match attempt inst ~period ~cap with
      | Some sol ->
        if sol.Solution.latency < !best.Solution.latency then best := sol;
        true
      | None -> false
    in
    let b =
      Threshold.bisect ~max_probes ~lo:optimal_latency
        ~hi:unconstrained.Solution.latency ~feasible ()
    in
    Obs.Counter.add c_bisect b.Threshold.probes;
    Some !best

(** H3 — "Sp bi P": splitting, bi-criteria, fixed period, with a binary
    search over the authorised latency (§4.1).

    Each trial fixes an authorised latency (between the optimal latency
    and the latency of an unconstrained run) and attempts to reach the
    prescribed period by 2-way splits selected with the
    [Δlatency/Δperiod] ratio, discarding splits that would exceed the
    authorised latency. While trials succeed, the authorised latency is
    reduced — minimising the global latency of the final mapping.

    The search runs through {!Pipeline_model.Threshold.bisect}: identical
    midpoints and convergence test to the historical fixed 25-iteration
    loop (so results are bit-identical), but probing stops at
    convergence instead of spinning through the remaining iterations. *)

val max_probes : int
(** Probe budget of the cap bisection (25, the historical step count). *)

val solve : Pipeline_model.Instance.t -> period:float -> Solution.t option

open Pipeline_model

type t = { mapping : Mapping.t; period : float; latency : float }

let of_mapping (inst : Instance.t) mapping =
  let s = Cost.summary (Cost.get inst.app inst.platform) mapping in
  { mapping; period = s.Cost.period; latency = s.Cost.latency }

let respects_period t p = Pipeline_util.Tol.meets t.period p
let respects_latency t l = Pipeline_util.Tol.meets t.latency l

let pp fmt t =
  Format.fprintf fmt "%s period=%g latency=%g" (Mapping.to_string t.mapping)
    t.period t.latency

open Pipeline_model

type piece = { first : int; last : int; proc : int; cycle : float }

type candidate = {
  target : int;
  pieces : piece list;
  enrolled : int;
  max_piece_cycle : float;
  period : float;
  latency : float;
  dlatency : float;
  ratio : float;
}

type part = { p_first : int; p_last : int; p_proc : int }

type t = {
  inst : Instance.t;
  cost : Cost.t;            (* shared evaluation engine (comm-hom) *)
  order : int array;        (* processors by non-increasing speed *)
  next_rank : int;          (* rank of the next unused processor *)
  parts : part array;       (* intervals in pipeline order *)
  cycles : float array;     (* cycle-time per interval *)
  latency : float;
}

let initial (inst : Instance.t) =
  if not (Platform.is_comm_homogeneous inst.platform) then
    invalid_arg "Split.initial: heuristics require a comm-homogeneous platform";
  let cost = Cost.get inst.app inst.platform in
  let order = Platform.by_decreasing_speed inst.platform in
  let n = Application.n inst.app in
  let u = order.(0) in
  let part = { p_first = 1; p_last = n; p_proc = u } in
  let cycle = Cost.cycle cost ~d:1 ~e:n ~u in
  let latency = Cost.contrib cost ~d:1 ~e:n ~u +. Cost.dout cost ~e:n in
  {
    inst;
    cost;
    order;
    next_rank = 1;
    parts = [| part |];
    cycles = [| cycle |];
    latency;
  }

let instance t = t.inst
let latency t = t.latency
let intervals t = Array.length t.parts
let unused t = Array.length t.order - t.next_rank

let period t = Array.fold_left Float.max neg_infinity t.cycles

let cycle t j =
  if j < 0 || j >= intervals t then invalid_arg "Split.cycle: out of range";
  t.cycles.(j)

let length t j =
  if j < 0 || j >= intervals t then invalid_arg "Split.length: out of range";
  t.parts.(j).p_last - t.parts.(j).p_first + 1

let bottleneck t =
  let best = ref 0 in
  Array.iteri (fun j c -> if c > t.cycles.(!best) then best := j) t.cycles;
  !best

let max_cycle_excluding t j =
  let worst = ref neg_infinity in
  Array.iteri (fun i c -> if i <> j then worst := Float.max !worst c) t.cycles;
  !worst

(* Build a candidate from the replacement pieces of interval [j], if every
   piece improves on the interval's current cycle-time. *)
let candidate_of_pieces t ~j ~enrolled ~max_excl ~old_contrib pieces =
  let old_cycle = t.cycles.(j) in
  let max_piece = List.fold_left (fun m p -> Float.max m p.cycle) neg_infinity pieces in
  if max_piece >= old_cycle then None
  else begin
    let contrib =
      List.fold_left
        (fun acc p -> acc +. Cost.contrib t.cost ~d:p.first ~e:p.last ~u:p.proc)
        0. pieces
    in
    let dlatency = contrib -. old_contrib in
    let latency = t.latency +. dlatency in
    let period = Float.max max_excl max_piece in
    let ratio =
      List.fold_left
        (fun m p -> Float.max m (dlatency /. (old_cycle -. p.cycle)))
        neg_infinity pieces
    in
    Some
      {
        target = j;
        pieces;
        enrolled;
        max_piece_cycle = max_piece;
        period;
        latency;
        dlatency;
        ratio;
      }
  end

let mk_piece t d e u =
  { first = d; last = e; proc = u; cycle = Cost.cycle t.cost ~d ~e ~u }

let two_split_candidates t ~j =
  if j < 0 || j >= intervals t then
    invalid_arg "Split.two_split_candidates: out of range";
  let part = t.parts.(j) in
  if part.p_last = part.p_first || unused t < 1 then []
  else begin
    let u = part.p_proc and u' = t.order.(t.next_rank) in
    let max_excl = max_cycle_excluding t j in
    let old_contrib = Cost.contrib t.cost ~d:part.p_first ~e:part.p_last ~u in
    let acc = ref [] in
    for c = part.p_first to part.p_last - 1 do
      let try_assign left_proc right_proc =
        let left = mk_piece t part.p_first c left_proc in
        let right = mk_piece t (c + 1) part.p_last right_proc in
        match
          candidate_of_pieces t ~j ~enrolled:1 ~max_excl ~old_contrib
            [ left; right ]
        with
        | Some cand -> acc := cand :: !acc
        | None -> ()
      in
      try_assign u u';
      try_assign u' u
    done;
    List.rev !acc
  end

let three_split_candidates t ~j =
  if j < 0 || j >= intervals t then
    invalid_arg "Split.three_split_candidates: out of range";
  let part = t.parts.(j) in
  if part.p_last - part.p_first < 2 || unused t < 2 then []
  else begin
    let u = part.p_proc in
    let u' = t.order.(t.next_rank) and u'' = t.order.(t.next_rank + 1) in
    let max_excl = max_cycle_excluding t j in
    let old_contrib = Cost.contrib t.cost ~d:part.p_first ~e:part.p_last ~u in
    let acc = ref [] in
    for c1 = part.p_first to part.p_last - 2 do
      for c2 = c1 + 1 to part.p_last - 1 do
        (* Processor j keeps one of the three parts; the other two go to
           u' and u'' in both orders: six assignments per cut pair. *)
        let assignments =
          [
            (u, u', u''); (u, u'', u');
            (u', u, u''); (u'', u, u');
            (u', u'', u); (u'', u', u);
          ]
        in
        List.iter
          (fun (pa, pb, pc) ->
            let p1 = mk_piece t part.p_first c1 pa in
            let p2 = mk_piece t (c1 + 1) c2 pb in
            let p3 = mk_piece t (c2 + 1) part.p_last pc in
            match
              candidate_of_pieces t ~j ~enrolled:2 ~max_excl ~old_contrib
                [ p1; p2; p3 ]
            with
            | Some cand -> acc := cand :: !acc
            | None -> ())
          assignments
      done
    done;
    List.rev !acc
  end

let apply t cand =
  let j = cand.target in
  if j < 0 || j >= intervals t then invalid_arg "Split.apply: stale candidate";
  let replacement =
    List.map (fun p -> { p_first = p.first; p_last = p.last; p_proc = p.proc }) cand.pieces
  in
  let replacement_cycles = List.map (fun p -> p.cycle) cand.pieces in
  let before = Array.to_list (Array.sub t.parts 0 j) in
  let after = Array.to_list (Array.sub t.parts (j + 1) (intervals t - j - 1)) in
  let cycles_before = Array.to_list (Array.sub t.cycles 0 j) in
  let cycles_after = Array.to_list (Array.sub t.cycles (j + 1) (intervals t - j - 1)) in
  {
    t with
    next_rank = t.next_rank + cand.enrolled;
    parts = Array.of_list (before @ replacement @ after);
    cycles = Array.of_list (cycles_before @ replacement_cycles @ cycles_after);
    latency = cand.latency;
  }

let to_solution t =
  let pairs =
    Array.to_list
      (Array.map
         (fun p -> (Interval.make ~first:p.p_first ~last:p.p_last, p.p_proc))
         t.parts)
  in
  let mapping = Mapping.make ~n:(Application.n t.inst.Instance.app) pairs in
  Solution.of_mapping t.inst mapping

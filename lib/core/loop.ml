
type gen = Split.t -> j:int -> Split.candidate list
type select = Split.candidate list -> Split.candidate option

let better_mono (a : Split.candidate) (b : Split.candidate) =
  match compare a.max_piece_cycle b.max_piece_cycle with
  | 0 -> a.dlatency < b.dlatency
  | c -> c < 0

let better_bi (a : Split.candidate) (b : Split.candidate) =
  match compare a.ratio b.ratio with
  | 0 -> a.max_piece_cycle < b.max_piece_cycle
  | c -> c < 0

let select_with better = function
  | [] -> None
  | first :: rest ->
    Some (List.fold_left (fun acc c -> if better c acc then c else acc) first rest)

let select_mono = select_with better_mono
let select_bi = select_with better_bi

let gen_two config ~j = Split.two_split_candidates config ~j

let gen_three config ~j = Split.three_split_candidates config ~j

let gen_three_with_fallback config ~j =
  match Split.three_split_candidates config ~j with
  | [] -> Split.two_split_candidates config ~j
  | candidates -> candidates

let threshold_met = Pipeline_util.Tol.meets

let minimise_latency_under_period ?(latency_cap = infinity) ~gen ~select inst
    ~period =
  let rec refine config =
    if threshold_met (Split.period config) period then
      Some (Split.to_solution config)
    else begin
      let j = Split.bottleneck config in
      let candidates =
        List.filter
          (fun (c : Split.candidate) -> threshold_met c.latency latency_cap)
          (gen config ~j)
      in
      match select candidates with
      | None -> None (* bottleneck cannot be improved: the period is stuck *)
      | Some cand -> refine (Split.apply config cand)
    end
  in
  refine (Split.initial inst)

let minimise_period_under_latency ~gen ~select inst ~latency =
  let rec refine config =
    let j = Split.bottleneck config in
    let candidates =
      List.filter
        (fun (c : Split.candidate) -> threshold_met c.latency latency)
        (gen config ~j)
    in
    match select candidates with
    | None -> Split.to_solution config
    | Some cand -> refine (Split.apply config cand)
  in
  let config = Split.initial inst in
  if threshold_met (Split.latency config) latency then Some (refine config)
  else None

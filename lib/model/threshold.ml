(* The shared threshold-search engine (DESIGN.md §9): exact binary
   search over a finite candidate array for the period direction,
   adaptive bisection for the latency direction. Both drivers only
   assume the probe is monotone (feasible at t implies feasible at every
   t' > t); both count their probes so the reduction over the legacy
   fixed-iteration bisections shows up in metrics.csv. *)

let c_candidate_probes =
  Obs.Counter.make ~doc:"feasibility probes issued by Threshold.search"
    "model.threshold.candidate_probes"

let c_bisect_probes =
  Obs.Counter.make ~doc:"feasibility probes issued by Threshold.bisect"
    "model.threshold.bisect_probes"

let c_memo_hits =
  Obs.Counter.make
    ~doc:"probe results served from the Threshold memo instead of re-probing"
    "model.threshold.memo_hits"

type 'a found = { threshold : float; payload : 'a; probes : int }

let search ~candidates ~probe =
  let count = Array.length candidates in
  if count = 0 then None
  else begin
    let probes = ref 0 in
    let run i =
      incr probes;
      probe candidates.(i)
    in
    (* The search keeps the payload of the lowest feasible index seen, so
       the winning candidate is probed exactly once: the legacy drivers
       re-probed it after the loop to recover the solution. *)
    match run (count - 1) with
    | None ->
      Obs.Counter.add c_candidate_probes !probes;
      None
    | Some top ->
      let best = ref (count - 1, top) in
      let lo = ref 0 and hi = ref (count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match run mid with
        | Some payload ->
          best := (mid, payload);
          hi := mid
        | None -> lo := mid + 1
      done;
      Obs.Counter.add c_candidate_probes !probes;
      Obs.Counter.add c_memo_hits 1;
      let i, payload = !best in
      assert (i = !lo);
      Some { threshold = candidates.(i); payload; probes = !probes }
  end

let boundary ~candidates ~succeeds =
  match
    search ~candidates ~probe:(fun t -> if succeeds t then Some () else None)
  with
  | None -> None
  | Some { threshold; _ } -> Some threshold

type bisection = { lo : float; hi : float; probes : int }

let bisect ?(max_probes = 64) ?(rel = Pipeline_util.Tol.bisect_rel) ~lo ~hi
    ~feasible () =
  let lo = ref lo and hi = ref hi in
  let probes = ref 0 in
  (* Memoised midpoints: brackets that collapse onto a previous midpoint
     (degenerate spans) are served from the memo instead of re-probing. *)
  let memo = ref [] in
  let run mid =
    match List.assoc_opt mid !memo with
    | Some ok ->
      Obs.Counter.add c_memo_hits 1;
      ok
    | None ->
      incr probes;
      let ok = feasible mid in
      memo := (mid, ok) :: !memo;
      ok
  in
  while
    (not (Pipeline_util.Tol.converged ~rel ~lo:!lo ~hi:!hi ()))
    && !probes < max_probes
  do
    let mid = (!lo +. !hi) /. 2. in
    if run mid then hi := mid else lo := mid
  done;
  Obs.Counter.add c_bisect_probes !probes;
  { lo = !lo; hi = !hi; probes = !probes }

(* The shared threshold-search engine (DESIGN.md §9): exact binary
   search over a finite candidate array for the period direction,
   adaptive bisection for the latency direction. Both drivers only
   assume the probe is monotone (feasible at t implies feasible at every
   t' > t); both count their probes so the reduction over the legacy
   fixed-iteration bisections shows up in metrics.csv. *)

let c_candidate_probes =
  Obs.Counter.make ~doc:"feasibility probes issued by Threshold.search"
    "model.threshold.candidate_probes"

let c_bisect_probes =
  Obs.Counter.make ~doc:"feasibility probes issued by Threshold.bisect"
    "model.threshold.bisect_probes"

let c_memo_hits =
  Obs.Counter.make
    ~doc:"probe results served from the Threshold memo instead of re-probing"
    "model.threshold.memo_hits"

let c_lattice_probes =
  Obs.Counter.make
    ~doc:"feasibility probes issued by Threshold.search_set on lazy lattice sets"
    "model.threshold.lattice_probes"

type 'a found = { threshold : float; payload : 'a; probes : int }

(* Callers that must not move the historical counters (new bench
   sections gated by the golden metrics dump) pass their own
   [?probe_counter]; it then receives every probe this search issues and
   the default counters (including the memo-hit bookkeeping) stay
   untouched. *)
let account ?probe_counter ~default ~memo_hit probes =
  match probe_counter with
  | Some c -> Obs.Counter.add c probes
  | None ->
    Obs.Counter.add default probes;
    if memo_hit then Obs.Counter.add c_memo_hits 1

let search ?probe_counter ~candidates ~probe () =
  let count = Array.length candidates in
  if count = 0 then None
  else begin
    let probes = ref 0 in
    let run i =
      incr probes;
      probe candidates.(i)
    in
    (* The search keeps the payload of the lowest feasible index seen, so
       the winning candidate is probed exactly once: the legacy drivers
       re-probed it after the loop to recover the solution. *)
    match run (count - 1) with
    | None ->
      account ?probe_counter ~default:c_candidate_probes ~memo_hit:false
        !probes;
      None
    | Some top ->
      let best = ref (count - 1, top) in
      let lo = ref 0 and hi = ref (count - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        match run mid with
        | Some payload ->
          best := (mid, payload);
          hi := mid
        | None -> lo := mid + 1
      done;
      account ?probe_counter ~default:c_candidate_probes ~memo_hit:true !probes;
      let i, payload = !best in
      assert (i = !lo);
      Some { threshold = candidates.(i); payload; probes = !probes }
  end

(* Exact search over a possibly-lazy candidate set. Materialised sets
   delegate to [search] (same probes, same counters — bit-identical to
   the historical path). Lazy sets binary-search the IEEE-754 bit
   patterns: non-negative finite doubles order identically to their
   [Int64.bits_of_float] images, so halving the bit bracket and snapping
   each midpoint down onto the set with [Set.floor] finds the smallest
   feasible candidate in at most 64 rounds — no ε, no materialisation. *)
let search_set ?probe_counter ~set ~probe () =
  if not (Candidates.Set.is_lazy set) then
    search ?probe_counter ~candidates:(Candidates.Set.force set) ~probe ()
  else begin
    match (Candidates.Set.min_elt set, Candidates.Set.max_elt set) with
    | None, _ | _, None -> None
    | Some min_elt, Some max_elt ->
      let probes = ref 0 in
      let run v =
        incr probes;
        probe v
      in
      let finish (threshold, payload) =
        account ?probe_counter ~default:c_lattice_probes ~memo_hit:false
          !probes;
        Some { threshold; payload; probes = !probes }
      in
      (match run max_elt with
      | None ->
        account ?probe_counter ~default:c_lattice_probes ~memo_hit:false
          !probes;
        None
      | Some top -> (
        if min_elt = max_elt then finish (max_elt, top)
        else
          match run min_elt with
          | Some payload -> finish (min_elt, payload)
          | None ->
            let bits = Int64.bits_of_float and value = Int64.float_of_bits in
            (* Invariant: every candidate <= value !lo is infeasible
               (the probe is monotone); value !hi is a feasible
               candidate whose payload is in !best. *)
            let lo = ref (bits min_elt) and hi = ref (bits max_elt) in
            let best = ref (max_elt, top) in
            while Int64.sub !hi !lo > 1L do
              let mid = Int64.add !lo (Int64.div (Int64.sub !hi !lo) 2L) in
              match Candidates.Set.floor set (value mid) with
              | None -> assert false (* min_elt <= value !lo < value mid *)
              | Some c ->
                if Int64.compare (bits c) !lo <= 0 then
                  (* No candidate in (value !lo, value mid]. *)
                  lo := mid
                else (
                  match run c with
                  | Some payload ->
                    best := (c, payload);
                    hi := bits c
                  | None -> lo := bits c)
            done;
            finish !best))
  end

let boundary ?probe_counter ~candidates ~succeeds () =
  match
    search ?probe_counter ~candidates
      ~probe:(fun t -> if succeeds t then Some () else None)
      ()
  with
  | None -> None
  | Some { threshold; _ } -> Some threshold

let boundary_set ?probe_counter ~set ~succeeds () =
  match
    search_set ?probe_counter ~set
      ~probe:(fun t -> if succeeds t then Some () else None)
      ()
  with
  | None -> None
  | Some { threshold; _ } -> Some threshold

type bisection = { lo : float; hi : float; probes : int }

let bisect ?(max_probes = 64) ?(rel = Pipeline_util.Tol.bisect_rel)
    ?probe_counter ~lo ~hi ~feasible () =
  let lo = ref lo and hi = ref hi in
  let probes = ref 0 in
  (* Memoised midpoints: brackets that collapse onto a previous midpoint
     (degenerate spans) are served from the memo instead of re-probing. *)
  let memo = ref [] in
  let run mid =
    match List.assoc_opt mid !memo with
    | Some ok ->
      if probe_counter = None then Obs.Counter.add c_memo_hits 1;
      ok
    | None ->
      incr probes;
      let ok = feasible mid in
      memo := (mid, ok) :: !memo;
      ok
  in
  while
    (not (Pipeline_util.Tol.converged ~rel ~lo:!lo ~hi:!hi ()))
    && !probes < max_probes
  do
    let mid = (!lo +. !hi) /. 2. in
    if run mid then hi := mid else lo := mid
  done;
  account ?probe_counter ~default:c_bisect_probes ~memo_hit:false !probes;
  { lo = !lo; hi = !hi; probes = !probes }

(** Application transformations.

    {!coarsen} fuses consecutive stages into groups, shrinking [n] so
    the exponential exact solvers (or the heuristics, on very deep
    pipelines) become cheap — at the cost of restricting cut positions to
    group boundaries. The key property, checked by the test suite: a
    mapping of the coarsened application and its {!refine_mapping} lift
    have {e identical} period and latency on the original application,
    because group-boundary communications and group work sums are
    preserved exactly. Coarse solutions are therefore feasible (possibly
    suboptimal) solutions of the original instance.

    {!scale} converts units (e.g. Mcycles to Gcycles, MB to GB) without
    changing the mapping problem's structure.

    {!scale_rates}, {!drop_comm} and {!comm_homogenise} are the
    metamorphic transformations of ROADMAP item 4: instance rewrites
    with {e known exact} effects on every solver's output, checked
    against the whole registry by the property suite (DESIGN.md §13). *)

val coarsen : factor:int -> Application.t -> Application.t
(** Fuse groups of [factor] consecutive stages (the last group may be
    smaller). Group work = sum of its stages; the messages at group
    boundaries survive, interior ones disappear. [factor ≥ 1]. Labels
    are joined with ["+"]. *)

val refine_mapping : factor:int -> n:int -> Mapping.t -> Mapping.t
(** Lift a mapping of the coarsened application (with [⌈n/factor⌉]
    stages) back onto the original [n] stages. Raises [Invalid_argument]
    when shapes do not line up. *)

val coarse_solve :
  factor:int ->
  solve:(Instance.t -> Mapping.t option) ->
  Instance.t ->
  Mapping.t option
(** Solve the coarsened instance with [solve] and lift the result. *)

val scale : ?work:float -> ?data:float -> Application.t -> Application.t
(** Multiply all works by [work] and all message sizes by [data]
    (defaults 1). Factors must be strictly positive. *)

val scale_rates : factor:float -> Platform.t -> Platform.t
(** {!Platform.scale_rates}: uniform speed/bandwidth scaling. Every
    cost is [X / rate], so all periods and latencies scale by
    [1/factor] — bit-exactly for power-of-two factors — and optimal
    mappings are unchanged. *)

val drop_comm : Application.t -> Application.t
(** Zero every message size ([δ_0 … δ_n] := 0), keeping works and
    labels. All communication terms become exactly [0 / b = 0.] for any
    bandwidth, so solver outputs coincide bit-for-bit across platforms
    that differ only in their links — in particular a fully
    heterogeneous platform collapses onto its {!comm_homogenise}
    twin. *)

val comm_homogenise : bandwidth:float -> Platform.t -> Platform.t
(** Replace every link and I/O bandwidth with the single [bandwidth],
    keeping the speed vector: the comm-homogeneous twin of a fully
    heterogeneous platform. *)

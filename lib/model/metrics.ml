(* Thin wrapper over the Cost engine: this module keeps the historical
   entry points and diagnostics, the engine owns the arithmetic. *)

let check app platform mapping =
  if Mapping.n mapping <> Application.n app then
    invalid_arg "Metrics: mapping and application disagree on n";
  if not (Mapping.valid_on mapping platform) then
    invalid_arg "Metrics: mapping references processors outside the platform"

let cycle_time app platform mapping j =
  check app platform mapping;
  if j < 0 || j >= Mapping.m mapping then
    invalid_arg "Metrics.cycle_time: interval index out of range";
  Cost.cycle_time (Cost.get app platform) mapping j

let period app platform mapping =
  check app platform mapping;
  Cost.period (Cost.get app platform) mapping

let bottleneck app platform mapping =
  check app platform mapping;
  Cost.bottleneck (Cost.get app platform) mapping

let latency app platform mapping =
  check app platform mapping;
  Cost.latency (Cost.get app platform) mapping

type summary = Cost.summary = {
  period : float;
  latency : float;
  intervals : int;
}

let summary app platform mapping =
  check app platform mapping;
  Cost.summary (Cost.get app platform) mapping

let pp_summary fmt s =
  Format.fprintf fmt "period=%g latency=%g intervals=%d" s.period s.latency
    s.intervals

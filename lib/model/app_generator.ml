module Rng = Pipeline_util.Rng

type value_dist =
  | Fixed of float
  | Int_uniform of int * int
  | Float_uniform of float * float

type spec = { n : int; work : value_dist; delta : value_dist }

let e1 ~n = { n; work = Int_uniform (1, 20); delta = Fixed 10. }
let e2 ~n = { n; work = Int_uniform (1, 20); delta = Int_uniform (1, 100) }
let e3 ~n = { n; work = Int_uniform (10, 1000); delta = Int_uniform (1, 20) }
let e4 ~n = { n; work = Float_uniform (0.01, 10.); delta = Int_uniform (1, 20) }

(* (E6) web scale: wide work spread, fixed message size. The uniform
   deltas are load-bearing — they are what lets Candidates.Set stay lazy
   at n = 50 000 (DESIGN.md §11). *)
let e6 ~n = { n; work = Int_uniform (1, 100); delta = Fixed 25. }

(* The JPEG2000-style encoder pipeline of the image-processing follow-up
   (PAPERS.md, arXiv 0801.1772): tiling, wavelet transform,
   quantisation, arithmetic coding (Tier-1) and stream formation
   (Tier-2). The paper's abstract names the pipeline but not its
   profile, so the weights here follow the standard JPEG2000 profiling
   narrative — Tier-1 dominates the compute, the data volume shrinks
   monotonically after quantisation — and are recorded as an
   interpretation choice in DESIGN.md §13. Fixed (not drawn), so every
   campaign family and the CLI see the identical application. *)
let jpeg2000 () =
  Skeleton.(
    to_application ~input:16.
      (pipeline
         [
           stage "tiling" ~work:4. ~out:16.;
           stage "dwt" ~work:30. ~out:16.;
           stage "quant" ~work:6. ~out:8.;
           stage "tier1" ~work:55. ~out:2.;
           stage "tier2" ~work:5. ~out:2.;
         ]))

let draw rng = function
  | Fixed v -> v
  | Int_uniform (lo, hi) -> float_of_int (Rng.int_in rng lo hi)
  | Float_uniform (lo, hi) -> Rng.float_in rng lo hi

let generate rng spec =
  if spec.n <= 0 then invalid_arg "App_generator.generate: n must be > 0";
  let works = Array.init spec.n (fun _ -> draw rng spec.work) in
  let deltas = Array.init (spec.n + 1) (fun _ -> draw rng spec.delta) in
  Application.make ~deltas works

let pp_dist fmt = function
  | Fixed v -> Format.fprintf fmt "fixed %g" v
  | Int_uniform (lo, hi) -> Format.fprintf fmt "int[%d,%d]" lo hi
  | Float_uniform (lo, hi) -> Format.fprintf fmt "float[%g,%g]" lo hi

let pp_spec fmt s =
  Format.fprintf fmt "spec[n=%d; w=%a; d=%a]" s.n pp_dist s.work pp_dist s.delta

type links =
  | Uniform of float
  | Matrix of float array array

type t = {
  speeds : float array;
  links : links;
  io : float array;
}

let check_positive name v =
  if not (Float.is_finite v) || v <= 0. then
    invalid_arg (Printf.sprintf "Platform: %s must be finite and > 0" name)

let check_speeds speeds =
  if Array.length speeds = 0 then invalid_arg "Platform: no processors";
  Array.iter (check_positive "speed") speeds

let comm_homogeneous ?io_bandwidth ~bandwidth speeds =
  check_speeds speeds;
  check_positive "bandwidth" bandwidth;
  let io = Option.value io_bandwidth ~default:bandwidth in
  check_positive "io_bandwidth" io;
  {
    speeds = Array.copy speeds;
    links = Uniform bandwidth;
    io = Array.make (Array.length speeds) io;
  }

let fully_homogeneous ?io_bandwidth ~speed ~bandwidth p =
  if p <= 0 then invalid_arg "Platform.fully_homogeneous: p must be > 0";
  comm_homogeneous ?io_bandwidth ~bandwidth (Array.make p speed)

let fully_heterogeneous ?io_bandwidths ~bandwidths speeds =
  check_speeds speeds;
  let p = Array.length speeds in
  if Array.length bandwidths <> p then
    invalid_arg "Platform.fully_heterogeneous: bandwidth matrix must be p x p";
  Array.iter
    (fun row ->
      if Array.length row <> p then
        invalid_arg "Platform.fully_heterogeneous: bandwidth matrix must be p x p")
    bandwidths;
  for u = 0 to p - 1 do
    for v = 0 to p - 1 do
      if u <> v then begin
        check_positive "bandwidth" bandwidths.(u).(v);
        if bandwidths.(u).(v) <> bandwidths.(v).(u) then
          invalid_arg "Platform.fully_heterogeneous: matrix must be symmetric"
      end
    done
  done;
  let row_max u =
    let m = ref 0. in
    for v = 0 to p - 1 do
      if v <> u then m := Float.max !m bandwidths.(u).(v)
    done;
    if !m = 0. then 1. (* single-processor platform: I/O still needs a rate *)
    else !m
  in
  let io =
    match io_bandwidths with
    | Some a ->
      if Array.length a <> p then
        invalid_arg "Platform.fully_heterogeneous: io_bandwidths must have length p";
      Array.iter (check_positive "io_bandwidth") a;
      Array.copy a
    | None -> Array.init p row_max
  in
  {
    speeds = Array.copy speeds;
    links = Matrix (Array.map Array.copy bandwidths);
    io;
  }

let scale_rates ~factor t =
  if not (Float.is_finite factor) || factor <= 0. then
    invalid_arg "Platform.scale_rates: factor must be finite and > 0";
  {
    speeds = Array.map (fun s -> s *. factor) t.speeds;
    links =
      (match t.links with
      | Uniform b -> Uniform (b *. factor)
      | Matrix m -> Matrix (Array.map (Array.map (fun b -> b *. factor)) m));
    io = Array.map (fun b -> b *. factor) t.io;
  }

let p t = Array.length t.speeds

let speed t u =
  if u < 0 || u >= p t then invalid_arg "Platform.speed: processor out of range";
  t.speeds.(u)

let speeds t = Array.copy t.speeds

let bandwidth t u v =
  let pr = p t in
  if u < 0 || u >= pr || v < 0 || v >= pr then
    invalid_arg "Platform.bandwidth: processor out of range";
  if u = v then infinity
  else match t.links with Uniform b -> b | Matrix m -> m.(u).(v)

let io_bandwidth t u =
  if u < 0 || u >= p t then
    invalid_arg "Platform.io_bandwidth: processor out of range";
  t.io.(u)

let is_comm_homogeneous t =
  match t.links with
  | Uniform b -> Array.for_all (fun io -> io = b) t.io
  | Matrix m ->
    let pr = p t in
    if pr = 1 then true
    else
      let b0 = m.(0).(1) in
      let ok = ref true in
      for u = 0 to pr - 1 do
        for v = 0 to pr - 1 do
          if u <> v && m.(u).(v) <> b0 then ok := false
        done
      done;
      !ok && Array.for_all (fun io -> io = b0) t.io

let fastest t =
  let best = ref 0 in
  Array.iteri (fun u s -> if s > t.speeds.(!best) then best := u) t.speeds;
  !best

let by_decreasing_speed t =
  let idx = Array.init (p t) (fun u -> u) in
  Array.stable_sort
    (fun u v ->
      match compare t.speeds.(v) t.speeds.(u) with 0 -> compare u v | c -> c)
    idx;
  idx

let equal a b =
  a.speeds = b.speeds && a.io = b.io
  &&
  match (a.links, b.links) with
  | Uniform x, Uniform y -> x = y
  | Matrix x, Matrix y -> x = y
  | Uniform _, Matrix _ | Matrix _, Uniform _ -> false

let pp fmt t =
  let kind =
    match t.links with
    | Uniform b -> Printf.sprintf "comm-hom(b=%g)" b
    | Matrix _ -> "fully-het"
  in
  Format.fprintf fmt "platform[p=%d; %s; s=%s]" (p t) kind
    (String.concat ","
       (Array.to_list (Array.map (fun s -> Printf.sprintf "%g" s) t.speeds)))

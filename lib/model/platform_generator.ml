module Rng = Pipeline_util.Rng

let random_speeds rng ~p ~speed_min ~speed_max =
  if p <= 0 then invalid_arg "Platform_generator: p must be > 0";
  if speed_min < 1 || speed_max < speed_min then
    invalid_arg "Platform_generator: bad speed range";
  Array.init p (fun _ -> float_of_int (Rng.int_in rng speed_min speed_max))

let comm_homogeneous ?(bandwidth = 10.) ?(speed_min = 1) ?(speed_max = 20) rng ~p =
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  Platform.comm_homogeneous ~bandwidth speeds

(* Web-scale platforms: processors come in a few speed tiers (tier i has
   speed 5i), the way large clusters mix a handful of machine
   generations. Few distinct speeds keep the candidate lattice narrow —
   every lazy-set sweep is O(n · tiers) — while still exercising the
   heterogeneous-speed paths. *)
let web_scale ?(bandwidth = 10.) ?(tiers = 4) rng ~p =
  if p <= 0 then invalid_arg "Platform_generator: p must be > 0";
  if tiers < 1 then invalid_arg "Platform_generator: tiers must be >= 1";
  let speeds =
    Array.init p (fun _ -> float_of_int (5 * Rng.int_in rng 1 tiers))
  in
  Platform.comm_homogeneous ~bandwidth speeds

let fully_heterogeneous ?(bandwidth_min = 5) ?(bandwidth_max = 15) ?(speed_min = 1)
    ?(speed_max = 20) rng ~p =
  if bandwidth_min < 1 || bandwidth_max < bandwidth_min then
    invalid_arg "Platform_generator: bad bandwidth range";
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  let bandwidths = Array.make_matrix p p 0. in
  for u = 0 to p - 1 do
    for v = u + 1 to p - 1 do
      let b = float_of_int (Rng.int_in rng bandwidth_min bandwidth_max) in
      bandwidths.(u).(v) <- b;
      bandwidths.(v).(u) <- b
    done
  done;
  Platform.fully_heterogeneous ~bandwidths speeds

module Rng = Pipeline_util.Rng

let random_speeds rng ~p ~speed_min ~speed_max =
  if p <= 0 then invalid_arg "Platform_generator: p must be > 0";
  if speed_min < 1 || speed_max < speed_min then
    invalid_arg "Platform_generator: bad speed range";
  Array.init p (fun _ -> float_of_int (Rng.int_in rng speed_min speed_max))

let comm_homogeneous ?(bandwidth = 10.) ?(speed_min = 1) ?(speed_max = 20) rng ~p =
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  Platform.comm_homogeneous ~bandwidth speeds

(* Web-scale platforms: processors come in a few speed tiers (tier i has
   speed 5i), the way large clusters mix a handful of machine
   generations. Few distinct speeds keep the candidate lattice narrow —
   every lazy-set sweep is O(n · tiers) — while still exercising the
   heterogeneous-speed paths. *)
let web_scale ?(bandwidth = 10.) ?(tiers = 4) rng ~p =
  if p <= 0 then invalid_arg "Platform_generator: p must be > 0";
  if tiers < 1 then invalid_arg "Platform_generator: tiers must be >= 1";
  let speeds =
    Array.init p (fun _ -> float_of_int (5 * Rng.int_in rng 1 tiers))
  in
  Platform.comm_homogeneous ~bandwidth speeds

let fully_heterogeneous ?(bandwidth_min = 5) ?(bandwidth_max = 15) ?(speed_min = 1)
    ?(speed_max = 20) rng ~p =
  if bandwidth_min < 1 || bandwidth_max < bandwidth_min then
    invalid_arg "Platform_generator: bad bandwidth range";
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  let bandwidths = Array.make_matrix p p 0. in
  for u = 0 to p - 1 do
    for v = u + 1 to p - 1 do
      let b = float_of_int (Rng.int_in rng bandwidth_min bandwidth_max) in
      bandwidths.(u).(v) <- b;
      bandwidths.(v).(u) <- b
    done
  done;
  Platform.fully_heterogeneous ~bandwidths speeds

(* Structured bandwidth-matrix families (DESIGN.md §13): the link
   topologies real clusters exhibit, used by the het campaign to stress
   the comm-aware paths beyond uniformly random matrices. *)

let clustered ?(clusters = 2) ?(intra_min = 20) ?(intra_max = 30)
    ?(inter_min = 2) ?(inter_max = 5) ?(speed_min = 1) ?(speed_max = 20) rng ~p
    =
  if clusters < 1 then invalid_arg "Platform_generator: clusters must be >= 1";
  if intra_min < 1 || intra_max < intra_min || inter_min < 1
     || inter_max < inter_min
  then invalid_arg "Platform_generator: bad bandwidth range";
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  (* Deterministic membership (processor u belongs to cluster u mod
     clusters): the draw order stays independent of the cluster count. *)
  let bandwidths = Array.make_matrix p p 0. in
  for u = 0 to p - 1 do
    for v = u + 1 to p - 1 do
      let lo, hi =
        if u mod clusters = v mod clusters then (intra_min, intra_max)
        else (inter_min, inter_max)
      in
      let b = float_of_int (Rng.int_in rng lo hi) in
      bandwidths.(u).(v) <- b;
      bandwidths.(v).(u) <- b
    done
  done;
  Platform.fully_heterogeneous ~bandwidths speeds

let bottleneck_link ?(bandwidth_min = 5) ?(bandwidth_max = 15) ?(slow = 1.)
    ?(speed_min = 1) ?(speed_max = 20) rng ~p =
  if bandwidth_min < 1 || bandwidth_max < bandwidth_min then
    invalid_arg "Platform_generator: bad bandwidth range";
  if not (Float.is_finite slow) || slow <= 0. then
    invalid_arg "Platform_generator: slow must be finite and > 0";
  let speeds = random_speeds rng ~p ~speed_min ~speed_max in
  let victim = Rng.int rng p in
  let bandwidths = Array.make_matrix p p 0. in
  for u = 0 to p - 1 do
    for v = u + 1 to p - 1 do
      let b =
        if u = victim || v = victim then slow
        else float_of_int (Rng.int_in rng bandwidth_min bandwidth_max)
      in
      bandwidths.(u).(v) <- b;
      bandwidths.(v).(u) <- b
    done
  done;
  let io_bandwidths =
    Array.init p (fun u ->
        if u = victim then slow else float_of_int bandwidth_max)
  in
  Platform.fully_heterogeneous ~io_bandwidths ~bandwidths speeds

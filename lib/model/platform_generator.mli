(** Random platforms matching the paper's experimental setting (§5.1):
    communication-homogeneous platforms with [b = 10] and integer speeds
    uniform in [\[1, 20\]], plus a fully heterogeneous generator used by
    the extension experiments. *)

val comm_homogeneous :
  ?bandwidth:float ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** [comm_homogeneous rng ~p] draws [p] integer speeds uniform in
    [\[speed_min, speed_max\]] (defaults 1 and 20) with all links of
    capacity [bandwidth] (default 10). *)

val web_scale :
  ?bandwidth:float ->
  ?tiers:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** [web_scale rng ~p] draws each processor's speed uniformly from
    [tiers] machine generations (tier [i] has speed [5i]; defaults: 4
    tiers, bandwidth 10) on a comm-homogeneous platform. The few
    distinct speeds keep the lazy candidate lattice narrow at
    [p = 1000] (DESIGN.md §11). *)

val fully_heterogeneous :
  ?bandwidth_min:int ->
  ?bandwidth_max:int ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** Integer speeds in [\[speed_min, speed_max\]] (defaults 1, 20) and a
    symmetric matrix of integer link bandwidths in
    [\[bandwidth_min, bandwidth_max\]] (defaults 5, 15, centred on the
    paper's [b = 10]). *)

val clustered :
  ?clusters:int ->
  ?intra_min:int ->
  ?intra_max:int ->
  ?inter_min:int ->
  ?inter_max:int ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** Fully heterogeneous platform whose processors fall into [clusters]
    groups (default 2; processor [u] belongs to cluster [u mod
    clusters]): intra-cluster links draw integer bandwidths in
    [\[intra_min, intra_max\]] (defaults 20, 30), inter-cluster links in
    [\[inter_min, inter_max\]] (defaults 2, 5) — the fast-islands /
    slow-backbone shape of multi-rack deployments. *)

val bottleneck_link :
  ?bandwidth_min:int ->
  ?bandwidth_max:int ->
  ?slow:float ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** Fully heterogeneous platform with one uniformly-chosen processor
    behind a slow pipe: all of its links {e and} its I/O run at [slow]
    (default 1), every other link draws from
    [\[bandwidth_min, bandwidth_max\]] (defaults 5, 15) and every other
    I/O port runs at [bandwidth_max]. Stresses comm-aware processor
    ordering: the victim may be fast but is expensive to talk to. *)

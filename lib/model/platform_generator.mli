(** Random platforms matching the paper's experimental setting (§5.1):
    communication-homogeneous platforms with [b = 10] and integer speeds
    uniform in [\[1, 20\]], plus a fully heterogeneous generator used by
    the extension experiments. *)

val comm_homogeneous :
  ?bandwidth:float ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** [comm_homogeneous rng ~p] draws [p] integer speeds uniform in
    [\[speed_min, speed_max\]] (defaults 1 and 20) with all links of
    capacity [bandwidth] (default 10). *)

val web_scale :
  ?bandwidth:float ->
  ?tiers:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** [web_scale rng ~p] draws each processor's speed uniformly from
    [tiers] machine generations (tier [i] has speed [5i]; defaults: 4
    tiers, bandwidth 10) on a comm-homogeneous platform. The few
    distinct speeds keep the lazy candidate lattice narrow at
    [p = 1000] (DESIGN.md §11). *)

val fully_heterogeneous :
  ?bandwidth_min:int ->
  ?bandwidth_max:int ->
  ?speed_min:int ->
  ?speed_max:int ->
  Pipeline_util.Rng.t ->
  p:int ->
  Platform.t
(** Integer speeds in [\[speed_min, speed_max\]] (defaults 1, 20) and a
    symmetric matrix of integer link bandwidths in
    [\[bandwidth_min, bandwidth_max\]] (defaults 5, 15, centred on the
    paper's [b = 10]). *)

(** Interval mappings with replicated intervals — the {e deal} skeleton
    the paper's conclusion sketches (§7: "a farm or deal skeleton would
    allow to split the workload of the initial stage among several
    processors").

    A deal mapping partitions the stages into consecutive intervals, like
    the paper's mappings, but assigns each interval a non-empty {e set}
    of processors; consecutive data sets are dealt round-robin to the
    interval's replicas. Processors are still enrolled at most once
    overall (the per-stage state of §2 lives per replica: each replica
    sees every [r]-th data set, so the sequential-order-within-a-replica
    requirement is preserved). *)


type t

val make : n:int -> (Interval.t * int list) list -> t
(** [make ~n assignment] — intervals must partition [\[1..n\]] in order;
    every replica list must be non-empty and all processors distinct
    overall. Raises [Invalid_argument] otherwise. *)

val of_mapping : Mapping.t -> t
(** Every interval replicated once: plain mappings embed. *)

val to_mapping : t -> Mapping.t option
(** The inverse embedding when no interval is actually replicated. *)

val n : t -> int
val m : t -> int
(** Number of intervals. *)

val interval : t -> int -> Interval.t
val replicas : t -> int -> int list
(** Processors of interval [j] (0-based), in deal order. *)

val replication : t -> int -> int
(** [List.length (replicas t j)]. *)

val processors : t -> int list
(** All enrolled processors. *)

val uses : t -> int -> bool

val replicate : t -> j:int -> proc:int -> t
(** Add one replica to interval [j]. Raises [Invalid_argument] if [proc]
    is already enrolled. *)

val replace : t -> j:int -> (Interval.t * int list) list -> t
(** Substitute interval [j] by consecutive sub-intervals (used by the
    splitting heuristic); same tiling rules as {!Mapping.replace}. *)

val valid_on : t -> Platform.t -> bool
val to_string : t -> string
(** E.g. ["{[1..2]->{P0}, [3]->{P1,P4}}"]. *)

val pp : Format.formatter -> t -> unit


type t = {
  n : int;
  assignment : (Interval.t * int list) array;
}

let check_processors assignment =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (_, procs) ->
      if procs = [] then invalid_arg "Deal_mapping: empty replica set";
      List.iter
        (fun u ->
          if u < 0 then invalid_arg "Deal_mapping: negative processor index";
          if Hashtbl.mem seen u then
            invalid_arg "Deal_mapping: processor enrolled twice";
          Hashtbl.add seen u ())
        procs)
    assignment

let make ~n assignment =
  if not (Interval.partition_of n (List.map fst assignment)) then
    invalid_arg "Deal_mapping.make: intervals must partition [1..n] in order";
  let assignment = Array.of_list assignment in
  check_processors assignment;
  { n; assignment }

let of_mapping mapping =
  make ~n:(Mapping.n mapping)
    (List.map (fun (iv, u) -> (iv, [ u ])) (Mapping.intervals mapping))

let to_mapping t =
  if Array.for_all (fun (_, procs) -> List.length procs = 1) t.assignment then
    Some
      (Mapping.make ~n:t.n
         (Array.to_list
            (Array.map (fun (iv, procs) -> (iv, List.hd procs)) t.assignment)))
  else None

let n t = t.n
let m t = Array.length t.assignment

let interval t j =
  if j < 0 || j >= m t then invalid_arg "Deal_mapping.interval: out of range";
  fst t.assignment.(j)

let replicas t j =
  if j < 0 || j >= m t then invalid_arg "Deal_mapping.replicas: out of range";
  snd t.assignment.(j)

let replication t j = List.length (replicas t j)

let processors t =
  Array.to_list t.assignment |> List.concat_map snd

let uses t u = List.mem u (processors t)

let replicate t ~j ~proc =
  if j < 0 || j >= m t then invalid_arg "Deal_mapping.replicate: out of range";
  if uses t proc then invalid_arg "Deal_mapping.replicate: processor enrolled twice";
  let assignment = Array.copy t.assignment in
  let iv, procs = assignment.(j) in
  assignment.(j) <- (iv, procs @ [ proc ]);
  { t with assignment }

let replace t ~j parts =
  if j < 0 || j >= m t then invalid_arg "Deal_mapping.replace: out of range";
  if parts = [] then invalid_arg "Deal_mapping.replace: empty replacement";
  let target = fst t.assignment.(j) in
  let rec tiles expected = function
    | [] -> expected = Interval.last target + 1
    | (iv, _) :: rest ->
      Interval.first iv = expected && tiles (Interval.last iv + 1) rest
  in
  if not (tiles (Interval.first target) parts) then
    invalid_arg "Deal_mapping.replace: parts must tile the replaced interval";
  let before = Array.to_list (Array.sub t.assignment 0 j) in
  let after = Array.to_list (Array.sub t.assignment (j + 1) (m t - j - 1)) in
  make ~n:t.n (before @ parts @ after)

let valid_on t platform =
  List.for_all (fun u -> u >= 0 && u < Platform.p platform) (processors t)

let to_string t =
  let part (iv, procs) =
    Printf.sprintf "%s->{%s}" (Interval.to_string iv)
      (String.concat "," (List.map (Printf.sprintf "P%d") procs))
  in
  "{" ^ String.concat ", " (List.map part (Array.to_list t.assignment)) ^ "}"

let pp fmt t = Format.pp_print_string fmt (to_string t)

(** The shared threshold-search engine.

    Bi-criteria solving is threshold search: minimise one objective
    subject to a bound on the other, with a monotone feasibility probe
    (anything feasible at a threshold stays feasible at a larger one).
    This module provides the two search drivers every stack uses
    (DESIGN.md §9):

    {ul
    {- {!search} — {e exact} binary search over a finite, sorted
       candidate array (see {!Candidates}): [⌈log₂ count⌉ + 1] probes,
       and the returned threshold is an achievable value, not an
       ε-approximation;}
    {- {!bisect} — adaptive ε-bisection for directions without a small
       candidate set (latency is a {e sum} of interval contributions),
       stopping as soon as the bracket converges instead of burning a
       fixed iteration count.}}

    Probe counts and memo hits are published through the
    [model.threshold.*] counters (see [doc/observability.mld]). Callers
    that must not move those historical counters — new bench sections
    whose metrics would otherwise perturb the golden dump — pass their
    own [?probe_counter]; it then receives every probe (and the default
    counters, including the memo-hit bookkeeping, stay untouched). *)

type 'a found = {
  threshold : float;  (** smallest feasible candidate — the exact bound *)
  payload : 'a;  (** what the probe returned at that candidate *)
  probes : int;  (** probes spent, for the caller's own counters *)
}

val search :
  ?probe_counter:Obs.Counter.t ->
  candidates:float array ->
  probe:(float -> 'a option) ->
  unit ->
  'a found option
(** [search ~candidates ~probe] — smallest candidate the monotone [probe]
    accepts, with the probe's payload. [candidates] must be sorted
    ascending (as {!Candidates} builds them). [None] when the array is
    empty or even the largest candidate fails. The winning candidate is
    probed exactly once: its payload is memoised during the search
    rather than re-probed at the end (counted in
    [model.threshold.memo_hits]). *)

val search_set :
  ?probe_counter:Obs.Counter.t ->
  set:Candidates.Set.t ->
  probe:(float -> 'a option) ->
  unit ->
  'a found option
(** {!search} over a possibly-lazy candidate set. Materialised sets
    delegate to {!search} verbatim (same probe sequence, same
    [model.threshold.candidate_probes] counters — bit-identical to the
    historical path at paper sizes). Lazy lattice sets run an exact
    binary search over IEEE-754 bit patterns — non-negative finite
    doubles order identically to their [Int64.bits_of_float] images —
    snapping each midpoint onto the set with {!Candidates.Set.floor}:
    at most ~64 rounds of one O(n·|speeds|) floor plus at most one
    probe, returning the exact smallest feasible candidate with no ε.
    Lazy probes are counted in [model.threshold.lattice_probes]. *)

val boundary :
  ?probe_counter:Obs.Counter.t ->
  candidates:float array ->
  succeeds:(float -> bool) ->
  unit ->
  float option
(** {!search} for plain feasibility tests: the exact threshold at which
    [succeeds] flips from false to true, assuming it only flips at a
    candidate (true whenever the probed solver compares its threshold
    against achievable objective values — DESIGN.md §9). *)

val boundary_set :
  ?probe_counter:Obs.Counter.t ->
  set:Candidates.Set.t ->
  succeeds:(float -> bool) ->
  unit ->
  float option
(** {!boundary} over a possibly-lazy set, via {!search_set}. *)

type bisection = {
  lo : float;  (** largest known-infeasible value *)
  hi : float;  (** smallest known-feasible value *)
  probes : int;
}

val bisect :
  ?max_probes:int ->
  ?rel:float ->
  ?probe_counter:Obs.Counter.t ->
  lo:float ->
  hi:float ->
  feasible:(float -> bool) ->
  unit ->
  bisection
(** [bisect ~lo ~hi ~feasible ()] halves the bracket until
    {!Pipeline_util.Tol.converged} (at [rel], default
    {!Pipeline_util.Tol.bisect_rel}) or [max_probes] (default 64)
    probes. The caller's invariant: [hi] is feasible, [lo] is not; the
    driver preserves it. Midpoint results are memoised, so a degenerate
    bracket that revisits a midpoint does not re-probe. Probing the same
    midpoint sequence as a legacy fixed-count loop with the same [rel]
    and [max_probes] reproduces its results bit-for-bit. *)

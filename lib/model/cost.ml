(* One cost engine per (application, platform) pair. Every memoised value
   is produced by exactly the float expression the direct evaluation
   would use — same operands, same IEEE-754 association — so a cache hit
   and a cache miss are bit-identical (DESIGN.md §8). *)

type config = { proc : int; b_in : float; b_out : float }

type t = {
  app : Application.t;
  platform : Platform.t;
  n : int;
  comm_hom : bool;
  b : float;  (* common bandwidth; nan on fully heterogeneous platforms *)
  speeds : float array;
  memo : bool;
  din_t : float array;  (* δ_{d-1}/b, indexed by d = 1..n; [||] off *)
  dout_t : float array;  (* δ_e/b, indexed by e = 0..n; [||] off *)
  cycle_memo : bool;
  mutable cycles : float array;  (* (d,e,u) cycle-times, lazy; NaN = unset *)
  mutable configs : config array;  (* candidate configs; [||] = unset *)
  mutable period_cands : float array;  (* sorted candidate periods; [||] = unset *)
  mutable deal_cands : float array;  (* deal variant (cycle / r); [||] = unset *)
}

(* The eager tables are all O(n) flat float arrays: work sums come from
   the application's prefix table (an O(1) difference per query), so the
   engine build is O(n + p) at any size. Only the lazy (d,e,u) cycle
   table is quadratic in n; the cap keeps it at a few MB, and beyond it
   the engine computes cycles directly (same bits, no cache). *)
let max_cycle_entries = 1 lsl 22

(* Build/lookup tallies for the domain-local engine LRU below. These are
   deliberately plain atomics and NOT Obs counters: cache traffic depends
   on how work is sliced across domains, so the values are not
   jobs-invariant and must stay out of the golden-gated metrics dump.
   They surface in the bench's perf-summary "cache" block instead. *)
let n_engine_builds = Atomic.make 0
let n_lru_hits = Atomic.make 0
let n_lru_misses = Atomic.make 0
let n_candidate_builds = Atomic.make 0
let n_deal_candidate_builds = Atomic.make 0

type cache_stats = {
  engine_builds : int;
  lru_hits : int;
  lru_misses : int;
  candidate_builds : int;
  deal_candidate_builds : int;
}

let cache_stats () =
  {
    engine_builds = Atomic.get n_engine_builds;
    lru_hits = Atomic.get n_lru_hits;
    lru_misses = Atomic.get n_lru_misses;
    candidate_builds = Atomic.get n_candidate_builds;
    deal_candidate_builds = Atomic.get n_deal_candidate_builds;
  }

let tri n = n * (n + 1) / 2

(* Index of interval (d, e), 1 <= d <= e <= n, rows in d, growing e. *)
let idx n d e = ((d - 1) * n) - (((d - 1) * (d - 2)) / 2) + (e - d)

let make ?(memo = true) app platform =
  let n = Application.n app in
  let p = Platform.p platform in
  let comm_hom = Platform.is_comm_homogeneous platform in
  let b = if comm_hom then Platform.io_bandwidth platform 0 else Float.nan in
  let speeds = Platform.speeds platform in
  let entries = tri n in
  Atomic.incr n_engine_builds;
  let din_t, dout_t =
    if not (memo && comm_hom) then ([||], [||])
    else begin
      let din = Array.make (n + 1) 0. and dout = Array.make (n + 1) 0. in
      for d = 1 to n do
        din.(d) <- Application.delta app (d - 1) /. b
      done;
      for e = 0 to n do
        dout.(e) <- Application.delta app e /. b
      done;
      (din, dout)
    end
  in
  let cycle_memo =
    memo && comm_hom && entries <= max_cycle_entries
    && entries * p <= max_cycle_entries
  in
  {
    app;
    platform;
    n;
    comm_hom;
    b;
    speeds;
    memo;
    din_t;
    dout_t;
    cycle_memo;
    cycles = [||];
    configs = [||];
    period_cands = [||];
    deal_cands = [||];
  }

let memoised t = t.memo
let application t = t.app
let platform t = t.platform

(* Storage for the candidate-period arrays; the enumeration itself lives
   in Candidates so the engine stays agnostic of search concerns. A
   valid instance always has at least one candidate, so [||] is a safe
   "unset" sentinel. *)

let cached_candidates t ~build =
  if Array.length t.period_cands > 0 then t.period_cands
  else begin
    Atomic.incr n_candidate_builds;
    let a = build t in
    t.period_cands <- a;
    a
  end

let cached_deal_candidates t ~build =
  if Array.length t.deal_cands > 0 then t.deal_cands
  else begin
    Atomic.incr n_deal_candidate_builds;
    let a = build t in
    t.deal_cands <- a;
    a
  end

(* A small per-domain LRU of memoising engines, keyed on physical
   equality: solvers evaluate one instance many times in a row, but the
   failure campaign and the streaming resolver alternate between a
   handful of instances (rows × setups, live vs survivor platforms) —
   a single slot thrashes there and re-enumerates candidate sets on
   every alternation. Domain-local storage keeps the mutable cycle and
   candidate tables race-free without locks. *)
let lru_capacity = 8

let slot : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let get app platform =
  let r = Domain.DLS.get slot in
  (* [acc] holds the already-scanned prefix in reverse; on a hit the
     entry moves to the front and the rest keeps its order. *)
  let rec find acc = function
    | [] -> None
    | t :: rest ->
      if t.app == app && t.platform == platform then begin
        r := t :: List.rev_append acc rest;
        Some t
      end
      else find (t :: acc) rest
  in
  match find [] !r with
  | Some t ->
    Atomic.incr n_lru_hits;
    t
  | None ->
    Atomic.incr n_lru_misses;
    let t = make app platform in
    let kept = List.filteri (fun i _ -> i < lru_capacity - 1) !r in
    r := t :: kept;
    t

let require_comm_hom t who =
  if not t.comm_hom then
    invalid_arg (who ^ ": requires a comm-homogeneous platform")

(* Unchecked primitives; [_u] = no validation. *)

let din_u t d =
  if t.memo && t.comm_hom then t.din_t.(d)
  else Application.delta t.app (d - 1) /. t.b

let dout_u t e =
  if t.memo && t.comm_hom then t.dout_t.(e)
  else Application.delta t.app e /. t.b

(* The application's prefix table already serves W(d,e) as an O(1)
   difference, in the exact float every historical call site saw — no
   per-engine table needed. *)
let ws_u t d e = Application.work_sum t.app d e

let contrib_u t d e u = din_u t d +. (ws_u t d e /. t.speeds.(u))
let cycle_direct t d e u = din_u t d +. (ws_u t d e /. t.speeds.(u)) +. dout_u t e

let cycle_u t d e u =
  if not t.cycle_memo then cycle_direct t d e u
  else begin
    let p = Array.length t.speeds in
    if Array.length t.cycles = 0 then
      t.cycles <- Array.make (tri t.n * p) Float.nan;
    let i = (idx t.n d e * p) + u in
    let v = Array.unsafe_get t.cycles i in
    if Float.is_nan v then begin
      (* Cycle-times of valid instances are finite and non-negative, so
         NaN is a safe "unset" sentinel. *)
      let v = cycle_direct t d e u in
      Array.unsafe_set t.cycles i v;
      v
    end
    else v
  end

let check_interval t who d e =
  if d < 1 || e < d || e > t.n then
    invalid_arg (who ^ ": invalid stage interval")

let check_proc t who u =
  if u < 0 || u >= Array.length t.speeds then
    invalid_arg (who ^ ": processor out of range")

(* Candidate configurations (DESIGN.md §13): the one dispatch point that
   makes the finite-candidate argument platform-kind-agnostic. A mapped
   interval's cycle-time depends on its processor only through
   (speed, boundary-in bandwidth, boundary-out bandwidth); on a
   comm-homogeneous platform both boundary bandwidths are the common b,
   so the configs are exactly the speed representatives. On a fully
   heterogeneous platform every boundary bandwidth an interval on [u] can
   face is one of u's p-1 link bandwidths or its I/O bandwidth, so the
   (at most p·p²) configs cover every achievable cycle-time — a superset
   that still yields exact thresholds, because feasibility flips at an
   achievable (hence member) value. *)

let boundary_bandwidths t u =
  let p = Array.length t.speeds in
  let acc = ref [ Platform.io_bandwidth t.platform u ] in
  for v = 0 to p - 1 do
    if v <> u then acc := Platform.bandwidth t.platform u v :: !acc
  done;
  List.sort_uniq compare !acc

let candidate_configs t =
  if Array.length t.configs > 0 then t.configs
  else begin
    let p = Array.length t.speeds in
    let seen = Hashtbl.create 16 in
    let acc = ref [] in
    if t.comm_hom then
      (* One representative processor per distinct speed, smallest index
         first — the shrink the comm-homogeneous enumeration has always
         applied. *)
      Array.iteri
        (fun u s ->
          let key = (s, t.b, t.b) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            acc := { proc = u; b_in = t.b; b_out = t.b } :: !acc
          end)
        t.speeds
    else
      for u = 0 to p - 1 do
        let bs = boundary_bandwidths t u in
        List.iter
          (fun b_in ->
            List.iter
              (fun b_out ->
                let key = (t.speeds.(u), b_in, b_out) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  acc := { proc = u; b_in; b_out } :: !acc
                end)
              bs)
          bs
      done;
    let configs = Array.of_list (List.rev !acc) in
    t.configs <- configs;
    configs
  end

let config_cycle_u t d e (c : config) =
  if t.comm_hom then cycle_u t d e c.proc
  else
    Application.delta t.app (d - 1) /. c.b_in
    +. (ws_u t d e /. t.speeds.(c.proc))
    +. (Application.delta t.app e /. c.b_out)

let config_cycle t ~d ~e config =
  check_interval t "Cost.config_cycle" d e;
  check_proc t "Cost.config_cycle" config.proc;
  config_cycle_u t d e config

let din t ~d =
  require_comm_hom t "Cost.din";
  check_interval t "Cost.din" d d;
  din_u t d

let dout t ~e =
  require_comm_hom t "Cost.dout";
  if e < 0 || e > t.n then invalid_arg "Cost.dout: invalid stage index";
  dout_u t e

let work_sum t ~d ~e =
  check_interval t "Cost.work_sum" d e;
  ws_u t d e

let compute t ~d ~e ~u =
  check_interval t "Cost.compute" d e;
  check_proc t "Cost.compute" u;
  ws_u t d e /. t.speeds.(u)

let contrib t ~d ~e ~u =
  require_comm_hom t "Cost.contrib";
  check_interval t "Cost.contrib" d e;
  check_proc t "Cost.contrib" u;
  contrib_u t d e u

let cycle t ~d ~e ~u =
  require_comm_hom t "Cost.cycle";
  check_interval t "Cost.cycle" d e;
  check_proc t "Cost.cycle" u;
  cycle_u t d e u

let period_lower_bound t =
  let s_max = Platform.speed t.platform (Platform.fastest t.platform) in
  (* Best-case boundary bandwidth: the common b when comm-homogeneous,
     otherwise the fastest I/O port any processor offers (the pipeline
     ends always pay an I/O transfer, never a faster internal link). *)
  let b =
    if t.comm_hom then Platform.io_bandwidth t.platform 0
    else begin
      let best = ref neg_infinity in
      for u = 0 to Array.length t.speeds - 1 do
        best := Float.max !best (Platform.io_bandwidth t.platform u)
      done;
      !best
    end
  in
  let n = t.n in
  (* Every stage's computation is paid somewhere, at best at full speed;
     the first interval pays the pipeline input, the last one its
     output. *)
  let per_stage = ref 0. in
  for k = 1 to n do
    per_stage := Float.max !per_stage (ws_u t k k /. s_max)
  done;
  let input_bound = (Application.delta t.app 0 /. b) +. (ws_u t 1 1 /. s_max) in
  let output_bound = (Application.delta t.app n /. b) +. (ws_u t n n /. s_max) in
  Float.max !per_stage (Float.max input_bound output_bound)

(* Plain interval mappings (any platform kind). *)

let check t mapping =
  if Mapping.n mapping <> t.n then
    invalid_arg "Cost: mapping and application disagree on n";
  if not (Mapping.valid_on mapping t.platform) then
    invalid_arg "Cost: mapping references processors outside the platform"

let in_bandwidth t mapping j =
  if j = 0 then Platform.io_bandwidth t.platform (Mapping.proc mapping 0)
  else
    Platform.bandwidth t.platform
      (Mapping.proc mapping (j - 1))
      (Mapping.proc mapping j)

let out_bandwidth t mapping j =
  let m = Mapping.m mapping in
  if j = m - 1 then Platform.io_bandwidth t.platform (Mapping.proc mapping j)
  else
    Platform.bandwidth t.platform (Mapping.proc mapping j)
      (Mapping.proc mapping (j + 1))

let cycle_time_u t mapping j =
  let iv = Mapping.interval mapping j in
  let u = Mapping.proc mapping j in
  let d = Interval.first iv and e = Interval.last iv in
  if t.comm_hom then cycle_u t d e u
  else
    Application.delta t.app (d - 1) /. in_bandwidth t mapping j
    +. (ws_u t d e /. t.speeds.(u))
    +. (Application.delta t.app e /. out_bandwidth t mapping j)

let cycle_time t mapping j =
  check t mapping;
  if j < 0 || j >= Mapping.m mapping then
    invalid_arg "Cost.cycle_time: interval index out of range";
  cycle_time_u t mapping j

let period_u t mapping =
  let worst = ref neg_infinity in
  for j = 0 to Mapping.m mapping - 1 do
    worst := Float.max !worst (cycle_time_u t mapping j)
  done;
  !worst

let period t mapping =
  check t mapping;
  period_u t mapping

let bottleneck t mapping =
  check t mapping;
  let best_j = ref 0 and best = ref neg_infinity in
  for j = 0 to Mapping.m mapping - 1 do
    let c = cycle_time_u t mapping j in
    if c > !best then begin
      best := c;
      best_j := j
    end
  done;
  !best_j

let latency_u t mapping =
  let m = Mapping.m mapping in
  let total = ref 0. in
  for j = 0 to m - 1 do
    let iv = Mapping.interval mapping j in
    let u = Mapping.proc mapping j in
    let d = Interval.first iv and e = Interval.last iv in
    let input =
      if t.comm_hom then din_u t d
      else Application.delta t.app (d - 1) /. in_bandwidth t mapping j
    in
    total := !total +. input +. (ws_u t d e /. t.speeds.(u))
  done;
  let output =
    if t.comm_hom then dout_u t t.n
    else Application.delta t.app t.n /. out_bandwidth t mapping (m - 1)
  in
  !total +. output

let latency t mapping =
  check t mapping;
  latency_u t mapping

type summary = { period : float; latency : float; intervals : int }

let summary t mapping =
  check t mapping;
  {
    period = period_u t mapping;
    latency = latency_u t mapping;
    intervals = Mapping.m mapping;
  }

(* Deal-replication layer (comm-homogeneous only). *)

let deal_check t deal =
  require_comm_hom t "Cost.deal";
  if Deal_mapping.n deal <> t.n then
    invalid_arg "Cost: deal mapping and application disagree on n";
  if not (Deal_mapping.valid_on deal t.platform) then
    invalid_arg "Cost: deal mapping references processors outside the platform"

let deal_cycle_u t deal j u =
  let iv = Deal_mapping.interval deal j in
  cycle_u t (Interval.first iv) (Interval.last iv) u

let deal_cycle t deal ~j ~u =
  deal_check t deal;
  if j < 0 || j >= Deal_mapping.m deal then
    invalid_arg "Cost.deal_cycle: interval out of range";
  if not (List.mem u (Deal_mapping.replicas deal j)) then
    invalid_arg "Cost.deal_cycle: processor is not a replica of the interval";
  deal_cycle_u t deal j u

let fold_intervals_u t deal f init =
  let acc = ref init in
  for j = 0 to Deal_mapping.m deal - 1 do
    let cycles =
      List.map (fun u -> deal_cycle_u t deal j u) (Deal_mapping.replicas deal j)
    in
    acc := f !acc j cycles
  done;
  !acc

let deal_period_u t deal =
  fold_intervals_u t deal
    (fun acc j cycles ->
      let r = float_of_int (Deal_mapping.replication deal j) in
      let worst = List.fold_left Float.max neg_infinity cycles in
      Float.max acc (worst /. r))
    neg_infinity

let deal_period t deal =
  deal_check t deal;
  deal_period_u t deal

let deal_period_weighted t deal =
  deal_check t deal;
  fold_intervals_u t deal
    (fun acc _j cycles ->
      let rate = List.fold_left (fun s c -> s +. (1. /. c)) 0. cycles in
      Float.max acc (1. /. rate))
    neg_infinity

let deal_latency_u t deal =
  let total =
    fold_intervals_u t deal
      (fun acc j cycles ->
        (* Worst replica's input + compute: its cycle minus the interval's
           output transfer (identical for all replicas on comm-hom). *)
        let iv = Deal_mapping.interval deal j in
        let out = dout_u t (Interval.last iv) in
        let worst = List.fold_left Float.max neg_infinity cycles in
        acc +. (worst -. out))
      0.
  in
  total +. dout_u t t.n

let deal_latency t deal =
  deal_check t deal;
  deal_latency_u t deal

let deal_bottleneck t deal =
  deal_check t deal;
  let best = ref 0 and worst = ref neg_infinity in
  for j = 0 to Deal_mapping.m deal - 1 do
    let r = float_of_int (Deal_mapping.replication deal j) in
    let contribution =
      List.fold_left
        (fun acc u -> Float.max acc (deal_cycle_u t deal j u))
        neg_infinity
        (Deal_mapping.replicas deal j)
      /. r
    in
    if contribution > !worst then begin
      worst := contribution;
      best := j
    end
  done;
  !best

type deal_summary = { period : float; latency : float; processors : int }

let deal_summary t deal =
  deal_check t deal;
  {
    period = deal_period_u t deal;
    latency = deal_latency_u t deal;
    processors = List.length (Deal_mapping.processors deal);
  }

(* Reliability layer. *)

let interval_failure rel deal ~j =
  Reliability.group_failure rel (Deal_mapping.replicas deal j)

let failure rel deal =
  (* Validate enrolment eagerly so the error names this entry point. *)
  List.iter
    (fun u ->
      if u < 0 || u >= Reliability.p rel then
        invalid_arg "Cost.failure: processor out of range")
    (Deal_mapping.processors deal);
  let survive_all = ref 1. in
  for j = 0 to Deal_mapping.m deal - 1 do
    survive_all := !survive_all *. (1. -. interval_failure rel deal ~j)
  done;
  1. -. !survive_all

type ft_summary = { period : float; latency : float; failure : float }

let ft_summary t rel deal =
  let (s : deal_summary) = deal_summary t deal in
  { period = s.period; latency = s.latency; failure = failure rel deal }

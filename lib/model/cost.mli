(** The cost engine: one implementation of the paper's equations (1)–(2)
    per platform kind, shared by every solver stack.

    An engine is built once per [(application, platform)] pair and owns
    all period/latency/failure evaluation:

    {ul
    {- {e plain interval mappings} ({!period}, {!latency}, {!summary}) on
       any platform — comm-homogeneous platforms recover the paper's
       formulas verbatim, fully heterogeneous ones use the actual link
       bandwidths (the extension of DESIGN.md §6);}
    {- the {e deal-replication layer} ({!deal_period}, {!deal_latency},
       …) on comm-homogeneous platforms (DESIGN.md §7);}
    {- the {e reliability layer} ({!failure}, {!ft_summary}) combining a
       deal mapping with a {!Reliability} vector.}}

    {2 Memoisation and determinism}

    The engine's eager state is O(n + p) flat float arrays: the interval
    work sums [W(d,e)] are served straight from
    {!Application.work_sum}'s prefix table as an O(1) difference (no
    per-engine triangular copy), and the communication terms
    [δ_{d-1}/b] and [δ_e/b] are tabulated once on comm-homogeneous
    platforms — so construction is O(n + p) at any instance size
    (DESIGN.md §11). Only the lazy full cycle-time table indexed by
    [(d, e, u)] is quadratic in [n]; above a fixed size cap it falls
    back to direct evaluation (still bit-identical). Every cached value
    is produced by exactly the float expression the pre-engine code
    evaluated, in the same IEEE-754 association, so memoisation cannot
    move a single bit: a cache hit returns the very float a cache miss
    would compute.

    Engines are {e not} thread-safe: the lazy cycle table is mutated in
    place. {!get} hands out engines from a small per-domain LRU
    (domain-local storage), which is what every solver should use;
    {!make} is for benchmarks and tests that want explicit control over
    memoisation. *)

type t
(** A cost engine for one [(application, platform)] pair. *)

val make : ?memo:bool -> Application.t -> Platform.t -> t
(** [make ?memo app platform] builds an engine. [~memo:false] disables
    every cache and recomputes each term from first principles — used by
    the bench's [cost] group and the equivalence property tests; results
    are bit-identical either way. Default [true]. *)

val get : Application.t -> Platform.t -> t
(** The shared, memoising engine for this domain. Cached on physical
    equality of both arguments in a small per-domain LRU, so repeated
    evaluation of the same instance — the common solver pattern — reuses
    all tables with no synchronisation, and callers that alternate
    between a handful of instances (the failure campaign's rows, the
    streaming resolver's live/survivor pair) never re-enumerate their
    candidate sets. *)

val memoised : t -> bool
(** Whether the engine serves cached tables (false for
    [~memo:false]). *)

type cache_stats = {
  engine_builds : int;  (** engines constructed by {!make} *)
  lru_hits : int;  (** {!get} calls served from the per-domain LRU *)
  lru_misses : int;  (** {!get} calls that had to build *)
  candidate_builds : int;  (** candidate-period enumerations *)
  deal_candidate_builds : int;  (** deal candidate enumerations *)
}

val cache_stats : unit -> cache_stats
(** Process-wide tallies of engine-cache traffic, summed over domains.
    Deliberately {e not} {!Obs} counters: the split of hits/misses
    across domains depends on [--jobs], so these are not jobs-invariant
    and must stay out of the golden-gated metrics dump. The bench
    reports them in the perf-summary's informational "cache" block. *)

val application : t -> Application.t

val platform : t -> Platform.t

val cached_candidates : t -> build:(t -> float array) -> float array
(** Lazily caches the sorted candidate-period array on the engine: the
    first call runs [build] and stores its result, later calls return
    the stored array. The enumeration lives in {!Candidates} — use
    {!Candidates.periods}, not this hook. *)

val cached_deal_candidates : t -> build:(t -> float array) -> float array
(** Same cache slot for the deal-replication candidate set
    ({!Candidates.deal_periods}). *)

(** {2 Comm-homogeneous primitives}

    The building blocks of equations (1)–(2) for an interval [\[d, e\]]
    on processor [u] of a comm-homogeneous platform with common
    bandwidth [b]. All raise [Invalid_argument] on other platforms. *)

val din : t -> d:int -> float
(** [δ_{d-1} / b] — the interval's input transfer. *)

val dout : t -> e:int -> float
(** [δ_e / b] — the interval's output transfer. *)

val work_sum : t -> d:int -> e:int -> float
(** [Σ_{k=d..e} w_k] (valid on every platform kind). *)

val compute : t -> d:int -> e:int -> u:int -> float
(** [W(d,e)/s_u] — the interval's computation time (valid on every
    platform kind). *)

val contrib : t -> d:int -> e:int -> u:int -> float
(** [δ_{d-1}/b + W(d,e)/s_u] — the interval's latency contribution
    (input + compute, output charged to the successor). *)

val cycle : t -> d:int -> e:int -> u:int -> float
(** [δ_{d-1}/b + W(d,e)/s_u + δ_e/b] — the interval's cycle-time,
    equation (1)'s per-interval term. Memoised per [(d, e, u)]. *)

val period_lower_bound : t -> float
(** The coarse relaxation used to seed threshold sweeps: every stage
    computed alone on the fastest processor, and the pipeline input /
    output transfers each paired with their adjacent stage (over the
    best I/O bandwidth on fully heterogeneous platforms). *)

(** {2 Candidate configurations (any platform kind)}

    The dispatch point behind the exact threshold searches
    (DESIGN.md §9 and §13): a mapped interval's cycle-time depends on its
    processor only through the triple (speed, boundary-in bandwidth,
    boundary-out bandwidth). {!candidate_configs} enumerates one
    representative per distinct triple — the speed representatives with
    [(b, b)] on a comm-homogeneous platform, and every
    (speed, link-or-I/O, link-or-I/O) combination on a fully
    heterogeneous one (at most [p³] configs, deduplicated) — and
    {!config_cycle} evaluates the cycle-time of an interval under a
    config with exactly the float association {!period} uses, so the
    candidate values are bit-identical to achievable objective values. *)

type config = {
  proc : int;  (** representative processor (smallest index per triple) *)
  b_in : float;  (** boundary input bandwidth (link or I/O) *)
  b_out : float;  (** boundary output bandwidth (link or I/O) *)
}

val candidate_configs : t -> config array
(** All distinct (speed, b_in, b_out) configurations, cached on the
    engine. Deterministic order: processors ascending, bandwidths
    sorted. On a fully heterogeneous platform this is a {e superset}
    family — not every config is realisable by some mapping — but
    threshold searches over it are still exact, because a monotone
    feasibility probe flips at an achievable (hence member) value. *)

val config_cycle : t -> d:int -> e:int -> config -> float
(** [δ_{d-1}/b_in + W(d,e)/s_proc + δ_e/b_out] — the cycle-time of
    interval [\[d, e\]] under a config, in the same association as
    {!cycle_time}. Comm-homogeneous configs route through the memoised
    {!cycle} table (bit-identical). *)

(** {2 Plain interval mappings (equations (1) and (2))}

    All functions raise [Invalid_argument] when the mapping does not
    match the application's stage count or references processors outside
    the platform. Any platform kind. *)

val cycle_time : t -> Mapping.t -> int -> float
(** Cycle-time of interval [j] (0-based). *)

val period : t -> Mapping.t -> float
(** Equation (1): the largest interval cycle-time. *)

val bottleneck : t -> Mapping.t -> int
(** Index of an interval achieving the period (smallest on ties). *)

val latency : t -> Mapping.t -> float
(** Equation (2). *)

type summary = {
  period : float;
  latency : float;
  intervals : int;  (** number of enrolled processors *)
}

val summary : t -> Mapping.t -> summary
(** Both objectives in one traversal. *)

(** {2 Deal-replication layer (comm-homogeneous only)} *)

val deal_cycle : t -> Deal_mapping.t -> j:int -> u:int -> float
(** Cycle-time of replica [u] of interval [j]; identical to the plain
    {!cycle} of the interval on [u]. Raises when [j] is out of range or
    [u] is not a replica of interval [j]. *)

val deal_period : t -> Deal_mapping.t -> float
(** Round-robin deal: each interval's worst replica cycle-time divided
    by its replication factor, maximised over intervals. *)

val deal_period_weighted : t -> Deal_mapping.t -> float
(** Rate-balanced deal: per interval, the inverse of the summed replica
    rates [Σ 1/cycle]. *)

val deal_latency : t -> Deal_mapping.t -> float
(** Worst replica's input + compute per interval, plus the final
    [δ_n/b]. *)

val deal_bottleneck : t -> Deal_mapping.t -> int
(** Interval whose period contribution (worst replica cycle over
    replication) is largest; smallest index on ties. *)

type deal_summary = {
  period : float;
  latency : float;
  processors : int;  (** total enrolled processors over all replicas *)
}

val deal_summary : t -> Deal_mapping.t -> deal_summary

(** {2 Reliability layer} *)

val interval_failure : Reliability.t -> Deal_mapping.t -> j:int -> float
(** Probability that every replica of interval [j] fails. *)

val failure : Reliability.t -> Deal_mapping.t -> float
(** Probability that at least one interval loses all its replicas
    (stage executions are independent). Raises [Invalid_argument] when
    the deal mapping enrolls processors outside the reliability
    vector. *)

type ft_summary = { period : float; latency : float; failure : float }

val ft_summary : t -> Reliability.t -> Deal_mapping.t -> ft_summary
(** The tri-criteria objective vector of a replicated mapping. *)

(** Target platforms (paper §2).

    A platform is a set of [p] processors [P_1 … P_p] (identified here by
    0-based indices [0 … p-1]) fully interconnected by bidirectional links.
    Processor [u] has speed [speed t u]: executing [X] operations takes
    [X / speed] time units; sending a message of size [X] over a link of
    bandwidth [b] takes [X / b] (linear cost model). Contention follows
    the one-port model, which the analytic cost functions of
    {!module:Metrics} assume and the simulator in [Pipeline_sim] enforces
    operationally.

    Three platform classes appear in the paper:
    - {e fully homogeneous}: identical speeds, identical links
      (Subhlok-Vondran's setting);
    - {e communication homogeneous}: different speeds, identical links —
      the class studied by the paper; and
    - {e fully heterogeneous}: both speeds and link bandwidths differ
      (future work in the paper; supported here by the cost functions so
      the heuristics can be stressed beyond the paper's setting).

    The outside world (source of [δ_0], sink of [δ_n]) is reachable from
    every processor; the bandwidth used for these boundary transfers is
    [io_bandwidth]. *)

type t

val comm_homogeneous : ?io_bandwidth:float -> bandwidth:float -> float array -> t
(** [comm_homogeneous ~bandwidth speeds] builds a communication-homogeneous
    platform: every link has capacity [bandwidth]. [io_bandwidth] defaults
    to [bandwidth]. Raises [Invalid_argument] if [speeds] is empty or any
    speed/bandwidth is not strictly positive and finite. *)

val fully_homogeneous : ?io_bandwidth:float -> speed:float -> bandwidth:float -> int -> t
(** [fully_homogeneous ~speed ~bandwidth p] is [p] identical processors
    with identical links. *)

val fully_heterogeneous :
  ?io_bandwidths:float array -> bandwidths:float array array -> float array -> t
(** [fully_heterogeneous ~bandwidths speeds] builds a fully heterogeneous
    platform; [bandwidths] is a symmetric [p×p] matrix ([bandwidths.(u).(v)]
    is the capacity of the link between [u] and [v]; the diagonal is
    ignored — intra-processor transfers are free). [io_bandwidths.(u)]
    (default: the max entry of row [u]) is the bandwidth between [u] and
    the outside world. Raises [Invalid_argument] on shape or sign
    errors, or if the matrix is not symmetric. *)

val scale_rates : factor:float -> t -> t
(** [scale_rates ~factor t] multiplies every rate — speeds, link
    bandwidths and I/O bandwidths — by [factor], preserving the platform
    kind. Every time a cost function computes is [X / rate], so all
    periods and latencies scale by [1/factor]; for power-of-two factors
    the scaling is bit-exact (IEEE-754 division by a scaled power of two
    only moves the exponent). Raises [Invalid_argument] unless [factor]
    is finite and strictly positive. *)

val p : t -> int
(** Number of processors. *)

val speed : t -> int -> float
(** [speed t u], [0 ≤ u < p]. *)

val speeds : t -> float array
(** Fresh copy of the speed vector. *)

val bandwidth : t -> int -> int -> float
(** [bandwidth t u v] is the link capacity between distinct processors [u]
    and [v]; [infinity] when [u = v] (intra-processor data does not travel). *)

val io_bandwidth : t -> int -> float
(** Bandwidth between processor [u] and the outside world. *)

val is_comm_homogeneous : t -> bool
(** True when all (inter-processor and I/O) bandwidths are equal. *)

val fastest : t -> int
(** Index of a fastest processor (smallest index on ties). *)

val by_decreasing_speed : t -> int array
(** Processor indices sorted by non-increasing speed; ties broken by
    index. All heuristics of the paper consume processors in this order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(* The finite candidate sets behind the exact threshold searches
   (DESIGN.md §9). Every value is produced by the engine's own cost
   expressions — Cost.cycle for periods, cycle /. float r for deal
   periods — so a threshold found here is bit-identical to the objective
   value of the mapping that realises it. *)

let of_values values =
  let a = Array.of_list (List.sort_uniq compare values) in
  if Array.exists (fun v -> Float.is_nan v) a then
    invalid_arg "Candidates.of_values: NaN candidate";
  a

(* One representative processor per distinct speed, smallest index first:
   cycle-times depend on the processor only through its speed, so the
   value set is unchanged and the enumeration shrinks from p to
   |distinct speeds| columns. *)
let speed_representatives platform =
  let speeds = Platform.speeds platform in
  let seen = Hashtbl.create 16 in
  let reps = ref [] in
  Array.iteri
    (fun u s ->
      if not (Hashtbl.mem seen s) then begin
        Hashtbl.add seen s ();
        reps := u :: !reps
      end)
    speeds;
  List.rev !reps

let enumerate cost =
  let platform = Cost.platform cost in
  if not (Platform.is_comm_homogeneous platform) then
    invalid_arg "Candidates: requires a comm-homogeneous platform";
  let n = Application.n (Cost.application cost) in
  let reps = speed_representatives platform in
  let acc = ref [] in
  for d = 1 to n do
    for e = d to n do
      List.iter (fun u -> acc := Cost.cycle cost ~d ~e ~u :: !acc) reps
    done
  done;
  of_values !acc

let periods cost = Cost.cached_candidates cost ~build:enumerate

(* A replicated interval contributes (worst replica cycle) / r, so the
   deal candidates are the plain ones divided by every feasible
   replication factor — the same float expression Cost.deal_period
   evaluates. *)
let enumerate_deal cost =
  let plain = periods cost in
  let p = Platform.p (Cost.platform cost) in
  let acc = ref [] in
  Array.iter
    (fun c ->
      for r = 1 to p do
        acc := c /. float_of_int r :: !acc
      done)
    plain;
  of_values !acc

let deal_periods cost = Cost.cached_deal_candidates cost ~build:enumerate_deal

let mem candidates value =
  let lo = ref 0 and hi = ref (Array.length candidates - 1) in
  if !hi < 0 then false
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if candidates.(mid) < value then lo := mid + 1 else hi := mid
    done;
    candidates.(!lo) = value
  end

let ceiling candidates value =
  let count = Array.length candidates in
  if count = 0 || candidates.(count - 1) < value then None
  else begin
    let lo = ref 0 and hi = ref (count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if candidates.(mid) < value then lo := mid + 1 else hi := mid
    done;
    Some candidates.(!lo)
  end

(* The finite candidate sets behind the exact threshold searches
   (DESIGN.md §9, §13). Every value is produced by the engine's own cost
   expressions — Cost.config_cycle for periods, cycle /. float r for
   deal periods — so a threshold found here is bit-identical to the
   objective value of the mapping that realises it. Platform kind is
   dispatched once, in Cost.candidate_configs: comm-homogeneous
   platforms enumerate speed representatives, fully heterogeneous ones
   the (speed, boundary-in, boundary-out) configuration family. *)

let of_values values =
  let a = Array.of_list (List.sort_uniq compare values) in
  if Array.exists (fun v -> Float.is_nan v) a then
    invalid_arg "Candidates.of_values: NaN candidate";
  a

let enumerate cost =
  let n = Application.n (Cost.application cost) in
  let configs = Cost.candidate_configs cost in
  let acc = ref [] in
  for d = 1 to n do
    for e = d to n do
      Array.iter (fun c -> acc := Cost.config_cycle cost ~d ~e c :: !acc) configs
    done
  done;
  of_values !acc

let periods cost = Cost.cached_candidates cost ~build:enumerate

(* A replicated interval contributes (worst replica cycle) / r, so the
   deal candidates are the plain ones divided by every feasible
   replication factor — the same float expression Cost.deal_period
   evaluates. *)
let enumerate_deal cost =
  let plain = periods cost in
  let p = Platform.p (Cost.platform cost) in
  let acc = ref [] in
  Array.iter
    (fun c ->
      for r = 1 to p do
        acc := c /. float_of_int r :: !acc
      done)
    plain;
  of_values !acc

let deal_periods cost = Cost.cached_deal_candidates cost ~build:enumerate_deal

let mem candidates value =
  let lo = ref 0 and hi = ref (Array.length candidates - 1) in
  if !hi < 0 then false
  else begin
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if candidates.(mid) < value then lo := mid + 1 else hi := mid
    done;
    candidates.(!lo) = value
  end

let ceiling candidates value =
  let count = Array.length candidates in
  if count = 0 || candidates.(count - 1) < value then None
  else begin
    let lo = ref 0 and hi = ref (count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if candidates.(mid) < value then lo := mid + 1 else hi := mid
    done;
    Some candidates.(!lo)
  end

let floor candidates value =
  let count = Array.length candidates in
  if count = 0 || candidates.(0) > value then None
  else begin
    let lo = ref 0 and hi = ref (count - 1) in
    (* Invariant: candidates.(lo) <= value. *)
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if candidates.(mid) <= value then lo := mid else hi := mid - 1
    done;
    Some candidates.(!lo)
  end

(* Lazy candidate sets (DESIGN.md §11). At web scale the materialised
   array is O(n² · |speeds|) and unbuildable; but with uniform deltas
   every cycle-time is a weakly monotone image of the interval work sum
   W(d,e) — monotone in e, anti-monotone in d — so min/max/floor/ceiling
   over the implicit (d, e, u) lattice are answerable in O(n · |speeds|)
   with two-pointer sweeps, evaluating the engine's own Cost.cycle
   expression at every comparison (never an algebraically rearranged
   form, which could disagree by one ulp). *)
module Set = struct
  type t =
    | Materialised of float array
    | Lattice of {
        cost : Cost.t;
        configs : Cost.config array;
        min_elt : float;
        max_elt : float;
      }

  let default_max_materialised = 1 lsl 22

  let uniform_delta app =
    let n = Application.n app in
    let d0 = Application.delta app 0 in
    let ok = ref true in
    for k = 1 to n do
      if Application.delta app k <> d0 then ok := false
    done;
    !ok

  let lattice cost configs =
    let n = Application.n (Cost.application cost) in
    (* W(d,e) >= W(k,k) for any k in [d,e] and the cycle is a monotone
       image of W at fixed config (uniform deltas make both boundary
       terms interval-independent), so the global minimum is a
       single-stage cycle; the maximum is the whole chain — both
       attained, hence exact set members. *)
    let min_elt = ref infinity and max_elt = ref neg_infinity in
    Array.iter
      (fun c ->
        for d = 1 to n do
          min_elt := Float.min !min_elt (Cost.config_cycle cost ~d ~e:d c)
        done;
        max_elt := Float.max !max_elt (Cost.config_cycle cost ~d:1 ~e:n c))
      configs;
    Lattice { cost; configs; min_elt = !min_elt; max_elt = !max_elt }

  let of_engine ?(max_materialised = default_max_materialised) cost =
    let app = Cost.application cost in
    let n = Application.n app in
    let configs = Cost.candidate_configs cost in
    let triples = n * (n + 1) / 2 * Array.length configs in
    if triples <= max_materialised then Materialised (periods cost)
    else if uniform_delta app then lattice cost configs
    else
      (* Non-uniform deltas break the monotone-in-W argument; fall back
         to materialising even above the cap (documented in DESIGN.md
         §11 — no current caller hits this at scale). *)
      Materialised (periods cost)

  let of_array a = Materialised a

  let is_lazy = function Materialised _ -> false | Lattice _ -> true

  let min_elt = function
    | Materialised a -> if Array.length a = 0 then None else Some a.(0)
    | Lattice l -> Some l.min_elt

  let max_elt = function
    | Materialised a ->
      let c = Array.length a in
      if c = 0 then None else Some a.(c - 1)
    | Lattice l -> Some l.max_elt

  (* Largest candidate <= v. Per configuration, the largest feasible
     interval end for a fixed start d is non-decreasing in d (growing d
     only shrinks W), so one forward-only e pointer serves all n starts:
     O(n) cycle evaluations per configuration. *)
  let floor_lattice cost configs v =
    let n = Application.n (Cost.application cost) in
    let best = ref None in
    Array.iter
      (fun cf ->
        let e = ref 0 in
        for d = 1 to n do
          if !e < d - 1 then e := d - 1;
          while !e < n && Cost.config_cycle cost ~d ~e:(!e + 1) cf <= v do
            incr e
          done;
          if !e >= d then begin
            (* Row maximum <= v: cycles grow with e, so the last feasible
               end holds the row's largest value under v. *)
            let c = Cost.config_cycle cost ~d ~e:!e cf in
            match !best with
            | Some b when b >= c -> ()
            | _ -> best := Some c
          end
        done)
      configs;
    !best

  (* Smallest candidate >= v: the mirror sweep. The first end whose
     cycle reaches v is non-decreasing in d, and once a start has no
     such end no later start does (cycles only shrink with d). *)
  let ceiling_lattice cost configs v =
    let n = Application.n (Cost.application cost) in
    let best = ref None in
    Array.iter
      (fun cf ->
        let e = ref 1 in
        try
          for d = 1 to n do
            if !e < d then e := d;
            while !e <= n && Cost.config_cycle cost ~d ~e:!e cf < v do
              incr e
            done;
            if !e > n then raise Exit;
            let c = Cost.config_cycle cost ~d ~e:!e cf in
            match !best with
            | Some b when b <= c -> ()
            | _ -> best := Some c
          done
        with Exit -> ())
      configs;
    !best

  let floor t v =
    match t with
    | Materialised a -> floor a v
    | Lattice l -> floor_lattice l.cost l.configs v

  let ceiling t v =
    match t with
    | Materialised a -> ceiling a v
    | Lattice l -> ceiling_lattice l.cost l.configs v

  let mem t v =
    match t with
    | Materialised a -> mem a v
    | Lattice _ -> ( match floor t v with Some c -> c = v | None -> false)

  let force = function
    | Materialised a -> a
    | Lattice l -> periods l.cost
end

(** Random pipeline applications, parameterised like the paper's four
    experiment families (§5.1).

    A {!spec} describes the distribution of stage weights and message
    sizes; {!generate} draws an application from a {!Pipeline_util.Rng.t}
    stream, so campaigns are reproducible. Integer-valued parameters are
    drawn as integers then stored as floats, exactly as in the paper
    ("the speed of each processor is randomly chosen as an integer
    between 1 and 20", etc.). *)

type value_dist =
  | Fixed of float                  (** constant value *)
  | Int_uniform of int * int        (** uniform integer in [lo, hi] *)
  | Float_uniform of float * float  (** uniform real in [lo, hi) *)

type spec = {
  n : int;            (** number of stages *)
  work : value_dist;  (** distribution of [w_k] *)
  delta : value_dist; (** distribution of [δ_k], including [δ_0] and [δ_n] *)
}

val e1 : n:int -> spec
(** (E1) balanced, homogeneous communications: [δ_i = 10], [w ∈ [1,20]]. *)

val e2 : n:int -> spec
(** (E2) balanced, heterogeneous communications: [δ ∈ [1,100]],
    [w ∈ [1,20]]. *)

val e3 : n:int -> spec
(** (E3) large computations: [δ ∈ [1,20]], [w ∈ [10,1000]]. *)

val e4 : n:int -> spec
(** (E4) small computations: [δ ∈ [1,20]], [w ∈ [0.01,10]]. *)

val e6 : n:int -> spec
(** (E6) web scale (not from the paper; DESIGN.md §11): [δ_i = 25],
    [w ∈ [1,100]]. The fixed message size keeps the candidate-period
    lattice monotone, so the exact threshold searches stay lazy at
    [n = 50 000]. *)

val jpeg2000 : unit -> Application.t
(** The JPEG2000-style encoder pipeline of the image-processing
    follow-up (PAPERS.md, arXiv 0801.1772): five fixed, labelled stages
    — tiling, DWT, quantisation, Tier-1 coding, Tier-2 stream formation
    — with Tier-1 dominating the compute and data volume shrinking
    after quantisation (the exact weights are an interpretation choice,
    DESIGN.md §13). Deterministic: not drawn from an RNG. *)

val draw : Pipeline_util.Rng.t -> value_dist -> float
(** One sample from a distribution. *)

val generate : Pipeline_util.Rng.t -> spec -> Application.t
(** Draw the [n] weights and [n+1] message sizes. *)

val pp_spec : Format.formatter -> spec -> unit

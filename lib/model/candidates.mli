(** The finite candidate sets of the exact threshold searches.

    Equation (1) makes a mapping's period the {e max} of its interval
    cycle-times, so on a comm-homogeneous platform every achievable
    period is one of the at most [n(n+1)/2 × |distinct speeds|] values
    [cycle(d, e, s)] — and a threshold search over periods only needs to
    probe those (DESIGN.md §9). The arrays returned here are sorted,
    deduplicated, produced by the engine's own {!Cost.cycle} expressions
    (no new float associations), and cached lazily on the engine, so
    enumeration is paid once per [(application, platform)] pair.

    All functions raise [Invalid_argument] on platforms that are not
    comm-homogeneous (fully heterogeneous cycle-times depend on the
    neighbouring processors, so the candidate set is not small there). *)

val periods : Cost.t -> float array
(** Sorted, deduplicated cycle-times over every interval and distinct
    speed: the complete set of achievable periods for plain interval
    mappings. Built on first use, cached on the engine. *)

val deal_periods : Cost.t -> float array
(** The deal-replication variant: every plain candidate divided by every
    replication factor [1..p] — a superset of the periods achievable by
    {!Cost.deal_period} (round-robin deals). Built on first use, cached
    on the engine. *)

val of_values : float list -> float array
(** Sort and deduplicate an explicit candidate list (exact float
    equality). Raises [Invalid_argument] on NaN. *)

val mem : float array -> float -> bool
(** [mem candidates v] — binary search for exact membership in a sorted
    candidate array. *)

val ceiling : float array -> float -> float option
(** [ceiling candidates v] — the smallest candidate [>= v], or [None]
    when [v] exceeds them all. Used to snap relaxation lower bounds up
    onto the achievable grid. *)

(** The finite candidate sets of the exact threshold searches.

    Equation (1) makes a mapping's period the {e max} of its interval
    cycle-times, so on a comm-homogeneous platform every achievable
    period is one of the at most [n(n+1)/2 × |distinct speeds|] values
    [cycle(d, e, s)] — and a threshold search over periods only needs to
    probe those (DESIGN.md §9). The arrays returned here are sorted,
    deduplicated, produced by the engine's own {!Cost.cycle} expressions
    (no new float associations), and cached lazily on the engine, so
    enumeration is paid once per [(application, platform)] pair.

    All functions raise [Invalid_argument] on platforms that are not
    comm-homogeneous (fully heterogeneous cycle-times depend on the
    neighbouring processors, so the candidate set is not small there). *)

val periods : Cost.t -> float array
(** Sorted, deduplicated cycle-times over every interval and distinct
    speed: the complete set of achievable periods for plain interval
    mappings. Built on first use, cached on the engine. *)

val deal_periods : Cost.t -> float array
(** The deal-replication variant: every plain candidate divided by every
    replication factor [1..p] — a superset of the periods achievable by
    {!Cost.deal_period} (round-robin deals). Built on first use, cached
    on the engine. *)

val of_values : float list -> float array
(** Sort and deduplicate an explicit candidate list (exact float
    equality). Raises [Invalid_argument] on NaN. *)

val mem : float array -> float -> bool
(** [mem candidates v] — binary search for exact membership in a sorted
    candidate array. *)

val ceiling : float array -> float -> float option
(** [ceiling candidates v] — the smallest candidate [>= v], or [None]
    when [v] exceeds them all. Used to snap relaxation lower bounds up
    onto the achievable grid. *)

val floor : float array -> float -> float option
(** [floor candidates v] — the largest candidate [<= v], or [None] when
    [v] is below them all. *)

(** Candidate sets that may stay implicit (DESIGN.md §11).

    At paper sizes a set is the materialised sorted array above —
    byte-identical behaviour, same engine cache. Past the materialisation
    cap, applications with {e uniform} deltas switch to a lazy lattice
    view: cycle-times are weakly monotone in the interval work sum, so
    minimum, maximum, floor and ceiling are answered by O(n · |speeds|)
    two-pointer sweeps over the implicit [(d, e, u)] lattice, each
    comparison evaluating the engine's own {!Cost.cycle} expression.
    Every answer is an attained set element, bit-identical to the value
    the materialised array would hold — {!Threshold.search_set} builds
    an exact web-scale binary search on top of exactly these four
    queries. *)
module Set : sig
  type t

  val of_engine : ?max_materialised:int -> Cost.t -> t
  (** The candidate-period set of an engine. Materialised (via
      {!periods}, hence engine-cached) while
      [n(n+1)/2 · |distinct speeds| <= max_materialised] (default
      [2²²]); lazy above the cap when the application's deltas are all
      equal. Non-uniform deltas above the cap materialise anyway — the
      monotone structure the lattice view needs is absent (DESIGN.md
      §11). Raises on platforms that are not comm-homogeneous. *)

  val of_array : float array -> t
  (** Wrap an explicitly materialised sorted candidate array (e.g.
      {!deal_periods}). *)

  val is_lazy : t -> bool

  val min_elt : t -> float option
  (** Smallest element; [None] only for an empty {!of_array}. O(n·u)
      lazy, O(1) materialised. *)

  val max_elt : t -> float option

  val mem : t -> float -> bool
  (** Exact membership. *)

  val floor : t -> float -> float option
  (** Largest element [<= v]. *)

  val ceiling : t -> float -> float option
  (** Smallest element [>= v]. *)

  val force : t -> float array
  (** The materialised sorted array (enumerates a lazy set — test and
      paper-size use only). *)
end

(** The finite candidate sets of the exact threshold searches.

    Equation (1) makes a mapping's period the {e max} of its interval
    cycle-times, so every achievable period is one of the finitely many
    values [cycle(d, e, config)] over the engine's
    {!Cost.candidate_configs} — the speed representatives on a
    comm-homogeneous platform ([n(n+1)/2 × |distinct speeds|] values,
    DESIGN.md §9), and the (speed, boundary-in, boundary-out)
    configuration family on a fully heterogeneous one
    ([O(n² · p³)] naively, DESIGN.md §13) — and a threshold search over
    periods only needs to probe those. The arrays returned here are
    sorted, deduplicated, produced by the engine's own
    {!Cost.config_cycle} expressions (no new float associations), and
    cached lazily on the engine, so enumeration is paid once per
    [(application, platform)] pair.

    Every function works on every platform kind. On fully heterogeneous
    platforms the set is a {e superset} of the achievable periods (not
    every configuration is realisable by a mapping), but threshold
    searches over it remain exact: a monotone feasibility probe flips at
    an achievable — hence member — value, so the smallest feasible
    candidate is the true threshold. *)

val periods : Cost.t -> float array
(** Sorted, deduplicated cycle-times over every interval and candidate
    configuration: a complete (on fully heterogeneous platforms,
    superset) enumeration of the achievable periods for plain interval
    mappings. Built on first use, cached on the engine. *)

val deal_periods : Cost.t -> float array
(** The deal-replication variant: every plain candidate divided by every
    replication factor [1..p] — a superset of the periods achievable by
    {!Cost.deal_period} (round-robin deals). Built on first use, cached
    on the engine. *)

val of_values : float list -> float array
(** Sort and deduplicate an explicit candidate list (exact float
    equality). Raises [Invalid_argument] on NaN. *)

val mem : float array -> float -> bool
(** [mem candidates v] — binary search for exact membership in a sorted
    candidate array. *)

val ceiling : float array -> float -> float option
(** [ceiling candidates v] — the smallest candidate [>= v], or [None]
    when [v] exceeds them all. Used to snap relaxation lower bounds up
    onto the achievable grid. *)

val floor : float array -> float -> float option
(** [floor candidates v] — the largest candidate [<= v], or [None] when
    [v] is below them all. *)

(** Candidate sets that may stay implicit (DESIGN.md §11).

    At paper sizes a set is the materialised sorted array above —
    byte-identical behaviour, same engine cache. Past the materialisation
    cap, applications with {e uniform} deltas switch to a lazy lattice
    view: cycle-times are weakly monotone in the interval work sum at
    fixed configuration, so minimum, maximum, floor and ceiling are
    answered by O(n · |configs|) two-pointer sweeps over the implicit
    [(d, e, config)] lattice, each comparison evaluating the engine's
    own {!Cost.config_cycle} expression. Every answer is an attained set
    element, bit-identical to the value the materialised array would
    hold — {!Threshold.search_set} builds an exact web-scale binary
    search on top of exactly these four queries. *)
module Set : sig
  type t

  val of_engine : ?max_materialised:int -> Cost.t -> t
  (** The candidate-period set of an engine, on any platform kind.
      Materialised (via {!periods}, hence engine-cached) while
      [n(n+1)/2 · |configs| <= max_materialised] (default [2²²]); lazy
      above the cap when the application's deltas are all equal.
      Non-uniform deltas above the cap materialise anyway — the
      monotone structure the lattice view needs is absent (DESIGN.md
      §11). *)

  val of_array : float array -> t
  (** Wrap an explicitly materialised sorted candidate array (e.g.
      {!deal_periods}). *)

  val is_lazy : t -> bool

  val min_elt : t -> float option
  (** Smallest element; [None] only for an empty {!of_array}.
      O(n·|configs|) lazy, O(1) materialised. *)

  val max_elt : t -> float option

  val mem : t -> float -> bool
  (** Exact membership. *)

  val floor : t -> float -> float option
  (** Largest element [<= v]. *)

  val ceiling : t -> float -> float option
  (** Smallest element [>= v]. *)

  val force : t -> float array
  (** The materialised sorted array (enumerates a lazy set — test and
      paper-size use only). *)
end

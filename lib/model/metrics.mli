(** Cost model: period and latency of an interval mapping
    (paper §2, equations (1) and (2)).

    For a mapping into intervals [I_j = [d_j, e_j]] run on [alloc(j)]:

    {ul
    {- the {e cycle-time} of interval [j] is
       [δ_{d_j-1}/b_in + (Σ_{i∈I_j} w_i)/s_alloc(j) + δ_{e_j}/b_out];}
    {- the {e period} is the largest cycle-time (equation (1)); its inverse
       is the throughput;}
    {- the {e latency} charges, for each interval, its input communication
       and its computation, plus the final output [δ_n] (equation (2));
       inter-processor communications are paid once, on the receiving side.}}

    On a communication-homogeneous platform every [b_in]/[b_out] equals the
    common bandwidth [b], which recovers the paper's formulas verbatim. On
    a fully heterogeneous platform the boundary transfers use the actual
    link between the two enrolled processors, and the pipeline's external
    input/output use the processors' I/O bandwidth — the natural extension
    the paper leaves as future work.

    All functions raise [Invalid_argument] when the mapping does not match
    the application's stage count or references processors outside the
    platform.

    Evaluation is delegated to the shared {!Cost} engine ({!Cost.get});
    this module only keeps the historical signatures and diagnostics. *)

val cycle_time : Application.t -> Platform.t -> Mapping.t -> int -> float
(** [cycle_time app platform mapping j] is the cycle-time of interval [j]
    (0-based). *)

val period : Application.t -> Platform.t -> Mapping.t -> float
(** Equation (1): the largest interval cycle-time. *)

val bottleneck : Application.t -> Platform.t -> Mapping.t -> int
(** Index of an interval achieving the period (smallest index on ties). *)

val latency : Application.t -> Platform.t -> Mapping.t -> float
(** Equation (2). *)

type summary = Cost.summary = {
  period : float;
  latency : float;
  intervals : int;  (** number of enrolled processors *)
}

val summary : Application.t -> Platform.t -> Mapping.t -> summary
(** Both objectives in one traversal. *)

val pp_summary : Format.formatter -> summary -> unit

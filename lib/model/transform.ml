let coarsen ~factor app =
  if factor < 1 then invalid_arg "Transform.coarsen: factor must be >= 1";
  let n = Application.n app in
  let groups = (n + factor - 1) / factor in
  let last_of g = min (g * factor) n in
  let first_of g = ((g - 1) * factor) + 1 in
  let works =
    Array.init groups (fun g0 ->
        Application.work_sum app (first_of (g0 + 1)) (last_of (g0 + 1)))
  in
  let deltas =
    Array.init (groups + 1) (fun g ->
        if g = 0 then Application.delta app 0
        else Application.delta app (last_of g))
  in
  let labels =
    Array.init groups (fun g0 ->
        let g = g0 + 1 in
        String.concat "+"
          (List.init
             (last_of g - first_of g + 1)
             (fun i -> Application.label app (first_of g + i))))
  in
  Application.make ~labels ~deltas works

let refine_mapping ~factor ~n mapping =
  if factor < 1 then invalid_arg "Transform.refine_mapping: factor must be >= 1";
  let groups = (n + factor - 1) / factor in
  if Mapping.n mapping <> groups then
    invalid_arg "Transform.refine_mapping: mapping does not match the coarse size";
  let pairs =
    List.map
      (fun (iv, u) ->
        let first = ((Interval.first iv - 1) * factor) + 1 in
        let last = min (Interval.last iv * factor) n in
        (Interval.make ~first ~last, u))
      (Mapping.intervals mapping)
  in
  Mapping.make ~n pairs

let coarse_solve ~factor ~solve (inst : Instance.t) =
  let n = Application.n inst.app in
  let coarse =
    Instance.make ~id:inst.id ~seed:inst.seed (coarsen ~factor inst.app)
      inst.platform
  in
  Option.map (refine_mapping ~factor ~n) (solve coarse)

let scale ?(work = 1.) ?(data = 1.) app =
  if work <= 0. || data <= 0. then
    invalid_arg "Transform.scale: factors must be > 0";
  let works = Array.map (fun w -> w *. work) (Application.works app) in
  let deltas = Array.map (fun d -> d *. data) (Application.deltas app) in
  let labels =
    Array.init (Application.n app) (fun i -> Application.label app (i + 1))
  in
  Application.make ~labels ~deltas works

(* Metamorphic platform transformations (ROADMAP item 4, DESIGN.md §13):
   instance rewrites with known exact effects on the optima, used as
   scale-independent oracles by the registry-wide property tests. *)

let scale_rates ~factor platform = Platform.scale_rates ~factor platform

let drop_comm app =
  let n = Application.n app in
  let labels = Array.init n (fun i -> Application.label app (i + 1)) in
  Application.make ~labels ~deltas:(Array.make (n + 1) 0.) (Application.works app)

let comm_homogenise ~bandwidth platform =
  Platform.comm_homogeneous ~bandwidth (Platform.speeds platform)

(** Splitting heuristics for {e fully heterogeneous} platforms — the
    extension the paper lists as future work (§7: "It would be
    interesting to deal with fully heterogeneous platforms").

    On communication-homogeneous platforms an interval's cycle-time does
    not depend on its neighbours, which is what makes the paper's
    incremental splitting cheap. With per-link bandwidths that locality
    is gone: moving a piece to another processor changes the boundary
    transfer costs of the adjacent intervals too. These heuristics
    therefore re-evaluate candidates with the full
    {!Pipeline_model.Metrics} cost model (O(m) per candidate) and widen
    the candidate pool: the piece handed away may go to {e any} unused
    processor, not only the next fastest — on a heterogeneous network,
    a slightly slower machine with fat links to its neighbours often
    wins. Free processors are enumerated in {e comm-aware} order
    (DESIGN.md §13): ranked by the time the bottleneck interval would
    take on them — boundary input over the link from the upstream
    processor, compute at their speed, boundary output over the link
    downstream — so among candidates with exactly equal (period,
    latency) the one on the best-connected target wins. On a
    comm-homogeneous platform the rank reduces to effective speed.

    Both drivers start from the best single-processor mapping and split
    the current bottleneck interval greedily, like the paper's H1/H5
    pair. They accept any platform (on a communication-homogeneous one
    they behave like a generalised H1/H5 with free processor choice).

    Threshold searches over these heuristics are {e exact} on every
    platform kind: {!Pipeline_model.Candidates} builds the fully-het
    candidate family [(speed, boundary-in, boundary-out)] and
    {!Pipeline_model.Threshold.search_set} binary-searches it, replacing
    the ε-bisection these rows used before (DESIGN.md §13). *)

open Pipeline_model
open Pipeline_core

type select =
  | Min_period  (** smallest resulting period, ties by latency (mono) *)
  | Min_ratio   (** smallest latency increase per unit of period gained
                    (the paper's bi-criteria rule, on global values) *)

val minimise_latency_under_period :
  ?select:select -> Instance.t -> period:float -> Solution.t option
(** Split the bottleneck while the period exceeds the threshold
    (default selection [Min_period]). [None] when stuck above the
    threshold. *)

val minimise_period_under_latency :
  ?select:select -> Instance.t -> latency:float -> Solution.t option
(** Split while an accepted candidate strictly lowers the period and
    keeps the latency within budget. [None] when even the best
    single-processor mapping violates the budget.

    The four packaged heuristics (ids [het-sp-mono-p], [het-sp-bi-p],
    [het-sp-mono-l], [het-sp-bi-l]) live in the unified
    [Pipeline_registry] alongside every other stack's rows. *)

open Pipeline_model
open Pipeline_core

let threshold_met = Pipeline_util.Tol.meets

(* Best single-processor mapping by latency (on het platforms speed alone
   does not decide: I/O bandwidths matter). *)
let initial (inst : Instance.t) =
  let n = Application.n inst.app in
  let best = ref None in
  for u = 0 to Platform.p inst.platform - 1 do
    let sol = Solution.of_mapping inst (Mapping.single ~n ~proc:u) in
    match !best with
    | Some b when b.Solution.latency <= sol.Solution.latency -> ()
    | _ -> best := Some sol
  done;
  Option.get !best

let unused_processors (inst : Instance.t) mapping =
  let p = Platform.p inst.platform in
  List.filter (fun u -> not (Mapping.uses mapping u)) (List.init p Fun.id)

(* Comm-aware target ordering (ROADMAP item 3, the H1–H6-style
   extension; DESIGN.md §13): free processors are ranked by the time
   interval [j] would take if handed over whole — its input over the
   link from the upstream processor, its computation at the target's
   speed, its output over the link to the downstream processor (I/O
   bandwidth at the pipeline ends). Every candidate is still scored
   with the full cost model; the rank decides enumeration order, hence
   which candidate wins among exact (period, latency) ties. On a
   comm-homogeneous platform the rank reduces to effective speed, and
   with zero-size messages it is bandwidth-independent (the zero-comm
   collapse law of Transform relies on this). Ties keep processor-index
   order. *)
let ordered_targets (inst : Instance.t) mapping ~j free =
  match free with
  | [] | [ _ ] -> free
  | _ ->
    let app = inst.Instance.app and platform = inst.Instance.platform in
    let iv = Mapping.interval mapping j in
    let d = Interval.first iv and e = Interval.last iv in
    let m = Mapping.m mapping in
    let proxy u =
      let b_in =
        if j = 0 then Platform.io_bandwidth platform u
        else Platform.bandwidth platform (Mapping.proc mapping (j - 1)) u
      in
      let b_out =
        if j = m - 1 then Platform.io_bandwidth platform u
        else Platform.bandwidth platform u (Mapping.proc mapping (j + 1))
      in
      Application.delta app (d - 1) /. b_in
      +. (Application.work_sum app d e /. Platform.speed platform u)
      +. (Application.delta app e /. b_out)
    in
    List.map (fun u -> (proxy u, u)) free
    |> List.stable_sort (fun (a, _) (b, _) -> compare (a : float) b)
    |> List.map snd

(* All 2-way splits of interval [j]: every cut, both orientations, every
   unused processor (comm-aware order); scored with the full cost
   model. The returned list preserves enumeration order, so [pick]'s
   first-wins tie-break favours the comm-aware-best target. *)
let candidates (inst : Instance.t) (sol : Solution.t) ~j =
  let mapping = sol.Solution.mapping in
  let iv = Mapping.interval mapping j in
  let kept = Mapping.proc mapping j in
  let free = unused_processors inst mapping in
  if Interval.length iv < 2 || free = [] then []
  else begin
    let targets = ordered_targets inst mapping ~j free in
    let acc = ref [] in
    List.iter
      (fun c ->
        let left, right = Interval.split_at iv c in
        List.iter
          (fun u ->
            List.iter
              (fun parts ->
                let mapping' = Mapping.replace mapping ~j parts in
                acc := Solution.of_mapping inst mapping' :: !acc)
              [ [ (left, kept); (right, u) ]; [ (left, u); (right, kept) ] ])
          targets)
      (Interval.split_points iv);
    List.rev !acc
  end

type select = Min_period | Min_ratio

let better_period (a : Solution.t) (b : Solution.t) =
  match compare a.Solution.period b.Solution.period with
  | 0 -> a.Solution.latency < b.Solution.latency
  | c -> c < 0

(* Ratio rule on global objective values: latency paid per unit of
   period gained, relative to the current solution. *)
let ratio (current : Solution.t) (c : Solution.t) =
  (c.Solution.latency -. current.Solution.latency)
  /. (current.Solution.period -. c.Solution.period)

let better_ratio current (a : Solution.t) (b : Solution.t) =
  match compare (ratio current a) (ratio current b) with
  | 0 -> better_period a b
  | c -> c < 0

let pick select current = function
  | [] -> None
  | first :: rest ->
    let better =
      match select with
      | Min_period -> better_period
      | Min_ratio -> better_ratio current
    in
    Some (List.fold_left (fun acc c -> if better c acc then c else acc) first rest)

let bottleneck (inst : Instance.t) (sol : Solution.t) =
  Metrics.bottleneck inst.app inst.platform sol.Solution.mapping

let minimise_latency_under_period ?(select = Min_period) (inst : Instance.t)
    ~period =
  let rec refine (sol : Solution.t) =
    if threshold_met sol.Solution.period period then Some sol
    else begin
      let j = bottleneck inst sol in
      let improving =
        List.filter
          (fun (c : Solution.t) -> c.Solution.period < sol.Solution.period)
          (candidates inst sol ~j)
      in
      match pick select sol improving with
      | None -> None
      | Some best -> refine best
    end
  in
  refine (initial inst)

let minimise_period_under_latency ?(select = Min_period) (inst : Instance.t)
    ~latency =
  let rec refine (sol : Solution.t) =
    let j = bottleneck inst sol in
    let improving =
      List.filter
        (fun (c : Solution.t) ->
          c.Solution.period < sol.Solution.period
          && threshold_met c.Solution.latency latency)
        (candidates inst sol ~j)
    in
    match pick select sol improving with
    | None -> sol
    | Some best -> refine best
  in
  let sol = initial inst in
  if threshold_met sol.Solution.latency latency then Some (refine sol) else None

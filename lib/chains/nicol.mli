(** Nicol's exact algorithm for homogeneous chains-to-chains.

    A third, independently-derived exact solver (after {!Dp} and the
    candidate search of {!Exact}), following Nicol's probe-based scheme
    as described by Pinar & Aykanat (2004): walking left to right,
    processor [k] starting at element [i] binary-searches the smallest
    interval end [e] whose sum — used as a bound for the shared greedy
    {!Probe} over the remaining suffix — covers the rest of the chain
    with the remaining processors. Each such [sum(i..e)] is an
    achievable candidate bottleneck and the optimum is among them, so
    [O(p log n)] probes suffice — no ε-bisection. Each probe costs
    [O(p log n)]: the greedy walk binary-searches every cut and gives up
    past [p] intervals, and the tail maximum is a suffix-table lookup —
    [O(p² log² n)] overall, independent of the [O(n)] chain length after
    the prefix build. Every
    candidate is a {!Prefix.sum} value, so the test suite can check all
    three solvers agree bit-for-bit (DESIGN.md §9). *)

val solve : float array -> p:int -> float * Partition.t
(** Same contract as {!Dp.solve}. *)

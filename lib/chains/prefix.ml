type t = {
  prefix : float array; (* prefix.(k) = a_1 + … + a_k *)
  suffix_max : float array; (* suffix_max.(k) = max (0., a_k, …, a_n) *)
}

let make a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Prefix.make: empty chain";
  Array.iter
    (fun v ->
      if not (Float.is_finite v) || v < 0. then
        invalid_arg "Prefix.make: elements must be finite and >= 0")
    a;
  let prefix = Array.make (n + 1) 0. in
  for k = 1 to n do
    prefix.(k) <- prefix.(k - 1) +. a.(k - 1)
  done;
  (* Elements are read back as prefix differences everywhere (sums,
     candidates, probes); compute the maxima in the same arithmetic, or
     they can sit one ulp above every realisable interval sum and wrongly
     reject the optimal bound. [Float.max] over finite non-negative
     values is pure selection, so the right-to-left fold below agrees
     bit-for-bit with any left fold over the same elements. *)
  let suffix_max = Array.make (n + 2) 0. in
  for k = n downto 1 do
    suffix_max.(k) <- Float.max (prefix.(k) -. prefix.(k - 1)) suffix_max.(k + 1)
  done;
  { prefix; suffix_max }

let n t = Array.length t.prefix - 1

let element t i =
  if i < 1 || i > n t then invalid_arg "Prefix.element: out of range";
  t.prefix.(i) -. t.prefix.(i - 1)

let sum t d e =
  if d < 1 || e > n t then invalid_arg "Prefix.sum: out of range";
  if d > e then 0. else t.prefix.(e) -. t.prefix.(d - 1)

let total t = t.prefix.(n t)

let longest_fitting t ~from ~budget =
  if from < 1 || from > n t then invalid_arg "Prefix.longest_fitting: bad from";
  if budget < 0. then invalid_arg "Prefix.longest_fitting: negative budget";
  (* Find the largest e with prefix.(e) - prefix.(from-1) <= budget. The
     subtraction form matters: interval sums everywhere else (candidates,
     bottlenecks) are computed as prefix differences, and the additive
     form prefix.(e) <= prefix.(from-1) + budget can disagree by one ulp,
     breaking the exactness of the parametric search. *)
  let base = t.prefix.(from - 1) in
  let fits e = t.prefix.(e) -. base <= budget in
  let lo = ref (from - 1) and hi = ref (n t) in
  (* Invariant: fits !lo (prefix.(from-1) - base = 0 <= budget); prefix
     values are non-decreasing, so [fits] is monotone in [e]. *)
  if fits !hi then !hi
  else begin
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fits mid then lo := mid else hi := mid
    done;
    !lo
  end

let max_element t = t.suffix_max.(1)

let max_from t k =
  if k < 1 || k > n t then invalid_arg "Prefix.max_from: out of range";
  t.suffix_max.(k)

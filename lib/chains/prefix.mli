(** Prefix sums over a chain of non-negative elements.

    The chains-to-chains algorithms probe interval sums constantly; this
    module makes every [Σ a_d..a_e] an O(1) lookup and hosts the shared
    binary search "longest prefix whose sum fits under a budget" used by
    the greedy probes. Elements are 1-based ([a_1 … a_n]) to match the
    paper; the input array is the usual 0-based OCaml array. *)

type t

val make : float array -> t
(** Raises [Invalid_argument] if the array is empty or contains a negative
    or non-finite element. *)

val n : t -> int
(** Number of elements. *)

val element : t -> int -> float
(** [element t i] is [a_i], [1 ≤ i ≤ n]. *)

val sum : t -> int -> int -> float
(** [sum t d e] is [Σ_{i=d..e} a_i] for [1 ≤ d ≤ e ≤ n]; [0.] when
    [d > e] (empty interval inside the valid index range). *)

val total : t -> float

val longest_fitting : t -> from:int -> budget:float -> int
(** [longest_fitting t ~from ~budget] is the largest [e ≥ from - 1] such
    that [sum t from e ≤ budget] (so [from - 1] means even [a_from] alone
    overflows). O(log n) by binary search over the prefix table. Requires
    [1 ≤ from ≤ n] and [budget ≥ 0]. *)

val max_element : t -> float
(** Largest single element — a lower bound for any homogeneous bottleneck. *)

val max_from : t -> int -> float
(** [max_from t k] is [max (a_k, …, a_n)] (and [≥ 0.]), served O(1) from
    a suffix table built once in {!make} — the suffix analogue of
    {!max_element}, used by {!Probe} so that suffix probes ([from > 1])
    stay O(log n) instead of rescanning the tail. Requires
    [1 ≤ k ≤ n]. *)

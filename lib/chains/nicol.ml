(* Nicol's probe-based parametric scheme (Pinar & Aykanat 2004):
   processor k starting at element i binary-searches the smallest prefix
   end e whose sum, used as a bound, lets the greedy probe cover the
   rest of the chain with the remaining processors. That sum is an
   achievable candidate bottleneck; the optimum with a shorter first
   interval is realised further right, so the scan advances with one
   processor fewer. All feasibility questions go through the shared
   {!Probe} — the same implementation {!Exact} searches with. *)

let solve a ~p =
  if p < 1 then invalid_arg "Nicol.solve: p must be >= 1";
  let prefix = Prefix.make a in
  let n = Prefix.n prefix in
  let p = min p n in
  let best = ref (Prefix.total prefix) (* p = 1: one interval takes all *) in
  let fixed_max = ref 0. in
  let i = ref 1 in
  (try
     for k = 1 to p - 1 do
       let remaining = p - k in
       (* Smallest e with [e+1..n] coverable by [remaining] intervals
          under bound sum(i, e); e = n always qualifies (empty rest). *)
       let feasible_tail e =
         e >= n
         || Probe.feasible ~from:(e + 1) prefix ~p:remaining
              ~bound:(Prefix.sum prefix !i e)
       in
       let lo = ref !i and hi = ref n in
       while !lo < !hi do
         let mid = (!lo + !hi) / 2 in
         if feasible_tail mid then hi := mid else lo := mid + 1
       done;
       let e = !lo in
       let candidate = Float.max !fixed_max (Prefix.sum prefix !i e) in
       if candidate < !best then best := candidate;
       (* Continue as if processor k took the strict prefix [i..e-1]:
          any better bottleneck keeps the first interval under sum(i,e). *)
       if e = !i then raise Exit (* element i alone is a lower bound: done *)
       else begin
         fixed_max := Float.max !fixed_max (Prefix.sum prefix !i (e - 1));
         i := e
       end
     done;
     (* Last processor takes everything still unassigned. *)
     let final = Float.max !fixed_max (Prefix.sum prefix !i n) in
     if final < !best then best := final
   with Exit -> ());
  match Probe.partition prefix ~p ~bound:!best with
  | Some partition -> (!best, partition)
  | None -> assert false (* best was probed (or is trivially) feasible *)

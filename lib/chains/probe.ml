let greedy_cuts ?(from = 1) ?cap prefix ~bound =
  (* Returns the cut positions of the leftmost-greedy partition of
     [from..n], or None when some single element exceeds the bound or
     when more than [cap] intervals would be needed. *)
  let n = Prefix.n prefix in
  if from < 1 || from > n then invalid_arg "Probe: from out of range";
  (match cap with
  | Some c when c < 1 -> invalid_arg "Probe: cap must be >= 1"
  | _ -> ());
  if Prefix.max_from prefix from > bound then None
  else begin
    (* Intervals [1..count-1] are finished (their cuts in [acc], newest
       first); interval [count] starts at [start]. The cap check makes a
       probe O(cap log n): the walk gives up as soon as the greedy — and
       therefore minimal — interval count provably exceeds the cap,
       instead of cutting the whole tail first and counting afterwards. *)
    let rec walk start count acc =
      if start > n then Some (List.rev acc)
      else if (match cap with Some c -> count > c | None -> false) then None
      else
        let e = Prefix.longest_fitting prefix ~from:start ~budget:bound in
        (* max_from <= bound guarantees e >= start. *)
        if e >= n then Some (List.rev acc) else walk (e + 1) (count + 1) (e :: acc)
    in
    walk from 1 []
  end

let min_intervals ?from ?cap prefix ~bound =
  if bound < 0. then None
  else
    match greedy_cuts ?from ?cap prefix ~bound with
    | None -> None
    | Some cuts -> Some (List.length cuts + 1)

let feasible ?from prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.feasible: p must be >= 1";
  match min_intervals ?from ~cap:p prefix ~bound with
  | None -> false
  | Some m -> m <= p

let partition prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.partition: p must be >= 1";
  match greedy_cuts ~cap:p prefix ~bound with
  | None -> None
  | Some cuts ->
    if List.length cuts + 1 <= p then
      Some (Partition.of_cuts ~n:(Prefix.n prefix) cuts)
    else None

let greedy_cuts ?(from = 1) prefix ~bound =
  (* Returns the cut positions of the leftmost-greedy partition of
     [from..n], or None when some single element exceeds the bound. *)
  let n = Prefix.n prefix in
  if from < 1 || from > n then invalid_arg "Probe: from out of range";
  let rec max_tail_element k acc =
    if k > n then acc else max_tail_element (k + 1) (Float.max acc (Prefix.element prefix k))
  in
  let max_element =
    if from = 1 then Prefix.max_element prefix else max_tail_element from 0.
  in
  if max_element > bound then None
  else begin
    let rec walk start acc =
      if start > n then List.rev acc
      else
        let e = Prefix.longest_fitting prefix ~from:start ~budget:bound in
        (* max_element <= bound guarantees e >= start. *)
        if e >= n then List.rev acc else walk (e + 1) (e :: acc)
    in
    Some (walk from [])
  end

let min_intervals ?from prefix ~bound =
  if bound < 0. then None
  else
    match greedy_cuts ?from prefix ~bound with
    | None -> None
    | Some cuts -> Some (List.length cuts + 1)

let feasible ?from prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.feasible: p must be >= 1";
  match min_intervals ?from prefix ~bound with
  | None -> false
  | Some m -> m <= p

let partition prefix ~p ~bound =
  if p < 1 then invalid_arg "Probe.partition: p must be >= 1";
  match greedy_cuts prefix ~bound with
  | None -> None
  | Some cuts ->
    if List.length cuts + 1 <= p then
      Some (Partition.of_cuts ~n:(Prefix.n prefix) cuts)
    else None

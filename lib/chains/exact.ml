let candidates prefix =
  let n = Prefix.n prefix in
  let all = ref [] in
  for d = 1 to n do
    for e = d to n do
      all := Prefix.sum prefix d e :: !all
    done
  done;
  Pipeline_model.Candidates.of_values !all

let solve a ~p =
  if p < 1 then invalid_arg "Exact.solve: p must be >= 1";
  let prefix = Prefix.make a in
  (* Exact search for the smallest feasible candidate. The largest
     candidate (the total sum) is always feasible, and the winning
     partition comes out of the search memo — no final re-probe. *)
  match
    Pipeline_model.Threshold.search ~candidates:(candidates prefix)
      ~probe:(fun bound -> Probe.partition prefix ~p ~bound)
      ()
  with
  | Some found ->
    (found.Pipeline_model.Threshold.threshold,
     found.Pipeline_model.Threshold.payload)
  | None -> assert false (* the total sum is always feasible *)

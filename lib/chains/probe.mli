(** Greedy feasibility probe for the homogeneous chains-to-chains problem.

    [PROBE(B)]: can [\[from..n\]] be partitioned into at most [p]
    consecutive intervals with every interval sum at most [B]? Because
    elements are non-negative, cutting each interval as late as possible
    is optimal, so the greedy answer is exact. This is the classic
    building block of the parametric-search algorithms surveyed by Pinar
    & Aykanat (2004) — and the {e single} probe implementation behind
    {!Exact}, {!Nicol}, {!Approx} and {!Bounds} (DESIGN.md §9).

    [from] defaults to 1 (the whole chain); suffix probes ([from > 1])
    serve {!Nicol}'s recursive scheme. *)

val feasible : ?from:int -> Prefix.t -> p:int -> bound:float -> bool
(** O(p log n): the tail maximum is an O(1) suffix-table lookup
    ({!Prefix.max_from}) and the greedy walk aborts after [p] intervals,
    so an infeasible probe never cuts the whole tail. [p ≥ 1] and
    [1 ≤ from ≤ n] required. *)

val partition : Prefix.t -> p:int -> bound:float -> Partition.t option
(** The leftmost-greedy witness partition of the whole chain (at most
    [p] intervals), or [None] when infeasible. The witness may use fewer
    than [p] intervals. *)

val min_intervals : ?from:int -> ?cap:int -> Prefix.t -> bound:float -> int option
(** Smallest number of intervals achieving bottleneck [≤ bound];
    [None] when a single element already exceeds [bound], or when the
    count would exceed [cap] ([cap ≥ 1]; the walk stops early, keeping
    the probe O(cap log n)). *)

(** Failure thresholds (paper Table 1).

    The paper defines the failure threshold of a heuristic as the largest
    fixed period (resp. latency) for which it cannot find a solution —
    i.e. the boundary of its feasible region. For period-fixed rows on
    comm-homogeneous platforms the boundary is an achievable period, so
    it is located {e exactly} by {!Pipeline_model.Threshold.search} over
    the finite candidate set; latency-fixed rows (and stacks off the
    plain candidate grid) use the adaptive bisection of
    {!Pipeline_model.Threshold.bisect} (DESIGN.md §9). The reported value
    averages the per-instance boundaries over the batch, matching the
    table's per-(experiment, n) cells. *)

open Pipeline_model
module Registry = Pipeline_registry

val instance_threshold : ?iterations:int -> Registry.info -> Instance.t -> float
(** The feasibility boundary of one heuristic on one instance: the exact
    smallest succeeding candidate for period-fixed rows, the adaptive
    bisection's bracket otherwise ([iterations], default 40, caps the
    bisection probes; the candidate search needs no cap). For
    latency-fixed heuristics this converges to the optimal latency — H5
    and H6 necessarily tie, which is exactly the paper's "surprising"
    observation. *)

val average_threshold :
  ?iterations:int -> Registry.info -> Instance.t list -> float
(** Batch average of {!instance_threshold}. *)

val max_threshold : ?iterations:int -> Registry.info -> Instance.t list -> float
(** Worst per-instance boundary over the batch — the alternative reading
    of the paper's "largest value for which the heuristic was not able to
    find a solution" (cf. EXPERIMENTS.md). *)

type aggregate = Mean | Max

type table = {
  experiment : Config.experiment;
  p : int;
  ns : int list;                         (** columns *)
  rows : (string * float list) list;     (** (table name, one value per n) *)
}

val table :
  ?aggregate:aggregate ->
  ?pairs:int -> ?seed:int -> Config.experiment -> p:int -> ns:int list -> table
(** The full Table 1 block for one experiment (defaults: [Mean] aggregate,
    50 pairs, seed 2007). *)

val render : table -> string
(** Aligned text rendering. *)

val render_markdown : table -> string

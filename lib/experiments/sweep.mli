(** Threshold sweeps: one heuristic, one batch of instances, a common
    grid of fixed periods (or latencies), averaged into a plot series.

    Reproduces the paper's figures: every figure is a latency-versus-
    period plot with one curve per heuristic. For a period-fixed
    heuristic the abscissa is the fixed period and the ordinate the
    average achieved latency; for a latency-fixed heuristic the ordinate
    is the fixed latency and the abscissa the average achieved period.
    Instances on which the heuristic fails at a given threshold do not
    contribute to that point (the paper's failure-threshold narrative);
    a point with no successful instance is dropped. *)

open Pipeline_model
module Registry = Pipeline_registry

val period_lower_bound : Instance.t -> float
(** A cheap valid lower bound on any mapping's period: the largest
    single-stage compute time on the fastest processor, combined with the
    pipeline's unavoidable boundary communications. Used only to anchor
    sweep grids. *)

val period_bounds : Instance.t list -> float * float
(** Common grid range for a batch: from the smallest lower bound to the
    largest single-processor period (always feasible). *)

val latency_bounds : Instance.t list -> float * float
(** From the smallest optimal latency to the largest latency reached by
    unconstrained splitting (the most any latency budget can use). *)

val grid : lo:float -> hi:float -> points:int -> float list
(** Evenly spaced inclusive grid. *)

val run :
  Registry.info -> Instance.t list -> thresholds:float list -> Pipeline_util.Series.t
(** The averaged series of one heuristic over the batch, labelled with
    the heuristic's paper name. *)

val success_rate : Registry.info -> Instance.t list -> threshold:float -> float
(** Fraction of the batch on which the heuristic finds a solution. *)

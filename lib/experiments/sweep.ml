open Pipeline_model
module Registry = Pipeline_registry
module Series = Pipeline_util.Series

let period_lower_bound (inst : Instance.t) =
  Cost.period_lower_bound (Cost.get inst.app inst.platform)

let fold_bounds f instances =
  match
    Array.to_list (Pipeline_util.Pool.map f (Array.of_list instances))
  with
  | [] -> invalid_arg "Sweep: empty batch"
  | x :: xs ->
    List.fold_left
      (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
      x xs

let period_bounds instances =
  fold_bounds
    (fun inst -> (period_lower_bound inst, Instance.single_proc_period inst))
    instances

let latency_bounds instances =
  fold_bounds
    (fun inst ->
      let lo = Instance.optimal_latency inst in
      (* Unconstrained splitting shows how much latency a budget can
         possibly use; beyond that the extra budget is idle. *)
      let hi =
        match Pipeline_core.Sp_mono_l.solve inst ~latency:infinity with
        | Some sol -> Float.max lo sol.Pipeline_core.Solution.latency
        | None -> lo
      in
      (lo, hi))
    instances

let grid ~lo ~hi ~points =
  if points < 2 || hi <= lo then [ lo ]
  else
    List.init points (fun i ->
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1)))

let c_solves =
  Obs.Counter.make ~doc:"heuristic solves issued by experiment sweeps"
    "experiments.solves"

let run (info : Registry.info) instances ~thresholds =
  let batch = Array.of_list instances in
  let point threshold =
    Obs.Counter.add c_solves (Array.length batch);
    (* The per-pair loop: each solve is a pure function of its instance,
       so the pairs fan out across the domain pool; the filter keeps the
       batch order, making the average's summation order (and thus the
       plotted point) independent of the parallelism degree. *)
    let outcomes =
      List.filter_map Fun.id
        (Array.to_list
           (Pipeline_util.Pool.map (fun inst -> info.solve inst ~threshold) batch))
    in
    match outcomes with
    | [] -> None
    | _ ->
      let count = float_of_int (List.length outcomes) in
      let avg f = List.fold_left (fun acc s -> acc +. f s) 0. outcomes /. count in
      let avg_period = avg (fun (o : Registry.outcome) -> o.period) in
      let avg_latency = avg (fun (o : Registry.outcome) -> o.latency) in
      (* Latency-versus-period plot: the fixed criterion sits on its own
         axis, the other axis shows the averaged achievement. *)
      (match info.kind with
      | Registry.Period_fixed -> Some (threshold, avg_latency)
      | Registry.Latency_fixed -> Some (avg_period, threshold))
  in
  Series.make ~label:info.paper_name (List.filter_map point thresholds)

let success_rate (info : Registry.info) instances ~threshold =
  Obs.Counter.add c_solves (List.length instances);
  let solved =
    Pipeline_util.Pool.map
      (fun inst -> info.solve inst ~threshold <> None)
      (Array.of_list instances)
  in
  let successes = Array.fold_left (fun n ok -> if ok then n + 1 else n) 0 solved in
  float_of_int successes /. float_of_int (List.length instances)

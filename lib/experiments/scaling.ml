open Pipeline_model
module Rng = Pipeline_util.Rng
module Table = Pipeline_util.Table

(* The E6 web-scale ladder (DESIGN.md §11): one deterministic instance
   per (n, p) size, solved by the three stacks whose complexity the
   tentpole rewrites bound — Nicol's chains solver, the exact lazy
   candidate search, and the H1 splitting heuristic. Everything here is
   sequential and counter-hygienic: the only Obs counter the section
   moves is model.threshold.lattice_probes, so the golden metrics of the
   paper-sized sections stay byte-identical at any --jobs. Wall-clocks
   come from the caller-supplied [clock] and never enter the CSV. *)

type row = {
  n : int;
  p : int;
  nicol_bottleneck : float;  (* exact chains bottleneck over the works *)
  exact_period : float;  (* exact min period, all-fastest relaxation *)
  exact_probes : int;  (* feasibility probes of the lattice search *)
  exact_intervals : int;  (* intervals of the winning partition *)
  h1_factor : float;  (* threshold = factor × exact_period (0 = fallback) *)
  h1_period : float;
  h1_latency : float;
  h1_intervals : int;
}

type timings = {
  build_s : float;
  nicol_s : float;
  exact_s : float;
  h1_s : float;
}

type measurement = { row : row; timings : timings }

let ladder = function
  | `Smoke -> [ (50, 4); (200, 16) ]
  | `Quick -> [ (1_000, 32); (5_000, 64); (20_000, 200) ]
  | `Full -> [ (5_000, 100); (20_000, 400); (50_000, 1_000) ]

let instance ~seed ~n ~p =
  (* Same stream-derivation idiom as Workload.instance: one independent
     SplitMix64 stream per (seed, family, n, p). *)
  let tag = Hashtbl.hash (seed, "scaling-e6", n, p) in
  let rng = Rng.create tag in
  let app = App_generator.generate rng (App_generator.e6 ~n) in
  let platform = Platform_generator.web_scale rng ~p in
  Instance.make ~id:0 ~seed:tag app platform

(* Exact minimum period of the all-fastest relaxation (every processor
   at the platform's top speed): the greedy probe binary-searches each
   interval's furthest feasible end — cycle-times are monotone in the
   end for uniform deltas — so one probe is O(p log n), wrapped in the
   exact lattice search of Threshold.search_set. The full candidate set
   is a superset of the relaxation's achievable periods, and the
   smallest feasible candidate is attained by the greedy witness, so the
   search lands exactly on the relaxation optimum. *)
let exact_relaxed_min_period cost ~p =
  let app = Cost.application cost in
  let platform = Cost.platform cost in
  let n = Application.n app in
  let u = Platform.fastest platform in
  let set = Candidates.Set.of_engine ~max_materialised:0 cost in
  let probe t =
    let rec walk d count =
      if d > n then Some count
      else if count = p then None
      else if Cost.cycle cost ~d ~e:d ~u > t then None
      else if Cost.cycle cost ~d ~e:n ~u <= t then Some (count + 1)
      else begin
        let lo = ref d and hi = ref n in
        (* Invariant: cycle(d, lo) <= t < cycle(d, hi). *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if Cost.cycle cost ~d ~e:mid ~u <= t then lo := mid else hi := mid
        done;
        walk (!lo + 1) (count + 1)
      end
    in
    walk 1 0
  in
  match Threshold.search_set ~set ~probe () with
  | Some found ->
    (found.Threshold.threshold, found.Threshold.payload, found.Threshold.probes)
  | None -> assert false (* the whole chain on one processor is feasible *)

(* H1 under a deterministic threshold ladder: generous multiples of the
   relaxation optimum, then the always-feasible single-processor period
   (factor 0 marks the fallback in the CSV). *)
let h1_factors = [ 1.5; 2.; 4. ]

let run_h1 (inst : Instance.t) ~exact_period =
  let try_at factor period =
    match Pipeline_core.Sp_mono_p.solve inst ~period with
    | Some sol -> Some (factor, sol)
    | None -> None
  in
  let rec first = function
    | [] -> try_at 0. (Instance.single_proc_period inst)
    | f :: rest -> (
      match try_at f (exact_period *. f) with
      | Some _ as hit -> hit
      | None -> first rest)
  in
  match first h1_factors with
  | Some (factor, sol) -> (factor, sol)
  | None -> assert false (* the single-processor threshold always holds *)

let measure ?(clock = fun () -> 0.) ~seed (n, p) =
  let inst = instance ~seed ~n ~p in
  let t0 = clock () in
  let cost = Cost.get inst.app inst.platform in
  let t1 = clock () in
  let nicol_bottleneck, _partition =
    Chains.Nicol.solve (Application.works inst.app) ~p
  in
  let t2 = clock () in
  let exact_period, exact_intervals, exact_probes =
    exact_relaxed_min_period cost ~p
  in
  let t3 = clock () in
  let h1_factor, sol = run_h1 inst ~exact_period in
  let t4 = clock () in
  {
    row =
      {
        n;
        p;
        nicol_bottleneck;
        exact_period;
        exact_probes;
        exact_intervals;
        h1_factor;
        h1_period = sol.Pipeline_core.Solution.period;
        h1_latency = sol.Pipeline_core.Solution.latency;
        h1_intervals = Mapping.m sol.Pipeline_core.Solution.mapping;
      };
    timings =
      {
        build_s = t1 -. t0;
        nicol_s = t2 -. t1;
        exact_s = t3 -. t2;
        h1_s = t4 -. t3;
      };
  }

let run ?clock ?(seed = 2007) sizes = List.map (measure ?clock ~seed) sizes

let header =
  [
    "n"; "p"; "nicol bottleneck"; "exact period"; "exact probes";
    "exact intervals"; "h1 factor"; "h1 period"; "h1 latency"; "h1 intervals";
  ]

let cells (r : row) =
  [
    string_of_int r.n;
    string_of_int r.p;
    Printf.sprintf "%.6f" r.nicol_bottleneck;
    Printf.sprintf "%.6f" r.exact_period;
    string_of_int r.exact_probes;
    string_of_int r.exact_intervals;
    Printf.sprintf "%.1f" r.h1_factor;
    Printf.sprintf "%.6f" r.h1_period;
    Printf.sprintf "%.6f" r.h1_latency;
    string_of_int r.h1_intervals;
  ]

let to_csv measurements =
  Pipeline_util.Csv.csv_of_rows ~header
    (List.map (fun m -> cells m.row) measurements)

let write ~dir measurements =
  let path = Filename.concat dir "scaling-e6.csv" in
  Pipeline_util.Csv.to_file path (to_csv measurements);
  [ path ]

(* ------------------------------------------------------------------ *)
(* The exact rung: Branch_bound on a paper-style application           *)
(* ------------------------------------------------------------------ *)

(* One rung per (n, p) of the anytime branch-and-bound — the solver the
   task-tree rewrite parallelises (DESIGN.md §14). Sizes sit past the
   subset-DP's p <= 16 ceiling, where speed symmetry plus the shared
   incumbent are what keep the search tractable. Everything in the CSV
   is deterministic at any --jobs: the wave schedule fixes the node and
   prune counts, not domain timing. *)

type bnb_row = {
  bnb_n : int;
  bnb_p : int;
  bnb_period : float;
  bnb_latency : float;
  bnb_nodes : int;
  bnb_proven : bool;
}

type bnb_measurement = { bnb_row : bnb_row; bnb_s : float }

let bnb_ladder = function
  | `Smoke -> [ (8, 40) ]
  | `Quick -> [ (12, 100) ]
  | `Full -> [ (12, 100); (14, 200) ]

let bnb_budget = function
  | `Smoke -> 50_000
  | `Quick -> 500_000
  | `Full -> 1_000_000

let bnb_instance ~seed ~n ~p =
  let tag = Hashtbl.hash (seed, "scaling-bnb", n, p) in
  let rng = Rng.create tag in
  let app = App_generator.generate rng (App_generator.e2 ~n) in
  let platform = Platform_generator.comm_homogeneous rng ~p in
  Instance.make ~id:0 ~seed:tag app platform

let bnb_measure ?(clock = fun () -> 0.) ?(budget = 1_000_000) ~seed (n, p) =
  let inst = bnb_instance ~seed ~n ~p in
  let t0 = clock () in
  let r = Pipeline_optimal.Branch_bound.min_period ~node_budget:budget inst in
  let t1 = clock () in
  {
    bnb_row =
      {
        bnb_n = n;
        bnb_p = p;
        bnb_period = r.Pipeline_optimal.Branch_bound.solution.Pipeline_core.Solution.period;
        bnb_latency = r.Pipeline_optimal.Branch_bound.solution.Pipeline_core.Solution.latency;
        bnb_nodes = r.Pipeline_optimal.Branch_bound.nodes;
        bnb_proven = r.Pipeline_optimal.Branch_bound.proven_optimal;
      };
    bnb_s = t1 -. t0;
  }

let bnb_run ?clock ?budget ?(seed = 2007) sizes =
  List.map (bnb_measure ?clock ?budget ~seed) sizes

let bnb_header = [ "n"; "p"; "period"; "latency"; "nodes"; "proven" ]

let bnb_cells (r : bnb_row) =
  [
    string_of_int r.bnb_n;
    string_of_int r.bnb_p;
    Printf.sprintf "%.6f" r.bnb_period;
    Printf.sprintf "%.6f" r.bnb_latency;
    string_of_int r.bnb_nodes;
    (if r.bnb_proven then "1" else "0");
  ]

let bnb_to_csv measurements =
  Pipeline_util.Csv.csv_of_rows ~header:bnb_header
    (List.map (fun m -> bnb_cells m.bnb_row) measurements)

let bnb_write ~dir measurements =
  let path = Filename.concat dir "scaling-bnb.csv" in
  Pipeline_util.Csv.to_file path (bnb_to_csv measurements);
  [ path ]

let bnb_render measurements =
  let header = bnb_header @ [ "bnb s" ] in
  let rows =
    List.map
      (fun m -> bnb_cells m.bnb_row @ [ Printf.sprintf "%.3f" m.bnb_s ])
      measurements
  in
  Table.render (header :: rows)

(* Human-readable table with the (non-deterministic) wall-clocks — for
   stdout and EXPERIMENTS.md, never for golden artefacts. *)
let render measurements =
  let header = header @ [ "build s"; "nicol s"; "exact s"; "h1 s" ] in
  let rows =
    List.map
      (fun m ->
        cells m.row
        @ [
            Printf.sprintf "%.3f" m.timings.build_s;
            Printf.sprintf "%.3f" m.timings.nicol_s;
            Printf.sprintf "%.3f" m.timings.exact_s;
            Printf.sprintf "%.3f" m.timings.h1_s;
          ])
      measurements
  in
  Table.render (header :: rows)

(** The E6 web-scale ladder (DESIGN.md §11).

    One deterministic instance per [(n, p)] size — E6 application
    ({!App_generator.e6}, uniform deltas) on a tiered
    {!Platform_generator.web_scale} platform — solved by the three
    stacks whose asymptotics the web-scale rewrites bound:

    {ul
    {- {!Chains.Nicol} on the stage weights (exact chains-to-chains
       bottleneck, O(p² log² n) probes);}
    {- the exact minimum period of the all-fastest relaxation, by
       {!Threshold.search_set} over the {e lazy} candidate lattice with
       an O(p log n) greedy probe — the web-scale form of the paper's
       binary search over achievable periods;}
    {- the H1 splitting heuristic ({!Pipeline_core.Sp_mono_p}) under a
       deterministic threshold ladder of multiples of the relaxation
       optimum.}}

    The section is sequential and counter-hygienic: only the
    [model.threshold.lattice_probes] counter moves, so every paper-sized
    golden metric stays byte-identical at any [--jobs]. The CSV contains
    only deterministic values (objectives, probe and interval counts);
    wall-clocks come from the caller's [clock] and appear only in
    {!render} / the bench's perf summary. *)

type row = {
  n : int;
  p : int;
  nicol_bottleneck : float;
  exact_period : float;
  exact_probes : int;
  exact_intervals : int;
  h1_factor : float;
      (** threshold multiplier over [exact_period]; [0.] marks the
          single-processor fallback *)
  h1_period : float;
  h1_latency : float;
  h1_intervals : int;
}

type timings = {
  build_s : float;  (** cost-engine construction *)
  nicol_s : float;
  exact_s : float;
  h1_s : float;
}

type measurement = { row : row; timings : timings }

val ladder : [ `Smoke | `Quick | `Full ] -> (int * int) list
(** The [(n, p)] sizes per bench mode; [`Full] tops out at
    [50 000 × 1 000]. *)

val instance : seed:int -> n:int -> p:int -> Pipeline_model.Instance.t
(** The deterministic E6 instance of one ladder rung (stream derived
    from [(seed, "scaling-e6", n, p)], Workload-style). *)

val exact_relaxed_min_period :
  Pipeline_model.Cost.t -> p:int -> float * int * int
(** [(period, intervals, probes)] — exact minimum period over interval
    mappings onto [p] processors at the platform's fastest speed, via
    the lazy lattice search. Requires uniform deltas (E6). *)

val run :
  ?clock:(unit -> float) -> ?seed:int -> (int * int) list -> measurement list
(** Solve every ladder rung in sequence. [clock] defaults to a constant
    (timings all zero) so library users stay Unix-free; the bench passes
    a real clock. [seed] defaults to 2007. *)

val to_csv : measurement list -> string
(** Deterministic rows only — golden-diffable at any [--jobs]. *)

val write : dir:string -> measurement list -> string list
(** Write [scaling-e6.csv] under [dir]; returns the paths written. *)

val render : measurement list -> string
(** Table with wall-clock columns appended (stdout / EXPERIMENTS.md
    use only). *)

(** {1 The exact rung}

    {!Pipeline_optimal.Branch_bound} on a paper-style E2 application over
    a comm-homogeneous platform, at sizes past the subset-DP's [p ≤ 16]
    ceiling — the solver the deterministic task-tree rewrite parallelises
    (DESIGN.md §14). The CSV rows (objective, node count, proven flag)
    are bit-identical at any [--jobs]: the synchronous wave schedule — not
    domain timing — decides every pruning bound. *)

type bnb_row = {
  bnb_n : int;
  bnb_p : int;
  bnb_period : float;
  bnb_latency : float;
  bnb_nodes : int;  (** deterministic: fixed by the wave schedule *)
  bnb_proven : bool;  (** false when the node budget ran out *)
}

type bnb_measurement = { bnb_row : bnb_row; bnb_s : float }

val bnb_ladder : [ `Smoke | `Quick | `Full ] -> (int * int) list
val bnb_budget : [ `Smoke | `Quick | `Full ] -> int

val bnb_instance : seed:int -> n:int -> p:int -> Pipeline_model.Instance.t
(** Stream derived from [(seed, "scaling-bnb", n, p)], Workload-style. *)

val bnb_run :
  ?clock:(unit -> float) ->
  ?budget:int ->
  ?seed:int ->
  (int * int) list ->
  bnb_measurement list

val bnb_to_csv : bnb_measurement list -> string
val bnb_write : dir:string -> bnb_measurement list -> string list
(** Write [scaling-bnb.csv] under [dir]. *)

val bnb_render : bnb_measurement list -> string

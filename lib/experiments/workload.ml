open Pipeline_model
module Rng = Pipeline_util.Rng

let instance (setup : Config.setup) i =
  if i < 0 || i >= setup.pairs then invalid_arg "Workload.instance: out of range";
  (* Derive an independent stream per (seed, experiment, n, p, i). *)
  let tag =
    Hashtbl.hash
      ( setup.seed,
        Config.experiment_name setup.experiment,
        setup.n,
        setup.p,
        i )
  in
  let rng = Rng.create tag in
  let app = App_generator.generate rng (Config.app_spec setup.experiment ~n:setup.n) in
  let platform =
    Platform_generator.comm_homogeneous ~bandwidth:setup.bandwidth rng ~p:setup.p
  in
  Instance.make ~id:i ~seed:tag app platform

let instances (setup : Config.setup) =
  (* Per-pair generation is embarrassingly parallel: every pair owns the
     stream derived from its (seed, experiment, n, p, i) tag, so no RNG
     state crosses task boundaries. *)
  Array.to_list
    (Pipeline_util.Pool.map (instance setup) (Array.init setup.pairs Fun.id))

open Pipeline_model
module Series = Pipeline_util.Series
module Rng = Pipeline_util.Rng

let instance ~seed ~n ~p i =
  let tag = Hashtbl.hash (seed, "E5", n, p, i) in
  let rng = Rng.create tag in
  let app = App_generator.generate rng (App_generator.e2 ~n) in
  let platform = Platform_generator.fully_heterogeneous rng ~p in
  Instance.make ~id:i ~seed:tag app platform

let instances ?(pairs = 50) ?(seed = 2007) ~n p =
  (* Per-pair generation: each pair owns the stream derived from its
     (seed, n, p, index) tag, so generation order is irrelevant. *)
  Array.to_list
    (Pipeline_util.Pool.map (instance ~seed ~n ~p)
       (Array.init pairs Fun.id))

(* Grid anchors valid on any platform class. *)
let period_bounds batch =
  let bounds inst =
    let app = inst.Instance.app and platform = inst.Instance.platform in
    let s_max = Platform.speed platform (Platform.fastest platform) in
    let lo = ref 0. in
    for k = 1 to Application.n app do
      lo := Float.max !lo (Application.work app k /. s_max)
    done;
    (* The best single-processor mapping always succeeds. *)
    let single = Pipeline_optimal.Latency.solve inst in
    (!lo, single.Pipeline_core.Solution.period)
  in
  Array.fold_left
    (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
    (infinity, neg_infinity)
    (Pipeline_util.Pool.map bounds (Array.of_list batch))

let latency_bounds batch =
  let bounds inst =
    let optimal =
      (Pipeline_optimal.Latency.solve inst).Pipeline_core.Solution.latency
    in
    let unconstrained =
      match
        Pipeline_het.Het_heuristics.minimise_period_under_latency inst
          ~latency:infinity
      with
      | Some sol -> Float.max optimal sol.Pipeline_core.Solution.latency
      | None -> optimal
    in
    (optimal, unconstrained)
  in
  Array.fold_left
    (fun (lo, hi) (optimal, unconstrained) ->
      (Float.min lo optimal, Float.max hi unconstrained))
    (infinity, neg_infinity)
    (Pipeline_util.Pool.map bounds (Array.of_list batch))

let baseline_point batch =
  let sols =
    List.map (fun inst -> Pipeline_core.Baseline.balanced_chains inst) batch
  in
  let avg f =
    List.fold_left (fun acc s -> acc +. f s) 0. sols
    /. float_of_int (List.length sols)
  in
  Series.make ~label:"balanced chains (baseline)"
    [
      ( avg (fun s -> s.Pipeline_core.Solution.period),
        avg (fun s -> s.Pipeline_core.Solution.latency) );
    ]

let figure ?(pairs = 50) ?(sweep_points = 15) ?(seed = 2007) ~n p =
  let batch = instances ~pairs ~seed ~n p in
  let period_lo, period_hi = period_bounds batch in
  let latency_lo, latency_hi = latency_bounds batch in
  let series =
    List.map
      (fun (info : Pipeline_registry.info) ->
        let lo, hi =
          match info.Pipeline_registry.kind with
          | Pipeline_registry.Period_fixed -> (period_lo, period_hi)
          | Pipeline_registry.Latency_fixed -> (latency_lo, latency_hi)
        in
        let thresholds = Sweep.grid ~lo ~hi ~points:sweep_points in
        Sweep.run info batch ~thresholds)
      Pipeline_registry.het
  in
  {
    Campaign.label = Printf.sprintf "Figure E5 (n=%d, p=%d)" n p;
    setup = Config.default_setup ~pairs ~sweep_points ~seed Config.E2 ~n ~p;
    series = series @ [ baseline_point batch ];
  }

open Pipeline_model
module Series = Pipeline_util.Series
module Rng = Pipeline_util.Rng
module Table = Pipeline_util.Table

(* Counters of the exact het threshold machinery (DESIGN.md §13). New
   names on purpose: the golden-gated metrics dump pins the historical
   counters, so the het table must only move rows of its own. *)
let c_threshold_probes =
  Obs.Counter.make
    ~doc:"solver feasibility probes in Het_campaign.instance_threshold"
    "experiments.het.threshold_probes"

let c_search_probes =
  Obs.Counter.make
    ~doc:
      "candidate/bisection probes issued by het threshold searches \
       (Threshold probe_counter)"
    "experiments.het.search_probes"

let instance ~seed ~n ~p i =
  let tag = Hashtbl.hash (seed, "E5", n, p, i) in
  let rng = Rng.create tag in
  let app = App_generator.generate rng (App_generator.e2 ~n) in
  let platform = Platform_generator.fully_heterogeneous rng ~p in
  Instance.make ~id:i ~seed:tag app platform

let instances ?(pairs = 50) ?(seed = 2007) ~n p =
  (* Per-pair generation: each pair owns the stream derived from its
     (seed, n, p, index) tag, so generation order is irrelevant. *)
  Array.to_list
    (Pipeline_util.Pool.map (instance ~seed ~n ~p)
       (Array.init pairs Fun.id))

(* Bandwidth-matrix generator families (DESIGN.md §13). [Uniform_links]
   deliberately uses a fresh tag rather than reusing [instance]'s "E5"
   tag: the E5 figure batches stay bit-identical. *)

type family = Uniform_links | Clustered | Bottleneck | Jpeg2000

let families = [ Uniform_links; Clustered; Bottleneck; Jpeg2000 ]

let family_name = function
  | Uniform_links -> "uniform"
  | Clustered -> "clustered"
  | Bottleneck -> "bottleneck"
  | Jpeg2000 -> "jpeg2000"

let family_instance ~seed ~family ~n ~p i =
  let tag = Hashtbl.hash (seed, "E5-" ^ family_name family, n, p, i) in
  let rng = Rng.create tag in
  let app =
    match family with
    | Jpeg2000 -> App_generator.jpeg2000 ()
    | Uniform_links | Clustered | Bottleneck ->
      App_generator.generate rng (App_generator.e2 ~n)
  in
  let platform =
    match family with
    | Uniform_links -> Platform_generator.fully_heterogeneous rng ~p
    | Clustered | Jpeg2000 -> Platform_generator.clustered rng ~p
    | Bottleneck -> Platform_generator.bottleneck_link rng ~p
  in
  Instance.make ~id:i ~seed:tag app platform

let family_instances ?(pairs = 50) ?(seed = 2007) ~family ~n p =
  Array.to_list
    (Pipeline_util.Pool.map
       (family_instance ~seed ~family ~n ~p)
       (Array.init pairs Fun.id))

(* Exact threshold of one het row on one instance: binary search over
   the fully-het candidate set for the period direction, adaptive
   bisection for latency. Mirrors Failure.instance_threshold but routes
   every probe to the experiments.het.* counters so the historical
   metrics rows stay untouched. *)
let instance_threshold (info : Pipeline_registry.info) (inst : Instance.t) =
  let probes = ref 0 in
  let succeeds threshold =
    incr probes;
    info.Pipeline_registry.solve inst ~threshold <> None
  in
  let bisection () =
    let hi_start =
      match info.Pipeline_registry.kind with
      | Pipeline_registry.Period_fixed -> Instance.single_proc_period inst
      | Pipeline_registry.Latency_fixed -> Instance.optimal_latency inst
    in
    let hi = ref (Float.max hi_start 1e-9) in
    while not (succeeds !hi) do
      hi := !hi *. 2.
    done;
    let b =
      Threshold.bisect ~max_probes:40 ~rel:1e-10
        ~probe_counter:c_search_probes ~lo:0. ~hi:!hi ~feasible:succeeds ()
    in
    b.Threshold.lo
  in
  let result =
    match info.Pipeline_registry.kind with
    | Pipeline_registry.Latency_fixed -> bisection ()
    | Pipeline_registry.Period_fixed -> (
      let set = Candidates.Set.of_engine (Cost.get inst.app inst.platform) in
      match
        Threshold.boundary_set ~probe_counter:c_search_probes ~set ~succeeds ()
      with
      | Some boundary -> boundary
      | None -> bisection ())
  in
  Obs.Counter.add c_threshold_probes !probes;
  result

type threshold_table = {
  n : int;
  p : int;
  pairs : int;
  table_families : family list;
  rows : (string * float list) list;
}

let threshold_table ?(pairs = 10) ?(seed = 2007) ~n ~p () =
  Obs.span (Printf.sprintf "het-thresholds:n%d-p%d" n p) @@ fun () ->
  let batches =
    List.map (fun family -> family_instances ~pairs ~seed ~family ~n p) families
  in
  let rows =
    List.map
      (fun (info : Pipeline_registry.info) ->
        let means =
          List.map
            (fun batch ->
              let ts =
                Pipeline_util.Pool.map (instance_threshold info)
                  (Array.of_list batch)
              in
              Array.fold_left ( +. ) 0. ts /. float_of_int pairs)
            batches
        in
        (info.Pipeline_registry.table_name, means))
      Pipeline_registry.het
  in
  { n; p; pairs; table_families = families; rows }

let threshold_table_header t =
  "heuristic" :: List.map family_name t.table_families

let render_threshold_table t =
  let rows =
    List.map
      (fun (name, means) ->
        name :: List.map (Table.float_cell ~decimals:2) means)
      t.rows
  in
  Printf.sprintf
    "Mean exact thresholds, het families (n=%d, p=%d, %d pairs)\n%s" t.n t.p
    t.pairs
    (Table.render (threshold_table_header t :: rows))

(* Small-instance validation against the exhaustive oracle: the ratio of
   the het heuristic's unconstrained-best period to the true optimum,
   per bandwidth family. *)
type validation = { runs : int; mean_ratio : float; max_ratio : float }

let validate ?(runs = 20) ?(seed = 2007) ~family () =
  let ratio i =
    let tag = Hashtbl.hash (seed, "het-validate-" ^ family_name family, i) in
    let rng = Rng.create tag in
    let n = Rng.int_in rng 3 8 and p = Rng.int_in rng 2 6 in
    let inst = family_instance ~seed ~family ~n ~p i in
    let optimal =
      (Pipeline_optimal.Exhaustive.min_period inst).Pipeline_core.Solution
      .period
    in
    match
      Pipeline_het.Het_heuristics.minimise_period_under_latency inst
        ~latency:infinity
    with
    | Some sol -> sol.Pipeline_core.Solution.period /. optimal
    | None -> infinity
  in
  (* Sequential over runs: each ratio calls the exhaustive oracle, whose
     enumeration fans out over the domain pool (Pool.fan_out) — the
     parallelism lives inside the solver, and an outer Pool.map would
     only force it back to sequential via the nested-call guard. *)
  let ratios = Array.init runs ratio in
  {
    runs;
    mean_ratio = Array.fold_left ( +. ) 0. ratios /. float_of_int runs;
    max_ratio = Array.fold_left Float.max neg_infinity ratios;
  }

(* Grid anchors valid on any platform class. *)
let period_bounds batch =
  let bounds inst =
    let app = inst.Instance.app and platform = inst.Instance.platform in
    let s_max = Platform.speed platform (Platform.fastest platform) in
    let lo = ref 0. in
    for k = 1 to Application.n app do
      lo := Float.max !lo (Application.work app k /. s_max)
    done;
    (* The best single-processor mapping always succeeds. *)
    let single = Pipeline_optimal.Latency.solve inst in
    (!lo, single.Pipeline_core.Solution.period)
  in
  Array.fold_left
    (fun (lo, hi) (l, h) -> (Float.min lo l, Float.max hi h))
    (infinity, neg_infinity)
    (Pipeline_util.Pool.map bounds (Array.of_list batch))

let latency_bounds batch =
  let bounds inst =
    let optimal =
      (Pipeline_optimal.Latency.solve inst).Pipeline_core.Solution.latency
    in
    let unconstrained =
      match
        Pipeline_het.Het_heuristics.minimise_period_under_latency inst
          ~latency:infinity
      with
      | Some sol -> Float.max optimal sol.Pipeline_core.Solution.latency
      | None -> optimal
    in
    (optimal, unconstrained)
  in
  Array.fold_left
    (fun (lo, hi) (optimal, unconstrained) ->
      (Float.min lo optimal, Float.max hi unconstrained))
    (infinity, neg_infinity)
    (Pipeline_util.Pool.map bounds (Array.of_list batch))

let baseline_point batch =
  let sols =
    List.map (fun inst -> Pipeline_core.Baseline.balanced_chains inst) batch
  in
  let avg f =
    List.fold_left (fun acc s -> acc +. f s) 0. sols
    /. float_of_int (List.length sols)
  in
  Series.make ~label:"balanced chains (baseline)"
    [
      ( avg (fun s -> s.Pipeline_core.Solution.period),
        avg (fun s -> s.Pipeline_core.Solution.latency) );
    ]

let figure ?(pairs = 50) ?(sweep_points = 15) ?(seed = 2007) ~n p =
  let batch = instances ~pairs ~seed ~n p in
  let period_lo, period_hi = period_bounds batch in
  let latency_lo, latency_hi = latency_bounds batch in
  let series =
    List.map
      (fun (info : Pipeline_registry.info) ->
        let lo, hi =
          match info.Pipeline_registry.kind with
          | Pipeline_registry.Period_fixed -> (period_lo, period_hi)
          | Pipeline_registry.Latency_fixed -> (latency_lo, latency_hi)
        in
        let thresholds = Sweep.grid ~lo ~hi ~points:sweep_points in
        Sweep.run info batch ~thresholds)
      Pipeline_registry.het
  in
  {
    Campaign.label = Printf.sprintf "Figure E5 (n=%d, p=%d)" n p;
    setup = Config.default_setup ~pairs ~sweep_points ~seed Config.E2 ~n ~p;
    series = series @ [ baseline_point batch ];
  }

(** Streaming churn campaign (ROADMAP item 3): trace-driven arrivals,
    platform churn, and the continuous controller — warm-started
    incremental re-solving measured against the cold re-solve oracle.

    For each instance of a batch the campaign maps the pipeline with H1
    at 0.6 × the single-processor period (the fault campaign's
    convention), then for each workload shape (bursty / diurnal /
    heavy-tailed, mean arrival rate 1/threshold):

    {ul
    {- draws an arrival trace and a churn script from a per-(instance,
       shape) RNG stream — two crashes (enrolled processors first)
       with recovery after 10 thresholds, plus one slowdown to
       40–80 % speed;}
    {- runs the {e same} scenario twice through
       [Pipeline_stream.Stream_sim]: once with the warm incremental
       resolver, once with the cold oracle that rebuilds and re-solves
       from scratch at every event;}
    {- records completion rate, migration counts / stage counts /
       volume, reaction latency (mean and max), time-weighted
       degradation, segment count, and the solver work actually spent —
       full heuristic solves vs cheap repairs.}}

    The scenario is identical under both strategies, so any difference
    in the solver-work columns is attributable to warm-starting alone;
    the quality columns show what (if anything) the shortcut costs.
    Everything derives from the setup seed, pairs fan out over
    {!Pipeline_util.Pool} in index order: bit-identical at any
    [--jobs]. *)

type row = {
  shape : string;            (** bursty | diurnal | heavy-tailed *)
  strategy : string;         (** warm | cold *)
  completion : float;        (** mean completed / offered *)
  migrations : float;        (** mean stage-moving reactions per run *)
  migrated_stages : float;
  migration_volume : float;
  reaction_mean : float;     (** mean of per-run mean reaction latency *)
  reaction_max : float;      (** mean of per-run max reaction latency *)
  degradation : float;       (** mean time-weighted period / threshold *)
  segments : float;          (** mean mapping epochs per run *)
  full_solves : float;       (** mean full heuristic solves per run *)
  repairs : float;           (** mean dead-interval repairs per run *)
}

type campaign = {
  setup : Config.setup;
  instances : int;   (** instances actually mapped (H1 successes) *)
  datasets : int;    (** arrivals offered per run *)
  rows : row list;   (** shape-major, warm before cold *)
}

val run : ?datasets:int -> Config.setup -> campaign
(** Default: 150 data sets. *)

val render : campaign -> string
val to_csv : campaign -> string

val write : dir:string -> campaign -> string list
(** Write [<dir>/streaming-<label>.csv]; returns the paths. *)

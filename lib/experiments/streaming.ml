open Pipeline_model
module Rng = Pipeline_util.Rng
module Stats = Pipeline_util.Stats
module S = Pipeline_stream
module W = Pipeline_sim.Workload_sim
module F = Pipeline_sim.Fault_sim

type row = {
  shape : string;
  strategy : string;
  completion : float;
  migrations : float;
  migrated_stages : float;
  migration_volume : float;
  reaction_mean : float;
  reaction_max : float;
  degradation : float;
  segments : float;
  full_solves : float;
  repairs : float;
}

type campaign = {
  setup : Config.setup;
  instances : int;
  datasets : int;
  rows : row list;
}

(* The fault campaign's convention: H1 at 0.6 x the single-processor
   period. *)
let mapped_instances setup =
  let h1 =
    match Pipeline_registry.find "h1-sp-mono-p" with
    | Some h -> h
    | None -> assert false
  in
  List.filter_map Fun.id
    (Array.to_list
       (Pipeline_util.Pool.map
          (fun (inst : Instance.t) ->
            let threshold = Instance.single_proc_period inst *. 0.6 in
            Option.bind (h1.Pipeline_registry.solve inst ~threshold)
              (fun (o : Pipeline_registry.outcome) ->
                Option.map
                  (fun mapping -> (inst, mapping, threshold))
                  (Deal_mapping.to_mapping o.mapping)))
          (Array.of_list (Workload.instances setup))))

let shapes threshold =
  [
    ( "bursty",
      S.Arrival_trace.Bursty
        { rate = 0.25 /. threshold; burst = 7; spread = 0.5 *. threshold } );
    ( "diurnal",
      S.Arrival_trace.Diurnal
        {
          period = 50. *. threshold;
          peak = 1.5 /. threshold;
          trough = 0.5 /. threshold;
        } );
    ("heavy-tailed", S.Arrival_trace.Heavy_tailed { rate = 1. /. threshold; alpha = 1.8 });
  ]

(* A churn script for one (instance, shape): two crash/recover cycles —
   enrolled processors first so the faults hit the pipeline — and one
   slowdown, all strictly inside the nominal window and on distinct
   processors so the per-processor sequencing rules hold trivially. *)
let draw_churn rng (inst : Instance.t) mapping ~threshold ~datasets =
  let p = Platform.p inst.platform in
  let horizon = float_of_int datasets *. threshold in
  let enrolled, spare =
    List.partition (fun u -> Mapping.uses mapping u) (List.init p Fun.id)
  in
  let shuffled part =
    let a = Array.of_list part in
    Rng.shuffle rng a;
    Array.to_list a
  in
  let ordered = shuffled enrolled @ shuffled spare in
  let crash_victims = List.filteri (fun i _ -> i < min 2 (p - 1)) ordered in
  let crash_events =
    List.concat_map
      (fun u ->
        let at = Rng.float_in rng (0.05 *. horizon) (0.5 *. horizon) in
        [
          { S.Churn.at; proc = u; kind = S.Churn.Crash };
          { S.Churn.at = at +. (10. *. threshold); proc = u; kind = S.Churn.Recover };
        ])
      crash_victims
  in
  let slow_events =
    match List.filteri (fun i _ -> i >= min 2 (p - 1)) ordered with
    | [] -> []
    | u :: _ ->
      let at = Rng.float_in rng (0.05 *. horizon) (0.5 *. horizon) in
      let factor = Rng.float_in rng 0.4 0.8 in
      [ { S.Churn.at; proc = u; kind = S.Churn.Speed factor } ]
  in
  crash_events @ slow_events

type run_metrics = {
  m_completion : float;
  m_migrations : float;
  m_stages : float;
  m_volume : float;
  m_react_mean : float;
  m_react_max : float;
  m_degradation : float;
  m_segments : float;
  m_solves : float;
  m_repairs : float;
}

let metrics_of_stats (stats : S.Stream_sim.stats) =
  let count pred =
    List.length (List.filter pred stats.S.Stream_sim.reactions)
  in
  {
    m_completion =
      float_of_int stats.S.Stream_sim.workload.W.completed
      /. float_of_int stats.S.Stream_sim.offered;
    m_migrations = float_of_int stats.S.Stream_sim.migrations;
    m_stages = float_of_int stats.S.Stream_sim.migrated_stages;
    m_volume = stats.S.Stream_sim.migration_volume;
    m_react_mean = stats.S.Stream_sim.reaction_mean;
    m_react_max = stats.S.Stream_sim.reaction_max;
    m_degradation = stats.S.Stream_sim.degradation;
    m_segments = float_of_int stats.S.Stream_sim.segments;
    m_solves =
      float_of_int
        (count (fun (r : S.Controller.reaction) ->
             match r.S.Controller.mode with
             | Some S.Resolver.Solved | Some S.Resolver.Fallback -> true
             | _ -> false));
    m_repairs =
      float_of_int
        (count (fun (r : S.Controller.reaction) ->
             r.S.Controller.mode = Some S.Resolver.Repaired));
  }

(* Everything one mapped pair contributes: for each shape, one scenario
   (trace + churn) run under both strategies. Pure function of the pair
   — RNG streams derive from the instance seed — so pairs fan out
   across the domain pool. *)
let pair_outcome ~datasets ((inst : Instance.t), mapping, threshold) =
  List.mapi
    (fun shape_idx (shape, spec) ->
      let rng = Rng.create ((inst.Instance.seed * 31) + (shape_idx * 7) + 17) in
      let arrivals = S.Arrival_trace.generate rng spec ~count:datasets in
      let churn = draw_churn rng inst mapping ~threshold ~datasets in
      let run strategy =
        let controller =
          { (S.Controller.default ~threshold) with S.Controller.strategy }
        in
        let config =
          {
            S.Stream_sim.controller;
            arrivals;
            churn;
            noise = W.No_noise;
            retry = { F.max_retries = 3; backoff = threshold };
            seed = inst.Instance.seed;
          }
        in
        metrics_of_stats (S.Stream_sim.run ~config inst ~initial:mapping)
      in
      (shape, run `Warm, run `Cold))
    (shapes threshold)

let run ?(datasets = 150) (setup : Config.setup) =
  Obs.span ("streaming:" ^ Config.setup_label setup) @@ fun () ->
  let mapped = Array.of_list (mapped_instances setup) in
  let outcomes = Pipeline_util.Pool.map (pair_outcome ~datasets) mapped in
  let shape_names =
    match Array.length outcomes with
    | 0 -> List.map fst (shapes 1.)
    | _ -> List.map (fun (shape, _, _) -> shape) outcomes.(0)
  in
  let rows =
    List.concat_map
      (fun shape ->
        List.map
          (fun (strategy, pick) ->
            (* Index-order fold: each mean sums in array order, so the
               campaign is bit-identical at any --jobs. *)
            let collect f =
              Array.fold_left
                (fun acc per_pair ->
                  List.fold_left
                    (fun acc (s, warm, cold) ->
                      if s = shape then f (pick (warm, cold)) :: acc else acc)
                    acc per_pair)
                [] outcomes
            in
            let mean f = match collect f with [] -> nan | vs -> Stats.mean vs in
            {
              shape;
              strategy;
              completion = mean (fun m -> m.m_completion);
              migrations = mean (fun m -> m.m_migrations);
              migrated_stages = mean (fun m -> m.m_stages);
              migration_volume = mean (fun m -> m.m_volume);
              reaction_mean = mean (fun m -> m.m_react_mean);
              reaction_max = mean (fun m -> m.m_react_max);
              degradation = mean (fun m -> m.m_degradation);
              segments = mean (fun m -> m.m_segments);
              full_solves = mean (fun m -> m.m_solves);
              repairs = mean (fun m -> m.m_repairs);
            })
          [ ("warm", fst); ("cold", snd) ])
      shape_names
  in
  { setup; instances = Array.length mapped; datasets; rows }

let header =
  [
    "shape"; "strategy"; "completion"; "migrations"; "stages"; "volume";
    "react mean"; "react max"; "degradation"; "segments"; "solves"; "repairs";
  ]

let rows_of campaign =
  List.map
    (fun r ->
      [
        r.shape;
        r.strategy;
        Printf.sprintf "%.3f" r.completion;
        Printf.sprintf "%.2f" r.migrations;
        Printf.sprintf "%.2f" r.migrated_stages;
        Printf.sprintf "%.1f" r.migration_volume;
        Printf.sprintf "%.3f" r.reaction_mean;
        Printf.sprintf "%.3f" r.reaction_max;
        Printf.sprintf "%.3f" r.degradation;
        Printf.sprintf "%.2f" r.segments;
        Printf.sprintf "%.2f" r.full_solves;
        Printf.sprintf "%.2f" r.repairs;
      ])
    campaign.rows

let render campaign =
  Printf.sprintf "%s: %d mapped instances, %d data sets each\n%s"
    (Config.setup_label campaign.setup)
    campaign.instances campaign.datasets
    (Pipeline_util.Table.render (header :: rows_of campaign))

let to_csv campaign = Pipeline_util.Csv.csv_of_rows ~header (rows_of campaign)

let write ~dir campaign =
  let path =
    Filename.concat dir
      (Printf.sprintf "streaming-%s.csv"
         (Report.slug (Config.setup_label campaign.setup)))
  in
  Pipeline_util.Csv.to_file path (to_csv campaign);
  [ path ]

(** Robustness experiment (beyond the paper): how fast does a mapping's
    achieved steady-state period degrade when stage computation times
    jitter?

    The analytic period (equation (1)) assumes exact costs. Under
    multiplicative noise the pipeline's rendezvous structure lets delays
    propagate, so the achieved period inflates beyond the analytic value.
    This module measures the inflation factor per noise level, averaged
    over a batch — one series per heuristic, plotted like the paper's
    figures. *)

open Pipeline_model

val inflation :
  ?datasets:int -> ?seed:int -> Instance.t -> Mapping.t -> noise:float -> float
(** Simulated steady period under [Uniform_factor noise] divided by the
    analytic period (≥ ~1 up to sampling error; exactly 1 at noise 0). *)

val series :
  ?datasets:int ->
  ?noise_levels:float list ->
  Pipeline_registry.info ->
  Instance.t list ->
  Pipeline_util.Series.t
(** For each noise level, the mean inflation of the mappings the given
    period-fixed heuristic produces at a mid-range threshold (0.6 × the
    single-processor period); instances where the heuristic fails are
    skipped. Default levels: 0, 0.05, 0.1, 0.2, 0.3, 0.5. *)

open Pipeline_model
module Registry = Pipeline_registry
module Table = Pipeline_util.Table

let c_probes =
  Obs.Counter.make ~doc:"bisection probes in Failure.instance_threshold"
    "experiments.threshold_probes"

let instance_threshold ?(iterations = 40) (info : Registry.info) inst =
  let probes = ref 0 in
  let succeeds threshold =
    incr probes;
    info.solve inst ~threshold <> None
  in
  (* Bracket the boundary: 0 always fails (periods and latencies are
     positive), [hi] always succeeds. *)
  let hi_start =
    match info.kind with
    | Registry.Period_fixed -> Instance.single_proc_period inst
    | Registry.Latency_fixed -> Instance.optimal_latency inst
  in
  let lo = ref 0. and hi = ref (Float.max hi_start 1e-9) in
  if not (succeeds !hi) then
    (* Pathological: even the guaranteed-feasible threshold fails; widen
       until success (finite instances always succeed eventually). *)
    while not (succeeds !hi) do
      hi := !hi *. 2.
    done;
  for _ = 1 to iterations do
    let mid = (!lo +. !hi) /. 2. in
    if succeeds mid then hi := mid else lo := mid
  done;
  Obs.Counter.add c_probes !probes;
  !lo

(* Each per-instance bisection is independent, so the per-pair loop fans
   out across the domain pool; folding the result array in index order
   keeps the summation order — and therefore every table cell —
   identical to the sequential run. *)
let instance_thresholds ?iterations info instances =
  Pipeline_util.Pool.map
    (fun inst -> instance_threshold ?iterations info inst)
    (Array.of_list instances)

let average_threshold ?iterations (info : Registry.info) instances =
  let total =
    Array.fold_left ( +. ) 0. (instance_thresholds ?iterations info instances)
  in
  total /. float_of_int (List.length instances)

let max_threshold ?iterations (info : Registry.info) instances =
  Array.fold_left Float.max 0. (instance_thresholds ?iterations info instances)

type aggregate = Mean | Max

type table = {
  experiment : Config.experiment;
  p : int;
  ns : int list;
  rows : (string * float list) list;
}

let table ?(aggregate = Mean) ?(pairs = 50) ?(seed = 2007) experiment ~p ~ns =
  Obs.span
    (Printf.sprintf "table1:%s-p%d" (Config.experiment_name experiment) p)
  @@ fun () ->
  let batches =
    List.map
      (fun n ->
        Workload.instances (Config.default_setup ~pairs ~seed experiment ~n ~p))
      ns
  in
  let measure = match aggregate with
    | Mean -> average_threshold ?iterations:None
    | Max -> max_threshold ?iterations:None
  in
  let rows =
    List.map
      (fun (info : Registry.info) ->
        (info.table_name, List.map (fun batch -> measure info batch) batches))
      Registry.paper
  in
  { experiment; p; ns; rows }

let to_cells t =
  let header =
    "Heur." :: List.map (fun n -> Printf.sprintf "n=%d" n) t.ns
  in
  let body =
    List.map
      (fun (name, values) -> name :: List.map (Table.float_cell ~decimals:1) values)
      t.rows
  in
  header :: body

let render t = Table.render (to_cells t)
let render_markdown t = Table.render_markdown (to_cells t)

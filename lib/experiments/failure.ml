open Pipeline_model
module Registry = Pipeline_registry
module Table = Pipeline_util.Table

let c_probes =
  Obs.Counter.make ~doc:"feasibility probes in Failure.instance_threshold"
    "experiments.threshold_probes"

(* The latency boundaries sit strictly between the acceptance slack
   (1e-9, {!Pipeline_util.Tol.accept_rel}) and the full bisection grain,
   so the adaptive bisection may stop as soon as the bracket is
   invisible at the acceptance scale. *)
let latency_rel = 1e-10

(* Period-direction rows flip feasibility at an achievable period — a
   member of the finite candidate set — so their boundary is found
   exactly by binary search over that set (DESIGN.md §9). The het rows
   search the fully-het configuration family of DESIGN.md §13 on any
   platform kind. Only stacks whose achievable periods leave the
   plain-interval grid keep the adaptive bisection: the ft rows charge
   replication overheads on top of the plain cycle, and the deal grid
   assumes a comm-homogeneous platform. *)
let period_candidates (info : Registry.info) (inst : Instance.t) =
  let comm_hom = Platform.is_comm_homogeneous inst.platform in
  let set () = Candidates.Set.of_engine (Cost.get inst.app inst.platform) in
  match info.stack with
  | Registry.Core | Registry.Extension -> if comm_hom then Some (set ()) else None
  | Registry.Het -> Some (set ())
  | Registry.Deal ->
    if comm_hom then
      Some
        (Candidates.Set.of_array
           (Candidates.deal_periods (Cost.get inst.app inst.platform)))
    else None
  | Registry.Ft -> None

let instance_threshold ?(iterations = 40) (info : Registry.info) inst =
  let probes = ref 0 in
  let succeeds threshold =
    incr probes;
    info.solve inst ~threshold <> None
  in
  let bisection () =
    (* Bracket the boundary: 0 always fails (periods and latencies are
       positive), [hi] always succeeds. *)
    let hi_start =
      match info.kind with
      | Registry.Period_fixed -> Instance.single_proc_period inst
      | Registry.Latency_fixed -> Instance.optimal_latency inst
    in
    let hi = ref (Float.max hi_start 1e-9) in
    if not (succeeds !hi) then
      (* Pathological: even the guaranteed-feasible threshold fails; widen
         until success (finite instances always succeed eventually). *)
      while not (succeeds !hi) do
        hi := !hi *. 2.
      done;
    let b =
      Threshold.bisect ~max_probes:iterations ~rel:latency_rel ~lo:0. ~hi:!hi
        ~feasible:succeeds ()
    in
    b.Threshold.lo
  in
  let result =
    match info.kind with
    | Registry.Latency_fixed -> bisection ()
    | Registry.Period_fixed -> (
      match period_candidates info inst with
      | None -> bisection ()
      | Some set -> (
        match Threshold.boundary_set ~set ~succeeds () with
        | Some boundary -> boundary
        | None ->
          (* Even the top candidate failed (the heuristic rejects
             thresholds the single-processor mapping meets): fall back
             to the widening bisection. *)
          bisection ()))
  in
  Obs.Counter.add c_probes !probes;
  result

(* Each per-instance bisection is independent, so the per-pair loop fans
   out across the domain pool; folding the result array in index order
   keeps the summation order — and therefore every table cell —
   identical to the sequential run. *)
let instance_thresholds ?iterations info instances =
  Pipeline_util.Pool.map
    (fun inst -> instance_threshold ?iterations info inst)
    (Array.of_list instances)

let average_threshold ?iterations (info : Registry.info) instances =
  let total =
    Array.fold_left ( +. ) 0. (instance_thresholds ?iterations info instances)
  in
  total /. float_of_int (List.length instances)

let max_threshold ?iterations (info : Registry.info) instances =
  Array.fold_left Float.max 0. (instance_thresholds ?iterations info instances)

type aggregate = Mean | Max

type table = {
  experiment : Config.experiment;
  p : int;
  ns : int list;
  rows : (string * float list) list;
}

let table ?(aggregate = Mean) ?(pairs = 50) ?(seed = 2007) experiment ~p ~ns =
  Obs.span
    (Printf.sprintf "table1:%s-p%d" (Config.experiment_name experiment) p)
  @@ fun () ->
  let batches =
    List.map
      (fun n ->
        Workload.instances (Config.default_setup ~pairs ~seed experiment ~n ~p))
      ns
  in
  let measure = match aggregate with
    | Mean -> average_threshold ?iterations:None
    | Max -> max_threshold ?iterations:None
  in
  let rows =
    List.map
      (fun (info : Registry.info) ->
        (info.table_name, List.map (fun batch -> measure info batch) batches))
      Registry.paper
  in
  { experiment; p; ns; rows }

let to_cells t =
  let header =
    "Heur." :: List.map (fun n -> Printf.sprintf "n=%d" n) t.ns
  in
  let body =
    List.map
      (fun (name, values) -> name :: List.map (Table.float_cell ~decimals:1) values)
      t.rows
  in
  header :: body

let render t = Table.render (to_cells t)
let render_markdown t = Table.render_markdown (to_cells t)

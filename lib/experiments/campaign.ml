module Registry = Pipeline_registry

let paper_figures ?pairs ?sweep_points ?seed () =
  let setup e ~n ~p = Config.default_setup ?pairs ?sweep_points ?seed e ~n ~p in
  [
    ("Figure 2(a)", setup Config.E1 ~n:10 ~p:10);
    ("Figure 2(b)", setup Config.E1 ~n:40 ~p:10);
    ("Figure 3(a)", setup Config.E2 ~n:10 ~p:10);
    ("Figure 3(b)", setup Config.E2 ~n:40 ~p:10);
    ("Figure 4(a)", setup Config.E3 ~n:5 ~p:10);
    ("Figure 4(b)", setup Config.E3 ~n:20 ~p:10);
    ("Figure 5(a)", setup Config.E4 ~n:5 ~p:10);
    ("Figure 5(b)", setup Config.E4 ~n:20 ~p:10);
    ("Figure 6(a)", setup Config.E1 ~n:40 ~p:100);
    ("Figure 6(b)", setup Config.E2 ~n:40 ~p:100);
    ("Figure 7(a)", setup Config.E3 ~n:10 ~p:100);
    ("Figure 7(b)", setup Config.E4 ~n:40 ~p:100);
  ]

type figure = {
  label : string;
  setup : Config.setup;
  series : Pipeline_util.Series.t list;
}

let figure ?label (setup : Config.setup) =
  let label = Option.value label ~default:(Config.setup_label setup) in
  Obs.span ("figure:" ^ label) (fun () ->
      let instances = Workload.instances setup in
      let period_lo, period_hi = Sweep.period_bounds instances in
      let latency_lo, latency_hi = Sweep.latency_bounds instances in
      let series =
        List.map
          (fun (info : Registry.info) ->
            let lo, hi =
              match info.kind with
              | Registry.Period_fixed -> (period_lo, period_hi)
              | Registry.Latency_fixed -> (latency_lo, latency_hi)
            in
            let thresholds = Sweep.grid ~lo ~hi ~points:setup.sweep_points in
            Obs.span ("sweep:" ^ info.Registry.paper_name) (fun () ->
                Sweep.run info instances ~thresholds))
          Registry.paper
      in
      { label; setup; series })

let run_paper_figure ?pairs ?sweep_points ?seed label =
  let figures = paper_figures ?pairs ?sweep_points ?seed () in
  match List.assoc_opt label figures with
  | None -> None
  | Some setup -> Some (figure ~label setup)

(** Fault-injection campaign (beyond the paper): how do mapped pipelines
    degrade under processor crashes, and how well does online remapping
    recover?

    For each instance of a batch the campaign maps the pipeline with H1
    at a mid-range period threshold (0.6 × the single-processor period,
    like the robustness experiment), then for each crash count [c]:

    {ul
    {- draws [c] distinct crashed processors — enrolled processors
       first, so the faults actually hit the pipeline — and one crash
       instant each, uniform over the first half of the nominal
       execution window;}
    {- measures the {e survival rate} (fraction of data sets completed,
       {!Pipeline_sim.Fault_sim}) with permanent crashes, and again with
       recovery (outage of 10 analytic periods, 3 retries, backoff of
       one period);}
    {- asks the remapping controller ([Ft_remap]) for a replacement
       mapping on the survivors at a degraded threshold (1.2 × the
       original), recording the success rate, the degraded-period ratio
       (new analytic period / original), and the migration load
       (migrated stages / n).}}

    Everything derives from the setup seed — per (instance, crash
    count) RNG streams — so a campaign is reproducible bit-for-bit. *)

type point = {
  crashes : int;                 (** injected crash count *)
  survival : float;              (** mean, permanent crashes, no retry *)
  survival_recovery : float;     (** mean, with recovery and retries *)
  remap_success : float;         (** fraction meeting the degraded bound *)
  degraded_period : float;       (** mean new period / original period *)
  migrated_fraction : float;     (** mean migrated stages / n *)
}

type campaign = {
  setup : Config.setup;
  instances : int;   (** instances actually mapped (H1 successes) *)
  datasets : int;    (** data sets offered per simulation *)
  points : point list;  (** one per crash count, ascending *)
}

val run :
  ?crash_counts:int list -> ?datasets:int -> Config.setup -> campaign
(** Defaults: crash counts [\[0; 1; 2; 3\]], 150 data sets. Crash counts
    are clamped to [p - 1] so at least one processor survives. *)

val render : campaign -> string
(** Aligned text table for the terminal. *)

val to_csv : campaign -> string

val write : dir:string -> campaign -> string list
(** Write [<dir>/fault-campaign-<label>.csv]; returns the paths. *)

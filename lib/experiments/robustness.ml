open Pipeline_model

let inflation ?(datasets = 300) ?(seed = 1) (inst : Instance.t) mapping ~noise =
  let analytic = Metrics.period inst.app inst.platform mapping in
  let config =
    {
      Pipeline_sim.Workload_sim.arrival = Pipeline_sim.Workload_sim.Saturated;
      noise =
        (if noise = 0. then Pipeline_sim.Workload_sim.No_noise
         else Pipeline_sim.Workload_sim.Uniform_factor noise);
      slowdowns = [];
      datasets;
      seed;
    }
  in
  let stats = Pipeline_sim.Workload_sim.run ~config inst mapping in
  stats.Pipeline_sim.Workload_sim.steady_period /. analytic

let default_levels = [ 0.; 0.05; 0.1; 0.2; 0.3; 0.5 ]

let series ?datasets ?(noise_levels = default_levels)
    (info : Pipeline_registry.info) instances =
  (* Both per-pair loops (mapping, then simulating) fan out across the
     domain pool; each simulation draws from a stream derived from its
     instance's seed, so no state is shared between tasks. *)
  let mapped =
    Array.of_list
      (List.filter_map Fun.id
         (Array.to_list
            (Pipeline_util.Pool.map
               (fun inst ->
                 let threshold = Instance.single_proc_period inst *. 0.6 in
                 Option.bind (info.Pipeline_registry.solve inst ~threshold)
                   (fun (o : Pipeline_registry.outcome) ->
                     Option.map
                       (fun mapping -> (inst, mapping))
                       (Deal_mapping.to_mapping o.mapping)))
               (Array.of_list instances))))
  in
  let points =
    List.filter_map
      (fun noise ->
        if Array.length mapped = 0 then None
        else
          let values =
            Array.to_list
              (Pipeline_util.Pool.map
                 (fun (inst, mapping) ->
                   inflation ?datasets ~seed:(inst.Instance.seed + 7) inst
                     mapping ~noise)
                 mapped)
          in
          Some (noise, Pipeline_util.Stats.mean values))
      noise_levels
  in
  Pipeline_util.Series.make ~label:info.Pipeline_registry.paper_name points

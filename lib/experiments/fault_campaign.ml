open Pipeline_model
module Rng = Pipeline_util.Rng
module Stats = Pipeline_util.Stats
module W = Pipeline_sim.Workload_sim
module F = Pipeline_sim.Fault_sim
module Ft_remap = Pipeline_ft.Ft_remap

type point = {
  crashes : int;
  survival : float;
  survival_recovery : float;
  remap_success : float;
  degraded_period : float;
  migrated_fraction : float;
}

type campaign = {
  setup : Config.setup;
  instances : int;
  datasets : int;
  points : point list;
}

(* The campaign's standard mapping: H1 at 0.6 x the single-processor
   period, like the robustness experiment. *)
let mapped_instances setup =
  let h1 =
    match Pipeline_registry.find "h1-sp-mono-p" with
    | Some h -> h
    | None -> assert false
  in
  List.filter_map Fun.id
    (Array.to_list
       (Pipeline_util.Pool.map
          (fun (inst : Instance.t) ->
            let threshold = Instance.single_proc_period inst *. 0.6 in
            Option.bind (h1.Pipeline_registry.solve inst ~threshold)
              (fun (o : Pipeline_registry.outcome) ->
                Option.map
                  (fun mapping -> (inst, mapping, threshold))
                  (Deal_mapping.to_mapping o.mapping)))
          (Array.of_list (Workload.instances setup))))

(* Crash [count] distinct processors, enrolled ones first so the faults
   hit the pipeline; one uniform crash instant each over the first half
   of the nominal window. *)
let draw_crashes rng (inst : Instance.t) mapping ~count ~datasets =
  let p = Platform.p inst.platform in
  let enrolled, spare =
    List.partition (fun u -> Mapping.uses mapping u) (List.init p Fun.id)
  in
  let shuffled part =
    let a = Array.of_list part in
    Rng.shuffle rng a;
    Array.to_list a
  in
  let victims =
    List.filteri (fun i _ -> i < count) (shuffled enrolled @ shuffled spare)
  in
  let period = Metrics.period inst.app inst.platform mapping in
  let horizon = 0.5 *. float_of_int datasets *. period in
  List.map
    (fun u -> (u, Rng.float_in rng 0. (Float.max horizon 1.)))
    victims

(* Everything one mapped pair contributes to a campaign point. The
   whole computation is a pure function of (instance, mapping,
   threshold, count): the crash draws come from a task-private RNG
   stream derived from the instance seed, so the pairs can fan out
   across the domain pool. *)
type pair_outcome = {
  o_survival : float;
  o_recovery : float;
  o_success : float;
  o_ratio : float option;
  o_migration : float option;
}

let pair_outcome ~datasets ~count ((inst : Instance.t), mapping, threshold) =
  let count = min count (Platform.p inst.platform - 1) in
  let rng = Rng.create ((inst.Instance.seed * 31) + (count * 7) + 11) in
  let crashes = draw_crashes rng inst mapping ~count ~datasets in
  let base = { W.default_config with W.datasets; seed = inst.Instance.seed } in
  let sim retry crash_of =
    F.run
      ~config:{ F.base; crashes = List.map crash_of crashes; retry }
      inst mapping
  in
  let permanent =
    sim F.no_retry (fun (u, at) -> { F.at; proc = u; recover_at = None })
  in
  let period = Metrics.period inst.app inst.platform mapping in
  let recovered =
    sim
      { F.max_retries = 3; backoff = period }
      (fun (u, at) ->
        { F.at; proc = u; recover_at = Some (at +. (10. *. period)) })
  in
  let failed = List.map fst crashes in
  let success, ratio, migration =
    match
      Ft_remap.remap inst ~before:mapping ~failed ~threshold:(threshold *. 1.2)
    with
    | None -> (0., None, None)
    | Some outcome ->
      ( (if outcome.Ft_remap.met_threshold then 1. else 0.),
        Some (outcome.Ft_remap.period /. period),
        Some
          (float_of_int outcome.Ft_remap.migrated_stages
          /. float_of_int (Application.n inst.app)) )
  in
  {
    o_survival = F.survival permanent;
    o_recovery = F.survival recovered;
    o_success = success;
    o_ratio = ratio;
    o_migration = migration;
  }

let run ?(crash_counts = [ 0; 1; 2; 3 ]) ?(datasets = 150) (setup : Config.setup) =
  Obs.span ("fault-campaign:" ^ Config.setup_label setup) @@ fun () ->
  let mapped = Array.of_list (mapped_instances setup) in
  let point count =
    let outcomes =
      Obs.span (Printf.sprintf "fault-point:%d-crashes" count) (fun () ->
          Pipeline_util.Pool.map (pair_outcome ~datasets ~count) mapped)
    in
    (* Prepending in index order rebuilds exactly the reversed lists the
       sequential loop accumulated, so each mean sums in the same order
       and the campaign stays bit-identical at any --jobs. *)
    let collect f =
      Array.fold_left
        (fun acc o -> match f o with None -> acc | Some v -> v :: acc)
        [] outcomes
    in
    let survivals = collect (fun o -> Some o.o_survival)
    and recoveries = collect (fun o -> Some o.o_recovery)
    and successes = collect (fun o -> Some o.o_success)
    and ratios = collect (fun o -> o.o_ratio)
    and migrations = collect (fun o -> o.o_migration) in
    let mean = function [] -> nan | values -> Stats.mean values in
    {
      crashes = count;
      survival = mean survivals;
      survival_recovery = mean recoveries;
      remap_success = mean successes;
      degraded_period = mean ratios;
      migrated_fraction = mean migrations;
    }
  in
  {
    setup;
    instances = Array.length mapped;
    datasets;
    points = List.map point (List.sort_uniq compare crash_counts);
  }

let header =
  [ "crashes"; "survival"; "surv+recov"; "remap ok"; "period x"; "migrated" ]

let rows campaign =
  List.map
    (fun pt ->
      [
        string_of_int pt.crashes;
        Printf.sprintf "%.3f" pt.survival;
        Printf.sprintf "%.3f" pt.survival_recovery;
        Printf.sprintf "%.3f" pt.remap_success;
        Printf.sprintf "%.3f" pt.degraded_period;
        Printf.sprintf "%.3f" pt.migrated_fraction;
      ])
    campaign.points

let render campaign =
  Printf.sprintf "%s: %d mapped instances, %d data sets each\n%s"
    (Config.setup_label campaign.setup)
    campaign.instances campaign.datasets
    (Pipeline_util.Table.render (header :: rows campaign))

let to_csv campaign =
  Pipeline_util.Csv.csv_of_rows ~header (rows campaign)

let write ~dir campaign =
  let path =
    Filename.concat dir
      (Printf.sprintf "fault-campaign-%s.csv"
         (Report.slug (Config.setup_label campaign.setup)))
  in
  Pipeline_util.Csv.to_file path (to_csv campaign);
  [ path ]

(** Extension campaign E5: the paper's experiments transposed to fully
    heterogeneous platforms (its §7 future work).

    Random E2-style applications on platforms with per-link bandwidths
    (integer speeds in [\[1,20\]], link bandwidths in [\[5,15\]] around
    the paper's [b = 10]); the four het splitting heuristics of
    {!Pipeline_het.Het_heuristics} are swept exactly like the paper's
    figures, and the communication-oblivious baseline anchors the
    comparison.

    Beyond the sweep, the campaign measures {e exact} thresholds per
    bandwidth-matrix family ({!threshold_table}) and validates the het
    heuristics against the exhaustive oracle on small instances
    ({!validate}); both route every probe through the
    [experiments.het.*] counters so the historical metrics rows never
    move (DESIGN.md §13). *)

open Pipeline_model

val instances : ?pairs:int -> ?seed:int -> n:int -> int -> Instance.t list
(** [instances ~n p] — deterministic batch of fully heterogeneous
    instances. *)

(** {1 Bandwidth-matrix families}

    Generator families for the fully-het campaign (DESIGN.md §13). The
    first three draw E2-style applications and differ in the link
    structure; [Jpeg2000] runs the fixed five-stage encoder pipeline of
    {!App_generator.jpeg2000} on clustered platforms. *)

type family =
  | Uniform_links  (** i.i.d. links in [\[5,15\]]
                       ({!Platform_generator.fully_heterogeneous}) *)
  | Clustered      (** two clusters, fat intra / thin inter links
                       ({!Platform_generator.clustered}) *)
  | Bottleneck     (** one processor behind a slow link
                       ({!Platform_generator.bottleneck_link}) *)
  | Jpeg2000       (** fixed JPEG2000 encoder app, clustered platform *)

val families : family list
(** All four, in rendering order. *)

val family_name : family -> string
(** Stable lowercase name ([uniform], [clustered], [bottleneck],
    [jpeg2000]) — used in instance tags, table headers, CSV columns and
    the CLI [--family] values. *)

val family_instance :
  seed:int -> family:family -> n:int -> p:int -> int -> Instance.t
(** [family_instance ~seed ~family ~n ~p i] — the [i]-th instance of
    the family's deterministic batch. The tag stream is keyed on
    [(seed, "E5-" ^ family_name, n, p, i)], distinct from {!instances}'
    historical ["E5"] tag, so existing artefacts are unaffected.
    [Jpeg2000] ignores [n] (the encoder has five stages). *)

val family_instances :
  ?pairs:int -> ?seed:int -> family:family -> n:int -> int -> Instance.t list
(** Batch of {!family_instance}s (generated on the domain pool,
    index-ordered). *)

(** {1 Exact thresholds per family} *)

val instance_threshold : Pipeline_registry.info -> Instance.t -> float
(** Exact threshold of one registry row on one instance: binary search
    over the fully-het candidate set ({!Candidates.Set}) for
    period-direction rows, adaptive bisection for latency-direction
    rows. Probes are tallied on [experiments.het.threshold_probes]
    (solver calls) and [experiments.het.search_probes] (search probes),
    {e not} on the historical threshold counters. *)

type threshold_table = {
  n : int;
  p : int;
  pairs : int;
  table_families : family list;
  rows : (string * float list) list;
      (** per het registry row: table name, mean threshold per family
          (column order = [table_families]) *)
}

val threshold_table :
  ?pairs:int -> ?seed:int -> n:int -> p:int -> unit -> threshold_table
(** Mean exact threshold of each het heuristic on each family
    ([pairs] defaults to 10). Deterministic and bit-identical at any
    [--jobs]: per-instance searches fan out on the pool, means fold in
    index order. *)

val threshold_table_header : threshold_table -> string list
(** ["heuristic"] followed by the family names — shared by the text
    table and the CSV artefact. *)

val render_threshold_table : threshold_table -> string
(** Aligned text rendering with a one-line title. *)

(** {1 Validation against the exhaustive oracle} *)

type validation = { runs : int; mean_ratio : float; max_ratio : float }

val validate : ?runs:int -> ?seed:int -> family:family -> unit -> validation
(** Ratio of the het heuristic's unconstrained-best period
    ({!Pipeline_het.Het_heuristics.minimise_period_under_latency} at
    [latency = ∞]) to {!Pipeline_optimal.Exhaustive.min_period}, over
    [runs] (default 20) small instances (n ∈ [\[3,8\]], p ∈ [\[2,6\]])
    of the family. [mean_ratio ≥ 1.] and [max_ratio ≥ 1.] always; both
    equal [1.] when the heuristic is optimal on every draw. *)

val figure :
  ?pairs:int -> ?sweep_points:int -> ?seed:int -> n:int -> int -> Campaign.figure
(** Latency-versus-period series for the four het heuristics (labelled
    like the paper's legends), plus a single-point series for the
    balanced-chains baseline at its achieved objectives. *)

(* pipeline-sched: command-line driver for the bi-criteria pipeline
   mapping library.

     pipeline-sched solve      --works 4,8,2,6 --deltas 10,20,30,20,10 \
                               --speeds 2,4,1 --period 9 --exact
     pipeline-sched solve      --file app.pw --latency 30
     pipeline-sched solve      --family e6 --stages 50000 --procs 1000 \
                               --period 260 --heuristic h1-sp-mono-p
     pipeline-sched solve      --file app.pw --period 9 --reliability 0.05 \
                               --fail-prob 0.1
     pipeline-sched simulate   --file app.pw --crash 40:1:80 --retries 2 \
                               --backoff 5
     pipeline-sched one-to-one --file app.pw --pareto
     pipeline-sched deal       --file app.pw --period 5
     pipeline-sched scalarised --file app.pw --alpha 0.3
     pipeline-sched figure     "Figure 2(a)" --out results
     pipeline-sched table1     --experiment E1 --procs 10
     pipeline-sched campaign   --out results
     pipeline-sched validate   --trials 200
     pipeline-sched pareto     --file app.pw                            *)

open Cmdliner
open Pipeline_model
open Pipeline_core
module Ureg = Pipeline_registry

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)
(* ------------------------------------------------------------------ *)

let floats_conv =
  let parse s =
    try Ok (Array.of_list (List.map float_of_string (String.split_on_char ',' s)))
    with _ -> Error (`Msg (Printf.sprintf "not a comma-separated float list: %s" s))
  in
  let print fmt a =
    Format.pp_print_string fmt
      (String.concat "," (Array.to_list (Array.map string_of_float a)))
  in
  Arg.conv (parse, print)

let works_arg =
  Arg.(
    value
    & opt (some floats_conv) None
    & info [ "works" ] ~docv:"W1,..,WN" ~doc:"Stage computation weights.")

let deltas_arg =
  Arg.(
    value
    & opt (some floats_conv) None
    & info [ "deltas" ] ~docv:"D0,..,DN"
        ~doc:"Message sizes, one more entry than stages.")

let speeds_arg =
  Arg.(
    value
    & opt (some floats_conv) None
    & info [ "speeds" ] ~docv:"S1,..,SP" ~doc:"Processor speeds.")

let bandwidth_arg =
  Arg.(value & opt float 10. & info [ "bandwidth"; "b" ] ~doc:"Link bandwidth.")

let file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "file"; "f" ] ~docv:"FILE"
        ~doc:"Load the instance from a file (see Instance_io's format).")

let out_arg =
  Arg.(value & opt string "results" & info [ "out"; "o" ] ~doc:"Output directory.")

let pairs_arg =
  Arg.(
    value
    & opt int 50
    & info [ "pairs" ] ~doc:"Random application/platform pairs per point.")

let points_arg =
  Arg.(value & opt int 15 & info [ "points" ] ~doc:"Sweep points per heuristic.")

let seed_arg = Arg.(value & opt int 2007 & info [ "seed" ] ~doc:"Campaign seed.")

(* Multicore execution: the flag sets the process-wide pool width used
   by every parallel loop (campaign sweeps, exhaustive root splitting).
   Validation, cap and help text are Pool's — shared with the bench. *)
let jobs_arg =
  let default = Pipeline_util.Pool.recommended_jobs () in
  let jobs_conv =
    let parse s =
      match Pipeline_util.Pool.parse_jobs s with
      | Ok n -> Ok n
      | Error msg -> Error (`Msg msg)
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt jobs_conv default
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:(Pipeline_util.Pool.jobs_doc ~default ^ "."))

(* Evaluated before the command body runs: cmdliner evaluates argument
   terms before applying the run function, so threading this [unit
   Term.t] as the first argument installs the pool width up front. *)
let jobs_setup = Term.(const Pipeline_util.Pool.set_jobs $ jobs_arg)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect the deterministic observability counters (branches \
           explored, DES events, ...) and print the summary table after the \
           command. Counter values are bit-identical at any --jobs.")

let obs_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record timed spans and write them to $(docv) as Chrome \
           trace_event JSON (open in chrome://tracing or Perfetto).")

(* Same trick as [jobs_setup]: the switches flip before the command body
   runs; the pair is passed back so [with_obs] can report afterwards. *)
let obs_setup metrics trace =
  Obs.set_metrics metrics;
  if trace <> None then Obs.set_tracing true;
  (metrics, trace)

let obs_args = Term.(const obs_setup $ metrics_arg $ obs_trace_arg)

let with_obs (metrics, trace) f =
  let result = f () in
  if metrics then print_string (Obs.summary_table ());
  Option.iter
    (fun path ->
      Obs.write_trace path;
      Format.printf "wrote Chrome trace: %s@." path)
    trace;
  result

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* Generated instances: --family draws the experiment families'
   deterministic instances, one SplitMix64 stream per
   (seed, family, n, p). The e6 family goes through
   [Pipeline_experiments.Scaling.instance], so `solve --family e6` is
   pointed at the exact web-scale rungs the bench's scaling ladder
   times (DESIGN.md §11). *)
let family_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:
          "Generate the instance instead of loading one: experiment family \
           $(b,e1)..$(b,e4) (paper setting, comm-homogeneous platform), \
           $(b,e6) (web scale: tiered platform, the bench scaling ladder's \
           instances), the fully-het families $(b,e5), $(b,e5-clustered), \
           $(b,e5-bottleneck) (per-link bandwidth matrices, DESIGN.md §13), \
           or $(b,jpeg2000) (the fixed five-stage encoder pipeline on a \
           clustered platform; $(b,--stages) is ignored). Requires \
           $(b,--stages) and $(b,--procs).")

let stages_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "stages" ] ~docv:"N" ~doc:"Stage count for --family.")

let procs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "procs" ] ~docv:"P" ~doc:"Processor count for --family.")

let gen_seed_arg =
  Arg.(
    value
    & opt int 2007
    & info [ "gen-seed" ] ~docv:"SEED"
        ~doc:"Generator seed for --family (default: the campaign seed 2007).")

let generate_instance ~family ~stages ~procs ~seed =
  let name = String.lowercase_ascii family in
  let n =
    match (name, stages) with
    | "jpeg2000", _ -> 5 (* the encoder pipeline has five fixed stages *)
    | _, Some n -> n
    | _, None -> die "--family requires --stages"
  in
  let p =
    match procs with Some p -> p | None -> die "--family requires --procs"
  in
  if n < 1 then die "--stages must be >= 1";
  if p < 1 then die "--procs must be >= 1";
  match name with
  | "e6" -> Pipeline_experiments.Scaling.instance ~seed ~n ~p
  | "e5" | "e5-clustered" | "e5-bottleneck" | "jpeg2000" ->
    (* Like e6, pointed at the exact instances the het campaign
       measures: the first element of the family's deterministic
       batch. *)
    let family =
      match name with
      | "e5" -> Pipeline_experiments.Het_campaign.Uniform_links
      | "e5-clustered" -> Pipeline_experiments.Het_campaign.Clustered
      | "e5-bottleneck" -> Pipeline_experiments.Het_campaign.Bottleneck
      | _ -> Pipeline_experiments.Het_campaign.Jpeg2000
    in
    Pipeline_experiments.Het_campaign.family_instance ~seed ~family ~n ~p 0
  | ("e1" | "e2" | "e3" | "e4") as name ->
    let spec =
      match name with
      | "e1" -> App_generator.e1 ~n
      | "e2" -> App_generator.e2 ~n
      | "e3" -> App_generator.e3 ~n
      | _ -> App_generator.e4 ~n
    in
    let tag = Hashtbl.hash (seed, "cli-" ^ name, n, p) in
    let rng = Pipeline_util.Rng.create tag in
    let app = App_generator.generate rng spec in
    let platform = Platform_generator.comm_homogeneous rng ~p in
    Instance.make ~id:0 ~seed:tag app platform
  | other ->
    die
      "unknown family %s (e1, e2, e3, e4, e5, e5-clustered, e5-bottleneck, \
       e6 or jpeg2000)"
      other

(* The instance comes from --file, from the three array options, or from
   a --family generator. *)
let load_instance file works deltas speeds bandwidth family stages procs
    gen_seed =
  match (file, works, deltas, speeds, family) with
  | Some path, None, None, None, None -> (
    match Instance_io.load path with
    | Ok inst -> inst
    | Error e -> die "%s: %s" path (Format.asprintf "%a" Instance_io.pp_error e))
  | None, Some works, Some deltas, Some speeds, None ->
    let app = Application.make ~deltas works in
    let platform = Platform.comm_homogeneous ~bandwidth speeds in
    Instance.make app platform
  | None, None, None, None, Some family ->
    generate_instance ~family ~stages ~procs ~seed:gen_seed
  | _ ->
    die
      "provide exactly one of --file, --works/--deltas/--speeds, or --family"

let instance_args =
  Term.(
    const load_instance $ file_arg $ works_arg $ deltas_arg $ speeds_arg
    $ bandwidth_arg $ family_arg $ stages_arg $ procs_arg $ gen_seed_arg)

(* Web-scale instances print as a one-line shape summary: the full
   weight vectors of a 50 000-stage pipeline are not terminal material.
   Paper-sized instances keep the historical verbatim format. *)
let pp_instance fmt (inst : Instance.t) =
  let n = Application.n inst.Instance.app in
  let p = Platform.p inst.Instance.platform in
  if n <= 200 && p <= 200 then Instance.pp fmt inst
  else
    Format.fprintf fmt "instance#%d[seed=%d; pipeline[n=%d]; platform[p=%d]]"
      inst.Instance.id inst.Instance.seed n p

(* Same idea for solutions: past ~100 intervals the verbatim mapping is
   noise, the objectives are the signal. *)
let pp_solution fmt (sol : Solution.t) =
  if Mapping.m sol.Solution.mapping <= 100 then Solution.pp fmt sol
  else
    Format.fprintf fmt "{%d intervals} period=%g latency=%g"
      (Mapping.m sol.Solution.mapping) sol.Solution.period sol.Solution.latency

(* ------------------------------------------------------------------ *)
(* solve                                                               *)
(* ------------------------------------------------------------------ *)

let period_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "period" ] ~doc:"Fixed period: minimise latency.")

let latency_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "latency" ] ~doc:"Fixed latency: minimise period.")

let reliability_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "reliability" ] ~docv:"F"
        ~doc:
          "Failure-probability bound in [0,1]: minimise latency under both \
           the period bound and $(docv) (tri-criteria, deal mappings with \
           replication). Requires --period and --fail-prob.")

let fail_prob_arg =
  Arg.(
    value
    & opt (some floats_conv) None
    & info [ "fail-prob" ] ~docv:"F1,..,FP"
        ~doc:
          "Per-processor failure probabilities (one value is broadcast to \
           every processor).")

(* Build the reliability vector from --fail-prob: one value broadcasts,
   otherwise one entry per processor. *)
let reliability_of inst = function
  | None -> die "--reliability requires --fail-prob"
  | Some probs ->
    let p = Platform.p inst.Instance.platform in
    if Array.length probs = 1 then Reliability.uniform ~p probs.(0)
    else if Array.length probs = p then Reliability.make probs
    else
      die "--fail-prob needs 1 or %d values, got %d" p (Array.length probs)

let solve_reliability inst ~period ~failure fail_prob =
  let rel = reliability_of inst fail_prob in
  match Pipeline_ft.Ft_heuristic.minimise_latency inst rel ~period ~failure with
  | None ->
    Format.printf "%-18s infeasible (period %g, failure %g)@." "tri-criteria"
      period failure
  | Some sol ->
    Format.printf "%-18s %s period=%g latency=%g failure=%.3g@." "tri-criteria"
      (Pipeline_deal.Deal_mapping.to_string sol.Pipeline_ft.Ft_heuristic.mapping)
      sol.Pipeline_ft.Ft_heuristic.period sol.Pipeline_ft.Ft_heuristic.latency
      sol.Pipeline_ft.Ft_heuristic.failure

(* Print one unified-registry row in the historical formats: plain
   mappings through [Solution.pp] (and optionally local search on top),
   replicated ones in the deal notation, with the failure probability
   when the row reports one. *)
let print_outcome ~kind ~threshold ~polish (inst : Instance.t)
    (info : Ureg.info) =
  match info.Ureg.solve inst ~threshold with
  | None -> Format.printf "%-18s FAILED@." info.Ureg.paper_name
  | Some o -> (
    match Ureg.solution_of_outcome o with
    | Some sol ->
      Format.printf "%-18s %a@." info.Ureg.paper_name pp_solution sol;
      if polish then begin
        let objective, feasible =
          match kind with
          | Registry.Period_fixed ->
            ( Pipeline_optimal.Local_search.Latency_then_period,
              fun s -> Solution.respects_period s threshold )
          | Registry.Latency_fixed ->
            ( Pipeline_optimal.Local_search.Period_then_latency,
              fun s -> Solution.respects_latency s threshold )
        in
        let better =
          Pipeline_optimal.Local_search.improve ~objective ~feasible inst sol
        in
        Format.printf "%-18s %a@." "  + local search" pp_solution better
      end
    | None ->
      Format.printf "%-18s %s period=%g latency=%g%s@." info.Ureg.paper_name
        (Deal_mapping.to_string o.Ureg.mapping)
        o.Ureg.period o.Ureg.latency
        (match o.Ureg.failure with
        | None -> ""
        | Some f -> Printf.sprintf " failure=%.3g" f))

let solve_cmd =
  let heuristic =
    Arg.(
      value
      & opt (some string) None
      & info [ "heuristic" ]
          ~doc:
            "Run only this heuristic — any unified-registry row (id, H1..H6, \
             HetP.., DealP/DealL, FtTri or paper name; see $(b,list)).")
  in
  let exact =
    Arg.(
      value & flag
      & info [ "exact" ]
          ~doc:
            "Also run the exact solver: the subset-DP on comm-homogeneous \
             platforms, the (guarded) exhaustive oracle on fully \
             heterogeneous ones.")
  in
  let polish =
    Arg.(
      value & flag
      & info [ "polish" ]
          ~doc:"Post-optimise each heuristic solution by local search.")
  in
  let run () obs inst period latency heuristic exact polish reliability
      fail_prob =
    with_obs obs @@ fun () ->
    (* Resolve --heuristic before producing any output: an unknown id is
       one diagnostic line on stderr and exit 2, whatever the platform
       or criteria combination (documented under EXIT STATUS). *)
    let chosen =
      match heuristic with
      | None -> None
      | Some name -> (
        match Ureg.resolve name with
        | Ok info -> Some (name, info)
        | Error msg -> die "%s" msg)
    in
    match reliability with
    | Some failure ->
      let period =
        match (period, latency) with
        | Some p, None -> p
        | _ -> die "--reliability requires --period (and excludes --latency)"
      in
      (match chosen with
      | Some (name, info) when info.Ureg.stack <> Ureg.Ft ->
        die "heuristic %s is not a tri-criteria heuristic (only the Ft rows \
             solve under a failure bound)" name
      | _ -> ());
      Format.printf "%a@." pp_instance inst;
      solve_reliability inst ~period ~failure fail_prob
    | None ->
    let kind, threshold =
      match (period, latency) with
      | Some p, None -> (Registry.Period_fixed, p)
      | None, Some l -> (Registry.Latency_fixed, l)
      | _ -> die "exactly one of --period / --latency is required"
    in
    (match chosen with
    | Some (name, _) -> (
      (* Re-resolve with the threshold kind so the mismatch diagnostic is
         the registry's own (shared with the serve daemon's HTTP 400). *)
      match Ureg.resolve ~kind name with
      | Ok _ -> ()
      | Error msg -> die "%s" msg)
    | None -> ());
    if not (Platform.is_comm_homogeneous inst.Instance.platform) then begin
      match chosen with
      | Some (name, info) when info.Ureg.stack <> Ureg.Het ->
        die "heuristic %s requires a comm-homogeneous platform" name
      | Some (_, info) ->
        Format.printf "%a@." pp_instance inst;
        print_outcome ~kind ~threshold ~polish inst info
      | None ->
        (* Fully heterogeneous platform: dispatch to the het extension. *)
        Format.printf "%a@." pp_instance inst;
        let result =
          match kind with
          | Registry.Period_fixed ->
            Pipeline_het.Het_heuristics.minimise_latency_under_period inst
              ~period:threshold
          | Registry.Latency_fixed ->
            Pipeline_het.Het_heuristics.minimise_period_under_latency inst
              ~latency:threshold
        in
        (match result with
        | None -> Format.printf "%-18s FAILED@." "het splitting"
        | Some sol -> Format.printf "%-18s %a@." "het splitting" pp_solution sol);
        if exact then begin
          (* The bi-criteria DPs need comm-homogeneity; the exhaustive
             oracle scores any platform, behind its enumeration guard. *)
          let n = Application.n inst.Instance.app
          and p = Platform.p inst.Instance.platform in
          (* One wording for CLI exit 2 and serve HTTP 400, with the
             actual mapping count: Exhaustive.oversized. *)
          (match Pipeline_optimal.Exhaustive.oversized ~n ~p with
          | Some diagnostic -> die "%s" diagnostic
          | None -> ());
          let sol =
            match kind with
            | Registry.Period_fixed ->
              Pipeline_optimal.Exhaustive.min_latency_under_period inst
                ~period:threshold
            | Registry.Latency_fixed ->
              Pipeline_optimal.Exhaustive.min_period_under_latency inst
                ~latency:threshold
          in
          match sol with
          | None -> Format.printf "%-18s infeasible@." "exact"
          | Some sol -> Format.printf "%-18s %a@." "exact" pp_solution sol
        end
    end
    else begin
      let selected =
        match chosen with
        | None ->
          List.filter (fun (i : Ureg.info) -> i.Ureg.kind = kind) Ureg.paper
        | Some (_, info) -> [ info ]
      in
      Format.printf "%a@." pp_instance inst;
      List.iter (print_outcome ~kind ~threshold ~polish inst) selected;
      if exact then begin
        let sol =
          match kind with
          | Registry.Period_fixed ->
            Pipeline_optimal.Bicriteria.min_latency_under_period inst
              ~period:threshold
          | Registry.Latency_fixed ->
            Pipeline_optimal.Bicriteria.min_period_under_latency inst
              ~latency:threshold
        in
        match sol with
        | None -> Format.printf "%-18s infeasible@." "exact"
        | Some sol -> Format.printf "%-18s %a@." "exact" pp_solution sol
      end
    end
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Map one pipeline instance (het platforms use the het extension).")
    Term.(
      const run $ jobs_setup $ obs_args $ instance_args $ period_arg
      $ latency_arg $ heuristic $ exact $ polish $ reliability_arg
      $ fail_prob_arg)

(* ------------------------------------------------------------------ *)
(* one-to-one                                                          *)
(* ------------------------------------------------------------------ *)

let one_to_one_cmd =
  let pareto = Arg.(value & flag & info [ "pareto" ] ~doc:"Print the full front.") in
  let run inst period pareto =
    Format.printf "%a@." pp_instance inst;
    if pareto then
      List.iter
        (fun (sol : Solution.t) -> Format.printf "%a@." Solution.pp sol)
        (Pipeline_optimal.One_to_one.pareto inst)
    else begin
      let by_period = Pipeline_optimal.One_to_one.min_period inst in
      let by_latency = Pipeline_optimal.One_to_one.min_latency inst in
      Format.printf "%-14s %a@." "min period" Solution.pp by_period;
      Format.printf "%-14s %a@." "min latency" Solution.pp by_latency;
      match period with
      | None -> ()
      | Some threshold -> (
        match
          Pipeline_optimal.One_to_one.min_latency_under_period inst
            ~period:threshold
        with
        | None -> Format.printf "%-14s infeasible at %g@." "constrained" threshold
        | Some sol -> Format.printf "%-14s %a@." "constrained" Solution.pp sol)
    end
  in
  Cmd.v
    (Cmd.info "one-to-one"
       ~doc:"Exact polynomial one-to-one mapping (bottleneck + Hungarian).")
    Term.(const run $ instance_args $ period_arg $ pareto)

(* ------------------------------------------------------------------ *)
(* deal                                                                *)
(* ------------------------------------------------------------------ *)

let deal_cmd =
  let run inst period latency =
    Format.printf "%a@." pp_instance inst;
    let print_solution = function
      | None -> Format.printf "deal heuristic: FAILED@."
      | Some (sol : Pipeline_deal.Deal_heuristic.solution) ->
        Format.printf "deal heuristic: %s period=%g latency=%g@."
          (Pipeline_deal.Deal_mapping.to_string sol.Pipeline_deal.Deal_heuristic.mapping)
          sol.Pipeline_deal.Deal_heuristic.period
          sol.Pipeline_deal.Deal_heuristic.latency
    in
    match (period, latency) with
    | Some p, None ->
      print_solution
        (Pipeline_deal.Deal_heuristic.minimise_latency_under_period inst ~period:p)
    | None, Some l ->
      print_solution
        (Pipeline_deal.Deal_heuristic.minimise_period_under_latency inst ~latency:l)
    | _ -> die "exactly one of --period / --latency is required"
  in
  Cmd.v
    (Cmd.info "deal"
       ~doc:"Splitting + replication heuristic (the paper's deal-skeleton extension).")
    Term.(const run $ instance_args $ period_arg $ latency_arg)

(* ------------------------------------------------------------------ *)
(* scalarised                                                          *)
(* ------------------------------------------------------------------ *)

let scalarised_cmd =
  let alpha =
    Arg.(
      value
      & opt float 0.5
      & info [ "alpha" ] ~doc:"Weight of the period in [0,1] (latency gets 1-alpha).")
  in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Also run the exact solver.") in
  let run inst alpha exact =
    Format.printf "%a@." pp_instance inst;
    let heur = Pipeline_optimal.Scalarised.heuristic inst ~alpha in
    Format.printf "%-10s %a  (objective %g)@." "heuristic" Solution.pp heur
      (Pipeline_optimal.Scalarised.value ~alpha heur);
    if exact then begin
      let best = Pipeline_optimal.Scalarised.optimal inst ~alpha in
      Format.printf "%-10s %a  (objective %g)@." "exact" Solution.pp best
        (Pipeline_optimal.Scalarised.value ~alpha best)
    end
  in
  Cmd.v
    (Cmd.info "scalarised"
       ~doc:"Minimise alpha*period + (1-alpha)*latency.")
    Term.(const run $ instance_args $ alpha $ exact)

(* ------------------------------------------------------------------ *)
(* figure                                                              *)
(* ------------------------------------------------------------------ *)

let figure_cmd =
  let label =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LABEL" ~doc:"Figure label, e.g. 'Figure 2(a)'.")
  in
  let run () obs label pairs points seed out =
    with_obs obs @@ fun () ->
    if String.lowercase_ascii label = "e5" then begin
      (* Extension figure: fully heterogeneous platforms. *)
      let fig =
        Pipeline_experiments.Het_campaign.figure ~pairs ~sweep_points:points
          ~seed ~n:20 10
      in
      print_endline (Pipeline_experiments.Report.figure_to_ascii fig);
      List.iter (Format.printf "wrote %s@.")
        (Pipeline_experiments.Report.write_figure ~dir:out fig)
    end
    else
    match
      Pipeline_experiments.Campaign.run_paper_figure ~pairs ~sweep_points:points
        ~seed label
    with
    | None ->
      Format.eprintf "Unknown figure %S. Available:@." label;
      List.iter
        (fun (l, setup) ->
          Format.eprintf "  %-12s %s@." l (Pipeline_experiments.Config.setup_label setup))
        (Pipeline_experiments.Campaign.paper_figures ());
      Format.eprintf "  %-12s extension: fully heterogeneous platforms@." "E5";
      exit 2
    | Some fig ->
      print_endline (Pipeline_experiments.Report.figure_to_ascii fig);
      let paths = Pipeline_experiments.Report.write_figure ~dir:out fig in
      List.iter (Format.printf "wrote %s@.") paths
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Reproduce one paper figure.")
    Term.(
      const run $ jobs_setup $ obs_args $ label $ pairs_arg $ points_arg
      $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* table1                                                              *)
(* ------------------------------------------------------------------ *)

let experiment_conv =
  let parse s =
    match Pipeline_experiments.Config.experiment_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown experiment %s" s))
  in
  Arg.conv
    ( parse,
      fun fmt e ->
        Format.pp_print_string fmt (Pipeline_experiments.Config.experiment_name e) )

let table1_cmd =
  let experiment =
    Arg.(
      value
      & opt (some experiment_conv) None
      & info [ "experiment"; "e" ] ~doc:"Experiment family (E1..E4); default all.")
  in
  let p = Arg.(value & opt int 10 & info [ "procs" ] ~doc:"Number of processors.") in
  let ns =
    Arg.(
      value
      & opt (list int) [ 5; 10; 20; 40 ]
      & info [ "ns" ] ~doc:"Stage counts (columns).")
  in
  let max_aggregate =
    Arg.(
      value
      & flag
      & info [ "max" ]
          ~doc:"Report the worst per-instance boundary instead of the mean.")
  in
  let run () obs experiment p ns max_aggregate pairs seed out =
    with_obs obs @@ fun () ->
    let aggregate =
      if max_aggregate then Pipeline_experiments.Failure.Max
      else Pipeline_experiments.Failure.Mean
    in
    let experiments =
      match experiment with
      | Some e -> [ e ]
      | None -> Pipeline_experiments.Config.all_experiments
    in
    List.iter
      (fun e ->
        let table =
          Pipeline_experiments.Failure.table ~aggregate ~pairs ~seed e ~p ~ns
        in
        Format.printf "Failure thresholds, %s (%s), p = %d:@.%s@."
          (Pipeline_experiments.Config.experiment_name e)
          (Pipeline_experiments.Config.experiment_title e)
          p
          (Pipeline_experiments.Failure.render table);
        let paths = Pipeline_experiments.Report.write_table ~dir:out table in
        List.iter (Format.printf "wrote %s@.") paths)
      experiments
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Reproduce the failure-threshold table (Table 1).")
    Term.(
      const run $ jobs_setup $ obs_args $ experiment $ p $ ns $ max_aggregate
      $ pairs_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)
(* ------------------------------------------------------------------ *)

let campaign_cmd =
  let run () obs pairs points seed out =
    with_obs obs @@ fun () ->
    List.iter
      (fun (label, _) ->
        match
          Pipeline_experiments.Campaign.run_paper_figure ~pairs
            ~sweep_points:points ~seed label
        with
        | None -> ()
        | Some fig ->
          print_endline (Pipeline_experiments.Report.figure_to_ascii fig);
          let paths = Pipeline_experiments.Report.write_figure ~dir:out fig in
          List.iter (Format.printf "wrote %s@.") paths)
      (Pipeline_experiments.Campaign.paper_figures ());
    List.iter
      (fun e ->
        let table =
          Pipeline_experiments.Failure.table ~pairs ~seed e ~p:10
            ~ns:[ 5; 10; 20; 40 ]
        in
        Format.printf "Failure thresholds, %s, p = 10:@.%s@."
          (Pipeline_experiments.Config.experiment_name e)
          (Pipeline_experiments.Failure.render table);
        ignore (Pipeline_experiments.Report.write_table ~dir:out table))
      Pipeline_experiments.Config.all_experiments
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run the full simulation campaign (all figures + tables).")
    Term.(
      const run $ jobs_setup $ obs_args $ pairs_arg $ points_arg $ seed_arg
      $ out_arg)

(* ------------------------------------------------------------------ *)
(* validate                                                            *)
(* ------------------------------------------------------------------ *)

let validate_cmd =
  let trials =
    Arg.(value & opt int 100 & info [ "trials" ] ~doc:"Random instances to check.")
  in
  let run trials seed =
    let rng = Pipeline_util.Rng.create seed in
    let worst = ref 0. in
    for i = 1 to trials do
      let n = 1 + Pipeline_util.Rng.int rng 20 in
      let p = 1 + Pipeline_util.Rng.int rng 8 in
      let app = App_generator.generate rng (App_generator.e2 ~n) in
      let platform = Platform_generator.comm_homogeneous rng ~p in
      let inst = Instance.make ~id:i app platform in
      let threshold = Instance.single_proc_period inst *. 0.7 in
      match Sp_mono_p.solve inst ~period:threshold with
      | None -> ()
      | Some sol ->
        let report = Pipeline_sim.Validate.check ~datasets:200 inst sol.mapping in
        worst :=
          Float.max !worst
            (Float.max report.Pipeline_sim.Validate.period_rel_error
               report.Pipeline_sim.Validate.latency_rel_error);
        if not (Pipeline_sim.Validate.agrees report) then
          Format.printf "MISMATCH on instance %d: %a@." i Pipeline_sim.Validate.pp
            report
    done;
    Format.printf
      "validated %d random mapped instances; worst relative error %.2e@." trials
      !worst
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Check the analytic cost model against the one-port simulator.")
    Term.(const run $ trials $ seed_arg)

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    let print_group title infos =
      Format.printf "%s@." title;
      List.iter
        (fun (i : Ureg.info) ->
          Format.printf "  %-22s %-24s %s@." i.Ureg.id i.Ureg.paper_name
            (match i.Ureg.kind with
            | Ureg.Period_fixed -> "period fixed, minimises latency"
            | Ureg.Latency_fixed -> "latency fixed, minimises period"))
        infos
    in
    print_group "Paper heuristics (Table 1 order):" Ureg.paper;
    print_group "Extensions:" Ureg.extended;
    print_group "Fully heterogeneous platforms:" Ureg.het;
    print_group "Interval replication (deal skeleton):" Ureg.deal;
    print_group "Tri-criteria (period + latency + failure bound):" Ureg.ft
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every heuristic in the unified registry.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* eval                                                                *)
(* ------------------------------------------------------------------ *)

let mapping_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mapping"; "m" ] ~docv:"MAP"
        ~doc:"Explicit mapping, e.g. '1-3:2 4:0 5-6:1'.")

let parse_mapping text =
  match Mapping_io.of_string text with
  | Ok mapping -> mapping
  | Error e -> die "bad mapping: %s" e

let eval_cmd =
  let run inst mapping =
    let mapping =
      match mapping with
      | Some text -> parse_mapping text
      | None -> die "--mapping is required"
    in
    Format.printf "%a@." pp_instance inst;
    let s = Metrics.summary inst.Instance.app inst.Instance.platform mapping in
    Format.printf "%s@.  %a@." (Mapping.to_string mapping) Metrics.pp_summary s;
    let report = Pipeline_sim.Validate.check inst mapping in
    Format.printf "  simulator: %a@." Pipeline_sim.Validate.pp report
  in
  Cmd.v
    (Cmd.info "eval"
       ~doc:"Evaluate an explicit mapping with the cost model and the simulator.")
    Term.(const run $ instance_args $ mapping_arg)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

(* A crash event on the command line: AT:PROC, or AT:PROC:RECOVER for a
   transient failure. *)
let crash_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
           (Printf.sprintf "not a crash spec (AT:PROC or AT:PROC:RECOVER): %s" s))
    in
    match String.split_on_char ':' s with
    | [ at; proc ] -> (
      try
        Ok
          {
            Pipeline_sim.Fault_sim.at = float_of_string at;
            proc = int_of_string proc;
            recover_at = None;
          }
      with _ -> fail ())
    | [ at; proc; recover ] -> (
      try
        Ok
          {
            Pipeline_sim.Fault_sim.at = float_of_string at;
            proc = int_of_string proc;
            recover_at = Some (float_of_string recover);
          }
      with _ -> fail ())
    | _ -> fail ()
  in
  let print fmt (c : Pipeline_sim.Fault_sim.crash) =
    match c.recover_at with
    | None -> Format.fprintf fmt "%g:%d" c.at c.proc
    | Some r -> Format.fprintf fmt "%g:%d:%g" c.at c.proc r
  in
  Arg.conv (parse, print)

let simulate_cmd =
  let datasets =
    Arg.(value & opt int 50 & info [ "datasets" ] ~doc:"Data sets to feed.")
  in
  let crashes =
    Arg.(
      value
      & opt_all crash_conv []
      & info [ "crash" ] ~docv:"AT:PROC[:RECOVER]"
          ~doc:
            "Inject a processor crash at time $(i,AT) (repeatable). Without \
             $(i,RECOVER) the crash is permanent.")
  in
  let retries =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ]
          ~doc:"Re-execution budget per (interval, data set) after recovery.")
  in
  let backoff =
    Arg.(
      value
      & opt float 0.
      & info [ "backoff" ]
          ~doc:"Simulated delay between a recovery and the re-execution.")
  in
  let noise =
    Arg.(
      value
      & opt float 0.
      & info [ "noise" ] ~doc:"Computation-time jitter amplitude in [0,1).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"BASE"
          ~doc:"Write BASE.csv and BASE.json (Chrome trace) for the run.")
  in
  let crash_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "crash-trace" ] ~docv:"FILE"
          ~doc:
            "Churn trace CSV: $(i,at,proc,event[,factor]) rows with event one \
             of crash / recover / join / speed. Compiled into crash windows \
             and slowdowns on top of any $(b,--crash) events.")
  in
  let run inst period mapping datasets noise trace_out seed crashes retries
      backoff crash_trace =
    Format.printf "%a@." pp_instance inst;
    let sol =
      match mapping with
      | Some text ->
        Solution.of_mapping inst (parse_mapping text)
      | None -> (
        let threshold =
          Option.value period ~default:(Instance.single_proc_period inst *. 0.85)
        in
        match Sp_mono_p.solve inst ~period:threshold with
        | None -> die "no mapping achieves period %g" threshold
        | Some sol -> sol)
    in
    let trace_crashes, trace_slowdowns =
      match crash_trace with
      | None -> ([], [])
      | Some file -> (
        match Pipeline_stream.Churn.load file with
        | Error msg -> die "%s: %s" file msg
        | Ok events ->
          let p = Platform.p inst.Instance.platform in
          ( Pipeline_stream.Churn.crashes ~p events,
            Pipeline_stream.Churn.slowdowns events ))
    in
    let crashes = crashes @ trace_crashes in
    if crashes <> [] || trace_slowdowns <> [] then begin
      (* Fault injection: the analytic gantt/trace describe the crash-free
         schedule, so only the measured statistics are reported here. *)
      Format.printf "mapping: %a@." Solution.pp sol;
      let module F = Pipeline_sim.Fault_sim in
      let stats =
        F.run
          ~config:
            {
              F.base =
                {
                  Pipeline_sim.Workload_sim.default_config with
                  Pipeline_sim.Workload_sim.datasets;
                  noise =
                    (if noise = 0. then Pipeline_sim.Workload_sim.No_noise
                     else Pipeline_sim.Workload_sim.Uniform_factor noise);
                  slowdowns = trace_slowdowns;
                  seed;
                };
              crashes;
              retry = { F.max_retries = retries; backoff };
            }
          inst sol.Solution.mapping
      in
      let w = stats.F.workload in
      Format.printf
        "faults: %d offered, %d completed (survival %.3f), %d killed \
         in-flight, %d dropped, %d retries@."
        stats.F.offered w.Pipeline_sim.Workload_sim.completed (F.survival stats)
        stats.F.killed stats.F.dropped stats.F.retries;
      if w.Pipeline_sim.Workload_sim.completed > 0 then
        Format.printf
          "steady period %.3f (analytic %.3f); latency mean %.2f p95 %.2f \
           max %.2f@."
          w.Pipeline_sim.Workload_sim.steady_period sol.Solution.period
          w.Pipeline_sim.Workload_sim.latency_mean
          w.Pipeline_sim.Workload_sim.latency_p95
          w.Pipeline_sim.Workload_sim.latency_max
    end
    else begin
      Format.printf "mapping: %a@." Solution.pp sol;
      let trace = Pipeline_sim.Runner.run inst sol.Solution.mapping ~datasets in
      Format.printf "@.%s@."
        (Pipeline_sim.Trace.gantt ~width:76 trace);
      let stats =
        Pipeline_sim.Workload_sim.run
          ~config:
            {
              Pipeline_sim.Workload_sim.default_config with
              Pipeline_sim.Workload_sim.datasets;
              noise =
                (if noise = 0. then Pipeline_sim.Workload_sim.No_noise
                 else Pipeline_sim.Workload_sim.Uniform_factor noise);
              seed;
            }
          inst sol.Solution.mapping
      in
      Format.printf
        "steady period %.3f (analytic %.3f, noise %.0f%%); latency mean %.2f          p95 %.2f max %.2f@."
        stats.Pipeline_sim.Workload_sim.steady_period sol.Solution.period
        (100. *. noise) stats.Pipeline_sim.Workload_sim.latency_mean
        stats.Pipeline_sim.Workload_sim.latency_p95
        stats.Pipeline_sim.Workload_sim.latency_max;
      if datasets >= 10 then
        Format.printf "@.latency distribution:@.%s"
          (Pipeline_util.Histogram.render ~width:48
             (Pipeline_util.Histogram.build ~bins:8
                stats.Pipeline_sim.Workload_sim.latencies));
      match trace_out with
      | None -> ()
      | Some base ->
        Pipeline_util.Csv.to_file (base ^ ".csv") (Pipeline_sim.Trace.to_csv trace);
        Pipeline_util.Csv.to_file (base ^ ".json")
          (Pipeline_sim.Trace.to_chrome_json trace);
        Format.printf "wrote %s.csv and %s.json@." base base
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Map with H1 and execute on the simulator (Gantt, stats, traces); \
          --crash injects processor failures, --crash-trace replays a churn \
          CSV.")
    Term.(
      const run $ instance_args $ period_arg $ mapping_arg $ datasets $ noise
      $ trace_out $ seed_arg $ crashes $ retries $ backoff $ crash_trace)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let port_arg =
    Arg.(
      value
      & opt int 8080
      & info [ "port"; "p" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (loopback only); 0 picks a free one.")
  in
  let max_body_arg =
    Arg.(
      value
      & opt int (1024 * 1024)
      & info [ "max-body" ] ~docv:"BYTES"
          ~doc:"Largest accepted request body (oversized requests get 413).")
  in
  let run () port max_body =
    if port < 0 || port > 65535 then die "--port must be in 0..65535";
    if max_body < 1 then die "--max-body must be >= 1";
    (* The daemon always meters: /metrics is an endpoint, not an opt-in
       flag, so the counters must accumulate from the first request. *)
    Obs.set_metrics true;
    let protocol = Pipeline_serve.Protocol.create () in
    let server =
      try Pipeline_serve.Server.start ~port ~max_body protocol
      with Unix.Unix_error (err, _, _) ->
        die "cannot listen on 127.0.0.1:%d: %s" port (Unix.error_message err)
    in
    (* Parsed by the CI smoke script — keep the format stable. *)
    Format.printf "pipeline-sched: serving on 127.0.0.1:%d (jobs %d)@."
      (Pipeline_serve.Server.port server)
      (Pipeline_util.Pool.jobs ());
    (* Handlers may run at any poll point: only the signal-safe atomic
       store; the join and socket close happen below, on the way out. *)
    let shutdown _signal = Pipeline_serve.Server.request_stop server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
    Pipeline_serve.Server.wait server;
    Pipeline_serve.Server.stop server;
    Format.printf "pipeline-sched: server stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: JSON over HTTP on loopback (solve, \
          pareto, simulate, metrics, health), one request at a time, \
          responses byte-identical at any --jobs. See doc/serving.mld.")
    Term.(const run $ jobs_setup $ port_arg $ max_body_arg)

(* ------------------------------------------------------------------ *)
(* pareto                                                              *)
(* ------------------------------------------------------------------ *)

let pareto_cmd =
  let run () obs inst =
    with_obs obs @@ fun () ->
    Format.printf "%a@." pp_instance inst;
    List.iter
      (fun (sol : Solution.t) -> Format.printf "%a@." Solution.pp sol)
      (Pipeline_optimal.Bicriteria.pareto inst)
  in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Exact period/latency Pareto front (exponential in p).")
    Term.(const run $ jobs_setup $ obs_args $ instance_args)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let exits =
    Cmd.Exit.info 2
      ~doc:
        "on malformed input: an unreadable or ill-formed instance file, an \
         invalid --mapping, a --heuristic id that is not in the registry, \
         inconsistent options (e.g. both --period and --latency), or an \
         instance the requested solver rejects."
    :: Cmd.Exit.defaults
  in
  let man =
    [
      `S Manpage.s_exit_status;
      `P
        "Commands exit 0 on success and 2 on malformed input (bad instance \
         file, invalid mapping, unknown --heuristic id, inconsistent \
         options) — scripted callers can rely on the non-zero status instead \
         of parsing stderr; nothing is printed on stdout first. The \
         reproduction gate lives in the bench harness: $(b,dune exec \
         bench/main.exe -- --table1) exits 1 when a Table 1 cell falls \
         outside the documented tolerance.";
    ]
  in
  let info =
    Cmd.info "pipeline-sched" ~version:"1.0.0" ~exits ~man
      ~doc:"Bi-criteria mapping of pipeline workflows (Benoit et al., 2007)."
  in
  (* [~catch:false] + the handler below: malformed input surfaces as a
     one-line diagnostic and exit code 2, never a backtrace. *)
  exit
    (try Cmd.eval ~catch:false
       (Cmd.group ~default info
          [
            list_cmd;
            solve_cmd;
            one_to_one_cmd;
            deal_cmd;
            scalarised_cmd;
            eval_cmd;
            simulate_cmd;
            figure_cmd;
            table1_cmd;
            campaign_cmd;
            validate_cmd;
            pareto_cmd;
            serve_cmd;
          ])
     with
     | Invalid_argument msg | Failure msg | Sys_error msg ->
       prerr_endline ("pipeline-sched: " ^ msg);
       2)

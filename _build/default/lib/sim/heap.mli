(** Binary min-heap keyed by time, with FIFO tie-breaking.

    The event queue of the discrete-event kernel ({!Des}). Entries pushed
    with equal priority pop in insertion order, which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit
(** Raises [Invalid_argument] on a [nan] priority. *)

val pop : 'a t -> (float * 'a) option
(** Smallest priority (earliest inserted on ties), or [None] when empty. *)

val peek : 'a t -> (float * 'a) option

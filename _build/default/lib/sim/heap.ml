type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable length : int;
  mutable next_seq : int;
}

let create () = { data = [||]; length = 0; next_seq = 0 }
let size t = t.length
let is_empty t = t.length = 0

let before a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow t entry =
  let capacity = Array.length t.data in
  if t.length = capacity then begin
    let fresh = Array.make (max 8 (2 * capacity)) entry in
    Array.blit t.data 0 fresh 0 t.length;
    t.data <- fresh
  end

let push t ~priority value =
  if Float.is_nan priority then invalid_arg "Heap.push: nan priority";
  let entry = { priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.length) <- entry;
  t.length <- t.length + 1;
  (* Sift up. *)
  let i = ref (t.length - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let peek t =
  if t.length = 0 then None
  else Some (t.data.(0).priority, t.data.(0).value)

let pop t =
  if t.length = 0 then None
  else begin
    let top = t.data.(0) in
    t.length <- t.length - 1;
    if t.length > 0 then begin
      t.data.(0) <- t.data.(t.length);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
        let smallest = ref !i in
        if left < t.length && before t.data.(left) t.data.(!smallest) then
          smallest := left;
        if right < t.length && before t.data.(right) t.data.(!smallest) then
          smallest := right;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.priority, top.value)
  end

type t = {
  mutable clock : float;
  events : (t -> unit) Heap.t;
}

let create () = { clock = 0.; events = Heap.create () }
let now t = t.clock

let schedule_at t ~time handler =
  if Float.is_nan time || time < t.clock then
    invalid_arg "Des.schedule_at: time in the past";
  Heap.push t.events ~priority:time handler

let schedule t ~delay handler =
  if not (Float.is_finite delay) || delay < 0. then
    invalid_arg "Des.schedule: delay must be finite and >= 0";
  schedule_at t ~time:(t.clock +. delay) handler

let run ?(until = infinity) t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.events with
    | None -> continue := false
    | Some (time, _) when time > until -> continue := false
    | Some _ ->
      (match Heap.pop t.events with
      | Some (time, handler) ->
        t.clock <- time;
        handler t
      | None -> continue := false)
  done

let pending t = Heap.size t.events

type handle = { mutable live : bool }

let schedule_cancellable t ~delay handler =
  let h = { live = true } in
  schedule t ~delay (fun t -> if h.live then handler t);
  h

let cancel _t h = h.live <- false
let cancelled h = not h.live

module Resource = struct
  type des = t

  type t = {
    des : des;
    mutable busy : bool;
    waiters : (des -> unit) Queue.t;
  }

  let create des = { des; busy = false; waiters = Queue.create () }

  let grant r continuation =
    (* Deliver through the event queue so continuations never run inside
       the caller's stack frame (keeps ordering deterministic). *)
    schedule r.des ~delay:0. continuation

  let acquire r continuation =
    if r.busy then Queue.add continuation r.waiters
    else begin
      r.busy <- true;
      grant r continuation
    end

  let release r =
    if not r.busy then invalid_arg "Des.Resource.release: not held";
    match Queue.take_opt r.waiters with
    | Some continuation -> grant r continuation
    | None -> r.busy <- false

  let held r = r.busy
  let queue_length r = Queue.length r.waiters
end

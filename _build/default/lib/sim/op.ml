type kind = Receive | Compute | Send

type t = {
  kind : kind;
  interval : int;
  proc : int;
  dataset : int;
  start : float;
  finish : float;
}

let duration t = t.finish -. t.start

let kind_to_string = function
  | Receive -> "recv"
  | Compute -> "comp"
  | Send -> "send"

let pp fmt t =
  Format.fprintf fmt "%s[iv=%d p=%d ds=%d %g..%g]" (kind_to_string t.kind)
    t.interval t.proc t.dataset t.start t.finish

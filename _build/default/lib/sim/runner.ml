open Pipeline_model

type mode = One_port_no_overlap | Multi_port_overlap

(* Boundary bandwidths, mirroring Metrics: interval 0 reads from the
   outside world, interval m-1 writes to it, inner boundaries use the
   link between the two enrolled processors. *)
let in_bandwidth platform mapping j =
  if j = 0 then Platform.io_bandwidth platform (Mapping.proc mapping 0)
  else
    Platform.bandwidth platform
      (Mapping.proc mapping (j - 1))
      (Mapping.proc mapping j)

let out_bandwidth platform mapping j =
  let m = Mapping.m mapping in
  if j = m - 1 then Platform.io_bandwidth platform (Mapping.proc mapping j)
  else
    Platform.bandwidth platform (Mapping.proc mapping j)
      (Mapping.proc mapping (j + 1))

let run ?(mode = One_port_no_overlap) (inst : Instance.t) mapping ~datasets =
  if datasets < 1 then invalid_arg "Runner.run: datasets must be >= 1";
  if Mapping.n mapping <> Application.n inst.app then
    invalid_arg "Runner.run: mapping does not match the application";
  if not (Mapping.valid_on mapping inst.platform) then
    invalid_arg "Runner.run: mapping does not fit the platform";
  let app = inst.app and platform = inst.platform in
  let m = Mapping.m mapping in
  let proc j = Mapping.proc mapping j in
  let first j = Interval.first (Mapping.interval mapping j) in
  let last j = Interval.last (Mapping.interval mapping j) in
  let in_delta j = Application.delta app (first j - 1) in
  let out_delta j = Application.delta app (last j) in
  let comp_time j =
    Application.work_sum app (first j) (last j) /. Platform.speed platform (proc j)
  in
  let in_time j = in_delta j /. in_bandwidth platform mapping j in
  let out_time j = out_delta j /. out_bandwidth platform mapping j in
  let ops = ref [] in
  let emit kind interval dataset start finish =
    ops :=
      Op.{ kind; interval; proc = proc interval; dataset; start; finish } :: !ops
  in
  (match mode with
  | One_port_no_overlap ->
    (* avail.(j): when the single resource of interval j's processor is
       next free. A transfer engages both sides. *)
    let avail = Array.make m 0. in
    for t = 0 to datasets - 1 do
      for j = 0 to m - 1 do
        (* Input transfer: rendezvous with the upstream interval (the
           outside world for j = 0 is always ready). *)
        let sender_ready = if j = 0 then 0. else avail.(j - 1) in
        let start = Float.max sender_ready avail.(j) in
        let finish = start +. in_time j in
        emit Op.Receive j t start finish;
        if j > 0 then begin
          emit Op.Send (j - 1) t start finish;
          avail.(j - 1) <- finish
        end;
        avail.(j) <- finish;
        (* Computation. *)
        let c_start = avail.(j) in
        let c_finish = c_start +. comp_time j in
        emit Op.Compute j t c_start c_finish;
        avail.(j) <- c_finish
      done;
      (* Final output transfer to the sink. *)
      let start = avail.(m - 1) in
      let finish = start +. out_time (m - 1) in
      emit Op.Send (m - 1) t start finish;
      avail.(m - 1) <- finish
    done
  | Multi_port_overlap ->
    let in_avail = Array.make m 0. in
    let cpu_avail = Array.make m 0. in
    let out_avail = Array.make m 0. in
    (* comp_finish.(j): completion of interval j's computation for the
       dataset currently being scheduled. *)
    let comp_finish = Array.make m 0. in
    for t = 0 to datasets - 1 do
      for j = 0 to m - 1 do
        (* Input transfer: needs the upstream computation of this dataset
           (data ready), the upstream output port and our input port. *)
        let data_ready = if j = 0 then 0. else comp_finish.(j - 1) in
        let sender_port = if j = 0 then 0. else out_avail.(j - 1) in
        let start = Float.max data_ready (Float.max sender_port in_avail.(j)) in
        let finish = start +. in_time j in
        emit Op.Receive j t start finish;
        if j > 0 then begin
          emit Op.Send (j - 1) t start finish;
          out_avail.(j - 1) <- finish
        end;
        in_avail.(j) <- finish;
        (* Computation on the CPU resource. *)
        let c_start = Float.max finish cpu_avail.(j) in
        let c_finish = c_start +. comp_time j in
        emit Op.Compute j t c_start c_finish;
        cpu_avail.(j) <- c_finish;
        comp_finish.(j) <- c_finish
      done;
      let start = Float.max comp_finish.(m - 1) out_avail.(m - 1) in
      let finish = start +. out_time (m - 1) in
      emit Op.Send (m - 1) t start finish;
      out_avail.(m - 1) <- finish
    done);
  Trace.make ~datasets ~intervals:m ~procs:(Mapping.procs mapping) (List.rev !ops)

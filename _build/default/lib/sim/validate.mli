(** Cross-check of the analytic cost model against the simulator.

    The paper evaluates mappings analytically (equations (1)–(2)); this
    module executes the same mappings operationally and reports both
    views side by side. Under {!Runner.One_port_no_overlap} the two must
    agree: the steady-state inter-completion time converges to the
    analytic period, and the first dataset — which never waits — achieves
    exactly the analytic latency. *)

open Pipeline_model

type report = {
  analytic_period : float;
  analytic_latency : float;
  simulated_period : float;       (** steady-state slope of completions *)
  first_dataset_latency : float;  (** simulated response time of dataset 0 *)
  max_dataset_latency : float;    (** worst simulated response time *)
  period_rel_error : float;       (** |sim - analytic| / analytic *)
  latency_rel_error : float;      (** on the first dataset *)
}

val check : ?datasets:int -> Instance.t -> Mapping.t -> report
(** Simulate [datasets] data sets (default 200) in the paper's model and
    compare with {!Pipeline_model.Metrics}. *)

val agrees : ?tolerance:float -> report -> bool
(** Both relative errors below [tolerance] (default 1e-6). *)

val pp : Format.formatter -> report -> unit

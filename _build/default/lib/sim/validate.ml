open Pipeline_model

type report = {
  analytic_period : float;
  analytic_latency : float;
  simulated_period : float;
  first_dataset_latency : float;
  max_dataset_latency : float;
  period_rel_error : float;
  latency_rel_error : float;
}

let rel_error ~reference v =
  if reference = 0. then Float.abs v
  else Float.abs (v -. reference) /. Float.abs reference

let check ?(datasets = 200) (inst : Instance.t) mapping =
  let analytic_period = Metrics.period inst.app inst.platform mapping in
  let analytic_latency = Metrics.latency inst.app inst.platform mapping in
  let trace =
    Runner.run ~mode:Runner.One_port_no_overlap inst mapping ~datasets
  in
  let simulated_period = Trace.steady_period trace in
  let first_dataset_latency = Trace.latency trace 0 in
  let max_dataset_latency = Trace.max_latency trace in
  {
    analytic_period;
    analytic_latency;
    simulated_period;
    first_dataset_latency;
    max_dataset_latency;
    period_rel_error = rel_error ~reference:analytic_period simulated_period;
    latency_rel_error = rel_error ~reference:analytic_latency first_dataset_latency;
  }

let agrees ?(tolerance = 1e-6) report =
  report.period_rel_error <= tolerance && report.latency_rel_error <= tolerance

let pp fmt r =
  Format.fprintf fmt
    "analytic: period=%g latency=%g; simulated: period=%g latency[0]=%g \
     latency[max]=%g; errors: period=%.2e latency=%.2e"
    r.analytic_period r.analytic_latency r.simulated_period
    r.first_dataset_latency r.max_dataset_latency r.period_rel_error
    r.latency_rel_error

lib/sim/runner.ml: Application Array Float Instance Interval List Mapping Op Pipeline_model Platform Trace

lib/sim/des.ml: Float Heap Queue

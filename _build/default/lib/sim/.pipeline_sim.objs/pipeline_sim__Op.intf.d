lib/sim/op.mli: Format

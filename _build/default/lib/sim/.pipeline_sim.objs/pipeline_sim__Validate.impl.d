lib/sim/validate.ml: Float Format Instance Metrics Pipeline_model Runner Trace

lib/sim/fault_sim.mli: Instance Mapping Pipeline_model Workload_sim

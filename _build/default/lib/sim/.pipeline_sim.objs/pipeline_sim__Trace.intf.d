lib/sim/trace.mli: Op

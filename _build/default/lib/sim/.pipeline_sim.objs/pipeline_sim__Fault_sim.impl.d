lib/sim/fault_sim.ml: Application Array Des Float Fun Hashtbl Instance Interval List Mapping Option Pipeline_model Pipeline_util Platform Workload_sim

lib/sim/workload_sim.mli: Instance Mapping Pipeline_model

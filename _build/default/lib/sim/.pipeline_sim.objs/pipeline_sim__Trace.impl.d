lib/sim/trace.ml: Array Buffer Bytes Float Op Printf

lib/sim/workload_sim.ml: Application Array Des Float Instance Interval List Mapping Pipeline_model Pipeline_util Platform

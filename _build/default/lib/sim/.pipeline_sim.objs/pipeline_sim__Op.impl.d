lib/sim/op.ml: Format

lib/sim/heap.mli:

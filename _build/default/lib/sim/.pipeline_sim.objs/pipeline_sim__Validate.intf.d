lib/sim/validate.mli: Format Instance Mapping Pipeline_model

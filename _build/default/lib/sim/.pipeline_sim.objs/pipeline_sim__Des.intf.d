lib/sim/des.mli:

lib/sim/runner.mli: Instance Mapping Pipeline_model Trace
